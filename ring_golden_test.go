package nvmap

import (
	"math"
	"testing"

	"nvmap/internal/daemon"
	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// The SPSC ring is a transport optimisation, never a semantic change:
// whether daemon messages ride the lock-free fast path or the mutex
// queue must be invisible in every deliverable. These tests pin that by
// running identical workloads with the ring active and with it retired,
// and demanding byte-identical output — the pinned Figure 9 golden
// values, the rendered metric table, and a crash plan's degradation
// report.

// retireRing forces a session's daemon channel onto the mutex path by
// registering a no-op message tap — one of the conditions under which
// the channel flushes and disables its ring.
func retireRing(s *Session) {
	s.Tool.Channel().OnMessage(func(daemon.Message) {})
}

// runFig9Delivery runs the fully instrumented Figure 9 workload and
// returns the session, the rendered metric table, and every metric's
// final value.
func runFig9Delivery(t *testing.T, ring bool) (*Session, string, map[string]float64) {
	t.Helper()
	s, err := NewSession(fig9Workload, WithNodes(4), WithSourceFile("mixed.fcm"))
	if err != nil {
		t.Fatal(err)
	}
	if !ring {
		retireRing(s)
	}
	ems := map[string]*paradyn.EnabledMetric{}
	for _, id := range s.Tool.Library().IDs() {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ems[id] = em
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	now := s.Now()
	vals := make(map[string]float64, len(ems))
	for id, em := range ems {
		vals[id] = em.Value(now)
	}
	table := paradyn.Table("fig9", MetricRows(s.Tool.Enabled(), now))
	return s, table, vals
}

// TestRingDeliveryGolden: a ring-backed run reproduces the committed
// Figure 9 golden exactly, and its rendered table is byte-identical to
// a mutex-path run of the same workload.
func TestRingDeliveryGolden(t *testing.T) {
	ringS, ringTable, ringVals := runFig9Delivery(t, true)
	mutexS, mutexTable, mutexVals := runFig9Delivery(t, false)

	// The ring genuinely carried traffic in the fast-path run.
	if _, hw, capacity := ringS.Tool.Channel().RingStats(); hw == 0 || capacity == 0 {
		t.Fatalf("ring run never used the ring (highwater=%d capacity=%d)", hw, capacity)
	}

	if ringS.Elapsed() != goldenElapsed || mutexS.Elapsed() != goldenElapsed {
		t.Errorf("elapsed: ring=%d mutex=%d, golden %d",
			int64(ringS.Elapsed()), int64(mutexS.Elapsed()), int64(goldenElapsed))
	}
	// Both paths land on the committed golden table, not merely on each
	// other.
	for id, want := range fig9Golden {
		if got := ringVals[id]; math.Abs(got-want) > 1e-12 {
			t.Errorf("ring path: %s = %v, want %v", id, got, want)
		}
		if got := mutexVals[id]; math.Abs(got-want) > 1e-12 {
			t.Errorf("mutex path: %s = %v, want %v", id, got, want)
		}
	}
	if ringTable != mutexTable {
		t.Errorf("rendered tables differ between ring and mutex delivery:\n--- ring\n%s--- mutex\n%s",
			ringTable, mutexTable)
	}
}

// TestRingCrashPlanGolden: with a crash plan injected, ring-backed and
// mutex-path delivery produce byte-identical degradation reports and
// identical metric values — overflow, drops and fault semantics are
// preserved across the transport swap.
func TestRingCrashPlanGolden(t *testing.T) {
	run := func(ring bool) (*Session, *DegradationReport, map[string]float64) {
		plan := &fault.Plan{Seed: 7}
		plan.CrashAt(2, vtime.Time(40*vtime.Microsecond))
		// Recovery's supervisor taps the channel (which retires the
		// ring), so it is disabled: the point here is the transport
		// under fault injection, and the permanent crash is identical
		// on both paths.
		s, err := NewSession(faultTestProgram,
			WithNodes(4), WithSourceFile("ftest.fcm"), WithFaults(plan),
			WithRecovery(RecoveryConfig{Disable: true}))
		if err != nil {
			t.Fatal(err)
		}
		if !ring {
			retireRing(s)
		}
		ems := make(map[string]*paradyn.EnabledMetric, len(crashCountMetrics))
		for _, id := range crashCountMetrics {
			em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
			if err != nil {
				t.Fatal(err)
			}
			ems[id] = em
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		vals := make(map[string]float64, len(ems))
		for id, em := range ems {
			vals[id] = em.Value(s.Now())
		}
		return s, rep, vals
	}

	ringS, ringRep, ringVals := run(true)
	mutexS, mutexRep, mutexVals := run(false)

	if _, hw, _ := ringS.Tool.Channel().RingStats(); hw == 0 {
		t.Fatal("crash-plan ring run never used the ring")
	}
	if ringS.Elapsed() != mutexS.Elapsed() {
		t.Errorf("elapsed differs: ring=%v mutex=%v", ringS.Elapsed(), mutexS.Elapsed())
	}
	if ringRep.String() != mutexRep.String() {
		t.Errorf("degradation reports differ:\n--- ring\n%s--- mutex\n%s", ringRep, mutexRep)
	}
	for id, rv := range ringVals {
		if mv := mutexVals[id]; rv != mv {
			t.Errorf("metric %s differs: ring=%g mutex=%g", id, rv, mv)
		}
	}
}
