package nvmap

import (
	"math"
	"testing"

	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// The simulator is fully deterministic, so the entire Figure 9 metric
// table on the reference workload can be pinned exactly. This is the
// repository's strongest regression net: any change to the cost model,
// the compiler's lowering, the runtime's communication structure, or the
// metric/instrumentation path shows up here as a concrete number.
//
// If a deliberate model change lands, regenerate with the values printed
// by a temporary run (see EXPERIMENTS.md) and update this table in the
// same commit, explaining the shift.
var fig9Golden = map[string]float64{
	"computations":             4,
	"computation_time":         4.8e-05,
	"reductions":               3,
	"reduction_time":           0.00011564999999999999,
	"summations":               1,
	"summation_time":           3.855e-05,
	"maxval_count":             1,
	"maxval_time":              3.855e-05,
	"minval_count":             1,
	"minval_time":              3.855e-05,
	"array_transformations":    3,
	"transformation_time":      0.00029596,
	"rotations":                1,
	"rotation_time":            4.882e-05,
	"shifts":                   1,
	"shift_time":               5.922e-05,
	"transposes":               1,
	"transpose_time":           0.00018792,
	"scans":                    1,
	"scan_time":                8.682000000000001e-05,
	"sorts":                    1,
	"sort_time":                0.0002801,
	"argument_processing_time": 1.184e-05,
	"broadcasts":               1,
	"broadcast_time":           2.72e-06,
	"cleanups":                 0, // the workload itself never resets the vector units
	"cleanup_time":             0,
	"idle_time":                0.0012249539999999999,
	"node_activations":         48,
	"point_to_point_ops":       37,
	"point_to_point_time":      9.712e-05,
}

// goldenElapsed is the workload's exact virtual duration with all 31
// metrics instrumented (perturbation included).
const goldenElapsed = vtime.Duration(439620)

func TestGoldenFigure9Metrics(t *testing.T) {
	s, err := NewSession(fig9Workload, WithNodes(4), WithSourceFile("mixed.fcm"))
	if err != nil {
		t.Fatal(err)
	}
	ems := map[string]*paradyn.EnabledMetric{}
	for _, id := range s.Tool.Library().IDs() {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ems[id] = em
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Elapsed() != goldenElapsed {
		t.Errorf("elapsed = %d ns, want %d ns", int64(s.Elapsed()), int64(goldenElapsed))
	}
	now := s.Now()
	for id, want := range fig9Golden {
		em, ok := ems[id]
		if !ok {
			t.Errorf("metric %s missing", id)
			continue
		}
		got := em.Value(now)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", id, got, want)
		}
	}
	// The golden table covers the whole library.
	if len(fig9Golden) != len(s.Tool.Library().IDs()) {
		t.Errorf("golden table has %d entries, library has %d",
			len(fig9Golden), len(s.Tool.Library().IDs()))
	}
}
