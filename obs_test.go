package nvmap

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"nvmap/internal/obs"
	"nvmap/internal/paradyn"
)

// The observability plane's determinism contract: with the plane
// enabled, the Chrome trace export, the stable Prometheus export and
// the perturbation report's structure are byte-identical across worker
// counts — and pinned against committed goldens, so any change to the
// span stream or the collector set is a visible diff.

var updateObsGoldens = flag.Bool("update-obs-goldens", false,
	"rewrite the observability export goldens in testdata/")

const obsWorkload = `PROGRAM quick
REAL A(1024)
REAL B(1024)
REAL ASUM
FORALL (I = 1:1024) A(I) = I
B = A * 0.5 + 1.0
B = CSHIFT(B, 16)
ASUM = SUM(A)
PRINT *, ASUM
END
`

// obsSession builds the reference observed session: the quickstart
// workload with gating, dynamic mapping, four metrics and a SAS monitor
// question — every span-recording subsystem exercised.
func obsSession(t testing.TB, workers int) *Session {
	t.Helper()
	s, err := NewSession(obsWorkload,
		WithNodes(8),
		WithWorkers(workers),
		WithSourceFile("quick.fcm"),
		WithOutput(io.Discard),
		WithObservability())
	if err != nil {
		t.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()
	for _, id := range []string{"summations", "summation_time", "point_to_point_ops", "idle_time"} {
		if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
			t.Fatal(err)
		}
	}
	mon := s.EnableSASMonitor(false)
	if _, err := mon.Ask("sums while sending", "{? Sums}, {? Sends}"); err != nil {
		t.Fatal(err)
	}
	return s
}

// obsExports runs the reference session and returns its two
// deterministic exports.
func obsExports(t *testing.T, workers int) (chrome, prom string) {
	t.Helper()
	s := obsSession(t, workers)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Tool.SampleAll(s.Now())
	var cb, pb bytes.Buffer
	if err := obs.WriteChromeTrace(&cb, s.Observability().Tracer); err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(&pb, s.Observability().Metrics, false); err != nil {
		t.Fatal(err)
	}
	return cb.String(), pb.String()
}

func checkObsGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateObsGoldens {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test -update-obs-goldens to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden (%d bytes vs %d); regenerate with -update-obs-goldens if the change is deliberate",
			name, len(got), len(want))
	}
}

func TestObsExportGoldens(t *testing.T) {
	chrome, prom := obsExports(t, 1)
	if !json.Valid([]byte(chrome)) {
		t.Fatalf("chrome trace is not valid JSON:\n%.400s", chrome)
	}
	for _, workers := range []int{2, 8} {
		c, p := obsExports(t, workers)
		if c != chrome {
			t.Errorf("chrome trace differs between workers=1 and workers=%d", workers)
		}
		if p != prom {
			t.Errorf("prometheus export differs between workers=1 and workers=%d", workers)
		}
	}
	checkObsGolden(t, "obs_quickstart_trace.json", chrome)
	checkObsGolden(t, "obs_quickstart_metrics.prom", prom)
}

// TestObsPerturbation pins the perturbation report's two guarantees:
// with a deterministic host clock it attributes at least 95% of the
// run's wall self-cost to named stages, and its structural content
// (stages, span counts, virtual time) is identical across worker
// counts.
func TestObsPerturbation(t *testing.T) {
	structure := make(map[int]string)
	for _, workers := range []int{1, 8} {
		s := obsSession(t, workers)
		var tick int64
		s.Observability().Tracer.SetWallClock(func() int64 {
			tick += 1000
			return tick
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		rep := s.PerturbationReport()
		if rep == nil {
			t.Fatal("no perturbation report after Run")
		}
		if att := rep.Attributed(); att < 0.95 {
			t.Errorf("workers=%d: only %.1f%% of run wall attributed to stages", workers, 100*att)
		}
		if rep.RunWall <= 0 {
			t.Errorf("workers=%d: non-positive run wall %d", workers, rep.RunWall)
		}
		structure[workers] = rep.Structure()
	}
	if structure[1] != structure[8] {
		t.Errorf("perturbation structure differs across worker counts:\n--- workers=1\n%s--- workers=8\n%s",
			structure[1], structure[8])
	}
}

// TestObsDisabled pins the off-by-default contract: without
// WithObservability the session exposes no plane and no report, and the
// record sites all see nil tracers.
func TestObsDisabled(t *testing.T) {
	s, err := NewSession(obsWorkload, WithNodes(4), WithOutput(io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	if s.Observability() != nil {
		t.Error("disabled session exposes an observability plane")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.PerturbationReport() != nil {
		t.Error("disabled session produced a perturbation report")
	}
}

// TestMonitorStatsRegistryEquality pins the shim contract: the legacy
// Monitor.Stats() accessor and the registry's monitor-SAS collectors
// read the same counters, so their values are equal at any instant.
func TestMonitorStatsRegistryEquality(t *testing.T) {
	s := obsSession(t, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mon := s.monitor
	st := mon.Stats()
	reg := s.Observability().Metrics
	for name, want := range map[string]float64{
		"nvmap_sas_notifications_total{sas=\"monitor\"}": float64(st.Notifications),
		"nvmap_sas_ignored_total{sas=\"monitor\"}":       float64(st.Ignored),
		"nvmap_sas_stored_total{sas=\"monitor\"}":        float64(st.Stored),
		"nvmap_sas_evaluations_total{sas=\"monitor\"}":   float64(st.Evaluations),
		"nvmap_sas_events_total{sas=\"monitor\"}":        float64(st.Events),
	} {
		sample, ok := reg.Lookup(name)
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if sample.Value != want {
			t.Errorf("%s = %v, Monitor.Stats() says %v", name, sample.Value, want)
		}
	}
	if st.Notifications == 0 {
		t.Error("workload produced no monitor notifications; equality check is vacuous")
	}
	// The tool's gating SASes are registered under their own label.
	if _, ok := reg.Lookup("nvmap_sas_notifications_total{sas=\"tool\"}"); !ok {
		t.Error("tool SAS collectors not registered")
	}
}

// TestObsDaemonStatsRegistryEquality pins the same contract for the
// daemon channel's counters.
func TestObsDaemonStatsRegistryEquality(t *testing.T) {
	s := obsSession(t, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Tool.SampleAll(s.Now())
	st := s.Tool.Channel().Stats()
	reg := s.Observability().Metrics
	for name, want := range map[string]float64{
		"nvmap_daemon_sent_total":      float64(st.Sent),
		"nvmap_daemon_delivered_total": float64(st.Delivered),
		"nvmap_daemon_dropped_total":   float64(st.Dropped),
		"nvmap_daemon_queue_max":       float64(st.MaxQueue),
	} {
		sample, ok := reg.Lookup(name)
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if sample.Value != want {
			t.Errorf("%s = %v, Channel.Stats() says %v", name, sample.Value, want)
		}
	}
	if st.Sent == 0 {
		t.Error("workload sent no daemon messages; equality check is vacuous")
	}
}
