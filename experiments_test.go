package nvmap

import (
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentByID(t *testing.T) {
	out, err := RunExperiment("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Mapping definition") {
		t.Fatalf("fig3 output = %q", out)
	}
}

func TestExperimentFig1Shapes(t *testing.T) {
	out, err := ExperimentFig1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"One-to-One", "One-to-Many", "Many-to-One", "Many-to-Many",
		// Split halves the 10-unit cost; merge keeps it whole.
		"{R1 Reduce} = 5 ops",
		"[{R1 Reduce} + {R2 Reduce}] = 10 ops",
		// Many-to-one aggregates 7+5.
		"{L Executes} = 12 ops",
		// Many-to-many aggregates 8+4 then splits 6/6.
		"{L1 Executes} = 6 ops",
		"[{L1 Executes} + {L2 Executes}] = 12 ops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentFig2RecordsMatchPaperShape(t *testing.T) {
	out, err := ExperimentFig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"NOUN", "VERB", "MAPPING",
		"name = cmpe_corr_1_()",
		"description = compiler generated function, source code not available",
		"source = {cmpe_corr_1_(), CPU Utilization}",
		"destination = {line4, Executes}",
		"destination = {line5, Executes}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 missing %q", want)
		}
	}
}

func TestExperimentFig5SnapshotShape(t *testing.T) {
	out, err := ExperimentFig5()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5's three active sentences: an HPF statement executing, an
	// HPF array being summed, and a base-level processor sending.
	for _, want := range []string{"HPF:", "{A Sums}", "Base:", "Sends}"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Executes}") {
		t.Errorf("fig5 missing executing statement:\n%s", out)
	}
}

func TestExperimentFig6Answers(t *testing.T) {
	results, _, err := runFig6(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// On 4 nodes each reduction sends 3 tree messages; processor 1 sends
	// exactly one of them. A and C are summed; B takes a MAXVAL.
	if got := results[1].Count; got != 3 {
		t.Errorf("sends by processor 1 = %g, want 3 (one per reduction)", got)
	}
	if got := results[2].Count; got != 1 {
		t.Errorf("sends by 1 during SUM(A) = %g, want 1", got)
	}
	if got := results[3].Count; got != 2 {
		t.Errorf("sends by 1 during any SUM = %g, want 2 (A and C)", got)
	}
	// The gate question accumulates summation time, not counts.
	if results[0].Count != 0 || results[0].Time <= 0 {
		t.Errorf("{A Sums} = count %g, time %v", results[0].Count, results[0].Time)
	}
	// The wildcard question strictly dominates the specific one.
	if !(results[3].Count > results[2].Count) {
		t.Error("wildcard question should count more than the specific one")
	}
}

func TestExperimentFig7Remedy(t *testing.T) {
	out, err := ExperimentFig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "attributed to func(): 0 (want 2)") {
		t.Errorf("limitation half missing:\n%s", out)
	}
	if !strings.Contains(out, "attributed to func(): 2 (want 2)") {
		t.Errorf("remedy half missing:\n%s", out)
	}
}

func TestExperimentFig8Hierarchies(t *testing.T) {
	out, err := ExperimentFig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Machine", "node3", "Code", "CMRTS_send",
		"CMFarrays", "TOT", "node0:[0,128)",
		"CMFstmts", "line13",
		"cmpe_bow_1_()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q:\n%s", want, out)
		}
	}
	// Block functions live under Code, not as their own hierarchies.
	if strings.Contains(out, "\n    cmpe_bow_1_()") {
		t.Errorf("block function floated to hierarchy level:\n%s", out)
	}
}

func TestExperimentFig9CoversEveryVerb(t *testing.T) {
	out, err := ExperimentFig9()
	if err != nil {
		t.Fatal(err)
	}
	// Every counted metric must be non-zero: the workload exercises the
	// whole Figure 9 table.
	for _, row := range []string{
		"Computations", "Reductions", "Summations", "MAXVAL Count", "MINVAL Count",
		"Array Transformations", "Rotations", "Shifts", "Transposes",
		"Scans", "Sorts", "Broadcasts", "Cleanups", "Node Activations",
		"Point-to-Point Operations",
	} {
		idx := strings.Index(out, row)
		if idx < 0 {
			t.Errorf("fig9 missing metric %q", row)
			continue
		}
		line := out[idx:]
		line = line[:strings.IndexByte(line, '\n')]
		if strings.Contains(line, " 0 ops") {
			t.Errorf("fig9 metric %q measured zero: %s", row, line)
		}
	}
	for _, timeRow := range []string{"Idle Time", "Argument Processing Time", "Broadcast Time"} {
		idx := strings.Index(out, timeRow)
		if idx < 0 {
			t.Errorf("fig9 missing %q", timeRow)
			continue
		}
		line := out[idx:]
		line = line[:strings.IndexByte(line, '\n')]
		if strings.Contains(line, "0.000000 s") {
			t.Errorf("fig9 %q measured zero: %s", timeRow, line)
		}
	}
}

func TestAblationSplitMergeReport(t *testing.T) {
	out, err := AblationSplitMerge()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst attribution error: 40") {
		t.Errorf("split error not quantified:\n%s", out)
	}
	if !strings.Contains(out, "[{line4 Executes} + {line5 Executes}] = 100 %") {
		t.Errorf("merge unit missing:\n%s", out)
	}
}

func TestAblationDynInstShape(t *testing.T) {
	out, err := AblationDynInst()
	if err != nil {
		t.Fatal(err)
	}
	// The report's internal assertions already enforce the ordering; spot
	// check the text.
	for _, want := range []string{"uninstrumented", "dynamic", "always-on", "0 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("abldyn missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSASFilterShape(t *testing.T) {
	out, err := AblationSASFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "filtered") || !strings.Contains(out, "unfiltered") {
		t.Fatalf("ablsas output incomplete:\n%s", out)
	}
}

func TestAblationOrderedQuestionsShape(t *testing.T) {
	out, err := AblationOrderedQuestions()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "identical semantics") {
		t.Fatalf("ablorder output incomplete:\n%s", out)
	}
}

func TestAblationFusionShape(t *testing.T) {
	out, err := AblationFusion()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unfused") || !strings.Contains(out, "fused") {
		t.Fatalf("ablfuse output incomplete:\n%s", out)
	}
}

func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	out, err := RunAllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(out, "==== "+e.ID) {
			t.Errorf("combined report missing %s", e.ID)
		}
	}
}
