package nvmap

import "fmt"

// UsageError reports a misused configuration option: the option (or
// Config field) at fault and why its value is rejected. NewSession
// returns one — retrievable with errors.As — for contradictions the
// machine layer would otherwise surface as untyped errors: a
// non-positive WithNodes, a topology too small for the partition, a
// placement without a topology, and the like.
type UsageError struct {
	// Option names the functional option or Config field at fault,
	// e.g. "WithNodes" or "WithPlacement".
	Option string
	// Reason says why the value is rejected.
	Reason string
}

func (e *UsageError) Error() string {
	return fmt.Sprintf("nvmap: %s: %s", e.Option, e.Reason)
}

// validate rejects contradictory configurations up front with typed
// *UsageError values, before any machine state is built. It sees the
// Config after defaulting (Nodes already resolved to 8 when unset).
func (cfg *Config) validate() error {
	if cfg.Nodes <= 0 {
		return &UsageError{
			Option: "WithNodes",
			Reason: fmt.Sprintf("partition size must be positive, got %d", cfg.Nodes),
		}
	}
	if cfg.Workers < 0 {
		return &UsageError{
			Option: "WithWorkers",
			Reason: fmt.Sprintf("worker bound must be >= 0, got %d", cfg.Workers),
		}
	}
	topo := cfg.Topology
	if topo == nil && cfg.Machine != nil {
		topo = cfg.Machine.Topology
	}
	if topo != nil {
		if err := topo.Validate(); err != nil {
			return &UsageError{Option: "WithTopology", Reason: err.Error()}
		}
		if leaves := topo.Leaves(); leaves < cfg.Nodes {
			return &UsageError{
				Option: "WithTopology",
				Reason: fmt.Sprintf("topology has %d leaves but the partition needs %d nodes", leaves, cfg.Nodes),
			}
		}
	}
	if cfg.Placement != nil {
		if topo == nil {
			return &UsageError{
				Option: "WithPlacement",
				Reason: "placement given without a topology (add WithTopology)",
			}
		}
		if len(cfg.Placement) != cfg.Nodes {
			return &UsageError{
				Option: "WithPlacement",
				Reason: fmt.Sprintf("placement has %d entries for %d nodes", len(cfg.Placement), cfg.Nodes),
			}
		}
		seen := make(map[int]int, len(cfg.Placement))
		for i, leaf := range cfg.Placement {
			if leaf < 0 || leaf >= topo.Leaves() {
				return &UsageError{
					Option: "WithPlacement",
					Reason: fmt.Sprintf("node %d placed on leaf %d, outside [0,%d)", i, leaf, topo.Leaves()),
				}
			}
			if prev, dup := seen[leaf]; dup {
				return &UsageError{
					Option: "WithPlacement",
					Reason: fmt.Sprintf("nodes %d and %d both placed on leaf %d", prev, i, leaf),
				}
			}
			seen[leaf] = i
		}
	}
	return nil
}
