package nvmap

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nvmap/internal/diagnose"
	"nvmap/internal/obs"
)

var updateDiagGoldens = flag.Bool("update-diag-goldens", false,
	"rewrite testdata/diag_*.golden from this run's diagnosis reports")

// diagnoseScenario runs one corpus scenario's diagnosis at a worker
// count.
func diagnoseScenario(t testing.TB, sc DiagScenario, workers int) *diagnose.Report {
	t.Helper()
	opts := append(append([]Option{}, sc.Opts...), WithWorkers(workers))
	rep, err := Diagnose(sc.Source, DiagnoseConfig{}, opts...)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return rep
}

// TestDiagnosisCorpusGoldens is the planted-root-cause contract: each
// pathological program's diagnosis must confirm exactly its planted
// hypothesis at the whole-program focus, the full text report must
// match its golden byte for byte, and the bytes must not move when the
// host worker pool changes (1, 2 and 8 workers).
func TestDiagnosisCorpusGoldens(t *testing.T) {
	for _, sc := range DiagnosisCorpus() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep := diagnoseScenario(t, sc, 1)
			for _, root := range rep.Roots {
				if root.Confirmed != (root.Hypothesis == sc.Planted) {
					t.Errorf("%s: top-level %s confirmed=%v, want planted cause %s and only it\n%s",
						sc.Name, root.Hypothesis, root.Confirmed, sc.Planted, rep.Text())
				}
			}
			text := rep.Text()

			path := filepath.Join("testdata", "diag_"+sc.Name+".golden")
			if *updateDiagGoldens {
				if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run go test -update-diag-goldens to create)", err)
			}
			if string(want) != text {
				t.Errorf("%s drifted from golden; regenerate with -update-diag-goldens if the change is deliberate\n--- got ---\n%s--- want ---\n%s",
					sc.Name, text, want)
			}

			for _, workers := range []int{2, 8} {
				if got := diagnoseScenario(t, sc, workers).Text(); got != text {
					t.Errorf("%s: report differs between workers=1 and workers=%d\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						sc.Name, workers, text, workers, got)
				}
			}
		})
	}
}

// TestDiagnosisCorpusBudget cuts every corpus search with a tight probe
// budget and checks the accounting: exactly Budget probes run, and
// run+pruned covers everything the uncut search enqueued at the moment
// of the cut — nothing is silently dropped.
func TestDiagnosisCorpusBudget(t *testing.T) {
	const budget = 7 // 5 top-level probes + 2 refinements
	for _, sc := range DiagnosisCorpus() {
		opts := append(append([]Option{}, sc.Opts...), WithWorkers(1))
		rep, err := Diagnose(sc.Source, DiagnoseConfig{Budget: budget}, opts...)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if rep.ProbesRun != budget {
			t.Errorf("%s: probes run = %d, want %d", sc.Name, rep.ProbesRun, budget)
		}
		if rep.Pruned == 0 {
			t.Errorf("%s: tight budget pruned nothing (every scenario refines past %d probes)", sc.Name, budget)
		}
		if rep.Budget != budget {
			t.Errorf("%s: report budget = %d", sc.Name, rep.Budget)
		}
		// A budget covering the whole frontier prunes nothing and probes
		// fewer or equally many cells.
		full, err := Diagnose(sc.Source, DiagnoseConfig{}, opts...)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if full.Pruned != 0 {
			t.Errorf("%s: default budget %d cut the search (pruned %d)", sc.Name, full.Budget, full.Pruned)
		}
		if full.ProbesRun < budget {
			t.Errorf("%s: full search ran %d probes, fewer than the cut one", sc.Name, full.ProbesRun)
		}
	}
}

// TestDiagnosisCollectors checks the nvmap_consultant_* series read
// through to the report and the wall-clock one is unstable.
func TestDiagnosisCollectors(t *testing.T) {
	sc := DiagnosisCorpus()[0]
	var rep *diagnose.Report
	r := obs.NewRegistry()
	RegisterDiagnosisCollectors(r, func() *diagnose.Report { return rep })

	// Before a search completes every stable series reads zero.
	for _, s := range r.Snapshot(false) {
		if s.Value != 0 {
			t.Fatalf("collector %s non-zero before any diagnosis: %v", s.Name, s.Value)
		}
	}

	rep = diagnoseScenario(t, sc, 1)
	got := map[string]float64{}
	unstable := map[string]bool{}
	for _, s := range r.Snapshot(true) {
		got[s.Name] = s.Value
		unstable[s.Name] = s.Unstable
	}
	if got["nvmap_consultant_probes_run_total"] != float64(rep.ProbesRun) {
		t.Errorf("probes_run = %v, want %d", got["nvmap_consultant_probes_run_total"], rep.ProbesRun)
	}
	if got["nvmap_consultant_hypotheses_confirmed"] != float64(rep.Confirmed()) {
		t.Errorf("hypotheses_confirmed = %v, want %d", got["nvmap_consultant_hypotheses_confirmed"], rep.Confirmed())
	}
	if got["nvmap_consultant_search_vtime_ns"] != float64(rep.SearchVTime) {
		t.Errorf("search_vtime = %v, want %d", got["nvmap_consultant_search_vtime_ns"], rep.SearchVTime)
	}
	if got["nvmap_consultant_refinement_depth"] != float64(rep.MaxDepth) {
		t.Errorf("refinement_depth = %v, want %d", got["nvmap_consultant_refinement_depth"], rep.MaxDepth)
	}
	if !unstable["nvmap_consultant_search_wall_ns"] {
		t.Error("wall-clock collector must be unstable (worker-count dependent)")
	}
	for _, name := range []string{"nvmap_consultant_probes_run_total", "nvmap_consultant_probes_pruned_total",
		"nvmap_consultant_hypotheses_confirmed", "nvmap_consultant_refinement_depth",
		"nvmap_consultant_search_vtime_ns"} {
		if unstable[name] {
			t.Errorf("deterministic collector %s marked unstable", name)
		}
	}
}
