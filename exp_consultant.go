package nvmap

import (
	"fmt"
	"strings"

	"nvmap/internal/paradyn"
)

// consultantProgram has a deliberately lopsided hot spot: one statement
// does almost all the arithmetic.
const consultantProgram = `PROGRAM hotspot
REAL A(4096)
REAL B(4096)
REAL S
FORALL (I = 1:4096) A(I) = I
DO K = 1, 6
B = A * 2.0 + A * A - A / 3.0 + SQRT(A)
A = B * 0.5
END DO
S = SUM(A)
END
`

// ExperimentConsultant demonstrates the Performance Consultant of
// Section 5: "an automated module to help users find performance
// problems in their applications". The simplified W3-style search tests
// why-axis hypotheses at the whole program and refines confirmed ones
// along the Machine, CMFstmts and CMFarrays hierarchies.
func ExperimentConsultant() (string, error) {
	factory := func() (*paradyn.Tool, func() error, error) {
		s, err := NewSession(consultantProgram, WithNodes(4), WithSourceFile("hotspot.fcm"))
		if err != nil {
			return nil, nil, err
		}
		run := func() error { _, err := s.Run(); return err }
		return s.Tool, run, nil
	}
	c := paradyn.NewConsultant()
	findings, err := c.Search(factory)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Performance Consultant search over hotspot.fcm (4 nodes):\n\n")
	for _, f := range findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	b.WriteString("\nThe whole-program hypothesis confirms, then refines to the guilty\n")
	b.WriteString("statement(s) and the arrays they touch — the why/where search of the\n")
	b.WriteString("Paradyn lineage, driven here by deterministic replay.\n")

	// Sanity: the hot statement must be found.
	var hotStmt bool
	for _, f := range findings {
		if strings.HasPrefix(f.FocusLabel, "/CMFstmts/") && f.Confirmed {
			hotStmt = true
		}
	}
	if !hotStmt {
		return "", fmt.Errorf("consultant: hot statement not identified: %v", findings)
	}
	return b.String(), nil
}
