package nvmap

import (
	"fmt"
	"strings"

	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/place"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

// placeProgram is dominated by a half-length circular shift: on 8 nodes,
// CSHIFT(A, 128) over 256 elements makes node i exchange its whole
// subgrid with node (i+4)%8 — the worst case for an identity placement
// on a ring, and easy money for a placement that pairs partners up.
const placeProgram = `PROGRAM torus
REAL A(256)
REAL S
FORALL (I = 1:256) A(I) = I
A = CSHIFT(A, 128)
S = SUM(A)
END
`

// placeTopology is the 8-node ring torus every placement run uses.
func placeTopology() machine.Topology {
	return machine.Topology{GridX: 8, GridY: 1, Torus: true, LinkHop: 2 * vtime.Microsecond}
}

// placeRun is one measured placement: the interconnect counters plus the
// per-statement Routes attribution from the SAS.
type placeRun struct {
	name     string
	stats    machine.NetStats
	elapsed  vtime.Duration
	traffic  [][]int64
	topStmt  string
	topCount float64
}

// runPlacement executes placeProgram under one placement and measures
// the interconnect. Per-statement SAS questions pair each statement's
// {lineN Executes} with {? Routes}: link-traffic events attributed to
// the CMF statement that caused them.
func runPlacement(name string, placement []int, workers int) (*placeRun, error) {
	opts := []Option{
		WithNodes(8),
		WithSourceFile("torus.fcm"),
		WithTopology(placeTopology()),
	}
	if placement != nil {
		opts = append(opts, WithPlacement(placement))
	}
	if workers != 0 {
		opts = append(opts, WithWorkers(workers))
	}
	s, err := NewSession(placeProgram, opts...)
	if err != nil {
		return nil, err
	}
	w := s.EnableSASMonitor(false)
	for n := 0; n < s.Machine.Nodes(); n++ {
		w.Reg.Node(n)
	}
	// One question per source statement: its cross-link traffic.
	lines := map[int]bool{}
	for _, b := range s.Program.Blocks {
		for _, line := range b.Lines {
			lines[line] = true
		}
	}
	ids := map[int]map[int]sas.QuestionID{}
	for line := range lines {
		noun := nv.NounID(fmt.Sprintf("line%d", line))
		m, err := w.Reg.AddQuestionAll(sas.Q(
			fmt.Sprintf("{line%d Executes}, {? Routes}", line),
			sas.T(verbExecutes, noun), sas.T(verbRoutes, sas.Any)))
		if err != nil {
			return nil, err
		}
		ids[line] = m
	}
	if _, err := s.Run(); err != nil {
		return nil, err
	}
	r := &placeRun{
		name:    name,
		stats:   s.Machine.NetStats(),
		elapsed: s.Elapsed(),
		traffic: s.Machine.TrafficMatrix(),
	}
	now := s.Now()
	// The statement with the most attributed link crossings; ties break
	// toward the lowest line so the report is deterministic.
	for line := 0; line < 64; line++ {
		m, ok := ids[line]
		if !ok {
			continue
		}
		agg, err := w.Reg.AggregateResult(m, now)
		if err != nil {
			return nil, err
		}
		if agg.Count > r.topCount {
			r.topCount = agg.Count
			r.topStmt = fmt.Sprintf("line%d", line)
		}
	}
	return r, nil
}

// dilation is the average links crossed per routed message.
func (r *placeRun) dilation() float64 {
	if r.stats.Messages == 0 {
		return 0
	}
	return float64(r.stats.LinkHops) / float64(r.stats.Messages)
}

// experimentPlacement is ExperimentPlacement parametrised by worker
// width; the report is byte-identical under any setting (pinned by
// tests), like every other session output.
func experimentPlacement(workers int) (string, error) {
	// Pass 1: measure the application's traffic matrix under the
	// identity placement — the measured mapping information the
	// topology-aware algorithms consume.
	identity, err := runPlacement("identity", nil, workers)
	if err != nil {
		return "", err
	}
	topo := placeTopology()
	runs := []*placeRun{identity}
	for _, alg := range []string{"bisection", "greedy"} {
		fn, err := place.ByName(alg)
		if err != nil {
			return "", err
		}
		r, err := runPlacement(alg, fn(8, &topo, identity.traffic), workers)
		if err != nil {
			return "", err
		}
		runs = append(runs, r)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "torus.fcm on 8 nodes over a %v: CSHIFT(A, 128) pairs node i\n", &topo)
	b.WriteString("with node (i+4)%8, so the identity placement drags every exchange\n")
	b.WriteString("across 4 links while a traffic-aware placement puts partners side\n")
	b.WriteString("by side. The traffic matrix measured under identity feeds the\n")
	b.WriteString("bisection and greedy placements (measured mapping information).\n\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %14s\n",
		"placement", "messages", "crosslink", "dilation", "congestion", "virtual time")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-10s %10d %10d %10.2f %9dB %14v\n",
			r.name, r.stats.Messages, r.stats.CrossMessages, r.dilation(), r.stats.MaxLinkBytes, r.elapsed)
	}
	b.WriteString("\nWhich CMF statement causes the cross-link traffic? (per-statement\n")
	b.WriteString("SAS question {lineN Executes}, {? Routes}, answered per placement)\n\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "  %-10s %s with %.0f link crossings\n", r.name, r.topStmt, r.topCount)
	}

	// The tentpole's acceptance bar: the greedy placement strictly
	// reduces both congestion and dilation against identity, and the
	// attribution names the CSHIFT statement (line 5 of torus.fcm).
	greedy := runs[2]
	if greedy.stats.MaxLinkBytes >= identity.stats.MaxLinkBytes {
		return "", fmt.Errorf("place: greedy congestion %dB not below identity %dB",
			greedy.stats.MaxLinkBytes, identity.stats.MaxLinkBytes)
	}
	if greedy.dilation() >= identity.dilation() {
		return "", fmt.Errorf("place: greedy dilation %.2f not below identity %.2f",
			greedy.dilation(), identity.dilation())
	}
	if identity.topStmt != "line5" {
		return "", fmt.Errorf("place: identity attributes cross-link traffic to %s, want line5 (the CSHIFT)",
			identity.topStmt)
	}
	b.WriteString("\nUnder identity the SAS pins the traffic on the CSHIFT statement\n")
	b.WriteString("(line5); once a traffic-aware placement shortens the shift routes,\n")
	b.WriteString("the attribution shifts with the load. The greedy placement strictly\n")
	b.WriteString("reduces both congestion and dilation.\n")
	return b.String(), nil
}

// ExperimentPlacement compares the three placement algorithms on the
// circular-shift workload: identity as the baseline, then recursive
// bisection and the greedy congestion-aware placement computed from the
// traffic matrix measured under identity. The report tables congestion
// (heaviest link bytes), dilation (average links per message) and
// cross-link messages, and answers "which CMF statement causes the
// cross-link traffic" through per-statement SAS questions at the
// hardware level.
func ExperimentPlacement() (string, error) {
	return experimentPlacement(0)
}
