module nvmap

go 1.24
