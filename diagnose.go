package nvmap

import (
	"context"

	"nvmap/internal/diagnose"
	"nvmap/internal/obs"
	"nvmap/internal/paradyn"
)

// This file is the public doorway to the Performance Consultant: the
// budget-bounded why/where bottleneck search of Section 5, rebuilt on
// internal/diagnose. A diagnosis runs the program once with full
// instrumentation, answers as many hypothesis probes as it can from
// that single run's counters and classified idle spans, and replays the
// program with focus-constrained instrumentation only where the
// where-axis refinement needs an isolated number.

// DiagnoseConfig tunes a diagnosis search.
type DiagnoseConfig struct {
	// Budget caps probe evaluations, sampled and replayed alike
	// (0 selects diagnose.DefaultBudget; negative is rejected).
	Budget int
	// Threshold, when positive, overrides every hypothesis's own
	// confirmation threshold.
	Threshold float64
	// MaxDepth bounds where-axis refinement depth (0 selects
	// diagnose.DefaultMaxDepth).
	MaxDepth int
	// RefineStatements / RefineArrays gate the replay-based refinement
	// phases. NewSession-level diagnosis enables both by default; zero
	// value here means "default on" via Diagnose.
	DisableStatements bool
	DisableArrays     bool
	// OnFinding, when set, observes every finding the moment its probe
	// is evaluated (probe order, before the report tree is sorted). The
	// daemon's /v1/diagnose streams findings to the client through it.
	OnFinding func(diagnose.Finding)
}

// ConsultantFactory adapts a program source plus session options into
// the consultant's replay factory: every call builds a fresh,
// deterministic session over the same program. Pass the same options a
// direct NewSession would take; PRINT output is not redirected here, so
// diagnostic replays of chatty programs should omit WithOutput.
func ConsultantFactory(source string, opts ...Option) paradyn.AppFactory {
	return ConsultantFactoryContext(context.Background(), source, opts...)
}

// ConsultantFactoryContext is ConsultantFactory with a context wired
// into every replay: when the context expires or is cancelled, the
// in-flight run (base or replay) is cut at an exact virtual-time
// operation boundary and the search aborts with the run's typed error.
// This is what lets a serving daemon drain a diagnosis mid-search.
func ConsultantFactoryContext(ctx context.Context, source string, opts ...Option) paradyn.AppFactory {
	return func() (*paradyn.Tool, func() error, error) {
		s, err := NewSession(source, opts...)
		if err != nil {
			return nil, nil, err
		}
		run := func() error { _, err := s.RunContext(ctx); return err }
		return s.Tool, run, nil
	}
}

// Diagnose runs the Performance Consultant over a program and returns
// the full diagnosis report: the findings tree plus the search's own
// cost accounting (probes run and pruned against the budget, virtual
// and wall time spent searching).
func Diagnose(source string, cfg DiagnoseConfig, opts ...Option) (*diagnose.Report, error) {
	return DiagnoseContext(context.Background(), source, cfg, opts...)
}

// DiagnoseContext is Diagnose under a context: cancellation cuts the
// in-flight base run or replay at a virtual-time boundary and the
// search returns that run's typed error.
func DiagnoseContext(ctx context.Context, source string, cfg DiagnoseConfig, opts ...Option) (*diagnose.Report, error) {
	c := paradyn.NewConsultant()
	c.Budget = cfg.Budget
	c.Threshold = cfg.Threshold
	c.MaxDepth = cfg.MaxDepth
	c.RefineStatements = !cfg.DisableStatements
	c.RefineArrays = !cfg.DisableArrays
	c.OnFinding = cfg.OnFinding
	return c.Diagnose(ConsultantFactoryContext(ctx, source, opts...))
}

// RegisterDiagnosisCollectors publishes a diagnosis's search-cost
// accounting on an obs metrics registry as nvmap_consultant_* series.
// The report is read through the getter at snapshot time, so collectors
// can be registered before a search finishes (they read zero until the
// getter returns a report). Every series except the wall-clock one is
// deterministic — byte-stable metric goldens may include them; the wall
// reading is marked unstable and excluded from stable exports.
func RegisterDiagnosisCollectors(r *obs.Registry, rep func() *diagnose.Report) {
	read := func(f func(*diagnose.Report) float64) func() float64 {
		return func() float64 {
			if rp := rep(); rp != nil {
				return f(rp)
			}
			return 0
		}
	}
	r.Func("nvmap_consultant_probes_run_total", "Hypothesis-focus probes the diagnosis search evaluated.",
		obs.KindCounter, false, read(func(rp *diagnose.Report) float64 { return float64(rp.ProbesRun) }))
	r.Func("nvmap_consultant_probes_pruned_total", "Enqueued probes the search budget cut before evaluation.",
		obs.KindCounter, false, read(func(rp *diagnose.Report) float64 { return float64(rp.Pruned) }))
	r.Func("nvmap_consultant_hypotheses_confirmed", "Top-level hypotheses the diagnosis confirmed.",
		obs.KindGauge, false, read(func(rp *diagnose.Report) float64 { return float64(rp.Confirmed()) }))
	r.Func("nvmap_consultant_refinement_depth", "Deepest where-axis refinement level probed.",
		obs.KindGauge, false, read(func(rp *diagnose.Report) float64 { return float64(rp.MaxDepth) }))
	r.Func("nvmap_consultant_search_vtime_ns", "Virtual time spent acquiring probe measurements.",
		obs.KindCounter, false, read(func(rp *diagnose.Report) float64 { return float64(rp.SearchVTime) }))
	// Wall clock depends on host load and worker count, never on the
	// program: unstable, so byte-stable metric goldens skip it.
	r.Func("nvmap_consultant_search_wall_ns", "Host wall-clock the diagnosis search took.",
		obs.KindCounter, true, read(func(rp *diagnose.Report) float64 { return float64(rp.Wall) }))
}
