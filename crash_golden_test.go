package nvmap

import (
	"strings"
	"testing"

	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

// Count-style metrics converge exactly between a crashed-and-recovered
// run and a clean one: the simulator is work-conserving, so a transient
// crash shifts waits but never loses operations. Time-in-wait metrics
// (idle_time, summation_time) legitimately differ and are not asserted.
var crashCountMetrics = []string{
	"summations", "point_to_point_ops", "computations", "computation_time",
}

// crashRecovery is the tight recovery tuning the ~90µs test program
// needs: checkpoints actually happen mid-run and the failure detector
// can declare death before the run ends.
func crashRecovery() RecoveryConfig {
	return RecoveryConfig{
		CheckpointEvery: 20 * vtime.Microsecond,
		Timeout:         5 * vtime.Microsecond,
		Probes:          2,
	}
}

// runCrashed builds and runs the fault test program with a crash plan,
// a SAS monitor question, and the convergence metrics enabled.
func runCrashed(t *testing.T, plan *fault.Plan) (*Session, *DegradationReport, map[string]float64, sas.Result) {
	t.Helper()
	s, err := NewSession(faultTestProgram,
		WithNodes(4), WithSourceFile("ftest.fcm"),
		WithFaults(plan), WithRecovery(crashRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	m := s.EnableSASMonitor(false)
	q, err := m.Ask("sends during SUM(A)", "{A Sums}, {? Sends}")
	if err != nil {
		t.Fatal(err)
	}
	ems := make(map[string]*paradyn.EnabledMetric)
	for _, id := range crashCountMetrics {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ems[id] = em
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for id, em := range ems {
		vals[id] = em.Value(s.Now())
	}
	ans, err := q.Answer(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	return s, rep, vals, ans
}

func transientPlan() *fault.Plan {
	p := &fault.Plan{Seed: 7}
	p.CrashAt(2, vtime.Time(30*vtime.Microsecond)).RestartAfter(10 * vtime.Microsecond)
	return p
}

// Satellite 3: the same seed and crash plan must reproduce the run
// bit-identically — elapsed clock, degradation report, metric values
// and metric histograms.
func TestCrashDeterministic(t *testing.T) {
	plan2 := func() *fault.Plan {
		p := transientPlan()
		p.CrashAt(3, vtime.Time(60*vtime.Microsecond)) // permanent, on top
		return p
	}
	s1, r1, v1, a1 := runCrashed(t, plan2())
	s2, r2, v2, a2 := runCrashed(t, plan2())
	if s1.Elapsed() != s2.Elapsed() {
		t.Fatalf("elapsed differs: %v vs %v", s1.Elapsed(), s2.Elapsed())
	}
	if r1.String() != r2.String() {
		t.Fatalf("degradation reports differ:\n%s\nvs\n%s", r1, r2)
	}
	for id, a := range v1 {
		if b := v2[id]; a != b {
			t.Fatalf("metric %s differs: %g vs %g", id, a, b)
		}
	}
	if a1.Count != a2.Count || a1.EventTime != a2.EventTime || a1.SatisfiedTime != a2.SatisfiedTime {
		t.Fatalf("SAS answers differ: %+v vs %+v", a1, a2)
	}
	// Histograms must be bin-for-bin identical, not just same totals.
	for i, em1 := range s1.Tool.Enabled() {
		em2 := s2.Tool.Enabled()[i]
		if em1.Hist.Total() != em2.Hist.Total() || em1.Hist.Sparkline(80) != em2.Hist.Sparkline(80) {
			t.Fatalf("histogram %s differs between identical runs", em1.Metric.ID)
		}
	}
	if r1.Injected.NodeCrashes != 2 || r1.Injected.NodeRestarts != 1 {
		t.Fatalf("crash ledger wrong: %+v", r1.Injected)
	}
}

// Acceptance: a seeded run with one mid-run crash and restart converges
// to the same metric-focus answers as the fault-free run — the
// checkpoint + journal replay rebuilt everything the crash wiped.
func TestTransientCrashConverges(t *testing.T) {
	s, rep, vals, ans := runCrashed(t, transientPlan())
	clean, cleanRep, cleanVals, cleanAns := runCrashed(t, nil)
	if !cleanRep.Zero() {
		t.Fatalf("clean run degraded: %s", cleanRep)
	}
	if rep.Zero() {
		t.Fatal("crash plan injected nothing")
	}
	for id, v := range vals {
		if cv := cleanVals[id]; v != cv {
			t.Fatalf("metric %s did not converge: crashed=%g clean=%g", id, v, cv)
		}
	}
	if ans.Count != cleanAns.Count {
		t.Fatalf("SAS question count did not converge: crashed=%g clean=%g", ans.Count, cleanAns.Count)
	}
	if ans.Count == 0 {
		t.Fatal("SAS question measured nothing; convergence is vacuous")
	}
	// The recovery actually happened — from a checkpoint, with replay.
	if rep.Supervisor.Recoveries+rep.Supervisor.ColdRecoveries != 1 {
		t.Fatalf("expected exactly one recovery: %+v", rep.Supervisor)
	}
	if rep.Checkpoints.Saves == 0 {
		t.Fatal("no checkpoints were taken")
	}
	if rep.RecoveredTime != 10*vtime.Microsecond || rep.LostTime != 0 {
		t.Fatalf("recovered/lost accounting wrong: %v / %v", rep.RecoveredTime, rep.LostTime)
	}
	// No answer is partial: the node came back.
	for _, em := range s.Tool.Enabled() {
		if p := em.Partial(); p != "" {
			t.Fatalf("recovered run annotated partial: %q", p)
		}
	}
	_ = clean
}

// Acceptance: a permanent crash yields annotated partial answers, and
// the report's lost-time accounting matches the crash window exactly.
func TestPermanentCrashPartial(t *testing.T) {
	plan := &fault.Plan{Seed: 7}
	plan.CrashAt(2, vtime.Time(40*vtime.Microsecond))
	s, rep, _, _ := runCrashed(t, plan)

	if len(rep.Crashes) != 1 || rep.Crashes[0].Recovered {
		t.Fatalf("expected one unrecovered window: %+v", rep.Crashes)
	}
	w := rep.Crashes[0]
	if want := s.Now().Sub(w.Down); rep.LostTime != want {
		t.Fatalf("lost time %v does not match crash window %v", rep.LostTime, want)
	}
	if rep.RecoveredTime != 0 {
		t.Fatalf("nothing recovered, yet RecoveredTime=%v", rep.RecoveredTime)
	}
	if rep.Injected.DeadTime != rep.LostTime {
		t.Fatalf("injector dead time %v != report lost time %v", rep.Injected.DeadTime, rep.LostTime)
	}
	if len(rep.LostNodes) != 1 || rep.LostNodes[0] != 2 {
		t.Fatalf("lost nodes wrong: %v", rep.LostNodes)
	}
	// Every whole-program answer is annotated partial.
	for _, em := range s.Tool.Enabled() {
		p := em.Partial()
		if !strings.Contains(p, "partial: lost node 2") {
			t.Fatalf("metric %s answer not annotated: %q", em.Metric.ID, p)
		}
	}
	// Display rows carry the annotation.
	rows := MetricRows(s.Tool.Enabled(), s.Now())
	if rows[0].Partial == "" {
		t.Fatal("display row lost the partial annotation")
	}
	if !strings.Contains(paradyn.Table("t", rows), "(partial: lost node 2") {
		t.Fatal("table does not render the partial annotation")
	}
	// The heartbeat protocol detected the death on its own.
	if rep.Supervisor.Detections == 0 {
		t.Fatalf("supervisor never detected the dead node: %+v", rep.Supervisor)
	}
	if s.Supervisor().Health(2).String() != "dead" {
		t.Fatalf("supervisor believes node 2 is %v", s.Supervisor().Health(2))
	}
	// A focus on a surviving node is NOT annotated; one on the dead node is.
	nodeFocus := func(name string) paradyn.Focus {
		r, ok := s.Tool.Axis.Find("Machine/" + name)
		if !ok {
			t.Fatalf("no %s resource", name)
		}
		f, err := paradyn.NewFocus(r)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	emAlive, err := s.Tool.EnableMetric("computations", nodeFocus("node1"))
	if err != nil {
		t.Fatal(err)
	}
	emDead, err := s.Tool.EnableMetric("computations", nodeFocus("node2"))
	if err != nil {
		t.Fatal(err)
	}
	if p := emAlive.Partial(); p != "" {
		t.Fatalf("surviving-node focus annotated: %q", p)
	}
	if p := emDead.Partial(); p == "" {
		t.Fatal("dead-node focus not annotated")
	}
	if rep.String() == "" || !strings.Contains(rep.String(), "never recovered") {
		t.Fatalf("report does not tell the story:\n%s", rep)
	}
}

// With periodic checkpoints disabled, a reboot recovers cold: the full
// journals replay onto the empty node, and the answers still converge.
func TestColdRecoveryConverges(t *testing.T) {
	run := func(plan *fault.Plan) (map[string]float64, *DegradationReport) {
		s, err := NewSession(faultTestProgram,
			WithNodes(4), WithSourceFile("ftest.fcm"), WithFaults(plan),
			WithRecovery(RecoveryConfig{CheckpointEvery: -1}))
		if err != nil {
			t.Fatal(err)
		}
		vals := make(map[string]float64)
		ems := make(map[string]*paradyn.EnabledMetric)
		for _, id := range crashCountMetrics {
			em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
			if err != nil {
				t.Fatal(err)
			}
			ems[id] = em
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for id, em := range ems {
			vals[id] = em.Value(s.Now())
		}
		return vals, rep
	}
	vals, rep := run(transientPlan())
	cleanVals, _ := run(nil)
	if rep.Supervisor.ColdRecoveries != 1 || rep.Supervisor.Recoveries != 0 {
		t.Fatalf("expected one cold recovery: %+v", rep.Supervisor)
	}
	if rep.Checkpoints.Saves != 0 {
		t.Fatalf("checkpoints taken despite being disabled: %+v", rep.Checkpoints)
	}
	if rep.Supervisor.ProbesReplayed == 0 {
		t.Fatal("cold recovery replayed nothing")
	}
	for id, v := range vals {
		if cv := cleanVals[id]; v != cv {
			t.Fatalf("metric %s did not converge cold: %g vs %g", id, v, cv)
		}
	}
}
