package nvmap

import (
	"fmt"
	"sort"
	"strings"

	"nvmap/internal/checkpoint"
	"nvmap/internal/daemon"
	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

// This file wires the deterministic fault injector (internal/fault)
// through the session: message-level faults on the simulated machine,
// bounded-capacity overflow on the daemon channel, and lossy cross-node
// SAS links. The paper's architecture assumes all three paths are
// reliable; Config.Faults lets an experiment relax that assumption and
// measure how the mapping mechanisms degrade — deterministically, so a
// degraded run is as reproducible as a clean one.

// maxReportDetail bounds every per-entry detail slice in the report
// (crashes, links, dropped-sample metrics, degraded metrics, lost
// nodes). A chaotic long run can accumulate thousands of crash windows;
// the report keeps the first maxReportDetail of each in deterministic
// order and records exactly how many were elided in Truncated. All
// aggregate fields (recovered/lost time, resync totals) are computed
// over the full set before truncation, so bounding loses detail rows,
// never accounting.
const maxReportDetail = 64

// TruncationCounts records, per detail section, how many entries the
// report elided to stay bounded. Zero everywhere means nothing was cut.
type TruncationCounts struct {
	Crashes         int
	Links           int
	DroppedSamples  int
	DegradedMetrics int
	LostNodes       int
}

// CutInfo records why and where a governed run was cut short. At is the
// global virtual clock before the aborted operation — the exact instant
// up to which every metric and histogram is complete.
type CutInfo struct {
	Kind   ErrorKind
	Op     string
	Node   int
	At     vtime.Time
	Reason string
}

// DegradationReport summarises what a faulted run lost and what the
// recovery machinery did about it. Session.Run returns one (never nil);
// with no fault plan configured it is all zeros.
type DegradationReport struct {
	// Injected is the fault injector's own ledger: what the plan made
	// happen (drops, duplicates, delays, stalls, SAS perturbations).
	Injected fault.Report
	// Channel is the daemon conduit's traffic accounting, including
	// overflow drops and mapping-record retries.
	Channel daemon.Stats
	// DroppedSamples counts histogram samples lost to channel overflow,
	// per metric ID.
	DroppedSamples map[string]int
	// DegradedMetrics lists (sorted) the metric IDs whose histograms
	// have holes. Aggregate metric values are unaffected — they read
	// the instrumentation counters directly.
	DegradedMetrics []string
	// MappingRetries counts dynamic mapping records that overflow
	// parked and redelivered instead of dropping (unrecoverable state
	// is never lost).
	MappingRetries int
	// Links reports the reliability protocol of each cross-node SAS
	// link created with Monitor.ExportReliable, in creation order.
	Links []sas.LinkStats
	// Resyncs totals the snapshot resynchronisations across all links.
	Resyncs int
	// Crashes lists every fail-stop window, in enactment order. A
	// recovered window accounts Up-Down of dead time; an unrecovered
	// one ran dead from Down to the end of the run.
	Crashes []machine.CrashWindow
	// RecoveredTime sums the dead time of windows that rebooted;
	// LostTime sums end-of-run minus Down over windows that never did.
	// Their sum equals Injected.DeadTime exactly.
	RecoveredTime vtime.Duration
	LostTime      vtime.Duration
	// LostNodes lists nodes that were still dead when the run ended —
	// every metric-focus answer covering them is annotated partial.
	LostNodes []int
	// Supervisor is the daemon watchdog's activity (detection, journal
	// replay, definition re-registration); Checkpoints is the snapshot
	// store's ledger. Both stay zero when recovery is disabled.
	Supervisor  daemon.SupervisorStats
	Checkpoints checkpoint.Stats
	// Cut records why the run was cut short (cancellation, deadline,
	// budget, stall, contained panic); nil for runs that finished on
	// their own.
	Cut *CutInfo
	// Budget is the budget governor's accounting — charged operations,
	// high-water backlog and active-set readings, shed escalations.
	// All zero when no budget was configured.
	Budget BudgetStats
	// Truncated records how many detail entries each bounded slice
	// elided (see maxReportDetail).
	Truncated TruncationCounts
}

// Zero reports whether the run suffered no degradation at all. A cut
// run or one the governor shed fidelity from is never zero; a budgeted
// run that finished under every ceiling without shedding still is.
func (r *DegradationReport) Zero() bool {
	if r.Cut != nil || r.Budget.Sheds != 0 {
		return false
	}
	if !r.Injected.Zero() || r.Channel.Dropped != 0 || r.MappingRetries != 0 ||
		len(r.DroppedSamples) != 0 || len(r.DegradedMetrics) != 0 ||
		len(r.Crashes) != 0 {
		return false
	}
	for _, l := range r.Links {
		if l.Retransmits != 0 || l.Resyncs != 0 || l.DuplicatesDropped != 0 || l.Gaps != 0 {
			return false
		}
	}
	return true
}

// String renders the report deterministically (map keys sorted, zero
// sections omitted).
func (r *DegradationReport) String() string {
	if r.Zero() {
		return "no degradation\n"
	}
	var b strings.Builder
	if r.Cut != nil {
		fmt.Fprintf(&b, "cut: %s at t=%v", r.Cut.Kind, r.Cut.At)
		if r.Cut.Op != "" {
			fmt.Fprintf(&b, " (boundary %s/%s)", r.Cut.Op, nodeLabel(r.Cut.Node))
		}
		if r.Cut.Reason != "" {
			fmt.Fprintf(&b, ": %s", r.Cut.Reason)
		}
		b.WriteString("\n")
	}
	if r.Budget.Sheds != 0 {
		fmt.Fprintf(&b, "budget: shed to level %d (%d escalations); backlog high-water %d, active-set high-water %d\n",
			r.Budget.ShedLevel, r.Budget.Sheds, r.Budget.MaxBacklog, r.Budget.MaxActiveSet)
	}
	if !r.Injected.Zero() {
		b.WriteString("injected:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Injected.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	if r.Channel.Dropped != 0 || r.MappingRetries != 0 || r.Channel.Backpressured != 0 {
		b.WriteString("channel:\n")
		if r.Channel.Dropped != 0 {
			fmt.Fprintf(&b, "  samples dropped: %d\n", r.Channel.Dropped)
		}
		if r.MappingRetries != 0 {
			fmt.Fprintf(&b, "  mapping records retried: %d\n", r.MappingRetries)
		}
		if r.Channel.Backpressured != 0 {
			fmt.Fprintf(&b, "  backpressure stalls: %d\n", r.Channel.Backpressured)
		}
	}
	if len(r.DroppedSamples) != 0 {
		b.WriteString("dropped samples by metric:\n")
		ids := make([]string, 0, len(r.DroppedSamples))
		for id := range r.DroppedSamples {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "  %s: %d\n", id, r.DroppedSamples[id])
		}
		if r.Truncated.DroppedSamples != 0 {
			fmt.Fprintf(&b, "  (+%d more metrics)\n", r.Truncated.DroppedSamples)
		}
	}
	if len(r.DegradedMetrics) != 0 {
		fmt.Fprintf(&b, "degraded metrics: %s", strings.Join(r.DegradedMetrics, ", "))
		if r.Truncated.DegradedMetrics != 0 {
			fmt.Fprintf(&b, " (+%d more)", r.Truncated.DegradedMetrics)
		}
		b.WriteString("\n")
	}
	for i, l := range r.Links {
		if l.Retransmits == 0 && l.Resyncs == 0 && l.DuplicatesDropped == 0 && l.Gaps == 0 {
			continue
		}
		fmt.Fprintf(&b, "sas link %d: sent %d acked %d retransmits %d resyncs %d dups-dropped %d gaps %d\n",
			i, l.Sent, l.Acked, l.Retransmits, l.Resyncs, l.DuplicatesDropped, l.Gaps)
	}
	if r.Truncated.Links != 0 {
		fmt.Fprintf(&b, "sas links: (+%d more)\n", r.Truncated.Links)
	}
	if len(r.Crashes) != 0 {
		b.WriteString("crashes:\n")
		for _, w := range r.Crashes {
			if w.Recovered {
				fmt.Fprintf(&b, "  node %d down at %v, recovered at %v (%v dead)\n",
					w.Node, w.Down, w.Up, w.Up.Sub(w.Down))
			} else {
				fmt.Fprintf(&b, "  node %d down at %v, never recovered\n", w.Node, w.Down)
			}
		}
		if r.Truncated.Crashes != 0 {
			fmt.Fprintf(&b, "  (+%d more windows)\n", r.Truncated.Crashes)
		}
		fmt.Fprintf(&b, "  recovered time: %v, lost time: %v\n", r.RecoveredTime, r.LostTime)
		if len(r.LostNodes) != 0 {
			nodes := make([]string, len(r.LostNodes))
			for i, n := range r.LostNodes {
				nodes[i] = fmt.Sprintf("%d", n)
			}
			extra := ""
			if r.Truncated.LostNodes != 0 {
				extra = fmt.Sprintf(" +%d more", r.Truncated.LostNodes)
			}
			fmt.Fprintf(&b, "  lost nodes: %s%s (answers are partial)\n", strings.Join(nodes, ", "), extra)
		}
		sv := r.Supervisor
		if sv != (daemon.SupervisorStats{}) {
			fmt.Fprintf(&b, "supervision: %d checkpoints, %d suspicions (%d false alarms), %d detections",
				sv.Checkpoints, sv.Suspicions, sv.FalseAlarms, sv.Detections)
			if sv.Detections > 0 {
				fmt.Fprintf(&b, " (lag %v)", sv.DetectionLag)
			}
			fmt.Fprintf(&b, "\n  recoveries: %d from checkpoint, %d cold; replayed %d sas + %d probe records; defs replayed %d, suppressed %d\n",
				sv.Recoveries, sv.ColdRecoveries, sv.SASReplayed, sv.ProbesReplayed, sv.DefsReplayed, sv.DefsSuppressed)
		}
		if r.Checkpoints.Saves != 0 || r.Checkpoints.Corrupt != 0 {
			fmt.Fprintf(&b, "checkpoints: %d saved (%d bytes), %d restored, %d corrupt\n",
				r.Checkpoints.Saves, r.Checkpoints.Bytes, r.Checkpoints.Restores, r.Checkpoints.Corrupt)
		}
	}
	return b.String()
}

// Faults returns the session's fault injector (nil when Config.Faults
// was unset). Experiments read its Report for the raw injection ledger.
func (s *Session) Faults() *fault.Injector { return s.faults }

// degradation assembles the end-of-run report from every layer's
// accounting.
func (s *Session) degradation() *DegradationReport {
	rep := &DegradationReport{
		Injected:       s.faults.Report(),
		Channel:        s.Tool.Channel().Stats(),
		DroppedSamples: s.Tool.DroppedSamples(),
	}
	rep.MappingRetries = rep.Channel.Retried
	for _, em := range s.Tool.Enabled() {
		if em.Degraded() {
			rep.DegradedMetrics = append(rep.DegradedMetrics, em.Metric.ID)
		}
	}
	sort.Strings(rep.DegradedMetrics)
	rep.DegradedMetrics = dedupSorted(rep.DegradedMetrics)
	if s.monitor != nil {
		for _, l := range s.monitor.links {
			st := l.Stats()
			rep.Links = append(rep.Links, st)
			rep.Resyncs += st.Resyncs
		}
	}
	s.finalizeCrashes(s.Now())
	end := s.Now()
	for _, w := range s.Machine.CrashWindows() {
		rep.Crashes = append(rep.Crashes, w)
		if w.Recovered {
			rep.RecoveredTime += w.Up.Sub(w.Down)
		} else {
			rep.LostTime += end.Sub(w.Down)
			rep.LostNodes = append(rep.LostNodes, w.Node)
		}
	}
	sort.Ints(rep.LostNodes)
	if s.recovery != nil {
		rep.Supervisor = s.recovery.sv.Stats()
		rep.Checkpoints = s.recovery.store.Stats()
	}
	rep.Cut = s.cutInfo()
	if s.budget != nil {
		rep.Budget = s.budget.Stats()
	}
	boundReport(rep)
	return rep
}

// boundReport truncates the report's detail slices to maxReportDetail
// entries each, recording the exact elided counts. Aggregates were
// already computed over the full sets, and the kept prefixes are
// deterministic (enactment order for crashes and links, sorted order
// for metric IDs and nodes), so a bounded report is still byte-stable.
func boundReport(r *DegradationReport) {
	if n := len(r.Crashes) - maxReportDetail; n > 0 {
		r.Crashes = r.Crashes[:maxReportDetail]
		r.Truncated.Crashes = n
	}
	if n := len(r.Links) - maxReportDetail; n > 0 {
		r.Links = r.Links[:maxReportDetail]
		r.Truncated.Links = n
	}
	if n := len(r.DegradedMetrics) - maxReportDetail; n > 0 {
		r.DegradedMetrics = r.DegradedMetrics[:maxReportDetail]
		r.Truncated.DegradedMetrics = n
	}
	if n := len(r.LostNodes) - maxReportDetail; n > 0 {
		r.LostNodes = r.LostNodes[:maxReportDetail]
		r.Truncated.LostNodes = n
	}
	if n := len(r.DroppedSamples) - maxReportDetail; n > 0 {
		ids := make([]string, 0, len(r.DroppedSamples))
		for id := range r.DroppedSamples {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids[maxReportDetail:] {
			delete(r.DroppedSamples, id)
		}
		r.Truncated.DroppedSamples = n
	}
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// ExportReliable forwards SAS sentences matching pattern from one
// node's SAS to another's over a sequenced, retransmitting link
// (Section 4.2.3's cross-node forwarding, hardened per the fault
// model). When the session has a fault plan with SAS faults, the link
// runs over a lossy transport driven by the session injector; resync
// enables snapshot recovery on persistent gaps. The link's Flush models
// the sender's retransmit timer; the session report collects its stats.
func (m *Monitor) ExportReliable(fromNode, toNode int, pattern sas.Term) (*sas.ReliableLink, error) {
	from, to := m.Reg.Node(fromNode), m.Reg.Node(toNode)
	var inner sas.Transport
	resync := true
	if inj := m.session.faults; inj != nil {
		inner = &sas.LossyTransport{Inj: inj}
		if p := m.session.plan; p != nil {
			resync = p.SAS.Resync
		}
	}
	link, err := from.ExportReliable(pattern, to, inner, resync)
	if err != nil {
		return nil, err
	}
	m.links = append(m.links, link)
	return link, nil
}
