package nvmap

import (
	"fmt"
	"sort"
	"strings"

	"nvmap/internal/par"
)

// Experiment is one reproducible artefact of the paper: a figure, a
// table, or one of the quantitative ablations the text argues in prose.
// Running an experiment produces the textual report recorded in
// EXPERIMENTS.md.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// Experiments returns every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: mapping taxonomy and cost assignment", ExperimentFig1},
		{"fig2", "Figure 2: static mapping information (PIF)", ExperimentFig2},
		{"fig3", "Figure 3: types of mapping information", ExperimentFig3},
		{"fig5", "Figures 4-5: the SAS when a message is sent", ExperimentFig5},
		{"fig6", "Figure 6: performance questions over the SAS", ExperimentFig6},
		{"fig7", "Figure 7: asynchronous activation and the shadow remedy", ExperimentFig7},
		{"fig8", "Figure 8: the CMF where axis", ExperimentFig8},
		{"fig9", "Figure 9: CMF and CMRTS metrics", ExperimentFig9},
		{"ablsplit", "Ablation: split vs merge cost assignment", AblationSplitMerge},
		{"abldyn", "Ablation: dynamic vs always-on instrumentation", AblationDynInst},
		{"ablsas", "Ablation: SAS relevance filtering", AblationSASFilter},
		{"ablorder", "Ablation: ordered performance questions", AblationOrderedQuestions},
		{"ablfuse", "Ablation: statement fusion vs attribution", AblationFusion},
		{"consultant", "Section 5: the Performance Consultant's search", ExperimentConsultant},
		{"placement", "Topology placement: identity vs bisection vs greedy", ExperimentPlacement},
	}
}

// RunExperiment runs one experiment by ID.
func RunExperiment(id string) (string, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run()
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return "", fmt.Errorf("nvmap: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// RunAllExperiments concatenates every experiment's report. Each
// experiment builds its own sessions over its own machine, so the
// drivers run concurrently on a worker pool (the compile cache and the
// vocabulary interner are the only shared state, and both are
// thread-safe); the reports are assembled in presentation order, so the
// output is identical to running them one by one. Errors keep the
// sequential contract: the first failing experiment in presentation
// order is reported.
func RunAllExperiments() (string, error) {
	exps := Experiments()
	outs := make([]string, len(exps))
	errs := make([]error, len(exps))
	par.New(0).Do(len(exps), func(i int) {
		// One experiment panicking must not take down its siblings (or
		// the process): contain it as that experiment's error.
		defer func() {
			if v := recover(); v != nil {
				errs[i] = fmt.Errorf("%w: %v", ErrPanicked, v)
			}
		}()
		outs[i], errs[i] = exps[i].Run()
	})
	var b strings.Builder
	for i, e := range exps {
		if errs[i] != nil {
			return "", fmt.Errorf("nvmap: experiment %s: %w", e.ID, errs[i])
		}
		fmt.Fprintf(&b, "==== %s — %s ====\n\n%s\n", e.ID, e.Title, outs[i])
	}
	return b.String(), nil
}
