package nvmap

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"nvmap/internal/budget"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// TestSessionErrorUnwrapChains is the service-layer contract for typed
// failures: whatever a server wraps around a run error — request IDs,
// tenant labels, retry context, any number of %w layers — errors.Is
// must still see the root cause (context.Canceled,
// context.DeadlineExceeded, ErrBudgetExceeded) and errors.As must still
// recover the *SessionError with its kind and cut instant.
func TestSessionErrorUnwrapChains(t *testing.T) {
	sentinels := []error{context.Canceled, context.DeadlineExceeded, ErrBudgetExceeded, ErrStalled, ErrPanicked}

	cases := []struct {
		name string
		run  func(t *testing.T) error
		kind ErrorKind
		want error // the sentinel this failure must unwrap to
	}{
		{
			name: "cancelled",
			run: func(t *testing.T) error {
				s := mustSession(t, WithNodes(2))
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				_, err := s.RunContext(ctx)
				return err
			},
			kind: ErrorCancelled,
			want: context.Canceled,
		},
		{
			name: "deadline",
			run: func(t *testing.T) error {
				s := mustSession(t, WithNodes(2))
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				defer cancel()
				_, err := s.RunContext(ctx)
				return err
			},
			kind: ErrorDeadline,
			want: context.DeadlineExceeded,
		},
		{
			name: "over-budget-ops",
			run: func(t *testing.T) error {
				s := mustSession(t, WithNodes(2), WithBudget(Budget{MaxOps: 50}))
				_, err := s.RunContext(context.Background())
				return err
			},
			kind: ErrorOverBudget,
			want: ErrBudgetExceeded,
		},
		{
			name: "over-budget-virtual-time",
			run: func(t *testing.T) error {
				s := mustSession(t, WithNodes(2), WithBudget(Budget{MaxVirtualTime: vtime.Microsecond}))
				_, err := s.RunContext(context.Background())
				return err
			},
			kind: ErrorOverBudget,
			want: ErrBudgetExceeded,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.run(t)
			if raw == nil {
				t.Fatal("run succeeded, wanted a typed failure")
			}
			// Two service-style layers, the way a daemon handler would
			// wrap before logging or returning to a client.
			wrapped := fmt.Errorf("handle request 42: %w",
				fmt.Errorf("session for tenant %q: %w", "alice", raw))

			if !errors.Is(wrapped, tc.want) {
				t.Fatalf("errors.Is(%v) false through service wrapping: %v", tc.want, wrapped)
			}
			for _, other := range sentinels {
				if other != tc.want && errors.Is(wrapped, other) {
					t.Fatalf("errors.Is(%v) true for a %s failure", other, tc.name)
				}
			}
			var serr *SessionError
			if !errors.As(wrapped, &serr) {
				t.Fatalf("errors.As(*SessionError) false: %v", wrapped)
			}
			if serr.Kind != tc.kind {
				t.Fatalf("kind %v, want %v", serr.Kind, tc.kind)
			}
			if serr.At < 0 {
				t.Fatalf("cut instant %v", serr.At)
			}
			// The one-step Unwrap also reaches the sentinel, so callers
			// can walk the chain by hand if they must.
			if !errors.Is(serr.Unwrap(), tc.want) {
				t.Fatalf("SessionError.Unwrap() = %v, want %v", serr.Unwrap(), tc.want)
			}
		})
	}
}

// TestShedLadderStepOrdering pins the MaxChannelBacklog ladder at the
// governor level: escalations climb 1 → 2 → 3 one step at a time (never
// skipping, never repeating a level), stop at MaxShedLevel, and only
// then does a still-over-limit backlog hard-fail.
func TestShedLadderStepOrdering(t *testing.T) {
	const limit = 8
	g := budget.New(budget.Limits{MaxChannelBacklog: limit})
	pressure := 0
	g.SetProbes(func() int { return pressure }, nil)
	var steps []int
	g.OnShed(func(level int) { steps = append(steps, level) })

	// check runs enough boundary checks to land one probe (probes are
	// sampled every 8 checks).
	check := func(t *testing.T) error {
		t.Helper()
		var last error
		for i := 0; i < 8; i++ {
			if err := g.Check(vtime.Time(100)); err != nil {
				last = err
			}
		}
		return last
	}

	// Below 75% pressure: no escalation.
	pressure = (3*limit)/4 - 1
	if err := check(t); err != nil || len(steps) != 0 {
		t.Fatalf("pre-pressure: err %v steps %v", err, steps)
	}
	// Holding at 75%+ climbs exactly one level per probe.
	pressure = limit // at the limit, shed headroom left: escalate, don't fail
	for want := 1; want <= budget.MaxShedLevel; want++ {
		if err := check(t); err != nil {
			t.Fatalf("level %d: governor failed while ladder had headroom: %v", want, err)
		}
		if len(steps) != want || steps[want-1] != want {
			t.Fatalf("after probe %d: steps %v, want 1..%d in order", want, steps, want)
		}
	}
	// Ladder exhausted: pressure over the limit now hard-fails...
	pressure = limit + 1
	err := check(t)
	var ex *budget.Exceeded
	if !errors.As(err, &ex) || ex.Resource != "daemon-channel backlog" {
		t.Fatalf("post-ladder over-limit check: %v", err)
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("exceeded does not unwrap to sentinel: %v", err)
	}
	// ...and no further escalation was recorded past MaxShedLevel.
	if len(steps) != budget.MaxShedLevel {
		t.Fatalf("steps %v, want exactly %d", steps, budget.MaxShedLevel)
	}
	if st := g.Stats(); st.ShedLevel != budget.MaxShedLevel || st.Sheds != budget.MaxShedLevel {
		t.Fatalf("stats %+v", st)
	}
}

// TestShedLadderThroughSession pins the ladder's facade wiring: a tight
// backlog ceiling escalates the tool's shed level monotonically (the
// tool never lowers it mid-run), the report's final ShedLevel matches
// the tool's, and each level doubles the effective sampling interval —
// coarser fidelity, not lost answers.
func TestShedLadderThroughSession(t *testing.T) {
	s := mustSession(t, WithNodes(4),
		WithSampleEvery(vtime.Microsecond),
		WithBudget(Budget{MaxChannelBacklog: 2}))
	for _, id := range []string{"computations", "computation_time", "summations", "summation_time"} {
		if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.RunContext(context.Background())
	if err != nil {
		var serr *SessionError
		if !errors.As(err, &serr) || serr.Kind != ErrorOverBudget {
			t.Fatalf("err = %v", err)
		}
	}
	if rep.Budget.Sheds == 0 {
		t.Skip("backlog never pressured the ladder on this run shape")
	}
	if got, want := s.Tool.ShedLevel(), rep.Budget.ShedLevel; got != want {
		t.Fatalf("tool shed level %d, report %d", got, want)
	}
	if rep.Budget.ShedLevel > budget.MaxShedLevel {
		t.Fatalf("shed level %d past the ladder", rep.Budget.ShedLevel)
	}
	// Shed is a ratchet: a later, lower request must not reduce it.
	before := s.Tool.ShedLevel()
	s.Tool.Shed(before - 1)
	if s.Tool.ShedLevel() != before {
		t.Fatalf("Shed(%d) lowered the level from %d", before-1, s.Tool.ShedLevel())
	}
}
