package nvmap

import (
	"nvmap/internal/checkpoint"
	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/obs"
	"nvmap/internal/sas"
)

// This file wires the self-observability plane (internal/obs) through
// the session: the measurement tool pointed at itself. When enabled,
// every pipeline stage — machine collectives and parallel node regions,
// daemon channel traffic, SAS notifications, sampling rounds,
// checkpoint/restore, PIF import and the run itself — records
// (virtual-time, wall-time, node, stage) spans on one tracer, and the
// components' existing statistics become pull-model collectors on one
// metrics registry. The plane is off by default; disabled, every record
// site is a single nil pointer test and no output changes by a byte.

// ObservabilityConfig tunes the self-observability plane.
type ObservabilityConfig struct {
	// TraceCapacity bounds the span ring buffer (0 selects the default;
	// negative keeps every span).
	TraceCapacity int
	// HistBins sets the resolution of the plane's virtual-time
	// histograms (0 = default).
	HistBins int
}

// Observability returns the session's observability plane, nil when the
// session was built without WithObservability.
func (s *Session) Observability() *obs.Plane { return s.obsPlane }

// obsTracer is the nil-safe tracer accessor the session's own record
// sites use.
func (s *Session) obsTracer() *obs.Tracer { return s.obsPlane.Trace() }

// PerturbationReport attributes the run's wall-clock self-cost to named
// pipeline stages and abstraction levels — the tool applying the
// paper's mapping mechanisms to its own overhead. It covers the most
// recent Run; nil before Run or when observability is disabled.
func (s *Session) PerturbationReport() *obs.PerturbationReport {
	if s.obsPlane == nil || !s.runMeasured {
		return nil
	}
	r := obs.BuildPerturbation(s.runBase, s.obsPlane.Tracer.Totals(), s.runWall)
	return &r
}

// wireObs attaches the plane's span recording and metric collectors to
// a freshly built session. The machine's collective operations and
// parallel regions record bracketing spans directly (SetObs); node-side
// events — compute, idle, receive, crash, restart — arrive through the
// observer stream, which the engine replays in deterministic node order
// under any worker count, so the span sequence is byte-stable.
func wireObs(s *Session, p *obs.Plane) {
	s.obsPlane = p
	tr := p.Tracer
	s.Machine.SetObs(tr)
	s.Machine.Observe(func(e machine.Event) {
		switch e.Kind {
		case machine.EvCompute, machine.EvIdle, machine.EvRecv,
			machine.EvCrash, machine.EvRestart:
			// Collective kinds are excluded: Send/Dispatch/Broadcast/
			// Reduce/Barrier already recorded a Begin/End span on the
			// driving goroutine; recording their events too would
			// double-count the stage.
			tr.Record(machine.StageFor(e.Kind), e.Tag, e.Node, e.Start, e.End)
		}
	})
	registerSessionCollectors(s, p.Metrics)
}

// registerSessionCollectors publishes the stack's existing statistics
// structures as pull-model collectors: the registry reads them at
// snapshot time, so the legacy accessors and the metrics view can never
// disagree. Values that depend on the worker count or on process-wide
// history are registered unstable and excluded from byte-stable
// exports.
func registerSessionCollectors(s *Session, r *obs.Registry) {
	machTotal := func(read func(machine.NodeStats) float64) func() float64 {
		return func() float64 {
			var sum float64
			for n := 0; n < s.Machine.Nodes(); n++ {
				sum += read(s.Machine.Stats(n))
			}
			return sum
		}
	}
	r.Func("nvmap_machine_compute_ops_total", "Elemental operations computed across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.ComputeOps) }))
	r.Func("nvmap_machine_sends_total", "Point-to-point sends across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.Sends) }))
	r.Func("nvmap_machine_send_bytes_total", "Point-to-point bytes sent across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.SendBytes) }))
	r.Func("nvmap_machine_recvs_total", "Point-to-point deliveries across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.Recvs) }))
	r.Func("nvmap_machine_dispatches_total", "Node code block activations across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.Dispatches) }))
	r.Func("nvmap_machine_compute_vtime_ns", "Virtual time spent computing across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.ComputeTime) }))
	r.Func("nvmap_machine_idle_vtime_ns", "Virtual time spent idle across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.IdleTime) }))
	r.Func("nvmap_machine_crashes_total", "Fail-stop crashes enacted across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.Crashes) }))
	r.Func("nvmap_machine_restarts_total", "Node reboots enacted across all nodes.",
		obs.KindCounter, false, machTotal(func(st machine.NodeStats) float64 { return float64(st.Restarts) }))
	// Interconnect counters, live only when the machine has a topology
	// (all zeros otherwise — NetStats on a flat machine is a nil check).
	if s.Machine.Topology() != nil {
		netStat := func(read func(machine.NetStats) float64) func() float64 {
			return func() float64 { return read(s.Machine.NetStats()) }
		}
		r.Func("nvmap_machine_net_messages_total", "Point-to-point messages routed over the topology.",
			obs.KindCounter, false, netStat(func(st machine.NetStats) float64 { return float64(st.Messages) }))
		r.Func("nvmap_machine_net_cross_messages_total", "Messages that crossed at least one interconnect link.",
			obs.KindCounter, false, netStat(func(st machine.NetStats) float64 { return float64(st.CrossMessages) }))
		r.Func("nvmap_machine_net_link_hops_total", "Total links crossed by all messages (dilation numerator).",
			obs.KindCounter, false, netStat(func(st machine.NetStats) float64 { return float64(st.LinkHops) }))
		r.Func("nvmap_machine_net_socket_crossings_total", "Messages that crossed a socket without leaving their node.",
			obs.KindCounter, false, netStat(func(st machine.NetStats) float64 { return float64(st.SocketCrossings) }))
		r.Func("nvmap_machine_net_max_link_bytes", "Heaviest directed link's byte load (congestion).",
			obs.KindGauge, false, netStat(func(st machine.NetStats) float64 { return float64(st.MaxLinkBytes) }))
		r.Func("nvmap_machine_net_max_link_msgs", "Heaviest directed link's message load.",
			obs.KindGauge, false, netStat(func(st machine.NetStats) float64 { return float64(st.MaxLinkMsgs) }))
	}

	// Scheduling diagnostics: which engine ran is a worker-count
	// artifact, never part of the deterministic result surface.
	r.Func("nvmap_machine_workers", "Host worker pool width.",
		obs.KindGauge, true, func() float64 { return float64(s.Machine.Workers()) })
	r.Func("nvmap_machine_parallel_regions", "Node regions executed on the worker pool.",
		obs.KindGauge, true, func() float64 { return float64(s.Machine.ParallelRegions()) })

	registerSASCollectors(r, "nvmap_sas", "tool", s.Tool.SASes, s.Machine.Nodes)

	r.Func("nvmap_dyninst_inserted_total", "Instrumentation snippets inserted.",
		obs.KindCounter, false, func() float64 { return float64(s.Inst.Stats().Inserted) })
	r.Func("nvmap_dyninst_removed_total", "Instrumentation snippets removed.",
		obs.KindCounter, false, func() float64 { return float64(s.Inst.Stats().Removed) })
	r.Func("nvmap_dyninst_fires_total", "Snippet actions executed.",
		obs.KindCounter, false, func() float64 { return float64(s.Inst.Stats().Fires) })
	r.Func("nvmap_dyninst_suppressed_total", "Snippet fires suppressed by focus predicates.",
		obs.KindCounter, false, func() float64 { return float64(s.Inst.Stats().Suppressed) })
	r.Func("nvmap_dyninst_perturbation_vtime_ns", "Virtual time charged to nodes by instrumentation.",
		obs.KindCounter, false, func() float64 { return float64(s.Inst.Stats().Perturbation) })

	// The intern table is process-wide: it accumulates vocabulary across
	// every session in the process, so its growth is history-dependent.
	r.Func("nvmap_intern_nouns", "Nouns in the process-wide intern table.",
		obs.KindGauge, true, func() float64 { return float64(nv.DefaultInterner.Stats().Nouns) })
	r.Func("nvmap_intern_verbs", "Verbs in the process-wide intern table.",
		obs.KindGauge, true, func() float64 { return float64(nv.DefaultInterner.Stats().Verbs) })
	r.Func("nvmap_intern_sentences", "Sentences in the process-wide intern table.",
		obs.KindGauge, true, func() float64 { return float64(nv.DefaultInterner.Stats().Sentences) })

	ckpt := func(read func(checkpoint.Stats) float64) func() float64 {
		return func() float64 { return read(s.Checkpoints()) }
	}
	r.Func("nvmap_checkpoint_saves_total", "Node state snapshots captured.",
		obs.KindCounter, false, ckpt(func(st checkpoint.Stats) float64 { return float64(st.Saves) }))
	r.Func("nvmap_checkpoint_restores_total", "Node state snapshots restored.",
		obs.KindCounter, false, ckpt(func(st checkpoint.Stats) float64 { return float64(st.Restores) }))
	r.Func("nvmap_checkpoint_corrupt_total", "Snapshots that failed verification on restore.",
		obs.KindCounter, false, ckpt(func(st checkpoint.Stats) float64 { return float64(st.Corrupt) }))
	r.Func("nvmap_checkpoint_bytes", "Snapshot payload volume currently retained.",
		obs.KindGauge, false, ckpt(func(st checkpoint.Stats) float64 { return float64(st.Bytes) }))

	fr := func(read func(st fault.Report) float64) func() float64 {
		return func() float64 {
			if s.faults == nil {
				return 0
			}
			return read(s.faults.Report())
		}
	}
	r.Func("nvmap_fault_messages_dropped_total", "Point-to-point messages dropped by fault injection.",
		obs.KindCounter, false, fr(func(st fault.Report) float64 { return float64(st.MessagesDropped) }))
	r.Func("nvmap_fault_sas_dropped_total", "Cross-node SAS events dropped by fault injection.",
		obs.KindCounter, false, fr(func(st fault.Report) float64 { return float64(st.SASDropped) }))
	r.Func("nvmap_fault_node_crashes_total", "Fail-stop crashes injected.",
		obs.KindCounter, false, fr(func(st fault.Report) float64 { return float64(st.NodeCrashes) }))
	r.Func("nvmap_fault_node_restarts_total", "Node reboots injected.",
		obs.KindCounter, false, fr(func(st fault.Report) float64 { return float64(st.NodeRestarts) }))
	r.Func("nvmap_fault_dead_vtime_ns", "Virtual time lost to dead node windows.",
		obs.KindCounter, false, fr(func(st fault.Report) float64 { return float64(st.DeadTime) }))
}

// registerSASCollectors publishes one SAS registry's aggregate
// notification statistics, question-index posting sizes and shard
// occupancy under a name prefix with a which label ("tool" for the
// measurement tool's gating SASes, "monitor" for EnableSASMonitor's).
func registerSASCollectors(r *obs.Registry, prefix, which string, reg *sas.Registry, nodes func() int) {
	lbl := "{sas=\"" + which + "\"}"
	stat := func(read func(sas.Stats) float64) func() float64 {
		return func() float64 { return read(reg.TotalStats()) }
	}
	r.Func(prefix+"_notifications_total"+lbl, "Activation/deactivation notifications received.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.Notifications) }))
	r.Func(prefix+"_ignored_total"+lbl, "Notifications dropped by the relevance filter.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.Ignored) }))
	r.Func(prefix+"_stored_total"+lbl, "Notifications applied to the active sets.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.Stored) }))
	r.Func(prefix+"_evaluations_total"+lbl, "Question re-evaluations triggered.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.Evaluations) }))
	r.Func(prefix+"_events_total"+lbl, "Measured events recorded against active sentences.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.Events) }))
	r.Func(prefix+"_candidates_scanned_total"+lbl, "Question states consulted for measured events.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.CandidatesScanned) }))
	r.Func(prefix+"_matches_evaluated_total"+lbl, "Term-pattern match tests run.",
		obs.KindCounter, false, stat(func(st sas.Stats) float64 { return float64(st.MatchesEvaluated) }))
	idx := func(read func(sas.IndexStats) float64) func() float64 {
		return func() float64 {
			var sum float64
			for n := 0; n < nodes(); n++ {
				sum += read(reg.Node(n).Index())
			}
			return sum
		}
	}
	r.Func(prefix+"_questions"+lbl, "Registered questions summed over the partition's SASes.",
		obs.KindGauge, false, idx(func(st sas.IndexStats) float64 { return float64(st.Questions) }))
	r.Func(prefix+"_verb_postings"+lbl, "Verb-index postings summed over the partition's SASes.",
		obs.KindGauge, false, idx(func(st sas.IndexStats) float64 { return float64(st.VerbPostings) }))
	r.Func(prefix+"_noun_postings"+lbl, "Noun-index postings summed over the partition's SASes.",
		obs.KindGauge, false, idx(func(st sas.IndexStats) float64 { return float64(st.NounPostings) }))
	r.Func(prefix+"_wildcard_postings"+lbl, "Wildcard question postings summed over the partition's SASes.",
		obs.KindGauge, false, idx(func(st sas.IndexStats) float64 { return float64(st.WildcardPostings) }))
	r.Func(prefix+"_shard_occupancy_max"+lbl, "Largest active-set shard across the partition's SASes.",
		obs.KindGauge, false, func() float64 {
			var max float64
			for n := 0; n < nodes(); n++ {
				for _, sz := range reg.Node(n).ShardSizes() {
					if float64(sz) > max {
						max = float64(sz)
					}
				}
			}
			return max
		})
	col := func(read func(sas.ColumnStats) float64) func() float64 {
		return func() float64 {
			var sum float64
			for n := 0; n < nodes(); n++ {
				sum += read(reg.Node(n).Columns())
			}
			return sum
		}
	}
	r.Func(prefix+"_column_rows"+lbl, "Live columnar rows summed over the partition's SASes.",
		obs.KindGauge, false, col(func(st sas.ColumnStats) float64 { return float64(st.Rows) }))
	// Capacity and compaction counts follow the shard a sentence hashes
	// to, and the sharding key is its process-wide interner handle —
	// history-dependent, so both are unstable (the row total is not).
	r.Func(prefix+"_column_capacity"+lbl, "Columnar row capacity summed over the partition's SASes.",
		obs.KindGauge, true, col(func(st sas.ColumnStats) float64 { return float64(st.Capacity) }))
	r.Func(prefix+"_column_compactions_total"+lbl, "Swap-remove compactions summed over the partition's SASes.",
		obs.KindCounter, true, col(func(st sas.ColumnStats) float64 { return float64(st.Compactions) }))
	r.Func(prefix+"_agg_arena_highwater"+lbl, "Deepest aggregation-scratch arena use, in rows.",
		obs.KindGauge, false, func() float64 { hw, _ := reg.ArenaStats(); return float64(hw) })
	r.Func(prefix+"_agg_arena_capacity"+lbl, "Aggregation-scratch arena capacity, in rows.",
		obs.KindGauge, false, func() float64 { _, cp := reg.ArenaStats(); return float64(cp) })
}
