package nvmap

import (
	"fmt"
	"strings"

	"nvmap/internal/mdl"
	"nvmap/internal/paradyn"
)

// bowProgram is shaped after Figure 8's bow.fcm: a module holding several
// parallel arrays, one of them (TOT) the interesting one whose subregions
// the where axis expands.
const bowProgram = `PROGRAM bow
REAL TOT(512)
REAL U(512)
REAL V(512)
REAL W(512)
REAL Z(512)
REAL TSUM
FORALL (I = 1:512) U(I) = I
V = U * 0.5
W = V + U
Z = CSHIFT(W, 8)
TOT = U + V + W + Z
TSUM = SUM(TOT)
END
`

// ExperimentFig8 regenerates Figure 8: the CMF-level where axis with the
// statement and array hierarchies, arrays discovered through dynamic
// mapping information and expanded into their per-node subregions.
func ExperimentFig8() (string, error) {
	s, err := NewSession(bowProgram, WithNodes(4), WithSourceFile("bow.fcm"))
	if err != nil {
		return "", err
	}
	s.Tool.EnableDynamicMapping()
	if _, err := s.Run(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Where axis after running bow.fcm (arrays arrive via dynamic mapping;\n")
	b.WriteString("TOT's children are its per-node subregions):\n\n")
	b.WriteString(indent(s.Tool.Axis.Render(), "  "))
	return b.String(), nil
}

// fig9Workload exercises every verb of the Figure 9 metric table:
// computation, all three reductions, rotation, shift, transpose, scan,
// sort, broadcasts (scalar fills), argument processing and node
// activations (every dispatch), idle time (every wait for the control
// processor), and point-to-point operations (every transform and
// reduction tree).
const fig9Workload = `PROGRAM mixed
REAL A(256)
REAL B(256)
REAL M(16, 16)
REAL S
REAL T
REAL U
FORALL (I = 1:256) A(I) = 257 - I
FORALL (I = 1:256) M(I) = I
B = 1.0
B = A * 2.0 + B
S = SUM(A)
T = MAXVAL(B)
U = MINVAL(A)
A = CSHIFT(A, 3)
B = EOSHIFT(B, -2, 0)
M = TRANSPOSE(M)
A = SCAN(A)
B = SORT(B)
END
`

// ExperimentFig9 regenerates Figure 9: every CMF-level and CMRTS-level
// metric, measured over a workload that exercises each verb, printed with
// the paper's metric names.
func ExperimentFig9() (string, error) {
	s, err := NewSession(fig9Workload, WithNodes(4), WithSourceFile("mixed.fcm"))
	if err != nil {
		return "", err
	}
	lib := s.Tool.Library()
	var ems []*paradyn.EnabledMetric
	for _, id := range lib.IDs() {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			return "", err
		}
		ems = append(ems, em)
	}
	if _, err := s.Run(); err != nil {
		return "", err
	}
	// The workload ends with the runtime resetting the vector units.
	s.Runtime.Cleanup("end of run")
	now := s.Now()

	var b strings.Builder
	fmt.Fprintf(&b, "Workload: mixed.fcm on 4 nodes, virtual elapsed %v\n\n", s.Elapsed())
	// The session's own level enumeration drives the table: levels print
	// from most abstract down, and only levels with metric definitions
	// get a section (CMF then CMRTS in the standard stack).
	for _, level := range s.Levels() {
		if level.Metrics == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s level\n", level.Name)
		var rows []paradyn.Row
		for _, em := range ems {
			if !strings.EqualFold(em.Metric.Level, string(level.ID)) {
				continue
			}
			rows = append(rows, paradyn.Row{
				Metric: em.Metric.Name,
				Focus:  em.Metric.Description,
				Value:  em.Value(now),
				Units:  em.Metric.Units,
			})
		}
		b.WriteString(indent(paradyn.Table("", rows), "  "))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// fusionProgram is dominated by short adjacent elementwise statements, so
// per-statement dispatch overhead is significant and fusion pays.
const fusionAblProgram = `PROGRAM relax
REAL A(128)
REAL B(128)
REAL C(128)
REAL S
FORALL (I = 1:128) A(I) = I
DO K = 1, 16
B = A * 0.5
C = B + 1.0
A = C * 0.25
B = A - C
A = A + B
END DO
S = SUM(A)
END
`

// AblationFusion quantifies the compiler design choice behind Figure 2's
// one-to-many mappings: fusing adjacent elementwise statements into one
// node code block trades dispatch overhead (fewer control-processor
// activations, less idle wait) for coarser attribution (statements merge
// into inseparable units under the merge policy).
func AblationFusion() (string, error) {
	type outcome struct {
		blocks     int
		dispatches float64
		idle       float64
		elapsed    float64
	}
	run := func(fuse bool) (outcome, error) {
		s, err := NewSession(fusionAblProgram, WithConfig(Config{Nodes: 4, Fuse: fuse, SourceFile: "relax.fcm"}))
		if err != nil {
			return outcome{}, err
		}
		acts, err := s.Tool.EnableMetric("node_activations", paradyn.WholeProgram())
		if err != nil {
			return outcome{}, err
		}
		idle, err := s.Tool.EnableMetric("idle_time", paradyn.WholeProgram())
		if err != nil {
			return outcome{}, err
		}
		if _, err := s.Run(); err != nil {
			return outcome{}, err
		}
		now := s.Now()
		return outcome{
			blocks:     len(s.Program.Blocks),
			dispatches: acts.Value(now),
			idle:       idle.Value(now),
			elapsed:    s.Elapsed().Seconds(),
		}, nil
	}
	plain, err := run(false)
	if err != nil {
		return "", err
	}
	fused, err := run(true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %14s %12s %12s\n", "compiler", "blocks", "activations", "idle (s)", "elapsed (s)")
	fmt.Fprintf(&b, "%-12s %8d %14.0f %12.6f %12.6f\n", "unfused", plain.blocks, plain.dispatches, plain.idle, plain.elapsed)
	fmt.Fprintf(&b, "%-12s %8d %14.0f %12.6f %12.6f\n", "fused", fused.blocks, fused.dispatches, fused.idle, fused.elapsed)
	fmt.Fprintf(&b, "\nFusion cut node activations by %.0f%% and elapsed time by %.1f%%;\n",
		100*(1-fused.dispatches/plain.dispatches), 100*(1-fused.elapsed/plain.elapsed))
	b.WriteString("the price is attribution: fused statements map one-to-many to a single\n")
	b.WriteString("block, so the tool must split (guessing) or merge (coarsening) their costs.\n")
	if fused.dispatches >= plain.dispatches || fused.elapsed >= plain.elapsed {
		return "", fmt.Errorf("ablfuse: fusion did not pay: %+v vs %+v", fused, plain)
	}
	return b.String(), nil
}

// AblationDynInst quantifies the central claim of dynamic instrumentation
// (Section 4.1): "any point that does not contain instrumentation does
// not cause any execution perturbations." We run the same workload (a)
// uninstrumented, (b) with only two requested metrics — the dynamic
// discipline, and (c) with every metric inserted — the always-on
// discipline of traditional static instrumentation.
func AblationDynInst() (string, error) {
	type outcome struct {
		label     string
		elapsed   float64
		perturbNS float64
		probes    int
	}
	run := func(label string, metricIDs []string) (outcome, error) {
		s, err := NewSession(fig9Workload, WithNodes(4), WithSourceFile("mixed.fcm"))
		if err != nil {
			return outcome{}, err
		}
		for _, id := range metricIDs {
			if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
				return outcome{}, err
			}
		}
		if _, err := s.Run(); err != nil {
			return outcome{}, err
		}
		st := s.Inst.Stats()
		return outcome{
			label:     label,
			elapsed:   s.Elapsed().Seconds(),
			perturbNS: float64(st.Perturbation),
			probes:    st.Inserted,
		}, nil
	}

	all := mdl.StdLibrary().IDs()

	baseline, err := run("uninstrumented", nil)
	if err != nil {
		return "", err
	}
	dynamic, err := run("dynamic (2 requested metrics)", []string{"summation_time", "point_to_point_ops"})
	if err != nil {
		return "", err
	}
	static, err := run(fmt.Sprintf("always-on (%d metrics)", len(all)), all)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %10s %16s %14s %10s\n", "configuration", "probes", "perturbation", "elapsed", "slowdown")
	for _, o := range []outcome{baseline, dynamic, static} {
		slow := (o.elapsed/baseline.elapsed - 1) * 100
		fmt.Fprintf(&b, "%-32s %10d %13.0f ns %11.6f s %9.2f%%\n",
			o.label, o.probes, o.perturbNS, o.elapsed, slow)
	}
	b.WriteString("\nPerturbation grows with the instrumentation actually inserted, not with\n")
	b.WriteString("the application's potential points: the uninstrumented run is exact.\n")
	if baseline.perturbNS != 0 {
		return "", fmt.Errorf("abldyn: uninstrumented run was perturbed")
	}
	if !(dynamic.perturbNS < static.perturbNS) {
		return "", fmt.Errorf("abldyn: dynamic (%g) should perturb less than always-on (%g)",
			dynamic.perturbNS, static.perturbNS)
	}
	return b.String(), nil
}
