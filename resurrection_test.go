package nvmap

import (
	"testing"

	"nvmap/internal/daemon"
	"nvmap/internal/pif"
	"nvmap/internal/vtime"
)

// Satellite regression: a recovered node must not resurrect a
// deallocated noun. The supervisor's ledger suppresses definitions whose
// removal notice it has seen, and the data manager independently ignores
// stale definitions for removed runtime IDs — belt and suspenders.
func TestNoResurrectionAfterRecovery(t *testing.T) {
	s, _, _, _ := runCrashed(t, transientPlan())

	ids := s.Tool.ArrayIDs("A")
	if len(ids) == 0 {
		t.Fatal("setup: array A unknown to the data manager")
	}
	// The mid-run recovery re-registered the program's nouns (nothing was
	// removed yet, so nothing was suppressed).
	before := s.Supervisor().Stats()
	if before.DefsReplayed == 0 {
		t.Fatalf("setup: recovery replayed no definitions: %+v", before)
	}
	if before.DefsSuppressed != 0 {
		t.Fatalf("setup: suppression before any removal: %+v", before)
	}

	// Deallocate everything: removal notices travel the daemon channel.
	if err := s.Executor.FreeAll(); err != nil {
		t.Fatal(err)
	}
	s.Tool.FlushChannel()
	if live := s.Tool.ArrayIDs("A"); len(live) != 0 {
		t.Fatalf("free left A live: %v", live)
	}

	// Crash node 1 after the removal, then recover it. The ledger still
	// holds A's and B's definitions, but the removal notices gate them.
	s.Machine.Kill(1)
	s.Machine.Revive(1, s.Now().Add(5*vtime.Microsecond))
	s.Tool.FlushChannel()

	after := s.Supervisor().Stats()
	if after.DefsSuppressed == before.DefsSuppressed {
		t.Fatalf("recovery suppressed nothing: %+v", after)
	}
	if live := s.Tool.ArrayIDs("A"); len(live) != 0 {
		t.Fatalf("recovered node resurrected deallocated noun A: %v", live)
	}
	// The where-axis no longer offers the deallocated array as a focus.
	// (Static mapping information for A survives; the dynamic resource
	// must not come back.)

	// Second line of defense: even a stale definition that does reach the
	// data manager (e.g. a message in flight from before the removal) is
	// ignored, because the runtime ID is on the removal ledger.
	s.Tool.Channel().Send(daemon.Message{
		Kind:  daemon.KindNounDef,
		Noun:  &pif.NounRecord{Name: "A", Abstraction: "CMF"},
		Attrs: map[string]string{"id": string(ids[0])},
	})
	s.Tool.FlushChannel()
	if live := s.Tool.ArrayIDs("A"); len(live) != 0 {
		t.Fatalf("stale in-flight definition resurrected A: %v", live)
	}
}
