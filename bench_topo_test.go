package nvmap

// Topology and placement benchmarks (PR 8). BenchmarkTopoPlaceGreedy
// measures the congestion-aware placement algorithm at fleet scale;
// BenchmarkTopoSend measures the routed send path — the per-message
// overhead a topology adds to the flat machine's cost model.

import (
	"testing"

	"nvmap/internal/machine"
	"nvmap/internal/place"
	"nvmap/internal/vtime"
)

// BenchmarkTopoPlaceGreedy: greedy placement of 64 logical nodes onto
// an 8x8 torus from a dense pair-exchange traffic matrix.
func BenchmarkTopoPlaceGreedy(b *testing.B) {
	topo := &machine.Topology{GridX: 8, GridY: 8, Torus: true}
	n := 64
	traffic := make([][]int64, n)
	for i := range traffic {
		traffic[i] = make([]int64, n)
		traffic[i][(i+n/2)%n] = 256
		traffic[i][(i+1)%n] = 64
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := place.Greedy(n, topo, traffic)
		if len(p) != n {
			b.Fatal("bad placement")
		}
	}
}

// BenchmarkTopoSend: the machine's point-to-point send with routing,
// per-link accounting and hop-delay charging on a 16-node torus.
func BenchmarkTopoSend(b *testing.B) {
	cfg := machine.DefaultConfig(16)
	cfg.Topology = &machine.Topology{GridX: 4, GridY: 4, Torus: true, LinkHop: 1 * vtime.Microsecond}
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Send(i%16, (i+7)%16, 64, "bench")
	}
}
