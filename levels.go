package nvmap

import (
	"sort"

	"nvmap/internal/nv"
)

// LevelInfo describes one level of abstraction visible to a session,
// from the CM Fortran source down to the hardware topology. It is the
// enumerable replacement for matching level-name strings ad hoc: code
// that used to compare against "CMF" or "CMRTS" literals should iterate
// Session.Levels and select on ID, Rank or Metrics instead.
type LevelInfo struct {
	// ID is the canonical level identifier (nv.LevelIDCMF, ...).
	ID nv.LevelID
	// Name is the display name (usually the ID itself).
	Name string
	// Rank orders levels: larger is more abstract. Ranks follow the
	// nv.Rank* constants for the canonical stack.
	Rank int
	// Description comes from the level's PIF record (or the metric
	// library for virtual levels).
	Description string
	// Nouns and Verbs count the vocabulary registered at the level.
	Nouns int
	Verbs int
	// Metrics counts the metric-library definitions declared at the
	// level (the rows a Figure 9-style table would print for it).
	Metrics int
	// Virtual marks a level that exists only in the metric library —
	// CMRTS in the standard stack: its metrics instrument run-time
	// routines directly, so no PIF record defines the level and no
	// nouns live there.
	Virtual bool
}

// Levels enumerates the session's levels of abstraction ordered from
// most abstract to least (descending rank): CMF, then CMRTS, then the
// base level, and — when the session has a hardware topology — the
// Machine and HW levels at the bottom. Levels known only to the metric
// library (CMRTS) are synthesized with Virtual set, so the result is
// the complete set of levels any part of the stack can name.
func (s *Session) Levels() []LevelInfo {
	reg := s.Tool.Loaded.Registry
	lib := s.Tool.Library()

	var out []LevelInfo
	seen := map[nv.LevelID]bool{}
	for _, l := range reg.Levels() {
		seen[l.ID] = true
		out = append(out, LevelInfo{
			ID:          l.ID,
			Name:        l.Name,
			Rank:        l.Rank,
			Description: l.Description,
			Nouns:       len(reg.NounsAtLevel(l.ID)),
			Verbs:       len(reg.VerbsAtLevel(l.ID)),
			Metrics:     len(lib.AtLevel(string(l.ID))),
		})
	}
	// Levels the metric library declares but no PIF record defines are
	// virtual: present them at their canonical rank so the ordering of
	// the full stack is stable.
	virtualRank := map[nv.LevelID]int{
		nv.LevelIDCMF:      nv.RankCMF,
		nv.LevelIDCMRTS:    nv.RankCMRTS,
		nv.LevelIDBase:     nv.RankBase,
		nv.LevelIDMachine:  nv.RankMachine,
		nv.LevelIDHardware: nv.RankHardware,
	}
	virtualDesc := map[nv.LevelID]string{
		nv.LevelIDCMRTS: "CM run-time system routines (metric library only)",
	}
	for _, mid := range lib.IDs() {
		m, _ := lib.Get(mid)
		id := nv.LevelID(m.Level)
		if m.Level == "" || seen[id] {
			continue
		}
		seen[id] = true
		rank, ok := virtualRank[id]
		if !ok {
			// An unknown library level sits below everything defined.
			rank = nv.RankHardware - 1 - len(out)
		}
		out = append(out, LevelInfo{
			ID:          id,
			Name:        m.Level,
			Rank:        rank,
			Description: virtualDesc[id],
			Metrics:     len(lib.AtLevel(m.Level)),
			Virtual:     true,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}
