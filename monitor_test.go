package nvmap

import (
	"testing"

	"nvmap/internal/sas"
)

func TestMonitorAskTextQuestions(t *testing.T) {
	s, err := NewSession(hpfProgram, WithNodes(4), WithSourceFile("hpf.fcm"))
	if err != nil {
		t.Fatal(err)
	}
	m := s.EnableSASMonitor(false)
	qSends, err := m.Ask("", "{A Sums}, {? Sends}")
	if err != nil {
		t.Fatal(err)
	}
	qGate, err := m.Ask("sum gate", "{A Sums}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r1, err := qSends.Answer(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != 3 {
		t.Fatalf("sends during SUM(A) = %g, want 3", r1.Count)
	}
	r2, err := qGate.Answer(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r2.SatisfiedTime <= 0 {
		t.Fatalf("gate time = %v", r2.SatisfiedTime)
	}
}

func TestMonitorAskValidation(t *testing.T) {
	s, err := NewSession(hpfProgram, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	m := s.EnableSASMonitor(false)
	if _, err := m.Ask("", "not a question"); err == nil {
		t.Fatal("malformed question accepted")
	}
}

func TestMonitorSnapshotWhen(t *testing.T) {
	s, err := NewSession(hpfProgram, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	m := s.EnableSASMonitor(false)
	m.SnapshotWhen(sas.T("Sums", sas.Any))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot == nil {
		t.Fatal("snapshot trigger never fired")
	}
	found := false
	for _, a := range m.Snapshot {
		if a.Sentence.Verb == "Sums" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot %v lacks the triggering sentence", m.Snapshot)
	}
}

func TestMonitorStatsAndFiltering(t *testing.T) {
	run := func(filter bool) sas.Stats {
		s, err := NewSession(hpfProgram, WithNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		m := s.EnableSASMonitor(filter)
		if _, err := m.Ask("", "{A Sums}"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	unfiltered := run(false)
	filtered := run(true)
	if unfiltered.Notifications != filtered.Notifications {
		t.Fatalf("notification counts differ: %d vs %d",
			unfiltered.Notifications, filtered.Notifications)
	}
	if filtered.Ignored == 0 || filtered.Stored >= unfiltered.Stored {
		t.Fatalf("filtering ineffective: %+v vs %+v", filtered, unfiltered)
	}
}

func TestMonitorOrderedQuestionText(t *testing.T) {
	s, err := NewSession(hpfProgram, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	m := s.EnableSASMonitor(false)
	q, err := m.Ask("", "{? Sends}, {A Sums} [ordered]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := q.Answer(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	// A summation never begins inside a send.
	if r.Count != 0 {
		t.Fatalf("ordered count = %g, want 0", r.Count)
	}
}
