package nvmap

import (
	"testing"

	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// Recovery edge cases: the degenerate crash schedules — a crash at the
// very first instant, every node dead at once, a restart scheduled past
// the session's end — must each settle into a typed partial answer (a
// report with crash windows and lost-node annotations), never a panic
// or a hang. Each run executes inside RunContext's containment barrier,
// so a regression here would surface as an ErrorPanic session error and
// fail the assertions rather than kill the test process.

// runEdgeCrash builds the standard fault program over 4 nodes with the
// given crash schedule and tight recovery tuning, runs it, and returns
// the session, report and error.
func runEdgeCrash(t *testing.T, crashes []fault.CrashFault) (*Session, *DegradationReport, error) {
	t.Helper()
	s, err := NewSession(faultTestProgram,
		WithNodes(4), WithSourceFile("ftest.fcm"),
		WithFaults(&fault.Plan{Seed: 11, Crashes: crashes}),
		WithRecovery(crashRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tool.EnableMetric("computations", paradyn.WholeProgram()); err != nil {
		t.Fatal(err)
	}
	rep, runErr := s.Run()
	if rep == nil {
		t.Fatal("nil report")
	}
	return s, rep, runErr
}

// TestCrashAtTimeZero: a node dead from the first instant. The run must
// complete with the window accounted and, for a permanent crash, the
// node annotated lost.
func TestCrashAtTimeZero(t *testing.T) {
	s, rep, err := runEdgeCrash(t, []fault.CrashFault{{Node: 2, At: 0}})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != 2 || rep.Crashes[0].Down != 0 {
		t.Fatalf("crash windows: %+v", rep.Crashes)
	}
	if rep.Crashes[0].Recovered {
		t.Fatal("permanent t=0 crash reported recovered")
	}
	if len(rep.LostNodes) != 1 || rep.LostNodes[0] != 2 {
		t.Fatalf("lost nodes: %v", rep.LostNodes)
	}
	if rep.LostTime != s.Elapsed() {
		t.Fatalf("lost time %v, run elapsed %v", rep.LostTime, s.Elapsed())
	}
	if s.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

// TestCrashAtTimeZeroWithRestart: down at t=0, back shortly after; the
// window must be recovered and nothing lost.
func TestCrashAtTimeZeroWithRestart(t *testing.T) {
	_, rep, err := runEdgeCrash(t, []fault.CrashFault{
		{Node: 2, At: 0, Restart: 10 * vtime.Microsecond},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Crashes) != 1 || !rep.Crashes[0].Recovered {
		t.Fatalf("crash windows: %+v", rep.Crashes)
	}
	if len(rep.LostNodes) != 0 {
		t.Fatalf("lost nodes after recovery: %v", rep.LostNodes)
	}
	if rep.RecoveredTime == 0 || rep.LostTime != 0 {
		t.Fatalf("recovered %v, lost %v", rep.RecoveredTime, rep.LostTime)
	}
}

// TestEveryNodePermanentlyDead: all four nodes crash mid-run and never
// come back. The run must still terminate with a report naming every
// node lost — a typed partial answer, not a hang.
func TestEveryNodePermanentlyDead(t *testing.T) {
	crashes := []fault.CrashFault{
		{Node: 0, At: 5 * vtime.Time(vtime.Microsecond)},
		{Node: 1, At: 5 * vtime.Time(vtime.Microsecond)},
		{Node: 2, At: 5 * vtime.Time(vtime.Microsecond)},
		{Node: 3, At: 5 * vtime.Time(vtime.Microsecond)},
	}
	s, rep, err := runEdgeCrash(t, crashes)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Crashes) != 4 {
		t.Fatalf("crash windows: %+v", rep.Crashes)
	}
	if got := len(rep.LostNodes); got != 4 {
		t.Fatalf("lost nodes: %v", rep.LostNodes)
	}
	if rep.LostTime == 0 {
		t.Fatal("no lost time accounted")
	}
	// Every metric-focus answer covering the dead partition is partial.
	for _, em := range s.Tool.Enabled() {
		if em.Partial() == "" {
			t.Fatalf("metric %s not marked partial with all nodes dead", em.Metric.ID)
		}
	}
}

// TestRestartBeyondSessionEnd: a restart scheduled far beyond the
// clean run's end. The simulator is work-conserving — the next
// collective that needs the node waits for the reboot — so the session
// must stretch past the scheduled reboot and terminate with the window
// recovered and exactly accounted: no hang, no lost node, no panic.
func TestRestartBeyondSessionEnd(t *testing.T) {
	const restart = vtime.Duration(vtime.Second) // ~10,000x the clean run
	s, rep, err := runEdgeCrash(t, []fault.CrashFault{
		{Node: 1, At: 5 * vtime.Time(vtime.Microsecond), Restart: restart},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Crashes) != 1 {
		t.Fatalf("crash windows: %+v", rep.Crashes)
	}
	w := rep.Crashes[0]
	if !w.Recovered {
		t.Fatalf("work-conserving reboot not enacted: %+v", w)
	}
	if w.Up.Sub(w.Down) != restart {
		t.Fatalf("dead window %v, scheduled %v", w.Up.Sub(w.Down), restart)
	}
	if s.Now().Before(w.Up) {
		t.Fatalf("session ended at %v, before the reboot at %v", s.Now(), w.Up)
	}
	if len(rep.LostNodes) != 0 || rep.LostTime != 0 {
		t.Fatalf("recovered window accounted as lost: nodes %v, lost %v", rep.LostNodes, rep.LostTime)
	}
	if rep.RecoveredTime != restart {
		t.Fatalf("recovered time %v, want %v", rep.RecoveredTime, restart)
	}
}

// TestCrashScheduledAfterLastEngagement: a crash whose instant no
// operation ever reaches is simply never enacted — the run completes
// clean, with no window, no injector crash count and a zero report.
func TestCrashScheduledAfterLastEngagement(t *testing.T) {
	_, rep, err := runEdgeCrash(t, []fault.CrashFault{
		{Node: 1, At: vtime.Time(3600 * vtime.Second)},
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if len(rep.Crashes) != 0 || len(rep.LostNodes) != 0 {
		t.Fatalf("unenacted crash produced windows: %+v", rep.Crashes)
	}
	if !rep.Zero() {
		t.Fatalf("report not zero:\n%s", rep)
	}
}
