package nvmap

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nvmap/internal/machine"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// governProgram does enough work — a DO loop of elementwise statements
// and reductions — that budget ceilings have room to trip mid-run.
const governProgram = `PROGRAM governed
REAL A(256)
REAL B(256)
REAL S
FORALL (I = 1:256) A(I) = I
DO K = 1, 20
  B = A * 2.0 + B
  S = SUM(B)
END DO
PRINT *, S
END
`

func mustSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(governProgram, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunContextBackgroundMatchesRun: an ungoverned RunContext installs
// no governor and produces the same answer as historical Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a := mustSession(t, WithNodes(4))
	repA, errA := a.Run()
	b := mustSession(t, WithNodes(4))
	repB, errB := b.RunContext(context.Background())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if repA.String() != repB.String() {
		t.Fatalf("reports differ:\n%s\n%s", repA, repB)
	}
	if a.Now() != b.Now() {
		t.Fatalf("clocks differ: %v vs %v", a.Now(), b.Now())
	}
	if repB.Cut != nil {
		t.Fatalf("ungoverned run reported a cut: %+v", repB.Cut)
	}
}

// TestRunContextPreCancelled: a context cancelled before Run settles
// immediately with a typed error and a report carrying the cut.
func TestRunContextPreCancelled(t *testing.T) {
	s := mustSession(t, WithNodes(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := s.RunContext(ctx)
	var serr *SessionError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *SessionError", err)
	}
	if serr.Kind != ErrorCancelled || !errors.Is(err, context.Canceled) {
		t.Fatalf("kind %v, cause %v", serr.Kind, serr.Unwrap())
	}
	if rep == nil || rep.Cut == nil || rep.Cut.Kind != ErrorCancelled {
		t.Fatalf("report cut = %+v", rep.Cut)
	}
	if rep.Zero() {
		t.Fatal("cut report claims zero degradation")
	}
	if serr.At != s.Now() {
		t.Fatalf("cut instant %v, session at %v", serr.At, s.Now())
	}
}

// TestRunContextDeadline: an already-expired deadline cuts the run with
// ErrorDeadline unwrapping to context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	s := mustSession(t, WithNodes(2))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.RunContext(ctx)
	var serr *SessionError
	if !errors.As(err, &serr) || serr.Kind != ErrorDeadline {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause %v", err)
	}
}

// TestBudgetMaxOpsCutIsDeterministic is the tentpole's determinism
// claim: the same budget cuts the same program at the same boundary and
// instant under any worker count, and the partial answer is typed with
// exact cut-time accounting.
func TestBudgetMaxOpsCutIsDeterministic(t *testing.T) {
	run := func(workers int) (*DegradationReport, *SessionError, vtime.Time) {
		s := mustSession(t, WithNodes(4), WithWorkers(workers),
			WithBudget(Budget{MaxOps: 200}))
		rep, err := s.RunContext(context.Background())
		var serr *SessionError
		if !errors.As(err, &serr) {
			t.Fatalf("workers=%d: err = %v, want *SessionError", workers, err)
		}
		return rep, serr, s.Now()
	}
	rep1, err1, now1 := run(1)
	if err1.Kind != ErrorOverBudget || !errors.Is(err1, ErrBudgetExceeded) {
		t.Fatalf("kind %v cause %v", err1.Kind, err1.Unwrap())
	}
	if err1.Op == "" {
		t.Fatal("cut has no boundary operation")
	}
	if rep1.Cut == nil || rep1.Cut.At != err1.At {
		t.Fatalf("report cut %+v, error at %v", rep1.Cut, err1.At)
	}
	if rep1.Budget.Ops <= 200 {
		t.Fatalf("budget stats ops = %d, want > limit at the cut", rep1.Budget.Ops)
	}
	for _, workers := range []int{4, 8} {
		rep, serr, now := run(workers)
		if serr.Op != err1.Op || serr.Node != err1.Node || serr.At != err1.At {
			t.Fatalf("workers=%d cut %s/%d@%v, workers=1 cut %s/%d@%v",
				workers, serr.Op, serr.Node, serr.At, err1.Op, err1.Node, err1.At)
		}
		if now != now1 {
			t.Fatalf("workers=%d settled at %v, workers=1 at %v", workers, now, now1)
		}
		if rep.String() != rep1.String() {
			t.Fatalf("reports differ:\n%s\n%s", rep, rep1)
		}
	}
}

// TestBudgetVirtualTimeCut: the virtual-time ceiling cuts mid-run and
// the cut instant never exceeds... the next boundary past the ceiling.
func TestBudgetVirtualTimeCut(t *testing.T) {
	free := mustSession(t, WithNodes(4))
	if _, err := free.Run(); err != nil {
		t.Fatal(err)
	}
	total := free.Elapsed()
	s := mustSession(t, WithNodes(4), WithBudget(Budget{MaxVirtualTime: total / 2}))
	_, err := s.RunContext(context.Background())
	var serr *SessionError
	if !errors.As(err, &serr) || serr.Kind != ErrorOverBudget {
		t.Fatalf("err = %v", err)
	}
	if got := serr.At.Sub(0); got <= total/2 || got >= total {
		t.Fatalf("cut at %v, ceiling %v, full run %v", got, total/2, total)
	}
}

// TestBudgetGenerousCeilingIsInvisible: a budget nothing trips leaves
// the answer identical to an unbudgeted run — and the report non-zero
// only through its (informational) Budget.Ops accounting.
func TestBudgetGenerousCeilingIsInvisible(t *testing.T) {
	free := mustSession(t, WithNodes(4))
	freeRep, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := mustSession(t, WithNodes(4), WithBudget(Budget{MaxOps: 1 << 40}))
	rep, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cut != nil || rep.Budget.Sheds != 0 {
		t.Fatalf("generous budget degraded the run: %+v", rep)
	}
	if !rep.Zero() {
		t.Fatalf("report not zero: %s", rep)
	}
	if s.Now() != free.Now() {
		t.Fatalf("budgeted clock %v, free clock %v", s.Now(), free.Now())
	}
	if freeRep.String() != rep.String() {
		t.Fatalf("reports differ")
	}
	if rep.Budget.Ops == 0 || rep.Budget.Checks == 0 {
		t.Fatalf("governor recorded nothing: %+v", rep.Budget)
	}
}

// TestPanicContainment: a panic from inside the measurement stack —
// here a machine observer that throws partway through the run — is
// contained into a typed ErrorPanic session error with a stack, the
// process survives, and the session stays readable afterwards.
func TestPanicContainment(t *testing.T) {
	s := mustSession(t, WithNodes(2))
	events := 0
	s.Machine.Observe(func(machine.Event) {
		events++
		if events == 40 {
			panic("observer boom")
		}
	})
	rep, err := s.RunContext(context.Background())
	var serr *SessionError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *SessionError", err)
	}
	if serr.Kind != ErrorPanic || !errors.Is(err, ErrPanicked) {
		t.Fatalf("kind %v, cause %v", serr.Kind, serr.Unwrap())
	}
	if fmt.Sprint(serr.Panic) != "observer boom" {
		t.Fatalf("panic value %v", serr.Panic)
	}
	if len(serr.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if rep == nil || rep.Cut == nil || rep.Cut.Kind != ErrorPanic {
		t.Fatalf("report cut = %+v", rep.Cut)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("rendering: %v", err)
	}
	// The session is still readable: the clock, the report printer and a
	// second (clean) session all keep working.
	_ = s.Now()
	_ = rep.String()
}

// TestChunkPanicContainment: a panic raised inside a worker-pool chunk
// reaches the barrier wrapped with its chunk range, and the session
// error carries both the range and the worker's own stack.
func TestChunkPanicContainment(t *testing.T) {
	s := mustSession(t, WithNodes(8), WithWorkers(4))
	done := false
	s.Machine.Observe(func(e machine.Event) {
		if e.Node == 5 && !done {
			done = true
			panic("node observer boom")
		}
	})
	_, err := s.RunContext(context.Background())
	var serr *SessionError
	if !errors.As(err, &serr) || serr.Kind != ErrorPanic {
		t.Fatalf("err = %v", err)
	}
	if fmt.Sprint(serr.Panic) != "node observer boom" {
		t.Fatalf("panic value %v", serr.Panic)
	}
}

// TestWatchdogNoFalsePositive: a generous watchdog never trips on a
// healthy run.
func TestWatchdogNoFalsePositive(t *testing.T) {
	s := mustSession(t, WithNodes(4), WithWatchdog(time.Minute))
	rep, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cut != nil {
		t.Fatalf("watchdog cut a healthy run: %+v", rep.Cut)
	}
}

// TestWatchdogCatchesStall: an observer that blocks between operation
// boundaries trips the no-progress detector; the error names the last
// boundary and unwraps to ErrStalled.
func TestWatchdogCatchesStall(t *testing.T) {
	s := mustSession(t, WithNodes(2), WithWatchdog(30*time.Millisecond))
	events := 0
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s.Machine.Observe(func(machine.Event) {
		events++
		if events == 40 {
			<-release // wedge the driving goroutine mid-run
		}
	})
	type result struct {
		err error
	}
	ch := make(chan result, 1)
	go func() {
		_, err := s.RunContext(context.Background())
		ch <- result{err}
	}()
	// The cooperative abort cannot fire while the goroutine is wedged;
	// release it once the watchdog has had ample time to post its
	// verdict, then the next boundary converts it into the typed error.
	time.Sleep(300 * time.Millisecond)
	release <- struct{}{}
	select {
	case r := <-ch:
		var serr *SessionError
		if !errors.As(r.err, &serr) || serr.Kind != ErrorStalled {
			t.Fatalf("err = %v, want stalled SessionError", r.err)
		}
		if !errors.Is(r.err, ErrStalled) {
			t.Fatalf("cause %v", r.err)
		}
		if !strings.Contains(r.err.Error(), "last boundary") {
			t.Fatalf("diagnostic missing boundary: %v", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned")
	}
}

// TestBudgetShedDegradesBeforeFailing: a tight backlog ceiling first
// sheds sampling fidelity (recorded in Budget.Sheds and the report
// renderer) rather than cutting the run outright.
func TestBudgetShedDegradesBeforeFailing(t *testing.T) {
	s := mustSession(t, WithNodes(4),
		WithSampleEvery(vtime.Microsecond), // aggressive sampling load
		WithBudget(Budget{MaxChannelBacklog: 2}))
	// Sampling traffic exists only for enabled metrics; load the channel.
	for _, id := range []string{"computations", "computation_time", "summations", "summation_time"} {
		if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.RunContext(context.Background())
	if err != nil {
		// A cut is acceptable only after the ladder was exhausted.
		var serr *SessionError
		if !errors.As(err, &serr) || serr.Kind != ErrorOverBudget {
			t.Fatalf("err = %v", err)
		}
		if rep.Budget.Sheds == 0 {
			t.Fatalf("hard backlog failure without shedding first: %+v", rep.Budget)
		}
		return
	}
	if s.Tool.ShedLevel() == 0 || rep.Budget.Sheds == 0 {
		t.Fatalf("backlog ceiling of 2 under 4 sampled metrics never shed: %+v", rep.Budget)
	}
	if rep.Zero() {
		t.Fatal("shed run claims zero degradation")
	}
	if !strings.Contains(rep.String(), "budget: shed to level") {
		t.Fatalf("report does not render shedding:\n%s", rep)
	}
}
