package nvmap

import (
	"sync"
	"testing"

	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// parallelWorkload is big enough (32768-element arrays on 32 nodes)
// that its node-local regions clear machine.ParallelThreshold, so a
// multi-worker session genuinely exercises the parallel engine.
const parallelWorkload = `PROGRAM bigvec
REAL A(32768)
REAL B(32768)
REAL S
REAL T
FORALL (I = 1:32768) A(I) = 32769 - I
B = 1.0
B = A * 2.0 + B
S = SUM(A)
T = MAXVAL(B)
A = CSHIFT(A, 5)
B = B + A
S = SUM(B)
END
`

// parallelRun is everything observable about one session run: the full
// machine event stream with the global clock at each event, the final
// metric values, the elapsed time and the degradation report.
type parallelRun struct {
	events  []machine.Event
	globals []vtime.Time
	values  map[string]float64
	elapsed vtime.Duration
	report  string
	regions int
}

func runParallelSession(t *testing.T, workers int, plan *fault.Plan) parallelRun {
	t.Helper()
	s, err := NewSession(parallelWorkload, WithNodes(32), WithWorkers(workers),
		WithSourceFile("bigvec.fcm"), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	var run parallelRun
	s.Machine.Observe(func(e machine.Event) {
		run.events = append(run.events, e)
		run.globals = append(run.globals, s.Machine.GlobalNow())
	})
	ems := make(map[string]*paradyn.EnabledMetric)
	for _, id := range []string{"computation_time", "summation_time", "point_to_point_ops", "idle_time"} {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ems[id] = em
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	run.values = make(map[string]float64)
	for id, em := range ems {
		run.values[id] = em.Value(s.Now())
	}
	run.elapsed = s.Elapsed()
	run.report = rep.String()
	run.regions = s.Machine.ParallelRegions()
	return run
}

func assertRunsIdentical(t *testing.T, seq, par parallelRun, workers int) {
	t.Helper()
	if len(seq.events) != len(par.events) {
		t.Fatalf("workers=%d: %d events, sequential has %d", workers, len(par.events), len(seq.events))
	}
	for i := range seq.events {
		if seq.events[i] != par.events[i] {
			t.Fatalf("workers=%d: event %d differs\n  seq: %+v\n  par: %+v",
				workers, i, seq.events[i], par.events[i])
		}
		if seq.globals[i] != par.globals[i] {
			t.Fatalf("workers=%d: GlobalNow at event %d: seq %v, par %v",
				workers, i, seq.globals[i], par.globals[i])
		}
	}
	if seq.elapsed != par.elapsed {
		t.Fatalf("workers=%d: elapsed %v, sequential %v", workers, par.elapsed, seq.elapsed)
	}
	if seq.report != par.report {
		t.Fatalf("workers=%d: degradation reports differ:\n%s\nvs\n%s", workers, par.report, seq.report)
	}
	for id, want := range seq.values {
		if got := par.values[id]; got != want {
			t.Fatalf("workers=%d: metric %s = %g, sequential %g", workers, id, got, want)
		}
	}
}

// TestSessionWorkersGolden is the stack-level determinism contract: a
// whole session — compiler, machine, runtime, instrumentation, tool,
// daemon channel — produces a byte-identical event stream, clock trace,
// metric table and degradation report under any worker count, for
// fault-free runs, parallel-eligible fault plans (messages, slowdowns),
// and serialised ones (stalls, crashes).
func TestSessionWorkersGolden(t *testing.T) {
	plans := map[string]func() *fault.Plan{
		"plain": func() *fault.Plan { return nil },
		// Message faults and slowdowns leave node regions order-free, so
		// this plan exercises the parallel engine on a degraded run.
		"messages-slowdown": func() *fault.Plan {
			return &fault.Plan{
				Seed: 2026,
				Messages: fault.MessageFaults{
					DropProb: 0.1, DupProb: 0.05, DelayProb: 0.25, DelayMax: 30 * vtime.Microsecond,
				},
				Nodes: fault.NodeFaults{Slowdown: map[int]float64{2: 1.5, 17: 2.0}},
			}
		},
		// Stalls consume a shared ordered random stream: the engine must
		// serialise, and the output still matches workers=1 exactly.
		"stalls": func() *fault.Plan {
			return &fault.Plan{
				Seed:  2026,
				Nodes: fault.NodeFaults{StallProb: 0.2, StallFor: 5 * vtime.Microsecond},
			}
		},
		// Crash schedules serialise too (shared windows, recovery hooks).
		"crash": func() *fault.Plan {
			return &fault.Plan{
				Seed:    2026,
				Crashes: []fault.CrashFault{{Node: 3, At: 40 * 1000, Restart: 60 * vtime.Microsecond}},
			}
		},
	}
	// Plans whose multi-worker runs must really use the pool; stalls and
	// crashes must instead serialise every region.
	parallelEligible := map[string]bool{"plain": true, "messages-slowdown": true}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			seq := runParallelSession(t, 1, plan())
			if seq.regions != 0 {
				t.Fatalf("workers=1 ran %d parallel regions", seq.regions)
			}
			for _, workers := range []int{2, 8} {
				par := runParallelSession(t, workers, plan())
				assertRunsIdentical(t, seq, par, workers)
				if eligible := parallelEligible[name]; eligible && par.regions == 0 {
					t.Fatalf("workers=%d never engaged the parallel engine — the test is vacuous", workers)
				} else if !eligible && par.regions != 0 {
					t.Fatalf("workers=%d ran %d parallel regions under a serialising plan", workers, par.regions)
				}
			}
		})
	}
}

// TestSessionsSafeAcrossGoroutines pins the property RunAllExperiments
// relies on: independent sessions over the same sources are safe and
// deterministic when driven from concurrent goroutines (the compile
// cache and the vocabulary interner are the only cross-session state).
// Run under -race in CI.
func TestSessionsSafeAcrossGoroutines(t *testing.T) {
	want := runParallelSession(t, 1, nil)
	const concurrent = 4
	runs := make([]parallelRun, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = runParallelSession(t, i+1, nil)
		}(i)
	}
	wg.Wait()
	for i := range runs {
		assertRunsIdentical(t, want, runs[i], i+1)
	}
}
