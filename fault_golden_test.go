package nvmap

import (
	"testing"

	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

const faultTestProgram = `PROGRAM ftest
REAL A(256)
REAL B(256)
REAL S
REAL T
FORALL (I = 1:256) A(I) = I
FORALL (I = 1:256) B(I) = 2 * I
S = SUM(A)
T = MAXVAL(B)
END
`

func faultPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 2026,
		Messages: fault.MessageFaults{
			DropProb: 0.1, DupProb: 0.05, DelayProb: 0.25, DelayMax: 30 * vtime.Microsecond,
		},
		Nodes:   fault.NodeFaults{Slowdown: map[int]float64{2: 1.5}},
		Channel: fault.ChannelFaults{Capacity: 2, Policy: fault.DropOldest},
	}
}

func runFaulted(t *testing.T, plan *fault.Plan) (*Session, *DegradationReport, map[string]float64) {
	t.Helper()
	s, err := NewSession(faultTestProgram, WithNodes(4), WithSourceFile("ftest.fcm"), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	ems := make(map[string]*paradyn.EnabledMetric)
	for _, id := range []string{"summation_time", "point_to_point_ops", "idle_time"} {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		ems[id] = em
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for id, em := range ems {
		vals[id] = em.Value(s.Now())
	}
	return s, rep, vals
}

// The same fault seed must reproduce the same degraded run exactly:
// elapsed virtual time, degradation report, and every metric value.
func TestFaultSeedDeterministic(t *testing.T) {
	s1, r1, v1 := runFaulted(t, faultPlan())
	s2, r2, v2 := runFaulted(t, faultPlan())
	if s1.Elapsed() != s2.Elapsed() {
		t.Fatalf("elapsed differs: %v vs %v", s1.Elapsed(), s2.Elapsed())
	}
	if r1.String() != r2.String() {
		t.Fatalf("degradation reports differ:\n%s\nvs\n%s", r1, r2)
	}
	for id, a := range v1 {
		if b := v2[id]; a != b {
			t.Fatalf("metric %s differs: %g vs %g", id, a, b)
		}
	}
	if r1.Zero() {
		t.Fatal("plan injected nothing; the test proves nothing")
	}
}

// Different seeds must produce different degraded schedules.
func TestFaultSeedsDiffer(t *testing.T) {
	p2 := faultPlan()
	p2.Seed = 999
	_, r1, _ := runFaulted(t, faultPlan())
	_, r2, _ := runFaulted(t, p2)
	if r1.String() == r2.String() && r1.Injected == r2.Injected {
		t.Fatalf("seeds 2026 and 999 produced identical degradation:\n%s", r1)
	}
}

// With no fault plan, the run must match a plain session exactly — the
// fault machinery is invisible when disabled — and report zero
// degradation.
func TestNoFaultsInvisible(t *testing.T) {
	build := func(with bool) (*Session, *DegradationReport, map[string]float64) {
		cfg := Config{Nodes: 4, SourceFile: "ftest.fcm"}
		if with {
			cfg.Faults = nil // explicit: the zero configuration
		}
		s, err := NewSession(faultTestProgram, WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		em, err := s.Tool.EnableMetric("summation_time", paradyn.WholeProgram())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, rep, map[string]float64{"summation_time": em.Value(s.Now())}
	}
	s1, r1, v1 := build(false)
	s2, r2, v2 := build(true)
	if s1.Elapsed() != s2.Elapsed() || v1["summation_time"] != v2["summation_time"] {
		t.Fatalf("fault-free runs differ: %v/%g vs %v/%g",
			s1.Elapsed(), v1["summation_time"], s2.Elapsed(), v2["summation_time"])
	}
	if !r1.Zero() || !r2.Zero() {
		t.Fatalf("clean runs reported degradation:\n%s\n%s", r1, r2)
	}
	if r1.String() != "no degradation\n" {
		t.Fatalf("zero report renders %q", r1.String())
	}
	if s1.Faults() != nil {
		t.Fatal("injector materialised without a plan")
	}
}

// A bounded channel under load drops samples (accounted per metric,
// the pair marked degraded) while the aggregate metric values survive —
// they read the instrumentation counters, not the histogram.
func TestChannelOverflowDegradesSamples(t *testing.T) {
	plan := &fault.Plan{
		Seed:    1,
		Channel: fault.ChannelFaults{Capacity: 1, Policy: fault.DropOldest},
	}
	s, rep, vals := runFaulted(t, plan)
	clean, cleanRep, cleanVals := runFaulted(t, nil)
	if rep.Channel.Dropped == 0 || len(rep.DroppedSamples) == 0 {
		t.Fatalf("capacity-1 channel dropped nothing: %+v", rep.Channel)
	}
	if len(rep.DegradedMetrics) == 0 {
		t.Fatalf("dropped samples marked no metric degraded: %s", rep)
	}
	if !cleanRep.Zero() {
		t.Fatalf("clean run degraded: %s", cleanRep)
	}
	// Channel capacity perturbs only histograms, never the aggregate
	// values or the virtual clock.
	if s.Elapsed() != clean.Elapsed() {
		t.Fatalf("channel bound changed timing: %v vs %v", s.Elapsed(), clean.Elapsed())
	}
	for id, v := range vals {
		if cv := cleanVals[id]; v != cv {
			t.Fatalf("aggregate %s changed under overflow: %g vs %g", id, v, cv)
		}
	}
	// The degraded flag surfaces in display rows.
	degraded := false
	for _, em := range s.Tool.Enabled() {
		if em.Degraded() {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no enabled metric carries the degraded flag")
	}
}

// The SAS monitor's reliable links surface in the degradation report.
func TestMonitorReliableLinkInReport(t *testing.T) {
	plan := &fault.Plan{
		Seed: 11,
		SAS:  fault.SASFaults{DropProb: 0.5, Resync: true},
	}
	s, err := NewSession(faultTestProgram, WithNodes(4), WithSourceFile("ftest.fcm"), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	m := s.EnableSASMonitor(false)
	link, err := m.ExportReliable(1, 0, sas.T(verbSends, sas.Any))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	link.Flush(s.Now())
	rep2 := s.degradation()
	if len(rep.Links) != 1 || len(rep2.Links) != 1 {
		t.Fatalf("link missing from report: %d / %d", len(rep.Links), len(rep2.Links))
	}
	if st := link.Stats(); st.Sent == 0 {
		t.Fatalf("exported nothing over the link: %+v", st)
	}
	if link.Unacked() != 0 {
		t.Fatalf("link did not converge after flush: %d unacked", link.Unacked())
	}
}
