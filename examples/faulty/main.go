// Command faulty demonstrates deterministic fault injection and the
// degradation semantics of the mapping stack: the same program runs
// clean and under a seeded fault plan (message loss, node slowdown,
// bounded daemon channel), and a lossy cross-node SAS link is shown
// converging to the lossless answers via retransmission and resync.
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/fault"
	"nvmap/internal/nv"
	"nvmap/internal/paradyn"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

const program = `PROGRAM faulty
REAL A(256)
REAL B(256)
REAL S
REAL T
FORALL (I = 1:256) A(I) = I
FORALL (I = 1:256) B(I) = 2 * I
S = SUM(A)
T = MAXVAL(B)
END
`

// run executes the program with the given fault plan (nil = clean) and
// returns the session, its metrics, and the degradation report.
func run(plan *fault.Plan) (*nvmap.Session, []*paradyn.EnabledMetric, *nvmap.DegradationReport) {
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(4),
		nvmap.WithSourceFile("faulty.fcm"),
		nvmap.WithFaults(plan))
	if err != nil {
		log.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	var ems []*paradyn.EnabledMetric
	for _, id := range []string{"summation_time", "point_to_point_ops", "idle_time"} {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			log.Fatal(err)
		}
		ems = append(ems, em)
	}
	report, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return s, ems, report
}

func main() {
	plan := &fault.Plan{
		Seed: 2026,
		Messages: fault.MessageFaults{
			DropProb: 0.10, DelayProb: 0.25, DelayMax: 30 * vtime.Microsecond,
		},
		Nodes: fault.NodeFaults{
			Slowdown: map[int]float64{2: 1.5},
		},
		Channel: fault.ChannelFaults{Capacity: 2, Policy: fault.DropOldest},
	}

	fmt.Println("=== clean run ===")
	s, ems, rep := run(nil)
	fmt.Printf("virtual elapsed: %v\n", s.Elapsed())
	fmt.Print(paradyn.Table("metrics", s.MetricRows(ems)))
	fmt.Printf("degradation: %s", rep)

	fmt.Println("\n=== faulted run (seed 2026) ===")
	fs, fems, frep := run(plan)
	fmt.Printf("virtual elapsed: %v\n", fs.Elapsed())
	fmt.Print(paradyn.Table("metrics", fs.MetricRows(fems)))
	fmt.Printf("degradation report:\n%s", frep)

	// Determinism: the same seed reproduces the same degraded run.
	fs2, _, frep2 := run(plan)
	fmt.Printf("\nsame seed, second run: elapsed %v, report identical: %v\n",
		fs2.Elapsed(), frep.String() == frep2.String())

	// The Section 4.2.3 client/server question over a lossy link: the
	// client exports {query QueryActive} sentences to the server's SAS
	// over a channel that drops 40% of events, duplicates 20% and
	// reorders 20% — and still converges to the lossless answer, thanks
	// to sequence numbers, retransmission and snapshot resync.
	fmt.Println("\n=== lossy cross-node SAS link ===")
	lossless := playClientServer(nil, nil)
	inj := fault.NewInjector(&fault.Plan{Seed: 7, SAS: fault.SASFaults{
		DropProb: 0.4, DupProb: 0.2, ReorderProb: 0.2, Resync: true,
	}})
	var link *sas.ReliableLink
	lossy := playClientServer(inj, &link)
	fmt.Printf("disk reads charged to query7: lossless %.0f, lossy %.0f\n", lossless, lossy)
	st := link.Stats()
	fmt.Printf("link: sent %d, retransmits %d, resyncs %d, duplicates dropped %d, gaps %d\n",
		st.Sent, st.Retransmits, st.Resyncs, st.DuplicatesDropped, st.Gaps)
	if lossless != lossy {
		log.Fatalf("lossy link did not converge: %g != %g", lossy, lossless)
	}
}

// playClientServer runs the client/server query scenario and returns
// the reads charged to query7 on the server. With an injector, the
// export runs over a lossy transport behind a ReliableLink whose
// retransmit timer (Flush) fires after every client state change.
func playClientServer(inj *fault.Injector, out **sas.ReliableLink) float64 {
	reg := sas.NewRegistry(sas.Options{})
	client, server := reg.Node(0), reg.Node(1)
	qid, err := server.AddQuestion(sas.Q("reads for query7",
		sas.T("QueryActive", "query7"), sas.T("DiskRead", sas.Any)))
	if err != nil {
		log.Fatal(err)
	}
	flush := func(vtime.Time) {}
	if inj == nil {
		if err := client.Export(sas.T("QueryActive", sas.Any), server, nil); err != nil {
			log.Fatal(err)
		}
	} else {
		link, err := client.ExportReliable(sas.T("QueryActive", sas.Any), server,
			&sas.LossyTransport{Inj: inj}, true)
		if err != nil {
			log.Fatal(err)
		}
		flush = link.Flush
		*out = link
	}

	now := vtime.Time(0)
	tick := func() vtime.Time { now += 10; return now }
	disk := func() { server.RecordEvent(nv.NewSentence("DiskRead", "disk0"), tick(), 1) }
	for _, q := range []struct {
		name  string
		reads int
	}{{"query7", 5}, {"query3", 3}, {"query7", 2}} {
		client.Activate(nv.NewSentence("QueryActive", nv.NounID(q.name)), tick())
		flush(now)
		for i := 0; i < q.reads; i++ {
			disk()
		}
		if err := client.Deactivate(nv.NewSentence("QueryActive", nv.NounID(q.name)), tick()); err != nil {
			log.Fatal(err)
		}
		flush(now)
		disk() // a read between queries: never charged
	}
	res, err := server.Result(qid, now)
	if err != nil {
		log.Fatal(err)
	}
	return res.Count
}
