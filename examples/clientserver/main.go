// clientserver demonstrates Section 4.2.3: performance questions that
// need SAS information from more than one node. A database server
// performs disk reads on behalf of clients; to measure "server reads from
// disk while client query Q is active", the client's SAS exports the
// query-activity sentence to the server's SAS whenever it becomes active
// or inactive.
package main

import (
	"fmt"
	"log"

	"nvmap/internal/nv"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

func main() {
	reg := sas.NewRegistry(sas.Options{})
	client := reg.Node(0)
	server := reg.Node(1)

	// The server-side question spans both nodes' activity.
	q7, err := server.AddQuestion(sas.Q("reads for query7",
		sas.T("QueryActive", "query7"),
		sas.T("DiskRead", sas.Any)))
	if err != nil {
		log.Fatal(err)
	}
	qAny, err := server.AddQuestion(sas.Q("reads for any query",
		sas.T("QueryActive", sas.Any),
		sas.T("DiskRead", sas.Any)))
	if err != nil {
		log.Fatal(err)
	}

	// "The client's SAS would need to send one sentence (client query is
	// active) to the server's SAS whenever that sentence became active or
	// inactive."
	if err := client.Export(sas.T("QueryActive", sas.Any), server, sas.SyncTransport{}); err != nil {
		log.Fatal(err)
	}

	disk := nv.NewSentence("DiskRead", "disk0")
	clock := vtime.Time(0)
	read := func(n int) {
		for i := 0; i < n; i++ {
			clock = clock.Add(400 * vtime.Microsecond)
			server.RecordEvent(disk, clock, 1)
			server.RecordSpan(disk, clock, clock.Add(150*vtime.Microsecond), 150*vtime.Microsecond)
		}
	}
	runQuery := func(name string, reads int) {
		sn := nv.NewSentence("QueryActive", nv.NounID(name))
		clock = clock.Add(vtime.Millisecond)
		client.Activate(sn, clock)
		read(reads)
		clock = clock.Add(vtime.Millisecond)
		if err := client.Deactivate(sn, clock); err != nil {
			log.Fatal(err)
		}
	}

	read(2)               // background reads before any query
	runQuery("query7", 5) // the query of interest
	runQuery("query9", 3) // another client's query
	read(1)               // trailing background read

	r7, err := server.Result(q7, clock)
	if err != nil {
		log.Fatal(err)
	}
	rAny, err := server.Result(qAny, clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed SAS: client exports query activity to the server")
	fmt.Printf("  disk reads for query7:    %3.0f (want 5), read time %v\n", r7.Count, r7.EventTime)
	fmt.Printf("  disk reads for any query: %3.0f (want 8), read time %v\n", rAny.Count, rAny.EventTime)
	fmt.Printf("  background reads charged to no query: %d\n", 3)
}
