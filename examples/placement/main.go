// placement demonstrates topology-aware machines and
// placement-as-mapping: the same circular-shift workload runs on an
// 8-node ring torus under the identity placement and under the greedy
// congestion-aware placement computed from the traffic matrix measured
// in the first run. The interconnect counters (congestion, dilation)
// quantify the win, the session's Levels() enumeration shows the
// hardware levels joining the abstraction stack, and a SAS question at
// the hardware level names the CMF statement causing the cross-link
// traffic.
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/place"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

const program = `PROGRAM torus
REAL A(256)
REAL S
FORALL (I = 1:256) A(I) = I
A = CSHIFT(A, 128)
S = SUM(A)
END
`

func topology() machine.Topology {
	return machine.Topology{GridX: 8, GridY: 1, Torus: true, LinkHop: 2 * vtime.Microsecond}
}

// run executes the workload under one placement (nil = identity) and
// returns the machine's interconnect view plus the cross-link question's
// answer.
func run(placement []int) (machine.NetStats, [][]int64, string, error) {
	opts := []nvmap.Option{
		nvmap.WithNodes(8),
		nvmap.WithSourceFile("torus.fcm"),
		nvmap.WithTopology(topology()),
	}
	if placement != nil {
		opts = append(opts, nvmap.WithPlacement(placement))
	}
	s, err := nvmap.NewSession(program, opts...)
	if err != nil {
		return machine.NetStats{}, nil, "", err
	}
	w := s.EnableSASMonitor(false)
	for n := 0; n < s.Machine.Nodes(); n++ {
		w.Reg.Node(n)
	}
	// "Which CMF statement causes cross-link traffic?" — one question
	// per statement pairing {lineN Executes} with {? Routes}.
	type lineQ struct {
		line int
		ids  map[int]sas.QuestionID
	}
	var qs []lineQ
	seen := map[int]bool{}
	for _, b := range s.Program.Blocks {
		for _, line := range b.Lines {
			if seen[line] {
				continue
			}
			seen[line] = true
			noun := nv.NounID(fmt.Sprintf("line%d", line))
			ids, err := w.Reg.AddQuestionAll(sas.Q(
				fmt.Sprintf("line%d routes", line),
				sas.T("Executes", noun), sas.T("Routes", sas.Any)))
			if err != nil {
				return machine.NetStats{}, nil, "", err
			}
			qs = append(qs, lineQ{line, ids})
		}
	}
	if _, err := s.Run(); err != nil {
		return machine.NetStats{}, nil, "", err
	}
	now := s.Now()
	top, topCount := "", float64(0)
	for _, q := range qs {
		agg, err := w.Reg.AggregateResult(q.ids, now)
		if err != nil {
			return machine.NetStats{}, nil, "", err
		}
		if agg.Count > topCount {
			topCount = agg.Count
			top = fmt.Sprintf("line%d (%0.f crossings)", q.line, agg.Count)
		}
	}
	return s.Machine.NetStats(), s.Machine.TrafficMatrix(), top, nil
}

func main() {
	fmt.Println("=== identity placement on an 8-ring torus ===")
	idStats, traffic, idTop, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}
	dil := func(st machine.NetStats) float64 {
		return float64(st.LinkHops) / float64(st.Messages)
	}
	fmt.Printf("messages=%d crosslink=%d dilation=%.2f congestion=%dB\n",
		idStats.Messages, idStats.CrossMessages, dil(idStats), idStats.MaxLinkBytes)
	fmt.Printf("hottest statement at the HW level: %s\n\n", idTop)

	// The measured traffic matrix is mapping information: feed it to the
	// greedy placement and rerun.
	topo := topology()
	greedy := place.Greedy(8, &topo, traffic)
	fmt.Println("=== greedy placement computed from the measured traffic ===")
	fmt.Printf("placement: %v\n", greedy)
	grStats, _, grTop, err := run(greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("messages=%d crosslink=%d dilation=%.2f congestion=%dB\n",
		grStats.Messages, grStats.CrossMessages, dil(grStats), grStats.MaxLinkBytes)
	fmt.Printf("hottest statement at the HW level: %s\n\n", grTop)

	// The session sees the hardware levels as ordinary levels of
	// abstraction.
	s, err := nvmap.NewSession(program, nvmap.WithNodes(8), nvmap.WithTopology(topology()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("abstraction levels of a topology session:")
	for _, l := range s.Levels() {
		fmt.Printf("  %-8s rank %2d  nouns %2d  verbs %d  metrics %2d\n",
			l.Name, l.Rank, l.Nouns, l.Verbs, l.Metrics)
	}

	ok := grStats.MaxLinkBytes < idStats.MaxLinkBytes && dil(grStats) < dil(idStats)
	fmt.Printf("\ngreedy strictly reduces congestion and dilation: %v\n", ok)
	if !ok {
		log.Fatal("placement failed to improve the interconnect load")
	}
}
