// Observed: run a program under the self-observability plane — the
// measurement tool pointed at itself. The plane traces every pipeline
// stage (machine collectives, parallel regions, daemon traffic, SAS
// notifications, sampling rounds) as spans, publishes every component's
// statistics on one metrics registry, and attributes the run's
// wall-clock self-cost back to named stages and abstraction levels.
//
// The example self-checks the plane's determinism guarantee: the
// Chrome trace export, the stable Prometheus export and the
// perturbation report's structure are byte-identical across worker
// counts, and exits non-zero on any divergence.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"nvmap"
	"nvmap/internal/obs"
	"nvmap/internal/paradyn"
)

const program = `PROGRAM observed
REAL A(1024)
REAL B(1024)
REAL ASUM
FORALL (I = 1:1024) A(I) = I
B = A * 0.5 + 1.0
B = CSHIFT(B, 16)
ASUM = SUM(A)
PRINT *, ASUM
END
`

// observe runs the workload with the plane enabled and returns its
// deterministic exports plus the perturbation report.
func observe(workers int) (chrome, prom, structure string, report *obs.PerturbationReport) {
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(8),
		nvmap.WithWorkers(workers),
		nvmap.WithSourceFile("observed.fcm"),
		nvmap.WithOutput(io.Discard),
		nvmap.WithObservability())
	if err != nil {
		log.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()
	for _, id := range []string{"summations", "summation_time", "point_to_point_ops", "idle_time"} {
		if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
			log.Fatal(err)
		}
	}
	mon := s.EnableSASMonitor(false)
	if _, err := mon.Ask("sums while sending", "{? Sums}, {? Sends}"); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	s.Tool.SampleAll(s.Now())

	var cb, pb bytes.Buffer
	plane := s.Observability()
	if err := obs.WriteChromeTrace(&cb, plane.Tracer); err != nil {
		log.Fatal(err)
	}
	if err := obs.WritePrometheus(&pb, plane.Metrics, false); err != nil {
		log.Fatal(err)
	}
	report = s.PerturbationReport()
	return cb.String(), pb.String(), report.Structure(), report
}

func main() {
	c1, p1, s1, _ := observe(1)
	c8, p8, s8, rep := observe(8)

	fmt.Printf("=== observability plane (workers=8) ===\n")
	fmt.Printf("chrome trace: %d bytes, prometheus text: %d bytes\n\n", len(c8), len(p8))

	fmt.Println("stable metrics (excerpt):")
	shown := 0
	for _, line := range strings.Split(p8, "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fmt.Println(" ", line)
		if shown++; shown >= 12 {
			fmt.Println("  ...")
			break
		}
	}

	fmt.Println("\nperturbation report:")
	fmt.Print(rep.String())

	sameChrome := c1 == c8
	sameProm := p1 == p8
	sameStructure := s1 == s8
	fmt.Printf("\nchrome trace identical across worker counts: %v\n", sameChrome)
	fmt.Printf("prometheus export identical across worker counts: %v\n", sameProm)
	fmt.Printf("perturbation structure identical across worker counts: %v\n", sameStructure)
	if !sameChrome || !sameProm || !sameStructure {
		os.Exit(1)
	}
}
