// attribution demonstrates the paper's Section 3 flow end-to-end: the
// tool times the Base-level node code blocks with dynamic
// instrumentation, expresses the measurements as Base-level sentences
// ({block, CPU Utilization}), and maps them upward through the static
// mapping information to the source lines — under both the split policy
// and the Paradyn merge policy, so the effect of compiler fusion on
// attribution is visible.
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/mapping"
	"nvmap/internal/paradyn"
)

// Lines 5 and 6 fuse into one block (the reduction on line 7 breaks the
// run); the much heavier line 8 stands alone. The fused pair's costs
// cannot be separated honestly — which is exactly what the merge policy
// reports.
const program = `PROGRAM attrib
REAL A(4096)
REAL B(4096)
REAL S
A = 1.5
B = 2.5
S = SUM(A)
A = A * B + A / B - B * B + SQRT(A) * 3.0
S = SUM(A)
END
`

func main() {
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(4), nvmap.WithFuse(), nvmap.WithSourceFile("attrib.fcm"))
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Tool.EnableBlockTimers(); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	now := s.Now()

	fmt.Println("Base-level measurements (what the tool can actually observe):")
	ms, err := s.Tool.BlockMeasurements(now)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		fmt.Printf("  %-40v %6.2f %%CPU\n", m.Sentence, m.Cost.Value)
	}

	for _, policy := range []mapping.Policy{mapping.Split, mapping.Merge} {
		rows, err := s.Tool.PresentBlockTimes(now, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nPresented at the CM Fortran level (%s policy):\n", policy)
		fmt.Print(paradyn.Table("", rows))
	}

	fmt.Println("\nThe split policy divides the fused block's cost 50/50 between lines 5")
	fmt.Println("and 6 — false precision. The merge policy reports the pair as one")
	fmt.Println("inseparable unit, which is all the mapping information supports, and")
	fmt.Println("leaves the heavy line 8 correctly attributed on its own.")
}
