// hpfreduction walks through the paper's running example (Sections
// 4.2.1-4.2.2): the HPF fragment
//
//	1   ASUM = SUM(A)
//	2   BMAX = MAXVAL(B)
//
// is executed on a distributed-memory partition while monitoring code
// maintains per-node Sets of Active Sentences; the Figure 6 performance
// questions are answered, and the Figure 5 SAS snapshot is printed at the
// moment a message is sent as part of SUM(A).
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/cmrts"
	"nvmap/internal/dyninst"
	"nvmap/internal/nv"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

const program = `PROGRAM hpf
REAL A(512)
REAL B(512)
REAL ASUM
REAL BMAX
FORALL (I = 1:512) A(I) = I
FORALL (I = 1:512) B(I) = 2 * I
ASUM = SUM(A)
BMAX = MAXVAL(B)
END
`

func main() {
	s, err := nvmap.NewSession(program, nvmap.WithNodes(4), nvmap.WithSourceFile("hpf.fcm"))
	if err != nil {
		log.Fatal(err)
	}

	// Monitoring code, by hand: per-node SASes fed by instrumentation
	// snippets. (nvmap's experiment drivers wrap exactly this wiring; the
	// example spells it out.)
	sases := sas.NewRegistry(sas.Options{})
	model := nv.NewRegistry()
	if err := model.AddLevel(nv.Level{ID: "HPF", Rank: 2}); err != nil {
		log.Fatal(err)
	}
	if err := model.AddLevel(nv.Level{ID: "Base", Rank: 0}); err != nil {
		log.Fatal(err)
	}
	for _, v := range []nv.Verb{
		{ID: "Executes", Level: "HPF"}, {ID: "Sums", Level: "HPF"},
		{ID: "Maxvals", Level: "HPF"}, {ID: "Sends", Level: "Base"},
	} {
		if err := model.AddVerb(v); err != nil {
			log.Fatal(err)
		}
	}

	// Each node code block activates its statement sentence, and — for
	// reductions — the array-verb sentence ({A Sums}).
	for _, blk := range s.Program.Blocks {
		b := blk
		var sentences []nv.Sentence
		for _, line := range b.Lines {
			sentences = append(sentences,
				nv.NewSentence("Executes", nv.NounID(fmt.Sprintf("line%d", line))))
		}
		if b.Intrinsic == "SUM" {
			sentences = append(sentences, nv.NewSentence("Sums", nv.NounID(b.Arrays[0])))
		}
		if b.Intrinsic == "MAXVAL" {
			sentences = append(sentences, nv.NewSentence("Maxvals", nv.NounID(b.Arrays[0])))
		}
		s.Inst.Insert(dyninst.Entry(b.Name), dyninst.Snippet{Do: func(ctx dyninst.Context) {
			for _, sn := range sentences {
				sases.Node(ctx.Node).Activate(sn, ctx.Now)
			}
		}})
		s.Inst.Insert(dyninst.Exit(b.Name), dyninst.Snippet{Do: func(ctx dyninst.Context) {
			for _, sn := range sentences {
				_ = sases.Node(ctx.Node).Deactivate(sn, ctx.Now)
			}
		}})
	}

	// Low-level sends are the measured sentences; snapshot the SAS the
	// first time one fires while {A Sums} is active (Figure 5).
	var snapshot []sas.ActiveSentence
	sendStart := make([]vtime.Time, s.Machine.Nodes())
	s.Inst.Insert(dyninst.Entry(cmrts.RoutineSend), dyninst.Snippet{Do: func(ctx dyninst.Context) {
		node := sases.Node(ctx.Node)
		sn := nv.NewSentence("Sends", nv.NounID(fmt.Sprintf("Processor_%d", ctx.Node)))
		sendStart[ctx.Node] = ctx.Now
		node.Activate(sn, ctx.Now)
		if snapshot == nil && node.Active(nv.NewSentence("Sums", "A")) {
			snapshot = node.Snapshot()
		}
	}})
	s.Inst.Insert(dyninst.Exit(cmrts.RoutineSend), dyninst.Snippet{Do: func(ctx dyninst.Context) {
		node := sases.Node(ctx.Node)
		sn := nv.NewSentence("Sends", nv.NounID(fmt.Sprintf("Processor_%d", ctx.Node)))
		_ = node.Deactivate(sn, ctx.Now)
		node.RecordEvent(sn, ctx.Now, 1)
		node.RecordSpan(sn, sendStart[ctx.Node], ctx.Now, ctx.Now.Sub(sendStart[ctx.Node]))
	}})

	// The Figure 6 questions, registered on every node's SAS.
	questions := []sas.Question{
		sas.Q("{A Sums}", sas.T("Sums", "A")),
		sas.Q("{Processor_1 Sends}", sas.T("Sends", "Processor_1")),
		sas.Q("{A Sums}, {Processor_1 Sends}", sas.T("Sums", "A"), sas.T("Sends", "Processor_1")),
		sas.Q("{? Sums}, {Processor_1 Sends}", sas.T("Sums", sas.Any), sas.T("Sends", "Processor_1")),
	}
	for n := 0; n < s.Machine.Nodes(); n++ {
		sases.Node(n)
	}
	ids := make([]map[int]sas.QuestionID, len(questions))
	for i, q := range questions {
		m, err := sases.AddQuestionAll(q)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = m
	}

	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The SAS when a message is sent during SUM(A):")
	fmt.Print(sas.FormatSnapshot(snapshot, model))
	fmt.Println("\nPerformance questions:")
	for i, q := range questions {
		agg, err := sases.AggregateResult(ids[i], s.Now())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-36s count=%3.0f  event time=%-10v gate time=%v\n",
			q.Label, agg.Count, agg.EventTime, agg.SatisfiedTime)
	}
}
