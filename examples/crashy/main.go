// Command crashy demonstrates the fail-stop crash/recovery subsystem:
// the same program runs clean, with a mid-run transient crash (the node
// reboots and is rebuilt from checkpoint + journal replay, converging to
// the clean answers), and with a permanent crash (the node stays dead
// and every answer covering it is honestly annotated partial).
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

const program = `PROGRAM crashy
REAL A(256)
REAL B(256)
REAL S
REAL T
FORALL (I = 1:256) A(I) = I
FORALL (I = 1:256) B(I) = 2 * I
S = SUM(A)
T = MAXVAL(B)
END
`

// The count metrics a work-conserving recovery reproduces exactly.
var metrics = []string{"summations", "point_to_point_ops", "computations"}

// run executes the program with the given crash plan (nil = clean) and
// tight recovery tuning scaled to this short run.
func run(plan *fault.Plan) (*nvmap.Session, []*paradyn.EnabledMetric, *nvmap.DegradationReport) {
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(4),
		nvmap.WithSourceFile("crashy.fcm"),
		nvmap.WithFaults(plan),
		nvmap.WithRecovery(nvmap.RecoveryConfig{
			CheckpointEvery: 20 * vtime.Microsecond,
			Timeout:         5 * vtime.Microsecond,
			Probes:          2,
		}))
	if err != nil {
		log.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	var ems []*paradyn.EnabledMetric
	for _, id := range metrics {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			log.Fatal(err)
		}
		ems = append(ems, em)
	}
	report, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return s, ems, report
}

func main() {
	fmt.Println("=== clean run ===")
	s, ems, _ := run(nil)
	fmt.Printf("virtual elapsed: %v\n", s.Elapsed())
	fmt.Print(paradyn.Table("metrics", s.MetricRows(ems)))

	// Node 2 fail-stops at 30µs and reboots 10µs later. The supervisor
	// restores its last checkpoint, replays the post-checkpoint journal
	// records, and re-registers its dynamic nouns — the final answers
	// match the clean run exactly.
	fmt.Println("\n=== transient crash: node 2 down at 30µs, back at +10µs ===")
	tp := &fault.Plan{Seed: 7}
	tp.CrashAt(2, vtime.Time(30*vtime.Microsecond)).RestartAfter(10 * vtime.Microsecond)
	ts, tems, trep := run(tp)
	fmt.Printf("virtual elapsed: %v\n", ts.Elapsed())
	fmt.Print(paradyn.Table("metrics", ts.MetricRows(tems)))
	fmt.Printf("degradation report:\n%s", trep)
	for i, em := range ems {
		clean, crashed := em.Value(s.Now()), tems[i].Value(ts.Now())
		if clean != crashed {
			log.Fatalf("metric %s did not converge: clean %g, crashed %g",
				em.Metric.ID, clean, crashed)
		}
	}
	fmt.Println("all count metrics converged to the clean run")

	// Node 2 fail-stops at 40µs and never comes back. The run completes
	// on the survivors; the lost virtual time is accounted exactly and
	// every whole-program answer carries an explicit partial annotation.
	fmt.Println("\n=== permanent crash: node 2 down at 40µs, never recovered ===")
	pp := &fault.Plan{Seed: 7}
	pp.CrashAt(2, vtime.Time(40*vtime.Microsecond))
	ps, pems, prep := run(pp)
	fmt.Printf("virtual elapsed: %v\n", ps.Elapsed())
	fmt.Print(paradyn.Table("metrics", ps.MetricRows(pems)))
	fmt.Printf("degradation report:\n%s", prep)
	if p := pems[0].Partial(); p == "" {
		log.Fatal("permanent loss produced no partial annotation")
	} else {
		fmt.Printf("every answer carries: %s\n", p)
	}
	fmt.Printf("supervisor's belief about node 2: %v\n", ps.Supervisor().Health(2))

	// Determinism: the same seed and plan reproduce the crashed run
	// bit-identically.
	ps2, _, prep2 := run(pp)
	fmt.Printf("\nsame plan, second run: elapsed %v, report identical: %v\n",
		ps2.Elapsed(), prep.String() == prep2.String())
}
