// Parallel: the deterministic parallel execution engine. The same
// 32-node workload runs twice — once entirely on the caller goroutine
// (workers=1, the sequential engine) and once on an 8-worker pool —
// and the program asserts that every metric row, the virtual elapsed
// time and the event count are identical. Workers trade host threads
// for wall-clock; they never change what the tool measures.
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/machine"
	"nvmap/internal/paradyn"
)

// 32768-element arrays on 32 nodes: each node-local region is big
// enough for the machine to schedule it on the worker pool.
const program = `PROGRAM bigvec
REAL A(32768)
REAL B(32768)
REAL S
REAL T
FORALL (I = 1:32768) A(I) = 32769 - I
B = 1.0
B = A * 2.0 + B
S = SUM(A)
T = MAXVAL(B)
A = CSHIFT(A, 5)
B = B + A
S = SUM(B)
END
`

var metricIDs = []string{
	"computations", "computation_time", "summation_time",
	"point_to_point_ops", "idle_time",
}

type run struct {
	rows    []paradyn.Row
	elapsed string
	events  int
	regions int
}

func runOnce(workers int) run {
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(32),
		nvmap.WithWorkers(workers),
		nvmap.WithSourceFile("bigvec.fcm"))
	if err != nil {
		log.Fatal(err)
	}
	events := 0
	s.Machine.Observe(func(machine.Event) { events++ })
	var enabled []*paradyn.EnabledMetric
	for _, id := range metricIDs {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			log.Fatal(err)
		}
		enabled = append(enabled, em)
	}
	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return run{
		rows:    s.MetricRows(enabled),
		elapsed: s.Elapsed().String(),
		events:  events,
		regions: s.Machine.ParallelRegions(),
	}
}

func main() {
	seq := runOnce(1)
	par := runOnce(8)

	fmt.Printf("=== workers=1 (sequential engine) ===\n")
	fmt.Printf("virtual elapsed %s, %d machine events, %d parallel regions\n\n",
		seq.elapsed, seq.events, seq.regions)
	fmt.Print(paradyn.Table("whole-program metrics", seq.rows))

	fmt.Printf("\n=== workers=8 (worker pool) ===\n")
	fmt.Printf("virtual elapsed %s, %d machine events, %d parallel regions\n\n",
		par.elapsed, par.events, par.regions)
	fmt.Print(paradyn.Table("whole-program metrics", par.rows))

	if par.regions == 0 {
		log.Fatal("workers=8 never engaged the parallel engine")
	}
	identical := seq.elapsed == par.elapsed && seq.events == par.events &&
		len(seq.rows) == len(par.rows)
	for i := range seq.rows {
		if !identical || seq.rows[i] != par.rows[i] {
			identical = false
			break
		}
	}
	fmt.Printf("\nmetric rows identical across worker counts: %v\n", identical)
	if !identical {
		log.Fatal("worker count changed observable output")
	}
}
