// stencil runs a data-parallel relaxation kernel — the kind of workload
// the paper's introduction motivates — under full measurement: per-array
// and per-statement constrained metrics, a time plot of computation, and
// the Performance Consultant's bottleneck search.
package main

import (
	"fmt"
	"log"

	"nvmap"
	"nvmap/internal/paradyn"
)

const program = `PROGRAM stencil
REAL U(2048)
REAL L(2048)
REAL R(2048)
REAL RESID
FORALL (I = 1:2048) U(I) = I / 2048.0
DO STEP = 1, 8
L = CSHIFT(U, -1)
R = CSHIFT(U, 1)
U = L * 0.25 + U * 0.5 + R * 0.25
END DO
RESID = MAXVAL(U)
PRINT *, RESID
END
`

func main() {
	opts := []nvmap.Option{nvmap.WithNodes(8), nvmap.WithSourceFile("stencil.fcm")}
	s, err := nvmap.NewSession(program, opts...)
	if err != nil {
		log.Fatal(err)
	}
	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()

	// Whole-program metrics plus two constrained ones: communication for
	// array U, and computation within the update statement.
	wp := paradyn.WholeProgram()
	uFocus, err := paradyn.NewFocus(s.Tool.Axis.AddPath(paradyn.HierArrays, "U"))
	if err != nil {
		log.Fatal(err)
	}
	updateStmt, ok := s.Tool.Axis.Find("CMFstmts/line10")
	if !ok {
		log.Fatal("update statement missing from where axis")
	}
	stmtFocus, err := paradyn.NewFocus(updateStmt)
	if err != nil {
		log.Fatal(err)
	}

	type req struct {
		id    string
		focus paradyn.Focus
	}
	var enabled []*paradyn.EnabledMetric
	for _, r := range []req{
		{"computation_time", wp},
		{"transformation_time", wp},
		{"point_to_point_ops", wp},
		{"point_to_point_ops", uFocus},
		{"idle_time", wp},
		{"computation_time", stmtFocus},
	} {
		em, err := s.Tool.EnableMetric(r.id, r.focus)
		if err != nil {
			log.Fatal(err)
		}
		enabled = append(enabled, em)
	}

	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}
	now := s.Now()
	s.Tool.SampleAll(now)

	fmt.Printf("stencil on %d nodes: virtual elapsed %v\n\n", s.Machine.Nodes(), s.Elapsed())
	fmt.Print(paradyn.Table("metric-focus pairs", s.MetricRows(enabled)))
	fmt.Println()
	fmt.Print(paradyn.TimePlot(enabled[0], 64))

	// Per-node communication balance, from the whole-program instance.
	var rows []paradyn.Row
	p2p := enabled[2]
	for n := 0; n < s.Machine.Nodes(); n++ {
		rows = append(rows, paradyn.Row{
			Focus: fmt.Sprintf("node%d", n),
			Value: p2p.Instance.NodeValue(n, now),
			Units: "ops",
		})
	}
	fmt.Println()
	fmt.Print(paradyn.BarChart("sends per node", rows, 32))

	// Let the consultant explain where the time goes.
	c := paradyn.NewConsultant()
	findings, err := c.Search(func() (*paradyn.Tool, func() error, error) {
		fresh, err := nvmap.NewSession(program, opts...)
		if err != nil {
			return nil, nil, err
		}
		run := func() error { _, err := fresh.Run(); return err }
		return fresh.Tool, run, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPerformance Consultant:")
	for _, f := range findings {
		fmt.Println(" ", f)
	}
}
