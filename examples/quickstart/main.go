// Quickstart: compile a small data-parallel program, run it on the
// simulated CM-5 partition under the measurement tool, and print a few
// Figure 9 metrics — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nvmap"
	"nvmap/internal/paradyn"
)

const program = `PROGRAM quick
REAL A(1024)
REAL B(1024)
REAL ASUM
FORALL (I = 1:1024) A(I) = I
B = A * 0.5 + 1.0
B = CSHIFT(B, 16)
ASUM = SUM(A)
PRINT *, ASUM
END
`

func main() {
	// A session bundles the compiler, the simulated machine + runtime,
	// and the Paradyn-like tool, with static mapping information already
	// imported from the generated PIF.
	s, err := nvmap.NewSession(program,
		nvmap.WithNodes(8),
		nvmap.WithSourceFile("quick.fcm"),
		nvmap.WithOutput(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}

	// Ask for metrics before the run: the tool inserts dynamic
	// instrumentation only for what was requested.
	var enabled []*paradyn.EnabledMetric
	for _, id := range []string{
		"summations", "summation_time", "rotations",
		"point_to_point_ops", "point_to_point_time", "idle_time",
	} {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			log.Fatal(err)
		}
		enabled = append(enabled, em)
	}

	if _, err := s.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nvirtual elapsed: %v on %d nodes\n\n", s.Elapsed(), s.Machine.Nodes())
	fmt.Print(paradyn.Table("whole-program metrics", s.MetricRows(enabled)))

	// The generated static mapping information is ordinary PIF text.
	fmt.Println("\nstatic mapping information (excerpt):")
	text, err := s.PIFText()
	if err != nil {
		log.Fatal(err)
	}
	for i, line := range strings.Split(text, "\n") {
		if i >= 14 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
}
