package nvmap

import (
	"fmt"
	"strings"

	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/vtime"
)

// This file generates the diagnosis corpus: one pathological program
// per why-axis hypothesis, each with a single planted root cause the
// Performance Consultant must confirm — and nothing else at top level.
// The programs are generated rather than hand-written so scenario
// parameters (iteration counts, array sizes, fault severities) read as
// what they are: the knobs that make exactly one hypothesis true.

// DiagScenario is one corpus entry.
type DiagScenario struct {
	// Name keys the golden report file (testdata/diag_<name>.golden).
	Name string
	// Planted is the hypothesis ID this scenario's defect must confirm;
	// every other hypothesis must be rejected at the whole-program focus.
	Planted string
	// Source is the generated CMF program.
	Source string
	// Nodes is the partition size.
	Nodes int
	// Opts carry the scenario's machine shape and fault plan.
	Opts []Option
}

// genCompute emits a program whose arithmetic is concentrated in one
// hot statement over array H; the final reduction keeps the compiler
// honest about H being live.
func genCompute(name string, size, iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", name)
	fmt.Fprintf(&b, "REAL H(%d)\n", size)
	fmt.Fprintf(&b, "REAL C(%d)\n", size)
	b.WriteString("REAL S\n")
	fmt.Fprintf(&b, "FORALL (I = 1:%d) H(I) = I\n", size)
	fmt.Fprintf(&b, "DO K = 1, %d\n", iters)
	b.WriteString("H = H * 1.0001 + H * H - H / 3.0 + SQRT(H)\n")
	b.WriteString("END DO\n")
	b.WriteString("C = H + 1.0\n")
	b.WriteString("S = SUM(C)\n")
	b.WriteString("END\n")
	return b.String()
}

// genChain emits a long chain of tiny dependent parallel statements:
// one element per node per step, so dispatch serialisation — not
// computation — is where the time goes.
func genChain(name string, width, steps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", name)
	fmt.Fprintf(&b, "REAL A(%d)\n", width)
	fmt.Fprintf(&b, "DO K = 1, %d\n", steps)
	fmt.Fprintf(&b, "FORALL (I = 1:%d) A(I) = A(I) + 1.0\n", width)
	b.WriteString("END DO\n")
	b.WriteString("END\n")
	return b.String()
}

// genShift emits a nearest-neighbour communication ring: every
// iteration shifts the array one node over.
func genShift(name string, size, rounds int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", name)
	fmt.Fprintf(&b, "REAL A(%d)\n", size)
	fmt.Fprintf(&b, "DO K = 1, %d\n", rounds)
	b.WriteString("A = CSHIFT(A, 1)\n")
	b.WriteString("END DO\n")
	b.WriteString("END\n")
	return b.String()
}

// DiagnosisCorpus returns the five planted-root-cause scenarios, one
// per native hypothesis, in a fixed order.
func DiagnosisCorpus() []DiagScenario {
	return []DiagScenario{
		{
			// Every node does the same heavy arithmetic; nothing else is
			// wrong. Only CPUBound may confirm, refining to the hot
			// statement and the array it pounds.
			Name:    "hotspot-array",
			Planted: "CPUBound",
			Source:  genCompute("hotspot", 4096, 8),
			Nodes:   4,
			Opts:    []Option{WithNodes(4), WithSourceFile("hotspot.fcm")},
		},
		{
			// One node computes at 1/8 speed: its peers' time dispersion is
			// the defect. Total compute stays under the CPUBound threshold
			// because the fast nodes spend the run waiting, not computing.
			Name:    "straggler-node",
			Planted: "LoadImbalance",
			Source:  genCompute("straggler", 2048, 4),
			Nodes:   4,
			Opts: []Option{WithNodes(4), WithSourceFile("straggler.fcm"),
				WithFaults(&fault.Plan{Seed: 11,
					Nodes: fault.NodeFaults{Slowdown: map[int]float64{2: 8}}})},
		},
		{
			// A long chain of one-element-per-node statements: all the time
			// goes to serialised dispatch, every node waiting on the control
			// processor in lockstep.
			Name:    "serialized-chain",
			Planted: "SyncBound",
			Source:  genChain("chain", 4, 300),
			Nodes:   4,
			Opts:    []Option{WithNodes(4), WithSourceFile("chain.fcm")},
		},
		{
			// The interconnect randomly delays most messages: receivers sit
			// in message waits the fault plan injected. The injector's
			// extra-latency ledger separates this from honest CommBound.
			Name:    "lossy-link",
			Planted: "StallBound",
			Source:  genShift("lossy", 64, 30),
			Nodes:   4,
			Opts: []Option{WithNodes(4), WithSourceFile("lossy.fcm"),
				WithFaults(&fault.Plan{Seed: 7,
					Messages: fault.MessageFaults{DelayProb: 0.8, DelayMax: 200 * vtime.Microsecond}})},
		},
		{
			// A shift ring placed badly on a 4-node torus: logical
			// neighbours land on distant hardware nodes, funnelling traffic
			// over the middle link. CommBound confirms and the link-level
			// refinement names the congested link — and the statement whose
			// traffic crosses it.
			Name:    "congested-placement",
			Planted: "CommBound",
			Source:  genShift("congest", 64, 40),
			Nodes:   4,
			Opts: []Option{WithNodes(4), WithSourceFile("congest.fcm"),
				WithTopology(machine.Topology{GridX: 4, GridY: 1, Torus: true,
					LinkHop: 40 * vtime.Microsecond}),
				WithPlacement([]int{0, 2, 1, 3})},
		},
	}
}
