package main

// The observability subcommands: "nvprof trace" exports a Chrome
// trace_event JSON timeline (load it in Perfetto / chrome://tracing),
// "nvprof metrics" exports the metrics registry in Prometheus text
// format, and "nvprof serve" runs the program and then serves the live
// debug handler over HTTP. All three run the program under the
// self-observability plane; the classic flag interface is untouched.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"nvmap"
	"nvmap/internal/obs"
	"nvmap/internal/paradyn"
)

// obsCommand dispatches one observability subcommand; it returns the
// process exit code.
func obsCommand(mode string, args []string) int {
	fs := flag.NewFlagSet("nvprof "+mode, flag.ExitOnError)
	var (
		nodes      = fs.Int("nodes", 8, "partition size")
		workers    = fs.Int("workers", 0, "host worker pool width (0 = GOMAXPROCS)")
		fuse       = fs.Bool("fuse", false, "fuse adjacent elementwise statements")
		metricsArg = fs.String("metrics", "summations,summation_time,point_to_point_ops,idle_time",
			"comma-separated metric IDs, or 'all'")
		out      = fs.String("o", "", "output file (default stdout)")
		unstable = fs.Bool("unstable", false,
			"include metrics that vary with worker count or process history")
		addr    = fs.String("addr", "localhost:6060", "listen address (serve mode)")
		perturb = fs.Bool("perturb", false, "print the perturbation report to stderr")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: nvprof %s [flags] program.fcm (see -h)\n", mode)
		return 2
	}
	if err := runObs(mode, fs.Arg(0), obsRunConfig{
		nodes: *nodes, workers: *workers, fuse: *fuse,
		metrics: *metricsArg, out: *out, unstable: *unstable,
		addr: *addr, perturb: *perturb,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "nvprof:", err)
		return 1
	}
	return 0
}

type obsRunConfig struct {
	nodes    int
	workers  int
	fuse     bool
	metrics  string
	out      string
	unstable bool
	addr     string
	perturb  bool
}

func runObs(mode, path string, cfg obsRunConfig) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	opts := []nvmap.Option{
		nvmap.WithNodes(cfg.nodes),
		nvmap.WithWorkers(cfg.workers),
		nvmap.WithSourceFile(filepath.Base(path)),
		nvmap.WithObservability(),
	}
	if cfg.fuse {
		opts = append(opts, nvmap.WithFuse())
	}
	s, err := nvmap.NewSession(string(src), opts...)
	if err != nil {
		return err
	}
	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()
	ids := strings.Split(cfg.metrics, ",")
	if cfg.metrics == "all" {
		ids = s.Tool.Library().IDs()
	}
	for _, id := range ids {
		if id = strings.TrimSpace(id); id == "" {
			continue
		}
		if _, err := s.Tool.EnableMetric(id, paradyn.WholeProgram()); err != nil {
			return err
		}
	}
	if _, err := s.Run(); err != nil {
		return err
	}
	s.Tool.SampleAll(s.Now())

	if cfg.perturb || mode == "serve" {
		if r := s.PerturbationReport(); r != nil {
			fmt.Fprint(os.Stderr, r.String())
		}
	}
	plane := s.Observability()
	switch mode {
	case "trace":
		return writeOut(cfg.out, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, plane.Tracer)
		})
	case "metrics":
		return writeOut(cfg.out, func(w io.Writer) error {
			return obs.WritePrometheus(w, plane.Metrics, cfg.unstable)
		})
	case "serve":
		fmt.Fprintf(os.Stderr, "nvprof: serving observability plane on http://%s/ (metrics, trace, stages; ^C to stop)\n", cfg.addr)
		return http.ListenAndServe(cfg.addr, obs.Handler(plane))
	}
	return fmt.Errorf("unknown observability mode %q", mode)
}

// writeOut streams an export to the -o file, or stdout when unset.
func writeOut(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
