// Command nvprof runs a mini CM Fortran program on the simulated CM-5
// partition under the Paradyn-like measurement tool and reports the
// requested metrics, the where axis, and (optionally) the Performance
// Consultant's findings.
//
// Usage:
//
//	nvprof [flags] program.fcm
//
//	-nodes N        partition size (default 8)
//	-fuse           fuse adjacent elementwise statements
//	-metrics a,b,c  metric IDs to enable (default a useful set; "all" = every metric)
//	-focus PATH     constrain metrics to a where-axis resource
//	                (e.g. Machine/node2, CMFarrays/A, CMFstmts/line7)
//	-where          print the where axis after the run
//	-plot           print a time plot per metric
//	-consultant     run the Performance Consultant
//	-question Q     register a SAS performance question in the paper's
//	                notation (repeatable), e.g. "{A Sums}, {Processor_1 Sends}"
//	-timeline       print a per-node execution timeline
//	-pif            print the generated static mapping information
//	-levels         print the session's abstraction levels after the run
//	-list           list available metrics and exit
//
// Observability subcommands (see obscmd.go):
//
//	nvprof trace [flags] program.fcm    export a Chrome trace_event JSON
//	                                    timeline (Perfetto-loadable)
//	nvprof metrics [flags] program.fcm  export the metrics registry in
//	                                    Prometheus text format
//	nvprof serve [flags] program.fcm    run, then serve the live debug
//	                                    handler over HTTP
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nvmap"
	"nvmap/internal/mdl"
	"nvmap/internal/paradyn"
	"nvmap/internal/trace"
)

func main() {
	// Observability subcommands run the program under the
	// self-observability plane and export its view; every other
	// invocation is the classic flag interface below.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace", "metrics", "serve":
			os.Exit(obsCommand(os.Args[1], os.Args[2:]))
		}
	}
	var (
		nodes      = flag.Int("nodes", 8, "partition size")
		fuse       = flag.Bool("fuse", false, "fuse adjacent elementwise statements")
		metricsArg = flag.String("metrics", "summations,summation_time,point_to_point_ops,idle_time", "comma-separated metric IDs, or 'all'")
		focusArg   = flag.String("focus", "", "where-axis resource to constrain to")
		showWhere  = flag.Bool("where", false, "print the where axis")
		plot       = flag.Bool("plot", false, "print time plots")
		consult    = flag.Bool("consultant", false, "run the Performance Consultant")
		showPIF    = flag.Bool("pif", false, "print the generated PIF")
		timeline   = flag.Bool("timeline", false, "print a per-node execution timeline")
		list       = flag.Bool("list", false, "list available metrics and exit")
		showLevels = flag.Bool("levels", false, "print the session's abstraction levels after the run")
	)
	var questions questionFlags
	flag.Var(&questions, "question",
		`SAS performance question in the paper's notation, e.g. "{A Sums}, {Processor_1 Sends}" (repeatable; "?" wildcards, "[ordered]" suffix)`)
	flag.Parse()

	if *list {
		lib := mdl.StdLibrary()
		for _, id := range lib.IDs() {
			m, _ := lib.Get(id)
			fmt.Printf("%-28s %-28s (%s, %s level)\n", id, m.Name, m.Kind, m.Level)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nvprof [flags] program.fcm (see -h)")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *nodes, *fuse, *metricsArg, *focusArg, *showWhere, *plot, *consult, *showPIF, *timeline, *showLevels, questions); err != nil {
		fmt.Fprintln(os.Stderr, "nvprof:", err)
		os.Exit(1)
	}
}

// questionFlags collects repeatable -question flags.
type questionFlags []string

func (q *questionFlags) String() string     { return strings.Join(*q, "; ") }
func (q *questionFlags) Set(v string) error { *q = append(*q, v); return nil }

func run(path string, nodes int, fuse bool, metricsArg, focusArg string, showWhere, plot, consult, showPIF, timeline, showLevels bool, questions []string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	source := string(src)
	opts := []nvmap.Option{
		nvmap.WithNodes(nodes),
		nvmap.WithSourceFile(filepath.Base(path)),
		nvmap.WithOutput(os.Stdout),
	}
	if fuse {
		opts = append(opts, nvmap.WithFuse())
	}
	s, err := nvmap.NewSession(source, opts...)
	if err != nil {
		return err
	}
	if showPIF {
		text, err := s.PIFText()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}

	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()

	focus := paradyn.WholeProgram()
	if focusArg != "" {
		// The focus may name a resource that only exists after dynamic
		// mapping (an array); pre-create the axis path so the predicate
		// can be built. Unknown statements still fail cleanly.
		parts := strings.Split(focusArg, "/")
		if len(parts) < 2 {
			return fmt.Errorf("focus %q must be hierarchy/resource", focusArg)
		}
		res := s.Tool.Axis.AddPath(parts[0], parts[1:]...)
		focus, err = paradyn.NewFocus(res)
		if err != nil {
			return err
		}
	}

	var ids []string
	if metricsArg == "all" {
		ids = s.Tool.Library().IDs()
	} else {
		for _, id := range strings.Split(metricsArg, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	var enabled []*paradyn.EnabledMetric
	for _, id := range ids {
		em, err := s.Tool.EnableMetric(id, focus)
		if err != nil {
			return err
		}
		enabled = append(enabled, em)
	}

	var tr *trace.Trace
	if timeline {
		tr = s.EnableTrace()
	}

	var monitor *nvmap.Monitor
	var asked []*nvmap.AskedQuestion
	if len(questions) > 0 {
		monitor = s.EnableSASMonitor(false)
		for _, text := range questions {
			q, err := monitor.Ask("", text)
			if err != nil {
				return err
			}
			asked = append(asked, q)
		}
	}

	if _, err := s.Run(); err != nil {
		return err
	}
	now := s.Now()
	s.Tool.SampleAll(now)

	fmt.Printf("program %s on %d nodes: virtual elapsed %v\n\n",
		filepath.Base(path), nodes, s.Elapsed())
	fmt.Print(paradyn.Table("metrics", s.MetricRows(enabled)))

	if len(asked) > 0 {
		fmt.Println("\nperformance questions:")
		for _, q := range asked {
			r, err := q.Answer(now)
			if err != nil {
				return err
			}
			fmt.Printf("  %-44s count=%.0f  event time=%v  gate time=%v\n",
				q.Question.Label, r.Count, r.EventTime, r.SatisfiedTime)
		}
	}

	if plot {
		fmt.Println()
		for _, em := range enabled {
			fmt.Print(paradyn.TimePlot(em, 64))
		}
	}
	if showWhere {
		fmt.Println()
		fmt.Print(s.Tool.Axis.Render())
	}
	if showLevels {
		fmt.Println("\nabstraction levels (most abstract first):")
		fmt.Printf("  %-10s %5s %6s %6s %8s  %s\n", "level", "rank", "nouns", "verbs", "metrics", "")
		for _, l := range s.Levels() {
			note := ""
			if l.Virtual {
				note = "(metric library only)"
			}
			fmt.Printf("  %-10s %5d %6d %6d %8d  %s\n", l.Name, l.Rank, l.Nouns, l.Verbs, l.Metrics, note)
		}
	}
	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Render(72))
		fmt.Println()
		fmt.Print(tr.Summary())
	}
	if consult {
		fmt.Println()
		c := paradyn.NewConsultant()
		findings, err := c.Search(func() (*paradyn.Tool, func() error, error) {
			fresh, err := nvmap.NewSession(source, opts...)
			if err != nil {
				return nil, nil, err
			}
			run := func() error { _, err := fresh.Run(); return err }
			return fresh.Tool, run, nil
		})
		if err != nil {
			return err
		}
		fmt.Println("Performance Consultant findings:")
		for _, f := range findings {
			fmt.Println(" ", f)
		}
	}
	return nil
}
