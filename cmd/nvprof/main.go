// Command nvprof runs a mini CM Fortran program on the simulated CM-5
// partition under the Paradyn-like measurement tool and reports the
// requested metrics, the where axis, and (optionally) the Performance
// Consultant's findings.
//
// Usage:
//
//	nvprof [flags] program.fcm
//
//	-nodes N        partition size (default 8)
//	-fuse           fuse adjacent elementwise statements
//	-metrics a,b,c  metric IDs to enable (default a useful set; "all" = every metric)
//	-focus PATH     constrain metrics to a where-axis resource
//	                (e.g. Machine/node2, CMFarrays/A, CMFstmts/line7)
//	-where          print the where axis after the run
//	-plot           print a time plot per metric
//	-consultant     run the Performance Consultant
//	-diag-budget N  consultant probe budget (hypothesis x focus evaluations)
//	-diag-threshold F  override every hypothesis confirmation threshold
//	-diag-json      print the diagnosis report as JSON instead of text
//	-diag-trace F   write the diagnosis search as a Chrome trace overlay to F
//	-question Q     register a SAS performance question in the paper's
//	                notation (repeatable), e.g. "{A Sums}, {Processor_1 Sends}"
//	-timeline       print a per-node execution timeline
//	-pif            print the generated static mapping information
//	-levels         print the session's abstraction levels after the run
//	-list           list available metrics and exit
//
// Observability subcommands (see obscmd.go):
//
//	nvprof trace [flags] program.fcm    export a Chrome trace_event JSON
//	                                    timeline (Perfetto-loadable)
//	nvprof metrics [flags] program.fcm  export the metrics registry in
//	                                    Prometheus text format
//	nvprof serve [flags] program.fcm    run, then serve the live debug
//	                                    handler over HTTP
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nvmap"
	"nvmap/internal/diagnose"
	"nvmap/internal/mdl"
	"nvmap/internal/paradyn"
	"nvmap/internal/trace"
)

func main() {
	// Observability subcommands run the program under the
	// self-observability plane and export its view; every other
	// invocation is the classic flag interface below.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace", "metrics", "serve":
			os.Exit(obsCommand(os.Args[1], os.Args[2:]))
		}
	}
	var (
		nodes      = flag.Int("nodes", 8, "partition size")
		fuse       = flag.Bool("fuse", false, "fuse adjacent elementwise statements")
		metricsArg = flag.String("metrics", "summations,summation_time,point_to_point_ops,idle_time", "comma-separated metric IDs, or 'all'")
		focusArg   = flag.String("focus", "", "where-axis resource to constrain to")
		showWhere  = flag.Bool("where", false, "print the where axis")
		plot       = flag.Bool("plot", false, "print time plots")
		consult    = flag.Bool("consultant", false, "run the Performance Consultant")
		showPIF    = flag.Bool("pif", false, "print the generated PIF")
		timeline   = flag.Bool("timeline", false, "print a per-node execution timeline")
		list       = flag.Bool("list", false, "list available metrics and exit")
		showLevels = flag.Bool("levels", false, "print the session's abstraction levels after the run")
	)
	var diag diagOptions
	flag.IntVar(&diag.budget, "diag-budget", diagnose.DefaultBudget,
		"consultant probe budget: max hypothesis x focus evaluations")
	flag.Float64Var(&diag.threshold, "diag-threshold", 0,
		"override every hypothesis confirmation threshold (0 = per-hypothesis defaults)")
	flag.BoolVar(&diag.jsonOut, "diag-json", false, "print the diagnosis report as JSON")
	flag.StringVar(&diag.traceFile, "diag-trace", "", "write the diagnosis search as a Chrome trace overlay to this file")
	var questions questionFlags
	flag.Var(&questions, "question",
		`SAS performance question in the paper's notation, e.g. "{A Sums}, {Processor_1 Sends}" (repeatable; "?" wildcards, "[ordered]" suffix)`)
	flag.Parse()
	diag.consult = *consult
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "diag-budget", "diag-threshold", "diag-json", "diag-trace":
			diag.explicit = true
		}
	})

	if *list {
		lib := mdl.StdLibrary()
		for _, id := range lib.IDs() {
			m, _ := lib.Get(id)
			fmt.Printf("%-28s %-28s (%s, %s level)\n", id, m.Name, m.Kind, m.Level)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nvprof [flags] program.fcm (see -h)")
		os.Exit(2)
	}
	if err := diag.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nvprof:", err)
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *nodes, *fuse, *metricsArg, *focusArg, *showWhere, *plot, *consult, *showPIF, *timeline, *showLevels, questions, diag); err != nil {
		var ue *nvmap.UsageError
		fmt.Fprintln(os.Stderr, "nvprof:", err)
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// diagOptions is the validated consultant configuration. Validation is
// separated from flag parsing so the contradiction rules are unit
// testable (nvsoak-style): a rejected combination is a typed
// *nvmap.UsageError and exits 2, like any other usage mistake.
type diagOptions struct {
	budget    int
	threshold float64
	jsonOut   bool
	traceFile string
	// consult mirrors -consultant; explicit marks that at least one
	// -diag-* flag was given on the command line.
	consult  bool
	explicit bool
}

// validate applies the contradiction rules: a non-positive probe
// budget can never search, thresholds are fractions, and -diag-* flags
// without -consultant configure a search that will not run.
func (d *diagOptions) validate() error {
	if d.budget <= 0 {
		return &nvmap.UsageError{Option: "-diag-budget",
			Reason: fmt.Sprintf("probe budget must be positive, got %d", d.budget)}
	}
	if d.threshold < 0 || d.threshold >= 1 {
		return &nvmap.UsageError{Option: "-diag-threshold",
			Reason: fmt.Sprintf("confirmation threshold must be in [0, 1), got %g", d.threshold)}
	}
	if d.explicit && !d.consult {
		return &nvmap.UsageError{Option: "-diag-budget/-diag-threshold/-diag-json/-diag-trace",
			Reason: "contradicts absent -consultant (nothing would run the diagnosis)"}
	}
	return nil
}

// questionFlags collects repeatable -question flags.
type questionFlags []string

func (q *questionFlags) String() string     { return strings.Join(*q, "; ") }
func (q *questionFlags) Set(v string) error { *q = append(*q, v); return nil }

func run(path string, nodes int, fuse bool, metricsArg, focusArg string, showWhere, plot, consult, showPIF, timeline, showLevels bool, questions []string, diag diagOptions) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	source := string(src)
	opts := []nvmap.Option{
		nvmap.WithNodes(nodes),
		nvmap.WithSourceFile(filepath.Base(path)),
		nvmap.WithOutput(os.Stdout),
	}
	if fuse {
		opts = append(opts, nvmap.WithFuse())
	}
	s, err := nvmap.NewSession(source, opts...)
	if err != nil {
		return err
	}
	if showPIF {
		text, err := s.PIFText()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}

	s.Tool.EnableDynamicMapping()
	s.Tool.EnableGating()

	focus := paradyn.WholeProgram()
	if focusArg != "" {
		// The focus may name a resource that only exists after dynamic
		// mapping (an array); pre-create the axis path so the predicate
		// can be built. Unknown statements still fail cleanly.
		parts := strings.Split(focusArg, "/")
		if len(parts) < 2 {
			return fmt.Errorf("focus %q must be hierarchy/resource", focusArg)
		}
		res := s.Tool.Axis.AddPath(parts[0], parts[1:]...)
		focus, err = paradyn.NewFocus(res)
		if err != nil {
			return err
		}
	}

	var ids []string
	if metricsArg == "all" {
		ids = s.Tool.Library().IDs()
	} else {
		for _, id := range strings.Split(metricsArg, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	var enabled []*paradyn.EnabledMetric
	for _, id := range ids {
		em, err := s.Tool.EnableMetric(id, focus)
		if err != nil {
			return err
		}
		enabled = append(enabled, em)
	}

	var tr *trace.Trace
	if timeline {
		tr = s.EnableTrace()
	}

	var monitor *nvmap.Monitor
	var asked []*nvmap.AskedQuestion
	if len(questions) > 0 {
		monitor = s.EnableSASMonitor(false)
		for _, text := range questions {
			q, err := monitor.Ask("", text)
			if err != nil {
				return err
			}
			asked = append(asked, q)
		}
	}

	if _, err := s.Run(); err != nil {
		return err
	}
	now := s.Now()
	s.Tool.SampleAll(now)

	fmt.Printf("program %s on %d nodes: virtual elapsed %v\n\n",
		filepath.Base(path), nodes, s.Elapsed())
	fmt.Print(paradyn.Table("metrics", s.MetricRows(enabled)))

	if len(asked) > 0 {
		fmt.Println("\nperformance questions:")
		for _, q := range asked {
			r, err := q.Answer(now)
			if err != nil {
				return err
			}
			fmt.Printf("  %-44s count=%.0f  event time=%v  gate time=%v\n",
				q.Question.Label, r.Count, r.EventTime, r.SatisfiedTime)
		}
	}

	if plot {
		fmt.Println()
		for _, em := range enabled {
			fmt.Print(paradyn.TimePlot(em, 64))
		}
	}
	if showWhere {
		fmt.Println()
		fmt.Print(s.Tool.Axis.Render())
	}
	if showLevels {
		fmt.Println("\nabstraction levels (most abstract first):")
		fmt.Printf("  %-10s %5s %6s %6s %8s  %s\n", "level", "rank", "nouns", "verbs", "metrics", "")
		for _, l := range s.Levels() {
			note := ""
			if l.Virtual {
				note = "(metric library only)"
			}
			fmt.Printf("  %-10s %5d %6d %6d %8d  %s\n", l.Name, l.Rank, l.Nouns, l.Verbs, l.Metrics, note)
		}
	}
	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Render(72))
		fmt.Println()
		fmt.Print(tr.Summary())
	}
	if consult {
		fmt.Println()
		// Diagnosis replays run the program repeatedly; keep their PRINT
		// output off the report.
		diagOpts := []nvmap.Option{
			nvmap.WithNodes(nodes),
			nvmap.WithSourceFile(filepath.Base(path)),
		}
		if fuse {
			diagOpts = append(diagOpts, nvmap.WithFuse())
		}
		rep, err := nvmap.Diagnose(source, nvmap.DiagnoseConfig{
			Budget:    diag.budget,
			Threshold: diag.threshold,
		}, diagOpts...)
		if err != nil {
			return err
		}
		if diag.traceFile != "" {
			if err := os.WriteFile(diag.traceFile, rep.ChromeTrace(), 0o644); err != nil {
				return err
			}
			fmt.Printf("diagnosis trace overlay written to %s\n", diag.traceFile)
		}
		if diag.jsonOut {
			js, err := rep.JSON()
			if err != nil {
				return err
			}
			os.Stdout.Write(js)
		} else {
			fmt.Println("Performance Consultant diagnosis:")
			fmt.Print(rep.Text())
		}
	}
	return nil
}
