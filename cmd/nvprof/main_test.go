package main

import (
	"errors"
	"strings"
	"testing"

	"nvmap"
)

// goodDiag is a baseline that validates cleanly; cases mutate it.
func goodDiag() diagOptions {
	return diagOptions{budget: 64, threshold: 0, consult: true, explicit: true}
}

func TestDiagValidateRejectsContradictions(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*diagOptions)
		wantErr string // substring of the usage error
	}{
		{"zero budget", func(d *diagOptions) { d.budget = 0 }, "budget must be positive"},
		{"negative budget", func(d *diagOptions) { d.budget = -8 }, "budget must be positive"},
		{"negative threshold", func(d *diagOptions) { d.threshold = -0.1 }, "threshold must be in [0, 1)"},
		{"threshold of one", func(d *diagOptions) { d.threshold = 1 }, "threshold must be in [0, 1)"},
		{"threshold above one", func(d *diagOptions) { d.threshold = 3 }, "threshold must be in [0, 1)"},
		{"diag flags without consultant", func(d *diagOptions) { d.consult = false }, "contradicts absent -consultant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goodDiag()
			tc.mutate(&d)
			err := d.validate()
			if err == nil {
				t.Fatalf("validate accepted %+v", d)
			}
			var ue *nvmap.UsageError
			if !errors.As(err, &ue) {
				t.Fatalf("error %T is not a *nvmap.UsageError", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestDiagValidateAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*diagOptions)
	}{
		{"defaults", func(d *diagOptions) {}},
		{"threshold override", func(d *diagOptions) { d.threshold = 0.5 }},
		{"zero threshold means per-hypothesis", func(d *diagOptions) { d.threshold = 0 }},
		{"no diag flags without consultant", func(d *diagOptions) { d.consult, d.explicit = false, false }},
		{"consultant with defaults untouched", func(d *diagOptions) { d.explicit = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goodDiag()
			tc.mutate(&d)
			if err := d.validate(); err != nil {
				t.Fatalf("validate rejected %+v: %v", d, err)
			}
		})
	}
}
