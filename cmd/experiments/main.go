// Command experiments regenerates the paper's figures and the
// reproduction's ablations (the material recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments -run fig6  # run one experiment
//	experiments -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmap"
)

func main() {
	var (
		runID = flag.String("run", "", "run a single experiment by ID")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range nvmap.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *runID != "" {
		out, err := nvmap.RunExperiment(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	out, err := nvmap.RunAllExperiments()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
