package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig is a baseline that validates cleanly; cases mutate it.
func goodConfig() soakConfig {
	return soakConfig{
		sessions:   500,
		seed:       1,
		timeout:    time.Minute,
		minNodes:   1,
		maxNodes:   8,
		minWorkers: 1,
		maxWorkers: 8,
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*soakConfig)
		wantErr string // substring of the usage error
	}{
		{"zero sessions", func(c *soakConfig) { c.sessions = 0 }, "-sessions must be positive"},
		{"negative sessions", func(c *soakConfig) { c.sessions = -25 }, "-sessions must be positive"},
		{"zero timeout", func(c *soakConfig) { c.timeout = 0 }, "-timeout must be positive"},
		{"negative timeout", func(c *soakConfig) { c.timeout = -time.Second }, "-timeout must be positive"},
		{"zero min nodes", func(c *soakConfig) { c.minNodes = 0 }, "node range must be positive"},
		{"negative max nodes", func(c *soakConfig) { c.maxNodes = -4 }, "node range must be positive"},
		{"inverted node range", func(c *soakConfig) { c.minNodes, c.maxNodes = 8, 2 }, "exceeds -max-nodes"},
		{"node range above partitions", func(c *soakConfig) { c.minNodes, c.maxNodes = 16, 32 }, "largest supported partition"},
		{"node range between partitions", func(c *soakConfig) { c.minNodes, c.maxNodes = 3, 3 }, "no supported partition size"},
		{"zero min workers", func(c *soakConfig) { c.minWorkers = 0 }, "-min-workers must be positive"},
		{"inverted worker range", func(c *soakConfig) { c.minWorkers, c.maxWorkers = 4, 2 }, "exceeds -max-workers"},
		{"absurd max workers", func(c *soakConfig) { c.maxWorkers = 1 << 20 }, "unreasonable"},
		{"negative max ops", func(c *soakConfig) { c.maxOps = -1 }, "-max-ops must be non-negative"},
		{"negative max vtime", func(c *soakConfig) { c.maxVTime = -time.Microsecond }, "-max-vtime must be non-negative"},
		{"negative max backlog", func(c *soakConfig) { c.maxBacklog = -2 }, "-max-backlog must be non-negative"},
		{"no-budget vs max-ops", func(c *soakConfig) { c.noBudget = true; c.maxOps = 100 }, "contradicts"},
		{"no-budget vs max-vtime", func(c *soakConfig) { c.noBudget = true; c.maxVTime = time.Millisecond }, "contradicts"},
		{"no-budget vs max-backlog", func(c *soakConfig) { c.noBudget = true; c.maxBacklog = 4 }, "contradicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if err == nil {
				t.Fatalf("validate accepted %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateAcceptsAndDerivesNodeChoices(t *testing.T) {
	cases := []struct {
		name        string
		mutate      func(*soakConfig)
		wantChoices []int
	}{
		{"defaults", func(c *soakConfig) {}, []int{1, 2, 4, 8}},
		{"narrow node window", func(c *soakConfig) { c.minNodes, c.maxNodes = 2, 4 }, []int{2, 4}},
		{"single partition", func(c *soakConfig) { c.minNodes, c.maxNodes = 8, 8 }, []int{8}},
		{"window past the top keeps the overlap", func(c *soakConfig) { c.minNodes, c.maxNodes = 4, 32 }, []int{4, 8}},
		{"no-budget alone", func(c *soakConfig) { c.noBudget = true }, []int{1, 2, 4, 8}},
		{"pinned budget alone", func(c *soakConfig) { c.maxOps = 5000 }, []int{1, 2, 4, 8}},
		{"single worker", func(c *soakConfig) { c.minWorkers, c.maxWorkers = 1, 1 }, []int{1, 2, 4, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			if err := cfg.validate(); err != nil {
				t.Fatalf("validate rejected %+v: %v", cfg, err)
			}
			if len(cfg.nodeChoices) != len(tc.wantChoices) {
				t.Fatalf("nodeChoices %v, want %v", cfg.nodeChoices, tc.wantChoices)
			}
			for i, n := range tc.wantChoices {
				if cfg.nodeChoices[i] != n {
					t.Fatalf("nodeChoices %v, want %v", cfg.nodeChoices, tc.wantChoices)
				}
			}
		})
	}
}

// TestGeneratorHonorsWindows runs the scenario generator (not the
// sessions) across many seeds and checks every draw lands inside the
// validated windows, including the pinned-budget override.
func TestGeneratorHonorsWindows(t *testing.T) {
	cfg := goodConfig()
	cfg.minNodes, cfg.maxNodes = 2, 4
	cfg.minWorkers, cfg.maxWorkers = 3, 5
	cfg.maxOps = 7777
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 200; seed++ {
		sc := genScenario(&rng{state: seed}, &cfg)
		if sc.nodes != 2 && sc.nodes != 4 {
			t.Fatalf("seed %d: nodes %d outside [2, 4]", seed, sc.nodes)
		}
		if sc.workers < 3 || sc.workers > 5 {
			t.Fatalf("seed %d: workers %d outside [3, 5]", seed, sc.workers)
		}
		if sc.budget == nil || sc.budget.MaxOps != 7777 {
			t.Fatalf("seed %d: pinned budget not applied: %+v", seed, sc.budget)
		}
	}

	cfg = goodConfig()
	cfg.noBudget = true
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 200; seed++ {
		if sc := genScenario(&rng{state: seed}, &cfg); sc.budget != nil {
			t.Fatalf("seed %d: -no-budget scenario still has a budget: %+v", seed, sc.budget)
		}
	}
}

// TestDefaultWindowsPreserveHistoricalDraws pins that the default
// configuration reproduces the pre-flag generator byte for byte, so
// soak seeds filed in old failure reports still reproduce.
func TestDefaultWindowsPreserveHistoricalDraws(t *testing.T) {
	cfg := goodConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	legacyNodes := func(r *rng) int { return []int{1, 2, 4, 8}[r.intn(4)] }
	legacyWorkers := func(r *rng) int { return 1 + r.intn(8) }
	for seed := uint64(1); seed <= 100; seed++ {
		sc := genScenario(&rng{state: seed}, &cfg)
		// Replay the draw order: genProgram first, then nodes, workers.
		r := &rng{state: seed}
		_ = genProgram(r)
		if want := legacyNodes(r); sc.nodes != want {
			t.Fatalf("seed %d: nodes %d, legacy draw %d", seed, sc.nodes, want)
		}
		if want := legacyWorkers(r); sc.workers != want {
			t.Fatalf("seed %d: workers %d, legacy draw %d", seed, sc.workers, want)
		}
	}
}
