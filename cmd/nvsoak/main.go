// Command nvsoak is the chaos soak harness: it generates randomized CM
// Fortran programs, composes randomized fault plans (message loss,
// bounded channels, slowdowns, stalls, crashes), layers governance on
// top (budgets, deadlines, the stall watchdog), and runs hundreds of
// sessions end to end asserting the robustness contract:
//
//   - the process never dies: every panic is contained;
//   - every session ends in an answer, a partial answer, or a typed
//     *nvmap.SessionError — never a hang (a per-session wall budget
//     catches those) and never an untyped failure;
//   - cut runs carry their cut in the degradation report;
//   - wall-clock-free scenarios are byte-deterministic: the same seed
//     re-run under a different worker count yields identical metric
//     values, final clocks and report text.
//
// Usage:
//
//	nvsoak -n 500 -seed 1
//	nvsoak -n 25 -timeout 10s -v     # CI smoke
//
// Exit status 0 means every session satisfied the contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nvmap"
	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// rng is a self-contained splitmix64 stream so soak schedules are
// stable across Go releases.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) f() float64     { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func main() {
	var (
		n       = flag.Int("n", 500, "number of soak sessions")
		seed    = flag.Int64("seed", 1, "base seed (iteration i uses seed+i)")
		timeout = flag.Duration("timeout", 60*time.Second, "per-session hang budget")
		verbose = flag.Bool("v", false, "log every iteration")
	)
	flag.Parse()

	counts := map[string]int{}
	fails := 0
	for i := 0; i < *n; i++ {
		class, err := soakOne(uint64(*seed)+uint64(i), *timeout)
		counts[class]++
		if err != nil {
			fails++
			fmt.Fprintf(os.Stderr, "nvsoak: FAIL iteration %d (seed %d): %v\n", i, *seed, err)
		} else if *verbose {
			fmt.Printf("iter %4d: %s\n", i, class)
		}
	}

	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("nvsoak: %d sessions", *n)
	for _, c := range classes {
		fmt.Printf(", %s %d", c, counts[c])
	}
	fmt.Println()
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "nvsoak: %d of %d sessions violated the contract\n", fails, *n)
		os.Exit(1)
	}
}

// scenario is one randomized soak configuration.
type scenario struct {
	program  string
	nodes    int
	workers  int
	plan     *fault.Plan
	recovery *nvmap.RecoveryConfig
	budget   *nvmap.Budget
	deadline time.Duration // 0 = none (wall clock; breaks determinism)
	watchdog time.Duration // 0 = none
	metrics  []string
}

// wallClockFree reports whether the scenario's outcome is a pure
// function of its seed (no wall-clock governance), and therefore must
// be byte-identical across worker counts.
func (sc *scenario) wallClockFree() bool { return sc.deadline == 0 && sc.watchdog == 0 }

// outcome is one run's observable surface, for determinism comparison.
type outcome struct {
	class  string
	report string
	clock  vtime.Time
	values string
}

// soakOne generates and runs one scenario, re-running wall-clock-free
// ones under a second worker count for the determinism check. It
// returns the outcome class and a contract violation, if any.
func soakOne(seed uint64, hangBudget time.Duration) (string, error) {
	r := &rng{state: seed}
	sc := genScenario(r)
	first, err := runScenario(sc, sc.workers, hangBudget)
	if err != nil {
		return "violation", err
	}
	if sc.wallClockFree() {
		altWorkers := 1 + (sc.workers % 8) // different, still in 1..8
		second, err := runScenario(sc, altWorkers, hangBudget)
		if err != nil {
			return "violation", fmt.Errorf("re-run workers=%d: %w", altWorkers, err)
		}
		if first.clock != second.clock || first.values != second.values || first.report != second.report {
			return "violation", fmt.Errorf(
				"nondeterministic under workers %d vs %d:\nclock %v vs %v\nvalues %q vs %q\nreport:\n%s---\n%s",
				sc.workers, altWorkers, first.clock, second.clock, first.values, second.values, first.report, second.report)
		}
	}
	return first.class, nil
}

// runScenario executes one session under the hang budget and asserts
// the robustness contract on its outcome.
func runScenario(sc *scenario, workers int, hangBudget time.Duration) (*outcome, error) {
	type result struct {
		out *outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := runSession(sc, workers)
		ch <- result{out, err}
	}()
	select {
	case res := <-ch:
		return res.out, res.err
	case <-time.After(hangBudget):
		return nil, fmt.Errorf("session hung: no result within %v", hangBudget)
	}
}

// runSession builds and runs the session on the calling goroutine and
// classifies the outcome. Any panic escaping nvmap here is itself a
// contract violation (the library must contain them), so none is
// recovered.
func runSession(sc *scenario, workers int) (*outcome, error) {
	opts := []nvmap.Option{
		nvmap.WithNodes(sc.nodes),
		nvmap.WithWorkers(workers),
		nvmap.WithSourceFile("soak.fcm"),
	}
	if sc.plan != nil {
		opts = append(opts, nvmap.WithFaults(sc.plan))
	}
	if sc.recovery != nil {
		opts = append(opts, nvmap.WithRecovery(*sc.recovery))
	}
	if sc.budget != nil {
		opts = append(opts, nvmap.WithBudget(*sc.budget))
	}
	if sc.watchdog > 0 {
		opts = append(opts, nvmap.WithWatchdog(sc.watchdog))
	}
	s, err := nvmap.NewSession(sc.program, opts...)
	if err != nil {
		return nil, fmt.Errorf("generated program rejected: %w\n%s", err, sc.program)
	}
	ems := make(map[string]*vals, len(sc.metrics))
	for _, id := range sc.metrics {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			return nil, fmt.Errorf("enable %s: %w", id, err)
		}
		ems[id] = &vals{em: em}
	}
	ctx := context.Background()
	if sc.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.deadline)
		defer cancel()
	}
	rep, runErr := s.RunContext(ctx)
	if rep == nil {
		return nil, errors.New("nil degradation report")
	}

	out := &outcome{report: rep.String(), clock: s.Now()}
	var sb strings.Builder
	ids := append([]string(nil), sc.metrics...)
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "%s=%g;", id, ems[id].em.Value(s.Now()))
	}
	out.values = sb.String()

	switch {
	case runErr == nil:
		if rep.Zero() {
			out.class = "answer"
		} else {
			out.class = "degraded"
		}
		if rep.Cut != nil {
			return nil, fmt.Errorf("clean run reported a cut: %+v", rep.Cut)
		}
		return out, nil
	default:
		var serr *nvmap.SessionError
		if !errors.As(runErr, &serr) {
			return nil, fmt.Errorf("untyped session failure: %w", runErr)
		}
		if serr.Kind == nvmap.ErrorPanic {
			return nil, fmt.Errorf("library panicked: %v\n%s", serr, serr.Stack)
		}
		if rep.Cut == nil {
			return nil, fmt.Errorf("cut error (%v) but report has no Cut", serr)
		}
		if rep.Cut.Kind != serr.Kind {
			return nil, fmt.Errorf("report cut kind %v, error kind %v", rep.Cut.Kind, serr.Kind)
		}
		out.class = "cut:" + serr.Kind.String()
		return out, nil
	}
}

// vals pairs an enabled metric with its session for the value readout.
type vals struct {
	em interface{ Value(vtime.Time) float64 }
}

// genScenario draws one randomized composition.
func genScenario(r *rng) *scenario {
	sc := &scenario{
		program: genProgram(r),
		nodes:   []int{1, 2, 4, 8}[r.intn(4)],
		workers: 1 + r.intn(8),
		metrics: []string{"computations", "computation_time", "summations"},
	}

	plan := &fault.Plan{Seed: int64(r.next() % (1 << 31))}
	used := false
	if r.f() < 0.5 { // lossy messages
		plan.Messages = fault.MessageFaults{
			DropProb:  r.f() * 0.15,
			DupProb:   r.f() * 0.1,
			DelayProb: r.f() * 0.3,
			DelayMax:  vtime.Duration(1+r.intn(5)) * vtime.Microsecond,
		}
		used = true
	}
	if r.f() < 0.4 { // slow / stalling nodes
		nf := fault.NodeFaults{Slowdown: map[int]float64{}}
		for n := 0; n < sc.nodes; n++ {
			if r.f() < 0.3 {
				nf.Slowdown[n] = 1.0 + r.f()*2.0
			}
		}
		if r.f() < 0.5 {
			nf.StallProb = r.f() * 0.3
			nf.StallFor = vtime.Duration(1+r.intn(4)) * vtime.Microsecond
		}
		plan.Nodes = nf
		used = true
	}
	if r.f() < 0.4 { // bounded daemon channel
		plan.Channel = fault.ChannelFaults{
			Capacity: 4 + r.intn(60),
			Policy:   []fault.OverflowPolicy{fault.DropOldest, fault.DropNewest, fault.Backpressure}[r.intn(3)],
		}
		used = true
	}
	if r.f() < 0.5 { // fail-stop crashes: at most one per node (schedules
		// on one node must not overlap, and nothing may follow a
		// permanent crash — session validation rejects both)
		perm := make([]int, sc.nodes)
		for n := range perm {
			perm[n] = n
		}
		for n := range perm { // Fisher–Yates off the soak stream
			j := n + r.intn(len(perm)-n)
			perm[n], perm[j] = perm[j], perm[n]
		}
		ncrash := 1 + r.intn(3)
		if ncrash > sc.nodes {
			ncrash = sc.nodes
		}
		for c := 0; c < ncrash; c++ {
			cf := fault.CrashFault{
				Node: perm[c],
				At:   vtime.Time(r.intn(80)) * vtime.Time(vtime.Microsecond),
			}
			if r.f() < 0.7 { // transient
				cf.Restart = vtime.Duration(1+r.intn(30)) * vtime.Microsecond
			}
			plan.Crashes = append(plan.Crashes, cf)
		}
		rc := &nvmap.RecoveryConfig{
			CheckpointEvery: 20 * vtime.Microsecond,
			Timeout:         5 * vtime.Microsecond,
			Probes:          2,
		}
		if r.f() < 0.25 {
			rc = &nvmap.RecoveryConfig{Disable: true}
		}
		sc.recovery = rc
		used = true
	}
	if used {
		sc.plan = plan
	}

	if r.f() < 0.35 { // budgets
		b := nvmap.Budget{}
		switch r.intn(3) {
		case 0:
			b.MaxOps = int64(200 + r.intn(20000))
		case 1:
			b.MaxVirtualTime = vtime.Duration(20+r.intn(400)) * vtime.Microsecond
		case 2:
			b.MaxChannelBacklog = 2 + r.intn(30)
		}
		sc.budget = &b
	}
	if r.f() < 0.05 { // wall deadline (nondeterministic by nature)
		sc.deadline = time.Duration(5+r.intn(45)) * time.Millisecond
	}
	if r.f() < 0.10 { // watchdog, generous: must never fire on healthy runs
		sc.watchdog = 5 * time.Second
	}
	return sc
}

// genProgram composes a random, always-valid CM Fortran program over
// two conformable arrays and two scalars.
func genProgram(r *rng) string {
	size := []int{64, 128, 256}[r.intn(3)]
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM soak\nREAL A(%d)\nREAL B(%d)\nREAL S\nREAL T\n", size, size)
	fmt.Fprintf(&b, "FORALL (I = 1:%d) A(I) = I\n", size)
	fmt.Fprintf(&b, "FORALL (I = 1:%d) B(I) = 2 * I\n", size)

	stmts := 3 + r.intn(8)
	for i := 0; i < stmts; i++ {
		if r.f() < 0.2 { // DO loop around 1-3 simple statements
			fmt.Fprintf(&b, "DO K = 1, %d\n", 2+r.intn(6))
			for j := 0; j < 1+r.intn(3); j++ {
				b.WriteString(genStatement(r))
			}
			b.WriteString("END DO\n")
			continue
		}
		b.WriteString(genStatement(r))
	}
	b.WriteString("S = SUM(A)\nPRINT *, S\nEND\n")
	return b.String()
}

// genStatement draws one statement; every alternative is conformable
// with the fixed A/B/S/T declarations.
func genStatement(r *rng) string {
	switch r.intn(12) {
	case 0:
		return "B = A * 2.0 + B\n"
	case 1:
		return "A = A + 1.0\n"
	case 2:
		return fmt.Sprintf("WHERE (A > %d.0) B = A * %d.0\n", r.intn(100), 1+r.intn(4))
	case 3:
		return "S = SUM(B)\n"
	case 4:
		return "T = MAXVAL(A)\n"
	case 5:
		return "T = MINVAL(B)\n"
	case 6:
		return "S = DOT_PRODUCT(A, B)\n"
	case 7:
		return fmt.Sprintf("A = CSHIFT(A, %d)\n", 1+r.intn(3))
	case 8:
		return "B = EOSHIFT(B, 1, 0)\n"
	case 9:
		return "A = SORT(A)\n"
	case 10:
		return "B = SCAN(B)\n"
	default:
		return "B = B * 0.5\n"
	}
}
