// Command nvsoak is the chaos soak harness: it generates randomized CM
// Fortran programs, composes randomized fault plans (message loss,
// bounded channels, slowdowns, stalls, crashes), layers governance on
// top (budgets, deadlines, the stall watchdog), and runs hundreds of
// sessions end to end asserting the robustness contract:
//
//   - the process never dies: every panic is contained;
//   - every session ends in an answer, a partial answer, or a typed
//     *nvmap.SessionError — never a hang (a per-session wall budget
//     catches those) and never an untyped failure;
//   - cut runs carry their cut in the degradation report;
//   - wall-clock-free scenarios are byte-deterministic: the same seed
//     re-run under a different worker count yields identical metric
//     values, final clocks and report text.
//
// Usage:
//
//	nvsoak -sessions 500 -seed 1
//	nvsoak -sessions 25 -timeout 10s -v          # CI smoke
//	nvsoak -sessions 100 -min-nodes 4 -max-workers 2
//	nvsoak -sessions 100 -max-ops 5000           # pin the budget draw
//
// Flags are validated up front: zero or negative session counts, empty
// or out-of-range node/worker windows, and contradictory budget flags
// (-no-budget alongside an explicit -max-*) are usage errors (exit 2)
// rather than panics or silent misbehavior deep in a run.
//
// Exit status 0 means every session satisfied the contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nvmap"
	"nvmap/internal/fault"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

// rng is a self-contained splitmix64 stream so soak schedules are
// stable across Go releases.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) f() float64     { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// soakConfig is the validated soak configuration. nodeChoices is
// derived by validate: the supported partition sizes that fall inside
// the requested [minNodes, maxNodes] window.
type soakConfig struct {
	sessions   int
	seed       int64
	timeout    time.Duration
	verbose    bool
	minNodes   int
	maxNodes   int
	minWorkers int
	maxWorkers int

	noBudget   bool
	maxOps     int64
	maxVTime   time.Duration
	maxBacklog int

	nodeChoices []int
}

// supportedNodes are the partition sizes the generator draws from.
var supportedNodes = []int{1, 2, 4, 8}

// budgetPinned reports whether an explicit -max-* flag replaces the
// randomized budget draw.
func (c *soakConfig) budgetPinned() bool {
	return c.maxOps != 0 || c.maxVTime != 0 || c.maxBacklog != 0
}

// validate checks the configuration for the failure modes that used to
// surface as panics (r.intn(0) on an empty range) or silent
// misbehavior (0 sessions exiting green) deep in a run. It returns a
// usage error and fills nodeChoices on success.
func (c *soakConfig) validate() error {
	if c.sessions <= 0 {
		return fmt.Errorf("-sessions must be positive, got %d", c.sessions)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", c.timeout)
	}
	if c.minNodes <= 0 || c.maxNodes <= 0 {
		return fmt.Errorf("node range must be positive, got [%d, %d]", c.minNodes, c.maxNodes)
	}
	if c.minNodes > c.maxNodes {
		return fmt.Errorf("-min-nodes %d exceeds -max-nodes %d", c.minNodes, c.maxNodes)
	}
	if max := supportedNodes[len(supportedNodes)-1]; c.maxNodes > max && c.minNodes > max {
		return fmt.Errorf("node range [%d, %d] is above the largest supported partition (%d)", c.minNodes, c.maxNodes, max)
	}
	c.nodeChoices = c.nodeChoices[:0]
	for _, n := range supportedNodes {
		if n >= c.minNodes && n <= c.maxNodes {
			c.nodeChoices = append(c.nodeChoices, n)
		}
	}
	if len(c.nodeChoices) == 0 {
		return fmt.Errorf("no supported partition size (%v) inside node range [%d, %d]", supportedNodes, c.minNodes, c.maxNodes)
	}
	if c.minWorkers <= 0 {
		return fmt.Errorf("-min-workers must be positive, got %d", c.minWorkers)
	}
	if c.minWorkers > c.maxWorkers {
		return fmt.Errorf("-min-workers %d exceeds -max-workers %d", c.minWorkers, c.maxWorkers)
	}
	if c.maxWorkers > 64 {
		return fmt.Errorf("-max-workers %d is unreasonable (limit 64)", c.maxWorkers)
	}
	if c.maxOps < 0 {
		return fmt.Errorf("-max-ops must be non-negative, got %d", c.maxOps)
	}
	if c.maxVTime < 0 {
		return fmt.Errorf("-max-vtime must be non-negative, got %v", c.maxVTime)
	}
	if c.maxBacklog < 0 {
		return fmt.Errorf("-max-backlog must be non-negative, got %d", c.maxBacklog)
	}
	if c.noBudget && c.budgetPinned() {
		return fmt.Errorf("-no-budget contradicts explicit budget flags (-max-ops/-max-vtime/-max-backlog)")
	}
	return nil
}

func main() {
	var cfg soakConfig
	flag.IntVar(&cfg.sessions, "sessions", 500, "number of soak sessions")
	flag.IntVar(&cfg.sessions, "n", 500, "alias for -sessions")
	flag.Int64Var(&cfg.seed, "seed", 1, "base seed (iteration i uses seed+i)")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "per-session hang budget")
	flag.BoolVar(&cfg.verbose, "v", false, "log every iteration")
	flag.IntVar(&cfg.minNodes, "min-nodes", 1, "smallest partition the generator may draw")
	flag.IntVar(&cfg.maxNodes, "max-nodes", 8, "largest partition the generator may draw")
	flag.IntVar(&cfg.minWorkers, "min-workers", 1, "smallest worker pool the generator may draw")
	flag.IntVar(&cfg.maxWorkers, "max-workers", 8, "largest worker pool the generator may draw")
	flag.BoolVar(&cfg.noBudget, "no-budget", false, "never attach a budget governor")
	flag.Int64Var(&cfg.maxOps, "max-ops", 0, "pin every session's op budget (0 = randomized)")
	flag.DurationVar(&cfg.maxVTime, "max-vtime", 0, "pin every session's virtual-time budget (0 = randomized)")
	flag.IntVar(&cfg.maxBacklog, "max-backlog", 0, "pin every session's channel-backlog budget (0 = randomized)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "nvsoak: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "nvsoak: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	counts := map[string]int{}
	fails := 0
	for i := 0; i < cfg.sessions; i++ {
		class, err := soakOne(uint64(cfg.seed)+uint64(i), &cfg)
		counts[class]++
		if err != nil {
			fails++
			fmt.Fprintf(os.Stderr, "nvsoak: FAIL iteration %d (seed %d): %v\n", i, cfg.seed, err)
		} else if cfg.verbose {
			fmt.Printf("iter %4d: %s\n", i, class)
		}
	}

	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("nvsoak: %d sessions", cfg.sessions)
	for _, c := range classes {
		fmt.Printf(", %s %d", c, counts[c])
	}
	fmt.Println()
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "nvsoak: %d of %d sessions violated the contract\n", fails, cfg.sessions)
		os.Exit(1)
	}
}

// scenario is one randomized soak configuration.
type scenario struct {
	program  string
	nodes    int
	workers  int
	plan     *fault.Plan
	recovery *nvmap.RecoveryConfig
	budget   *nvmap.Budget
	deadline time.Duration // 0 = none (wall clock; breaks determinism)
	watchdog time.Duration // 0 = none
	metrics  []string
}

// wallClockFree reports whether the scenario's outcome is a pure
// function of its seed (no wall-clock governance), and therefore must
// be byte-identical across worker counts.
func (sc *scenario) wallClockFree() bool { return sc.deadline == 0 && sc.watchdog == 0 }

// outcome is one run's observable surface, for determinism comparison.
type outcome struct {
	class  string
	report string
	clock  vtime.Time
	values string
}

// soakOne generates and runs one scenario, re-running wall-clock-free
// ones under a second worker count for the determinism check. It
// returns the outcome class and a contract violation, if any.
func soakOne(seed uint64, cfg *soakConfig) (string, error) {
	hangBudget := cfg.timeout
	r := &rng{state: seed}
	sc := genScenario(r, cfg)
	first, err := runScenario(sc, sc.workers, hangBudget)
	if err != nil {
		return "violation", err
	}
	if sc.wallClockFree() {
		altWorkers := 1 + (sc.workers % 8) // different, still in 1..8
		second, err := runScenario(sc, altWorkers, hangBudget)
		if err != nil {
			return "violation", fmt.Errorf("re-run workers=%d: %w", altWorkers, err)
		}
		if first.clock != second.clock || first.values != second.values || first.report != second.report {
			return "violation", fmt.Errorf(
				"nondeterministic under workers %d vs %d:\nclock %v vs %v\nvalues %q vs %q\nreport:\n%s---\n%s",
				sc.workers, altWorkers, first.clock, second.clock, first.values, second.values, first.report, second.report)
		}
	}
	return first.class, nil
}

// runScenario executes one session under the hang budget and asserts
// the robustness contract on its outcome.
func runScenario(sc *scenario, workers int, hangBudget time.Duration) (*outcome, error) {
	type result struct {
		out *outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := runSession(sc, workers)
		ch <- result{out, err}
	}()
	select {
	case res := <-ch:
		return res.out, res.err
	case <-time.After(hangBudget):
		return nil, fmt.Errorf("session hung: no result within %v", hangBudget)
	}
}

// runSession builds and runs the session on the calling goroutine and
// classifies the outcome. Any panic escaping nvmap here is itself a
// contract violation (the library must contain them), so none is
// recovered.
func runSession(sc *scenario, workers int) (*outcome, error) {
	opts := []nvmap.Option{
		nvmap.WithNodes(sc.nodes),
		nvmap.WithWorkers(workers),
		nvmap.WithSourceFile("soak.fcm"),
	}
	if sc.plan != nil {
		opts = append(opts, nvmap.WithFaults(sc.plan))
	}
	if sc.recovery != nil {
		opts = append(opts, nvmap.WithRecovery(*sc.recovery))
	}
	if sc.budget != nil {
		opts = append(opts, nvmap.WithBudget(*sc.budget))
	}
	if sc.watchdog > 0 {
		opts = append(opts, nvmap.WithWatchdog(sc.watchdog))
	}
	s, err := nvmap.NewSession(sc.program, opts...)
	if err != nil {
		return nil, fmt.Errorf("generated program rejected: %w\n%s", err, sc.program)
	}
	ems := make(map[string]*vals, len(sc.metrics))
	for _, id := range sc.metrics {
		em, err := s.Tool.EnableMetric(id, paradyn.WholeProgram())
		if err != nil {
			return nil, fmt.Errorf("enable %s: %w", id, err)
		}
		ems[id] = &vals{em: em}
	}
	ctx := context.Background()
	if sc.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.deadline)
		defer cancel()
	}
	rep, runErr := s.RunContext(ctx)
	if rep == nil {
		return nil, errors.New("nil degradation report")
	}

	out := &outcome{report: rep.String(), clock: s.Now()}
	var sb strings.Builder
	ids := append([]string(nil), sc.metrics...)
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "%s=%g;", id, ems[id].em.Value(s.Now()))
	}
	out.values = sb.String()

	switch {
	case runErr == nil:
		if rep.Zero() {
			out.class = "answer"
		} else {
			out.class = "degraded"
		}
		if rep.Cut != nil {
			return nil, fmt.Errorf("clean run reported a cut: %+v", rep.Cut)
		}
		return out, nil
	default:
		var serr *nvmap.SessionError
		if !errors.As(runErr, &serr) {
			return nil, fmt.Errorf("untyped session failure: %w", runErr)
		}
		if serr.Kind == nvmap.ErrorPanic {
			return nil, fmt.Errorf("library panicked: %v\n%s", serr, serr.Stack)
		}
		if rep.Cut == nil {
			return nil, fmt.Errorf("cut error (%v) but report has no Cut", serr)
		}
		if rep.Cut.Kind != serr.Kind {
			return nil, fmt.Errorf("report cut kind %v, error kind %v", rep.Cut.Kind, serr.Kind)
		}
		out.class = "cut:" + serr.Kind.String()
		return out, nil
	}
}

// vals pairs an enabled metric with its session for the value readout.
type vals struct {
	em interface{ Value(vtime.Time) float64 }
}

// genScenario draws one randomized composition inside the validated
// node/worker windows. With the default windows the draws are
// identical to the historical generator, so seeds stay comparable
// across releases.
func genScenario(r *rng, cfg *soakConfig) *scenario {
	sc := &scenario{
		program: genProgram(r),
		nodes:   cfg.nodeChoices[r.intn(len(cfg.nodeChoices))],
		workers: cfg.minWorkers + r.intn(cfg.maxWorkers-cfg.minWorkers+1),
		metrics: []string{"computations", "computation_time", "summations"},
	}

	plan := &fault.Plan{Seed: int64(r.next() % (1 << 31))}
	used := false
	if r.f() < 0.5 { // lossy messages
		plan.Messages = fault.MessageFaults{
			DropProb:  r.f() * 0.15,
			DupProb:   r.f() * 0.1,
			DelayProb: r.f() * 0.3,
			DelayMax:  vtime.Duration(1+r.intn(5)) * vtime.Microsecond,
		}
		used = true
	}
	if r.f() < 0.4 { // slow / stalling nodes
		nf := fault.NodeFaults{Slowdown: map[int]float64{}}
		for n := 0; n < sc.nodes; n++ {
			if r.f() < 0.3 {
				nf.Slowdown[n] = 1.0 + r.f()*2.0
			}
		}
		if r.f() < 0.5 {
			nf.StallProb = r.f() * 0.3
			nf.StallFor = vtime.Duration(1+r.intn(4)) * vtime.Microsecond
		}
		plan.Nodes = nf
		used = true
	}
	if r.f() < 0.4 { // bounded daemon channel
		plan.Channel = fault.ChannelFaults{
			Capacity: 4 + r.intn(60),
			Policy:   []fault.OverflowPolicy{fault.DropOldest, fault.DropNewest, fault.Backpressure}[r.intn(3)],
		}
		used = true
	}
	if r.f() < 0.5 { // fail-stop crashes: at most one per node (schedules
		// on one node must not overlap, and nothing may follow a
		// permanent crash — session validation rejects both)
		perm := make([]int, sc.nodes)
		for n := range perm {
			perm[n] = n
		}
		for n := range perm { // Fisher–Yates off the soak stream
			j := n + r.intn(len(perm)-n)
			perm[n], perm[j] = perm[j], perm[n]
		}
		ncrash := 1 + r.intn(3)
		if ncrash > sc.nodes {
			ncrash = sc.nodes
		}
		for c := 0; c < ncrash; c++ {
			cf := fault.CrashFault{
				Node: perm[c],
				At:   vtime.Time(r.intn(80)) * vtime.Time(vtime.Microsecond),
			}
			if r.f() < 0.7 { // transient
				cf.Restart = vtime.Duration(1+r.intn(30)) * vtime.Microsecond
			}
			plan.Crashes = append(plan.Crashes, cf)
		}
		rc := &nvmap.RecoveryConfig{
			CheckpointEvery: 20 * vtime.Microsecond,
			Timeout:         5 * vtime.Microsecond,
			Probes:          2,
		}
		if r.f() < 0.25 {
			rc = &nvmap.RecoveryConfig{Disable: true}
		}
		sc.recovery = rc
		used = true
	}
	if used {
		sc.plan = plan
	}

	switch {
	case cfg.noBudget:
		// governance disabled by flag
	case cfg.budgetPinned():
		sc.budget = &nvmap.Budget{
			MaxOps:            cfg.maxOps,
			MaxVirtualTime:    vtime.Duration(cfg.maxVTime),
			MaxChannelBacklog: cfg.maxBacklog,
		}
	case r.f() < 0.35: // randomized budgets
		b := nvmap.Budget{}
		switch r.intn(3) {
		case 0:
			b.MaxOps = int64(200 + r.intn(20000))
		case 1:
			b.MaxVirtualTime = vtime.Duration(20+r.intn(400)) * vtime.Microsecond
		case 2:
			b.MaxChannelBacklog = 2 + r.intn(30)
		}
		sc.budget = &b
	}
	if r.f() < 0.05 { // wall deadline (nondeterministic by nature)
		sc.deadline = time.Duration(5+r.intn(45)) * time.Millisecond
	}
	if r.f() < 0.10 { // watchdog, generous: must never fire on healthy runs
		sc.watchdog = 5 * time.Second
	}
	return sc
}

// genProgram composes a random, always-valid CM Fortran program over
// two conformable arrays and two scalars.
func genProgram(r *rng) string {
	size := []int{64, 128, 256}[r.intn(3)]
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM soak\nREAL A(%d)\nREAL B(%d)\nREAL S\nREAL T\n", size, size)
	fmt.Fprintf(&b, "FORALL (I = 1:%d) A(I) = I\n", size)
	fmt.Fprintf(&b, "FORALL (I = 1:%d) B(I) = 2 * I\n", size)

	stmts := 3 + r.intn(8)
	for i := 0; i < stmts; i++ {
		if r.f() < 0.2 { // DO loop around 1-3 simple statements
			fmt.Fprintf(&b, "DO K = 1, %d\n", 2+r.intn(6))
			for j := 0; j < 1+r.intn(3); j++ {
				b.WriteString(genStatement(r))
			}
			b.WriteString("END DO\n")
			continue
		}
		b.WriteString(genStatement(r))
	}
	b.WriteString("S = SUM(A)\nPRINT *, S\nEND\n")
	return b.String()
}

// genStatement draws one statement; every alternative is conformable
// with the fixed A/B/S/T declarations.
func genStatement(r *rng) string {
	switch r.intn(12) {
	case 0:
		return "B = A * 2.0 + B\n"
	case 1:
		return "A = A + 1.0\n"
	case 2:
		return fmt.Sprintf("WHERE (A > %d.0) B = A * %d.0\n", r.intn(100), 1+r.intn(4))
	case 3:
		return "S = SUM(B)\n"
	case 4:
		return "T = MAXVAL(A)\n"
	case 5:
		return "T = MINVAL(B)\n"
	case 6:
		return "S = DOT_PRODUCT(A, B)\n"
	case 7:
		return fmt.Sprintf("A = CSHIFT(A, %d)\n", 1+r.intn(3))
	case 8:
		return "B = EOSHIFT(B, 1, 0)\n"
	case 9:
		return "A = SORT(A)\n"
	case 10:
		return "B = SCAN(B)\n"
	default:
		return "B = B * 0.5\n"
	}
}
