// Command pifgen is the utility of Section 6.2 of the paper: it parses CM
// Fortran compiler output files (listings) and produces PIF files that
// define the parallel statements and arrays for the performance tool and
// describe the mappings from statements to node code blocks.
//
// Usage:
//
//	pifgen [-o out.pif] listing.txt
//	pifgen -compile [-fuse] [-o out.pif] program.fcm
//	pifgen -listing [-fuse] program.fcm        # stop at the listing
//
// With no input file, standard input is read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nvmap/internal/cmf"
	"nvmap/internal/pif"
	"nvmap/internal/pifgen"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		compile  = flag.Bool("compile", false, "input is CM Fortran source: compile it first")
		listOnly = flag.Bool("listing", false, "input is CM Fortran source: emit the compiler listing and stop")
		fuse     = flag.Bool("fuse", false, "fuse adjacent elementwise statements (with -compile/-listing)")
	)
	flag.Parse()
	if err := run(*out, *compile, *listOnly, *fuse, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pifgen:", err)
		os.Exit(1)
	}
}

func run(out string, compile, listOnly, fuse bool, args []string) error {
	input, name, err := readInput(args)
	if err != nil {
		return err
	}

	var listing string
	if compile || listOnly {
		cp, err := cmf.CompileSource(input, cmf.Options{Fuse: fuse, SourceFile: filepath.Base(name)})
		if err != nil {
			return err
		}
		listing = cp.Listing()
		if listOnly {
			return write(out, listing)
		}
	} else {
		listing = input
	}

	f, err := pifgen.FromListing(strings.NewReader(listing))
	if err != nil {
		return err
	}
	var b strings.Builder
	if err := pif.Write(&b, f); err != nil {
		return err
	}
	return write(out, b.String())
}

func readInput(args []string) (content, name string, err error) {
	switch len(args) {
	case 0:
		data, err := io.ReadAll(os.Stdin)
		return string(data), "stdin.fcm", err
	case 1:
		data, err := os.ReadFile(args[0])
		return string(data), args[0], err
	default:
		return "", "", fmt.Errorf("expected at most one input file, got %d", len(args))
	}
}

func write(out, content string) error {
	if out == "" {
		_, err := io.WriteString(os.Stdout, content)
		return err
	}
	return os.WriteFile(out, []byte(content), 0o644)
}
