// Command benchdiff turns `go test -bench` output into a committed
// benchmark ledger and gates on regressions.
//
// It reads benchmark output on stdin (use -benchmem; -count>1 runs are
// aggregated by median), merges the results into a JSON ledger holding a
// "baseline" and a "current" section, and exits non-zero when any
// benchmark matching -check regresses against the baseline: more than
// -max-regress percent in ns/op, or ANY increase in allocs/op.
// Allocation counts are deterministic where wall time is noisy, so the
// allocs gate has no tolerance — a benchmark that allocates even one
// more object per op than its committed baseline fails.
//
// The baseline is sticky: it is adopted from the ledger on disk when one
// exists, and seeded from the incoming results when none does (or when
// -rebase is given). Committing the ledger therefore pins the reference
// numbers a branch is judged against.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig5|Fig6|SASShared' -benchmem -count=5 . |
//	    benchdiff -out BENCH_PR3.json -check 'SAS|Questions'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Ledger is the on-disk JSON document.
type Ledger struct {
	Note     string            `json:"note,omitempty"`
	Baseline map[string]Result `json:"baseline"`
	Current  map[string]Result `json:"current"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		out        = flag.String("out", "BENCH_PR3.json", "ledger file to read the baseline from and write results to")
		check      = flag.String("check", "", "regexp of benchmark names subject to the regression gate (empty = none)")
		maxRegress = flag.Float64("max-regress", 20, "maximum tolerated ns/op regression, percent")
		rebase     = flag.Bool("rebase", false, "overwrite the baseline with the incoming results")
		note       = flag.String("note", "", "replace the ledger's note field")
	)
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (did you pass -bench and -benchmem?)"))
	}

	ledger := &Ledger{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, ledger); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	if *rebase || len(ledger.Baseline) == 0 {
		ledger.Baseline = current
	}
	ledger.Current = current
	if *note != "" {
		ledger.Note = *note
	}

	var gate *regexp.Regexp
	if *check != "" {
		gate, err = regexp.Compile(*check)
		if err != nil {
			fatal(fmt.Errorf("-check: %w", err))
		}
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-36s %14s %14s %8s %12s %12s  %s\n",
		"benchmark", "baseline ns/op", "current ns/op", "ratio", "base allocs", "cur allocs", "gate")
	for _, name := range names {
		cur := current[name]
		base, hasBase := ledger.Baseline[name]
		checked := gate != nil && gate.MatchString(name)
		status := "-"
		ratio := "n/a"
		if hasBase && base.NsOp > 0 {
			r := cur.NsOp / base.NsOp
			ratio = fmt.Sprintf("%.2fx", r)
			if checked {
				var fails []string
				if r > 1+*maxRegress/100 {
					fails = append(fails, fmt.Sprintf(">%.0f%% ns/op regression", *maxRegress))
				}
				if cur.AllocsOp > base.AllocsOp {
					fails = append(fails, fmt.Sprintf("allocs/op %d > baseline %d", cur.AllocsOp, base.AllocsOp))
				}
				if len(fails) > 0 {
					status = "FAIL (" + strings.Join(fails, "; ") + ")"
					failed = true
				} else {
					status = "ok"
				}
			}
		} else if checked {
			status = "ok (no baseline)"
		}
		baseNs, baseAllocs := "n/a", "n/a"
		if hasBase {
			baseNs = fmt.Sprintf("%.1f", base.NsOp)
			baseAllocs = fmt.Sprintf("%d", base.AllocsOp)
		}
		fmt.Printf("%-36s %14s %14.1f %8s %12s %12d  %s\n",
			name, baseNs, cur.NsOp, ratio, baseAllocs, cur.AllocsOp, status)
	}

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(current))
	if failed {
		os.Exit(1)
	}
}

// parse aggregates benchmark output lines by name, taking the median
// across repeated -count runs (robust against one noisy run).
func parse(r *os.File) (map[string]Result, error) {
	samples := map[string][]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		var res Result
		res.NsOp = ns
		if m[4] != "" {
			res.BOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		samples[m[1]] = append(samples[m[1]], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(samples))
	for name, ss := range samples {
		out[name] = median(ss)
	}
	return out, nil
}

func median(ss []Result) Result {
	pick := func(get func(Result) float64) float64 {
		vs := make([]float64, len(ss))
		for i, s := range ss {
			vs[i] = get(s)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return Result{
		NsOp:     pick(func(r Result) float64 { return r.NsOp }),
		BOp:      int64(pick(func(r Result) float64 { return float64(r.BOp) })),
		AllocsOp: int64(pick(func(r Result) float64 { return float64(r.AllocsOp) })),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
