// Command nvprofd is the multi-tenant profiling daemon: a long-running
// HTTP service that accepts concurrent tenant sessions (compile → run →
// answer questions), shares the process-wide interner and compile memo
// across tenants, and streams answers and degradation reports as NDJSON.
//
// Endpoints:
//
//	POST /v1/sessions   run a session; body is a serve.SessionRequest,
//	                    response is an NDJSON event stream
//	GET  /v1/stats      lifecycle counters + per-tenant usage (JSON)
//	GET  /healthz       "ok", or 503 "draining" once SIGTERM arrived
//	GET  /metrics       the daemon's own obs plane, Prometheus text
//	GET  /trace         span ring as Chrome trace_event JSON
//
// Overload behavior: up to -max-concurrent sessions run at once with
// -queue-depth requests waiting; beyond that the daemon fast-rejects
// with 429 + Retry-After. Queued sessions are admitted at degraded
// sampling fidelity (the budget governor's shed ladder) before anything
// is rejected. Per-tenant ceilings come from -tenant-sessions,
// -tenant-vtime and -tenant-alloc, enforced by running each session
// under the tenant's remaining budget.
//
// On SIGTERM/SIGINT the daemon stops admitting, gives in-flight runs
// -drain-grace to finish, then cuts the stragglers at an exact
// virtual-time operation boundary — their partial reports still flush
// to the clients — and exits 0.
//
// Usage:
//
//	nvprofd -addr :9091
//	nvprofd -addr :9091 -max-concurrent 8 -queue-depth 16 \
//	        -tenant-sessions 4 -tenant-vtime 50ms -drain-grace 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nvmap/internal/serve"
	"nvmap/internal/vtime"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9091", "listen address")
		maxConc      = flag.Int("max-concurrent", 0, "run-slot pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission wait-queue bound (0 = 2x pool)")
		admitTimeout = flag.Duration("admit-timeout", 5*time.Second, "max time a request queues for a slot")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-run wall deadline")
		drainGrace   = flag.Duration("drain-grace", 10*time.Second, "SIGTERM grace before in-flight runs are cut")
		maxNodes     = flag.Int("max-nodes", 64, "largest partition a request may ask for")
		maxWorkers   = flag.Int("max-workers", 16, "largest worker pool a request may ask for")
		tenantSess   = flag.Int("tenant-sessions", 0, "default per-tenant concurrent-session cap (0 = unlimited)")
		tenantVTime  = flag.Duration("tenant-vtime", 0, "default per-tenant cumulative virtual-time quota (0 = unlimited)")
		tenantAlloc  = flag.Int64("tenant-alloc", 0, "default per-tenant cumulative allocation quota, bytes (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "nvprofd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Config{
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		AdmitTimeout:    *admitTimeout,
		DefaultDeadline: *deadline,
		MaxNodes:        *maxNodes,
		MaxWorkers:      *maxWorkers,
		DefaultQuota: serve.TenantQuota{
			MaxSessions:    *tenantSess,
			MaxVirtualTime: vtime.Duration(*tenantVTime),
			MaxAllocBytes:  *tenantAlloc,
		},
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("nvprofd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("nvprofd: %v: draining (grace %v)", sig, *drainGrace)
	case err := <-errc:
		log.Fatalf("nvprofd: serve: %v", err)
	}

	srv.Drain(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("nvprofd: shutdown: %v", err)
	}
	c := srv.Counters()
	log.Printf("nvprofd: drained; admitted %d, completed %d, cut %d, shed %d, rejected busy %d / quota %d / draining %d, panics %d",
		c.Admitted, c.Completed, c.Cut, c.Shed, c.RejectedBusy, c.RejectedQuota, c.RejectedDraining, c.Panics)
}
