// Command nvload is the load generator for nvprofd: it replays mixed
// scenarios (plain/faulty/crashy/parallel) against the daemon at high
// concurrency with a client-side retry policy — per-request timeouts,
// bounded retries, jittered backoff honoring Retry-After — and emits a
// throughput ledger: sessions/sec, p95 first-answer latency, and
// shed/reject/cut counts.
//
// With -addr empty (the default) nvload self-hosts: it starts the serve
// daemon in-process on a loopback port, drives the load over real HTTP,
// then drains it — which is also what the CI smoke job runs under
// -race. With -addr set it targets an external daemon and skips the
// drain phase.
//
// Usage:
//
//	nvload -smoke                      # CI: 50 mixed sessions + drain contract
//	nvload -sessions 400 -concurrency 32 -bench   # benchdiff-format ledger lines
//	nvload -addr host:9091 -sessions 1000
//
// -bench output is `go test -bench` shaped so it pipes straight into
// the existing benchdiff tooling:
//
//	nvload -sessions 400 -bench | benchdiff -out BENCH_PR7.json -check LoadSession
//
// Exit status 0 means every session satisfied the client contract:
// each ended in a done event, a cut-with-report, or a typed rejection —
// never a transport error, a malformed stream, or a daemon death.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nvmap/internal/serve"
)

// rng is a splitmix64 stream for jitter and mix shuffling (stable
// across Go releases, no math/rand).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func main() {
	var (
		addr        = flag.String("addr", "", "daemon address (empty = self-host an in-process daemon)")
		sessions    = flag.Int("sessions", 200, "number of sessions to drive")
		concurrency = flag.Int("concurrency", 16, "concurrent client goroutines")
		seed        = flag.Int64("seed", 1, "base seed (session i uses seed+i)")
		mix         = flag.String("mix", strings.Join(serve.ScenarioKinds, ","), "comma-separated scenario mix")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request wall timeout")
		retries     = flag.Int("retries", 4, "max retries after 429/503")
		maxBackoff  = flag.Duration("max-backoff", 2*time.Second, "backoff ceiling between retries")
		deadlineMS  = flag.Int64("deadline-ms", 20000, "per-session run deadline sent to the daemon")
		smoke       = flag.Bool("smoke", false, "CI smoke: 50 mixed sessions on a tiny pool, then drain and verify the cut contract")
		benchOut    = flag.Bool("bench", false, "emit the ledger as go-test benchmark lines for benchdiff")
	)
	flag.Parse()
	if *sessions <= 0 || *concurrency <= 0 || *retries < 0 || *timeout <= 0 {
		fmt.Fprintln(os.Stderr, "nvload: -sessions, -concurrency and -timeout must be positive; -retries non-negative")
		flag.Usage()
		os.Exit(2)
	}
	kinds := strings.Split(*mix, ",")
	for _, k := range kinds {
		if !serve.ValidScenario(k) {
			fmt.Fprintf(os.Stderr, "nvload: unknown scenario %q in -mix (valid: %v)\n", k, serve.ScenarioKinds)
			os.Exit(2)
		}
	}
	if *smoke {
		// Fixed 50-session CI shape. The generous timeout keeps slow
		// hosts (and -race builds) from tripping the client-side clock:
		// smoke verifies the overflow ladder, which rejects on queue
		// depth, never on timers.
		*sessions = 50
		*timeout = 5 * time.Minute
	}

	// Self-host when no target was given: a deliberately small pool so
	// load actually exercises the queue, the shed ladder and fast
	// rejection, over real loopback HTTP.
	var daemon *serve.Server
	base := *addr
	var shutdown func()
	if base == "" {
		daemon = serve.NewServer(serve.Config{
			MaxConcurrent: 2,
			QueueDepth:    4,
			AdmitTimeout:  *timeout,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen: %v", err)
		}
		hs := &http.Server{Handler: daemon.Handler()}
		go func() { _ = hs.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		shutdown = func() { _ = hs.Close() }
	} else if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	cl := &client{
		base:       base,
		http:       &http.Client{Timeout: *timeout},
		retries:    *retries,
		maxBackoff: *maxBackoff,
	}

	var (
		tally   tally
		wg      sync.WaitGroup
		nextIdx atomic.Int64
	)
	started := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			r := &rng{state: uint64(*seed)*0x9E3779B9 + uint64(worker)}
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= *sessions {
					return
				}
				req := serve.SessionRequest{
					Tenant:     fmt.Sprintf("load-%d", i%4),
					Scenario:   kinds[i%len(kinds)],
					Seed:       *seed + int64(i),
					Nodes:      []int{2, 4, 8}[i%3],
					Metrics:    serve.ScenarioMetrics,
					DeadlineMS: *deadlineMS,
				}
				tally.add(cl.runSession(req, r))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)

	violations := tally.violations.Load()
	if *smoke && daemon != nil {
		if err := overloadBurst(cl); err != nil {
			fmt.Fprintf(os.Stderr, "nvload: overload burst: %v\n", err)
			violations++
		}
		if err := drainContract(daemon, cl); err != nil {
			fmt.Fprintf(os.Stderr, "nvload: drain contract: %v\n", err)
			violations++
		}
	} else if daemon != nil {
		daemon.Drain(5 * time.Second)
	}
	if shutdown != nil {
		shutdown()
	}

	tally.print(os.Stdout, elapsed, *benchOut)
	if daemon != nil {
		c := daemon.Counters()
		fmt.Printf("nvload: daemon counters: admitted %d, completed %d, cut %d, shed %d, rejected busy %d / quota %d / draining %d, panics %d\n",
			c.Admitted, c.Completed, c.Cut, c.Shed, c.RejectedBusy, c.RejectedQuota, c.RejectedDraining, c.Panics)
		if c.Panics != 0 {
			fmt.Fprintf(os.Stderr, "nvload: daemon contained %d panics\n", c.Panics)
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "nvload: %d sessions violated the client contract\n", violations)
		os.Exit(1)
	}
}

// outcome classifies one driven session.
type outcome struct {
	class       string // "done", "cut", "rejected", "violation"
	shed        bool
	retries     int
	firstAnswer time.Duration // request start to first answer event; 0 if none
	err         error
}

// tally aggregates outcomes across client goroutines.
type tally struct {
	mu          sync.Mutex
	counts      map[string]int
	shed        int
	retries     int
	latencies   []time.Duration
	violations  atomic.Int64
	firstErrors []string
}

func (t *tally) add(o outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counts == nil {
		t.counts = map[string]int{}
	}
	t.counts[o.class]++
	if o.shed {
		t.shed++
	}
	t.retries += o.retries
	if o.firstAnswer > 0 {
		t.latencies = append(t.latencies, o.firstAnswer)
	}
	if o.class == "violation" {
		t.violations.Add(1)
		if len(t.firstErrors) < 5 {
			t.firstErrors = append(t.firstErrors, o.err.Error())
		}
	}
}

func (t *tally) print(w *os.File, elapsed time.Duration, bench bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, n := range t.counts {
		total += n
	}
	p95 := percentile(t.latencies, 95)
	classes := make([]string, 0, len(t.counts))
	for c := range t.counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "nvload: %d sessions in %v (%.1f/s)", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	for _, c := range classes {
		fmt.Fprintf(w, ", %s %d", c, t.counts[c])
	}
	fmt.Fprintf(w, "; shed %d, retries %d, p95 first-answer %v\n", t.shed, t.retries, p95.Round(time.Microsecond))
	for _, e := range t.firstErrors {
		fmt.Fprintf(w, "nvload: violation: %s\n", e)
	}
	if bench {
		// benchdiff-shaped ledger lines. LoadSession is wall time per
		// answered session (the throughput headline, inverted);
		// LoadAnswerP95 is the p95 first-answer latency; the *Count
		// lines record the shed/reject/cut mix for the committed ledger
		// (recorded, not gated — counts are workload-shaped, not
		// performance-shaped).
		answered := t.counts["done"] + t.counts["cut"]
		if answered > 0 {
			fmt.Fprintf(w, "BenchmarkLoadSession\t%d\t%d ns/op\n", answered, elapsed.Nanoseconds()/int64(answered))
		}
		if p95 > 0 {
			fmt.Fprintf(w, "BenchmarkLoadAnswerP95\t1\t%d ns/op\n", p95.Nanoseconds())
		}
		fmt.Fprintf(w, "BenchmarkLoadShedCount\t1\t%d ns/op\n", t.shed)
		fmt.Fprintf(w, "BenchmarkLoadRejectCount\t1\t%d ns/op\n", t.counts["rejected"])
		fmt.Fprintf(w, "BenchmarkLoadRetryCount\t1\t%d ns/op\n", t.retries)
		fmt.Fprintf(w, "BenchmarkLoadCutCount\t1\t%d ns/op\n", t.counts["cut"])
	}
}

func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*p + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// client drives sessions with retry/timeout/jittered backoff.
type client struct {
	base       string
	http       *http.Client
	retries    int
	maxBackoff time.Duration
}

// runSession POSTs one session, retrying typed rejections with backoff.
func (c *client) runSession(req serve.SessionRequest, r *rng) outcome {
	body, err := json.Marshal(req)
	if err != nil {
		return outcome{class: "violation", err: err}
	}
	var o outcome
	for attempt := 0; ; attempt++ {
		start := time.Now()
		resp, err := c.http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			o.class, o.err = "violation", fmt.Errorf("transport: %w", err)
			return o
		}
		switch resp.StatusCode {
		case http.StatusOK:
			cls, shed, first, err := c.consumeStream(resp, start)
			resp.Body.Close()
			if err != nil {
				o.class, o.err = "violation", err
				return o
			}
			o.class, o.shed, o.firstAnswer = cls, shed, first
			return o
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retryAfter := parseRetryAfter(resp)
			drain(resp)
			if attempt >= c.retries {
				o.class = "rejected"
				return o
			}
			o.retries++
			c.backoff(attempt, retryAfter, r)
		default:
			msg, _ := streamError(resp)
			drain(resp)
			o.class = "violation"
			o.err = fmt.Errorf("status %d: %s", resp.StatusCode, msg)
			return o
		}
	}
}

// consumeStream reads the NDJSON events of a 200 response and
// classifies the session.
func (c *client) consumeStream(resp *http.Response, start time.Time) (class string, shed bool, firstAnswer time.Duration, err error) {
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return "", false, 0, fmt.Errorf("stream Content-Type %q", ct)
	}
	var (
		sawAdmitted, sawReport, sawDone bool
		cut                             bool
		lastErr                         string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return "", false, 0, fmt.Errorf("bad event line %q: %w", line, err)
		}
		switch ev.Event {
		case "admitted":
			sawAdmitted = true
			shed = ev.Admitted != nil && ev.Admitted.ShedLevel > 0
		case "answer", "question":
			if firstAnswer == 0 {
				firstAnswer = time.Since(start)
			}
		case "report":
			sawReport = true
			cut = ev.Report != nil && ev.Report.Cut != nil
		case "done":
			sawDone = true
		case "error":
			if ev.Error != nil {
				lastErr = ev.Error.Kind + ": " + ev.Error.Message
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", false, 0, fmt.Errorf("stream read: %w", err)
	}
	switch {
	case !sawAdmitted:
		return "", false, 0, fmt.Errorf("200 stream without admitted event")
	case sawDone:
		return "done", shed, firstAnswer, nil
	case cut && sawReport:
		// Cut runs must still have flushed their report; lastErr names
		// the typed cause (deadline, budget, cancelled).
		return "cut", shed, firstAnswer, nil
	default:
		return "", false, 0, fmt.Errorf("stream ended without done or cut report (last error %q)", lastErr)
	}
}

// backoff sleeps for the jittered, Retry-After-respecting delay.
func (c *client) backoff(attempt, retryAfterSec int, r *rng) {
	d := time.Duration(1<<uint(attempt)) * 50 * time.Millisecond
	if ra := time.Duration(retryAfterSec) * time.Second; ra > d {
		d = ra
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	// Full jitter: uniform in [d/2, d).
	half := d / 2
	d = half + time.Duration(r.intn(int(half)+1))
	time.Sleep(d)
}

func parseRetryAfter(resp *http.Response) int {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return 0
}

// streamError extracts the error message of a rejection body.
func streamError(resp *http.Response) (string, error) {
	var ev serve.Event
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		return "", err
	}
	if ev.Error != nil {
		return ev.Error.Message, nil
	}
	return "", nil
}

func drain(resp *http.Response) {
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
	}
	resp.Body.Close()
}

// heavySource runs for hundreds of host milliseconds — long enough that
// a synchronized burst must overflow the smoke daemon's tiny pool, and
// that a drain reliably lands mid-run.
const heavySource = `PROGRAM heavy
REAL A(2048)
REAL B(2048)
REAL S
FORALL (I = 1:2048) A(I) = I
FORALL (I = 1:2048) B(I) = 2 * I
DO K = 1, 5000
B = A * 2.0 + B
S = SUM(B)
A = CSHIFT(A, 1)
END DO
S = SUM(A)
END
`

// overloadBurst fires simultaneous heavy sessions at the smoke daemon
// (pool 2, queue 4) with retries disabled, proving the shed-then-reject
// ladder: queued admissions run at degraded fidelity, overflow gets an
// immediate 429 + Retry-After, and nothing crashes or hangs.
func overloadBurst(cl *client) error {
	burst := &client{base: cl.base, http: cl.http, retries: 0, maxBackoff: cl.maxBackoff}
	const clients = 10
	outcomes := make(chan outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &rng{state: uint64(time.Now().UnixNano())}
			outcomes <- burst.runSession(serve.SessionRequest{
				Source: heavySource, Nodes: 4, DeadlineMS: 60000,
			}, r)
		}()
	}
	wg.Wait()
	close(outcomes)
	var done, shed, rejected int
	for o := range outcomes {
		switch o.class {
		case "done":
			done++
			if o.shed {
				shed++
			}
		case "rejected":
			rejected++
		default:
			return fmt.Errorf("burst session %s: %v", o.class, o.err)
		}
	}
	// 10 simultaneous multi-hundred-ms runs against pool 2 + queue 4:
	// at least 4 must fast-reject, and every queued admission must have
	// been priced onto the shed ladder.
	if rejected < 1 {
		return fmt.Errorf("no fast rejection under 10x overload (done %d, shed %d)", done, shed)
	}
	if shed < 1 && done > 2 {
		return fmt.Errorf("queued admissions were never shed (done %d, rejected %d)", done, rejected)
	}
	fmt.Printf("nvload: overload burst verified: %d completed (%d shed), %d fast-rejected with Retry-After\n",
		done, shed, rejected)
	return nil
}

// drainContract is the smoke mode's final act: with the daemon still
// up, start a long-running session, drain mid-flight, and verify the
// run was cut at an exact virtual-time boundary with its report
// flushed, new admissions get 503 + Retry-After, and drain left
// nothing in flight.
func drainContract(daemon *serve.Server, cl *client) error {
	req := serve.SessionRequest{Source: heavySource, Nodes: 8, Metrics: []string{"computations"}, DeadlineMS: 60000}
	body, _ := json.Marshal(req)
	before := daemon.Counters().Admitted
	type res struct {
		class string
		err   error
	}
	resc := make(chan res, 1)
	go func() {
		start := time.Now()
		resp, err := cl.http.Post(cl.base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- res{err: err}
			return
		}
		defer resp.Body.Close()
		cls, _, _, err := cl.consumeStream(resp, start)
		resc <- res{class: cls, err: err}
	}()
	// Let the run get admitted and in flight, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for daemon.Counters().Admitted == before {
		if time.Now().After(deadline) {
			return fmt.Errorf("drain probe was never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	// The probe is admitted; give it a moment to enter RunContext so the
	// cut lands mid-run rather than pre-compile.
	time.Sleep(50 * time.Millisecond)
	daemon.Drain(20 * time.Millisecond)

	r := <-resc
	if r.err != nil {
		return fmt.Errorf("in-flight run during drain: %w", r.err)
	}
	if r.class != "cut" {
		return fmt.Errorf("in-flight run classified %q, want cut-with-report", r.class)
	}
	// Post-drain admissions are politely refused.
	resp, err := cl.http.Post(cl.base+"/v1/sessions", "application/json",
		bytes.NewReader(mustJSON(serve.SessionRequest{Scenario: serve.ScenarioPlain})))
	if err != nil {
		return fmt.Errorf("post-drain POST: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("post-drain admit: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	fmt.Println("nvload: drain contract verified: in-flight run cut with report flushed, post-drain admissions 503")
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nvload: "+format+"\n", args...)
	os.Exit(1)
}
