package nvmap

import (
	"strings"
	"testing"

	"nvmap/internal/machine"
	"nvmap/internal/paradyn"
	"nvmap/internal/vtime"
)

const sessionProgram = `PROGRAM demo
REAL A(128)
REAL S
FORALL (I = 1:128) A(I) = I
A = CSHIFT(A, 1)
S = SUM(A)
PRINT *, S
END
`

func TestSessionEndToEnd(t *testing.T) {
	var out strings.Builder
	s, err := NewSession(sessionProgram, WithNodes(4), WithSourceFile("demo.fcm"), WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	em, err := s.Tool.EnableMetric("summations", paradyn.WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := em.Value(s.Now()); got != 1 {
		t.Fatalf("summations = %g", got)
	}
	if !strings.Contains(out.String(), "8256") {
		t.Fatalf("PRINT output = %q, want the sum 8256", out.String())
	}
	if s.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if v, ok := s.Executor.Scalar("S"); !ok || v != 8256 {
		t.Fatalf("S = %g", v)
	}
}

func TestSessionDefaults(t *testing.T) {
	s, err := NewSession(sessionProgram)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.Nodes() != 8 {
		t.Fatalf("default nodes = %d", s.Machine.Nodes())
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCustomMachine(t *testing.T) {
	cfg := machine.DefaultConfig(0) // Nodes overridden by Config.Nodes
	cfg.MessageLatency = 100 * vtime.Microsecond
	s, err := NewSession(sessionProgram, WithNodes(2), WithMachine(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.Config().MessageLatency != 100*vtime.Microsecond {
		t.Fatal("machine override ignored")
	}
	fast, err := NewSession(sessionProgram, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Elapsed() <= fast.Elapsed() {
		t.Fatalf("slow network (%v) should be slower than default (%v)", s.Elapsed(), fast.Elapsed())
	}
}

func TestSessionCompileErrorSurfaces(t *testing.T) {
	if _, err := NewSession("PROGRAM bad\nX = 1\nEND\n"); err == nil {
		t.Fatal("compile error swallowed")
	}
}

func TestSessionListingAndPIF(t *testing.T) {
	s, err := NewSession(sessionProgram, WithNodes(2), WithSourceFile("demo.fcm"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Listing(), "source: demo.fcm") {
		t.Fatal("listing missing source")
	}
	pifText, err := s.PIFText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NOUN", "VERB", "MAPPING", "CPU Utilization"} {
		if !strings.Contains(pifText, want) {
			t.Fatalf("PIF text missing %q", want)
		}
	}
}

func TestSessionNoPerturbation(t *testing.T) {
	s, err := NewSession(sessionProgram, WithNodes(2), WithNoPerturbation())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tool.EnableMetric("computations", paradyn.WholeProgram()); err != nil {
		t.Fatal(err)
	}
	base, err := NewSession(sessionProgram, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}
	// With perturbation disconnected, the instrumented run matches the
	// uninstrumented baseline exactly.
	if s.Elapsed() != base.Elapsed() {
		t.Fatalf("NoPerturbation run (%v) differs from baseline (%v)", s.Elapsed(), base.Elapsed())
	}
}

func TestRunWithMetrics(t *testing.T) {
	vals, err := RunWithMetrics(sessionProgram, Config{Nodes: 4},
		"summations", "rotations", "point_to_point_ops")
	if err != nil {
		t.Fatal(err)
	}
	if vals["summations"] != 1 || vals["rotations"] != 1 {
		t.Fatalf("vals = %v", vals)
	}
	if vals["point_to_point_ops"] == 0 {
		t.Fatal("no sends measured")
	}
	if _, err := RunWithMetrics(sessionProgram, Config{}, "ghost"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestMetricRows(t *testing.T) {
	s, err := NewSession(sessionProgram, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	em, err := s.Tool.EnableMetric("summations", paradyn.WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rows := MetricRows([]*paradyn.EnabledMetric{em}, s.Now())
	if len(rows) != 1 || rows[0].Metric != "Summations" || rows[0].Value != 1 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() vtime.Time {
		s, err := NewSession(sessionProgram, WithNodes(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tool.EnableMetric("computation_time", paradyn.WholeProgram()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if run() != run() {
		t.Fatal("sessions are not deterministic")
	}
}

func TestSessionTrace(t *testing.T) {
	s, err := NewSession(sessionProgram, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	tr := s.EnableTrace()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	out := tr.Render(60)
	for n := 0; n < 4; n++ {
		if !strings.Contains(out, "node"+string(rune('0'+n))) {
			t.Fatalf("timeline missing node %d:\n%s", n, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("timeline shows no compute:\n%s", out)
	}
	if !strings.Contains(tr.Summary(), "idle") {
		t.Fatal("summary missing idle column")
	}
}
