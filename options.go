package nvmap

import (
	"io"
	"time"

	"nvmap/internal/dyninst"
	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/vtime"
)

// Option configures a Session under construction. Options are applied in
// order to a zero Config, so later options override earlier ones; the
// defaults (8 nodes, default cost models, no faults) are whatever a zero
// Config means. Config remains the full-struct form — WithConfig adopts
// one wholesale, which is also the migration path for existing callers:
//
//	s, err := nvmap.NewSession(source, nvmap.WithNodes(4), nvmap.WithFuse())
//	s, err := nvmap.NewSession(source, nvmap.WithConfig(legacyCfg))
type Option func(*Config)

// WithConfig replaces the whole configuration with cfg. Options after it
// modify cfg; options before it are discarded.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithNodes sets the partition size. n must be positive: WithNodes(0)
// is a *UsageError from NewSession, not a request for the default.
func WithNodes(n int) Option {
	return func(c *Config) { c.Nodes = n; c.nodesExplicit = true }
}

// WithMachine overrides the machine cost model. The node count still
// comes from WithNodes (or its default), and a topology given by
// WithTopology overrides any carried inside mc.
func WithMachine(mc machine.Config) Option {
	return func(c *Config) { c.Machine = &mc }
}

// WithTopology gives the machine a hardware topology — a grid or torus
// of hardware nodes, optionally with sockets and cores — registered as
// the session's bottom abstraction levels and charged per hop on every
// message. Options apply in order: a later WithTopology overrides an
// earlier one (and the Topology field of an earlier WithConfig or
// WithMachine), while WithConfig placed after it discards it. See
// Config.Topology.
func WithTopology(t machine.Topology) Option {
	return func(c *Config) { c.Topology = &t }
}

// WithPlacement assigns logical node i to topology leaf leaves[i],
// overriding the identity default. The placement is emitted as ordinary
// PIF mapping records, so the where axis and the SAS see it as mapping
// information. Requires a topology (from WithTopology, WithConfig or
// WithMachine); ordering follows the same rule as WithTopology: later
// options win, a later WithConfig discards it. See Config.Placement.
func WithPlacement(leaves []int) Option {
	return func(c *Config) { c.Placement = leaves }
}

// WithWorkers bounds the host worker pool for the whole measurement
// stack — parallel node regions, concurrent metric sampling, and SAS
// registry fan-outs. n = 1 runs the session entirely on the caller
// goroutine; 0 (the default) selects GOMAXPROCS. Results are
// byte-identical under any setting: the pool trades host threads for
// wall-clock, never determinism. See Config.Workers.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithFuse enables the compiler's fusion of adjacent elementwise
// statements (producing one-to-many mappings).
func WithFuse() Option {
	return func(c *Config) { c.Fuse = true }
}

// WithSourceFile names the program in listings and descriptions.
func WithSourceFile(name string) Option {
	return func(c *Config) { c.SourceFile = name }
}

// WithOutput directs PRINT output to w.
func WithOutput(w io.Writer) Option {
	return func(c *Config) { c.Output = w }
}

// WithInstCosts overrides the instrumentation perturbation model.
func WithInstCosts(cm dyninst.CostModel) Option {
	return func(c *Config) { c.InstCosts = &cm }
}

// WithSampleEvery overrides the tool's histogram sampling interval.
func WithSampleEvery(d vtime.Duration) Option {
	return func(c *Config) { c.SampleEvery = d }
}

// WithNoPerturbation disconnects instrumentation overhead from the node
// clocks (for experiments isolating application cost).
func WithNoPerturbation() Option {
	return func(c *Config) { c.NoPerturbation = true }
}

// WithFaults injects a deterministic fault plan into the run. See
// Config.Faults.
func WithFaults(p *fault.Plan) Option {
	return func(c *Config) { c.Faults = p }
}

// WithRecovery tunes the crash-recovery machinery. It takes effect only
// when the fault plan schedules crashes.
func WithRecovery(rc RecoveryConfig) Option {
	return func(c *Config) { c.Recovery = rc }
}

// WithObservability enables the self-observability plane with default
// settings: pipeline-stage span tracing, the metrics registry, the
// exporters, and the perturbation report on Run. See
// Session.Observability and Session.PerturbationReport.
func WithObservability() Option {
	return func(c *Config) { c.Observability = &ObservabilityConfig{} }
}

// WithObservabilityConfig enables the self-observability plane with
// explicit tuning.
func WithObservabilityConfig(oc ObservabilityConfig) Option {
	return func(c *Config) { c.Observability = &oc }
}

// WithBudget enforces resource ceilings on the run — virtual time,
// operation count, daemon-channel backlog, SAS active-set size and
// allocation estimate. Sheddable ceilings (the channel backlog) degrade
// measurement fidelity first — the tool doubles its sampling interval
// and batches channel drains harder, up to three times — before the run
// is cut with a typed over-budget *SessionError. Budget cut points are
// deterministic across worker counts. See Config.Budget.
func WithBudget(b Budget) Option {
	return func(c *Config) { c.Budget = &b }
}

// WithWatchdog arms the stall watchdog: a run that crosses no machine
// operation boundary for timeout of wall clock, or whose virtual clock
// stays frozen for 4x timeout while operations keep flowing, aborts
// with a typed stall *SessionError naming the last boundary crossed.
// See Config.StallTimeout.
func WithWatchdog(timeout time.Duration) Option {
	return func(c *Config) { c.StallTimeout = timeout }
}
