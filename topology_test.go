package nvmap

import (
	"errors"
	"strings"
	"testing"

	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

const topoTestProgram = `PROGRAM t
REAL A(64)
REAL S
A = 1.0
S = SUM(A)
END
`

func ringTopo(n int) machine.Topology {
	return machine.Topology{GridX: n, GridY: 1, Torus: true, LinkHop: 1 * vtime.Microsecond}
}

func TestNewSessionUsageErrors(t *testing.T) {
	cases := []struct {
		name   string
		opts   []Option
		option string // expected UsageError.Option, "" = no error
	}{
		{"zero nodes explicit", []Option{WithNodes(0)}, "WithNodes"},
		{"negative nodes", []Option{WithNodes(-3)}, "WithNodes"},
		{"unset nodes default", nil, ""},
		{"config zero nodes defaults", []Option{WithConfig(Config{})}, ""},
		{"negative workers", []Option{WithWorkers(-1)}, "WithWorkers"},
		{"invalid topology", []Option{WithTopology(machine.Topology{GridX: 0, GridY: 1})}, "WithTopology"},
		{"too few leaves", []Option{WithNodes(8), WithTopology(machine.Topology{GridX: 2, GridY: 2})}, "WithTopology"},
		{"placement without topology", []Option{WithNodes(4), WithPlacement([]int{0, 1, 2, 3})}, "WithPlacement"},
		{"placement wrong length", []Option{WithNodes(4), WithTopology(ringTopo(4)), WithPlacement([]int{0, 1})}, "WithPlacement"},
		{"placement out of range", []Option{WithNodes(4), WithTopology(ringTopo(4)), WithPlacement([]int{0, 1, 2, 4})}, "WithPlacement"},
		{"placement duplicate", []Option{WithNodes(4), WithTopology(ringTopo(4)), WithPlacement([]int{0, 1, 1, 2})}, "WithPlacement"},
		{"valid topology", []Option{WithNodes(4), WithTopology(ringTopo(4))}, ""},
		{"valid placement", []Option{WithNodes(4), WithTopology(ringTopo(4)), WithPlacement([]int{3, 2, 1, 0})}, ""},
	}
	for _, c := range cases {
		_, err := NewSession(topoTestProgram, c.opts...)
		if c.option == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var ue *UsageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: err = %v, want *UsageError", c.name, err)
			continue
		}
		if ue.Option != c.option {
			t.Errorf("%s: UsageError.Option = %q, want %q", c.name, ue.Option, c.option)
		}
	}
}

func TestOptionOrdering(t *testing.T) {
	topo4 := ringTopo(4)
	topo8 := ringTopo(8)

	// WithConfig discards options before it.
	s, err := NewSession(topoTestProgram, WithTopology(topo4), WithNodes(4), WithConfig(Config{Nodes: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.Topology() != nil {
		t.Error("WithConfig after WithTopology should discard the topology")
	}
	if s.Machine.Nodes() != 2 {
		t.Errorf("nodes = %d, want 2 from WithConfig", s.Machine.Nodes())
	}

	// A later WithTopology overrides both an earlier one and the
	// Topology inside an earlier WithConfig.
	s, err = NewSession(topoTestProgram, WithConfig(Config{Nodes: 4, Topology: &topo4}), WithTopology(topo8))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Machine.Topology(); got == nil || got.GridX != 8 {
		t.Errorf("topology = %+v, want the later 8-ring", got)
	}

	// WithMachine and WithTopology compose: cost model from the machine
	// config, topology from the option.
	mc := machine.DefaultConfig(4)
	mc.MessageLatency = 99 * vtime.Microsecond
	s, err = NewSession(topoTestProgram, WithNodes(4), WithMachine(mc), WithTopology(topo4))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Machine.Config().MessageLatency; got != 99*vtime.Microsecond {
		t.Errorf("MessageLatency = %v, want the WithMachine value", got)
	}
	if got := s.Machine.Topology(); got == nil || got.GridX != 4 {
		t.Errorf("topology = %+v, want the 4-ring from WithTopology", got)
	}

	// A topology carried inside WithMachine survives when no
	// WithTopology overrides it.
	mc2 := machine.DefaultConfig(4)
	mc2.Topology = &topo4
	s, err = NewSession(topoTestProgram, WithNodes(4), WithMachine(mc2))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Machine.Topology(); got == nil || got.GridX != 4 {
		t.Errorf("topology = %+v, want the WithMachine topology", got)
	}
}

// TestZeroCostTopologyMatchesFlat pins the tentpole's compatibility
// guarantee: a topology with zero hop costs reproduces the flat
// machine's traces and metric values byte-for-byte — the hardware
// levels add mapping information without perturbing the cost model.
func TestZeroCostTopologyMatchesFlat(t *testing.T) {
	run := func(opts ...Option) (string, map[string]float64) {
		opts = append([]Option{WithNodes(4), WithSourceFile("t.fcm")}, opts...)
		s, err := NewSession(topoTestProgram, opts...)
		if err != nil {
			t.Fatal(err)
		}
		tr := s.EnableTrace()
		vals, _, err := s.RunMetrics("summation_time", "node_activations", "idle_time")
		if err != nil {
			t.Fatal(err)
		}
		return tr.Render(80) + "\n" + tr.Summary(), vals
	}
	flatTrace, flatVals := run()
	topoTrace, topoVals := run(WithTopology(machine.Topology{GridX: 4, GridY: 1, Torus: true}))
	if flatTrace != topoTrace {
		t.Error("zero-cost topology changes the execution trace")
	}
	for id, want := range flatVals {
		if got := topoVals[id]; got != want {
			t.Errorf("metric %s: flat %g vs zero-cost topology %g", id, want, got)
		}
	}
}

// TestTopologySessionPIF pins the PIF surface of a topology session: the
// hardware levels, the placement mappings, and the Levels() enumeration.
func TestTopologySessionPIF(t *testing.T) {
	s, err := NewSession(topoTestProgram,
		WithNodes(4),
		WithTopology(ringTopo(4)),
		WithPlacement([]int{0, 2, 1, 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := s.PIFText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hw0", "link_hw0_hw1", "Hosts", "Runs", "node3"} {
		if !strings.Contains(txt, want) {
			t.Errorf("PIF text missing %q", want)
		}
	}
	// Node 1 is placed on leaf 2 -> hw2 hosts node1.
	reg := s.Tool.Loaded.Registry
	if _, ok := reg.Level(nv.LevelIDHardware); !ok {
		t.Error("HW level not registered")
	}
	if _, ok := reg.Level(nv.LevelIDMachine); !ok {
		t.Error("Machine level not registered")
	}
	found := false
	for _, def := range s.PIF.Mappings {
		if def.Destination.Nouns[0] == "node1" && def.Source.Nouns[0] == "hw2" {
			found = true
		}
	}
	if !found {
		t.Error("placement mapping {hw2 Hosts} -> {node1 Runs} missing")
	}
}

func TestSessionLevels(t *testing.T) {
	// Flat session: CMF, CMRTS (virtual), Base — descending rank.
	s, err := NewSession(topoTestProgram, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	levels := s.Levels()
	var ids []nv.LevelID
	for _, l := range levels {
		ids = append(ids, l.ID)
	}
	want := []nv.LevelID{nv.LevelIDCMF, nv.LevelIDCMRTS, nv.LevelIDBase}
	if len(ids) != len(want) {
		t.Fatalf("levels = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("levels = %v, want %v", ids, want)
		}
	}
	for _, l := range levels {
		switch l.ID {
		case nv.LevelIDCMF:
			if l.Virtual || l.Nouns == 0 || l.Metrics == 0 {
				t.Errorf("CMF level: %+v", l)
			}
		case nv.LevelIDCMRTS:
			if !l.Virtual || l.Metrics == 0 || l.Rank != nv.RankCMRTS {
				t.Errorf("CMRTS level: %+v", l)
			}
		case nv.LevelIDBase:
			if l.Virtual || l.Nouns == 0 {
				t.Errorf("Base level: %+v", l)
			}
		}
	}

	// Topology session: Machine and HW at the bottom.
	s, err = NewSession(topoTestProgram, WithNodes(4), WithTopology(ringTopo(4)))
	if err != nil {
		t.Fatal(err)
	}
	levels = s.Levels()
	if len(levels) != 5 {
		t.Fatalf("topology session levels = %d, want 5", len(levels))
	}
	last := levels[len(levels)-1]
	if last.ID != nv.LevelIDHardware || last.Rank != nv.RankHardware || last.Nouns == 0 || last.Verbs == 0 {
		t.Errorf("bottom level: %+v", last)
	}
}

// TestPlacementReportWorkerInvariant pins the golden guarantee: the
// placement-comparison report is byte-identical under any worker width.
func TestPlacementReportWorkerInvariant(t *testing.T) {
	base, err := experimentPlacement(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := experimentPlacement(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("placement report differs between workers=1 and workers=%d", workers)
		}
	}
}
