# Benchmarks gated by the regression harness. The facade-level SAS
# benchmarks are the contract: cmd/benchdiff compares their ns/op against
# the baseline committed in BENCH_PR3.json and fails above 20% regression.
BENCH ?= Fig5SASSnapshot|Fig6Questions|SASShared
GATE  ?= SAS|Questions

# Parallel-engine scaling benchmarks (PR 4). BENCH_PR4.json records the
# per-worker-count medians; the numbers are machine-of-record specific —
# on a single-CPU host all worker counts collapse to sequential speed.
BENCH_PAR ?= ParallelFig6|SampleAllParallel
GATE_PAR  ?= ParallelFig6/nodes=32/workers=1

# Observability-plane overhead (PR 5). The disabled path is the
# non-perturbation contract — held to 2%, not the default 20% — while
# obs=on is recorded ungated for reference.
BENCH_OBS ?= ObsOverhead
GATE_OBS  ?= ObsOverhead/obs=off

# Topology & placement (PR 8): the greedy congestion-aware placement at
# fleet scale and the routed send path's per-message overhead, gated
# against BENCH_PR8.json.
BENCH_TOPO ?= TopoPlaceGreedy|TopoSend
GATE_TOPO  ?= Topo

# Columnar SAS engine (PR 9): the Figure 6 question pipeline, the
# zero-allocation steady-state sampling loop, and the sampling scaling
# curve across worker widths, against BENCH_PR9.json. benchdiff's
# allocs gate applies to the gated pair — ANY allocs/op increase over
# the committed baseline fails, which is how SampleAll's 0 allocs/op
# is held. The multi-worker curve rides along ungated (wall-clock and
# scheduling are host-dependent).
BENCH_SAS ?= Fig6Questions$$|SampleAll
GATE_SAS  ?= Fig6Questions$$|SampleAll$$

# Performance Consultant (PR 10): one full diagnosis search — base
# instrumented run plus every refinement replay — over the compute-heavy
# corpus program, against BENCH_PR10.json. Pure virtual-time execution,
# no wall-clock dependence, so the default 20% gate applies.
BENCH_DIAG ?= ConsultantSearch
GATE_DIAG  ?= ConsultantSearch

.PHONY: build test race bench bench-rebase bench-par bench-par-rebase \
	bench-obs bench-obs-rebase bench-topo bench-topo-rebase \
	bench-sas bench-sas-rebase pprof-sas soak soak-smoke \
	serve-smoke bench-serve bench-serve-rebase \
	bench-diag bench-diag-rebase diagnose-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR3.json -check '$(GATE)'

# Adopt the current numbers as the new baseline (after an intentional
# performance change, on the machine of record).
bench-rebase:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR3.json -check '$(GATE)' -rebase

# Worker-pool scaling: only the workers=1 (sequential-engine) case is
# regression-gated; multi-worker wall-clock depends on host core count.
bench-par:
	go test -run '^$$' -bench '$(BENCH_PAR)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR4.json -check '$(GATE_PAR)'

bench-par-rebase:
	go test -run '^$$' -bench '$(BENCH_PAR)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR4.json -check '$(GATE_PAR)' -rebase

# Observability overhead: the obs=off path must stay within 2% of the
# baseline (the plane is provably free when disabled).
bench-obs:
	go test -run '^$$' -bench '$(BENCH_OBS)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR5.json -check '$(GATE_OBS)' -max-regress 2

bench-obs-rebase:
	go test -run '^$$' -bench '$(BENCH_OBS)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR5.json -check '$(GATE_OBS)' -max-regress 2 -rebase

# Topology & placement: both benchmarks are pure host-CPU loops with no
# wall-clock dependence, so the default 20% gate applies.
bench-topo:
	go test -run '^$$' -bench '$(BENCH_TOPO)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR8.json -check '$(GATE_TOPO)'

bench-topo-rebase:
	go test -run '^$$' -bench '$(BENCH_TOPO)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR8.json -check '$(GATE_TOPO)' -rebase

# Columnar SAS engine: time gate plus the zero-tolerance allocs gate.
bench-sas:
	go test -run '^$$' -bench '$(BENCH_SAS)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR9.json -check '$(GATE_SAS)'

bench-sas-rebase:
	go test -run '^$$' -bench '$(BENCH_SAS)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR9.json -check '$(GATE_SAS)' -rebase

# CPU and allocation profiles of the Figure 6 pipeline, the columnar
# engine's contract benchmark. Inspect with `go tool pprof fig6_cpu.pprof`
# (or fig6_mem.pprof with -sample_index=alloc_objects).
pprof-sas:
	go test -run '^$$' -bench 'Fig6Questions$$' -benchtime 2s \
		-cpuprofile fig6_cpu.pprof -memprofile fig6_mem.pprof .

# Chaos soak: randomized composed-fault sessions under the race
# detector, asserting the robustness contract (no process death, every
# run ends in answer / partial / typed error, wall-clock-free runs
# byte-deterministic across worker counts). soak is the full acceptance
# run; soak-smoke is the short CI variant.
SOAK_N       ?= 500
SOAK_SMOKE_N ?= 25

soak:
	go run -race ./cmd/nvsoak -sessions $(SOAK_N) -seed 1

soak-smoke:
	go run -race ./cmd/nvsoak -sessions $(SOAK_SMOKE_N) -seed 1

# Service smoke: nvload self-hosts an nvprofd pool and proves the full
# admit -> shed -> reject -> drain lifecycle under the race detector —
# 50 mixed sessions, a deterministic overload burst that must shed and
# fast-reject with Retry-After, then a drain probe that must observe an
# exact virtual-time cut with the report flushed. Zero process deaths.
serve-smoke:
	go run -race ./cmd/nvload -smoke

# Service throughput ledger: sessions/sec and p95 answer latency against
# the committed BENCH_PR7.json baseline. Wall-clock numbers are
# host-dependent, so the gate is deliberately loose (150%) — it catches
# collapses, not noise. Shed/reject/retry/cut counts ride along
# ungated for trend visibility.
BENCH_SERVE_SESSIONS ?= 300
GATE_SERVE           ?= LoadSession|LoadAnswerP95

bench-serve:
	go run ./cmd/nvload -sessions $(BENCH_SERVE_SESSIONS) -concurrency 24 -bench | \
		go run ./cmd/benchdiff -out BENCH_PR7.json -check '$(GATE_SERVE)' -max-regress 150

bench-serve-rebase:
	go run ./cmd/nvload -sessions $(BENCH_SERVE_SESSIONS) -concurrency 24 -bench | \
		go run ./cmd/benchdiff -out BENCH_PR7.json -check '$(GATE_SERVE)' -max-regress 150 -rebase

# Performance Consultant search cost, gated against BENCH_PR10.json.
bench-diag:
	go test -run '^$$' -bench '$(BENCH_DIAG)' -benchmem -count=5 ./internal/paradyn | \
		go run ./cmd/benchdiff -out BENCH_PR10.json -check '$(GATE_DIAG)'

bench-diag-rebase:
	go test -run '^$$' -bench '$(BENCH_DIAG)' -benchmem -count=5 ./internal/paradyn | \
		go run ./cmd/benchdiff -out BENCH_PR10.json -check '$(GATE_DIAG)' -rebase

# Diagnosis smoke: the corpus goldens (planted root causes, worker
# invariance, budget accounting) plus the concurrent-search and
# /v1/diagnose stream/drain tests under the race detector.
diagnose-smoke:
	go test -run 'TestDiagnosisCorpus' .
	go test -race -run 'TestConsultantConcurrentSearches|TestConsultantBudgetRespected' ./internal/paradyn
	go test -race -run 'TestDiagnose' ./internal/serve
