# Benchmarks gated by the regression harness. The facade-level SAS
# benchmarks are the contract: cmd/benchdiff compares their ns/op against
# the baseline committed in BENCH_PR3.json and fails above 20% regression.
BENCH ?= Fig5SASSnapshot|Fig6Questions|SASShared
GATE  ?= SAS|Questions

.PHONY: build test race bench bench-rebase

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR3.json -check '$(GATE)'

# Adopt the current numbers as the new baseline (after an intentional
# performance change, on the machine of record).
bench-rebase:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count=5 . | \
		go run ./cmd/benchdiff -out BENCH_PR3.json -check '$(GATE)' -rebase
