// Package ring provides a lock-free single-producer single-consumer
// ring buffer for the machine→daemon delivery fast path.
//
// The daemon channel's general path takes a mutex per Send and per
// Drain; that is the right tool when multiple goroutines share a
// conduit or when overflow policies must park and retry messages. But
// the dominant traffic pattern in a session — the sampling loop pushing
// batches that the same driving goroutine drains moments later — has
// exactly one producer and one consumer, and for that shape a classic
// SPSC ring needs only two atomic cursors and no locks at all.
//
// # Memory model
//
// head is advanced only by the consumer, tail only by the producer.
// The producer publishes an element by storing it into buf before the
// release-store of tail; the consumer's acquire-load of tail therefore
// observes fully written elements. Symmetrically the consumer clears a
// slot before release-storing head, so the producer's acquire-load of
// head proves the slot is reusable. Go's sync/atomic provides the
// needed acquire/release semantics on Load/Store.
//
// Each cursor sits on its own cache line (pad fields) so the producer
// and consumer do not false-share, and each side keeps a local cached
// copy of the opposite cursor so the common case issues no cross-core
// load at all.
//
// Capacity is rounded up to a power of two so index masking replaces
// modulo. The ring stores at most cap elements; Push on a full ring
// returns false rather than blocking — callers own the overflow policy
// (the daemon channel wrapper spills to its mutex-guarded queue,
// preserving bounded/overflow/fault semantics).
package ring

import "sync/atomic"

// cacheLine separates the producer and consumer cursors so they do not
// false-share. 64 bytes covers x86-64 and most arm64 parts; 128 would
// also cover Apple M-series prefetch pairs but doubles struct size for
// marginal benefit at this message rate.
const cacheLine = 64

// SPSC is a lock-free single-producer single-consumer queue of T.
// Exactly one goroutine may call the producer methods (Push, PushSlice,
// Close) and exactly one the consumer methods (Pop, DrainInto); the two
// may be (and usually are) different goroutines, or the same one.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	// Producer side: owns tail; cachedHead is its last observed head.
	_          [cacheLine]byte
	tail       atomic.Uint64
	cachedHead uint64

	// Consumer side: owns head; cachedTail is its last observed tail.
	_          [cacheLine]byte
	head       atomic.Uint64
	cachedTail uint64

	_      [cacheLine]byte
	closed atomic.Bool

	// hw is the high-water occupancy, maintained by the producer (it is
	// the only side that sees the queue at its fullest).
	hw uint64
}

// New returns an SPSC ring holding at least capacity elements
// (rounded up to a power of two, minimum 2). The backing buffer is
// allocated by the first Push: a ring wired up "just in case" — every
// session channel gets one — costs a few words until traffic actually
// flows. Publication is safe because the producer allocates it and the
// consumer only dereferences buf after observing tail > head, which the
// release-store of tail orders after the buffer write.
func New[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{mask: n - 1}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return int(r.mask + 1) }

// ensureBuf allocates the backing buffer on the producer's first push.
func (r *SPSC[T]) ensureBuf() {
	if r.buf == nil {
		r.buf = make([]T, r.mask+1)
	}
}

// Len returns the current occupancy. It is exact when called from
// either the producer or the consumer goroutine, and a consistent
// snapshot otherwise.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// HighWater returns the maximum occupancy observed at any Push. It is
// maintained by the producer; reading it from elsewhere is racy but
// monotonic enough for a gauge.
func (r *SPSC[T]) HighWater() int { return int(atomic.LoadUint64(&r.hw)) }

// Push appends v. It returns false if the ring is full or closed;
// the caller decides whether to spill, drop, or retry. Producer only.
func (r *SPSC[T]) Push(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.cachedHead > r.mask {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead > r.mask {
			return false
		}
	}
	r.ensureBuf()
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.noteOccupancy(t + 1)
	return true
}

// noteOccupancy maintains the high-water mark after the producer
// advanced tail to newTail. The cheap stale-cachedHead estimate can only
// overestimate, so an exact head refresh is needed (and paid) only while
// the mark is actually climbing.
func (r *SPSC[T]) noteOccupancy(newTail uint64) {
	if newTail-r.cachedHead <= atomic.LoadUint64(&r.hw) {
		return
	}
	r.cachedHead = r.head.Load()
	if occ := newTail - r.cachedHead; occ > atomic.LoadUint64(&r.hw) {
		atomic.StoreUint64(&r.hw, occ)
	}
}

// PushSlice appends as many elements of vs as fit and returns how many
// were accepted; the caller spills the remainder. Producer only.
func (r *SPSC[T]) PushSlice(vs []T) int {
	if r.closed.Load() || len(vs) == 0 {
		return 0
	}
	t := r.tail.Load()
	free := (r.mask + 1) - (t - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = (r.mask + 1) - (t - r.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	if n > 0 {
		r.ensureBuf()
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(t + n)
		r.noteOccupancy(t + n)
	}
	return int(n)
}

// Pop removes and returns the oldest element. ok is false if the ring
// is empty. Consumer only.
func (r *SPSC[T]) Pop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return v, false
		}
	}
	var zero T
	v = r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release references for the collector
	r.head.Store(h + 1)
	return v, true
}

// DrainInto appends every currently queued element to dst and returns
// the extended slice. It drains at most one consistent snapshot of the
// queue — elements pushed concurrently with the drain are left for the
// next call. Consumer only.
func (r *SPSC[T]) DrainInto(dst []T) []T {
	h := r.head.Load()
	t := r.tail.Load()
	var zero T
	for ; h != t; h++ {
		dst = append(dst, r.buf[h&r.mask])
		r.buf[h&r.mask] = zero
	}
	r.head.Store(h)
	r.cachedTail = t
	return dst
}

// Close marks the ring closed: subsequent Pushes fail, already queued
// elements remain drainable. Producer only (or after both sides quiesce).
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }
