package ring

import (
	"runtime"
	"sync"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	r := New[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap=%d want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed on non-full ring", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v want %d,true", i, v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on empty ring")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		if got := New[int](tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d want %d", tc.in, got, tc.want)
		}
	}
}

func TestWraparound(t *testing.T) {
	r := New[int](4)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(next + i) {
				t.Fatalf("round %d: push failed", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = %d,%v want %d", round, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestPushSlicePartial(t *testing.T) {
	r := New[int](4)
	in := []int{1, 2, 3, 4, 5, 6}
	n := r.PushSlice(in)
	if n != 4 {
		t.Fatalf("PushSlice accepted %d want 4", n)
	}
	got := r.DrainInto(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d want 4", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("drain[%d]=%d want %d", i, v, i+1)
		}
	}
	if n := r.PushSlice(in[4:]); n != 2 {
		t.Fatalf("spill PushSlice accepted %d want 2", n)
	}
}

func TestDrainIntoSnapshot(t *testing.T) {
	r := New[int](8)
	r.PushSlice([]int{10, 20, 30})
	buf := make([]int, 0, 8)
	buf = r.DrainInto(buf)
	if len(buf) != 3 || buf[0] != 10 || buf[2] != 30 {
		t.Fatalf("DrainInto = %v", buf)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestCloseWhileFull(t *testing.T) {
	r := New[int](2)
	r.Push(1)
	r.Push(2)
	r.Close()
	if r.Push(3) {
		t.Fatal("Push succeeded after Close")
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Queued elements stay drainable.
	got := r.DrainInto(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drain after close = %v", got)
	}
	if n := r.PushSlice([]int{4}); n != 0 {
		t.Fatalf("PushSlice after close accepted %d", n)
	}
}

func TestHighWater(t *testing.T) {
	r := New[int](8)
	r.PushSlice([]int{1, 2, 3, 4, 5})
	r.DrainInto(nil)
	r.Push(6)
	if hw := r.HighWater(); hw != 5 {
		t.Fatalf("HighWater=%d want 5", hw)
	}
}

// TestSPSCStress is the satellite-required -race stress: one producer,
// one consumer, forced wraparound on a tiny ring, with pointer elements
// so the race detector sees the published memory, then close-while-full.
// The spin loops yield on failure — on a single-CPU host an unyielding
// spin only advances at the async-preemption interval.
func TestSPSCStress(t *testing.T) {
	const total = 50000
	r := New[*int](8) // tiny: guarantees constant wraparound + full backoff
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < total; {
			v := i
			if r.Push(&v) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum int64
	go func() { // consumer: mixes Pop and batch DrainInto
		defer wg.Done()
		buf := make([]*int, 0, 8)
		n := 0
		for n < total {
			if n%2 == 0 {
				if p, ok := r.Pop(); ok {
					sum += int64(*p)
					n++
				} else {
					runtime.Gosched()
				}
				continue
			}
			buf = r.DrainInto(buf[:0])
			for _, p := range buf {
				sum += int64(*p)
				n++
			}
			if len(buf) == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	want := int64(total) * int64(total-1) / 2
	if sum != want {
		t.Fatalf("sum=%d want %d (lost or duplicated elements)", sum, want)
	}
	if r.Len() != 0 {
		t.Fatalf("Len=%d after stress", r.Len())
	}

	// Close while full: fill, close from the producer side, drain after.
	for r.Push(new(int)) {
	}
	r.Close()
	if r.Push(new(int)) {
		t.Fatal("push after close-while-full succeeded")
	}
	if got := len(r.DrainInto(nil)); got != r.Cap() {
		t.Fatalf("drained %d after close-while-full, want %d", got, r.Cap())
	}
}

func TestSteadyStateNoAllocs(t *testing.T) {
	r := New[int](64)
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			r.Push(i)
		}
		buf = r.DrainInto(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady state allocs/op = %v, want 0", allocs)
	}
}
