// Package checkpoint is a versioned, checksummed store for per-node
// measurement-state snapshots. The supervisor checkpoints each live
// node's SAS partition, metric primitives and journal cursors on a
// periodic virtual-time interval; on a node reboot it restores the
// newest intact snapshot and replays the journaled records that
// post-date it (the analogue of the reliable links' retransmit buffer,
// but for a whole node rather than a single export stream).
//
// The store is deliberately ignorant of what a payload contains: it
// stores opaque bytes with an IEEE CRC-32 checksum and a monotonically
// increasing version per node, keeps a short history, and falls back to
// the previous version when the newest snapshot fails verification —
// a torn checkpoint must degrade to an older one, never to garbage.
package checkpoint

import (
	"fmt"
	"hash/crc32"
	"sync"

	"nvmap/internal/vtime"
)

// historyDepth is how many snapshots the store retains per node. Two is
// the minimum that survives one corrupted write.
const historyDepth = 2

// Snapshot is one stored checkpoint.
type Snapshot struct {
	Node    int
	Version uint64
	At      vtime.Time
	Payload []byte
	Sum     uint32
}

// Verify checks the payload against the stored checksum.
func (s Snapshot) Verify() error {
	if got := crc32.ChecksumIEEE(s.Payload); got != s.Sum {
		return fmt.Errorf("checkpoint: node %d version %d corrupt: crc %08x, want %08x",
			s.Node, s.Version, got, s.Sum)
	}
	return nil
}

// Stats counts store activity.
type Stats struct {
	Saves    int
	Restores int
	// Corrupt counts snapshots that failed verification on restore.
	Corrupt int
	// Bytes is the payload volume currently retained.
	Bytes int
}

// Store holds per-node snapshot histories. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	byNod map[int][]Snapshot // newest last
	next  uint64
	stats Stats
}

// NewStore builds an empty store.
func NewStore() *Store {
	return &Store{byNod: make(map[int][]Snapshot)}
}

// Save records a snapshot of node's state taken at the given instant and
// returns it. The payload is copied; versions increase monotonically
// across the whole store so snapshot order is totally defined.
func (st *Store) Save(node int, at vtime.Time, payload []byte) Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	sn := Snapshot{
		Node:    node,
		Version: st.next,
		At:      at,
		Payload: append([]byte(nil), payload...),
		Sum:     crc32.ChecksumIEEE(payload),
	}
	hist := append(st.byNod[node], sn)
	for len(hist) > historyDepth {
		st.stats.Bytes -= len(hist[0].Payload)
		hist = hist[1:]
	}
	st.byNod[node] = hist
	st.stats.Saves++
	st.stats.Bytes += len(sn.Payload)
	return sn
}

// Latest returns the newest snapshot for node that passes verification,
// falling back through history past corrupt entries. ok is false when no
// intact snapshot exists.
func (st *Store) Latest(node int) (Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	hist := st.byNod[node]
	for i := len(hist) - 1; i >= 0; i-- {
		if err := hist[i].Verify(); err != nil {
			st.stats.Corrupt++
			continue
		}
		st.stats.Restores++
		return hist[i], true
	}
	return Snapshot{}, false
}

// Corrupt flips a byte in node's newest snapshot payload, for tests of
// the verification fallback. Reports whether there was one to damage.
func (st *Store) Corrupt(node int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	hist := st.byNod[node]
	if len(hist) == 0 || len(hist[len(hist)-1].Payload) == 0 {
		return false
	}
	hist[len(hist)-1].Payload[0] ^= 0xFF
	return true
}

// Stats returns a copy of the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}
