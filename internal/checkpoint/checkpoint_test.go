package checkpoint

import (
	"bytes"
	"testing"

	"nvmap/internal/vtime"
)

func TestSaveLatestRoundtrip(t *testing.T) {
	st := NewStore()
	if _, ok := st.Latest(0); ok {
		t.Fatal("empty store produced a snapshot")
	}
	payload := []byte("node 0 state")
	sn := st.Save(0, vtime.Time(10), payload)
	if sn.Version == 0 || sn.Node != 0 {
		t.Fatalf("snapshot %+v", sn)
	}
	// The store copies the payload; mutating the caller's slice must not
	// corrupt the stored snapshot.
	payload[0] = 'X'
	got, ok := st.Latest(0)
	if !ok || !bytes.Equal(got.Payload, []byte("node 0 state")) {
		t.Fatalf("restored %q, ok=%v", got.Payload, ok)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Saves != 1 || s.Restores != 1 || s.Corrupt != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// Versions increase monotonically across the whole store, and Latest
// returns the newest snapshot per node.
func TestVersionsMonotonic(t *testing.T) {
	st := NewStore()
	a := st.Save(0, vtime.Time(1), []byte("a"))
	b := st.Save(1, vtime.Time(2), []byte("b"))
	c := st.Save(0, vtime.Time(3), []byte("c"))
	if !(a.Version < b.Version && b.Version < c.Version) {
		t.Fatalf("versions %d, %d, %d not increasing", a.Version, b.Version, c.Version)
	}
	got, ok := st.Latest(0)
	if !ok || string(got.Payload) != "c" || got.At != vtime.Time(3) {
		t.Fatalf("latest = %+v, ok=%v", got, ok)
	}
}

// The store retains a bounded history and accounts retained bytes
// exactly.
func TestHistoryEviction(t *testing.T) {
	st := NewStore()
	st.Save(0, vtime.Time(1), []byte("aa"))
	st.Save(0, vtime.Time(2), []byte("bbbb"))
	st.Save(0, vtime.Time(3), []byte("cccccc")) // evicts "aa"
	s := st.Stats()
	if s.Saves != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.Bytes != 4+6 {
		t.Fatalf("retained bytes %d, want 10", s.Bytes)
	}
}

// A corrupt newest snapshot must fall back to the previous intact one —
// degrade to older state, never to garbage.
func TestCorruptFallsBack(t *testing.T) {
	st := NewStore()
	st.Save(2, vtime.Time(1), []byte("old"))
	st.Save(2, vtime.Time(5), []byte("new"))
	if !st.Corrupt(2) {
		t.Fatal("nothing to corrupt")
	}
	got, ok := st.Latest(2)
	if !ok || string(got.Payload) != "old" {
		t.Fatalf("fallback = %q, ok=%v", got.Payload, ok)
	}
	s := st.Stats()
	if s.Corrupt != 1 || s.Restores != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// When every retained snapshot is corrupt the restore must fail loudly
// (the supervisor then recovers cold from the journals).
func TestAllCorruptMeansNoSnapshot(t *testing.T) {
	st := NewStore()
	st.Save(1, vtime.Time(1), []byte("only"))
	if !st.Corrupt(1) {
		t.Fatal("nothing to corrupt")
	}
	if sn, ok := st.Latest(1); ok {
		t.Fatalf("corrupt snapshot restored: %+v", sn)
	}
	if st.Corrupt(9) {
		t.Fatal("corrupted a snapshot that does not exist")
	}
}
