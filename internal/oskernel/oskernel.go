// Package oskernel simulates the UNIX process/kernel scenario of the
// paper's Figure 7, used to demonstrate the first limitation of the SAS
// approach: asynchronous activation of sentences.
//
// A user process calls write(); the kernel buffers the data and writes it
// to disk later, after the calling function has returned. By then the
// function-execution sentence has left the SAS, so kernel disk writes on
// behalf of the function "could not be measured with the help of the SAS
// alone". The package also demonstrates the shadow-context remedy
// (sas.Capture / sas.RecordEventInContext): capturing the active
// sentences at the write() handoff lets the deferred disk write be
// attributed correctly.
package oskernel

import (
	"fmt"

	"nvmap/internal/nv"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

// Verbs used by the simulated system's sentences.
const (
	VerbExecutes  nv.VerbID = "Executes"
	VerbSyscall   nv.VerbID = "SyscallWrite"
	VerbDiskWrite nv.VerbID = "DiskWrite"
)

// DiskNoun is the noun for the simulated disk.
const DiskNoun nv.NounID = "disk0"

// Config sets the timing model.
type Config struct {
	// SyscallCost is the user-side cost of the write() call.
	SyscallCost vtime.Duration
	// FlushDelay is how long buffered data sits before the kernel's
	// write-back daemon flushes it to disk.
	FlushDelay vtime.Duration
	// WriteCost is the disk-side cost per flush.
	WriteCost vtime.Duration
	// Shadows enables capturing shadow contexts at the write() handoff.
	Shadows bool
}

// DefaultConfig returns plausible timings.
func DefaultConfig() Config {
	return Config{
		SyscallCost: 2 * vtime.Microsecond,
		FlushDelay:  5 * vtime.Millisecond,
		WriteCost:   800 * vtime.Microsecond,
		Shadows:     false,
	}
}

type pendingWrite struct {
	bytes     int
	issuedAt  vtime.Time
	dueAt     vtime.Time
	shadow    sas.Shadow
	hasShadow bool
}

// System is one simulated process + kernel pair sharing a SAS.
type System struct {
	cfg     Config
	sas     *sas.SAS
	clock   vtime.Time
	pending []pendingWrite

	// Flushed counts completed disk writes; Attributed counts those that
	// some performance question charged.
	Flushed    int
	Attributed int
}

// New builds a system over an existing SAS (the tool owns the SAS and its
// questions).
func New(cfg Config, s *sas.SAS) (*System, error) {
	if s == nil {
		return nil, fmt.Errorf("oskernel: a SAS is required")
	}
	return &System{cfg: cfg, sas: s}, nil
}

// Now returns the system's virtual clock.
func (s *System) Now() vtime.Time { return s.clock }

// Advance idles the process for d.
func (s *System) Advance(d vtime.Duration) { s.clock = s.clock.Add(d) }

// CallFunc runs body inside the function-execution sentence {fn
// Executes}, exactly the left column of Figure 7.
func (s *System) CallFunc(fn string, body func()) {
	sentence := nv.NewSentence(VerbExecutes, nv.NounID(fn))
	s.sas.Activate(sentence, s.clock)
	body()
	s.clock = s.clock.Add(1 * vtime.Microsecond)
	_ = s.sas.Deactivate(sentence, s.clock)
}

// Write issues a buffered write() system call: the kernel notes the data
// and schedules the actual disk write FlushDelay later. With shadows
// enabled, the kernel captures the caller's active sentences at the
// handoff.
func (s *System) Write(bytes int) {
	sysSentence := nv.NewSentence(VerbSyscall)
	s.sas.Activate(sysSentence, s.clock)
	s.clock = s.clock.Add(s.cfg.SyscallCost)
	w := pendingWrite{
		bytes:    bytes,
		issuedAt: s.clock,
		dueAt:    s.clock.Add(s.cfg.FlushDelay),
	}
	if s.cfg.Shadows {
		w.shadow = s.sas.Capture(s.clock)
		w.hasShadow = true
	}
	s.pending = append(s.pending, w)
	_ = s.sas.Deactivate(sysSentence, s.clock)
}

// RunKernel advances time to deadline, flushing every buffered write
// whose due time has arrived (the kernel's write-back daemon). Each flush
// is a measured low-level event: the kernel asks the SAS which questions
// it satisfies.
func (s *System) RunKernel(deadline vtime.Time) {
	for i := 0; i < len(s.pending); i++ {
		w := s.pending[i]
		if w.dueAt.After(deadline) {
			continue
		}
		if w.dueAt.After(s.clock) {
			s.clock = w.dueAt
		}
		start := s.clock
		s.clock = s.clock.Add(s.cfg.WriteCost)
		ev := nv.NewSentence(VerbDiskWrite, DiskNoun)
		var hits int
		if w.hasShadow {
			hits = s.sas.RecordEventInContext(w.shadow, ev, start, 1)
			s.sas.RecordSpanInContext(w.shadow, ev, start, s.clock, s.cfg.WriteCost)
		} else {
			hits = s.sas.RecordEvent(ev, start, 1)
			s.sas.RecordSpan(ev, start, s.clock, s.cfg.WriteCost)
		}
		s.Flushed++
		if hits > 0 {
			s.Attributed++
		}
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		i--
	}
	if deadline.After(s.clock) {
		s.clock = deadline
	}
}

// PendingWrites returns how many buffered writes await flushing.
func (s *System) PendingWrites() int { return len(s.pending) }
