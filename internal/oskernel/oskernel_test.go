package oskernel

import (
	"testing"

	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

func question() sas.Question {
	return sas.Q("disk writes for func",
		sas.T(VerbExecutes, "func"),
		sas.T(VerbDiskWrite, sas.Any))
}

func TestFigure7LimitationWithoutShadows(t *testing.T) {
	s := sas.New(sas.Options{})
	qid, err := s.AddQuestion(question())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(DefaultConfig(), s)
	if err != nil {
		t.Fatal(err)
	}

	sys.CallFunc("func", func() {
		sys.Write(4096)
	})
	if sys.PendingWrites() != 1 {
		t.Fatalf("pending = %d", sys.PendingWrites())
	}
	// The kernel flushes long after func() returned.
	sys.RunKernel(sys.Now().Add(vtime.Second))

	if sys.Flushed != 1 {
		t.Fatalf("flushed = %d", sys.Flushed)
	}
	// The paper's limitation: the write cannot be attributed.
	if sys.Attributed != 0 {
		t.Fatalf("attributed = %d, want 0 (the SAS alone cannot attribute)", sys.Attributed)
	}
	res, _ := s.Result(qid, sys.Now())
	if res.Count != 0 {
		t.Fatalf("question count = %g, want 0", res.Count)
	}
}

func TestShadowContextRemedy(t *testing.T) {
	s := sas.New(sas.Options{})
	qid, err := s.AddQuestion(question())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shadows = true
	sys, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}

	sys.CallFunc("func", func() {
		sys.Write(4096)
		sys.Write(8192)
	})
	// A write from a different function must not be charged to func.
	sys.CallFunc("other", func() {
		sys.Write(100)
	})
	sys.RunKernel(sys.Now().Add(vtime.Second))

	if sys.Flushed != 3 {
		t.Fatalf("flushed = %d", sys.Flushed)
	}
	if sys.Attributed != 2 {
		t.Fatalf("attributed = %d, want 2", sys.Attributed)
	}
	res, _ := s.Result(qid, sys.Now())
	if res.Count != 2 {
		t.Fatalf("question count = %g, want 2", res.Count)
	}
	if res.EventTime != 2*cfg.WriteCost {
		t.Fatalf("question event time = %v, want %v", res.EventTime, 2*cfg.WriteCost)
	}
}

func TestSynchronousWriteIsAttributedEitherWay(t *testing.T) {
	// If the flush happens while func() is still active (FlushDelay 0),
	// even the plain SAS attributes it — the limitation is specifically
	// about asynchrony.
	s := sas.New(sas.Options{})
	qid, _ := s.AddQuestion(question())
	cfg := DefaultConfig()
	cfg.FlushDelay = 0
	sys, _ := New(cfg, s)
	sys.CallFunc("func", func() {
		sys.Write(512)
		sys.RunKernel(sys.Now()) // flush inside the call
	})
	res, _ := s.Result(qid, sys.Now())
	if res.Count != 1 {
		t.Fatalf("synchronous count = %g, want 1", res.Count)
	}
}

func TestKernelRespectsDueTimes(t *testing.T) {
	s := sas.New(sas.Options{})
	sys, _ := New(DefaultConfig(), s)
	sys.CallFunc("func", func() { sys.Write(1) })
	sys.RunKernel(sys.Now())
	if sys.PendingWrites() != 1 {
		t.Fatal("flushed before due time")
	}
	sys.RunKernel(sys.Now().Add(DefaultConfig().FlushDelay))
	if sys.PendingWrites() != 0 {
		t.Fatal("not flushed at due time")
	}
}

func TestClockMonotone(t *testing.T) {
	s := sas.New(sas.Options{})
	sys, _ := New(DefaultConfig(), s)
	t0 := sys.Now()
	sys.Advance(10)
	sys.CallFunc("f", func() { sys.Write(1) })
	sys.RunKernel(sys.Now().Add(vtime.Second))
	if !sys.Now().After(t0) {
		t.Fatal("clock did not advance")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil SAS accepted")
	}
}
