// Package pifgen converts CM Fortran compiler listings into PIF files —
// the "simple utility that parses CM Fortran compiler output files" of
// Section 6.2: it scans the listing for parallel statements, parallel
// arrays and node code blocks, and produces a PIF file that defines the
// statements and arrays for the tool and describes the mappings from
// statements to code blocks.
//
// cmd/pifgen wraps this package as the command-line utility; tests and
// the experiment drivers call it directly.
package pifgen

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/pif"
)

// Levels and verbs the generated PIF declares.
const (
	// Deprecated: use nv.LevelIDCMF; enumerate a session's levels with
	// Session.Levels() instead of matching level names.
	LevelCMF = "CMF"
	// Deprecated: use nv.LevelIDBase; enumerate a session's levels with
	// Session.Levels() instead of matching level names.
	LevelBase = "Base"

	VerbExecutes = "Executes"
	VerbCPU      = "CPU Utilization"

	// Hierarchy-root nouns for the tool's where axis.
	RootStmts  = "CMFstmts"
	RootArrays = "CMFarrays"
)

// Hardware-topology vocabulary (see FromTopology).
const (
	// VerbHosts relates a hardware leaf to the logical node placed on
	// it: the placement-as-mapping source verb.
	VerbHosts = "Hosts"
	// VerbRoutes is the HW-level verb of link-traffic sentences: a
	// {link_hwA_hwB Routes} event fires per interconnect link a message
	// crosses.
	VerbRoutes = "Routes"
	// VerbRuns is the Machine-level verb of a logical node's activity.
	VerbRuns = "Runs"
	// RootHardware and RootLinks are the HW level's hierarchy roots.
	RootHardware = "Hardware"
	RootLinks    = "HWlinks"
	// RootMachine mirrors the tool's built-in Machine hierarchy.
	RootMachine = "Machine"
)

// FromListing parses a compiler listing and builds the PIF file.
func FromListing(r io.Reader) (*pif.File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	f := &pif.File{
		Levels: []pif.LevelRecord{
			{Name: LevelBase, Rank: 0, Description: "functions of the executable image"},
			{Name: LevelCMF, Rank: 2, Description: "CM Fortran source constructs"},
		},
		Nouns: []pif.NounRecord{
			{Name: RootStmts, Abstraction: LevelCMF, Description: "parallel statements"},
			{Name: RootArrays, Abstraction: LevelCMF, Description: "parallel arrays"},
		},
		Verbs: []pif.VerbRecord{
			{Name: VerbExecutes, Abstraction: LevelCMF, Units: "% CPU"},
			{Name: VerbCPU, Abstraction: LevelBase, Units: "% CPU"},
		},
	}

	var source string
	seenBlocks := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("pifgen: listing line %d: no record keyword in %q", lineNo, line)
		}
		rest = strings.TrimSpace(rest)
		switch key {
		case "program":
			// informational
		case "source":
			source = rest
		case "array":
			fields, err := parseFields(rest, lineNo)
			if err != nil {
				return nil, err
			}
			name, dims := fields["name"], fields["dims"]
			if name == "" {
				return nil, fmt.Errorf("pifgen: listing line %d: array record without name", lineNo)
			}
			f.Nouns = append(f.Nouns, pif.NounRecord{
				Name:        name,
				Abstraction: LevelCMF,
				Parent:      RootArrays,
				Description: fmt.Sprintf("parallel array %s (%s) in %s", name, dims, source),
			})
		case "statement":
			fields, err := parseFields(rest, lineNo)
			if err != nil {
				return nil, err
			}
			if fields["block"] == "-" || fields["block"] == "" {
				continue // serial statement: no mapping
			}
			stmt := "line" + fields["line"]
			f.Nouns = append(f.Nouns, pif.NounRecord{
				Name:        stmt,
				Abstraction: LevelCMF,
				Parent:      RootStmts,
				Description: fmt.Sprintf("line #%s in source file %s: %s", fields["line"], source, fields["text"]),
			})
			block := fields["block"]
			if !seenBlocks[block] {
				seenBlocks[block] = true
				f.Nouns = append(f.Nouns, pif.NounRecord{
					Name:        block,
					Abstraction: LevelBase,
					Description: "compiler generated function, source code not available",
				})
			}
			f.Mappings = append(f.Mappings, pif.MappingRecord{
				Source:      pif.SentenceRef{Nouns: []string{block}, Verb: VerbCPU},
				Destination: pif.SentenceRef{Nouns: []string{stmt}, Verb: VerbExecutes},
			})
		case "block":
			// Blocks were already declared when their statements were seen;
			// the record is validated for form only.
			if _, err := parseFields(rest, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pifgen: listing line %d: unknown record %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pifgen: %w", err)
	}
	if len(f.Mappings) == 0 {
		return nil, fmt.Errorf("pifgen: listing contains no parallel statements")
	}
	return f, nil
}

// parseFields splits "k1=v1 k2=v2 ... text=\"...\"" records. The quoted
// text field, when present, must come last.
func parseFields(s string, lineNo int) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("pifgen: listing line %d: malformed field %q", lineNo, s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if strings.HasPrefix(s, `"`) {
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("pifgen: listing line %d: unterminated quote", lineNo)
			}
			out[key] = s[1 : end+1]
			s = s[end+2:]
			continue
		}
		sp := strings.IndexByte(s, ' ')
		if sp < 0 {
			out[key] = s
			s = ""
		} else {
			out[key] = s[:sp]
			s = s[sp+1:]
		}
	}
	return out, nil
}

// LeafNoun names the PIF noun for one topology leaf. The name carries
// the full hardware path so it stays unique within the HW level: a
// single-socket single-core leaf is just its hardware node ("hw3"),
// deeper hierarchies append socket and core components ("hw3.s0.c1").
func LeafNoun(t *machine.Topology, leaf int) string {
	hw := t.LeafNode(leaf)
	sockets, cores := t.SocketsPerNode(), t.CoresPerSocket()
	if sockets == 1 && cores == 1 {
		return fmt.Sprintf("hw%d", hw)
	}
	socket := (leaf / cores) % sockets
	if cores == 1 {
		return fmt.Sprintf("hw%d.s%d", hw, socket)
	}
	return fmt.Sprintf("hw%d.s%d.c%d", hw, socket, leaf%cores)
}

// LinkNoun names the PIF noun for one interconnect link. Links are
// undirected at the noun level (one noun covers both directions), named
// by the lower hardware-node index first.
func LinkNoun(l machine.Link) string {
	a, b := l.From, l.To
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("link_hw%d_hw%d", a, b)
}

// FromTopology emits the static mapping information of a hardware
// topology and a placement: the Machine and HW levels of abstraction,
// the hardware resource tree (nodes, sockets, cores) and the
// interconnect links as HW-level nouns, the Hosts/Routes/Runs verbs,
// and one MAPPING record per logical node relating the leaf that hosts
// it to the node's Machine-level sentence — placement expressed as
// ordinary mapping information, so the SAS, the where axis and every
// question mechanism see hardware sentences with no special cases.
//
// The file composes with FromListing's output (distinct levels, nouns
// and verbs); the session merges both and loads them as one PIF.
func FromTopology(t *machine.Topology, placement []int, nodes int) *pif.File {
	f := &pif.File{
		Levels: []pif.LevelRecord{
			{Name: string(nv.LevelIDMachine), Rank: nv.RankMachine, Description: "partition nodes"},
			{Name: string(nv.LevelIDHardware), Rank: nv.RankHardware, Description: fmt.Sprintf("hardware topology: %v", t)},
		},
		Verbs: []pif.VerbRecord{
			{Name: VerbRuns, Abstraction: string(nv.LevelIDMachine), Units: "% CPU"},
			{Name: VerbHosts, Abstraction: string(nv.LevelIDHardware), Units: "nodes"},
			{Name: VerbRoutes, Abstraction: string(nv.LevelIDHardware), Units: "messages"},
		},
	}
	hwLevel := string(nv.LevelIDHardware)

	// The hardware resource tree: Hardware -> hw nodes -> sockets -> cores.
	f.Nouns = append(f.Nouns, pif.NounRecord{
		Name: RootHardware, Abstraction: hwLevel,
		Description: "hardware topology root",
	})
	sockets, cores := t.SocketsPerNode(), t.CoresPerSocket()
	for hw := 0; hw < t.HWNodes(); hw++ {
		x, y := t.Coord(hw)
		hwName := fmt.Sprintf("hw%d", hw)
		f.Nouns = append(f.Nouns, pif.NounRecord{
			Name: hwName, Abstraction: hwLevel, Parent: RootHardware,
			Description: fmt.Sprintf("hardware node at (%d,%d)", x, y),
		})
		if sockets == 1 && cores == 1 {
			continue
		}
		for s := 0; s < sockets; s++ {
			sName := fmt.Sprintf("hw%d.s%d", hw, s)
			f.Nouns = append(f.Nouns, pif.NounRecord{
				Name: sName, Abstraction: hwLevel, Parent: hwName,
				Description: fmt.Sprintf("socket %d of hw%d", s, hw),
			})
			if cores == 1 {
				continue
			}
			for c := 0; c < cores; c++ {
				f.Nouns = append(f.Nouns, pif.NounRecord{
					Name: fmt.Sprintf("hw%d.s%d.c%d", hw, s, c), Abstraction: hwLevel, Parent: sName,
					Description: fmt.Sprintf("core %d of socket %d of hw%d", c, s, hw),
				})
			}
		}
	}

	// The interconnect links, undirected, under their own root.
	if t.GridX > 1 || t.GridY > 1 {
		f.Nouns = append(f.Nouns, pif.NounRecord{
			Name: RootLinks, Abstraction: hwLevel,
			Description: "interconnect links",
		})
		seen := map[string]bool{}
		for hw := 0; hw < t.HWNodes(); hw++ {
			x, y := t.Coord(hw)
			neighbours := make([]int, 0, 2)
			if t.GridX > 1 {
				if x+1 < t.GridX {
					neighbours = append(neighbours, t.HWAt(x+1, y))
				} else if t.Torus && t.GridX > 2 {
					neighbours = append(neighbours, t.HWAt(0, y))
				}
			}
			if t.GridY > 1 {
				if y+1 < t.GridY {
					neighbours = append(neighbours, t.HWAt(x, y+1))
				} else if t.Torus && t.GridY > 2 {
					neighbours = append(neighbours, t.HWAt(x, 0))
				}
			}
			for _, nb := range neighbours {
				name := LinkNoun(machine.Link{From: hw, To: nb})
				if seen[name] {
					continue
				}
				seen[name] = true
				f.Nouns = append(f.Nouns, pif.NounRecord{
					Name: name, Abstraction: hwLevel, Parent: RootLinks,
					Description: fmt.Sprintf("interconnect link hw%d-hw%d", min(hw, nb), max(hw, nb)),
				})
			}
		}
	}

	// The Machine level mirrors the tool's built-in node hierarchy.
	f.Nouns = append(f.Nouns, pif.NounRecord{
		Name: RootMachine, Abstraction: string(nv.LevelIDMachine),
		Description: "partition root",
	})
	for n := 0; n < nodes; n++ {
		f.Nouns = append(f.Nouns, pif.NounRecord{
			Name: fmt.Sprintf("node%d", n), Abstraction: string(nv.LevelIDMachine), Parent: RootMachine,
			Description: fmt.Sprintf("logical node %d", n),
		})
	}

	// Placement as mapping information: {leaf Hosts} -> {node Runs}.
	for n := 0; n < nodes; n++ {
		f.Mappings = append(f.Mappings, pif.MappingRecord{
			Source:      pif.SentenceRef{Nouns: []string{LeafNoun(t, placement[n])}, Verb: VerbHosts},
			Destination: pif.SentenceRef{Nouns: []string{fmt.Sprintf("node%d", n)}, Verb: VerbRuns},
		})
	}
	return f
}
