// Package pifgen converts CM Fortran compiler listings into PIF files —
// the "simple utility that parses CM Fortran compiler output files" of
// Section 6.2: it scans the listing for parallel statements, parallel
// arrays and node code blocks, and produces a PIF file that defines the
// statements and arrays for the tool and describes the mappings from
// statements to code blocks.
//
// cmd/pifgen wraps this package as the command-line utility; tests and
// the experiment drivers call it directly.
package pifgen

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"nvmap/internal/pif"
)

// Levels and verbs the generated PIF declares.
const (
	LevelCMF  = "CMF"
	LevelBase = "Base"

	VerbExecutes = "Executes"
	VerbCPU      = "CPU Utilization"

	// Hierarchy-root nouns for the tool's where axis.
	RootStmts  = "CMFstmts"
	RootArrays = "CMFarrays"
)

// FromListing parses a compiler listing and builds the PIF file.
func FromListing(r io.Reader) (*pif.File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	f := &pif.File{
		Levels: []pif.LevelRecord{
			{Name: LevelBase, Rank: 0, Description: "functions of the executable image"},
			{Name: LevelCMF, Rank: 2, Description: "CM Fortran source constructs"},
		},
		Nouns: []pif.NounRecord{
			{Name: RootStmts, Abstraction: LevelCMF, Description: "parallel statements"},
			{Name: RootArrays, Abstraction: LevelCMF, Description: "parallel arrays"},
		},
		Verbs: []pif.VerbRecord{
			{Name: VerbExecutes, Abstraction: LevelCMF, Units: "% CPU"},
			{Name: VerbCPU, Abstraction: LevelBase, Units: "% CPU"},
		},
	}

	var source string
	seenBlocks := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("pifgen: listing line %d: no record keyword in %q", lineNo, line)
		}
		rest = strings.TrimSpace(rest)
		switch key {
		case "program":
			// informational
		case "source":
			source = rest
		case "array":
			fields, err := parseFields(rest, lineNo)
			if err != nil {
				return nil, err
			}
			name, dims := fields["name"], fields["dims"]
			if name == "" {
				return nil, fmt.Errorf("pifgen: listing line %d: array record without name", lineNo)
			}
			f.Nouns = append(f.Nouns, pif.NounRecord{
				Name:        name,
				Abstraction: LevelCMF,
				Parent:      RootArrays,
				Description: fmt.Sprintf("parallel array %s (%s) in %s", name, dims, source),
			})
		case "statement":
			fields, err := parseFields(rest, lineNo)
			if err != nil {
				return nil, err
			}
			if fields["block"] == "-" || fields["block"] == "" {
				continue // serial statement: no mapping
			}
			stmt := "line" + fields["line"]
			f.Nouns = append(f.Nouns, pif.NounRecord{
				Name:        stmt,
				Abstraction: LevelCMF,
				Parent:      RootStmts,
				Description: fmt.Sprintf("line #%s in source file %s: %s", fields["line"], source, fields["text"]),
			})
			block := fields["block"]
			if !seenBlocks[block] {
				seenBlocks[block] = true
				f.Nouns = append(f.Nouns, pif.NounRecord{
					Name:        block,
					Abstraction: LevelBase,
					Description: "compiler generated function, source code not available",
				})
			}
			f.Mappings = append(f.Mappings, pif.MappingRecord{
				Source:      pif.SentenceRef{Nouns: []string{block}, Verb: VerbCPU},
				Destination: pif.SentenceRef{Nouns: []string{stmt}, Verb: VerbExecutes},
			})
		case "block":
			// Blocks were already declared when their statements were seen;
			// the record is validated for form only.
			if _, err := parseFields(rest, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pifgen: listing line %d: unknown record %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pifgen: %w", err)
	}
	if len(f.Mappings) == 0 {
		return nil, fmt.Errorf("pifgen: listing contains no parallel statements")
	}
	return f, nil
}

// parseFields splits "k1=v1 k2=v2 ... text=\"...\"" records. The quoted
// text field, when present, must come last.
func parseFields(s string, lineNo int) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("pifgen: listing line %d: malformed field %q", lineNo, s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if strings.HasPrefix(s, `"`) {
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("pifgen: listing line %d: unterminated quote", lineNo)
			}
			out[key] = s[1 : end+1]
			s = s[end+2:]
			continue
		}
		sp := strings.IndexByte(s, ' ')
		if sp < 0 {
			out[key] = s
			s = ""
		} else {
			out[key] = s[:sp]
			s = s[sp+1:]
		}
	}
	return out, nil
}
