package pifgen

import (
	"strings"
	"testing"

	"nvmap/internal/cmf"
	"nvmap/internal/machine"
	"nvmap/internal/mapping"
	"nvmap/internal/nv"
	"nvmap/internal/pif"
)

const program = `PROGRAM corr
REAL A(64)
REAL B(64)
REAL ASUM
A = 1.0
B = A * 2.0
ASUM = SUM(A)
END
`

func listingOf(t *testing.T, fuse bool) string {
	t.Helper()
	cp, err := cmf.CompileSource(program, cmf.Options{Fuse: fuse, SourceFile: "corr.fcm"})
	if err != nil {
		t.Fatal(err)
	}
	return cp.Listing()
}

func TestFromListingBasic(t *testing.T) {
	f, err := FromListing(strings.NewReader(listingOf(t, false)))
	if err != nil {
		t.Fatal(err)
	}
	// Nouns: 2 roots + 2 arrays + 3 statements + 3 blocks.
	if len(f.Nouns) != 10 {
		t.Fatalf("nouns = %d: %+v", len(f.Nouns), f.Nouns)
	}
	if len(f.Mappings) != 3 {
		t.Fatalf("mappings = %d", len(f.Mappings))
	}
	if len(f.Levels) != 2 || len(f.Verbs) != 2 {
		t.Fatalf("levels/verbs = %d/%d", len(f.Levels), len(f.Verbs))
	}

	// The result must load cleanly.
	loaded, err := pif.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	stmt, ok := loaded.NounID(LevelCMF, "line5")
	if !ok {
		t.Fatal("line5 noun missing")
	}
	n, _ := loaded.Registry.Noun(stmt)
	if n.Parent == "" {
		t.Fatal("statement has no hierarchy parent")
	}
	if !strings.Contains(n.Description, "corr.fcm") {
		t.Fatalf("statement description = %q", n.Description)
	}
}

// With fusion, the Figure 2 situation appears: one block maps one-to-many
// to two source lines.
func TestFromListingFusedOneToMany(t *testing.T) {
	f, err := FromListing(strings.NewReader(listingOf(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := pif.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	blockNoun, ok := loaded.NounID(LevelBase, "cmpe_corr_1_()")
	if !ok {
		t.Fatal("fused block noun missing")
	}
	cpuVerb, _ := loaded.VerbID(LevelBase, VerbCPU)
	src := nv.NewSentence(cpuVerb, blockNoun)
	if k := loaded.Table.KindOf(src); k != mapping.OneToMany {
		t.Fatalf("fused block mapping kind = %v, want One-to-Many", k)
	}
	if dests := loaded.Table.Destinations(src); len(dests) != 2 {
		t.Fatalf("fused block destinations = %v", dests)
	}
}

func TestFromListingSkipsSerialStatements(t *testing.T) {
	listing := `! CM Fortran compiler listing
program: P
source: p.fcm
statement: line=4 kind=serial block=- intrinsic=- arrays=- text="X = 1"
statement: line=5 kind=compute block=cmpe_p_1_() intrinsic=- arrays=A text="A = 1"
`
	f, err := FromListing(strings.NewReader(listing))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f.Nouns {
		if n.Name == "line4" {
			t.Fatal("serial statement got a noun")
		}
	}
	if len(f.Mappings) != 1 {
		t.Fatalf("mappings = %d", len(f.Mappings))
	}
}

func TestFromListingErrors(t *testing.T) {
	cases := map[string]string{
		"no keyword":    "just text\n",
		"unknown":       "widget: x=1\n",
		"bad field":     "array: name\n",
		"no name":       "array: dims=4\n",
		"unterminated":  `statement: line=5 block=b text="oops` + "\n",
		"no statements": "program: P\nsource: p.fcm\n",
	}
	for name, src := range cases {
		if _, err := FromListing(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestGeneratedPIFRoundTripsThroughWriter(t *testing.T) {
	f, err := FromListing(strings.NewReader(listingOf(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := pif.Write(&b, f); err != nil {
		t.Fatal(err)
	}
	f2, err := pif.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b.String())
	}
	if len(f2.Mappings) != len(f.Mappings) || len(f2.Nouns) != len(f.Nouns) {
		t.Fatal("round trip lost records")
	}
	if _, err := pif.Load(f2); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromListing(b *testing.B) {
	cp, err := cmf.CompileSource(program, cmf.Options{Fuse: true})
	if err != nil {
		b.Fatal(err)
	}
	listing := cp.Listing()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromListing(strings.NewReader(listing)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFromTopologyEmission(t *testing.T) {
	topo := &machine.Topology{GridX: 2, GridY: 2, Torus: false, Sockets: 2, Cores: 2}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 hw nodes x 2 sockets x 2 cores = 16 leaves; 2 logical nodes,
	// placed on opposite corners' first cores.
	f := FromTopology(topo, []int{0, 12}, 2)

	loaded, err := pif.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	// Levels land at the canonical ranks.
	for _, want := range []struct {
		id   nv.LevelID
		rank int
	}{{nv.LevelIDMachine, nv.RankMachine}, {nv.LevelIDHardware, nv.RankHardware}} {
		lvl, ok := loaded.Registry.Level(want.id)
		if !ok || lvl.Rank != want.rank {
			t.Fatalf("level %s: ok=%v rank=%d, want rank %d", want.id, ok, lvl.Rank, want.rank)
		}
	}
	// The hardware tree resolves root -> node -> socket -> core.
	leaf, ok := loaded.NounID(nv.LevelIDHardware, "hw3.s1.c1")
	if !ok {
		t.Fatal("deep leaf noun missing")
	}
	n, _ := loaded.Registry.Noun(leaf)
	if n.Parent == "" {
		t.Fatal("leaf has no socket parent")
	}
	// A 2x2 mesh has 4 links, all present under the links root.
	links := 0
	for _, noun := range f.Nouns {
		if noun.Parent == RootLinks {
			links++
		}
	}
	if links != 4 {
		t.Fatalf("links = %d, want 4 for a 2x2 mesh", links)
	}
	// Placement mappings connect {leaf Hosts} to {node Runs}.
	if len(f.Mappings) != 2 {
		t.Fatalf("mappings = %d, want 2", len(f.Mappings))
	}
	if got := f.Mappings[1].Source.Nouns[0]; got != "hw3.s0.c0" {
		t.Fatalf("node1 hosted by %q, want hw3.s0.c0", got)
	}
}

func TestFromTopologyTorusWrapLinks(t *testing.T) {
	topo := &machine.Topology{GridX: 4, GridY: 1, Torus: true}
	f := FromTopology(topo, []int{0, 1, 2, 3}, 4)
	var names []string
	for _, noun := range f.Nouns {
		if noun.Parent == RootLinks {
			names = append(names, noun.Name)
		}
	}
	// A 4-ring has 4 links including the wrap link_hw0_hw3.
	if len(names) != 4 {
		t.Fatalf("links = %v, want 4 on a 4-ring", names)
	}
	found := false
	for _, n := range names {
		if n == "link_hw0_hw3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrap link missing from %v", names)
	}
	// Flat hierarchy: leaves are the hw nodes themselves.
	if got := LeafNoun(topo, 2); got != "hw2" {
		t.Fatalf("LeafNoun = %q, want hw2", got)
	}
}

func TestFromTopologyComposesWithListing(t *testing.T) {
	lf, err := FromListing(strings.NewReader(listingOf(t, false)))
	if err != nil {
		t.Fatal(err)
	}
	topo := &machine.Topology{GridX: 2, GridY: 1}
	tf := FromTopology(topo, []int{0, 1}, 2)
	merged := &pif.File{
		Levels:   append(append([]pif.LevelRecord(nil), lf.Levels...), tf.Levels...),
		Nouns:    append(append([]pif.NounRecord(nil), lf.Nouns...), tf.Nouns...),
		Verbs:    append(append([]pif.VerbRecord(nil), lf.Verbs...), tf.Verbs...),
		Mappings: append(append([]pif.MappingRecord(nil), lf.Mappings...), tf.Mappings...),
	}
	if _, err := pif.Load(merged); err != nil {
		t.Fatalf("merged listing+topology PIF does not load: %v", err)
	}
}
