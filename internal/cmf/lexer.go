package cmf

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError reports a lexical or parse error with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("cmf: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenises source. Keywords and identifiers are case-insensitive and
// normalised to upper case (Fortran tradition); '!' starts a comment to
// end of line; newlines are significant (statement separators).
func lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	emit := func(k TokKind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			// Collapse runs of blank/comment lines to one newline token.
			if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
				emit(TokNewline, "")
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '!':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '+':
			emit(TokPlus, "+")
			i++
		case c == '-':
			emit(TokMinus, "-")
			i++
		case c == '*':
			emit(TokStar, "*")
			i++
		case c == '/':
			if i+1 < n && src[i+1] == '=' {
				emit(TokNE, "/=")
				i += 2
			} else {
				emit(TokSlash, "/")
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(TokGE, ">=")
				i += 2
			} else {
				emit(TokGT, ">")
				i++
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(TokLE, "<=")
				i += 2
			} else {
				emit(TokLT, "<")
				i++
			}
		case c == '(':
			emit(TokLParen, "(")
			i++
		case c == ')':
			emit(TokRParen, ")")
			i++
		case c == ',':
			emit(TokComma, ",")
			i++
		case c == '=':
			if i+1 < n && src[i+1] == '=' {
				emit(TokEQ, "==")
				i += 2
			} else {
				emit(TokAssign, "=")
				i++
			}
		case c == ':':
			emit(TokColon, ":")
			i++
		case c >= '0' && c <= '9' || c == '.':
			start := i
			seenDot := false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && i+1 < n {
					j := i + 1
					if src[j] == '+' || src[j] == '-' {
						j++
					}
					if j < n && src[j] >= '0' && src[j] <= '9' {
						i = j + 1
						for i < n && src[i] >= '0' && src[i] <= '9' {
							i++
						}
						continue
					}
				}
				break
			}
			if i < n && (src[i] == '.' || isAlpha(src[i])) {
				return nil, errf(line, "malformed number starting %q", src[start:i+1])
			}
			text := src[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, errf(line, "malformed number %q", text)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: text, Num: v, Line: line})
		case isAlpha(c):
			start := i
			for i < n && (isAlpha(src[i]) || src[i] >= '0' && src[i] <= '9' || src[i] == '_') {
				i++
			}
			name := strings.ToUpper(src[start:i])
			if k, ok := keywords[name]; ok {
				emit(k, name)
			} else {
				emit(TokIdent, name)
			}
		default:
			return nil, errf(line, "unexpected character %q", string(c))
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
		emit(TokNewline, "")
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
