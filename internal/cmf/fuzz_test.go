package cmf

import (
	"strings"
	"testing"
)

// FuzzCompile drives the full parse + semantic check + lowering
// pipeline with arbitrary source. Any input may be rejected, but none
// may panic: the compiler ingests user programs.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"PROGRAM p\nREAL A(8)\nREAL S\nFORALL (I = 1:8) A(I) = I\nS = SUM(A)\nEND\n",
		"PROGRAM p\nREAL A(8)\nREAL B(8)\nB = CSHIFT(A, 1)\nEND\n",
		"PROGRAM p\nREAL A(4)\nWHERE (A > 2.0) A = A * 0.5\nEND\n",
		"PROGRAM p\nINTEGER K\nDO K = 1, 3\nPRINT *, K\nEND DO\nEND\n",
		"PROGRAM p\nREAL A(8)\nA = A + SQRT(A)\nEND\n",
		"PROGRAM p\nEND",
		"",
		"FORALL FORALL (",
		"PROGRAM p\nREAL A(0)\nEND\n",
		"PROGRAM p\nREAL A(8)\nA = B\nEND\n",
	}
	for _, s := range seeds {
		f.Add(s, false)
		f.Add(s, true)
	}
	f.Fuzz(func(t *testing.T, src string, fuse bool) {
		compiled, err := CompileSource(src, Options{Fuse: fuse})
		if err == nil && compiled == nil {
			t.Fatal("nil Compiled without error")
		}
		if err != nil && strings.Contains(err.Error(), "cmf: invalid program") {
			// The recover guard is for hand-built ASTs; parsed source
			// reaching it means a semantic check panicked.
			t.Fatalf("parsed source tripped the compiler's panic guard: %v", err)
		}
	})
}
