package cmf

import (
	"testing"
	"testing/quick"
)

// Parsers must reject arbitrary input with an error, never a panic: the
// tool ingests user programs.

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Parse(junk)
		_, _ = Parse("PROGRAM p\n" + junk + "\nEND\n")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileNeverPanicsProperty(t *testing.T) {
	f := func(body string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = CompileSource("PROGRAM p\nREAL A(8)\n"+body+"\nEND\n", Options{Fuse: true})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Structured junk: random token soup drawn from the language's own
// vocabulary stresses the parser deeper than raw bytes.
func TestParseTokenSoupProperty(t *testing.T) {
	vocab := []string{
		"PROGRAM", "END", "REAL", "INTEGER", "FORALL", "DO", "PRINT", "WHERE",
		"A", "B", "I", "SUM", "CSHIFT", "(", ")", ",", "=", ":", "+", "-",
		"*", "/", "1", "2.5", ">", "<", ">=", "==", "/=", "\n",
	}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		src := ""
		for _, p := range picks {
			src += vocab[int(p)%len(vocab)] + " "
		}
		_, _ = CompileSource(src, Options{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
