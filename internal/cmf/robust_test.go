package cmf

import (
	"testing"
	"testing/quick"
)

// Parsers must reject arbitrary input with an error, never a panic: the
// tool ingests user programs.

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Parse(junk)
		_, _ = Parse("PROGRAM p\n" + junk + "\nEND\n")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileNeverPanicsProperty(t *testing.T) {
	f := func(body string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = CompileSource("PROGRAM p\nREAL A(8)\n"+body+"\nEND\n", Options{Fuse: true})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Structured junk: random token soup drawn from the language's own
// vocabulary stresses the parser deeper than raw bytes.
func TestParseTokenSoupProperty(t *testing.T) {
	vocab := []string{
		"PROGRAM", "END", "REAL", "INTEGER", "FORALL", "DO", "PRINT", "WHERE",
		"A", "B", "I", "SUM", "CSHIFT", "(", ")", ",", "=", ":", "+", "-",
		"*", "/", "1", "2.5", ">", "<", ">=", "==", "/=", "\n",
	}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		src := ""
		for _, p := range picks {
			src += vocab[int(p)%len(vocab)] + " "
		}
		_, _ = CompileSource(src, Options{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// alienExpr is an Expr implementation foreign to this package, as a
// caller embedding the compiler might hand-build.
type alienExpr struct{}

func (alienExpr) String() string { return "<alien>" }

// Compile accepts hand-built Programs, so malformed ASTs must come
// back as errors — the default branch in exprRefs used to panic with
// "unknown expr node" instead.
func TestCompileHandBuiltProgramErrors(t *testing.T) {
	scalar := func(rhs Expr) *Program {
		return &Program{Name: "p", Body: []Stmt{
			&Decl{Ln: 2, Name: "S"},
			&Assign{Ln: 3, LHS: "S", RHS: rhs},
		}}
	}
	array := func(rhs Expr) *Program {
		return &Program{Name: "p", Body: []Stmt{
			&Decl{Ln: 2, Name: "A", Dims: []int{8}},
			&Assign{Ln: 3, LHS: "A", RHS: rhs},
		}}
	}
	cases := []struct {
		name string
		prog *Program
	}{
		{"nil program", nil},
		{"nil scalar rhs", scalar(nil)},
		{"alien scalar rhs", scalar(alienExpr{})},
		{"nil inside binary", scalar(&Binary{Op: '+', L: &Num{Val: 1}, R: nil})},
		{"alien call arg", scalar(&Call{Fn: "SQRT", Args: []Expr{alienExpr{}}})},
		{"nil array rhs", array(nil)},
		{"alien array rhs", array(alienExpr{})},
		{"nil forall rhs", &Program{Name: "p", Body: []Stmt{
			&Decl{Ln: 2, Name: "A", Dims: []int{8}},
			&Forall{Ln: 3, Var: "I", Lo: 1, Hi: 8, LHS: "A", RHS: nil},
		}}},
		{"alien where cond", &Program{Name: "p", Body: []Stmt{
			&Decl{Ln: 2, Name: "A", Dims: []int{8}},
			&Where{Ln: 3, CondL: alienExpr{}, CondOp: ">", CondR: &Num{}, LHS: "A", RHS: &Ref{Name: "A"}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile panicked: %v", r)
				}
			}()
			if _, err := Compile(tc.prog, Options{}); err == nil {
				t.Fatal("Compile accepted a malformed program")
			}
		})
	}
}
