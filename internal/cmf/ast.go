package cmf

import (
	"fmt"
	"strings"
)

// Program is a parsed (not yet semantically checked) program.
type Program struct {
	Name string
	Body []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	Line() int
	String() string
}

// Decl declares a scalar or a parallel array (when Dims is non-empty).
type Decl struct {
	Ln    int
	Name  string
	IsInt bool
	Dims  []int
}

// Line returns the source line.
func (d *Decl) Line() int { return d.Ln }

// String reconstructs the declaration.
func (d *Decl) String() string {
	kw := "REAL"
	if d.IsInt {
		kw = "INTEGER"
	}
	if len(d.Dims) == 0 {
		return fmt.Sprintf("%s %s", kw, d.Name)
	}
	dims := make([]string, len(d.Dims))
	for i, v := range d.Dims {
		dims[i] = fmt.Sprint(v)
	}
	return fmt.Sprintf("%s %s(%s)", kw, d.Name, strings.Join(dims, ", "))
}

// Assign is "LHS = RHS" where LHS is a scalar or whole-array name.
type Assign struct {
	Ln  int
	LHS string
	RHS Expr
}

// Line returns the source line.
func (a *Assign) Line() int { return a.Ln }

// String reconstructs the assignment.
func (a *Assign) String() string { return fmt.Sprintf("%s = %s", a.LHS, a.RHS) }

// Forall is "FORALL (V = Lo:Hi) LHS(V) = RHS".
type Forall struct {
	Ln     int
	Var    string
	Lo, Hi int
	LHS    string
	RHS    Expr
}

// Line returns the source line.
func (f *Forall) Line() int { return f.Ln }

// String reconstructs the statement.
func (f *Forall) String() string {
	return fmt.Sprintf("FORALL (%s = %d:%d) %s(%s) = %s", f.Var, f.Lo, f.Hi, f.LHS, f.Var, f.RHS)
}

// DoLoop is a serial control-processor loop "DO V = Lo, Hi ... END DO".
type DoLoop struct {
	Ln     int
	Var    string
	Lo, Hi int
	Body   []Stmt
}

// Line returns the source line.
func (d *DoLoop) Line() int { return d.Ln }

// String renders the loop header.
func (d *DoLoop) String() string {
	return fmt.Sprintf("DO %s = %d, %d", d.Var, d.Lo, d.Hi)
}

// Where is a masked parallel assignment: "WHERE (L op R) LHS = RHS".
// Elements of LHS are updated only where the elementwise condition holds
// (CM Fortran's WHERE construct, single-statement form).
type Where struct {
	Ln     int
	CondL  Expr
	CondOp string // one of > < >= <= == /=
	CondR  Expr
	LHS    string
	RHS    Expr
}

// Line returns the source line.
func (w *Where) Line() int { return w.Ln }

// String reconstructs the statement.
func (w *Where) String() string {
	return fmt.Sprintf("WHERE (%s %s %s) %s = %s", w.CondL, w.CondOp, w.CondR, w.LHS, w.RHS)
}

// Print is "PRINT *, expr" — a serial statement on the control processor.
type Print struct {
	Ln  int
	Arg Expr
}

// Line returns the source line.
func (p *Print) Line() int { return p.Ln }

// String reconstructs the statement.
func (p *Print) String() string { return fmt.Sprintf("PRINT *, %s", p.Arg) }

// Expr is an expression node.
type Expr interface {
	String() string
}

// Num is a numeric literal.
type Num struct{ Val float64 }

// String renders the literal.
func (n *Num) String() string {
	s := fmt.Sprintf("%g", n.Val)
	return s
}

// Ref names a scalar, loop variable, or whole array.
type Ref struct{ Name string }

// String renders the name.
func (r *Ref) String() string { return r.Name }

// Index is "NAME(VAR)" inside a FORALL body.
type Index struct {
	Name string
	Var  string
}

// String renders the indexed reference.
func (ix *Index) String() string { return fmt.Sprintf("%s(%s)", ix.Name, ix.Var) }

// Unary is unary minus.
type Unary struct{ X Expr }

// String renders the negation.
func (u *Unary) String() string { return fmt.Sprintf("-%s", u.X) }

// Binary is a binary arithmetic operation; Op is one of + - * /.
type Binary struct {
	Op   byte
	L, R Expr
}

// String renders with explicit parentheses to keep round-trips exact.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// Call is an intrinsic function call.
type Call struct {
	Fn   string
	Args []Expr
}

// String renders the call.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// Intrinsic classification used by semantic analysis and lowering.
var reductionIntrinsics = map[string]bool{"SUM": true, "MAXVAL": true, "MINVAL": true, "DOT_PRODUCT": true}
var transformIntrinsics = map[string]bool{
	"CSHIFT": true, "EOSHIFT": true, "TRANSPOSE": true, "SCAN": true, "SORT": true,
}
var elementwiseIntrinsics = map[string]bool{"SQRT": true, "ABS": true, "EXP": true, "LOG": true}
