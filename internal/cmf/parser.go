package cmf

import "fmt"

// Parse lexes and parses source into a Program. Semantic checking (and
// lowering to node code blocks) happens in Compile.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, "expected %v, got %v", k, t.Kind)
	}
	p.pos++
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.pos++
	}
}

func (p *parser) parseProgram() (*Program, error) {
	p.skipNewlines()
	if _, err := p.expect(TokProgram); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	prog := &Program{Name: nameTok.Text}
	body, err := p.parseStmts(false)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	// parseStmts stopped at END.
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.cur().Kind != TokEOF {
		return nil, errf(p.cur().Line, "unexpected %v after END", p.cur().Kind)
	}
	return prog, nil
}

// parseStmts parses statements until an END token. When inDo is true the
// END must be followed by DO (closing "END DO"); the caller consumes the
// END either way.
func (p *parser) parseStmts(inDo bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		t := p.cur()
		switch t.Kind {
		case TokEOF:
			return nil, errf(t.Line, "missing END")
		case TokEnd:
			// Peek: "END DO" closes a loop; bare "END" closes the program.
			isEndDo := p.toks[p.pos+1].Kind == TokDo
			if inDo && !isEndDo {
				return nil, errf(t.Line, "expected END DO to close loop")
			}
			if !inDo && isEndDo {
				return nil, errf(t.Line, "END DO without DO")
			}
			return out, nil
		case TokReal, TokInteger:
			s, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case TokForall:
			s, err := p.parseForall()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case TokDo:
			s, err := p.parseDo()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case TokPrint:
			s, err := p.parsePrint()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case TokWhere:
			s, err := p.parseWhere()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		case TokIdent:
			s, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		default:
			return nil, errf(t.Line, "unexpected %v at start of statement", t.Kind)
		}
	}
}

func (p *parser) parseDecl() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &Decl{Ln: kw.Line, Name: name.Text, IsInt: kw.Kind == TokInteger}
	if p.cur().Kind == TokLParen {
		p.pos++
		for {
			dim, err := p.intLiteral()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
			if p.cur().Kind == TokComma {
				p.pos++
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(d.Dims) > 2 {
			return nil, errf(kw.Line, "arrays of rank > 2 are not supported (got rank %d)", len(d.Dims))
		}
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return d, nil
}

// intLiteral parses a (non-negative) integer literal.
func (p *parser) intLiteral() (int, error) {
	t, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	v := int(t.Num)
	if float64(v) != t.Num {
		return 0, errf(t.Line, "expected integer, got %s", t.Text)
	}
	return v, nil
}

// signedIntLiteral allows a leading minus.
func (p *parser) signedIntLiteral() (int, error) {
	neg := false
	if p.cur().Kind == TokMinus {
		neg = true
		p.pos++
	}
	v, err := p.intLiteral()
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseAssign() (Stmt, error) {
	name := p.next()
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Assign{Ln: name.Line, LHS: name.Text, RHS: rhs}, nil
}

func (p *parser) parseForall() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.signedIntLiteral()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	hi, err := p.signedIntLiteral()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	lhs, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	ixVar, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if ixVar.Text != v.Text {
		return nil, errf(kw.Line, "FORALL target must be indexed by %s, got %s", v.Text, ixVar.Text)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Forall{Ln: kw.Line, Var: v.Text, Lo: lo, Hi: hi, LHS: lhs.Text, RHS: rhs}, nil
}

func (p *parser) parseDo() (Stmt, error) {
	kw := p.next()
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.signedIntLiteral()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	hi, err := p.signedIntLiteral()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(true)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &DoLoop{Ln: kw.Line, Var: v.Text, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) parseWhere() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	opTok := p.cur()
	var op string
	switch opTok.Kind {
	case TokGT:
		op = ">"
	case TokLT:
		op = "<"
	case TokGE:
		op = ">="
	case TokLE:
		op = "<="
	case TokEQ:
		op = "=="
	case TokNE:
		op = "/="
	default:
		return nil, errf(opTok.Line, "expected comparison operator in WHERE, got %v", opTok.Kind)
	}
	p.pos++
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	lhs, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Where{Ln: kw.Line, CondL: left, CondOp: op, CondR: right, LHS: lhs.Text, RHS: rhs}, nil
}

func (p *parser) parsePrint() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokStar); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Print{Ln: kw.Line, Arg: arg}, nil
}

// parseExpr: expr := term (('+'|'-') term)*
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokPlus:
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '+', L: left, R: r}
		case TokMinus:
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '-', L: left, R: r}
		default:
			return left, nil
		}
	}
}

// parseTerm: term := factor (('*'|'/') factor)*
func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokStar:
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '*', L: left, R: r}
		case TokSlash:
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: '/', L: left, R: r}
		default:
			return left, nil
		}
	}
}

// parseFactor: number | name | name(args) | (expr) | -factor
func (p *parser) parseFactor() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		return &Num{Val: t.Num}, nil
	case TokMinus:
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Unary{X: x}, nil
	case TokLParen:
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.pos++
		if p.cur().Kind != TokLParen {
			return &Ref{Name: t.Text}, nil
		}
		p.pos++
		// Either an intrinsic call or an indexed reference NAME(VAR).
		if isIntrinsic(t.Text) {
			var args []Expr
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().Kind == TokComma {
					p.pos++
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Call{Fn: t.Text, Args: args}, nil
		}
		ix, err := p.expect(TokIdent)
		if err != nil {
			return nil, errf(t.Line, "expected index variable in %s(...)", t.Text)
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &Index{Name: t.Text, Var: ix.Text}, nil
	default:
		return nil, errf(t.Line, "unexpected %v in expression", t.Kind)
	}
}

func isIntrinsic(name string) bool {
	return reductionIntrinsics[name] || transformIntrinsics[name] || elementwiseIntrinsics[name]
}

// walkStmts visits every statement, descending into DO bodies.
func walkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		if d, ok := s.(*DoLoop); ok {
			walkStmts(d.Body, fn)
		}
	}
}

// exprRefs collects identifier references in evaluation order. A nil
// or foreign Expr node — possible when a caller hands Compile a
// hand-built Program — is reported as an error, never a panic.
func exprRefs(e Expr, fn func(name string, indexed bool)) error {
	switch x := e.(type) {
	case *Num:
	case *Ref:
		fn(x.Name, false)
	case *Index:
		fn(x.Name, true)
	case *Unary:
		return exprRefs(x.X, fn)
	case *Binary:
		if err := exprRefs(x.L, fn); err != nil {
			return err
		}
		return exprRefs(x.R, fn)
	case *Call:
		for _, a := range x.Args {
			if err := exprRefs(a, fn); err != nil {
				return err
			}
		}
	case nil:
		return fmt.Errorf("cmf: nil expression node")
	default:
		return fmt.Errorf("cmf: unknown expression node %T", e)
	}
	return nil
}
