// Package cmf implements a small data-parallel Fortran dialect standing
// in for CM Fortran, the high-level language of the paper's case study
// (Section 6). It provides a lexer, parser, semantic checker, a lowering
// pass that assigns parallel statements to compiler-generated node code
// blocks (with optional fusion, which produces the one-to-many mappings
// of Figure 2), a compiler-listing emitter whose output cmd/pifgen parses
// into PIF files, and an executor that runs compiled programs on the
// simulated CM Run-Time System (package cmrts).
//
// The dialect covers what the paper's discussion needs: parallel array
// declarations, parallel assignment statements with elementwise
// arithmetic, the reduction intrinsics SUM/MAXVAL/MINVAL, the
// transformation intrinsics CSHIFT/EOSHIFT/TRANSPOSE, SCAN and SORT,
// FORALL over one-dimensional arrays, serial DO loops, and PRINT.
package cmf

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokNumber
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokLParen
	TokRParen
	TokComma
	TokAssign
	TokColon
	TokGT // >
	TokLT // <
	TokGE // >=
	TokLE // <=
	TokEQ // ==
	TokNE // /= (Fortran inequality)
	// Keywords.
	TokProgram
	TokEnd
	TokReal
	TokInteger
	TokForall
	TokDo
	TokPrint
	TokWhere
)

// String names the kind for diagnostics.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of file"
	case TokNewline:
		return "end of line"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokAssign:
		return "'='"
	case TokColon:
		return "':'"
	case TokGT:
		return "'>'"
	case TokLT:
		return "'<'"
	case TokGE:
		return "'>='"
	case TokLE:
		return "'<='"
	case TokEQ:
		return "'=='"
	case TokNE:
		return "'/='"
	case TokProgram:
		return "PROGRAM"
	case TokEnd:
		return "END"
	case TokReal:
		return "REAL"
	case TokInteger:
		return "INTEGER"
	case TokForall:
		return "FORALL"
	case TokDo:
		return "DO"
	case TokPrint:
		return "PRINT"
	case TokWhere:
		return "WHERE"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical token with its source line.
type Token struct {
	Kind TokKind
	Text string // identifier name (upper-cased) or number literal text
	Num  float64
	Line int
}

var keywords = map[string]TokKind{
	"PROGRAM": TokProgram,
	"END":     TokEnd,
	"REAL":    TokReal,
	"INTEGER": TokInteger,
	"FORALL":  TokForall,
	"DO":      TokDo,
	"PRINT":   TokPrint,
	"WHERE":   TokWhere,
}
