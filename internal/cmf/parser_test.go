package cmf

import (
	"strings"
	"testing"
	"testing/quick"
)

const tinyProgram = `
PROGRAM corr
  REAL A(8)
  REAL ASUM
  A = 1.5
  ASUM = SUM(A)
END
`

func TestLexBasics(t *testing.T) {
	toks, err := lex("A = B + 2.5e1 ! comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIdent, TokAssign, TokIdent, TokPlus, TokNumber, TokNewline, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[4].Num != 25 {
		t.Fatalf("number = %g", toks[4].Num)
	}
}

func TestLexCaseInsensitive(t *testing.T) {
	toks, err := lex("program foo\nreal a\nEnd\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokProgram || toks[1].Text != "FOO" {
		t.Fatalf("toks = %v", toks[:2])
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := lex("A = 1\n\n! comment\nB = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	var bLine int
	for _, tok := range toks {
		if tok.Kind == TokIdent && tok.Text == "B" {
			bLine = tok.Line
		}
	}
	if bLine != 4 {
		t.Fatalf("B on line %d, want 4", bLine)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("A = @\n"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := lex("A = 1.2.3\n"); err == nil {
		t.Fatal("malformed number accepted")
	}
}

func TestParseTinyProgram(t *testing.T) {
	prog, err := Parse(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "CORR" {
		t.Fatalf("name = %q", prog.Name)
	}
	if len(prog.Body) != 4 {
		t.Fatalf("body has %d statements", len(prog.Body))
	}
	if d, ok := prog.Body[0].(*Decl); !ok || d.Name != "A" || len(d.Dims) != 1 || d.Dims[0] != 8 {
		t.Fatalf("first stmt = %#v", prog.Body[0])
	}
	if a, ok := prog.Body[3].(*Assign); !ok || a.LHS != "ASUM" {
		t.Fatalf("fourth stmt = %#v", prog.Body[3])
	} else if call, ok := a.RHS.(*Call); !ok || call.Fn != "SUM" {
		t.Fatalf("RHS = %#v", a.RHS)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("PROGRAM p\nREAL X\nX = 1 + 2 * 3 - 4 / 2\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Body[1].(*Assign).RHS.String()
	if got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Fatalf("precedence tree = %s", got)
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	prog, err := Parse("PROGRAM p\nREAL X\nX = -(1 + 2) * -3\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Body[1].(*Assign).RHS.String()
	if got != "(-(1 + 2) * -3)" {
		t.Fatalf("tree = %s", got)
	}
}

func TestParseForall(t *testing.T) {
	prog, err := Parse("PROGRAM p\nREAL A(10)\nREAL B(10)\nFORALL (I = 1:10) A(I) = B(I) * I\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := prog.Body[2].(*Forall)
	if !ok {
		t.Fatalf("stmt = %#v", prog.Body[2])
	}
	if f.Var != "I" || f.Lo != 1 || f.Hi != 10 || f.LHS != "A" {
		t.Fatalf("forall = %+v", f)
	}
	if f.String() != "FORALL (I = 1:10) A(I) = (B(I) * I)" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestParseDoLoop(t *testing.T) {
	prog, err := Parse(`PROGRAM p
REAL A(4)
DO K = 1, 3
  A = A + 1
END DO
END
`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := prog.Body[1].(*DoLoop)
	if !ok || d.Var != "K" || d.Lo != 1 || d.Hi != 3 || len(d.Body) != 1 {
		t.Fatalf("do = %#v", prog.Body[1])
	}
}

func TestParseNestedDo(t *testing.T) {
	prog, err := Parse(`PROGRAM p
REAL A(4)
DO K = 1, 2
DO J = 1, 2
A = A + 1
END DO
END DO
END
`)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Body[1].(*DoLoop)
	if _, ok := outer.Body[0].(*DoLoop); !ok {
		t.Fatal("nested DO not parsed")
	}
}

func TestParsePrint(t *testing.T) {
	prog, err := Parse("PROGRAM p\nREAL X\nX = 2\nPRINT *, X * 2\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := prog.Body[2].(*Print)
	if !ok {
		t.Fatalf("stmt = %#v", prog.Body[2])
	}
	if p.String() != "PRINT *, (X * 2)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no PROGRAM":        "REAL A(4)\nEND\n",
		"missing END":       "PROGRAM p\nREAL A(4)\n",
		"END DO no DO":      "PROGRAM p\nEND DO\nEND\n",
		"DO without END DO": "PROGRAM p\nDO K = 1, 2\nA = 1\nEND\n",
		"rank 3 array":      "PROGRAM p\nREAL A(2,2,2)\nEND\n",
		"bad dim":           "PROGRAM p\nREAL A(2.5)\nEND\n",
		"junk after END":    "PROGRAM p\nEND\nREAL X\n",
		"forall bad var":    "PROGRAM p\nREAL A(4)\nFORALL (I = 1:4) A(J) = 1\nEND\n",
		"stmt start":        "PROGRAM p\n+ 3\nEND\n",
		"no newline":        "PROGRAM p REAL X\nEND\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("PROGRAM p\nREAL A(4)\nA = )\nEND\n")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if se.Line != 3 {
		t.Fatalf("error line = %d, want 3 (%v)", se.Line, se)
	}
}

// Property: the String rendering of a parsed expression reparses to an
// identical rendering (round-trip stability).
func TestExprRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		src := "PROGRAM p\nREAL X\nX = " +
			strings.Join([]string{num(a), num(b), num(c)}, " + ") +
			" * (" + num(a) + " - " + num(c) + ")\nEND\n"
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		text1 := p1.Body[1].(*Assign).String()
		p2, err := Parse("PROGRAM p\nREAL X\nX = " + p1.Body[1].(*Assign).RHS.String() + "\nEND\n")
		if err != nil {
			return false
		}
		text2 := p2.Body[1].(*Assign).String()
		return text1 == text2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func num(v uint8) string {
	return strings.TrimSpace((&Num{Val: float64(v)}).String())
}
