package cmf

import (
	"fmt"
	"io"
	"math"

	"nvmap/internal/cmrts"
	"nvmap/internal/vtime"
)

// serialCost is the control-processor cost charged per serial statement.
const serialCost = 500 * vtime.Nanosecond

// Executor runs a compiled program on the simulated CM Run-Time System.
// Every parallel statement executes inside its node code block's
// dispatch, so the dyninst points the tool may have instrumented (block
// entry/exit, runtime routines, mapping points) fire exactly as they
// would in the real system.
type Executor struct {
	cp      *Compiled
	rt      *cmrts.Runtime
	out     io.Writer
	scalars map[string]float64
	arrays  map[string]*cmrts.Array
	loops   map[string]float64
}

// NewExecutor binds a compiled program to a runtime. out receives PRINT
// output; nil discards it.
func NewExecutor(cp *Compiled, rt *cmrts.Runtime, out io.Writer) *Executor {
	if out == nil {
		out = io.Discard
	}
	return &Executor{
		cp:      cp,
		rt:      rt,
		out:     out,
		scalars: make(map[string]float64),
		arrays:  make(map[string]*cmrts.Array),
		loops:   make(map[string]float64),
	}
}

// Scalar reads a scalar's final value (after Run).
func (e *Executor) Scalar(name string) (float64, bool) {
	v, ok := e.scalars[name]
	return v, ok
}

// ArrayOf returns the runtime array bound to a source-level name.
func (e *Executor) ArrayOf(name string) (*cmrts.Array, bool) {
	a, ok := e.arrays[name]
	return a, ok
}

// Run executes the program to completion. Arrays remain allocated
// afterwards so the tool can keep presenting them; call FreeAll to
// release them through the runtime's mapping points.
func (e *Executor) Run() error {
	return e.execScope(e.cp.Prog.Body)
}

// FreeAll deallocates every array the program allocated.
func (e *Executor) FreeAll() error {
	for _, name := range e.cp.ArrayOrder {
		if a, ok := e.arrays[name]; ok {
			if err := e.rt.Free(a); err != nil {
				return err
			}
			delete(e.arrays, name)
		}
	}
	return nil
}

func (e *Executor) execScope(body []Stmt) error {
	for i := 0; i < len(body); i++ {
		s := body[i]
		switch st := s.(type) {
		case *Decl:
			if err := e.execDecl(st); err != nil {
				return err
			}
		case *DoLoop:
			for v := st.Lo; v <= st.Hi; v++ {
				e.loops[st.Var] = float64(v)
				if err := e.execScope(st.Body); err != nil {
					return err
				}
			}
			delete(e.loops, st.Var)
		case *Print:
			val, err := e.evalScalar(st.Arg)
			if err != nil {
				return err
			}
			e.rt.Machine().AdvanceCP(serialCost)
			fmt.Fprintf(e.out, " %g\n", val)
		default:
			info := e.cp.Infos[s.Line()]
			if info == nil {
				return errf(s.Line(), "internal: no semantic info at execution")
			}
			if info.Kind == KindSerial {
				if err := e.execSerial(info); err != nil {
					return err
				}
				continue
			}
			// Parallel statement: execute its whole block at the block's
			// first statement; later statements of a fused block were
			// already executed within the dispatch.
			if info.Block.Stmts[0] != s {
				continue
			}
			if err := e.execBlock(info.Block); err != nil {
				return err
			}
			// Skip the other statements of the block in this pass.
			for i+1 < len(body) {
				next, ok := e.cp.Infos[body[i+1].Line()]
				if !ok || next.Block != info.Block {
					break
				}
				i++
			}
		}
	}
	return nil
}

func (e *Executor) execDecl(d *Decl) error {
	if len(d.Dims) == 0 {
		e.scalars[d.Name] = 0
		return nil
	}
	a, err := e.rt.Allocate(d.Name, d.Dims)
	if err != nil {
		return err
	}
	e.arrays[d.Name] = a
	return nil
}

func (e *Executor) execSerial(info *StmtInfo) error {
	st, ok := info.Stmt.(*Assign)
	if !ok {
		return errf(info.Stmt.Line(), "internal: serial statement %T", info.Stmt)
	}
	v, err := e.evalScalar(st.RHS)
	if err != nil {
		return err
	}
	e.rt.Machine().AdvanceCP(serialCost)
	e.scalars[st.LHS] = v
	return nil
}

// execBlock dispatches a node code block and executes its statements.
func (e *Executor) execBlock(b *Block) error {
	ids := make([]cmrts.ArrayID, 0, len(b.Arrays))
	for _, name := range b.Arrays {
		if a, ok := e.arrays[name]; ok {
			ids = append(ids, a.ID)
		}
	}
	return e.rt.DispatchBlock(b.Name, ids, func() error {
		for _, s := range b.Stmts {
			if err := e.execParallelStmt(s, b); err != nil {
				return err
			}
		}
		return nil
	})
}

func (e *Executor) execParallelStmt(s Stmt, b *Block) error {
	tag := b.Name
	switch st := s.(type) {
	case *Forall:
		return e.execForall(st, tag)
	case *Where:
		return e.execWhere(st, tag)
	case *Assign:
		info := e.cp.Infos[st.Ln]
		switch info.Kind {
		case KindCompute:
			return e.execCompute(st, tag)
		case KindReduce:
			return e.execReduce(st, info, tag)
		case KindTransform:
			return e.execTransform(st, info, tag)
		}
	}
	return errf(s.Line(), "internal: unexpected parallel statement %T", s)
}

// execCompute runs an elementwise parallel assignment. A right-hand side
// with no array operands is a scalar fill: the control processor
// broadcasts the value to the nodes (CM Fortran semantics for scalar
// promotion), which is where Figure 9's Broadcasts come from.
func (e *Executor) execCompute(st *Assign, tag string) error {
	dst := e.arrays[st.LHS]
	var leaves []*cmrts.Array
	eval, flops, err := e.compileElem(st.RHS, &leaves, "")
	if err != nil {
		return err
	}
	if len(leaves) == 0 {
		return e.rt.Fill(dst, eval(nil, 0), tag)
	}
	// The evaluator reads in (never retains or mutates it), so the
	// runtime's per-node gather slice is used directly: sections of the
	// Elementwise may run on concurrent workers.
	return e.rt.Elementwise(tag, dst, leaves, flops, func(in []float64) float64 {
		return eval(in, 0)
	})
}

// execWhere runs a masked assignment: dst[i] = rhs[i] where the
// condition holds, unchanged elsewhere. The destination participates as
// a source so unmasked elements keep their values.
func (e *Executor) execWhere(st *Where, tag string) error {
	dst := e.arrays[st.LHS]
	var leaves []*cmrts.Array
	condL, fl1, err := e.compileElem(st.CondL, &leaves, "")
	if err != nil {
		return err
	}
	condR, fl2, err := e.compileElem(st.CondR, &leaves, "")
	if err != nil {
		return err
	}
	rhs, fl3, err := e.compileElem(st.RHS, &leaves, "")
	if err != nil {
		return err
	}
	// The old destination value is the final leaf.
	oldSlot := len(leaves)
	leaves = append(leaves, dst)
	cmp, err := comparator(st.CondOp)
	if err != nil {
		return err
	}
	return e.rt.Elementwise(tag, dst, leaves, fl1+fl2+fl3+1, func(in []float64) float64 {
		if cmp(condL(in, 0), condR(in, 0)) {
			return rhs(in, 0)
		}
		return in[oldSlot]
	})
}

func comparator(op string) (func(a, b float64) bool, error) {
	switch op {
	case ">":
		return func(a, b float64) bool { return a > b }, nil
	case "<":
		return func(a, b float64) bool { return a < b }, nil
	case ">=":
		return func(a, b float64) bool { return a >= b }, nil
	case "<=":
		return func(a, b float64) bool { return a <= b }, nil
	case "==":
		return func(a, b float64) bool { return a == b }, nil
	case "/=":
		return func(a, b float64) bool { return a != b }, nil
	default:
		return nil, fmt.Errorf("cmf: internal: unknown comparison %q", op)
	}
}

// execForall runs a FORALL statement as an indexed elementwise update.
func (e *Executor) execForall(st *Forall, tag string) error {
	dst := e.arrays[st.LHS]
	var leaves []*cmrts.Array
	eval, flops, err := e.compileElem(st.RHS, &leaves, st.Var)
	if err != nil {
		return err
	}
	// In a FORALL, leaves are read by flat index directly. The value
	// vector is per-node scratch (nodes run concurrently, elements within
	// a node do not), carved from one slab so the whole statement costs
	// two allocations instead of one per element.
	nodes := e.rt.Machine().Nodes()
	slab := make([]float64, nodes*len(leaves))
	scratch := make([][]float64, nodes)
	for n := range scratch {
		scratch[n] = slab[n*len(leaves) : (n+1)*len(leaves)]
	}
	return e.rt.ElementwiseIndexed(tag, dst, flops, func(node, flat int) float64 {
		vals := scratch[node]
		for k, a := range leaves {
			vals[k] = a.At(flat)
		}
		return eval(vals, float64(flat+1))
	})
}

func (e *Executor) execReduce(st *Assign, info *StmtInfo, tag string) error {
	call := st.RHS.(*Call)
	src := e.arrays[call.Args[0].(*Ref).Name]
	if info.Intrinsic == "DOT_PRODUCT" {
		other := e.arrays[call.Args[1].(*Ref).Name]
		v, err := e.rt.DotProduct(src, other, tag)
		if err != nil {
			return err
		}
		e.scalars[st.LHS] = v
		return nil
	}
	var op cmrts.ReduceOp
	switch info.Intrinsic {
	case "SUM":
		op = cmrts.OpSum
	case "MAXVAL":
		op = cmrts.OpMax
	case "MINVAL":
		op = cmrts.OpMin
	default:
		return errf(st.Ln, "internal: unknown reduction %s", info.Intrinsic)
	}
	v, err := e.rt.Reduce(src, op, tag)
	if err != nil {
		return err
	}
	e.scalars[st.LHS] = v
	return nil
}

func (e *Executor) execTransform(st *Assign, info *StmtInfo, tag string) error {
	call := st.RHS.(*Call)
	src := e.arrays[call.Args[0].(*Ref).Name]
	dst := e.arrays[st.LHS]

	// Materialise into the destination first when source and destination
	// differ (Fortran transform intrinsics return a new value).
	if dst != src {
		if err := e.rt.Elementwise(tag, dst, []*cmrts.Array{src}, 1,
			func(v []float64) float64 { return v[0] }); err != nil {
			return err
		}
	}

	intLitVal := func(ex Expr) int {
		switch a := ex.(type) {
		case *Num:
			return int(a.Val)
		case *Unary:
			return -int(a.X.(*Num).Val)
		}
		return 0
	}

	switch info.Intrinsic {
	case "CSHIFT":
		// CSHIFT(A, k)(i) = A(i+k): elements move left by k, i.e. the
		// element at flat index i lands at i-k.
		k := intLitVal(call.Args[1])
		return e.rt.Rotate(dst, -k, tag)
	case "EOSHIFT":
		k := intLitVal(call.Args[1])
		fill := 0.0
		if len(call.Args) == 3 {
			fill = call.Args[2].(*Num).Val
		}
		return e.rt.Shift(dst, -k, fill, tag)
	case "TRANSPOSE":
		if dst != src {
			// The copy laid the source's row-major data into dst; adopt
			// the source's logical shape before transposing so dst ends
			// with its declared (reversed) shape.
			copy(dst.Shape, src.Shape)
		}
		return e.rt.Transpose(dst, tag)
	case "SCAN":
		return e.rt.Scan(dst, cmrts.OpSum, tag)
	case "SORT":
		return e.rt.Sort(dst, tag)
	default:
		return errf(st.Ln, "internal: unknown transform %s", info.Intrinsic)
	}
}

// compileElem compiles an elementwise expression into an evaluator.
// Array leaves are appended to *leaves in evaluation order; the evaluator
// receives their per-element values in vals and the FORALL index value
// (1-based) in idx. Scalar and loop-variable references are captured at
// compile time — i.e., at statement execution, matching Fortran
// semantics. flops estimates per-element arithmetic work.
func (e *Executor) compileElem(ex Expr, leaves *[]*cmrts.Array, forallVar string) (func(vals []float64, idx float64) float64, int, error) {
	switch x := ex.(type) {
	case *Num:
		v := x.Val
		return func([]float64, float64) float64 { return v }, 0, nil
	case *Ref:
		if a, isArr := e.arrays[x.Name]; isArr {
			slot := len(*leaves)
			*leaves = append(*leaves, a)
			return func(vals []float64, _ float64) float64 { return vals[slot] }, 0, nil
		}
		if forallVar != "" && x.Name == forallVar {
			return func(_ []float64, idx float64) float64 { return idx }, 0, nil
		}
		v, err := e.evalScalar(x)
		if err != nil {
			return nil, 0, err
		}
		return func([]float64, float64) float64 { return v }, 0, nil
	case *Index:
		a, ok := e.arrays[x.Name]
		if !ok {
			return nil, 0, fmt.Errorf("cmf: internal: indexed array %s unbound", x.Name)
		}
		slot := len(*leaves)
		*leaves = append(*leaves, a)
		return func(vals []float64, _ float64) float64 { return vals[slot] }, 0, nil
	case *Unary:
		inner, fl, err := e.compileElem(x.X, leaves, forallVar)
		if err != nil {
			return nil, 0, err
		}
		return func(vals []float64, idx float64) float64 { return -inner(vals, idx) }, fl + 1, nil
	case *Binary:
		l, fl1, err := e.compileElem(x.L, leaves, forallVar)
		if err != nil {
			return nil, 0, err
		}
		r, fl2, err := e.compileElem(x.R, leaves, forallVar)
		if err != nil {
			return nil, 0, err
		}
		op := x.Op
		return func(vals []float64, idx float64) float64 {
			a, b := l(vals, idx), r(vals, idx)
			switch op {
			case '+':
				return a + b
			case '-':
				return a - b
			case '*':
				return a * b
			default:
				return a / b
			}
		}, fl1 + fl2 + 1, nil
	case *Call:
		inner, fl, err := e.compileElem(x.Args[0], leaves, forallVar)
		if err != nil {
			return nil, 0, err
		}
		fn, err := elemFn(x.Fn)
		if err != nil {
			return nil, 0, err
		}
		return func(vals []float64, idx float64) float64 { return fn(inner(vals, idx)) }, fl + 4, nil
	default:
		return nil, 0, fmt.Errorf("cmf: internal: unknown expression node %T", ex)
	}
}

func elemFn(name string) (func(float64) float64, error) {
	switch name {
	case "SQRT":
		return math.Sqrt, nil
	case "ABS":
		return math.Abs, nil
	case "EXP":
		return math.Exp, nil
	case "LOG":
		return math.Log, nil
	default:
		return nil, fmt.Errorf("cmf: internal: %s is not elementwise", name)
	}
}

// evalScalar evaluates a control-processor expression.
func (e *Executor) evalScalar(ex Expr) (float64, error) {
	switch x := ex.(type) {
	case *Num:
		return x.Val, nil
	case *Ref:
		if v, ok := e.scalars[x.Name]; ok {
			return v, nil
		}
		if v, ok := e.loops[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("cmf: internal: unbound scalar %s", x.Name)
	case *Unary:
		v, err := e.evalScalar(x.X)
		return -v, err
	case *Binary:
		l, err := e.evalScalar(x.L)
		if err != nil {
			return 0, err
		}
		r, err := e.evalScalar(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		default:
			return l / r, nil
		}
	case *Call:
		v, err := e.evalScalar(x.Args[0])
		if err != nil {
			return 0, err
		}
		fn, err := elemFn(x.Fn)
		if err != nil {
			return 0, err
		}
		return fn(v), nil
	default:
		return 0, fmt.Errorf("cmf: internal: unknown scalar expression %T", ex)
	}
}
