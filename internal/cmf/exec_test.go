package cmf

import (
	"math"
	"strings"
	"testing"

	"nvmap/internal/cmrts"
	"nvmap/internal/dyninst"
	"nvmap/internal/machine"
)

func runProgram(t *testing.T, src string, opts Options, nodes int) (*Executor, *cmrts.Runtime, string) {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, err := cmrts.New(m, inst, cmrts.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CompileSource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	ex := NewExecutor(cp, rt, &out)
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	return ex, rt, out.String()
}

// The paper's Figure 4 example: ASUM = SUM(A); BMAX = MAXVAL(B).
func TestRunFigure4(t *testing.T) {
	src := `PROGRAM hpf
REAL A(100)
REAL B(100)
REAL ASUM
REAL BMAX
FORALL (I = 1:100) A(I) = I
FORALL (I = 1:100) B(I) = 200 - I
ASUM = SUM(A)
BMAX = MAXVAL(B)
END
`
	ex, rt, _ := runProgram(t, src, Options{}, 4)
	if v, _ := ex.Scalar("ASUM"); v != 5050 {
		t.Fatalf("ASUM = %g, want 5050", v)
	}
	if v, _ := ex.Scalar("BMAX"); v != 199 {
		t.Fatalf("BMAX = %g, want 199", v)
	}
	// Each reduction dispatched its own node code block and reduced over
	// the machine.
	if rt.Count(cmrts.RoutineReduceSum) != 1 || rt.Count(cmrts.RoutineReduceMax) != 1 {
		t.Fatal("reductions did not reach the runtime")
	}
}

func TestRunArithmetic(t *testing.T) {
	src := `PROGRAM arith
REAL A(10)
REAL B(10)
REAL S
A = 3
B = A * 2 + 1
B = B / 2 - A
S = SUM(B)
PRINT *, S
END
`
	ex, _, out := runProgram(t, src, Options{}, 3)
	// B = (3*2+1)/2 - 3 = 0.5 each; SUM = 5.
	if v, _ := ex.Scalar("S"); v != 5 {
		t.Fatalf("S = %g", v)
	}
	if !strings.Contains(out, "5") {
		t.Fatalf("PRINT output = %q", out)
	}
}

func TestRunScalarStatements(t *testing.T) {
	src := `PROGRAM s
REAL X
REAL Y
X = 9
Y = SQRT(X) + 1
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	if v, _ := ex.Scalar("Y"); v != 4 {
		t.Fatalf("Y = %g", v)
	}
}

func TestRunDoLoopAccumulates(t *testing.T) {
	src := `PROGRAM loop
REAL A(8)
REAL S
A = 0
DO K = 1, 5
A = A + K
END DO
S = SUM(A)
END
`
	ex, rt, _ := runProgram(t, src, Options{}, 2)
	// A accumulates 1+2+3+4+5 = 15 per element; SUM = 120.
	if v, _ := ex.Scalar("S"); v != 120 {
		t.Fatalf("S = %g, want 120", v)
	}
	// The loop body's block dispatched once per iteration (plus A=0).
	if got := rt.Machine().Stats(0).Dispatches; got != 7 {
		t.Fatalf("dispatches = %d, want 7 (init + 5 iterations + reduce)", got)
	}
}

func TestRunTransforms(t *testing.T) {
	src := `PROGRAM tr
REAL A(6)
REAL B(6)
FORALL (I = 1:6) A(I) = I
B = CSHIFT(A, 2)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 3)
	b, _ := ex.ArrayOf("B")
	// CSHIFT(A,2)(i) = A(i+2): B = 3,4,5,6,1,2.
	want := []float64{3, 4, 5, 6, 1, 2}
	for i, v := range b.Flat() {
		if v != want[i] {
			t.Fatalf("B = %v, want %v", b.Flat(), want)
		}
	}
	// A unchanged by CSHIFT into B.
	a, _ := ex.ArrayOf("A")
	if a.At(0) != 1 {
		t.Fatal("CSHIFT modified its source")
	}
}

func TestRunEOShiftAndSort(t *testing.T) {
	src := `PROGRAM tr
REAL A(5)
REAL B(5)
FORALL (I = 1:5) A(I) = 6 - I
B = EOSHIFT(A, 1, 0)
A = SORT(A)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	a, _ := ex.ArrayOf("A")
	for i, v := range a.Flat() {
		if v != float64(i+1) {
			t.Fatalf("sorted A = %v", a.Flat())
		}
	}
	b, _ := ex.ArrayOf("B")
	// EOSHIFT(A,1)(i) = A(i+1), last filled: A was 5,4,3,2,1 -> B = 4,3,2,1,0.
	want := []float64{4, 3, 2, 1, 0}
	for i, v := range b.Flat() {
		if v != want[i] {
			t.Fatalf("B = %v, want %v", b.Flat(), want)
		}
	}
}

func TestRunTransposeIntoOtherArray(t *testing.T) {
	src := `PROGRAM tp
REAL M(2,3)
REAL T(3,2)
FORALL (I = 1:6) M(I) = I
T = TRANSPOSE(M)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	tr, _ := ex.ArrayOf("T")
	if tr.Shape[0] != 3 || tr.Shape[1] != 2 {
		t.Fatalf("T shape = %v", tr.Shape)
	}
	// M = [1 2 3; 4 5 6] -> T = [1 4; 2 5; 3 6] flat: 1,4,2,5,3,6.
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, v := range tr.Flat() {
		if v != want[i] {
			t.Fatalf("T = %v, want %v", tr.Flat(), want)
		}
	}
	m, _ := ex.ArrayOf("M")
	if m.Shape[0] != 2 || m.Shape[1] != 3 || m.At(1) != 2 {
		t.Fatal("TRANSPOSE modified its source")
	}
}

func TestRunScan(t *testing.T) {
	src := `PROGRAM sc
REAL A(6)
A = 2
A = SCAN(A)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 3)
	a, _ := ex.ArrayOf("A")
	for i, v := range a.Flat() {
		if v != float64(2*(i+1)) {
			t.Fatalf("scan = %v", a.Flat())
		}
	}
}

func TestRunElementwiseIntrinsic(t *testing.T) {
	src := `PROGRAM ew
REAL A(4)
A = 16
A = SQRT(A) + ABS(-1)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	a, _ := ex.ArrayOf("A")
	for _, v := range a.Flat() {
		if v != 5 {
			t.Fatalf("A = %v", a.Flat())
		}
	}
}

func TestRunFusedBlockExecutesAllStatements(t *testing.T) {
	src := `PROGRAM fu
REAL A(8)
REAL B(8)
REAL S
A = 1
B = A + 1
S = SUM(B)
END
`
	exFused, rtFused, _ := runProgram(t, src, Options{Fuse: true}, 2)
	exPlain, rtPlain, _ := runProgram(t, src, Options{}, 2)
	vF, _ := exFused.Scalar("S")
	vP, _ := exPlain.Scalar("S")
	if vF != 16 || vP != 16 {
		t.Fatalf("S fused=%g plain=%g, want 16", vF, vP)
	}
	// Fusion halves the dispatches for the two compute statements.
	dF := rtFused.Machine().Stats(0).Dispatches
	dP := rtPlain.Machine().Stats(0).Dispatches
	if dF != dP-1 {
		t.Fatalf("dispatches fused=%d plain=%d", dF, dP)
	}
}

func TestRunFiresBlockPoints(t *testing.T) {
	m, _ := machine.New(machine.DefaultConfig(2))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
	cp, err := CompileSource("PROGRAM pt\nREAL A(8)\nA = 1\nEND\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	block := cp.Blocks[0].Name
	var entries int
	var gotArgs []string
	inst.Insert(dyninst.Entry(block), dyninst.Snippet{
		Do: func(ctx dyninst.Context) {
			entries++
			gotArgs = append([]string(nil), ctx.Args...)
		},
	})
	if err := NewExecutor(cp, rt, nil).Run(); err != nil {
		t.Fatal(err)
	}
	if entries != 2 {
		t.Fatalf("block entry fired %d times, want once per node", entries)
	}
	if len(gotArgs) != 1 {
		t.Fatalf("block args = %v, want the A array id", gotArgs)
	}
	a, ok := rt.Array(cmrts.ArrayID(gotArgs[0]))
	if !ok || a.Name != "A" {
		t.Fatalf("arg %q does not resolve to array A", gotArgs)
	}
}

func TestFreeAll(t *testing.T) {
	ex, rt, _ := runProgram(t, tinyProgram, Options{}, 2)
	if len(rt.Arrays()) != 1 {
		t.Fatalf("live arrays = %d", len(rt.Arrays()))
	}
	if err := ex.FreeAll(); err != nil {
		t.Fatal(err)
	}
	if len(rt.Arrays()) != 0 {
		t.Fatal("FreeAll left arrays")
	}
}

func TestRunNegativeLiterals(t *testing.T) {
	src := `PROGRAM n
REAL A(4)
A = -2
A = CSHIFT(A, -1)
A = A * -1
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	a, _ := ex.ArrayOf("A")
	for _, v := range a.Flat() {
		if v != 2 {
			t.Fatalf("A = %v", a.Flat())
		}
	}
}

func TestRunLoopVarInExpr(t *testing.T) {
	src := `PROGRAM lv
REAL A(4)
REAL S
A = 0
DO K = 2, 4
A = A * 0 + K
END DO
S = SUM(A)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	if v, _ := ex.Scalar("S"); v != 16 {
		t.Fatalf("S = %g, want 16 (last K=4 times 4 elems)", v)
	}
}

func TestRunDeterministicVirtualTime(t *testing.T) {
	_, rt1, _ := runProgram(t, fusionProgram, Options{Fuse: true}, 4)
	_, rt2, _ := runProgram(t, fusionProgram, Options{Fuse: true}, 4)
	if rt1.Machine().GlobalNow() != rt2.Machine().GlobalNow() {
		t.Fatalf("virtual times differ: %v vs %v",
			rt1.Machine().GlobalNow(), rt2.Machine().GlobalNow())
	}
	if rt1.Machine().GlobalNow() == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestScalarMathSanity(t *testing.T) {
	src := `PROGRAM sm
REAL X
X = EXP(0) + LOG(1)
END
`
	ex, _, _ := runProgram(t, src, Options{}, 1)
	if v, _ := ex.Scalar("X"); math.Abs(v-1) > 1e-12 {
		t.Fatalf("X = %g", v)
	}
}

func BenchmarkRunStencilProgram(b *testing.B) {
	src := `PROGRAM bench
REAL A(512)
REAL B(512)
REAL S
FORALL (I = 1:512) A(I) = I
DO K = 1, 4
B = CSHIFT(A, 1)
A = A * 0.5 + B * 0.5
END DO
S = SUM(A)
END
`
	cp, err := CompileSource(src, Options{Fuse: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := machine.New(machine.DefaultConfig(8))
		inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
		rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
		if err := NewExecutor(cp, rt, nil).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunWhereMaskedAssignment(t *testing.T) {
	src := `PROGRAM w
REAL A(8)
REAL B(8)
FORALL (I = 1:8) A(I) = I
B = 0
WHERE (A > 4.0) B = A * 10.0
END
`
	ex, _, _ := runProgram(t, src, Options{}, 3)
	b, _ := ex.ArrayOf("B")
	for i, v := range b.Flat() {
		want := 0.0
		if float64(i+1) > 4 {
			want = float64(i+1) * 10
		}
		if v != want {
			t.Fatalf("B = %v, want masked update at %d", b.Flat(), i)
		}
	}
}

func TestRunWhereOperators(t *testing.T) {
	cases := []struct {
		op   string
		want []float64 // mask over values 1..4 compared with 2
	}{
		{">", []float64{0, 0, 9, 9}},
		{"<", []float64{9, 0, 0, 0}},
		{">=", []float64{0, 9, 9, 9}},
		{"<=", []float64{9, 9, 0, 0}},
		{"==", []float64{0, 9, 0, 0}},
		{"/=", []float64{9, 0, 9, 9}},
	}
	for _, c := range cases {
		src := `PROGRAM w
REAL A(4)
REAL B(4)
FORALL (I = 1:4) A(I) = I
B = 0
WHERE (A ` + c.op + ` 2.0) B = 9
END
`
		ex, _, _ := runProgram(t, src, Options{}, 2)
		b, _ := ex.ArrayOf("B")
		for i, v := range b.Flat() {
			if v != c.want[i] {
				t.Fatalf("op %s: B = %v, want %v", c.op, b.Flat(), c.want)
			}
		}
	}
}

func TestWhereKeepsUnmaskedValues(t *testing.T) {
	src := `PROGRAM w
REAL A(6)
FORALL (I = 1:6) A(I) = I
WHERE (A > 3.0) A = A * 0 - 1
END
`
	ex, _, _ := runProgram(t, src, Options{}, 2)
	a, _ := ex.ArrayOf("A")
	want := []float64{1, 2, 3, -1, -1, -1}
	for i, v := range a.Flat() {
		if v != want[i] {
			t.Fatalf("A = %v, want %v", a.Flat(), want)
		}
	}
}

func TestWhereFusesWithComputeStatements(t *testing.T) {
	src := `PROGRAM w
REAL A(8)
REAL B(8)
A = 1
WHERE (A > 0.5) B = 2
B = B + 1
END
`
	cp, err := CompileSource(src, Options{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Blocks) != 1 {
		t.Fatalf("WHERE broke fusion: %d blocks", len(cp.Blocks))
	}
}

func TestWhereSemanticErrors(t *testing.T) {
	cases := map[string]string{
		"scalar target":   "PROGRAM p\nREAL X\nWHERE (X > 0) X = 1\nEND\n",
		"non-conformable": "PROGRAM p\nREAL A(4)\nREAL B(8)\nWHERE (B > 0) A = 1\nEND\n",
		"nested reduce":   "PROGRAM p\nREAL A(4)\nWHERE (A > SUM(A)) A = 1\nEND\n",
		"undeclared":      "PROGRAM p\nREAL A(4)\nWHERE (A > Z) A = 1\nEND\n",
		"bad operator":    "PROGRAM p\nREAL A(4)\nWHERE (A + 1) A = 1\nEND\n",
	}
	for name, src := range cases {
		if _, err := CompileSource(src, Options{}); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

func TestWhereString(t *testing.T) {
	prog, err := Parse("PROGRAM p\nREAL A(4)\nWHERE (A >= 2.0) A = A / 2\nEND\n")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Body[1].(*Where).String()
	if got != "WHERE (A >= 2) A = (A / 2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRunDotProduct(t *testing.T) {
	src := `PROGRAM dp
REAL A(64)
REAL B(64)
REAL D
FORALL (I = 1:64) A(I) = I
B = 2
D = DOT_PRODUCT(A, B)
END
`
	ex, rt, _ := runProgram(t, src, Options{}, 4)
	if v, _ := ex.Scalar("D"); v != 2*64*65/2 {
		t.Fatalf("D = %g, want %d", v, 2*64*65/2)
	}
	// DOT_PRODUCT is a summation at the runtime level.
	if rt.Count(cmrts.RoutineReduceSum) != 1 {
		t.Fatal("dot product did not fire the summation routine")
	}
}

func TestDotProductErrors(t *testing.T) {
	cases := map[string]string{
		"arity":       "PROGRAM p\nREAL A(4)\nREAL D\nD = DOT_PRODUCT(A)\nEND\n",
		"conformable": "PROGRAM p\nREAL A(4)\nREAL B(8)\nREAL D\nD = DOT_PRODUCT(A, B)\nEND\n",
		"scalar arg":  "PROGRAM p\nREAL A(4)\nREAL X\nREAL D\nD = DOT_PRODUCT(A, X)\nEND\n",
		"into array":  "PROGRAM p\nREAL A(4)\nA = DOT_PRODUCT(A, A)\nEND\n",
	}
	for name, src := range cases {
		if _, err := CompileSource(src, Options{}); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}
