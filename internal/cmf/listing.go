package cmf

import (
	"fmt"
	"strings"
)

// Listing renders the compiler output file for a compiled program. This
// is the artefact Section 6.2 describes: "We create CM Fortran PIF files
// with a simple utility that parses CM Fortran compiler output files. The
// utility scans the compiler output files for lists of parallel
// statements, parallel arrays, and node-code blocks." cmd/pifgen is that
// utility; it parses exactly this format.
//
// The format is line-oriented: a record keyword, a colon, then
// space-separated key=value fields; the statement text comes last in
// double quotes. '!' lines are comments.
func (c *Compiled) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "! CM Fortran compiler listing\n")
	fmt.Fprintf(&b, "program: %s\n", c.Prog.Name)
	src := c.Opts.SourceFile
	if src == "" {
		src = strings.ToLower(c.Prog.Name) + ".fcm"
	}
	fmt.Fprintf(&b, "source: %s\n", src)

	for _, name := range c.ArrayOrder {
		d := c.Arrays[name]
		fmt.Fprintf(&b, "array: name=%s rank=%d dims=%s line=%d\n",
			d.Name, len(d.Dims), dimsString(d.Dims), d.Ln)
	}

	// Statements in source order (walk the AST).
	walkStmts(c.Prog.Body, func(s Stmt) {
		info, ok := c.Infos[s.Line()]
		if !ok {
			return // declarations
		}
		block := "-"
		if info.Block != nil {
			block = info.Block.Name
		}
		intr := info.Intrinsic
		if intr == "" {
			intr = "-"
		}
		fmt.Fprintf(&b, "statement: line=%d kind=%s block=%s intrinsic=%s arrays=%s text=%q\n",
			s.Line(), info.Kind, block, intr, joinOrDash(info.Arrays), s.String())
	})

	for _, blk := range c.Blocks {
		lines := make([]string, len(blk.Lines))
		for i, l := range blk.Lines {
			lines[i] = fmt.Sprint(l)
		}
		intr := blk.Intrinsic
		if intr == "" {
			intr = "-"
		}
		fmt.Fprintf(&b, "block: name=%s kind=%s intrinsic=%s lines=%s arrays=%s\n",
			blk.Name, blk.Kind, intr, strings.Join(lines, ","), joinOrDash(blk.Arrays))
	}
	return b.String()
}

func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

func joinOrDash(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ",")
}
