package cmf

import (
	"fmt"
	"sort"
	"strings"
)

// StmtKind classifies executable statements for lowering.
type StmtKind int

// Statement kinds.
const (
	// KindSerial runs on the control processor (scalar assignments,
	// PRINT).
	KindSerial StmtKind = iota
	// KindCompute is an elementwise parallel assignment or FORALL.
	KindCompute
	// KindReduce assigns a reduction intrinsic's result to a scalar.
	KindReduce
	// KindTransform is a whole-array transformation (CSHIFT, EOSHIFT,
	// TRANSPOSE, SCAN, SORT).
	KindTransform
)

// String names the kind (also the keyword in compiler listings).
func (k StmtKind) String() string {
	switch k {
	case KindSerial:
		return "serial"
	case KindCompute:
		return "compute"
	case KindReduce:
		return "reduce"
	case KindTransform:
		return "transform"
	default:
		return fmt.Sprintf("StmtKind(%d)", int(k))
	}
}

// Block is a compiler-generated node code block: the unit the control
// processor dispatches to the nodes, and the Base-level noun the tool's
// static mappings connect to source lines (Figure 2's cmpe_corr_6_()).
type Block struct {
	Name      string
	Kind      StmtKind
	Intrinsic string // reduction/transform intrinsic, "" for compute
	Lines     []int
	Stmts     []Stmt
	Arrays    []string // source-level array names the block touches
}

// StmtInfo is the semantic record for one executable statement.
type StmtInfo struct {
	Stmt      Stmt
	Kind      StmtKind
	Intrinsic string
	Arrays    []string
	Block     *Block // nil for serial statements
}

// Options configures compilation.
type Options struct {
	// Fuse merges runs of adjacent elementwise statements into a single
	// node code block, the optimizing-compiler behaviour that produces
	// the one-to-many mappings of Figure 2. Off, every parallel
	// statement gets its own block.
	Fuse bool
	// SourceFile names the source in listings and PIF descriptions.
	SourceFile string
}

// Compiled is a semantically checked, lowered program.
type Compiled struct {
	Prog    *Program
	Opts    Options
	Arrays  map[string]*Decl // declared parallel arrays by name
	Scalars map[string]*Decl // declared scalars by name
	Infos   map[int]*StmtInfo
	Blocks  []*Block
	// ArrayOrder lists array names in declaration order.
	ArrayOrder []string
}

// Compile parses (if necessary the caller already has a Program),
// semantically checks, and lowers a program.
func Compile(prog *Program, opts Options) (compiled *Compiled, err error) {
	if prog == nil {
		return nil, fmt.Errorf("cmf: nil program")
	}
	// Compile accepts hand-built Programs, so malformed ASTs (nil
	// statements, foreign node types) must come back as errors, not
	// crash the caller.
	defer func() {
		if r := recover(); r != nil {
			compiled, err = nil, fmt.Errorf("cmf: invalid program: %v", r)
		}
	}()
	c := &compiler{
		out: &Compiled{
			Prog:    prog,
			Opts:    opts,
			Arrays:  make(map[string]*Decl),
			Scalars: make(map[string]*Decl),
			Infos:   make(map[int]*StmtInfo),
		},
	}
	if err := c.checkScope(prog.Body, nil); err != nil {
		return nil, err
	}
	if err := c.lowerScope(prog.Body); err != nil {
		return nil, err
	}
	return c.out, nil
}

// CompileSource is the one-call convenience: parse then compile.
func CompileSource(src string, opts Options) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, opts)
}

type compiler struct {
	out      *Compiled
	blockSeq int
}

// arraySize returns an array's element count.
func arraySize(d *Decl) int {
	size := 1
	for _, v := range d.Dims {
		size *= v
	}
	return size
}

// checkScope performs semantic analysis on a statement list. loopVars
// holds the enclosing DO/FORALL induction variables.
func (c *compiler) checkScope(body []Stmt, loopVars []string) error {
	for _, s := range body {
		switch st := s.(type) {
		case *Decl:
			if err := c.declare(st); err != nil {
				return err
			}
		case *Assign:
			if err := c.checkAssign(st, loopVars); err != nil {
				return err
			}
		case *Forall:
			if err := c.checkForall(st, loopVars); err != nil {
				return err
			}
		case *Where:
			if err := c.checkWhere(st, loopVars); err != nil {
				return err
			}
		case *DoLoop:
			if _, clash := c.out.Arrays[st.Var]; clash {
				return errf(st.Ln, "loop variable %s shadows an array", st.Var)
			}
			if err := c.checkScope(st.Body, append(loopVars, st.Var)); err != nil {
				return err
			}
		case *Print:
			if err := c.checkScalarExpr(st.Arg, st.Ln, loopVars); err != nil {
				return err
			}
			c.out.Infos[st.Ln] = &StmtInfo{Stmt: st, Kind: KindSerial}
		default:
			return errf(s.Line(), "unsupported statement %T", s)
		}
	}
	return nil
}

func (c *compiler) declare(d *Decl) error {
	if _, dup := c.out.Arrays[d.Name]; dup {
		return errf(d.Ln, "%s already declared", d.Name)
	}
	if _, dup := c.out.Scalars[d.Name]; dup {
		return errf(d.Ln, "%s already declared", d.Name)
	}
	if len(d.Dims) > 0 {
		if d.IsInt {
			return errf(d.Ln, "INTEGER arrays are not supported; %s must be REAL", d.Name)
		}
		c.out.Arrays[d.Name] = d
		c.out.ArrayOrder = append(c.out.ArrayOrder, d.Name)
	} else {
		c.out.Scalars[d.Name] = d
	}
	return nil
}

func isLoopVar(name string, loopVars []string) bool {
	for _, v := range loopVars {
		if v == name {
			return true
		}
	}
	return false
}

func (c *compiler) checkAssign(st *Assign, loopVars []string) error {
	if _, isArr := c.out.Arrays[st.LHS]; isArr {
		return c.checkParallelAssign(st, loopVars)
	}
	if _, isScal := c.out.Scalars[st.LHS]; isScal {
		return c.checkScalarAssign(st, loopVars)
	}
	if isLoopVar(st.LHS, loopVars) {
		return errf(st.Ln, "cannot assign to loop variable %s", st.LHS)
	}
	return errf(st.Ln, "assignment to undeclared name %s", st.LHS)
}

func (c *compiler) checkScalarAssign(st *Assign, loopVars []string) error {
	// Reduction form: S = SUM(A), S = DOT_PRODUCT(A, B), etc.
	if call, ok := st.RHS.(*Call); ok && reductionIntrinsics[call.Fn] {
		wantArgs := 1
		if call.Fn == "DOT_PRODUCT" {
			wantArgs = 2
		}
		if len(call.Args) != wantArgs {
			return errf(st.Ln, "%s takes exactly %d array argument(s)", call.Fn, wantArgs)
		}
		var names []string
		var size int
		for i, arg := range call.Args {
			ref, ok := arg.(*Ref)
			if !ok {
				return errf(st.Ln, "%s argument must be a whole array", call.Fn)
			}
			d, isArr := c.out.Arrays[ref.Name]
			if !isArr {
				return errf(st.Ln, "%s argument %s is not a parallel array", call.Fn, ref.Name)
			}
			if i == 0 {
				size = arraySize(d)
			} else if arraySize(d) != size {
				return errf(st.Ln, "%s arguments are not conformable", call.Fn)
			}
			names = append(names, ref.Name)
		}
		c.out.Infos[st.Ln] = &StmtInfo{
			Stmt: st, Kind: KindReduce, Intrinsic: call.Fn, Arrays: names,
		}
		return nil
	}
	if err := c.checkScalarExpr(st.RHS, st.Ln, loopVars); err != nil {
		return err
	}
	c.out.Infos[st.Ln] = &StmtInfo{Stmt: st, Kind: KindSerial}
	return nil
}

// checkScalarExpr validates a pure control-processor expression.
func (c *compiler) checkScalarExpr(e Expr, line int, loopVars []string) error {
	var err error
	refErr := exprRefs(e, func(name string, indexed bool) {
		if err != nil {
			return
		}
		if indexed {
			err = errf(line, "indexed reference %s(...) outside FORALL", name)
			return
		}
		if _, isArr := c.out.Arrays[name]; isArr {
			err = errf(line, "array %s used in scalar expression", name)
			return
		}
		if _, isScal := c.out.Scalars[name]; !isScal && !isLoopVar(name, loopVars) {
			err = errf(line, "undeclared name %s", name)
		}
	})
	if err == nil && refErr != nil {
		err = errf(line, "%v", refErr)
	}
	if err != nil {
		return err
	}
	return checkCalls(e, line, func(call *Call) error {
		if !elementwiseIntrinsics[call.Fn] {
			return errf(line, "%s cannot appear inside a scalar expression", call.Fn)
		}
		if len(call.Args) != 1 {
			return errf(line, "%s takes exactly one argument", call.Fn)
		}
		return nil
	})
}

// checkCalls visits all Call nodes.
func checkCalls(e Expr, line int, fn func(*Call) error) error {
	switch x := e.(type) {
	case *Unary:
		return checkCalls(x.X, line, fn)
	case *Binary:
		if err := checkCalls(x.L, line, fn); err != nil {
			return err
		}
		return checkCalls(x.R, line, fn)
	case *Call:
		if err := fn(x); err != nil {
			return err
		}
		for _, a := range x.Args {
			if err := checkCalls(a, line, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *compiler) checkParallelAssign(st *Assign, loopVars []string) error {
	lhs := c.out.Arrays[st.LHS]
	// Whole-RHS transform: A = CSHIFT(B, 1) etc.
	if call, ok := st.RHS.(*Call); ok && transformIntrinsics[call.Fn] {
		return c.checkTransform(st, lhs, call)
	}
	// Elementwise expression.
	arrays := map[string]bool{st.LHS: true}
	var err error
	refErr := exprRefs(st.RHS, func(name string, indexed bool) {
		if err != nil {
			return
		}
		if indexed {
			err = errf(st.Ln, "indexed reference %s(...) outside FORALL", name)
			return
		}
		if d, isArr := c.out.Arrays[name]; isArr {
			if arraySize(d) != arraySize(lhs) {
				err = errf(st.Ln, "array %s (%d elems) is not conformable with %s (%d elems)",
					name, arraySize(d), st.LHS, arraySize(lhs))
				return
			}
			arrays[name] = true
			return
		}
		if _, isScal := c.out.Scalars[name]; !isScal && !isLoopVar(name, loopVars) {
			err = errf(st.Ln, "undeclared name %s", name)
		}
	})
	if err == nil && refErr != nil {
		err = errf(st.Ln, "%v", refErr)
	}
	if err != nil {
		return err
	}
	if err := checkCalls(st.RHS, st.Ln, func(call *Call) error {
		if reductionIntrinsics[call.Fn] || transformIntrinsics[call.Fn] {
			return errf(st.Ln, "%s cannot be nested inside an elementwise expression", call.Fn)
		}
		if len(call.Args) != 1 {
			return errf(st.Ln, "%s takes exactly one argument", call.Fn)
		}
		return nil
	}); err != nil {
		return err
	}
	c.out.Infos[st.Ln] = &StmtInfo{
		Stmt: st, Kind: KindCompute, Arrays: sortedNames(arrays),
	}
	return nil
}

func (c *compiler) checkTransform(st *Assign, lhs *Decl, call *Call) error {
	argRef := func(i int) (*Decl, error) {
		ref, ok := call.Args[i].(*Ref)
		if !ok {
			return nil, errf(st.Ln, "%s argument must be a whole array", call.Fn)
		}
		d, isArr := c.out.Arrays[ref.Name]
		if !isArr {
			return nil, errf(st.Ln, "%s argument %s is not a parallel array", call.Fn, ref.Name)
		}
		return d, nil
	}
	intLit := func(i int) error {
		switch a := call.Args[i].(type) {
		case *Num:
			if a.Val != float64(int(a.Val)) {
				return errf(st.Ln, "%s offset must be an integer literal", call.Fn)
			}
			return nil
		case *Unary:
			if n, ok := a.X.(*Num); ok && n.Val == float64(int(n.Val)) {
				return nil
			}
		}
		return errf(st.Ln, "%s offset must be an integer literal", call.Fn)
	}

	var src *Decl
	var err error
	switch call.Fn {
	case "CSHIFT":
		if len(call.Args) != 2 {
			return errf(st.Ln, "CSHIFT takes (array, offset)")
		}
		if src, err = argRef(0); err != nil {
			return err
		}
		if err := intLit(1); err != nil {
			return err
		}
	case "EOSHIFT":
		if len(call.Args) != 2 && len(call.Args) != 3 {
			return errf(st.Ln, "EOSHIFT takes (array, offset [, fill])")
		}
		if src, err = argRef(0); err != nil {
			return err
		}
		if err := intLit(1); err != nil {
			return err
		}
		if len(call.Args) == 3 {
			if _, ok := call.Args[2].(*Num); !ok {
				return errf(st.Ln, "EOSHIFT fill must be a numeric literal")
			}
		}
	case "TRANSPOSE":
		if len(call.Args) != 1 {
			return errf(st.Ln, "TRANSPOSE takes one array")
		}
		if src, err = argRef(0); err != nil {
			return err
		}
		if len(src.Dims) != 2 {
			return errf(st.Ln, "TRANSPOSE needs a 2-D array, %s is %d-D", src.Name, len(src.Dims))
		}
		if len(lhs.Dims) != 2 || lhs.Dims[0] != src.Dims[1] || lhs.Dims[1] != src.Dims[0] {
			return errf(st.Ln, "%s must be declared %dx%d to hold TRANSPOSE(%s)",
				st.LHS, src.Dims[1], src.Dims[0], src.Name)
		}
	case "SCAN", "SORT":
		if len(call.Args) != 1 {
			return errf(st.Ln, "%s takes one array", call.Fn)
		}
		if src, err = argRef(0); err != nil {
			return err
		}
	default:
		return errf(st.Ln, "unknown transform %s", call.Fn)
	}
	if arraySize(src) != arraySize(lhs) {
		return errf(st.Ln, "%s result (%d elems) is not conformable with %s (%d elems)",
			call.Fn, arraySize(src), st.LHS, arraySize(lhs))
	}
	arrays := map[string]bool{st.LHS: true, src.Name: true}
	c.out.Infos[st.Ln] = &StmtInfo{
		Stmt: st, Kind: KindTransform, Intrinsic: call.Fn, Arrays: sortedNames(arrays),
	}
	return nil
}

// checkWhere validates a masked assignment: the target must be a
// parallel array, and the condition sides and right-hand side must be
// elementwise expressions conformable with it.
func (c *compiler) checkWhere(st *Where, loopVars []string) error {
	lhs, isArr := c.out.Arrays[st.LHS]
	if !isArr {
		return errf(st.Ln, "WHERE target %s is not a parallel array", st.LHS)
	}
	arrays := map[string]bool{st.LHS: true}
	for _, e := range []Expr{st.CondL, st.CondR, st.RHS} {
		var err error
		refErr := exprRefs(e, func(name string, indexed bool) {
			if err != nil {
				return
			}
			if indexed {
				err = errf(st.Ln, "indexed reference %s(...) outside FORALL", name)
				return
			}
			if d, isArr := c.out.Arrays[name]; isArr {
				if arraySize(d) != arraySize(lhs) {
					err = errf(st.Ln, "array %s is not conformable with WHERE target %s", name, st.LHS)
					return
				}
				arrays[name] = true
				return
			}
			if _, isScal := c.out.Scalars[name]; !isScal && !isLoopVar(name, loopVars) {
				err = errf(st.Ln, "undeclared name %s", name)
			}
		})
		if err == nil && refErr != nil {
			err = errf(st.Ln, "%v", refErr)
		}
		if err != nil {
			return err
		}
		if err := checkCalls(e, st.Ln, func(call *Call) error {
			if reductionIntrinsics[call.Fn] || transformIntrinsics[call.Fn] {
				return errf(st.Ln, "%s cannot appear inside WHERE", call.Fn)
			}
			if len(call.Args) != 1 {
				return errf(st.Ln, "%s takes exactly one argument", call.Fn)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	c.out.Infos[st.Ln] = &StmtInfo{Stmt: st, Kind: KindCompute, Arrays: sortedNames(arrays)}
	return nil
}

func (c *compiler) checkForall(st *Forall, loopVars []string) error {
	lhs, isArr := c.out.Arrays[st.LHS]
	if !isArr {
		return errf(st.Ln, "FORALL target %s is not a parallel array", st.LHS)
	}
	// The index runs over the flattened array (row-major), so FORALL works
	// for any rank as long as it covers the array entirely.
	if st.Lo != 1 || st.Hi != arraySize(lhs) {
		return errf(st.Ln, "FORALL range must cover %s entirely (1:%d), got %d:%d",
			st.LHS, arraySize(lhs), st.Lo, st.Hi)
	}
	arrays := map[string]bool{st.LHS: true}
	var err error
	refErr := exprRefs(st.RHS, func(name string, indexed bool) {
		if err != nil {
			return
		}
		if indexed {
			d, isArr := c.out.Arrays[name]
			if !isArr {
				err = errf(st.Ln, "indexed name %s is not a parallel array", name)
				return
			}
			if arraySize(d) != arraySize(lhs) {
				err = errf(st.Ln, "array %s is not conformable with FORALL target %s", name, st.LHS)
				return
			}
			arrays[name] = true
			return
		}
		if name == st.Var {
			return
		}
		if _, isArrRef := c.out.Arrays[name]; isArrRef {
			err = errf(st.Ln, "whole array %s cannot appear in a FORALL body; index it with %s", name, st.Var)
			return
		}
		if _, isScal := c.out.Scalars[name]; !isScal && !isLoopVar(name, loopVars) {
			err = errf(st.Ln, "undeclared name %s", name)
		}
	})
	if err == nil && refErr != nil {
		err = errf(st.Ln, "%v", refErr)
	}
	if err != nil {
		return err
	}
	// Index nodes must use the FORALL variable.
	err = checkIndexVars(st.RHS, st.Var, st.Ln)
	if err != nil {
		return err
	}
	if err := checkCalls(st.RHS, st.Ln, func(call *Call) error {
		if !elementwiseIntrinsics[call.Fn] {
			return errf(st.Ln, "%s cannot appear inside FORALL", call.Fn)
		}
		return nil
	}); err != nil {
		return err
	}
	c.out.Infos[st.Ln] = &StmtInfo{Stmt: st, Kind: KindCompute, Arrays: sortedNames(arrays)}
	return nil
}

func checkIndexVars(e Expr, v string, line int) error {
	switch x := e.(type) {
	case *Index:
		if x.Var != v {
			return errf(line, "index variable must be %s, got %s", v, x.Var)
		}
	case *Unary:
		return checkIndexVars(x.X, v, line)
	case *Binary:
		if err := checkIndexVars(x.L, v, line); err != nil {
			return err
		}
		return checkIndexVars(x.R, v, line)
	case *Call:
		for _, a := range x.Args {
			if err := checkIndexVars(a, v, line); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lowerScope assigns node code blocks to the parallel statements of one
// scope. With fusion on, maximal runs of adjacent elementwise statements
// share one block; reductions and transforms always get their own.
func (c *compiler) lowerScope(body []Stmt) error {
	var run []*StmtInfo
	flush := func() {
		if len(run) > 0 {
			c.newBlock(run)
			run = nil
		}
	}
	for _, s := range body {
		if d, ok := s.(*DoLoop); ok {
			flush()
			if err := c.lowerScope(d.Body); err != nil {
				return err
			}
			continue
		}
		info, ok := c.out.Infos[s.Line()]
		if !ok {
			// Declarations carry no info record.
			if _, isDecl := s.(*Decl); isDecl {
				flush()
				continue
			}
			return errf(s.Line(), "internal: statement missing semantic info")
		}
		switch info.Kind {
		case KindSerial:
			flush()
		case KindCompute:
			if c.out.Opts.Fuse {
				run = append(run, info)
			} else {
				c.newBlock([]*StmtInfo{info})
			}
		case KindReduce, KindTransform:
			flush()
			c.newBlock([]*StmtInfo{info})
		}
	}
	flush()
	return nil
}

func (c *compiler) newBlock(infos []*StmtInfo) {
	c.blockSeq++
	b := &Block{
		Name: fmt.Sprintf("cmpe_%s_%d_()", strings.ToLower(c.out.Prog.Name), c.blockSeq),
		Kind: infos[0].Kind,
	}
	arrays := map[string]bool{}
	for _, info := range infos {
		info.Block = b
		b.Lines = append(b.Lines, info.Stmt.Line())
		b.Stmts = append(b.Stmts, info.Stmt)
		if info.Intrinsic != "" {
			b.Intrinsic = info.Intrinsic
		}
		for _, a := range info.Arrays {
			arrays[a] = true
		}
	}
	b.Arrays = sortedNames(arrays)
	c.out.Blocks = append(c.out.Blocks, b)
}
