package cmf

import (
	"strings"
	"testing"
)

func compileSrc(t *testing.T, src string, opts Options) *Compiled {
	t.Helper()
	cp, err := CompileSource(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

const fusionProgram = `PROGRAM corr
REAL A(64)
REAL B(64)
REAL ASUM
A = 1.0
B = A * 2.0
ASUM = SUM(A)
A = B + 1.0
A = CSHIFT(A, 1)
END
`

func TestCompileAssignsBlocks(t *testing.T) {
	cp := compileSrc(t, fusionProgram, Options{})
	// Without fusion: 4 parallel assignments + 1 reduction + 1 transform?
	// Statements: A=1 (compute), B=A*2 (compute), ASUM=SUM(A) (reduce),
	// A=B+1 (compute), A=CSHIFT (transform) => 5 blocks unfused.
	if len(cp.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(cp.Blocks))
	}
	for i, b := range cp.Blocks {
		if len(b.Lines) != 1 {
			t.Fatalf("unfused block %d has lines %v", i, b.Lines)
		}
		if !strings.HasPrefix(b.Name, "cmpe_corr_") || !strings.HasSuffix(b.Name, "_()") {
			t.Fatalf("block name %q not compiler-shaped", b.Name)
		}
	}
	if cp.Blocks[2].Kind != KindReduce || cp.Blocks[2].Intrinsic != "SUM" {
		t.Fatalf("reduce block = %+v", cp.Blocks[2])
	}
	if cp.Blocks[4].Kind != KindTransform || cp.Blocks[4].Intrinsic != "CSHIFT" {
		t.Fatalf("transform block = %+v", cp.Blocks[4])
	}
}

func TestCompileFusionMergesAdjacentCompute(t *testing.T) {
	cp := compileSrc(t, fusionProgram, Options{Fuse: true})
	// Fused: [A=1, B=A*2] ; SUM ; [A=B+1] ; CSHIFT => 4 blocks.
	if len(cp.Blocks) != 4 {
		t.Fatalf("fused blocks = %d, want 4", len(cp.Blocks))
	}
	first := cp.Blocks[0]
	if len(first.Lines) != 2 {
		t.Fatalf("first fused block lines = %v", first.Lines)
	}
	if first.Lines[0] != 5 || first.Lines[1] != 6 {
		t.Fatalf("fused lines = %v, want [5 6]", first.Lines)
	}
	// Both statements map to the same block: the Figure 2 situation.
	if cp.Infos[5].Block != cp.Infos[6].Block {
		t.Fatal("fused statements have different blocks")
	}
	if got := strings.Join(first.Arrays, ","); got != "A,B" {
		t.Fatalf("fused block arrays = %q", got)
	}
}

func TestCompileStatementKinds(t *testing.T) {
	cp := compileSrc(t, `PROGRAM k
REAL A(8)
REAL S
S = 3.0
A = S
S = SUM(A)
A = SORT(A)
FORALL (I = 1:8) A(I) = I
PRINT *, S
END
`, Options{})
	wants := map[int]StmtKind{
		4: KindSerial,    // S = 3.0
		5: KindCompute,   // A = S
		6: KindReduce,    // S = SUM(A)
		7: KindTransform, // A = SORT(A)
		8: KindCompute,   // FORALL
		9: KindSerial,    // PRINT
	}
	for line, want := range wants {
		info, ok := cp.Infos[line]
		if !ok {
			t.Fatalf("no info for line %d", line)
		}
		if info.Kind != want {
			t.Errorf("line %d kind = %v, want %v", line, info.Kind, want)
		}
	}
	// Serial statements have no block.
	if cp.Infos[4].Block != nil || cp.Infos[9].Block != nil {
		t.Fatal("serial statements assigned blocks")
	}
}

func TestCompileSemanticErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared LHS":     "PROGRAM p\nX = 1\nEND\n",
		"undeclared RHS":     "PROGRAM p\nREAL X\nX = Y\nEND\n",
		"dup decl":           "PROGRAM p\nREAL X\nREAL X\nEND\n",
		"integer array":      "PROGRAM p\nINTEGER A(4)\nEND\n",
		"non-conformable":    "PROGRAM p\nREAL A(4)\nREAL B(5)\nA = B\nEND\n",
		"array in scalar":    "PROGRAM p\nREAL A(4)\nREAL X\nX = A\nEND\n",
		"scalar = transform": "PROGRAM p\nREAL A(4)\nREAL X\nX = CSHIFT(A, 1)\nEND\n",
		"reduce into array":  "PROGRAM p\nREAL A(4)\nA = SUM(A)\nEND\n",
		"nested reduce":      "PROGRAM p\nREAL A(4)\nA = A + SUM(A)\nEND\n",
		"nested transform":   "PROGRAM p\nREAL A(4)\nA = 1 + CSHIFT(A, 1)\nEND\n",
		"sum arity":          "PROGRAM p\nREAL A(4)\nREAL X\nX = SUM(A, A)\nEND\n",
		"sum of scalar":      "PROGRAM p\nREAL X\nREAL Y\nX = SUM(Y)\nEND\n",
		"cshift offset":      "PROGRAM p\nREAL A(4)\nA = CSHIFT(A, 1.5)\nEND\n",
		"cshift offset expr": "PROGRAM p\nREAL A(4)\nREAL K\nA = CSHIFT(A, K)\nEND\n",
		"eoshift fill":       "PROGRAM p\nREAL A(4)\nA = EOSHIFT(A, 1, A)\nEND\n",
		"transpose 1d":       "PROGRAM p\nREAL A(4)\nA = TRANSPOSE(A)\nEND\n",
		"transpose shape":    "PROGRAM p\nREAL M(2,3)\nREAL T(2,3)\nT = TRANSPOSE(M)\nEND\n",
		"transform conform":  "PROGRAM p\nREAL A(4)\nREAL B(8)\nA = SORT(B)\nEND\n",
		"forall not array":   "PROGRAM p\nREAL X\nFORALL (I = 1:4) X(I) = I\nEND\n",
		"forall partial":     "PROGRAM p\nREAL A(8)\nFORALL (I = 1:4) A(I) = I\nEND\n",
		"forall whole array": "PROGRAM p\nREAL A(4)\nREAL B(4)\nFORALL (I = 1:4) A(I) = B\nEND\n",
		"forall bad conform": "PROGRAM p\nREAL A(4)\nREAL B(8)\nFORALL (I = 1:4) A(I) = B(I)\nEND\n",
		"forall reduce":      "PROGRAM p\nREAL A(4)\nFORALL (I = 1:4) A(I) = SUM(A)\nEND\n",
		"assign loop var":    "PROGRAM p\nREAL A(4)\nDO K = 1, 2\nK = 3\nEND DO\nEND\n",
		"loop shadows array": "PROGRAM p\nREAL A(4)\nDO A = 1, 2\nEND DO\nEND\n",
		"index outside":      "PROGRAM p\nREAL A(4)\nREAL B(4)\nA = B(I)\nEND\n",
		"print array":        "PROGRAM p\nREAL A(4)\nPRINT *, A\nEND\n",
	}
	for name, src := range cases {
		if _, err := CompileSource(src, Options{}); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

func TestCompileLoopVarUsableInExpr(t *testing.T) {
	src := `PROGRAM p
REAL A(4)
DO K = 1, 3
A = A + K
END DO
END
`
	if _, err := CompileSource(src, Options{}); err != nil {
		t.Fatalf("loop var in parallel expr rejected: %v", err)
	}
}

func TestListingFormat(t *testing.T) {
	cp := compileSrc(t, fusionProgram, Options{Fuse: true, SourceFile: "corr.fcm"})
	listing := cp.Listing()
	wants := []string{
		"program: CORR",
		"source: corr.fcm",
		"array: name=A rank=1 dims=64 line=2",
		"array: name=B rank=1 dims=64 line=3",
		"statement: line=5 kind=compute block=cmpe_corr_1_()",
		"statement: line=7 kind=reduce block=cmpe_corr_2_() intrinsic=SUM",
		"block: name=cmpe_corr_1_() kind=compute intrinsic=- lines=5,6 arrays=A,B",
		`text="A = 1"`,
	}
	for _, w := range wants {
		if !strings.Contains(listing, w) {
			t.Errorf("listing missing %q:\n%s", w, listing)
		}
	}
}

func TestListingDefaultSource(t *testing.T) {
	cp := compileSrc(t, tinyProgram, Options{})
	if !strings.Contains(cp.Listing(), "source: corr.fcm") {
		t.Fatalf("default source name wrong:\n%s", cp.Listing())
	}
}

func TestStmtKindString(t *testing.T) {
	for k, want := range map[StmtKind]string{
		KindSerial: "serial", KindCompute: "compute",
		KindReduce: "reduce", KindTransform: "transform",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileSource(fusionProgram, Options{Fuse: true}); err != nil {
			b.Fatal(err)
		}
	}
}
