package paradyn

import (
	"fmt"
	"sort"
)

// This file implements a simplified Performance Consultant, the automated
// module that "helps users find performance problems in their
// applications" (Section 5). Like Paradyn's W3-based consultant it tests
// why-axis hypotheses (where is the time going?) at the whole-program
// focus and refines confirmed hypotheses along the where axis — per node
// from the same run's per-node primitives, and per statement by replaying
// the (deterministic) application with statement-constrained
// instrumentation, the replay standing in for Paradyn's online
// insertion.

// Hypothesis is one why-axis test: the named metrics' summed value, as a
// fraction of available node-seconds, exceeding the threshold confirms
// the hypothesis.
type Hypothesis struct {
	ID          string
	Description string
	Metrics     []string
	Threshold   float64
}

// DefaultHypotheses returns the classic triple: CPU bound, communication
// bound, synchronisation (control-processor wait) bound.
func DefaultHypotheses() []Hypothesis {
	return []Hypothesis{
		{
			ID:          "CPUBound",
			Description: "computation dominates node time",
			Metrics:     []string{"computation_time"},
			Threshold:   0.4,
		},
		{
			ID:          "CommBound",
			Description: "inter-node and broadcast communication dominates",
			Metrics:     []string{"point_to_point_time", "broadcast_time"},
			Threshold:   0.25,
		},
		{
			ID:          "SyncBound",
			Description: "nodes wait on the control processor",
			Metrics:     []string{"idle_time"},
			Threshold:   0.25,
		},
	}
}

// Finding is one consultant conclusion.
type Finding struct {
	Hypothesis string
	FocusLabel string
	Fraction   float64
	Threshold  float64
	Confirmed  bool
}

// String renders e.g. "CPUBound at /Machine/node3: 0.62 (threshold 0.40) CONFIRMED".
func (f Finding) String() string {
	verdict := "rejected"
	if f.Confirmed {
		verdict = "CONFIRMED"
	}
	return fmt.Sprintf("%-10s at %-28s %.2f (threshold %.2f) %s",
		f.Hypothesis, f.FocusLabel, f.Fraction, f.Threshold, verdict)
}

// AppFactory builds a fresh, identical application run: a tool bound to a
// new runtime plus the function that executes the application. The
// simulator's determinism makes repeated factories equivalent to
// Paradyn's single online run.
type AppFactory func() (*Tool, func() error, error)

// Consultant searches for bottlenecks.
type Consultant struct {
	Hypotheses []Hypothesis
	// RefineStatements controls the per-statement replay phase.
	RefineStatements bool
	// RefineArrays controls the per-array replay phase (requires the
	// application to allocate arrays through the runtime, which all CMF
	// programs do).
	RefineArrays bool
}

// NewConsultant returns a consultant with the default hypotheses and
// both refinement phases on.
func NewConsultant() *Consultant {
	return &Consultant{Hypotheses: DefaultHypotheses(), RefineStatements: true, RefineArrays: true}
}

// Search runs the two-phase search and returns findings sorted by
// fraction (largest first). Whole-program findings are always reported
// (confirmed or not); refined findings are reported only where the
// hypothesis held at the parent focus.
func (c *Consultant) Search(factory AppFactory) ([]Finding, error) {
	tool, run, err := factory()
	if err != nil {
		return nil, err
	}
	// Dynamic mapping during phase 1 discovers the application's arrays
	// for the array-refinement phase.
	tool.EnableDynamicMapping()
	type enabledHyp struct {
		hyp Hypothesis
		ems []*EnabledMetric
	}
	var hyps []enabledHyp
	for _, h := range c.Hypotheses {
		eh := enabledHyp{hyp: h}
		for _, mid := range h.Metrics {
			em, err := tool.EnableMetric(mid, WholeProgram())
			if err != nil {
				return nil, fmt.Errorf("consultant: hypothesis %s: %w", h.ID, err)
			}
			eh.ems = append(eh.ems, em)
		}
		hyps = append(hyps, eh)
	}
	if err := run(); err != nil {
		return nil, err
	}
	now := tool.mach.GlobalNow()
	elapsed := now.Sub(0).Seconds()
	if elapsed == 0 {
		return nil, fmt.Errorf("consultant: application consumed no virtual time")
	}
	nodes := tool.mach.Nodes()
	nodeSeconds := elapsed * float64(nodes)

	var findings []Finding
	var confirmed []Hypothesis
	for _, eh := range hyps {
		var total float64
		for _, em := range eh.ems {
			total += em.Value(now)
		}
		frac := total / nodeSeconds
		ok := frac > eh.hyp.Threshold
		findings = append(findings, Finding{
			Hypothesis: eh.hyp.ID, FocusLabel: "/WholeProgram",
			Fraction: frac, Threshold: eh.hyp.Threshold, Confirmed: ok,
		})
		if !ok {
			continue
		}
		confirmed = append(confirmed, eh.hyp)
		// Per-node refinement from the same instances.
		for n := 0; n < nodes; n++ {
			var nv float64
			for _, em := range eh.ems {
				nv += em.Instance.NodeValue(n, now)
			}
			frac := nv / elapsed
			if frac > eh.hyp.Threshold {
				findings = append(findings, Finding{
					Hypothesis: eh.hyp.ID,
					FocusLabel: fmt.Sprintf("/Machine/node%d", n),
					Fraction:   frac, Threshold: eh.hyp.Threshold, Confirmed: true,
				})
			}
		}
	}

	if c.RefineStatements && len(confirmed) > 0 {
		stmtFindings, err := c.refineStatements(factory, confirmed, nodeSeconds)
		if err != nil {
			return nil, err
		}
		findings = append(findings, stmtFindings...)
	}
	if c.RefineArrays && len(confirmed) > 0 {
		var arrays []string
		for name := range tool.arraysByName {
			arrays = append(arrays, name)
		}
		sort.Strings(arrays)
		arrFindings, err := c.refineArrays(factory, confirmed, arrays, nodeSeconds)
		if err != nil {
			return nil, err
		}
		findings = append(findings, arrFindings...)
	}

	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Fraction > findings[j].Fraction })
	return findings, nil
}

// refineArrays replays the application with array-constrained instances
// of the confirmed hypotheses' metrics. The array names were discovered
// through dynamic mapping information during the first run.
func (c *Consultant) refineArrays(factory AppFactory, confirmed []Hypothesis, arrays []string, nodeSeconds float64) ([]Finding, error) {
	if len(arrays) == 0 {
		return nil, nil
	}
	tool, run, err := factory()
	if err != nil {
		return nil, err
	}
	tool.EnableDynamicMapping()
	tool.EnableGating()

	type cell struct {
		hyp  Hypothesis
		name string
		ems  []*EnabledMetric
	}
	var cells []cell
	for _, h := range confirmed {
		for _, name := range arrays {
			res := tool.Axis.AddPath(HierArrays, name)
			focus, err := NewFocus(res)
			if err != nil {
				return nil, err
			}
			cl := cell{hyp: h, name: name}
			for _, mid := range h.Metrics {
				em, err := tool.EnableMetric(mid, focus)
				if err != nil {
					return nil, err
				}
				cl.ems = append(cl.ems, em)
			}
			cells = append(cells, cl)
		}
	}
	if err := run(); err != nil {
		return nil, err
	}
	now := tool.mach.GlobalNow()
	var findings []Finding
	for _, cl := range cells {
		var total float64
		for _, em := range cl.ems {
			total += em.Value(now)
		}
		frac := total / nodeSeconds
		if frac > cl.hyp.Threshold {
			findings = append(findings, Finding{
				Hypothesis: cl.hyp.ID,
				FocusLabel: "/CMFarrays/" + cl.name,
				Fraction:   frac, Threshold: cl.hyp.Threshold, Confirmed: true,
			})
		}
	}
	return findings, nil
}

// refineStatements replays the application with statement-constrained
// instances of the confirmed hypotheses' metrics.
func (c *Consultant) refineStatements(factory AppFactory, confirmed []Hypothesis, nodeSeconds float64) ([]Finding, error) {
	tool, run, err := factory()
	if err != nil {
		return nil, err
	}
	stmts := make([]string, 0, len(tool.stmtBlocks))
	for s := range tool.stmtBlocks {
		stmts = append(stmts, s)
	}
	sort.Strings(stmts)
	if len(stmts) == 0 {
		return nil, nil
	}
	tool.EnableGating()

	type cell struct {
		hyp  Hypothesis
		stmt string
		ems  []*EnabledMetric
	}
	var cells []cell
	for _, h := range confirmed {
		for _, stmt := range stmts {
			res := tool.Axis.AddPath(HierStmts, stmt)
			focus, err := NewFocus(res)
			if err != nil {
				return nil, err
			}
			cl := cell{hyp: h, stmt: stmt}
			for _, mid := range h.Metrics {
				em, err := tool.EnableMetric(mid, focus)
				if err != nil {
					return nil, err
				}
				cl.ems = append(cl.ems, em)
			}
			cells = append(cells, cl)
		}
	}
	if err := run(); err != nil {
		return nil, err
	}
	now := tool.mach.GlobalNow()
	var findings []Finding
	for _, cl := range cells {
		var total float64
		for _, em := range cl.ems {
			total += em.Value(now)
		}
		frac := total / nodeSeconds
		if frac > cl.hyp.Threshold {
			findings = append(findings, Finding{
				Hypothesis: cl.hyp.ID,
				FocusLabel: "/CMFstmts/" + cl.stmt,
				Fraction:   frac, Threshold: cl.hyp.Threshold, Confirmed: true,
			})
		}
	}
	return findings, nil
}
