package paradyn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nvmap/internal/diagnose"
	"nvmap/internal/fault"
	"nvmap/internal/machine"
	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file adapts the tool to the budget-bounded why/where search
// engine of internal/diagnose: the Performance Consultant of Section 5,
// grown from the original whole-program/per-statement sketch into a
// real diagnosis module. The consultant evaluates its why-axis
// hypotheses from a *single* instrumented run — the machine's per-node
// counters, its idle spans classified by what the node was waiting for,
// the fault injector's ledger and the interconnect's per-link loads —
// and replays the (deterministic) application with focus-constrained
// instrumentation only where the where-axis refinement genuinely needs
// an isolated number, the replay standing in for Paradyn's online
// instrumentation insertion.

// Why-axis hypothesis IDs the consultant evaluates natively.
const (
	HypCPUBound      = "CPUBound"
	HypCommBound     = "CommBound"
	HypSyncBound     = "SyncBound"
	HypLoadImbalance = "LoadImbalance"
	HypStallBound    = "StallBound"
)

// HierHW is the hardware topology hierarchy link findings refine into.
const HierHW = "HW"

// Hypothesis is one why-axis test. The five native IDs above are
// evaluated from the base run's machine counters; any other ID falls
// back to the named metrics' summed whole-program fraction. Metrics
// also drive the statement/array refinement replays for every
// hypothesis.
type Hypothesis struct {
	ID          string
	Description string
	Metrics     []string
	Threshold   float64
}

// DefaultHypotheses returns the consultant's why axis: CPU bound,
// communication bound (including per-link congestion refinement),
// synchronisation bound (common-mode waits on the control processor),
// load imbalance (per-node busy-time dispersion), and stall bound
// (fault-plan stall and delay signatures).
func DefaultHypotheses() []Hypothesis {
	return []Hypothesis{
		{
			ID:          HypCPUBound,
			Description: "computation dominates node time",
			Metrics:     []string{"computation_time"},
			Threshold:   0.4,
		},
		{
			ID:          HypCommBound,
			Description: "inter-node communication and message waits dominate",
			Metrics:     []string{"point_to_point_time", "broadcast_time"},
			Threshold:   0.3,
		},
		{
			ID:          HypSyncBound,
			Description: "all nodes wait on the control processor",
			Metrics:     []string{"idle_time"},
			Threshold:   0.25,
		},
		{
			ID:          HypLoadImbalance,
			Description: "node busy times diverge (stragglers)",
			Metrics:     []string{"computation_time"},
			Threshold:   0.2,
		},
		{
			ID:          HypStallBound,
			Description: "injected stalls and message delays dominate",
			Metrics:     []string{"idle_time"},
			Threshold:   0.1,
		},
	}
}

// Finding is one consultant conclusion, the flattened form of a
// diagnose.Finding (Search returns these for display; Diagnose returns
// the full report).
type Finding struct {
	Hypothesis string
	FocusLabel string
	Fraction   float64
	Threshold  float64
	Confirmed  bool
	// Source says whether the base instrumented run answered the probe
	// ("sampled") or a focused replay was needed ("re-run").
	Source diagnose.Source
	// Depth is the refinement level (0 = whole program).
	Depth int
}

// String renders a fixed-width report line, e.g.
//
//	CPUBound      at /Machine/node3                     0.6200 (threshold   0.4000) CONFIRMED [sampled]
//
// Fractions always carry four decimals in eight columns so golden
// reports never churn with float formatting.
func (f Finding) String() string {
	verdict := "rejected "
	if f.Confirmed {
		verdict = "CONFIRMED"
	}
	return fmt.Sprintf("%-13s at %-36s %s (threshold %s) %s [%s]",
		f.Hypothesis, f.FocusLabel,
		diagnose.FormatFraction(f.Fraction), diagnose.FormatFraction(f.Threshold),
		verdict, f.Source)
}

// AppFactory builds a fresh, identical application run: a tool bound to a
// new runtime plus the function that executes the application. The
// simulator's determinism makes repeated factories equivalent to
// Paradyn's single online run.
type AppFactory func() (*Tool, func() error, error)

// Consultant searches for bottlenecks.
type Consultant struct {
	Hypotheses []Hypothesis
	// RefineStatements controls statement-level replay probes.
	RefineStatements bool
	// RefineArrays controls array-level replay probes (requires the
	// application to allocate arrays through the runtime, which all CMF
	// programs do).
	RefineArrays bool
	// Budget caps the search's probe count — hypothesis×focus
	// evaluations, sampled and replayed alike (0 selects
	// diagnose.DefaultBudget; negative is an error). When the budget
	// cuts the search the report's Pruned counter says exactly how many
	// enqueued probes went unevaluated.
	Budget int
	// Threshold, when positive, overrides every hypothesis's own
	// confirmation threshold.
	Threshold float64
	// MaxDepth bounds refinement depth (0 selects diagnose.DefaultMaxDepth).
	MaxDepth int
	// OnFinding, when set, observes every finding the moment its probe
	// is evaluated (probe order, before the report tree is sorted) — the
	// hook streaming frontends use to emit findings live.
	OnFinding func(diagnose.Finding)
}

// NewConsultant returns a consultant with the default hypotheses, both
// refinement phases on, and the default probe budget.
func NewConsultant() *Consultant {
	return &Consultant{Hypotheses: DefaultHypotheses(), RefineStatements: true, RefineArrays: true}
}

// Search runs the diagnosis and returns the findings flattened for
// display: every top-level finding (confirmed or not) plus every
// confirmed refinement, sorted by fraction (largest first).
func (c *Consultant) Search(factory AppFactory) ([]Finding, error) {
	rep, err := c.Diagnose(factory)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	rep.Walk(func(f *diagnose.Finding) {
		if f.Depth > 0 && !f.Confirmed {
			return
		}
		findings = append(findings, Finding{
			Hypothesis: f.Hypothesis,
			FocusLabel: f.Focus,
			Fraction:   f.Fraction,
			Threshold:  f.Threshold,
			Confirmed:  f.Confirmed,
			Source:     f.Source,
			Depth:      f.Depth,
		})
	})
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Fraction > findings[j].Fraction })
	return findings, nil
}

// Diagnose runs the budget-bounded why/where search and returns the
// full report: the findings tree plus what the search itself cost
// (probes run and pruned, virtual and wall time).
func (c *Consultant) Diagnose(factory AppFactory) (*diagnose.Report, error) {
	cs, err := newConsultSession(c, factory)
	if err != nil {
		return nil, err
	}
	eng := diagnose.Engine{Budget: c.Budget, MaxDepth: c.MaxDepth, Threshold: c.Threshold, OnProbe: c.OnFinding}
	return eng.Search(cs)
}

// consultSession is the diagnose.Evaluator over one base instrumented
// run plus targeted replays. Everything sampled is captured before the
// search starts, so evaluation order cannot change any answer.
type consultSession struct {
	c       *Consultant
	factory AppFactory

	nodes   int
	elapsed float64 // seconds of virtual time, base run
	baseVT  vtime.Duration
	stats   []machine.NodeStats

	// Idle spans from the base run classified by what the node waited
	// for: the control processor (cpIdle), a peer's message (commIdle),
	// or an injected stall (selfIdle). Seconds per node.
	cpIdle, commIdle, selfIdle []float64

	// Fault-plan signatures from the base run's injector.
	injected fault.Report

	// Interconnect loads aggregated to undirected links, sorted.
	links      []undirectedLoad
	totalBytes float64

	stmts   []string
	arrays  []string
	hasTopo bool

	// customEMs holds whole-program instances for non-native hypothesis
	// IDs, enabled on the base run.
	customEMs map[string][]*EnabledMetric
	baseNow   vtime.Time

	charged bool // base-run cost charged to the first probe
}

type undirectedLoad struct {
	a, b  int // a < b
	bytes float64
}

func (u undirectedLoad) name() string { return fmt.Sprintf("link_hw%d_hw%d", u.a, u.b) }

// newConsultSession runs the single base instrumented run and captures
// every sampled answer the search may need.
func newConsultSession(c *Consultant, factory AppFactory) (*consultSession, error) {
	tool, run, err := factory()
	if err != nil {
		return nil, err
	}
	for _, h := range c.Hypotheses {
		for _, mid := range h.Metrics {
			if _, ok := tool.lib.Get(mid); !ok {
				return nil, fmt.Errorf("consultant: hypothesis %s: unknown metric %q", h.ID, mid)
			}
		}
	}
	cs := &consultSession{c: c, factory: factory, nodes: tool.mach.Nodes()}
	cs.cpIdle = make([]float64, cs.nodes)
	cs.commIdle = make([]float64, cs.nodes)
	cs.selfIdle = make([]float64, cs.nodes)

	// Dynamic mapping discovers the application's arrays for the
	// array-refinement probes; the observer classifies idle spans as
	// they happen (parallel regions flush events deterministically on
	// the driving goroutine, so the sums are worker-count independent).
	tool.EnableDynamicMapping()
	tool.mach.Observe(func(e machine.Event) {
		if e.Kind != machine.EvIdle {
			return
		}
		d := e.End.Sub(e.Start).Seconds()
		switch e.Peer {
		case machine.CP:
			cs.cpIdle[e.Node] += d
		case e.Node:
			cs.selfIdle[e.Node] += d
		default:
			cs.commIdle[e.Node] += d
		}
	})
	cs.customEMs = make(map[string][]*EnabledMetric)
	for _, h := range c.Hypotheses {
		if nativeHypothesis(h.ID) {
			continue
		}
		for _, mid := range h.Metrics {
			em, err := tool.EnableMetric(mid, WholeProgram())
			if err != nil {
				return nil, fmt.Errorf("consultant: hypothesis %s: %w", h.ID, err)
			}
			cs.customEMs[h.ID] = append(cs.customEMs[h.ID], em)
		}
	}

	if err := run(); err != nil {
		return nil, err
	}
	now := tool.mach.GlobalNow()
	cs.baseNow = now
	cs.baseVT = now.Sub(0)
	cs.elapsed = cs.baseVT.Seconds()
	if cs.elapsed == 0 {
		return nil, fmt.Errorf("consultant: application consumed no virtual time")
	}
	cs.stats = make([]machine.NodeStats, cs.nodes)
	for n := 0; n < cs.nodes; n++ {
		cs.stats[n] = tool.mach.Stats(n)
	}
	if in := tool.mach.Faults(); in != nil {
		cs.injected = in.Report()
	}
	cs.hasTopo = tool.mach.Topology() != nil
	agg := map[[2]int]float64{}
	for _, ll := range tool.mach.LinkLoads() {
		a, b := ll.Link.From, ll.Link.To
		if a > b {
			a, b = b, a
		}
		agg[[2]int{a, b}] += float64(ll.Bytes)
		cs.totalBytes += float64(ll.Bytes)
	}
	for k, v := range agg {
		cs.links = append(cs.links, undirectedLoad{a: k[0], b: k[1], bytes: v})
	}
	sort.Slice(cs.links, func(i, j int) bool {
		if cs.links[i].a != cs.links[j].a {
			return cs.links[i].a < cs.links[j].a
		}
		return cs.links[i].b < cs.links[j].b
	})
	// Statements come from the where axis, not stmtBlocks: mapping
	// records also carry placement pairs (hardware leaf -> logical
	// node), and those destination nouns are not statements.
	if root, ok := tool.Axis.Hierarchy(HierStmts); ok {
		for _, c := range root.Children() {
			cs.stmts = append(cs.stmts, c.Name)
		}
	}
	sort.Strings(cs.stmts)
	for a := range tool.arraysByName {
		cs.arrays = append(cs.arrays, a)
	}
	sort.Strings(cs.arrays)
	return cs, nil
}

func nativeHypothesis(id string) bool {
	switch id {
	case HypCPUBound, HypCommBound, HypSyncBound, HypLoadImbalance, HypStallBound:
		return true
	}
	return false
}

func (cs *consultSession) Hypotheses() []diagnose.HypothesisSpec {
	out := make([]diagnose.HypothesisSpec, 0, len(cs.c.Hypotheses))
	for _, h := range cs.c.Hypotheses {
		out = append(out, diagnose.HypothesisSpec{ID: h.ID, Description: h.Description, Threshold: h.Threshold})
	}
	return out
}

func (cs *consultSession) hypothesis(id string) Hypothesis {
	for _, h := range cs.c.Hypotheses {
		if h.ID == id {
			return h
		}
	}
	return Hypothesis{ID: id}
}

// focusPart is one parsed component of a focus label.
type focusPart struct {
	hier string
	name string
}

func parseFocus(focus string) []focusPart {
	if focus == diagnose.FocusWholeProgram {
		return nil
	}
	var parts []focusPart
	for _, piece := range strings.Split(focus, ",") {
		piece = strings.TrimPrefix(piece, "/")
		if i := strings.IndexByte(piece, '/'); i >= 0 {
			parts = append(parts, focusPart{hier: piece[:i], name: piece[i+1:]})
		}
	}
	return parts
}

// nodeSeconds is the base run's available node time.
func (cs *consultSession) nodeSeconds() float64 { return cs.elapsed * float64(cs.nodes) }

// delayShare estimates what share of message-wait idle was injected by
// the fault plan rather than earned by the application: the injector's
// accumulated extra latency over all observed message waits, clamped to
// [0,1].
func (cs *consultSession) delayShare() float64 {
	total := 0.0
	for _, d := range cs.commIdle {
		total += d
	}
	if total == 0 {
		return 0
	}
	share := cs.injected.ExtraLatency.Seconds() / total
	if share > 1 {
		share = 1
	}
	return share
}

func (cs *consultSession) busy(n int) float64 {
	return cs.stats[n].ComputeTime.Seconds() + cs.stats[n].SendTime.Seconds()
}

// Eval measures one (hypothesis, focus) probe. Whole-program, per-node
// and per-link answers come from the base run; statement and array foci
// replay the application with constrained instrumentation.
func (cs *consultSession) Eval(hyp, focus string) (diagnose.Measurement, error) {
	parts := parseFocus(focus)
	m, err := cs.eval(hyp, parts)
	if err != nil {
		return diagnose.Measurement{}, err
	}
	if !cs.charged {
		// The single base instrumented run is the search's founding
		// cost; it lands on the first probe.
		m.Cost += cs.baseVT
		cs.charged = true
	}
	return m, nil
}

func (cs *consultSession) eval(hyp string, parts []focusPart) (diagnose.Measurement, error) {
	// Sampled foci: whole program, one machine node, one HW link.
	if len(parts) == 0 {
		return cs.evalWholeProgram(hyp)
	}
	if len(parts) == 1 {
		switch parts[0].hier {
		case HierMachine:
			n, err := strconv.Atoi(strings.TrimPrefix(parts[0].name, "node"))
			if err != nil || n < 0 || n >= cs.nodes {
				return diagnose.Measurement{}, fmt.Errorf("consultant: bad node focus %q", parts[0].name)
			}
			return cs.evalNode(hyp, n)
		case HierHW:
			return cs.evalLink(parts[0].name)
		}
	}
	// Everything else needs a constrained replay.
	return cs.rerun(cs.hypothesis(hyp), parts)
}

func (cs *consultSession) evalWholeProgram(hyp string) (diagnose.Measurement, error) {
	ns := cs.nodeSeconds()
	sampled := func(f float64) (diagnose.Measurement, error) {
		return diagnose.Measurement{Fraction: f, Source: diagnose.SourceSampled}, nil
	}
	switch hyp {
	case HypCPUBound:
		total := 0.0
		for n := range cs.stats {
			total += cs.stats[n].ComputeTime.Seconds()
		}
		return sampled(total / ns)
	case HypCommBound:
		// Send costs plus message waits, minus the share of waiting the
		// fault plan injected (that belongs to StallBound).
		total := 0.0
		for n := range cs.stats {
			total += cs.stats[n].SendTime.Seconds() + cs.commIdle[n]
		}
		total -= cs.injected.ExtraLatency.Seconds()
		if total < 0 {
			total = 0
		}
		return sampled(total / ns)
	case HypSyncBound:
		// Common-mode control-processor waits: the *minimum* per-node CP
		// idle fraction. A straggler's peers wait plenty, but the
		// straggler itself does not — only genuinely synchronised
		// waiting (serialised dispatch, broadcast trees) confirms.
		minIdle := cs.cpIdle[0]
		for _, d := range cs.cpIdle[1:] {
			if d < minIdle {
				minIdle = d
			}
		}
		return sampled(minIdle / cs.elapsed)
	case HypLoadImbalance:
		// Dispersion of per-node busy time: how much of the run the
		// heaviest node worked beyond the mean.
		maxBusy, meanBusy := 0.0, 0.0
		for n := range cs.stats {
			b := cs.busy(n)
			meanBusy += b
			if b > maxBusy {
				maxBusy = b
			}
		}
		meanBusy /= float64(cs.nodes)
		return sampled((maxBusy - meanBusy) / cs.elapsed)
	case HypStallBound:
		// Fault-plan signatures: self-inflicted stall idle plus however
		// much of the observed message waiting the injector's extra
		// latency can account for.
		total := sum(cs.selfIdle)
		extra := cs.injected.ExtraLatency.Seconds()
		if ct := sum(cs.commIdle); extra > ct {
			extra = ct
		}
		return sampled((total + extra) / ns)
	default:
		total := 0.0
		for _, em := range cs.customEMs[hyp] {
			total += em.Value(cs.baseNow)
		}
		return sampled(total / ns)
	}
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

func (cs *consultSession) evalNode(hyp string, n int) (diagnose.Measurement, error) {
	sampled := func(f float64) (diagnose.Measurement, error) {
		return diagnose.Measurement{Fraction: f, Source: diagnose.SourceSampled}, nil
	}
	switch hyp {
	case HypCPUBound:
		return sampled(cs.stats[n].ComputeTime.Seconds() / cs.elapsed)
	case HypCommBound:
		earned := cs.commIdle[n] * (1 - cs.delayShare())
		return sampled((cs.stats[n].SendTime.Seconds() + earned) / cs.elapsed)
	case HypSyncBound:
		return sampled(cs.cpIdle[n] / cs.elapsed)
	case HypLoadImbalance:
		meanBusy := 0.0
		for i := range cs.stats {
			meanBusy += cs.busy(i)
		}
		meanBusy /= float64(cs.nodes)
		return sampled((cs.busy(n) - meanBusy) / cs.elapsed)
	case HypStallBound:
		return sampled((cs.selfIdle[n] + cs.commIdle[n]*cs.delayShare()) / cs.elapsed)
	default:
		total := 0.0
		for _, em := range cs.customEMs[hyp] {
			total += em.Instance.NodeValue(n, cs.baseNow)
		}
		return sampled(total / cs.elapsed)
	}
}

// evalLink answers a per-link probe from the base run's loads: the
// link's share of all interconnect traffic. Unlike the time hypotheses
// this is a traffic fraction — a congested link carries an outsized
// share of the bytes.
func (cs *consultSession) evalLink(name string) (diagnose.Measurement, error) {
	if cs.totalBytes == 0 {
		return diagnose.Measurement{Source: diagnose.SourceSampled}, nil
	}
	for _, l := range cs.links {
		if l.name() == name {
			return diagnose.Measurement{Fraction: l.bytes / cs.totalBytes, Source: diagnose.SourceSampled}, nil
		}
	}
	return diagnose.Measurement{Source: diagnose.SourceSampled}, nil
}

// Children implements the refinement rules. Only confirmed findings are
// refined, and only down to MaxDepth; the engine enforces both.
func (cs *consultSession) Children(hyp, focus string) []string {
	parts := parseFocus(focus)
	var out []string
	switch {
	case len(parts) == 0: // whole program
		for n := 0; n < cs.nodes; n++ {
			out = append(out, "/Machine/node"+strconv.Itoa(n))
		}
		switch hyp {
		case HypCommBound:
			if cs.c.RefineStatements {
				for _, s := range cs.stmts {
					out = append(out, "/CMFstmts/"+s)
				}
			}
			for _, l := range cs.links {
				out = append(out, "/HW/"+l.name())
			}
		case HypSyncBound, HypStallBound, HypLoadImbalance:
			// Node-level localisation only.
		default: // CPUBound and custom hypotheses
			if cs.c.RefineStatements {
				for _, s := range cs.stmts {
					out = append(out, "/CMFstmts/"+s)
				}
			}
			if cs.c.RefineArrays {
				for _, a := range cs.arrays {
					out = append(out, "/CMFarrays/"+a)
				}
			}
		}
	case len(parts) == 1 && parts[0].hier == HierMachine && hyp == HypLoadImbalance:
		// Localise the straggler's excess: which statement keeps it busy.
		if cs.c.RefineStatements {
			for _, s := range cs.stmts {
				out = append(out, "/CMFstmts/"+s+",/"+HierMachine+"/"+parts[0].name)
			}
		}
	case len(parts) == 1 && parts[0].hier == HierStmts && hyp == HypCommBound:
		// Which links does this statement's traffic cross? The automated
		// answer to "which statement causes cross-torus traffic".
		for _, l := range cs.links {
			out = append(out, "/CMFstmts/"+parts[0].name+",/HW/"+l.name())
		}
	}
	return out
}

// rerun replays the application with focus-constrained instrumentation
// and measures the probe's hypothesis there. A focus pairing a
// statement with a HW link is answered by route attribution: the bytes
// the statement pushed across that link, as a share of the link's
// traffic.
func (cs *consultSession) rerun(h Hypothesis, parts []focusPart) (diagnose.Measurement, error) {
	tool, run, err := cs.factory()
	if err != nil {
		return diagnose.Measurement{}, err
	}
	tool.EnableDynamicMapping()
	tool.EnableGating()

	var link *undirectedLoad
	var stmt string
	var resources []*Resource
	nodeConstrained := false
	for _, p := range parts {
		switch p.hier {
		case HierHW:
			for i := range cs.links {
				if cs.links[i].name() == p.name {
					link = &cs.links[i]
				}
			}
			if link == nil {
				return diagnose.Measurement{}, fmt.Errorf("consultant: unknown link focus %q", p.name)
			}
		case HierStmts:
			stmt = p.name
			resources = append(resources, tool.Axis.AddPath(HierStmts, p.name))
		case HierArrays:
			resources = append(resources, tool.Axis.AddPath(HierArrays, p.name))
		case HierMachine:
			nodeConstrained = true
			resources = append(resources, tool.Axis.AddPath(HierMachine, p.name))
		default:
			return diagnose.Measurement{}, fmt.Errorf("consultant: unknown focus hierarchy %q", p.hier)
		}
	}

	if link != nil {
		return cs.rerunRoute(tool, run, stmt, link)
	}
	if stmt != "" && !nodeConstrained && h.ID == HypCommBound && cs.hasTopo {
		// On a topology, "is this statement communication bound?" is a
		// traffic question: what share of all link-crossing bytes did it
		// send? Confirmed statements then refine per link.
		return cs.rerunRoute(tool, run, stmt, nil)
	}

	focus, err := NewFocus(resources...)
	if err != nil {
		return diagnose.Measurement{}, err
	}
	var ems []*EnabledMetric
	for _, mid := range h.Metrics {
		em, err := tool.EnableMetric(mid, focus)
		if err != nil {
			return diagnose.Measurement{}, err
		}
		ems = append(ems, em)
	}
	if err := run(); err != nil {
		return diagnose.Measurement{}, err
	}
	now := tool.mach.GlobalNow()
	elapsed := now.Sub(0)
	denom := elapsed.Seconds() * float64(tool.mach.Nodes())
	if nodeConstrained {
		denom = elapsed.Seconds()
	}
	if denom == 0 {
		return diagnose.Measurement{}, fmt.Errorf("consultant: replay consumed no virtual time")
	}
	total := 0.0
	for _, em := range ems {
		total += em.Value(now)
	}
	return diagnose.Measurement{Fraction: total / denom, Source: diagnose.SourceRerun, Cost: elapsed}, nil
}

// rerunRoute replays the run observing every routed message: bytes
// crossing the focal link (any link when link is nil) are attributed to
// the statement when the sender's SAS shows one of the statement's
// blocks active at send time (the gating instrumentation maintains
// exactly that sentence). The answer — the statement's share of the
// focal traffic — is how "which statement causes cross-torus traffic"
// gets answered automatically.
func (cs *consultSession) rerunRoute(tool *Tool, run func() error, stmt string, link *undirectedLoad) (diagnose.Measurement, error) {
	blocks := tool.stmtBlocks[stmt]
	if len(blocks) == 0 {
		// A statement with no block mapping never executes node code, so
		// it cannot have sent anything.
		return diagnose.Measurement{Source: diagnose.SourceRerun}, nil
	}
	var linkBytes, stmtBytes float64
	tool.mach.OnRoute(func(from, to, bytes int, links []machine.Link, at vtime.Time) {
		crosses := link == nil && len(links) > 0
		if link != nil {
			for _, l := range links {
				a, b := l.From, l.To
				if a > b {
					a, b = b, a
				}
				if a == link.a && b == link.b {
					crosses = true
					break
				}
			}
		}
		if !crosses {
			return
		}
		linkBytes += float64(bytes)
		s := tool.SASes.Node(from)
		for _, blk := range blocks {
			if s.Active(nv.NewSentence(VerbBlockExec, nv.NounID(blk))) {
				stmtBytes += float64(bytes)
				return
			}
		}
	})
	if err := run(); err != nil {
		return diagnose.Measurement{}, err
	}
	elapsed := tool.mach.GlobalNow().Sub(0)
	frac := 0.0
	if linkBytes > 0 {
		frac = stmtBytes / linkBytes
	}
	return diagnose.Measurement{Fraction: frac, Source: diagnose.SourceRerun, Cost: elapsed}, nil
}
