package paradyn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddPathAndFind(t *testing.T) {
	w := NewWhereAxis()
	leaf := w.AddPath("CMFarrays", "bow.fcm", "CORNER", "TOT")
	if leaf.FullName() != "CMFarrays/bow.fcm/CORNER/TOT" {
		t.Fatalf("FullName = %q", leaf.FullName())
	}
	got, ok := w.Find("CMFarrays/bow.fcm/CORNER/TOT")
	if !ok || got != leaf {
		t.Fatal("Find did not return the added leaf")
	}
	if _, ok := w.Find("CMFarrays/bow.fcm/ghost"); ok {
		t.Fatal("Find hit a ghost")
	}
	if _, ok := w.Find("NoHierarchy/x"); ok {
		t.Fatal("Find hit a ghost hierarchy")
	}
	// Idempotent adds share structure.
	again := w.AddPath("CMFarrays", "bow.fcm", "CORNER", "TOT")
	if again != leaf {
		t.Fatal("AddPath duplicated a resource")
	}
}

func TestHierarchyOrderAndChildren(t *testing.T) {
	w := NewWhereAxis()
	w.AddPath("B", "x")
	w.AddPath("A", "y")
	if h := w.Hierarchies(); len(h) != 2 || h[0] != "B" || h[1] != "A" {
		t.Fatalf("Hierarchies = %v", h)
	}
	root, ok := w.Hierarchy("B")
	if !ok || len(root.Children()) != 1 {
		t.Fatal("Hierarchy lookup failed")
	}
	if _, ok := root.Child("x"); !ok {
		t.Fatal("Child lookup failed")
	}
	if !w.AddPath("B", "x").IsLeaf() {
		t.Fatal("leaf not a leaf")
	}
}

func TestRemove(t *testing.T) {
	w := NewWhereAxis()
	w.AddPath("H", "a", "b")
	if err := w.Remove("H/a"); err == nil {
		t.Fatal("removed interior resource")
	}
	if err := w.Remove("H"); err == nil {
		t.Fatal("removed hierarchy root")
	}
	if err := w.Remove("H/ghost"); err == nil {
		t.Fatal("removed ghost")
	}
	if err := w.Remove("H/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Find("H/a/b"); ok {
		t.Fatal("leaf survives removal")
	}
	if err := w.Remove("H/a"); err != nil {
		t.Fatalf("removing emptied parent: %v", err)
	}
}

// The bow.fcm example of Figure 8: module with six functions, CORNER with
// five arrays, TOT expanded into subregions.
func TestRenderFigure8Shape(t *testing.T) {
	w := NewWhereAxis()
	for _, fn := range []string{"BOW", "CORNER", "EDGE", "FACE", "INIT", "MAIN"} {
		w.AddPath("CMFarrays", "bow.fcm", fn)
	}
	for _, arr := range []string{"TOT", "U", "V", "W", "Z"} {
		w.AddPath("CMFarrays", "bow.fcm", "CORNER", arr)
	}
	for _, sub := range []string{"node0:[0,256)", "node1:[256,512)"} {
		w.AddPath("CMFarrays", "bow.fcm", "CORNER", "TOT", sub)
	}
	out := w.Render()
	for _, want := range []string{"CMFarrays", "bow.fcm", "CORNER", "TOT", "node1:[256,512)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Indentation deepens along the path.
	lines := strings.Split(out, "\n")
	indent := func(name string) int {
		for _, l := range lines {
			if strings.TrimSpace(l) == name {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		return -1
	}
	if !(indent("bow.fcm") < indent("CORNER") && indent("CORNER") < indent("TOT")) {
		t.Fatalf("indentation not nested:\n%s", out)
	}
}

func TestFocus(t *testing.T) {
	w := NewWhereAxis()
	arr := w.AddPath("CMFarrays", "TOT")
	node := w.AddPath("Machine", "node2")
	f, err := NewFocus(arr, node)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := f.Part("CMFarrays"); !ok || r != arr {
		t.Fatal("Part(CMFarrays) wrong")
	}
	if _, ok := f.Part("Code"); ok {
		t.Fatal("Part hit unselected hierarchy")
	}
	if got := f.String(); got != "/CMFarrays/TOT,/Machine/node2" {
		t.Fatalf("Focus.String = %q", got)
	}
	if WholeProgram().String() != "/WholeProgram" {
		t.Fatal("WholeProgram string wrong")
	}
	other := w.AddPath("CMFarrays", "U")
	if _, err := NewFocus(arr, other); err == nil {
		t.Fatal("two selections in one hierarchy accepted")
	}
}

// Property: AddPath then Find round-trips for arbitrary short paths.
func TestAddFindProperty(t *testing.T) {
	clean := func(s string) string {
		s = strings.ReplaceAll(s, "/", "_")
		if s == "" {
			return "x"
		}
		return s
	}
	f := func(a, b, c string) bool {
		w := NewWhereAxis()
		path := []string{clean(a), clean(b), clean(c)}
		leaf := w.AddPath("H", path...)
		got, ok := w.Find("H/" + strings.Join(path, "/"))
		return ok && got == leaf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVizTable(t *testing.T) {
	rows := []Row{
		{Metric: "Summations", Focus: "/CMFarrays/A", Value: 3, Units: "operations"},
		{Metric: "Summation Time", Focus: "/WholeProgram", Value: 0.25, Units: "seconds"},
	}
	out := Table("metrics", rows)
	for _, want := range []string{"metrics", "Summations", "3 ops", "0.250000 s", "/CMFarrays/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestVizBarChart(t *testing.T) {
	rows := []Row{
		{Focus: "node0", Value: 10, Units: "ops"},
		{Focus: "node1", Value: 5, Units: "ops"},
		{Focus: "node2", Value: 0, Units: "ops"},
	}
	out := BarChart("sends per node", rows, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	zero := strings.Count(lines[3], "#")
	if full != 20 || half != 10 || zero != 0 {
		t.Fatalf("bars = %d/%d/%d, want 20/10/0:\n%s", full, half, zero, out)
	}
}

func TestVizSortRows(t *testing.T) {
	rows := []Row{{Focus: "a", Value: 1}, {Focus: "b", Value: 9}, {Focus: "c", Value: 5}}
	SortRows(rows)
	if rows[0].Focus != "b" || rows[2].Focus != "a" {
		t.Fatalf("SortRows = %v", rows)
	}
}

func TestVizFormatValueDefaultUnits(t *testing.T) {
	if got := formatValue(2.5, ""); got != "2.5" {
		t.Errorf("formatValue = %q", got)
	}
	if got := formatValue(2.5, "widgets"); got != "2.5 widgets" {
		t.Errorf("formatValue = %q", got)
	}
}
