package paradyn

import (
	"fmt"
	"sort"
	"strings"

	"nvmap/internal/vtime"
)

// Paradyn "includes performance display modules that allow users to view
// performance metric streams graphically" (Section 5). This file holds
// their textual analogues: a metric table, a bar chart, and a time plot
// over a metric's folding histogram. The displays "simply treat a data
// object as a resource like any other" — rows take arbitrary focus
// labels.

// Row is one metric-focus reading for the table and bar chart displays.
type Row struct {
	Metric string
	Focus  string
	Value  float64
	Units  string
	// Degraded marks a reading whose histogram lost samples to channel
	// overflow; the displays flag it so the user knows the time-series
	// view has holes.
	Degraded bool
	// Partial, when non-empty, annotates a reading missing a permanently
	// lost node's contribution, e.g. "(partial: lost node 2 at 1.2ms)".
	Partial string
}

// Table renders rows as an aligned three-column table.
func Table(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	wMetric, wFocus := len("metric"), len("focus")
	for _, r := range rows {
		if len(r.Metric) > wMetric {
			wMetric = len(r.Metric)
		}
		if len(r.Focus) > wFocus {
			wFocus = len(r.Focus)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %s\n", wMetric, "metric", wFocus, "focus", "value")
	for _, r := range rows {
		mark := ""
		if r.Degraded {
			mark = "  (degraded)"
		}
		if r.Partial != "" {
			mark += "  " + r.Partial
		}
		fmt.Fprintf(&b, "  %-*s  %-*s  %s%s\n", wMetric, r.Metric, wFocus, r.Focus, formatValue(r.Value, r.Units), mark)
	}
	return b.String()
}

func formatValue(v float64, units string) string {
	switch units {
	case "seconds":
		return fmt.Sprintf("%.6f s", v)
	case "operations", "ops":
		return fmt.Sprintf("%.0f ops", v)
	case "%":
		return fmt.Sprintf("%.2f %%", v)
	case "":
		return fmt.Sprintf("%g", v)
	default:
		return fmt.Sprintf("%g %s", v, units)
	}
}

// BarChart renders rows as horizontal bars scaled to the largest value.
func BarChart(title string, rows []Row, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	wFocus := 0
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Focus) > wFocus {
			wFocus = len(r.Focus)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		n := 0
		if max > 0 {
			n = int(r.Value / max * float64(width))
		}
		fmt.Fprintf(&b, "  %-*s |%-*s| %s\n", wFocus, r.Focus, width, strings.Repeat("#", n),
			formatValue(r.Value, r.Units))
	}
	return b.String()
}

// TimePlot renders an enabled metric's histogram as a labelled sparkline.
func TimePlot(em *EnabledMetric, width int) string {
	if width <= 0 {
		width = 60
	}
	line := em.Hist.Sparkline(width)
	if line == "" {
		line = strings.Repeat("_", width)
	}
	span := em.Hist.BinWidth().Scale(em.Hist.NumBins())
	return fmt.Sprintf("%s @ %s\n  0s |%s| %v (bin %v, total %g)\n",
		em.Metric.Name, em.Focus, line, vtime.Duration(span), em.Hist.BinWidth(), em.Hist.Total())
}

// SortRows orders rows by value descending (stable on label).
func SortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
}
