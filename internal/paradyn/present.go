package paradyn

import (
	"fmt"

	"nvmap/internal/dyninst"
	"nvmap/internal/mapping"
	"nvmap/internal/mdl"
	"nvmap/internal/nv"
	"nvmap/internal/pifgen"
	"nvmap/internal/vtime"
)

// This file implements the Section 3 presentation flow end-to-end: time
// the Base-level node code blocks with dynamic instrumentation, express
// the measurements as Base-level sentences ({block, CPU Utilization}),
// and map them upward through the static mapping table to source-level
// structure ({line, Executes}) under either assignment policy.

// blockTimer pairs a block function with its metric instance.
type blockTimer struct {
	block string
	inst  *mdl.Instance
}

// blockTimers are stored on the tool once EnableBlockTimers has run.
type blockTimers struct {
	timers []blockTimer
	start  vtime.Time
}

// EnableBlockTimers inserts a process timer around every node code block
// known from static mapping information. Call after LoadPIF and before
// the run.
func (t *Tool) EnableBlockTimers() error {
	if t.Loaded == nil {
		return fmt.Errorf("paradyn: block timers need static mapping information (LoadPIF)")
	}
	if t.blockT != nil {
		return fmt.Errorf("paradyn: block timers already enabled")
	}
	bt := &blockTimers{start: t.mach.GlobalNow()}
	for _, block := range t.Blocks() {
		m := &mdl.Metric{
			ID:    "block_time:" + block,
			Name:  "CPU time of " + block,
			Units: "seconds",
			Level: pifgen.LevelBase,
			Kind:  mdl.Time,
			Timer: dyninst.ProcessTimer,
			Probes: []mdl.Probe{
				{Point: dyninst.Entry(block), Action: mdl.ActStart},
				{Point: dyninst.Exit(block), Action: mdl.ActStop},
			},
		}
		inst, err := m.Instantiate(t.inst, t.mach.Nodes(), nil)
		if err != nil {
			return err
		}
		bt.timers = append(bt.timers, blockTimer{block: block, inst: inst})
	}
	t.blockT = bt
	return nil
}

// BlockMeasurements reads the block timers as Base-level measurements:
// each block's accumulated CPU time expressed as "% CPU" of the elapsed
// node-seconds, attached to the sentence {block, CPU Utilization} — the
// exact source sentences of Figure 2's mappings.
func (t *Tool) BlockMeasurements(now vtime.Time) ([]mapping.Measurement, error) {
	if t.blockT == nil {
		return nil, fmt.Errorf("paradyn: block timers not enabled")
	}
	elapsed := now.Sub(t.blockT.start).Seconds() * float64(t.mach.Nodes())
	if elapsed <= 0 {
		return nil, fmt.Errorf("paradyn: no time elapsed since block timers were enabled")
	}
	cpuVerb, ok := t.Loaded.VerbID(pifgen.LevelCMF, pifgen.VerbCPU)
	if !ok {
		cpuVerb, ok = t.Loaded.VerbID(pifgen.LevelBase, pifgen.VerbCPU)
	}
	if !ok {
		return nil, fmt.Errorf("paradyn: PIF declares no %q verb", pifgen.VerbCPU)
	}
	var out []mapping.Measurement
	for _, bt := range t.blockT.timers {
		noun, ok := t.Loaded.NounID(pifgen.LevelBase, bt.block)
		if !ok {
			continue
		}
		out = append(out, mapping.Measurement{
			Sentence: nv.NewSentence(cpuVerb, noun),
			Cost: nv.Cost{
				Kind:  nv.CostPercent,
				Value: 100 * bt.inst.Value(now) / elapsed,
			},
		})
	}
	return out, nil
}

// PresentBlockTimes runs the whole Section 3 flow: read the block timers
// and assign their costs to source-level structure under the policy. The
// returned rows are ready for the Table display.
func (t *Tool) PresentBlockTimes(now vtime.Time, policy mapping.Policy) ([]Row, error) {
	ms, err := t.BlockMeasurements(now)
	if err != nil {
		return nil, err
	}
	assigned, unmapped, err := t.PresentUp(ms, policy)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(assigned)+len(unmapped))
	for _, a := range assigned {
		rows = append(rows, Row{
			Metric: "CPU Utilization (" + policy.String() + ")",
			Focus:  a.Target(),
			Value:  a.Cost.Value,
			Units:  "%",
		})
	}
	for _, u := range unmapped {
		rows = append(rows, Row{
			Metric: "CPU Utilization (unmapped)",
			Focus:  u.Sentence.String(),
			Value:  u.Cost.Value,
			Units:  "%",
		})
	}
	SortRows(rows)
	return rows, nil
}
