package paradyn

import (
	"strings"
	"testing"

	"nvmap/internal/cmf"
	"nvmap/internal/cmrts"
	"nvmap/internal/daemon"
	"nvmap/internal/dyninst"
	"nvmap/internal/machine"
	"nvmap/internal/mapping"
	"nvmap/internal/mdl"
	"nvmap/internal/nv"
	"nvmap/internal/pifgen"
)

const testProgram = `PROGRAM corr
REAL A(128)
REAL B(128)
REAL ASUM
REAL BMAX
FORALL (I = 1:128) A(I) = I
B = A * 2.0
ASUM = SUM(A)
BMAX = MAXVAL(B)
B = CSHIFT(B, 4)
END
`

// app builds a fresh tool + runtime + compiled program runner.
func app(t *testing.T, nodes int, fuse bool) (*Tool, *cmf.Compiled, func() error) {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, err := cmrts.New(m, inst, cmrts.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	tool, err := New(rt, mdl.StdLibrary(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cmf.CompileSource(testProgram, cmf.Options{Fuse: fuse, SourceFile: "corr.fcm"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := pifgen.FromListing(strings.NewReader(cp.Listing()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.LoadPIF(f); err != nil {
		t.Fatal(err)
	}
	ex := cmf.NewExecutor(cp, rt, nil)
	return tool, cp, ex.Run
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, mdl.StdLibrary(), Options{}); err == nil {
		t.Fatal("nil runtime accepted")
	}
}

func TestBaseHierarchies(t *testing.T) {
	tool, _, _ := app(t, 4, false)
	if _, ok := tool.Axis.Find("Machine/node3"); !ok {
		t.Fatal("Machine hierarchy missing node3")
	}
	if _, ok := tool.Axis.Find("Code/" + cmrts.RoutineSend); !ok {
		t.Fatal("Code hierarchy missing CMRTS_send")
	}
}

func TestLoadPIFBuildsStatementHierarchy(t *testing.T) {
	tool, cp, _ := app(t, 2, false)
	if _, ok := tool.Axis.Find("CMFstmts/line6"); !ok {
		t.Fatalf("CMFstmts missing line6:\n%s", tool.Axis.Render())
	}
	blocks := tool.BlocksOf("line6")
	if len(blocks) != 1 || blocks[0] != cp.Infos[6].Block.Name {
		t.Fatalf("BlocksOf(line6) = %v", blocks)
	}
	if stmts := tool.StmtsOf(blocks[0]); len(stmts) != 1 || stmts[0] != "line6" {
		t.Fatalf("StmtsOf = %v", stmts)
	}
	if len(tool.Blocks()) == 0 {
		t.Fatal("no blocks indexed")
	}
}

func TestDynamicMappingTracksArrays(t *testing.T) {
	tool, _, run := app(t, 4, false)
	tool.EnableDynamicMapping()
	if err := run(); err != nil {
		t.Fatal(err)
	}
	ids := tool.ArrayIDs("A")
	if len(ids) != 1 {
		t.Fatalf("ArrayIDs(A) = %v", ids)
	}
	r, ok := tool.Axis.Find("CMFarrays/A")
	if !ok {
		t.Fatalf("CMFarrays/A missing:\n%s", tool.Axis.Render())
	}
	// Subregions appear as children (Figure 8's expanded TOT).
	if len(r.Children()) != 4 {
		t.Fatalf("A has %d subregions, want 4", len(r.Children()))
	}
}

func TestDynamicMappingDeallocation(t *testing.T) {
	m, _ := machine.New(machine.DefaultConfig(2))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
	tool, _ := New(rt, mdl.StdLibrary(), Options{})
	tool.EnableDynamicMapping()
	a, err := rt.Allocate("TMP", []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.ArrayIDs("TMP")) != 1 {
		t.Fatal("allocation not tracked")
	}
	if err := rt.Free(a); err != nil {
		t.Fatal(err)
	}
	if len(tool.ArrayIDs("TMP")) != 0 {
		t.Fatal("deallocation not tracked")
	}
	if _, ok := tool.Axis.Find("CMFarrays/TMP"); ok {
		t.Fatal("freed array still on axis")
	}
}

func TestWholeProgramMetrics(t *testing.T) {
	tool, _, run := app(t, 4, false)
	sums, err := tool.EnableMetric("summations", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	maxes, err := tool.EnableMetric("maxval_count", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := tool.EnableMetric("point_to_point_ops", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	idle, err := tool.EnableMetric("idle_time", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()
	if got := sums.Value(now); got != 1 {
		t.Errorf("summations = %g, want 1", got)
	}
	if got := maxes.Value(now); got != 1 {
		t.Errorf("maxval_count = %g, want 1", got)
	}
	// CSHIFT moved data between nodes.
	if got := p2p.Value(now); got == 0 {
		t.Error("point_to_point_ops = 0")
	}
	// The ground truth agrees.
	if got := p2p.Value(now); int(got) != tool.Runtime().Count(cmrts.RoutineSend) {
		t.Errorf("p2p = %g, runtime counted %d", got, tool.Runtime().Count(cmrts.RoutineSend))
	}
	if idle.Value(now) <= 0 {
		t.Error("idle_time = 0; nodes must wait for dispatches")
	}
}

func TestNodeConstrainedMetric(t *testing.T) {
	tool, _, run := app(t, 4, false)
	node2, ok := tool.Axis.Find("Machine/node2")
	if !ok {
		t.Fatal("node2 missing")
	}
	focus, err := NewFocus(node2)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tool.EnableMetric("computations", focus)
	if err != nil {
		t.Fatal(err)
	}
	allCounts, err := tool.EnableMetric("computations", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	nodeTime, err := tool.EnableMetric("computation_time", focus)
	if err != nil {
		t.Fatal(err)
	}
	allTime, err := tool.EnableMetric("computation_time", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()
	if counts.Value(now) == 0 {
		t.Fatal("node-constrained metric saw nothing")
	}
	// Collective-operation counts are focus-width averages: node 2 sees
	// exactly the operations the whole program performed.
	if counts.Value(now) != allCounts.Value(now) {
		t.Fatalf("node2 count (%g) should equal whole-program count (%g)",
			counts.Value(now), allCounts.Value(now))
	}
	// Summed time metrics do shrink with the focus.
	if nodeTime.Value(now) <= 0 || nodeTime.Value(now) >= allTime.Value(now) {
		t.Fatalf("node2 time (%g) should be positive and < whole-program time (%g)",
			nodeTime.Value(now), allTime.Value(now))
	}
	// The constrained value equals the unconstrained instance's node view.
	if nodeTime.Value(now) != allTime.Instance.NodeValue(2, now) {
		t.Fatalf("constrained %g != per-node %g", nodeTime.Value(now), allTime.Instance.NodeValue(2, now))
	}
}

func TestArrayConstrainedMetric(t *testing.T) {
	tool, _, run := app(t, 4, false)
	tool.EnableDynamicMapping()
	tool.EnableGating()

	// Count computations while array B participates. A-only statements
	// (the FORALL and SUM) must not be charged.
	arrB := tool.Axis.AddPath(HierArrays, "B")
	focusB, err := NewFocus(arrB)
	if err != nil {
		t.Fatal(err)
	}
	onB, err := tool.EnableMetric("computations", focusB)
	if err != nil {
		t.Fatal(err)
	}
	all, err := tool.EnableMetric("computations", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()
	if onB.Value(now) == 0 {
		t.Fatal("array focus saw nothing")
	}
	if onB.Value(now) >= all.Value(now) {
		t.Fatalf("B-constrained (%g) should be < whole (%g)", onB.Value(now), all.Value(now))
	}
}

func TestArrayFocusRequiresGating(t *testing.T) {
	tool, _, _ := app(t, 2, false)
	arr := tool.Axis.AddPath(HierArrays, "A")
	focus, _ := NewFocus(arr)
	if _, err := tool.EnableMetric("computations", focus); err == nil {
		t.Fatal("array focus without gating accepted")
	}
}

func TestStatementConstrainedMetric(t *testing.T) {
	tool, cp, run := app(t, 4, false)
	tool.EnableGating()

	// Constrain summation counting to the SUM statement's line.
	sumLine := "line" + itoa(findLine(cp, cmf.KindReduce, "SUM"))
	res, ok := tool.Axis.Find("CMFstmts/" + sumLine)
	if !ok {
		t.Fatalf("statement %s missing from axis", sumLine)
	}
	focus, _ := NewFocus(res)
	em, err := tool.EnableMetric("summations", focus)
	if err != nil {
		t.Fatal(err)
	}
	other, err := tool.EnableMetric("maxval_count", focus)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()
	if em.Value(now) != 1 {
		t.Fatalf("summations at %s = %g, want 1", sumLine, em.Value(now))
	}
	// The MAXVAL happens in a different statement's block: not charged.
	if other.Value(now) != 0 {
		t.Fatalf("maxval_count at %s = %g, want 0", sumLine, other.Value(now))
	}
}

func findLine(cp *cmf.Compiled, kind cmf.StmtKind, intrinsic string) int {
	for line, info := range cp.Infos {
		if info.Kind == kind && info.Intrinsic == intrinsic {
			return line
		}
	}
	return -1
}

func itoa(n int) string {
	if n < 0 {
		return "?"
	}
	digits := ""
	if n == 0 {
		return "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestStatementFocusUnknownStatement(t *testing.T) {
	tool, _, _ := app(t, 2, false)
	tool.EnableGating()
	res := tool.Axis.AddPath(HierStmts, "line999")
	focus, _ := NewFocus(res)
	if _, err := tool.EnableMetric("summations", focus); err == nil {
		t.Fatal("unknown statement focus accepted")
	}
}

func TestCombinedFocus(t *testing.T) {
	tool, _, run := app(t, 4, false)
	tool.EnableGating()
	node1, _ := tool.Axis.Find("Machine/node1")
	stmt, ok := tool.Axis.Find("CMFstmts/line6")
	if !ok {
		t.Fatal("line6 missing")
	}
	focus, err := NewFocus(node1, stmt)
	if err != nil {
		t.Fatal(err)
	}
	em, err := tool.EnableMetric("computations", focus)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()
	if em.Value(now) == 0 {
		t.Fatal("combined focus saw nothing")
	}
	if got := focus.String(); !strings.Contains(got, "node1") || !strings.Contains(got, "line6") {
		t.Fatalf("focus string = %q", got)
	}
}

func TestDisableFreezesMetric(t *testing.T) {
	tool, _, run := app(t, 2, false)
	em, err := tool.EnableMetric("node_activations", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Disable(em); err != nil {
		t.Fatal(err)
	}
	if err := tool.Disable(em); err == nil {
		t.Fatal("double disable accepted")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if em.Value(tool.Runtime().Machine().GlobalNow()) != 0 {
		t.Fatal("disabled metric still measured")
	}
}

func TestUnknownMetric(t *testing.T) {
	tool, _, _ := app(t, 2, false)
	if _, err := tool.EnableMetric("ghost", WholeProgram()); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestHistogramStreams(t *testing.T) {
	tool, _, run := app(t, 4, false)
	em, err := tool.EnableMetric("computation_time", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	tool.SampleAll(tool.Runtime().Machine().GlobalNow())
	if em.Hist.Total() <= 0 {
		t.Fatal("histogram stayed empty")
	}
	// The histogram total tracks the cumulative value.
	now := tool.Runtime().Machine().GlobalNow()
	if diff := em.Hist.Total() - em.Value(now); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("hist total %g != value %g", em.Hist.Total(), em.Value(now))
	}
}

func TestPresentUpMergePolicy(t *testing.T) {
	tool, cp, _ := app(t, 2, true) // fused: one block implements two lines
	// Find a block with two statements.
	var fused string
	for _, b := range cp.Blocks {
		if len(b.Lines) == 2 {
			fused = b.Name
		}
	}
	if fused == "" {
		t.Fatal("no fused block in fixture")
	}
	blockNoun, ok := tool.Loaded.NounID(pifgen.LevelBase, fused)
	if !ok {
		t.Fatalf("block noun %q missing", fused)
	}
	cpuVerb, _ := tool.Loaded.VerbID(pifgen.LevelBase, pifgen.VerbCPU)
	src := nv.NewSentence(cpuVerb, blockNoun)
	ms := []mapping.Measurement{{Sentence: src, Cost: nv.Cost{Kind: nv.CostPercent, Value: 80}}}

	merged, unmapped, err := tool.PresentUp(ms, mapping.Merge)
	if err != nil {
		t.Fatal(err)
	}
	if len(unmapped) != 0 || len(merged) != 1 {
		t.Fatalf("merged = %v, unmapped = %v", merged, unmapped)
	}
	if len(merged[0].MergedUnit) != 2 || merged[0].Cost.Value != 80 {
		t.Fatalf("merge = %+v", merged[0])
	}
	split, _, err := tool.PresentUp(ms, mapping.Split)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 2 || split[0].Cost.Value != 40 {
		t.Fatalf("split = %+v", split)
	}
}

func TestPresentUpNeedsPIF(t *testing.T) {
	m, _ := machine.New(machine.DefaultConfig(2))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
	tool, _ := New(rt, mdl.StdLibrary(), Options{})
	if _, _, err := tool.PresentUp(nil, mapping.Merge); err == nil {
		t.Fatal("PresentUp without PIF accepted")
	}
}

func TestSamplingIsMonotone(t *testing.T) {
	tool, _, run := app(t, 2, false)
	em, err := tool.EnableMetric("computations", WholeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	// Out-of-order manual samples must be ignored, not corrupt state.
	tool.SampleAll(tool.Runtime().Machine().GlobalNow())
	tool.SampleAll(0)
	em.Sample(0)
	if em.Hist.Total() < 0 {
		t.Fatal("histogram corrupted by stale sample")
	}
}

var benchSink float64

func BenchmarkGatedMetricRun(b *testing.B) {
	cp, err := cmf.CompileSource(testProgram, cmf.Options{SourceFile: "corr.fcm"})
	if err != nil {
		b.Fatal(err)
	}
	f, err := pifgen.FromListing(strings.NewReader(cp.Listing()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := machine.New(machine.DefaultConfig(8))
		inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
		rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
		tool, _ := New(rt, mdl.StdLibrary(), Options{})
		if err := tool.LoadPIF(f); err != nil {
			b.Fatal(err)
		}
		tool.EnableGating()
		em, _ := tool.EnableMetric("computations", WholeProgram())
		if err := cmf.NewExecutor(cp, rt, nil).Run(); err != nil {
			b.Fatal(err)
		}
		benchSink = em.Value(m.GlobalNow())
	}
}

func TestBlockTimersPresentation(t *testing.T) {
	tool, cp, run := app(t, 2, true) // fused: one-to-many mapping exists
	if err := tool.EnableBlockTimers(); err != nil {
		t.Fatal(err)
	}
	if err := tool.EnableBlockTimers(); err == nil {
		t.Fatal("double enable accepted")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	now := tool.Runtime().Machine().GlobalNow()

	ms, err := tool.BlockMeasurements(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(cp.Blocks) {
		t.Fatalf("measurements = %d, blocks = %d", len(ms), len(cp.Blocks))
	}
	var total float64
	for _, m := range ms {
		if m.Cost.Kind != nv.CostPercent || m.Cost.Value < 0 {
			t.Fatalf("measurement = %+v", m)
		}
		total += m.Cost.Value
	}
	if total <= 0 || total > 100 {
		t.Fatalf("total block CPU = %g%%, expected in (0, 100]", total)
	}

	merged, err := tool.PresentBlockTimes(now, mapping.Merge)
	if err != nil {
		t.Fatal(err)
	}
	split, err := tool.PresentBlockTimes(now, mapping.Split)
	if err != nil {
		t.Fatal(err)
	}
	// The fused block's two lines appear as one merged unit vs two split rows.
	if len(split) <= len(merged) {
		t.Fatalf("split rows (%d) should exceed merged rows (%d)", len(split), len(merged))
	}
	foundMergedUnit := false
	for _, r := range merged {
		if strings.Contains(r.Focus, " + ") {
			foundMergedUnit = true
		}
	}
	if !foundMergedUnit {
		t.Fatalf("no merged unit in %v", merged)
	}
	// Conservation: both policies account the same total.
	sum := func(rows []Row) float64 {
		var s float64
		for _, r := range rows {
			s += r.Value
		}
		return s
	}
	if d := sum(split) - sum(merged); d > 1e-9 || d < -1e-9 {
		t.Fatalf("policies disagree on total: %g vs %g", sum(split), sum(merged))
	}
}

func TestBlockTimersRequirePIF(t *testing.T) {
	m, _ := machine.New(machine.DefaultConfig(2))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
	tool, _ := New(rt, mdl.StdLibrary(), Options{})
	if err := tool.EnableBlockTimers(); err == nil {
		t.Fatal("block timers without PIF accepted")
	}
	if _, err := tool.BlockMeasurements(0); err == nil {
		t.Fatal("measurements without timers accepted")
	}
}

func TestDynamicMappingFlowsOverDaemonChannel(t *testing.T) {
	tool, _, run := app(t, 2, false)
	tool.EnableDynamicMapping()
	if err := run(); err != nil {
		t.Fatal(err)
	}
	st := tool.Channel().Stats()
	// Two arrays (A and B) were allocated: two noun definitions crossed
	// the channel.
	if st.ByKind[daemon.KindNounDef] != 2 {
		t.Fatalf("noun defs over channel = %d, want 2 (%+v)", st.ByKind[daemon.KindNounDef], st)
	}
	if st.Delivered == 0 {
		t.Fatal("nothing drained from the channel")
	}
	// The data manager applied them.
	if len(tool.ArrayIDs("A")) != 1 {
		t.Fatal("allocation not applied from channel")
	}
}

func TestChannelDrainOnAccessor(t *testing.T) {
	// An allocation with no subsequent machine events must still become
	// visible when the tool's read side is queried (ArrayIDs drains).
	m, _ := machine.New(machine.DefaultConfig(2))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := cmrts.New(m, inst, cmrts.DefaultCosts())
	tool, _ := New(rt, mdl.StdLibrary(), Options{})
	tool.EnableDynamicMapping()
	if _, err := rt.Allocate("LATE", []int{8}); err != nil {
		t.Fatal(err)
	}
	if got := tool.ArrayIDs("LATE"); len(got) != 1 {
		t.Fatalf("ArrayIDs after accessor drain = %v", got)
	}
}
