// Package paradyn implements the performance tool of the paper's case
// study (Section 5): a Paradyn-like measurement system that imports
// static mapping information from PIF files, receives dynamic mapping
// information over the instrumentation channel, organises resources into
// the where-axis hierarchies of Figure 8, instantiates MDL-defined
// metrics with dynamic instrumentation, stores metric streams in folding
// time histograms, presents low-level costs against high-level structure
// through the mapping table, and includes a simplified Performance
// Consultant that searches for bottlenecks.
package paradyn

import (
	"fmt"
	"sort"
	"strings"
)

// Resource is one node of a where-axis hierarchy (Figure 8: e.g. the
// module bow.fcm, the function CORNER within it, the array TOT within
// CORNER, and TOT's per-node subregions).
type Resource struct {
	Name     string
	Path     []string // hierarchy name first, e.g. ["CMFarrays", "bow.fcm", "CORNER", "TOT"]
	children map[string]*Resource
	order    []string
}

// FullName renders "CMFarrays/bow.fcm/CORNER/TOT".
func (r *Resource) FullName() string { return strings.Join(r.Path, "/") }

// Children returns the resource's children in insertion order.
func (r *Resource) Children() []*Resource {
	out := make([]*Resource, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.children[name])
	}
	return out
}

// Child returns a named child.
func (r *Resource) Child(name string) (*Resource, bool) {
	c, ok := r.children[name]
	return c, ok
}

// IsLeaf reports whether the resource has no children.
func (r *Resource) IsLeaf() bool { return len(r.children) == 0 }

// WhereAxis is the tool's resource display: a forest of hierarchies.
// Users select foci by picking one resource from each hierarchy they wish
// to constrain (an unselected hierarchy means "all").
type WhereAxis struct {
	roots map[string]*Resource
	order []string
}

// NewWhereAxis returns an empty axis.
func NewWhereAxis() *WhereAxis {
	return &WhereAxis{roots: make(map[string]*Resource)}
}

// AddHierarchy creates (or returns) a top-level hierarchy such as
// "CMFstmts", "CMFarrays", "Machine", or "Code".
func (w *WhereAxis) AddHierarchy(name string) *Resource {
	if r, ok := w.roots[name]; ok {
		return r
	}
	r := &Resource{Name: name, Path: []string{name}, children: make(map[string]*Resource)}
	w.roots[name] = r
	w.order = append(w.order, name)
	return r
}

// Hierarchy returns a hierarchy root.
func (w *WhereAxis) Hierarchy(name string) (*Resource, bool) {
	r, ok := w.roots[name]
	return r, ok
}

// Hierarchies lists hierarchy names in creation order.
func (w *WhereAxis) Hierarchies() []string { return append([]string(nil), w.order...) }

// AddPath inserts (idempotently) a resource path under a hierarchy and
// returns the leaf resource. Intermediate resources are created as
// needed.
func (w *WhereAxis) AddPath(hierarchy string, path ...string) *Resource {
	cur := w.AddHierarchy(hierarchy)
	for _, name := range path {
		next, ok := cur.children[name]
		if !ok {
			next = &Resource{
				Name:     name,
				Path:     append(append([]string(nil), cur.Path...), name),
				children: make(map[string]*Resource),
			}
			cur.children[name] = next
			cur.order = append(cur.order, name)
		}
		cur = next
	}
	return cur
}

// Find resolves a slash-separated resource path ("CMFarrays/bow.fcm/TOT").
func (w *WhereAxis) Find(full string) (*Resource, bool) {
	parts := strings.Split(full, "/")
	if len(parts) == 0 {
		return nil, false
	}
	cur, ok := w.roots[parts[0]]
	if !ok {
		return nil, false
	}
	for _, p := range parts[1:] {
		cur, ok = cur.children[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Remove deletes a leaf resource (e.g. a deallocated array). Removing a
// resource with children or a hierarchy root is an error.
func (w *WhereAxis) Remove(full string) error {
	r, ok := w.Find(full)
	if !ok {
		return fmt.Errorf("paradyn: no resource %q", full)
	}
	if len(r.Path) < 2 {
		return fmt.Errorf("paradyn: cannot remove hierarchy root %q", full)
	}
	if !r.IsLeaf() {
		return fmt.Errorf("paradyn: resource %q has children", full)
	}
	parentPath := strings.Join(r.Path[:len(r.Path)-1], "/")
	parent, ok := w.Find(parentPath)
	if !ok {
		return fmt.Errorf("paradyn: internal: parent of %q missing", full)
	}
	delete(parent.children, r.Name)
	for i, n := range parent.order {
		if n == r.Name {
			parent.order = append(parent.order[:i], parent.order[i+1:]...)
			break
		}
	}
	return nil
}

// Render draws the axis as an ASCII tree, the textual analogue of the
// Figure 8 where-axis display.
func (w *WhereAxis) Render() string {
	var b strings.Builder
	b.WriteString("WhereAxis\n")
	for _, name := range w.order {
		renderResource(&b, w.roots[name], "  ")
	}
	return b.String()
}

func renderResource(b *strings.Builder, r *Resource, indent string) {
	fmt.Fprintf(b, "%s%s\n", indent, r.Name)
	for _, c := range r.Children() {
		renderResource(b, c, indent+"  ")
	}
}

// Focus is a selection of resources, at most one per hierarchy. The empty
// focus means "whole program".
type Focus struct {
	parts map[string]*Resource
}

// NewFocus builds a focus from resources; two resources from the same
// hierarchy are an error.
func NewFocus(resources ...*Resource) (Focus, error) {
	f := Focus{parts: make(map[string]*Resource)}
	for _, r := range resources {
		h := r.Path[0]
		if _, dup := f.parts[h]; dup {
			return Focus{}, fmt.Errorf("paradyn: focus selects two resources from hierarchy %q", h)
		}
		f.parts[h] = r
	}
	return f, nil
}

// WholeProgram is the unconstrained focus.
func WholeProgram() Focus { return Focus{parts: map[string]*Resource{}} }

// Part returns the focus's selection within a hierarchy.
func (f Focus) Part(hierarchy string) (*Resource, bool) {
	r, ok := f.parts[hierarchy]
	return r, ok
}

// String renders like Paradyn's focus notation:
// "/CMFarrays/bow.fcm/TOT,/Machine/node2".
func (f Focus) String() string {
	if len(f.parts) == 0 {
		return "/WholeProgram"
	}
	var parts []string
	for _, r := range f.parts {
		parts = append(parts, "/"+r.FullName())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
