// Package paradyn implements the performance tool of the paper's case
// study (Section 5): a Paradyn-like measurement system that imports
// static mapping information from PIF files, receives dynamic mapping
// information over the instrumentation channel, organises resources into
// the where-axis hierarchies of Figure 8, instantiates MDL-defined
// metrics with dynamic instrumentation, stores metric streams in folding
// time histograms, presents low-level costs against high-level structure
// through the mapping table, and includes a simplified Performance
// Consultant that searches for bottlenecks.
package paradyn

import (
	"fmt"
	"sort"
	"strings"
)

// resourceIdxThreshold is the fan-out past which a resource switches
// from a linear child scan to a name index. Most resources have a
// handful of children, where the scan beats a map lookup and — more
// importantly — costs no allocation to build or clone.
const resourceIdxThreshold = 8

// Resource is one node of a where-axis hierarchy (Figure 8: e.g. the
// module bow.fcm, the function CORNER within it, the array TOT within
// CORNER, and TOT's per-node subregions).
type Resource struct {
	Name string
	Path []string // hierarchy name first, e.g. ["CMFarrays", "bow.fcm", "CORNER", "TOT"]
	// kids holds the children in insertion order; idx shadows it by name
	// once the fan-out crosses resourceIdxThreshold (nil below it).
	kids []*Resource
	idx  map[string]*Resource
}

// FullName renders "CMFarrays/bow.fcm/CORNER/TOT".
func (r *Resource) FullName() string { return strings.Join(r.Path, "/") }

// Children returns the resource's children in insertion order.
func (r *Resource) Children() []*Resource {
	return append([]*Resource(nil), r.kids...)
}

// Child returns a named child.
func (r *Resource) Child(name string) (*Resource, bool) {
	if r.idx != nil {
		c, ok := r.idx[name]
		return c, ok
	}
	for _, c := range r.kids {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// addChild appends a child, maintaining the name index past the
// threshold.
func (r *Resource) addChild(c *Resource) {
	r.kids = append(r.kids, c)
	if r.idx != nil {
		r.idx[c.Name] = c
		return
	}
	if len(r.kids) > resourceIdxThreshold {
		r.idx = make(map[string]*Resource, 2*len(r.kids))
		for _, k := range r.kids {
			r.idx[k.Name] = k
		}
	}
}

// removeChild deletes a named child, preserving sibling order.
func (r *Resource) removeChild(name string) {
	for i, c := range r.kids {
		if c.Name == name {
			r.kids = append(r.kids[:i], r.kids[i+1:]...)
			break
		}
	}
	if r.idx != nil {
		delete(r.idx, name)
	}
}

// IsLeaf reports whether the resource has no children.
func (r *Resource) IsLeaf() bool { return len(r.kids) == 0 }

// count returns the number of resources in the subtree rooted here,
// including the root itself.
func (r *Resource) count() int {
	n := 1
	for _, c := range r.kids {
		n += c.count()
	}
	return n
}

// WhereAxis is the tool's resource display: a forest of hierarchies.
// Users select foci by picking one resource from each hierarchy they wish
// to constrain (an unselected hierarchy means "all").
type WhereAxis struct {
	roots map[string]*Resource
	order []string
	// dirty records any structural change since construction or Clone;
	// the tool's prototype cache uses it to tell a pristine base-axis
	// clone (safe to replace wholesale) from one a caller has extended.
	dirty bool
}

// NewWhereAxis returns an empty axis.
func NewWhereAxis() *WhereAxis {
	return &WhereAxis{roots: make(map[string]*Resource)}
}

// AddHierarchy creates (or returns) a top-level hierarchy such as
// "CMFstmts", "CMFarrays", "Machine", or "Code".
func (w *WhereAxis) AddHierarchy(name string) *Resource {
	if r, ok := w.roots[name]; ok {
		return r
	}
	r := &Resource{Name: name, Path: []string{name}}
	w.roots[name] = r
	w.order = append(w.order, name)
	w.dirty = true
	return r
}

// Hierarchy returns a hierarchy root.
func (w *WhereAxis) Hierarchy(name string) (*Resource, bool) {
	r, ok := w.roots[name]
	return r, ok
}

// Hierarchies lists hierarchy names in creation order.
func (w *WhereAxis) Hierarchies() []string { return append([]string(nil), w.order...) }

// AddPath inserts (idempotently) a resource path under a hierarchy and
// returns the leaf resource. Intermediate resources are created as
// needed.
func (w *WhereAxis) AddPath(hierarchy string, path ...string) *Resource {
	cur := w.AddHierarchy(hierarchy)
	for _, name := range path {
		next, ok := cur.Child(name)
		if !ok {
			next = &Resource{
				Name: name,
				Path: append(append([]string(nil), cur.Path...), name),
			}
			cur.addChild(next)
			w.dirty = true
		}
		cur = next
	}
	return cur
}

// Find resolves a slash-separated resource path ("CMFarrays/bow.fcm/TOT").
func (w *WhereAxis) Find(full string) (*Resource, bool) {
	parts := strings.Split(full, "/")
	if len(parts) == 0 {
		return nil, false
	}
	cur, ok := w.roots[parts[0]]
	if !ok {
		return nil, false
	}
	for _, p := range parts[1:] {
		cur, ok = cur.Child(p)
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Remove deletes a leaf resource (e.g. a deallocated array). Removing a
// resource with children or a hierarchy root is an error.
func (w *WhereAxis) Remove(full string) error {
	r, ok := w.Find(full)
	if !ok {
		return fmt.Errorf("paradyn: no resource %q", full)
	}
	if len(r.Path) < 2 {
		return fmt.Errorf("paradyn: cannot remove hierarchy root %q", full)
	}
	if !r.IsLeaf() {
		return fmt.Errorf("paradyn: resource %q has children", full)
	}
	parentPath := strings.Join(r.Path[:len(r.Path)-1], "/")
	parent, ok := w.Find(parentPath)
	if !ok {
		return fmt.Errorf("paradyn: internal: parent of %q missing", full)
	}
	parent.removeChild(r.Name)
	w.dirty = true
	return nil
}

// Clone returns a deep copy of the axis, built from two slab
// allocations: one []Resource for every node of the forest and one
// []*Resource carved into the child windows. Name strings and Path
// slices are shared with the original — both are immutable once a
// resource exists (AddPath builds a fresh Path per resource and nothing
// ever rewrites one). Child windows are carved with full capacity, so
// the first AddPath under a cloned resource reallocates its kids slice
// instead of clobbering a sibling's window; resources added after the
// clone are ordinary heap allocations and every *Resource stays stable
// for the life of the axis, which is what Focus requires.
//
// The prototype pattern behind session startup: the axis for a given
// (static mapping file, node count) pair is built once, cached, and
// Cloned per session — a handful of allocations instead of hundreds.
func (w *WhereAxis) Clone() *WhereAxis {
	total := 0
	for _, name := range w.order {
		total += w.roots[name].count()
	}
	out := &WhereAxis{
		roots: make(map[string]*Resource, len(w.roots)),
		order: append([]string(nil), w.order...),
	}
	slab := make([]Resource, total)
	ptrs := make([]*Resource, total)
	next := 0
	var clone func(src *Resource) *Resource
	clone = func(src *Resource) *Resource {
		dst := &slab[next]
		next++
		dst.Name = src.Name
		dst.Path = src.Path
		if n := len(src.kids); n > 0 {
			start := total - n
			total -= n
			window := ptrs[start : start+n : start+n]
			for i, c := range src.kids {
				window[i] = clone(c)
			}
			dst.kids = window
			// The name index is deliberately not cloned: a map copy is
			// the most expensive part of the deep copy, Child falls back
			// to a linear scan that is fine at prototype fan-outs, and
			// addChild rebuilds the index if the clone keeps growing.
		}
		return dst
	}
	for _, name := range out.order {
		out.roots[name] = clone(w.roots[name])
	}
	return out
}

// Render draws the axis as an ASCII tree, the textual analogue of the
// Figure 8 where-axis display.
func (w *WhereAxis) Render() string {
	var b strings.Builder
	b.WriteString("WhereAxis\n")
	for _, name := range w.order {
		renderResource(&b, w.roots[name], "  ")
	}
	return b.String()
}

func renderResource(b *strings.Builder, r *Resource, indent string) {
	fmt.Fprintf(b, "%s%s\n", indent, r.Name)
	for _, c := range r.kids {
		renderResource(b, c, indent+"  ")
	}
}

// Focus is a selection of resources, at most one per hierarchy. The empty
// focus means "whole program".
type Focus struct {
	parts map[string]*Resource
}

// NewFocus builds a focus from resources; two resources from the same
// hierarchy are an error.
func NewFocus(resources ...*Resource) (Focus, error) {
	f := Focus{parts: make(map[string]*Resource)}
	for _, r := range resources {
		h := r.Path[0]
		if _, dup := f.parts[h]; dup {
			return Focus{}, fmt.Errorf("paradyn: focus selects two resources from hierarchy %q", h)
		}
		f.parts[h] = r
	}
	return f, nil
}

// WholeProgram is the unconstrained focus.
func WholeProgram() Focus { return Focus{parts: map[string]*Resource{}} }

// Part returns the focus's selection within a hierarchy.
func (f Focus) Part(hierarchy string) (*Resource, bool) {
	r, ok := f.parts[hierarchy]
	return r, ok
}

// String renders like Paradyn's focus notation:
// "/CMFarrays/bow.fcm/TOT,/Machine/node2".
func (f Focus) String() string {
	if len(f.parts) == 0 {
		return "/WholeProgram"
	}
	var parts []string
	for _, r := range f.parts {
		parts = append(parts, "/"+r.FullName())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
