package paradyn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nvmap/internal/cmrts"
	"nvmap/internal/daemon"
	"nvmap/internal/dyninst"
	"nvmap/internal/hist"
	"nvmap/internal/machine"
	"nvmap/internal/mapping"
	"nvmap/internal/mdl"
	"nvmap/internal/nv"
	"nvmap/internal/obs"
	"nvmap/internal/par"
	"nvmap/internal/pif"
	"nvmap/internal/sas"
	"nvmap/internal/vtime"
)

// IdleRoutine is the pseudo-routine the tool's machine adapter fires
// around node idle intervals; the standard library's idle_time metric
// instruments it.
const IdleRoutine = "MACH_idle"

// Verbs for the dynamic sentences the tool's gating instrumentation
// maintains in the per-node SASes.
const (
	// VerbArrayActive marks a parallel array currently passed to an
	// executing node code block (Section 6.1's boolean protocol).
	VerbArrayActive nv.VerbID = "ArrayActive"
	// VerbBlockExec marks a node code block currently executing.
	VerbBlockExec nv.VerbID = "BlockExecutes"
)

// ringCapacity sizes the daemon channel's SPSC ring. At 128 bytes per
// message the ring is an 8KB allocation zeroed on every session start,
// so it is kept just big enough for a typical eagerly-drained sampling
// round; a wider round spills to the mutex queue, which is correct,
// merely slower.
const ringCapacity = 64

// Hierarchy names the tool maintains.
const (
	HierMachine = "Machine"
	HierCode    = "Code"
	HierStmts   = "CMFstmts"
	HierArrays  = "CMFarrays"
)

// Options configures a Tool.
type Options struct {
	// SampleEvery is the virtual-time interval between metric samples
	// deposited into histograms. Zero selects 50µs.
	SampleEvery vtime.Duration
	// HistBins sets histogram resolution (0 = hist.DefaultBins).
	HistBins int
	// Workers bounds the worker pool SampleAll uses to read enabled
	// metric values concurrently, and is inherited by the tool's SAS
	// registry: 0 selects GOMAXPROCS, 1 keeps sampling on the caller
	// goroutine. Never changes any sample value or ordering.
	Workers int
	// Obs attaches the observability plane: sampling rounds and PIF
	// import record spans, the daemon channel registers its traffic
	// metrics and batch spans, and the per-node SASes record
	// notification spans. Nil (the default) disables all of it.
	Obs *obs.Plane
}

// Tool is the measurement system bound to one application run.
type Tool struct {
	rt   *cmrts.Runtime
	mach *machine.Machine
	inst *dyninst.Manager
	lib  *mdl.Library
	opts Options

	// Axis is the where-axis resource display.
	Axis *WhereAxis
	// Loaded holds static mapping information once LoadPIF has run.
	Loaded *pif.Loaded
	// SASes are the per-node Sets of Active Sentences.
	SASes *sas.Registry

	// Dynamic mapping state (Section 6.1).
	arraysByName map[string][]cmrts.ArrayID
	arrayNames   map[cmrts.ArrayID]string
	gating       bool
	dynMapping   bool

	// Static mapping indexes from PIF.
	stmtBlocks map[string][]string // statement noun -> block function names
	blockStmts map[string][]string

	enabled    []*EnabledMetric
	lastSample vtime.Time
	blockT     *blockTimers
	// shed is the governor-driven degradation level: each level doubles
	// the effective sampling interval and raises the event pump's drain
	// floor (batching harder). 0 is full fidelity.
	shed int
	// sampleBuf is the reusable batch SampleAll assembles before one
	// SendBatch; the channel copies messages out, so the buffer is
	// safely reused across sampling rounds. liveBuf and valueBuf are the
	// matching reusable scratch for one round's samplable metrics and
	// their concurrently read values; pool materialises on the first
	// round big enough to fan out (see Options.Workers).
	sampleBuf []daemon.Message
	liveBuf   []*EnabledMetric
	valueBuf  []float64
	pool      *par.Pool

	// channel is the daemon conduit of Section 5: the instrumentation
	// library emits dynamic mapping information and performance samples
	// onto it and the data manager (this Tool) drains it, interleaved
	// in emission order.
	channel *daemon.Channel

	// droppedSamples counts samples lost to channel overflow, per
	// metric ID — the degradation ledger.
	droppedSamples map[string]int

	// removedIDs is the removal ledger: every deallocated runtime array
	// ID, kept forever. A noun definition re-delivered for one of these
	// (a recovered node replaying its registrations) is ignored — a
	// crash must not resurrect a deallocated noun.
	removedIDs map[cmrts.ArrayID]bool

	// lostNodes records nodes declared permanently lost, for the
	// per-focus partial-answer annotations.
	lostNodes []LostNodeMark

	// obsT, when non-nil, records sampling-round and PIF-import spans
	// (see Options.Obs).
	obsT *obs.Tracer

	// mapsShared marks stmtBlocks/blockStmts as aliases of a cached
	// prototype's maps; a second LoadPIF copies them before appending.
	mapsShared bool

	// drainFn is drainChannel's delivery callback, built once so the
	// per-event drain does not allocate a closure.
	drainFn func([]daemon.Message) error
}

// toolProto caches the session-independent products of one LoadPIF call
// for a (static mapping file, node count) pair: the loaded registries,
// the fully built where axis (base hierarchies plus the PIF's), and the
// statement/block indexes. Everything cached is immutable — the axis is
// Cloned per tool, the maps are shared read-only (copy-on-write on a
// second LoadPIF), and pif.Loaded is only ever read after Load returns —
// so sessions over the same program skip the import entirely.
type toolProto struct {
	loaded     *pif.Loaded
	axis       *WhereAxis
	stmtBlocks map[string][]string
	blockStmts map[string][]string
}

type protoKey struct {
	pf    *pif.File
	nodes int
}

// protoCache memoizes LoadPIF products per (file pointer, node count).
// Bounded: a pathological stream of distinct files (e.g. per-session
// topology merges) resets the table rather than growing it.
var protoCache struct {
	sync.Mutex
	m map[protoKey]*toolProto
}

// baseAxisCache memoizes the pre-PIF where axis per node count (the
// Machine hierarchy plus the fixed runtime Code routines).
var baseAxisCache struct {
	sync.Mutex
	m map[int]*WhereAxis
}

// LostNodeMark records one permanently lost node for answer annotation.
type LostNodeMark struct {
	Node int
	At   vtime.Time
}

// EnabledMetric is one active metric-focus pair with its histogram
// stream.
type EnabledMetric struct {
	Metric   *mdl.Metric
	Focus    Focus
	Instance *mdl.Instance
	Hist     *hist.Histogram

	tool      *Tool
	index     int
	focusStr  string // Focus.String(), rendered once at enable time
	lastValue float64
	lastTime  vtime.Time
	disabled  bool
	// degraded is set once any of this pair's samples is lost to
	// channel overflow: the histogram has holes from then on.
	degraded bool
}

// Degraded reports whether any of this pair's samples was lost to
// channel overflow, leaving holes in the histogram. The aggregate
// Value is unaffected (it reads the instrumentation counters
// directly).
func (em *EnabledMetric) Degraded() bool { return em.degraded }

// Partial returns a non-empty annotation when this pair's answer is
// incomplete because a node covered by its focus was permanently lost:
// "(partial: lost node N at T)". Rather than silently report the
// survivors' aggregate as the whole truth, the tool marks every answer
// the dead node should have contributed to. A focus constrained to a
// different node is unaffected and returns "".
func (em *EnabledMetric) Partial() string {
	if em.tool == nil || len(em.tool.lostNodes) == 0 {
		return ""
	}
	focusNode := -1
	if r, ok := em.Focus.Part(HierMachine); ok {
		if n, err := strconv.Atoi(strings.TrimPrefix(r.Name, "node")); err == nil {
			focusNode = n
		}
	}
	var parts []string
	for _, l := range em.tool.lostNodes {
		if focusNode >= 0 && l.Node != focusNode {
			continue
		}
		parts = append(parts, fmt.Sprintf("lost node %d at %v", l.Node, l.At))
	}
	if len(parts) == 0 {
		return ""
	}
	return "(partial: " + strings.Join(parts, ", ") + ")"
}

// New builds a tool over a runtime. The machine adapter (idle
// pseudo-points and the histogram sampler) attaches immediately.
func New(rt *cmrts.Runtime, lib *mdl.Library, opts Options) (*Tool, error) {
	if rt == nil || lib == nil {
		return nil, fmt.Errorf("paradyn: runtime and metric library are required")
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 50 * vtime.Microsecond
	}
	t := &Tool{
		rt:           rt,
		mach:         rt.Machine(),
		inst:         rt.Inst(),
		lib:          lib,
		opts:         opts,
		Axis:         NewWhereAxis(),
		SASes:        sas.NewRegistry(sas.Options{Workers: opts.Workers, Obs: opts.Obs}),
		arraysByName: make(map[string][]cmrts.ArrayID),
		arrayNames:   make(map[cmrts.ArrayID]string),
		stmtBlocks:   make(map[string][]string),
		blockStmts:   make(map[string][]string),
		channel:      daemon.NewChannel(),

		droppedSamples: make(map[string]int),
		removedIDs:     make(map[cmrts.ArrayID]bool),

		obsT: opts.Obs.Trace(),
	}
	t.channel.SetObs(opts.Obs)
	// Account every sample lost to channel overflow and mark its
	// metric-focus pair degraded. Mapping records never reach this
	// observer — the channel parks them for retry instead.
	t.channel.OnDrop(func(m daemon.Message) {
		if m.Kind != daemon.KindSample {
			return
		}
		t.droppedSamples[m.Sample.MetricID]++
		if m.Sample.Enabled >= 0 && m.Sample.Enabled < len(t.enabled) {
			t.enabled[m.Sample.Enabled].degraded = true
		}
	})
	// Under the Backpressure policy a full channel stalls the sender
	// while the data manager drains — the lossless option.
	t.channel.OnBackpressure(t.drainChannel)
	// The tool's traffic is single-producer/single-consumer: the
	// instrumentation library emits and the data manager drains on the
	// driving goroutine. Arm the lock-free fast path; it stands down by
	// itself if a fault plan bounds the channel, the supervisor taps it,
	// or the observability plane attaches.
	t.channel.EnableSPSC(ringCapacity)
	t.buildBaseHierarchies()
	t.mach.Observe(t.machineEvent)
	return t, nil
}

// Runtime returns the measured runtime.
func (t *Tool) Runtime() *cmrts.Runtime { return t.rt }

// Library returns the metric library.
func (t *Tool) Library() *mdl.Library { return t.lib }

// Inst returns the instrumentation manager.
func (t *Tool) Inst() *dyninst.Manager { return t.inst }

// buildBaseHierarchies installs the pre-PIF axis: the Machine hierarchy
// for the partition and the fixed runtime Code routines. The axis is a
// pure function of the node count, so a prototype is built once per
// count and Cloned per tool.
func (t *Tool) buildBaseHierarchies() {
	nodes := t.mach.Nodes()
	baseAxisCache.Lock()
	proto := baseAxisCache.m[nodes]
	baseAxisCache.Unlock()
	if proto == nil {
		proto = NewWhereAxis()
		for n := 0; n < nodes; n++ {
			proto.AddPath(HierMachine, fmt.Sprintf("node%d", n))
		}
		for _, routine := range []string{
			cmrts.RoutineAlloc, cmrts.RoutineArgs, cmrts.RoutineBroadcast,
			cmrts.RoutineCleanup, cmrts.RoutineCompute, cmrts.RoutineDispatch,
			cmrts.RoutineReduceMax, cmrts.RoutineReduceMin, cmrts.RoutineReduceSum,
			cmrts.RoutineRotate, cmrts.RoutineScan, cmrts.RoutineSend,
			cmrts.RoutineShift, cmrts.RoutineSort, cmrts.RoutineTranspose,
		} {
			proto.AddPath(HierCode, routine)
		}
		baseAxisCache.Lock()
		if baseAxisCache.m == nil || len(baseAxisCache.m) >= 64 {
			baseAxisCache.m = make(map[int]*WhereAxis)
		}
		baseAxisCache.m[nodes] = proto
		baseAxisCache.Unlock()
	}
	t.Axis = proto.Clone()
}

// shedDrainFloor is the event pump's base drain threshold under
// shedding: at shed level k the pump lets the channel accumulate
// 64<<(k-1) messages before draining, amortising drain overhead when
// the governor has asked the tool to back off. Accessors, SampleAll and
// FlushChannel still drain eagerly, so no caller ever reads stale state.
const shedDrainFloor = 64

// Shed raises the tool's degradation level (it never lowers within a
// run): sampling interval doubles per level and the event pump batches
// its drains harder. The session's budget governor calls this, on the
// driving goroutine, when a sheddable ceiling comes under pressure.
func (t *Tool) Shed(level int) {
	if level > t.shed {
		t.shed = level
	}
}

// ShedLevel returns the current degradation level (0 = full fidelity).
func (t *Tool) ShedLevel() int { return t.shed }

// sampleInterval is the effective sampling interval: the configured one
// doubled per shed level.
func (t *Tool) sampleInterval() vtime.Duration {
	return t.opts.SampleEvery << uint(t.shed)
}

// machineEvent adapts machine events: idle intervals become pseudo-point
// fires for the idle_time metric, and every event drives the sampler.
func (t *Tool) machineEvent(e machine.Event) {
	if e.Kind == machine.EvIdle && e.Node >= 0 {
		ctx := dyninst.Context{Node: e.Node, Now: e.Start, Tag: e.Tag}
		t.inst.Fire(dyninst.Entry(IdleRoutine), ctx)
		ctx.Now = e.End
		t.inst.Fire(dyninst.Exit(IdleRoutine), ctx)
	}
	if t.shed == 0 || t.channel.Pending() >= shedDrainFloor<<uint(t.shed-1) {
		t.drainChannel()
	}
	now := t.mach.GlobalNow()
	if now.Sub(t.lastSample) >= t.sampleInterval() {
		t.SampleAll(now)
	}
}

// LoadPIF imports static mapping information (Section 5: "Paradyn
// daemons import static mapping information via PIF files just after
// they load each application executable"). Hierarchy-root nouns become
// where-axis hierarchies; the mapping records build the statement/block
// indexes used for upward presentation and statement gating.
func (t *Tool) LoadPIF(f *pif.File) error {
	if t.obsT != nil {
		ref := t.obsT.Begin(obs.StagePIFImport, "", obs.NodeCP, t.mach.GlobalNow())
		defer func() { t.obsT.End(ref, t.mach.GlobalNow()) }()
	}
	// A first load onto a pristine base axis can adopt the cached
	// prototype wholesale: the clone is a couple of slab allocations
	// instead of re-importing the file and rebuilding the forest.
	key := protoKey{pf: f, nodes: t.mach.Nodes()}
	pristine := t.Loaded == nil && !t.Axis.dirty
	if pristine {
		protoCache.Lock()
		p := protoCache.m[key]
		protoCache.Unlock()
		if p != nil {
			t.Loaded = p.loaded
			t.Axis = p.axis.Clone()
			t.stmtBlocks = p.stmtBlocks
			t.blockStmts = p.blockStmts
			t.mapsShared = true
			return nil
		}
	}
	if t.mapsShared {
		// Appending to a prototype's maps would corrupt every other
		// session sharing them; copy before the second import below.
		t.stmtBlocks = copyIndex(t.stmtBlocks)
		t.blockStmts = copyIndex(t.blockStmts)
		t.mapsShared = false
	}
	loaded, err := pif.Load(f)
	if err != nil {
		return err
	}
	t.Loaded = loaded

	for _, level := range loaded.Registry.Levels() {
		for _, rootID := range loaded.Registry.Roots(level.ID) {
			root, _ := loaded.Registry.Noun(rootID)
			if len(loaded.Registry.Children(rootID)) > 0 {
				// A structured root (CMFstmts, CMFarrays) is a hierarchy.
				t.addNounTree(root.Name, rootID)
				continue
			}
			// A bare root (e.g. a compiler-generated block function at the
			// Base level) is a resource of its level's code hierarchy.
			hierarchy := string(level.ID)
			if level.Rank == 0 {
				hierarchy = HierCode
			}
			t.Axis.AddPath(hierarchy, root.Name)
		}
	}
	for _, def := range loaded.Table.Defs() {
		if len(def.Source.Nouns) == 0 || len(def.Destination.Nouns) == 0 {
			continue
		}
		srcNoun, _ := loaded.Registry.Noun(def.Source.Nouns[0])
		dstNoun, _ := loaded.Registry.Noun(def.Destination.Nouns[0])
		block, stmt := srcNoun.Name, dstNoun.Name
		t.stmtBlocks[stmt] = append(t.stmtBlocks[stmt], block)
		t.blockStmts[block] = append(t.blockStmts[block], stmt)
	}
	if pristine {
		proto := &toolProto{
			loaded:     loaded,
			axis:       t.Axis.Clone(),
			stmtBlocks: t.stmtBlocks,
			blockStmts: t.blockStmts,
		}
		// The tool now shares the maps it just built with the prototype.
		t.mapsShared = true
		protoCache.Lock()
		if protoCache.m == nil || len(protoCache.m) >= 64 {
			protoCache.m = make(map[protoKey]*toolProto)
		}
		protoCache.m[key] = proto
		protoCache.Unlock()
	}
	return nil
}

// copyIndex deep-copies a statement/block index.
func copyIndex(in map[string][]string) map[string][]string {
	out := make(map[string][]string, len(in))
	for k, v := range in {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// addNounTree mirrors a registry hierarchy into the where axis.
func (t *Tool) addNounTree(hierarchy string, rootID nv.NounID) {
	var walk func(id nv.NounID, path []string)
	walk = func(id nv.NounID, path []string) {
		for _, childID := range t.Loaded.Registry.Children(id) {
			child, _ := t.Loaded.Registry.Noun(childID)
			childPath := append(append([]string(nil), path...), child.Name)
			t.Axis.AddPath(hierarchy, childPath...)
			walk(childID, childPath)
		}
	}
	t.Axis.AddHierarchy(hierarchy)
	walk(rootID, nil)
}

// EnableDynamicMapping inserts the tool's mapping instrumentation at the
// runtime's designated mapping points, so array allocations and
// deallocations flow to the tool while the application runs (Section 4.1
// and 6.1, first step). Like all dynamic instrumentation it can be
// enabled and later removed.
func (t *Tool) EnableDynamicMapping() {
	if t.dynMapping {
		return
	}
	t.dynMapping = true
	t.inst.Insert(dyninst.Mapping(cmrts.RoutineAlloc), dyninst.Snippet{
		Name: "paradyn dynamic mapping: alloc",
		Do: func(ctx dyninst.Context) {
			if len(ctx.Args) < 2 {
				return
			}
			// The instrumentation library sends the new noun over the
			// daemon channel; the data manager applies it on drain.
			msg := daemon.Message{
				Kind: daemon.KindNounDef,
				At:   ctx.Now,
				Noun: &pif.NounRecord{
					Name:        ctx.Args[1],
					Abstraction: "CMF",
					Parent:      HierArrays,
					Description: "dynamically allocated parallel array",
				},
				Attrs: map[string]string{"id": ctx.Args[0]},
			}
			if len(ctx.Args) > 2 {
				msg.Attrs["shape"] = ctx.Args[2]
			}
			t.channel.Send(msg)
		},
	})
	t.inst.Insert(dyninst.Mapping(cmrts.RoutineFree), dyninst.Snippet{
		Name: "paradyn dynamic mapping: free",
		Do: func(ctx dyninst.Context) {
			if len(ctx.Args) < 2 {
				return
			}
			t.channel.Send(daemon.Message{
				Kind:    daemon.KindRemoval,
				At:      ctx.Now,
				Removal: ctx.Args[1],
				Attrs:   map[string]string{"id": ctx.Args[0]},
			})
		},
	})
}

// Channel exposes the daemon conduit (for inspection and statistics).
func (t *Tool) Channel() *daemon.Channel { return t.channel }

// drainChannel applies queued dynamic mapping information — the Data
// Manager "uses the dynamic mapping information in exactly the same way
// as it uses static mapping information". Called from the event pump and
// from accessors that need an up-to-date view.
func (t *Tool) drainChannel() {
	if t.channel.Pending() == 0 {
		return
	}
	if t.drainFn == nil {
		t.drainFn = func(ms []daemon.Message) error {
			for i := range ms {
				m := &ms[i]
				switch m.Kind {
				case daemon.KindSample:
					if s := &m.Sample; s.Enabled >= 0 && s.Enabled < len(t.enabled) {
						_ = t.enabled[s.Enabled].Hist.AddSpan(s.From, s.To, s.Value)
					}
				case daemon.KindNounDef:
					if m.Noun != nil && m.Attrs["id"] != "" {
						t.noteAllocation(cmrts.ArrayID(m.Attrs["id"]), m.Noun.Name)
					}
				case daemon.KindRemoval:
					if m.Attrs["id"] != "" {
						t.noteDeallocation(cmrts.ArrayID(m.Attrs["id"]), m.Removal)
					}
				}
			}
			return nil
		}
	}
	_, _ = t.channel.DrainBatch(t.drainFn)
}

// FlushChannel drains any queued messages (end-of-run bookkeeping: the
// final samples and mapping records reach the data manager even if no
// further machine event fires).
func (t *Tool) FlushChannel() { t.drainChannel() }

// NoteLostNode declares a node permanently lost at a crash instant.
// Every enabled metric whose focus covers the node answers with a
// partial annotation from then on.
func (t *Tool) NoteLostNode(node int, at vtime.Time) {
	for _, l := range t.lostNodes {
		if l.Node == node {
			return
		}
	}
	t.lostNodes = append(t.lostNodes, LostNodeMark{Node: node, At: at})
}

// LostNodes returns the permanently lost nodes in declaration order.
func (t *Tool) LostNodes() []LostNodeMark {
	return append([]LostNodeMark(nil), t.lostNodes...)
}

// DroppedSamples returns the per-metric count of samples lost to
// channel overflow.
func (t *Tool) DroppedSamples() map[string]int {
	out := make(map[string]int, len(t.droppedSamples))
	for k, v := range t.droppedSamples {
		out[k] = v
	}
	return out
}

func (t *Tool) noteAllocation(id cmrts.ArrayID, name string) {
	// A duplicate definition (a recovered node re-registering) is
	// idempotent, and a definition for a deallocated array is a
	// resurrection attempt — both are ignored.
	if t.arrayNames[id] != "" || t.removedIDs[id] {
		return
	}
	t.arraysByName[name] = append(t.arraysByName[name], id)
	t.arrayNames[id] = name
	t.Axis.AddPath(HierArrays, name)
	if a, ok := t.rt.Array(id); ok {
		for _, sub := range a.Subregions() {
			t.Axis.AddPath(HierArrays, name, sub.String())
		}
	}
}

func (t *Tool) noteDeallocation(id cmrts.ArrayID, name string) {
	t.removedIDs[id] = true
	ids := t.arraysByName[name]
	for i, x := range ids {
		if x == id {
			t.arraysByName[name] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	delete(t.arrayNames, id)
	if len(t.arraysByName[name]) == 0 {
		delete(t.arraysByName, name)
		if r, ok := t.Axis.Find(HierArrays + "/" + name); ok {
			for _, c := range r.Children() {
				_ = t.Axis.Remove(c.FullName())
			}
			_ = t.Axis.Remove(r.FullName())
		}
	}
}

// EnableGating inserts the dispatcher snippet that maintains the per-node
// SAS sentences for array and block activity: "the CMRTS node code block
// dispatcher notifies the SAS of array activation/deactivation by
// sending the input arguments for each node code block to the SAS"
// (Section 6.1). Metric predicates for array and statement foci read
// these sentences.
func (t *Tool) EnableGating() {
	if t.gating {
		return
	}
	t.gating = true
	t.inst.Insert(dyninst.Entry(cmrts.RoutineDispatch), dyninst.Snippet{
		Name: "paradyn gating: block entry",
		Do: func(ctx dyninst.Context) {
			s := t.SASes.Node(ctx.Node)
			s.Activate(nv.NewSentence(VerbBlockExec, nv.NounID(ctx.Tag)), ctx.Now)
			for _, id := range ctx.Args {
				s.Activate(nv.NewSentence(VerbArrayActive, nv.NounID(id)), ctx.Now)
			}
		},
	})
	t.inst.Insert(dyninst.Exit(cmrts.RoutineDispatch), dyninst.Snippet{
		Name: "paradyn gating: block exit",
		Do: func(ctx dyninst.Context) {
			s := t.SASes.Node(ctx.Node)
			for _, id := range ctx.Args {
				_ = s.Deactivate(nv.NewSentence(VerbArrayActive, nv.NounID(id)), ctx.Now)
			}
			_ = s.Deactivate(nv.NewSentence(VerbBlockExec, nv.NounID(ctx.Tag)), ctx.Now)
		},
	})
}

// predicateFor compiles a focus into a dyninst predicate. nil means
// unconstrained.
func (t *Tool) predicateFor(focus Focus) (dyninst.Predicate, error) {
	var preds []dyninst.Predicate

	if r, ok := focus.Part(HierMachine); ok {
		if !strings.HasPrefix(r.Name, "node") {
			return nil, fmt.Errorf("paradyn: machine focus %q is not a node", r.FullName())
		}
		n, err := strconv.Atoi(strings.TrimPrefix(r.Name, "node"))
		if err != nil {
			return nil, fmt.Errorf("paradyn: machine focus %q: %v", r.FullName(), err)
		}
		preds = append(preds, func(ctx dyninst.Context) bool { return ctx.Node == n })
	}

	if r, ok := focus.Part(HierArrays); ok {
		if !t.gating {
			return nil, fmt.Errorf("paradyn: array focus %q needs EnableGating", r.FullName())
		}
		name := r.Path[1] // array name (a subregion focus constrains by its array)
		preds = append(preds, func(ctx dyninst.Context) bool {
			if ctx.Node < 0 {
				return false
			}
			s := t.SASes.Node(ctx.Node)
			for _, id := range t.arraysByName[name] {
				if s.Active(nv.NewSentence(VerbArrayActive, nv.NounID(string(id)))) {
					return true
				}
			}
			return false
		})
	}

	if r, ok := focus.Part(HierStmts); ok {
		if !t.gating {
			return nil, fmt.Errorf("paradyn: statement focus %q needs EnableGating", r.FullName())
		}
		blocks := t.stmtBlocks[r.Name]
		if len(blocks) == 0 {
			return nil, fmt.Errorf("paradyn: no mapping for statement %q (load a PIF file)", r.Name)
		}
		preds = append(preds, func(ctx dyninst.Context) bool {
			if ctx.Node < 0 {
				return false
			}
			s := t.SASes.Node(ctx.Node)
			for _, b := range blocks {
				if s.Active(nv.NewSentence(VerbBlockExec, nv.NounID(b))) {
					return true
				}
			}
			return false
		})
	}

	if r, ok := focus.Part(HierCode); ok {
		// A Code focus constrains by the operation tag: runtime operations
		// carry the name of the node code block (or routine) that issued
		// them.
		fn := r.Name
		preds = append(preds, func(ctx dyninst.Context) bool { return ctx.Tag == fn })
	}

	switch len(preds) {
	case 0:
		return nil, nil
	case 1:
		return preds[0], nil
	default:
		return func(ctx dyninst.Context) bool {
			for _, p := range preds {
				if !p(ctx) {
					return false
				}
			}
			return true
		}, nil
	}
}

// EnableMetric instantiates a metric for a focus: the tool inserts the
// metric's probes (guarded by the focus predicate) into the running
// application and starts streaming samples into a folding histogram.
func (t *Tool) EnableMetric(metricID string, focus Focus) (*EnabledMetric, error) {
	m, ok := t.lib.Get(metricID)
	if !ok {
		return nil, fmt.Errorf("paradyn: unknown metric %q", metricID)
	}
	pred, err := t.predicateFor(focus)
	if err != nil {
		return nil, err
	}
	inst, err := m.Instantiate(t.inst, t.mach.Nodes(), pred)
	if err != nil {
		return nil, err
	}
	// A node-constrained focus covers one node; avg-aggregated metrics
	// divide by the focus width so collective operations count once.
	if _, ok := focus.Part(HierMachine); ok {
		inst.SetWidth(1)
	}
	h, err := hist.New(t.opts.HistBins, 20*vtime.Microsecond)
	if err != nil {
		return nil, err
	}
	em := &EnabledMetric{
		Metric:   m,
		Focus:    focus,
		Instance: inst,
		Hist:     h,
		tool:     t,
		index:    len(t.enabled),
		focusStr: focus.String(),
		lastTime: t.mach.GlobalNow(),
	}
	t.enabled = append(t.enabled, em)
	return em, nil
}

// Disable removes a metric-focus pair's instrumentation; its histogram
// and final value remain readable.
func (t *Tool) Disable(em *EnabledMetric) error {
	if em.disabled {
		return fmt.Errorf("paradyn: metric %s already disabled", em.Metric.ID)
	}
	em.disabled = true
	return em.Instance.Remove()
}

// Enabled lists the currently enabled metric-focus pairs.
func (t *Tool) Enabled() []*EnabledMetric { return append([]*EnabledMetric(nil), t.enabled...) }

// sampleFanOut is the minimum number of samplable metric-focus pairs
// for SampleAll to read values on the worker pool; below it the fan-out
// costs more than the reads. Scheduling only — samples are identical.
const sampleFanOut = 8

// SampleAll deposits each enabled metric's delta since its last sample
// into its histogram. The machine adapter calls this on the sampling
// interval; experiments may call it at barriers for exact readings.
//
// The round runs in two stages. Reading a metric's value at an instant
// is a pure function of the instrumentation counters, so large rounds
// read all values concurrently on the tool's worker pool. Committing a
// sample — updating the pair's last value/time and appending its
// message to the batch — orders the round, so it always walks the
// enabled list sequentially in registration order. The batch that
// crosses the daemon channel is byte-identical under any Workers
// setting.
func (t *Tool) SampleAll(now vtime.Time) {
	if now.Before(t.lastSample) {
		return
	}
	prev := t.lastSample
	t.lastSample = now
	live := t.liveBuf[:0]
	for _, em := range t.enabled {
		if !em.disabled && !now.Before(em.lastTime) {
			live = append(live, em)
		}
	}
	t.liveBuf = live
	vals := append(t.valueBuf[:0], make([]float64, len(live))...)
	t.valueBuf = vals
	// The read phase spans the sampling interval [prev, now]; the commit
	// phase (and the daemon batch it sends) is instantaneous at now. Both
	// spans record on the driving goroutine — the pool workers below only
	// read instrumentation counters.
	var readRef obs.SpanRef
	if t.obsT != nil {
		readRef = t.obsT.Begin(obs.StageSampleRead, "", obs.NodeCP, prev)
	}
	if len(live) >= sampleFanOut {
		if t.pool == nil {
			t.pool = par.New(t.opts.Workers)
		}
		t.pool.Do(len(live), func(i int) { vals[i] = live[i].Instance.Value(now) })
	} else {
		for i, em := range live {
			vals[i] = em.Instance.Value(now)
		}
	}
	if t.obsT != nil {
		t.obsT.End(readRef, now)
		ref := t.obsT.Begin(obs.StageSampleCommit, "", obs.NodeCP, now)
		defer t.obsT.End(ref, now)
	}
	buf := t.sampleBuf[:0]
	for i, em := range live {
		buf = em.commitSample(now, vals[i], buf)
	}
	t.sampleBuf = buf
	// One sampling round travels the channel as one batch — the
	// instrumentation library aggregating a round's readings before
	// crossing the conduit — in the same per-metric order as before.
	t.channel.SendBatch(buf)
	// Samples travelled the daemon channel like any other message;
	// drain synchronously so histograms are current when the caller
	// reads them.
	t.drainChannel()
}

// Sample takes one sample of this metric at instant now. The reading
// travels the daemon channel (Section 5's single conduit) to the data
// manager, which deposits it into the histogram on drain — so a
// bounded channel may drop it, leaving a hole.
func (em *EnabledMetric) Sample(now vtime.Time) {
	var arr [1]daemon.Message
	for _, m := range em.sampleInto(now, arr[:0]) {
		em.tool.channel.Send(m)
	}
}

// sampleInto computes the metric's delta since its last sample and, when
// the metric is tool-attached, appends the sample message to buf for the
// caller to send (SampleAll batches a whole round). A detached metric
// deposits straight into its histogram, as before.
func (em *EnabledMetric) sampleInto(now vtime.Time, buf []daemon.Message) []daemon.Message {
	if now.Before(em.lastTime) {
		return buf
	}
	return em.commitSample(now, em.Instance.Value(now), buf)
}

// commitSample is sampleInto with the value already read (SampleAll
// reads a whole round's values concurrently, then commits in order).
func (em *EnabledMetric) commitSample(now vtime.Time, v float64, buf []daemon.Message) []daemon.Message {
	delta := v - em.lastValue
	if delta != 0 {
		if em.tool != nil {
			buf = append(buf, daemon.Message{
				Kind: daemon.KindSample,
				At:   now,
				Sample: daemon.Sample{
					MetricID: em.Metric.ID,
					Focus:    em.focusStr,
					Value:    delta,
					From:     em.lastTime,
					To:       now,
					Enabled:  em.index,
				},
			})
		} else {
			_ = em.Hist.AddSpan(em.lastTime, now, delta)
		}
	}
	em.lastValue = v
	em.lastTime = now
	return buf
}

// Value reads the metric's current aggregate value.
func (em *EnabledMetric) Value(now vtime.Time) float64 { return em.Instance.Value(now) }

// ArrayIDs resolves a source-level array name to its live runtime
// arrays (dynamic mapping information).
func (t *Tool) ArrayIDs(name string) []cmrts.ArrayID {
	t.drainChannel()
	return append([]cmrts.ArrayID(nil), t.arraysByName[name]...)
}

// BlocksOf returns the node code blocks implementing a statement noun.
func (t *Tool) BlocksOf(stmt string) []string {
	return append([]string(nil), t.stmtBlocks[stmt]...)
}

// StmtsOf returns the statement nouns a block implements.
func (t *Tool) StmtsOf(block string) []string {
	return append([]string(nil), t.blockStmts[block]...)
}

// Blocks lists all block function names known from static mapping info.
func (t *Tool) Blocks() []string {
	out := make([]string, 0, len(t.blockStmts))
	for b := range t.blockStmts {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// PresentUp maps Base-level measurements to the higher level through the
// static mapping table (Section 3): each measurement's costs are
// assigned to destination sentences under the chosen policy. Unmapped
// measurements are returned separately, never dropped.
func (t *Tool) PresentUp(measured []mapping.Measurement, policy mapping.Policy) ([]mapping.Assigned, []mapping.Measurement, error) {
	if t.Loaded == nil {
		return nil, nil, fmt.Errorf("paradyn: no static mapping information loaded")
	}
	return mapping.Assign(t.Loaded.Table, measured, policy, mapping.AggSum)
}
