package paradyn

import (
	"strings"
	"testing"

	"nvmap/internal/cmf"
	"nvmap/internal/cmrts"
	"nvmap/internal/dyninst"
	"nvmap/internal/machine"
	"nvmap/internal/mdl"
	"nvmap/internal/pifgen"
)

// factoryFor builds an AppFactory for a CMF program on a machine config.
func factoryFor(t testing.TB, src string, nodes int, cfgMut func(*machine.Config)) AppFactory {
	t.Helper()
	cp, err := cmf.CompileSource(src, cmf.Options{SourceFile: "app.fcm"})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pifgen.FromListing(strings.NewReader(cp.Listing()))
	if err != nil {
		t.Fatal(err)
	}
	return func() (*Tool, func() error, error) {
		cfg := machine.DefaultConfig(nodes)
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
		rt, err := cmrts.New(m, inst, cmrts.DefaultCosts())
		if err != nil {
			return nil, nil, err
		}
		tool, err := New(rt, mdl.StdLibrary(), Options{})
		if err != nil {
			return nil, nil, err
		}
		if err := tool.LoadPIF(pf); err != nil {
			return nil, nil, err
		}
		return tool, cmf.NewExecutor(cp, rt, nil).Run, nil
	}
}

const computeHeavy = `PROGRAM heavy
REAL A(4096)
REAL B(4096)
REAL S
FORALL (I = 1:4096) A(I) = I
DO K = 1, 10
B = A * 2.0 + A * A - A / 3.0
A = B * 0.5 + B * B + SQRT(B)
END DO
S = SUM(A)
END
`

const commHeavy = `PROGRAM chatty
REAL A(64)
DO K = 1, 40
A = CSHIFT(A, 1)
END DO
END
`

func TestConsultantFindsCPUBound(t *testing.T) {
	c := NewConsultant()
	findings, err := c.Search(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	var cpu *Finding
	for i, f := range findings {
		if f.Hypothesis == "CPUBound" && f.FocusLabel == "/WholeProgram" {
			cpu = &findings[i]
		}
	}
	if cpu == nil {
		t.Fatalf("no whole-program CPUBound finding in %v", findings)
	}
	if !cpu.Confirmed {
		t.Fatalf("CPUBound not confirmed on compute-heavy app: %+v (all: %v)", cpu, findings)
	}
	// Refinement must produce per-node or per-statement findings.
	var refined bool
	for _, f := range findings {
		if f.Hypothesis == "CPUBound" && f.FocusLabel != "/WholeProgram" && f.Confirmed {
			refined = true
		}
	}
	if !refined {
		t.Fatalf("CPUBound not refined below whole program: %v", findings)
	}
	// Findings are sorted by fraction.
	for i := 1; i < len(findings); i++ {
		if findings[i-1].Fraction < findings[i].Fraction {
			t.Fatalf("findings unsorted: %v", findings)
		}
	}
}

func TestConsultantFindsCommOrSyncBound(t *testing.T) {
	// Cripple the network so communication dominates.
	slowNet := func(cfg *machine.Config) {
		cfg.MessageLatency *= 50
		cfg.SendOverhead *= 50
		cfg.TreeStep *= 50
	}
	c := NewConsultant()
	c.RefineStatements = false
	findings, err := c.Search(factoryFor(t, commHeavy, 4, slowNet))
	if err != nil {
		t.Fatal(err)
	}
	confirmed := map[string]bool{}
	for _, f := range findings {
		if f.FocusLabel == "/WholeProgram" && f.Confirmed {
			confirmed[f.Hypothesis] = true
		}
		if f.FocusLabel == "/WholeProgram" && f.Hypothesis == "CPUBound" && f.Confirmed {
			t.Fatalf("CPUBound confirmed on comm-heavy app: %v", findings)
		}
	}
	if !confirmed["CommBound"] && !confirmed["SyncBound"] {
		t.Fatalf("neither CommBound nor SyncBound confirmed: %v", findings)
	}
}

func TestConsultantStatementRefinement(t *testing.T) {
	c := NewConsultant()
	findings, err := c.Search(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	var stmtFindings []Finding
	for _, f := range findings {
		if strings.HasPrefix(f.FocusLabel, "/CMFstmts/") {
			stmtFindings = append(stmtFindings, f)
		}
	}
	if len(stmtFindings) == 0 {
		t.Fatalf("no statement-level findings: %v", findings)
	}
	// The hot statements are the two fused arithmetic lines (7 and 8).
	for _, f := range stmtFindings {
		if f.FocusLabel != "/CMFstmts/line7" && f.FocusLabel != "/CMFstmts/line8" {
			t.Errorf("unexpected hot statement %v", f)
		}
	}
}

func TestConsultantFindingString(t *testing.T) {
	f := Finding{Hypothesis: "CPUBound", FocusLabel: "/Machine/node3",
		Fraction: 0.62, Threshold: 0.4, Confirmed: true}
	s := f.String()
	if !strings.Contains(s, "CPUBound") || !strings.Contains(s, "CONFIRMED") ||
		!strings.Contains(s, "0.62") {
		t.Fatalf("Finding.String = %q", s)
	}
	f.Confirmed = false
	if !strings.Contains(f.String(), "rejected") {
		t.Fatal("rejected marker missing")
	}
}

func TestConsultantErrorPaths(t *testing.T) {
	c := NewConsultant()
	// Factory error propagates.
	if _, err := c.Search(func() (*Tool, func() error, error) {
		return nil, nil, strings.NewReader("").UnreadRune()
	}); err == nil {
		t.Fatal("factory error swallowed")
	}
	// Unknown metric in a hypothesis.
	bad := &Consultant{Hypotheses: []Hypothesis{{ID: "X", Metrics: []string{"ghost"}, Threshold: 0.1}}}
	if _, err := bad.Search(factoryFor(t, computeHeavy, 2, nil)); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestConsultantArrayRefinement(t *testing.T) {
	c := NewConsultant()
	c.RefineStatements = false
	findings, err := c.Search(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	var arrayFindings []Finding
	for _, f := range findings {
		if strings.HasPrefix(f.FocusLabel, "/CMFarrays/") {
			arrayFindings = append(arrayFindings, f)
		}
	}
	if len(arrayFindings) == 0 {
		t.Fatalf("no array-level findings: %v", findings)
	}
	// Both A and B participate in the hot statements.
	seen := map[string]bool{}
	for _, f := range arrayFindings {
		seen[f.FocusLabel] = true
		if f.Hypothesis != "CPUBound" {
			t.Errorf("unexpected hypothesis at array focus: %v", f)
		}
	}
	if !seen["/CMFarrays/A"] || !seen["/CMFarrays/B"] {
		t.Fatalf("expected A and B findings, got %v", arrayFindings)
	}
}

func TestConsultantRefinementsOffProduceOnlyTopAndNode(t *testing.T) {
	c := NewConsultant()
	c.RefineStatements = false
	c.RefineArrays = false
	findings, err := c.Search(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.HasPrefix(f.FocusLabel, "/CMFstmts/") || strings.HasPrefix(f.FocusLabel, "/CMFarrays/") {
			t.Fatalf("refinement finding with refinements off: %v", f)
		}
	}
}
