package paradyn

import (
	"sync"
	"testing"

	"nvmap/internal/diagnose"
)

// TestConsultantConcurrentSearches runs two full diagnoses at once over
// independent sessions. The sessions share nothing but the process-wide
// noun/verb interner, which must tolerate concurrent readers and
// writers — this test exists to run under -race.
func TestConsultantConcurrentSearches(t *testing.T) {
	fa := factoryFor(t, computeHeavy, 4, nil)
	fb := factoryFor(t, commHeavy, 4, nil)
	var wg sync.WaitGroup
	results := make([]*diagnose.Report, 2)
	errs := make([]error, 2)
	for i, f := range []AppFactory{fa, fb} {
		wg.Add(1)
		go func(i int, f AppFactory) {
			defer wg.Done()
			c := NewConsultant()
			results[i], errs[i] = c.Diagnose(f)
		}(i, f)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if results[i] == nil || results[i].ProbesRun == 0 {
			t.Fatalf("search %d produced no probes: %+v", i, results[i])
		}
	}
	// The compute-heavy session must confirm CPUBound, the comm-heavy one
	// must not — proving the concurrent sessions did not bleed state.
	cpuConfirmed := func(rep *diagnose.Report) bool {
		for _, r := range rep.Roots {
			if r.Hypothesis == HypCPUBound {
				return r.Confirmed
			}
		}
		return false
	}
	if !cpuConfirmed(results[0]) {
		t.Fatalf("compute-heavy session lost CPUBound: %s", results[0].Text())
	}
	if cpuConfirmed(results[1]) {
		t.Fatalf("comm-heavy session confirmed CPUBound: %s", results[1].Text())
	}
}

// TestConsultantDiagnoseReportShape checks the full report carries the
// search-cost accounting the flattened Search view drops.
func TestConsultantDiagnoseReportShape(t *testing.T) {
	c := NewConsultant()
	rep, err := c.Diagnose(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Roots) != len(DefaultHypotheses()) {
		t.Fatalf("roots = %d, want one per hypothesis", len(rep.Roots))
	}
	if rep.ProbesRun == 0 || rep.SearchVTime == 0 {
		t.Fatalf("cost accounting missing: %+v", rep)
	}
	if rep.Budget != diagnose.DefaultBudget {
		t.Fatalf("budget = %d", rep.Budget)
	}
	// The base run's cost is charged exactly once, to the first probe.
	first := 0
	rep.Walk(func(f *diagnose.Finding) {
		if f.Seq == 0 && f.Cost > 0 {
			first++
		}
	})
	if first != 1 {
		t.Fatalf("base-run cost not charged to the first probe")
	}
}

// TestConsultantBudgetRespected cuts the search short and checks the
// exact pruning arithmetic survives the paradyn adapter.
func TestConsultantBudgetRespected(t *testing.T) {
	c := NewConsultant()
	c.Budget = 6
	rep, err := c.Diagnose(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbesRun != 6 {
		t.Fatalf("probes run = %d, want 6", rep.ProbesRun)
	}
	if rep.Pruned == 0 {
		t.Fatalf("budget cut nothing on a refining search: %+v", rep)
	}
	full, err := NewConsultant().Diagnose(factoryFor(t, computeHeavy, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ProbesRun + rep.Pruned; got > full.ProbesRun+full.Pruned && full.Pruned == 0 {
		t.Fatalf("run+pruned = %d exceeds the full frontier %d", got, full.ProbesRun)
	}
}

func BenchmarkConsultantSearch(b *testing.B) {
	fa := factoryFor(b, computeHeavy, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewConsultant()
		if _, err := c.Diagnose(fa); err != nil {
			b.Fatal(err)
		}
	}
}
