// Package dyninst simulates the dynamic instrumentation technology the
// paper builds on (Hollingsworth, Miller & Cargille; Section 4.1): an
// external tool changes the image of a running executable to collect
// performance data. The technique defines points at which instrumentation
// can be inserted, predicates that guard the firing of instrumentation
// code, and primitives that implement counters and timers.
//
// Our "executable" is the simulated runtime of packages cmrts/cmf, which
// fires well-known points (function entry/exit, mapping points such as
// array-allocation returns) as it executes. A Manager holds the snippets
// currently inserted at each point; inserting and deleting snippets while
// the application runs is the whole point of the technology — "any point
// that does not contain instrumentation does not cause any execution
// perturbations."
//
// Perturbation is modelled honestly: every fired snippet (and every
// predicate evaluation that suppresses one) charges a configurable cost to
// the node that executed it, so experiments can compare dynamic
// instrumentation against always-on instrumentation quantitatively.
package dyninst

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nvmap/internal/vtime"
)

// PointKind says where in a function a point sits.
type PointKind int

// Point kinds. MappingPoint marks designated mapping points (Section
// 4.1): e.g. the return point of a runtime routine that allocates
// parallel data objects, where data-to-processor mappings become known.
const (
	PointEntry PointKind = iota
	PointExit
	MappingPoint
)

// String names the kind.
func (k PointKind) String() string {
	switch k {
	case PointEntry:
		return "entry"
	case PointExit:
		return "exit"
	case MappingPoint:
		return "mapping"
	default:
		return fmt.Sprintf("PointKind(%d)", int(k))
	}
}

// PointID identifies one instrumentation point in the executable image.
type PointID struct {
	Function string
	Where    PointKind
}

// Entry returns the entry point of a function.
func Entry(fn string) PointID { return PointID{Function: fn, Where: PointEntry} }

// Exit returns the exit point of a function.
func Exit(fn string) PointID { return PointID{Function: fn, Where: PointExit} }

// Mapping returns the designated mapping point of a function.
func Mapping(fn string) PointID { return PointID{Function: fn, Where: MappingPoint} }

// String renders "function:kind".
func (p PointID) String() string { return p.Function + ":" + p.Where.String() }

// Context carries the execution state visible to a snippet when its point
// fires: which node, the node's virtual clock, and the arguments of the
// executing operation (the CMRTS node code block dispatcher passes its
// input arguments so SAS modules can search them for requested arrays —
// Section 6.1).
type Context struct {
	Node  int
	Now   vtime.Time
	Tag   string
	Elems int
	Bytes int
	// Args carries operation arguments, e.g. the identifiers of arrays
	// passed to a node code block.
	Args []string
}

// Predicate guards a snippet; nil means always fire.
type Predicate func(Context) bool

// Action is the body of a snippet.
type Action func(Context)

// Snippet is a unit of instrumentation code.
type Snippet struct {
	// Name labels the snippet for diagnostics.
	Name string
	// When guards execution (the paper's predicate).
	When Predicate
	// Do runs when the predicate passes (the paper's primitive calls).
	Do Action
}

// Handle identifies an inserted snippet for later removal.
type Handle struct {
	point PointID
	seq   int
}

// Stats aggregates instrumentation activity and modelled perturbation.
type Stats struct {
	Inserted   int
	Removed    int
	Fires      int // snippets whose action ran
	Suppressed int // snippets whose predicate returned false
	// Perturbation is the total virtual time charged to application nodes
	// by instrumentation execution.
	Perturbation vtime.Duration
}

// CostModel prices instrumentation execution.
type CostModel struct {
	// PerFire is charged for each snippet action that runs.
	PerFire vtime.Duration
	// PerPredicate is charged for each guard evaluation (pass or fail).
	PerPredicate vtime.Duration
}

// DefaultCosts approximates the trampoline costs reported for Paradyn-era
// dynamic instrumentation: a predicate test is cheap, a full snippet
// execution costs a few hundred nanoseconds.
func DefaultCosts() CostModel {
	return CostModel{PerFire: 300 * vtime.Nanosecond, PerPredicate: 40 * vtime.Nanosecond}
}

type inserted struct {
	seq     int
	snippet Snippet
}

// Manager is the instrumentation controller for one executable image.
// Mutation (Insert/Remove/Fire) is not safe for concurrent use — the
// simulated machine executes sequentially in virtual time — but Stats
// may be read concurrently with a run.
type Manager struct {
	costs   CostModel
	points  map[PointID][]inserted
	nextSeq int
	// stats counters are atomic so a metrics scrape can read them while
	// the driving goroutine fires snippets; every writer is the single
	// driving goroutine (instrumentation never fires inside parallel
	// node regions).
	stats managerStats
	// perturb charges instrumentation overhead to the executing node;
	// nil disables perturbation modelling.
	perturb func(node int, d vtime.Duration)
}

// NewManager builds a manager. perturb may be nil (no perturbation
// accounting against node clocks; stats still accumulate).
func NewManager(costs CostModel, perturb func(node int, d vtime.Duration)) *Manager {
	return &Manager{
		costs:   costs,
		points:  make(map[PointID][]inserted),
		perturb: perturb,
	}
}

// Insert adds a snippet at a point of the running image and returns a
// removal handle.
func (m *Manager) Insert(p PointID, s Snippet) Handle {
	m.nextSeq++
	m.points[p] = append(m.points[p], inserted{seq: m.nextSeq, snippet: s})
	m.stats.inserted.Add(1)
	return Handle{point: p, seq: m.nextSeq}
}

// Remove deletes a previously inserted snippet. Removing twice is an
// error.
func (m *Manager) Remove(h Handle) error {
	list := m.points[h.point]
	for i, ins := range list {
		if ins.seq == h.seq {
			m.points[h.point] = append(list[:i], list[i+1:]...)
			if len(m.points[h.point]) == 0 {
				delete(m.points, h.point)
			}
			m.stats.removed.Add(1)
			return nil
		}
	}
	return fmt.Errorf("dyninst: no snippet %d at %v", h.seq, h.point)
}

// RemoveAll deletes every snippet at a point, returning how many were
// removed. This is how "users turn off all dynamic mapping instrumentation
// points at once" (Section 5).
func (m *Manager) RemoveAll(p PointID) int {
	n := len(m.points[p])
	if n > 0 {
		delete(m.points, p)
		m.stats.removed.Add(int64(n))
	}
	return n
}

// Fire executes the instrumentation at a point. The executing substrate
// calls this at every potential point; an uninstrumented point returns
// immediately with zero cost, which is the central property of dynamic
// instrumentation.
func (m *Manager) Fire(p PointID, ctx Context) {
	list, ok := m.points[p]
	if !ok {
		return
	}
	var cost vtime.Duration
	for _, ins := range list {
		if ins.snippet.When != nil {
			cost += m.costs.PerPredicate
			if !ins.snippet.When(ctx) {
				m.stats.suppressed.Add(1)
				continue
			}
		}
		cost += m.costs.PerFire
		m.stats.fires.Add(1)
		if ins.snippet.Do != nil {
			ins.snippet.Do(ctx)
		}
	}
	if cost > 0 {
		m.stats.perturbation.Add(int64(cost))
		if m.perturb != nil && ctx.Node >= 0 {
			m.perturb(ctx.Node, cost)
		}
	}
}

// Instrumented reports whether any snippet is currently inserted at p.
func (m *Manager) Instrumented(p PointID) bool {
	return len(m.points[p]) > 0
}

// ActivePoints returns the currently instrumented points, sorted.
func (m *Manager) ActivePoints() []PointID {
	out := make([]PointID, 0, len(m.points))
	for p := range m.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Function != out[j].Function {
			return out[i].Function < out[j].Function
		}
		return out[i].Where < out[j].Where
	})
	return out
}

// managerStats is the internal atomic mirror of Stats.
type managerStats struct {
	inserted     atomic.Int64
	removed      atomic.Int64
	fires        atomic.Int64
	suppressed   atomic.Int64
	perturbation atomic.Int64
}

// Stats returns a copy of the instrumentation statistics. Safe to call
// while the session runs.
func (m *Manager) Stats() Stats {
	return Stats{
		Inserted:     int(m.stats.inserted.Load()),
		Removed:      int(m.stats.removed.Load()),
		Fires:        int(m.stats.fires.Load()),
		Suppressed:   int(m.stats.suppressed.Load()),
		Perturbation: vtime.Duration(m.stats.perturbation.Load()),
	}
}
