// Package dyninst simulates the dynamic instrumentation technology the
// paper builds on (Hollingsworth, Miller & Cargille; Section 4.1): an
// external tool changes the image of a running executable to collect
// performance data. The technique defines points at which instrumentation
// can be inserted, predicates that guard the firing of instrumentation
// code, and primitives that implement counters and timers.
//
// Our "executable" is the simulated runtime of packages cmrts/cmf, which
// fires well-known points (function entry/exit, mapping points such as
// array-allocation returns) as it executes. A Manager holds the snippets
// currently inserted at each point; inserting and deleting snippets while
// the application runs is the whole point of the technology — "any point
// that does not contain instrumentation does not cause any execution
// perturbations."
//
// Perturbation is modelled honestly: every fired snippet (and every
// predicate evaluation that suppresses one) charges a configurable cost to
// the node that executed it, so experiments can compare dynamic
// instrumentation against always-on instrumentation quantitatively.
package dyninst

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nvmap/internal/vtime"
)

// PointKind says where in a function a point sits.
type PointKind int

// Point kinds. MappingPoint marks designated mapping points (Section
// 4.1): e.g. the return point of a runtime routine that allocates
// parallel data objects, where data-to-processor mappings become known.
const (
	PointEntry PointKind = iota
	PointExit
	MappingPoint
)

// String names the kind.
func (k PointKind) String() string {
	switch k {
	case PointEntry:
		return "entry"
	case PointExit:
		return "exit"
	case MappingPoint:
		return "mapping"
	default:
		return fmt.Sprintf("PointKind(%d)", int(k))
	}
}

// PointID identifies one instrumentation point in the executable image.
type PointID struct {
	Function string
	Where    PointKind
}

// Entry returns the entry point of a function.
func Entry(fn string) PointID { return PointID{Function: fn, Where: PointEntry} }

// Exit returns the exit point of a function.
func Exit(fn string) PointID { return PointID{Function: fn, Where: PointExit} }

// Mapping returns the designated mapping point of a function.
func Mapping(fn string) PointID { return PointID{Function: fn, Where: MappingPoint} }

// String renders "function:kind".
func (p PointID) String() string { return p.Function + ":" + p.Where.String() }

// Context carries the execution state visible to a snippet when its point
// fires: which node, the node's virtual clock, and the arguments of the
// executing operation (the CMRTS node code block dispatcher passes its
// input arguments so SAS modules can search them for requested arrays —
// Section 6.1).
type Context struct {
	Node  int
	Now   vtime.Time
	Tag   string
	Elems int
	Bytes int
	// Args carries operation arguments, e.g. the identifiers of arrays
	// passed to a node code block.
	Args []string
}

// Predicate guards a snippet; nil means always fire.
type Predicate func(Context) bool

// Action is the body of a snippet.
type Action func(Context)

// Snippet is a unit of instrumentation code.
type Snippet struct {
	// Name labels the snippet for diagnostics.
	Name string
	// When guards execution (the paper's predicate).
	When Predicate
	// Do runs when the predicate passes (the paper's primitive calls).
	Do Action
}

// Handle identifies an inserted snippet for later removal.
type Handle struct {
	point PointID
	seq   int
}

// Stats aggregates instrumentation activity and modelled perturbation.
type Stats struct {
	Inserted   int
	Removed    int
	Fires      int // snippets whose action ran
	Suppressed int // snippets whose predicate returned false
	// Perturbation is the total virtual time charged to application nodes
	// by instrumentation execution.
	Perturbation vtime.Duration
}

// CostModel prices instrumentation execution.
type CostModel struct {
	// PerFire is charged for each snippet action that runs.
	PerFire vtime.Duration
	// PerPredicate is charged for each guard evaluation (pass or fail).
	PerPredicate vtime.Duration
}

// DefaultCosts approximates the trampoline costs reported for Paradyn-era
// dynamic instrumentation: a predicate test is cheap, a full snippet
// execution costs a few hundred nanoseconds.
func DefaultCosts() CostModel {
	return CostModel{PerFire: 300 * vtime.Nanosecond, PerPredicate: 40 * vtime.Nanosecond}
}

type inserted struct {
	seq     int
	snippet Snippet
}

// Manager is the instrumentation controller for one executable image.
// Mutation (Insert/Remove/Fire) is not safe for concurrent use — the
// simulated machine executes sequentially in virtual time — but Stats
// may be read concurrently with a run.
//
// Points are interned to small dense indices the first time they are
// named: the snippet lists live in a slice indexed by point index, and a
// pre-resolved PointRef fires with a bounds check instead of hashing the
// PointID's function name. The executing substrate fires every potential
// point on every operation, so that hash was the single largest fixed
// cost of an uninstrumented point.
type Manager struct {
	costs   CostModel
	ids     map[PointID]int32
	lists   [][]inserted
	nextSeq int
	// stats counters are atomic so a metrics scrape can read them while
	// the driving goroutine fires snippets; every writer is the single
	// driving goroutine (instrumentation never fires inside parallel
	// node regions).
	stats managerStats
	// perturb charges instrumentation overhead to the executing node;
	// nil disables perturbation modelling.
	perturb func(node int, d vtime.Duration)
}

// NewManager builds a manager. perturb may be nil (no perturbation
// accounting against node clocks; stats still accumulate).
func NewManager(costs CostModel, perturb func(node int, d vtime.Duration)) *Manager {
	return &Manager{
		costs: costs,
		// A session interns a few dozen points; sizing the table up front
		// skips the map-growth ladder during wiring.
		ids:     make(map[PointID]int32, 32),
		lists:   make([][]inserted, 0, 32),
		perturb: perturb,
	}
}

// index interns a point, creating an (empty) slot on first sight.
func (m *Manager) index(p PointID) int32 {
	if i, ok := m.ids[p]; ok {
		return i
	}
	i := int32(len(m.lists))
	m.ids[p] = i
	m.lists = append(m.lists, nil)
	return i
}

// PointRef is a pre-resolved instrumentation point: Resolve once where
// the point name is known (session wiring, runtime construction), then
// Fire per event without re-hashing the name. A ref stays valid for the
// manager's lifetime — Insert and Remove change what is attached at the
// point, never where the point lives.
type PointRef struct {
	m *Manager
	i int32
}

// Resolve interns a point and returns a reference for repeated firing.
func (m *Manager) Resolve(p PointID) PointRef {
	return PointRef{m: m, i: m.index(p)}
}

// Fire executes the instrumentation at the referenced point.
func (r PointRef) Fire(ctx Context) { r.m.fireAt(r.i, ctx) }

// Insert adds a snippet at a point of the running image and returns a
// removal handle.
func (m *Manager) Insert(p PointID, s Snippet) Handle {
	m.nextSeq++
	i := m.index(p)
	m.lists[i] = append(m.lists[i], inserted{seq: m.nextSeq, snippet: s})
	m.stats.inserted.Add(1)
	return Handle{point: p, seq: m.nextSeq}
}

// Remove deletes a previously inserted snippet. Removing twice is an
// error.
func (m *Manager) Remove(h Handle) error {
	if i, ok := m.ids[h.point]; ok {
		list := m.lists[i]
		for j, ins := range list {
			if ins.seq == h.seq {
				m.lists[i] = append(list[:j], list[j+1:]...)
				m.stats.removed.Add(1)
				return nil
			}
		}
	}
	return fmt.Errorf("dyninst: no snippet %d at %v", h.seq, h.point)
}

// RemoveAll deletes every snippet at a point, returning how many were
// removed. This is how "users turn off all dynamic mapping instrumentation
// points at once" (Section 5).
func (m *Manager) RemoveAll(p PointID) int {
	i, ok := m.ids[p]
	if !ok {
		return 0
	}
	n := len(m.lists[i])
	if n > 0 {
		m.lists[i] = nil
		m.stats.removed.Add(int64(n))
	}
	return n
}

// Fire executes the instrumentation at a point. The executing substrate
// calls this at every potential point; an uninstrumented point returns
// immediately with zero cost, which is the central property of dynamic
// instrumentation. Callers on hot paths should Resolve the point once
// and fire through the PointRef.
func (m *Manager) Fire(p PointID, ctx Context) {
	if i, ok := m.ids[p]; ok {
		m.fireAt(i, ctx)
	}
}

// fireAt runs the snippet list at point index i. Stats are batched into
// at most one atomic add per counter per call — with snippets attached,
// the two adds per snippet were the next cost after the name hash.
func (m *Manager) fireAt(i int32, ctx Context) {
	list := m.lists[i]
	if len(list) == 0 {
		return
	}
	var cost vtime.Duration
	fires, suppressed := 0, 0
	for _, ins := range list {
		if ins.snippet.When != nil {
			cost += m.costs.PerPredicate
			if !ins.snippet.When(ctx) {
				suppressed++
				continue
			}
		}
		cost += m.costs.PerFire
		fires++
		if ins.snippet.Do != nil {
			ins.snippet.Do(ctx)
		}
	}
	if fires > 0 {
		m.stats.fires.Add(int64(fires))
	}
	if suppressed > 0 {
		m.stats.suppressed.Add(int64(suppressed))
	}
	if cost > 0 {
		m.stats.perturbation.Add(int64(cost))
		if m.perturb != nil && ctx.Node >= 0 {
			m.perturb(ctx.Node, cost)
		}
	}
}

// Instrumented reports whether any snippet is currently inserted at p.
func (m *Manager) Instrumented(p PointID) bool {
	i, ok := m.ids[p]
	return ok && len(m.lists[i]) > 0
}

// ActivePoints returns the currently instrumented points, sorted.
func (m *Manager) ActivePoints() []PointID {
	out := make([]PointID, 0, len(m.ids))
	for p, i := range m.ids {
		if len(m.lists[i]) > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Function != out[j].Function {
			return out[i].Function < out[j].Function
		}
		return out[i].Where < out[j].Where
	})
	return out
}

// managerStats is the internal atomic mirror of Stats.
type managerStats struct {
	inserted     atomic.Int64
	removed      atomic.Int64
	fires        atomic.Int64
	suppressed   atomic.Int64
	perturbation atomic.Int64
}

// Stats returns a copy of the instrumentation statistics. Safe to call
// while the session runs.
func (m *Manager) Stats() Stats {
	return Stats{
		Inserted:     int(m.stats.inserted.Load()),
		Removed:      int(m.stats.removed.Load()),
		Fires:        int(m.stats.fires.Load()),
		Suppressed:   int(m.stats.suppressed.Load()),
		Perturbation: vtime.Duration(m.stats.perturbation.Load()),
	}
}
