package dyninst

import (
	"testing"
	"testing/quick"

	"nvmap/internal/vtime"
)

func TestUninstrumentedPointIsFree(t *testing.T) {
	var charged vtime.Duration
	m := NewManager(DefaultCosts(), func(node int, d vtime.Duration) { charged += d })
	m.Fire(Entry("fn"), Context{Node: 0, Now: 10})
	if charged != 0 {
		t.Fatalf("uninstrumented point charged %v", charged)
	}
	if st := m.Stats(); st.Fires != 0 || st.Perturbation != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInsertFireRemove(t *testing.T) {
	var fired int
	var charged vtime.Duration
	m := NewManager(DefaultCosts(), func(node int, d vtime.Duration) { charged += d })
	h := m.Insert(Entry("send"), Snippet{
		Name: "count sends",
		Do:   func(ctx Context) { fired++ },
	})
	m.Fire(Entry("send"), Context{Node: 1, Now: 5})
	m.Fire(Entry("send"), Context{Node: 1, Now: 6})
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
	if charged != 2*DefaultCosts().PerFire {
		t.Fatalf("perturbation = %v", charged)
	}
	if !m.Instrumented(Entry("send")) {
		t.Fatal("point not reported instrumented")
	}
	if err := m.Remove(h); err != nil {
		t.Fatal(err)
	}
	m.Fire(Entry("send"), Context{Node: 1, Now: 7})
	if fired != 2 {
		t.Fatal("fired after removal")
	}
	if err := m.Remove(h); err == nil {
		t.Fatal("double removal accepted")
	}
	if m.Instrumented(Entry("send")) {
		t.Fatal("point still instrumented after removal")
	}
}

func TestPredicateGuards(t *testing.T) {
	gate := false
	var fired int
	m := NewManager(DefaultCosts(), nil)
	m.Insert(Exit("reduce"), Snippet{
		Name: "guarded",
		When: func(Context) bool { return gate },
		Do:   func(Context) { fired++ },
	})
	m.Fire(Exit("reduce"), Context{})
	if fired != 0 {
		t.Fatal("predicate did not suppress")
	}
	gate = true
	m.Fire(Exit("reduce"), Context{})
	if fired != 1 {
		t.Fatal("predicate did not pass")
	}
	st := m.Stats()
	if st.Suppressed != 1 || st.Fires != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Suppressed snippets still cost their predicate evaluation — the
	// paper's limitation-2 economics.
	wantPerturb := 2*DefaultCosts().PerPredicate + DefaultCosts().PerFire
	if st.Perturbation != wantPerturb {
		t.Fatalf("perturbation = %v, want %v", st.Perturbation, wantPerturb)
	}
}

func TestMultipleSnippetsAtOnePoint(t *testing.T) {
	var order []string
	m := NewManager(CostModel{}, nil)
	m.Insert(Entry("f"), Snippet{Name: "a", Do: func(Context) { order = append(order, "a") }})
	h := m.Insert(Entry("f"), Snippet{Name: "b", Do: func(Context) { order = append(order, "b") }})
	m.Insert(Entry("f"), Snippet{Name: "c", Do: func(Context) { order = append(order, "c") }})
	m.Fire(Entry("f"), Context{})
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if err := m.Remove(h); err != nil {
		t.Fatal(err)
	}
	order = nil
	m.Fire(Entry("f"), Context{})
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Fatalf("after middle removal order = %v", order)
	}
}

func TestRemoveAll(t *testing.T) {
	m := NewManager(CostModel{}, nil)
	m.Insert(Mapping("alloc"), Snippet{Name: "x"})
	m.Insert(Mapping("alloc"), Snippet{Name: "y"})
	if n := m.RemoveAll(Mapping("alloc")); n != 2 {
		t.Fatalf("RemoveAll = %d", n)
	}
	if n := m.RemoveAll(Mapping("alloc")); n != 0 {
		t.Fatalf("second RemoveAll = %d", n)
	}
	if st := m.Stats(); st.Removed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestActivePoints(t *testing.T) {
	m := NewManager(CostModel{}, nil)
	m.Insert(Exit("b"), Snippet{})
	m.Insert(Entry("a"), Snippet{})
	m.Insert(Entry("b"), Snippet{})
	pts := m.ActivePoints()
	if len(pts) != 3 {
		t.Fatalf("ActivePoints = %v", pts)
	}
	if pts[0] != Entry("a") || pts[1] != Entry("b") || pts[2] != Exit("b") {
		t.Fatalf("order = %v", pts)
	}
}

func TestContextArgsVisible(t *testing.T) {
	m := NewManager(CostModel{}, nil)
	var seen []string
	m.Insert(Entry("block"), Snippet{
		Do: func(ctx Context) { seen = append([]string(nil), ctx.Args...) },
	})
	m.Fire(Entry("block"), Context{Args: []string{"A", "B"}})
	if len(seen) != 2 || seen[0] != "A" {
		t.Fatalf("args = %v", seen)
	}
}

func TestPointIDStrings(t *testing.T) {
	if Entry("f").String() != "f:entry" || Exit("f").String() != "f:exit" ||
		Mapping("f").String() != "f:mapping" {
		t.Fatal("PointID.String wrong")
	}
	if PointKind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("msgs")
	if c.Name() != "msgs" || c.Value() != 0 {
		t.Fatal("fresh counter wrong")
	}
	c.Add(3)
	c.Add(-1)
	if c.Value() != 2 {
		t.Fatalf("Value = %g", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTimerBasics(t *testing.T) {
	tm := NewTimer("sendTime", ProcessTimer)
	if tm.Running() {
		t.Fatal("fresh timer running")
	}
	tm.Start(100)
	if !tm.Running() {
		t.Fatal("timer not running after Start")
	}
	if got := tm.Value(150); got != 50 {
		t.Fatalf("open Value = %v", got)
	}
	if err := tm.Stop(160); err != nil {
		t.Fatal(err)
	}
	if got := tm.Value(1000); got != 60 {
		t.Fatalf("closed Value = %v", got)
	}
	if err := tm.Stop(170); err == nil {
		t.Fatal("stop of stopped timer accepted")
	}
}

func TestTimerNesting(t *testing.T) {
	tm := NewTimer("recur", WallTimer)
	tm.Start(10)
	tm.Start(20) // nested — no effect on the open interval
	if err := tm.Stop(30); err != nil {
		t.Fatal(err)
	}
	if tm.Value(35) != 25 {
		t.Fatalf("nested open Value = %v", tm.Value(35))
	}
	if err := tm.Stop(40); err != nil {
		t.Fatal(err)
	}
	if tm.Value(100) != 30 {
		t.Fatalf("Value = %v, want 30 (10..40 once)", tm.Value(100))
	}
	if tm.Kind() != WallTimer || tm.Kind().String() != "wall" {
		t.Fatal("kind wrong")
	}
	if ProcessTimer.String() != "process" {
		t.Fatal("process kind name wrong")
	}
}

func TestTimerReset(t *testing.T) {
	tm := NewTimer("x", ProcessTimer)
	tm.Start(5)
	tm.Reset()
	if tm.Running() || tm.Value(100) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: balanced nested Start/Stop pairs accumulate exactly the span
// from the first Start to the last Stop of each outermost group.
func TestTimerBalanceProperty(t *testing.T) {
	f := func(spans []uint8) bool {
		tm := NewTimer("p", ProcessTimer)
		var now vtime.Time
		var want vtime.Duration
		for _, s := range spans {
			now = now.Add(vtime.Duration(s) + 1)
			start := now
			depth := int(s%3) + 1
			for i := 0; i < depth; i++ {
				tm.Start(now)
				now = now.Add(1)
			}
			for i := 0; i < depth; i++ {
				if err := tm.Stop(now); err != nil {
					return false
				}
				now = now.Add(1)
			}
			// Outermost stop happened at now-depth (after the last Stop the
			// clock advanced once more per stop). Recompute directly:
			stopAt := start.Add(vtime.Duration(2*depth - 1))
			want += stopAt.Sub(start)
		}
		return tm.Value(now) == want && !tm.Running()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: perturbation equals PerFire*fires + PerPredicate*evaluations.
func TestPerturbationAccountingProperty(t *testing.T) {
	f := func(gates []bool) bool {
		costs := CostModel{PerFire: 7, PerPredicate: 3}
		var charged vtime.Duration
		m := NewManager(costs, func(node int, d vtime.Duration) { charged += d })
		i := 0
		m.Insert(Entry("f"), Snippet{
			When: func(Context) bool { return gates[i] },
			Do:   func(Context) {},
		})
		var wantFires, wantEvals int
		for i = 0; i < len(gates); i++ {
			m.Fire(Entry("f"), Context{Node: 0})
			wantEvals++
			if gates[i] {
				wantFires++
			}
		}
		want := costs.PerFire.Scale(wantFires) + costs.PerPredicate.Scale(wantEvals)
		st := m.Stats()
		return charged == want && st.Perturbation == want &&
			st.Fires == wantFires && st.Suppressed == wantEvals-wantFires
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFireUninstrumented(b *testing.B) {
	m := NewManager(DefaultCosts(), nil)
	p := Entry("hot")
	ctx := Context{Node: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Fire(p, ctx)
	}
}

func BenchmarkFireCounting(b *testing.B) {
	m := NewManager(DefaultCosts(), nil)
	c := NewCounter("n")
	m.Insert(Entry("hot"), Snippet{Do: func(Context) { c.Add(1) }})
	p := Entry("hot")
	ctx := Context{Node: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Fire(p, ctx)
	}
}

func BenchmarkFireGuardedSuppressed(b *testing.B) {
	m := NewManager(DefaultCosts(), nil)
	m.Insert(Entry("hot"), Snippet{
		When: func(Context) bool { return false },
		Do:   func(Context) {},
	})
	p := Entry("hot")
	ctx := Context{Node: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Fire(p, ctx)
	}
}
