package dyninst

import (
	"fmt"

	"nvmap/internal/vtime"
)

// The paper's dynamic instrumentation defines primitives that implement
// counters and timers; MDL compiles metric descriptions into snippet
// actions over these primitives (Section 6.3).

// Counter is the counting primitive.
type Counter struct {
	name  string
	value float64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's label.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by v (negative v decrements — MDL uses
// decrements for gauge-style metrics such as messages in flight).
func (c *Counter) Add(v float64) { c.value += v }

// Value reads the counter.
func (c *Counter) Value() float64 { return c.value }

// Reset zeroes the counter (used when a metric-focus pair is disabled and
// later re-enabled).
func (c *Counter) Reset() { c.value = 0 }

// Set overwrites the counter, for checkpoint restore.
func (c *Counter) Set(v float64) { c.value = v }

// TimerKind distinguishes the two clocks Paradyn timers run against.
type TimerKind int

// Timer kinds. On the simulator both read virtual time; a process timer
// is intended to be started/stopped around scheduled work only, while a
// wall timer spans waiting too. The distinction matters to MDL authors,
// not to the primitive.
const (
	ProcessTimer TimerKind = iota
	WallTimer
)

// String names the kind.
func (k TimerKind) String() string {
	if k == ProcessTimer {
		return "process"
	}
	return "wall"
}

// Timer is the timing primitive. Starts nest: the timer accumulates from
// the first Start to the balancing Stop, the way Paradyn timers support
// recursive functions.
type Timer struct {
	name  string
	kind  TimerKind
	depth int
	since vtime.Time
	accum vtime.Duration
}

// NewTimer returns a stopped timer.
func NewTimer(name string, kind TimerKind) *Timer {
	return &Timer{name: name, kind: kind}
}

// Name returns the timer's label.
func (t *Timer) Name() string { return t.name }

// Kind returns the timer's clock kind.
func (t *Timer) Kind() TimerKind { return t.kind }

// Start begins (or nests) timing at instant now.
func (t *Timer) Start(now vtime.Time) {
	if t.depth == 0 {
		t.since = now
	}
	t.depth++
}

// Stop ends one nesting level at instant now; the outermost Stop
// accumulates the elapsed span. Stopping a stopped timer is an error —
// unbalanced instrumentation is a bug the tool must surface.
func (t *Timer) Stop(now vtime.Time) error {
	if t.depth == 0 {
		return fmt.Errorf("dyninst: stop of stopped timer %q", t.name)
	}
	t.depth--
	if t.depth == 0 {
		t.accum += now.Sub(t.since)
	}
	return nil
}

// Running reports whether the timer is started.
func (t *Timer) Running() bool { return t.depth > 0 }

// Value reads the accumulated time as of now (a running timer includes
// its open interval).
func (t *Timer) Value(now vtime.Time) vtime.Duration {
	v := t.accum
	if t.depth > 0 && now.After(t.since) {
		v += now.Sub(t.since)
	}
	return v
}

// Reset stops and zeroes the timer.
func (t *Timer) Reset() {
	t.depth = 0
	t.accum = 0
}

// TimerState is a timer's complete snapshot, including an open nesting.
type TimerState struct {
	Depth int
	Since vtime.Time
	Accum vtime.Duration
}

// State captures the timer for a checkpoint.
func (t *Timer) State() TimerState {
	return TimerState{Depth: t.depth, Since: t.since, Accum: t.accum}
}

// Restore overwrites the timer from a checkpointed state.
func (t *Timer) Restore(st TimerState) {
	t.depth = st.Depth
	t.since = st.Since
	t.accum = st.Accum
}
