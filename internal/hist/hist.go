// Package hist implements the fixed-size folding time histogram that the
// Paradyn tools use to store metric streams.
//
// A time histogram divides execution time into a fixed number of bins.
// Samples are added at a virtual timestamp and accumulate into the bin
// covering that instant. When a sample arrives beyond the histogram's
// current capacity the histogram folds: adjacent bins are combined and the
// bin width doubles, so the structure covers arbitrarily long executions
// in constant space while keeping a bounded-resolution view of the whole
// run. This is the storage behind every metric-focus pair in package
// paradyn.
package hist

import (
	"fmt"
	"math"
	"strings"

	"nvmap/internal/vtime"
)

// DefaultBins is the bin count used when callers pass 0; Paradyn
// historically used 1000 bins per curve, we default smaller for readable
// ASCII rendering.
const DefaultBins = 240

// Histogram is a fixed-size folding time histogram. The zero value is not
// usable; construct with New. Histogram is not safe for concurrent use;
// the data manager owns each instance.
type Histogram struct {
	bins     []float64
	binWidth vtime.Duration
	start    vtime.Time
	folds    int
	last     vtime.Time // latest sample timestamp seen
	total    float64
}

// New returns a histogram with the given number of bins, each initially
// covering initialWidth of virtual time, starting at the epoch. numBins
// must be even (folding halves the bin count pairwise); 0 selects
// DefaultBins. initialWidth must be positive.
func New(numBins int, initialWidth vtime.Duration) (*Histogram, error) {
	if numBins == 0 {
		numBins = DefaultBins
	}
	if numBins < 2 || numBins%2 != 0 {
		return nil, fmt.Errorf("hist: numBins must be even and >= 2, got %d", numBins)
	}
	if initialWidth <= 0 {
		return nil, fmt.Errorf("hist: initialWidth must be positive, got %v", initialWidth)
	}
	return &Histogram{
		bins:     make([]float64, numBins),
		binWidth: initialWidth,
	}, nil
}

// NumBins returns the (constant) number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinWidth returns the current width of each bin; it doubles on each fold.
func (h *Histogram) BinWidth() vtime.Duration { return h.binWidth }

// Folds returns how many times the histogram has folded.
func (h *Histogram) Folds() int { return h.folds }

// Span returns the virtual time currently covered by the histogram.
func (h *Histogram) Span() vtime.Duration {
	return h.binWidth.Scale(len(h.bins))
}

// End returns the first instant beyond the histogram's coverage.
func (h *Histogram) End() vtime.Time { return h.start.Add(h.Span()) }

// Total returns the sum of all accumulated values.
func (h *Histogram) Total() float64 { return h.total }

// Last returns the timestamp of the most recent sample.
func (h *Histogram) Last() vtime.Time { return h.last }

// Add accumulates value into the bin covering instant at, folding first if
// at lies beyond current coverage. Samples before the histogram start are
// rejected (time is monotone in the simulator, so this indicates a bug in
// the caller).
func (h *Histogram) Add(at vtime.Time, value float64) error {
	if at.Before(h.start) {
		return fmt.Errorf("hist: sample at %v precedes histogram start %v", at, h.start)
	}
	for !at.Before(h.End()) {
		h.fold()
	}
	idx := int(at.Sub(h.start) / h.binWidth)
	h.bins[idx] += value
	h.total += value
	if at.After(h.last) {
		h.last = at
	}
	return nil
}

// AddSpan spreads value uniformly over [from, to), folding as necessary.
// This is how timer metrics deposit an interval of accumulated time so the
// per-bin rates stay meaningful. A zero-length span degenerates to Add.
func (h *Histogram) AddSpan(from, to vtime.Time, value float64) error {
	if to.Before(from) {
		return fmt.Errorf("hist: inverted span [%v, %v)", from, to)
	}
	if from == to {
		return h.Add(from, value)
	}
	if from.Before(h.start) {
		return fmt.Errorf("hist: span start %v precedes histogram start %v", from, h.start)
	}
	// Fold so that to-1 is representable.
	for !(to - 1).Before(h.End()) {
		h.fold()
	}
	span := to.Sub(from)
	first := int(from.Sub(h.start) / h.binWidth)
	last := int((to - 1).Sub(h.start) / h.binWidth)
	for i := first; i <= last; i++ {
		binStart := h.start.Add(h.binWidth.Scale(i))
		binEnd := binStart.Add(h.binWidth)
		ovFrom := from.Max(binStart)
		ovTo := to
		if binEnd.Before(to) {
			ovTo = binEnd
		}
		frac := float64(ovTo.Sub(ovFrom)) / float64(span)
		h.bins[i] += value * frac
	}
	h.total += value
	if (to - 1).After(h.last) {
		h.last = to - 1
	}
	return nil
}

// fold combines pairs of adjacent bins into the lower half and doubles the
// bin width, preserving the total.
func (h *Histogram) fold() {
	n := len(h.bins)
	for i := 0; i < n/2; i++ {
		h.bins[i] = h.bins[2*i] + h.bins[2*i+1]
	}
	for i := n / 2; i < n; i++ {
		h.bins[i] = 0
	}
	h.binWidth *= 2
	h.folds++
}

// Bin returns the accumulated value of bin i.
func (h *Histogram) Bin(i int) float64 { return h.bins[i] }

// BinStart returns the starting instant of bin i.
func (h *Histogram) BinStart(i int) vtime.Time {
	return h.start.Add(h.binWidth.Scale(i))
}

// Rate returns bin i's value divided by the bin width in seconds — the
// mean rate (e.g. operations/second, CPU-seconds/second) over that bin.
func (h *Histogram) Rate(i int) float64 {
	return h.bins[i] / h.binWidth.Seconds()
}

// ValueBetween sums the accumulated values over [from, to), prorating the
// partially covered boundary bins.
func (h *Histogram) ValueBetween(from, to vtime.Time) float64 {
	if to.Before(from) || !from.Before(h.End()) {
		return 0
	}
	if from.Before(h.start) {
		from = h.start
	}
	if h.End().Before(to) {
		to = h.End()
	}
	var sum float64
	first := int(from.Sub(h.start) / h.binWidth)
	last := int((to - 1).Sub(h.start) / h.binWidth)
	for i := first; i <= last && i < len(h.bins); i++ {
		binStart := h.BinStart(i)
		binEnd := binStart.Add(h.binWidth)
		ovFrom := from.Max(binStart)
		ovTo := to
		if binEnd.Before(to) {
			ovTo = binEnd
		}
		frac := float64(ovTo.Sub(ovFrom)) / float64(h.binWidth)
		sum += h.bins[i] * frac
	}
	return sum
}

// Series returns the non-empty prefix of bins as (start, value) points up
// to and including the bin holding the last sample. It returns a copy.
func (h *Histogram) Series() []Point {
	if h.total == 0 && h.last == 0 {
		return nil
	}
	n := int(h.last.Sub(h.start)/h.binWidth) + 1
	if n > len(h.bins) {
		n = len(h.bins)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = Point{Start: h.BinStart(i), Value: h.bins[i]}
	}
	return out
}

// Point is one bin of a histogram series.
type Point struct {
	Start vtime.Time
	Value float64
}

// Max returns the largest bin value (0 for an empty histogram).
func (h *Histogram) Max() float64 {
	m := 0.0
	for _, v := range h.bins {
		if v > m {
			m = v
		}
	}
	return m
}

// Merge adds another histogram's mass into h, preserving totals: each of
// o's populated bins is deposited as a span over its time range. Used by
// the tool to combine the streams of several metric-focus pairs (e.g.
// summing per-node curves into a partition curve).
func (h *Histogram) Merge(o *Histogram) error {
	for i := 0; i < o.NumBins(); i++ {
		v := o.Bin(i)
		if v == 0 {
			continue
		}
		start := o.BinStart(i)
		if err := h.AddSpan(start, start.Add(o.BinWidth()), v); err != nil {
			return err
		}
	}
	return nil
}

// Scale multiplies every bin (and the total) by f, for unit conversions.
func (h *Histogram) Scale(f float64) {
	for i := range h.bins {
		h.bins[i] *= f
	}
	h.total *= f
}

// Sparkline renders the populated prefix of the histogram as a one-line
// ASCII sparkline with the given width, resampling bins as needed. It is
// used by the tool's time-plot visualisation.
func (h *Histogram) Sparkline(width int) string {
	series := h.Series()
	if len(series) == 0 || width <= 0 {
		return ""
	}
	levels := []byte("_.:-=+*#%@")
	resampled := make([]float64, width)
	for i := range resampled {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for j := lo; j < hi && j < len(series); j++ {
			s += series[j].Value
		}
		resampled[i] = s / float64(hi-lo)
	}
	max := 0.0
	for _, v := range resampled {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range resampled {
		if max == 0 {
			b.WriteByte(levels[0])
			continue
		}
		idx := int(math.Round(v / max * float64(len(levels)-1)))
		b.WriteByte(levels[idx])
	}
	return b.String()
}
