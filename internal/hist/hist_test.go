package hist

import (
	"math"
	"testing"
	"testing/quick"

	"nvmap/internal/vtime"
)

func mustNew(t *testing.T, bins int, width vtime.Duration) *Histogram {
	t.Helper()
	h, err := New(bins, width)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, vtime.Microsecond); err == nil {
		t.Error("odd bin count accepted")
	}
	if _, err := New(-4, vtime.Microsecond); err == nil {
		t.Error("negative bin count accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero width accepted")
	}
	h, err := New(0, vtime.Microsecond)
	if err != nil {
		t.Fatalf("default bins: %v", err)
	}
	if h.NumBins() != DefaultBins {
		t.Fatalf("NumBins = %d, want %d", h.NumBins(), DefaultBins)
	}
}

func TestAddAccumulatesIntoCorrectBin(t *testing.T) {
	h := mustNew(t, 4, 10)
	for _, c := range []struct {
		at   vtime.Time
		want int
	}{{0, 0}, {9, 0}, {10, 1}, {35, 3}} {
		h2 := mustNew(t, 4, 10)
		if err := h2.Add(c.at, 1); err != nil {
			t.Fatalf("Add(%d): %v", c.at, err)
		}
		if h2.Bin(c.want) != 1 {
			t.Errorf("Add(%d) went to wrong bin; bins=%v", c.at, h2)
		}
	}
	_ = h
}

func TestAddRejectsPreStartSamples(t *testing.T) {
	h := mustNew(t, 4, 10)
	if err := h.Add(-1, 1); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestFoldDoublesWidthAndPreservesTotal(t *testing.T) {
	h := mustNew(t, 4, 10)
	for i := 0; i < 4; i++ {
		if err := h.Add(vtime.Time(i*10), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity is 40; this forces one fold.
	if err := h.Add(40, 100); err != nil {
		t.Fatal(err)
	}
	if h.Folds() != 1 {
		t.Fatalf("Folds = %d, want 1", h.Folds())
	}
	if h.BinWidth() != 20 {
		t.Fatalf("BinWidth = %v, want 20", h.BinWidth())
	}
	if got, want := h.Total(), 1.0+2+3+4+100; got != want {
		t.Fatalf("Total = %g, want %g", got, want)
	}
	// After folding: bin0 = 1+2, bin1 = 3+4, bin2 = 100.
	if h.Bin(0) != 3 || h.Bin(1) != 7 || h.Bin(2) != 100 || h.Bin(3) != 0 {
		t.Fatalf("bins after fold = [%g %g %g %g]", h.Bin(0), h.Bin(1), h.Bin(2), h.Bin(3))
	}
}

func TestFarFutureSampleFoldsRepeatedly(t *testing.T) {
	h := mustNew(t, 4, 1)
	if err := h.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(1000, 1); err != nil {
		t.Fatal(err)
	}
	if h.End() <= 1000 {
		t.Fatalf("End = %v, should cover 1000", h.End())
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %g", h.Total())
	}
	if h.Folds() == 0 {
		t.Fatal("expected folds")
	}
}

// Property: no matter the sample pattern, Total equals the sum of inputs
// and equals the sum over bins (folding conserves mass).
func TestFoldConservesMassProperty(t *testing.T) {
	f := func(offsets []uint16, values []int8) bool {
		h, err := New(8, 3)
		if err != nil {
			return false
		}
		var want float64
		var at vtime.Time
		for i, off := range offsets {
			at = at.Add(vtime.Duration(off)) // monotone timestamps
			v := 1.0
			if i < len(values) {
				v = math.Abs(float64(values[i]))
			}
			if err := h.Add(at, v); err != nil {
				return false
			}
			want += v
		}
		var got float64
		for i := 0; i < h.NumBins(); i++ {
			got += h.Bin(i)
		}
		return math.Abs(got-want) < 1e-9 && math.Abs(h.Total()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: bin width is always initialWidth * 2^folds and coverage always
// includes the last sample.
func TestFoldGeometryProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		h, err := New(4, 2)
		if err != nil {
			return false
		}
		var at vtime.Time
		for _, off := range offsets {
			at = at.Add(vtime.Duration(off))
			if err := h.Add(at, 1); err != nil {
				return false
			}
			if h.BinWidth() != vtime.Duration(2)<<uint(h.Folds()) {
				return false
			}
			if !at.Before(h.End()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSpanSpreadsProportionally(t *testing.T) {
	h := mustNew(t, 4, 10)
	// Span [5, 25) covers half of bin0 and all of bin1's first half:
	// 5 ns in bin0, 10 ns in bin1, 5 ns in bin2.
	if err := h.AddSpan(5, 25, 20); err != nil {
		t.Fatal(err)
	}
	if got := h.Bin(0); math.Abs(got-5) > 1e-9 {
		t.Errorf("bin0 = %g, want 5", got)
	}
	if got := h.Bin(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("bin1 = %g, want 10", got)
	}
	if got := h.Bin(2); math.Abs(got-5) > 1e-9 {
		t.Errorf("bin2 = %g, want 5", got)
	}
	if math.Abs(h.Total()-20) > 1e-9 {
		t.Errorf("Total = %g, want 20", h.Total())
	}
}

func TestAddSpanDegenerate(t *testing.T) {
	h := mustNew(t, 4, 10)
	if err := h.AddSpan(7, 7, 3); err != nil {
		t.Fatal(err)
	}
	if h.Bin(0) != 3 {
		t.Fatalf("zero-length span: bin0 = %g", h.Bin(0))
	}
	if err := h.AddSpan(9, 2, 1); err == nil {
		t.Fatal("inverted span accepted")
	}
}

func TestAddSpanFoldsWhenNeeded(t *testing.T) {
	h := mustNew(t, 4, 10) // capacity 40
	if err := h.AddSpan(0, 100, 50); err != nil {
		t.Fatal(err)
	}
	if h.Folds() == 0 {
		t.Fatal("expected folding for long span")
	}
	if math.Abs(h.Total()-50) > 1e-9 {
		t.Fatalf("Total = %g, want 50", h.Total())
	}
}

// Property: AddSpan conserves mass like Add.
func TestAddSpanConservationProperty(t *testing.T) {
	f := func(starts []uint16, lens []uint8) bool {
		h, err := New(8, 5)
		if err != nil {
			return false
		}
		var want float64
		var base vtime.Time
		for i, s := range starts {
			base = base.Add(vtime.Duration(s))
			length := vtime.Duration(10)
			if i < len(lens) {
				length = vtime.Duration(lens[i])
			}
			if err := h.AddSpan(base, base.Add(length), 2); err != nil {
				return false
			}
			want += 2
		}
		var got float64
		for i := 0; i < h.NumBins(); i++ {
			got += h.Bin(i)
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueBetween(t *testing.T) {
	h := mustNew(t, 4, 10)
	for i := 0; i < 4; i++ {
		if err := h.Add(vtime.Time(i*10), 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.ValueBetween(0, 40); math.Abs(got-40) > 1e-9 {
		t.Errorf("full range = %g, want 40", got)
	}
	if got := h.ValueBetween(10, 20); math.Abs(got-10) > 1e-9 {
		t.Errorf("one bin = %g, want 10", got)
	}
	if got := h.ValueBetween(5, 15); math.Abs(got-10) > 1e-9 {
		t.Errorf("straddling = %g, want 10 (5 from each bin)", got)
	}
	if got := h.ValueBetween(50, 60); got != 0 {
		t.Errorf("beyond end = %g, want 0", got)
	}
	if got := h.ValueBetween(-20, -10); got != 0 {
		t.Errorf("inverted/empty = %g, want 0", got)
	}
}

func TestSeriesAndMax(t *testing.T) {
	h := mustNew(t, 8, 10)
	if s := h.Series(); s != nil {
		t.Fatalf("empty histogram Series = %v", s)
	}
	if err := h.Add(25, 7); err != nil {
		t.Fatal(err)
	}
	s := h.Series()
	if len(s) != 3 {
		t.Fatalf("Series length = %d, want 3 (bins 0..2)", len(s))
	}
	if s[2].Value != 7 || s[2].Start != 20 {
		t.Fatalf("Series[2] = %+v", s[2])
	}
	if h.Max() != 7 {
		t.Fatalf("Max = %g", h.Max())
	}
}

func TestRate(t *testing.T) {
	h := mustNew(t, 4, vtime.Second)
	if err := h.Add(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := h.Rate(0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Rate = %g, want 100 per second", got)
	}
}

func TestSparkline(t *testing.T) {
	h := mustNew(t, 8, 10)
	for i := 0; i < 8; i++ {
		if err := h.Add(vtime.Time(i*10), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	line := h.Sparkline(8)
	if len(line) != 8 {
		t.Fatalf("Sparkline length = %d, want 8: %q", len(line), line)
	}
	if line[0] == line[7] {
		t.Fatalf("Sparkline should show gradient: %q", line)
	}
	if h.Sparkline(0) != "" {
		t.Error("zero-width sparkline should be empty")
	}
	empty := mustNew(t, 8, 10)
	if empty.Sparkline(5) != "" {
		t.Error("empty histogram sparkline should be empty")
	}
}

func BenchmarkAdd(b *testing.B) {
	h, _ := New(DefaultBins, vtime.Microsecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Add(vtime.Time(i), 1)
	}
}

func BenchmarkAddSpan(b *testing.B) {
	h, _ := New(DefaultBins, vtime.Microsecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := vtime.Time(i * 10)
		_ = h.AddSpan(at, at.Add(25), 1)
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a := mustNew(t, 8, 10)
	b := mustNew(t, 8, 10)
	for i := 0; i < 8; i++ {
		if err := a.Add(vtime.Time(i*10), 1); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(vtime.Time(i*10), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Total()-24) > 1e-9 {
		t.Fatalf("merged Total = %g, want 24", a.Total())
	}
	for i := 0; i < 8; i++ {
		if math.Abs(a.Bin(i)-3) > 1e-9 {
			t.Fatalf("bin %d = %g, want 3", i, a.Bin(i))
		}
	}
}

func TestMergeDifferentResolutions(t *testing.T) {
	coarse := mustNew(t, 4, 40)
	fine := mustNew(t, 8, 10)
	if err := fine.Add(25, 8); err != nil {
		t.Fatal(err)
	}
	if err := coarse.Merge(fine); err != nil {
		t.Fatal(err)
	}
	if math.Abs(coarse.Total()-8) > 1e-9 {
		t.Fatalf("Total = %g", coarse.Total())
	}
	// Fine bin [20,30) lands entirely in coarse bin 0 ([0,40)).
	if math.Abs(coarse.Bin(0)-8) > 1e-9 {
		t.Fatalf("bin 0 = %g", coarse.Bin(0))
	}
}

func TestScale(t *testing.T) {
	h := mustNew(t, 4, 10)
	if err := h.Add(5, 10); err != nil {
		t.Fatal(err)
	}
	h.Scale(0.5)
	if h.Total() != 5 || h.Bin(0) != 5 {
		t.Fatalf("scaled: total=%g bin0=%g", h.Total(), h.Bin(0))
	}
}

// Property: merging conserves total mass across arbitrary patterns.
func TestMergeConservationProperty(t *testing.T) {
	f := func(aOff, bOff []uint8) bool {
		a, _ := New(8, 7)
		b, _ := New(8, 3)
		var at vtime.Time
		totalWant := 0.0
		for _, o := range aOff {
			at = at.Add(vtime.Duration(o) + 1)
			if a.Add(at, 1) != nil {
				return false
			}
			totalWant++
		}
		at = 0
		for _, o := range bOff {
			at = at.Add(vtime.Duration(o) + 1)
			if b.Add(at, 2) != nil {
				return false
			}
			totalWant += 2
		}
		if a.Merge(b) != nil {
			return false
		}
		return math.Abs(a.Total()-totalWant) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
