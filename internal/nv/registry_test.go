package nv

import (
	"fmt"
	"testing"
)

// newCMFRegistry builds the three-level vocabulary used throughout the
// paper's examples: CMF on top of CMRTS on top of Base.
func newCMFRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, l := range []Level{
		{ID: "Base", Name: "Base", Rank: 0},
		{ID: "CMRTS", Name: "CM Run-Time System", Rank: 1},
		{ID: "CMF", Name: "CM Fortran", Rank: 2},
	} {
		if err := r.AddLevel(l); err != nil {
			t.Fatalf("AddLevel(%v): %v", l.ID, err)
		}
	}
	return r
}

func TestRegistryAddLevelRejectsDuplicates(t *testing.T) {
	r := newCMFRegistry(t)
	if err := r.AddLevel(Level{ID: "CMF", Rank: 9}); err == nil {
		t.Fatal("duplicate level ID accepted")
	}
	if err := r.AddLevel(Level{ID: "Other", Rank: 2}); err == nil {
		t.Fatal("duplicate level rank accepted")
	}
	if err := r.AddLevel(Level{ID: "", Rank: 5}); err == nil {
		t.Fatal("empty level ID accepted")
	}
}

func TestRegistryNounLifecycle(t *testing.T) {
	r := newCMFRegistry(t)
	if err := r.AddNoun(Noun{ID: "main.fcm", Level: "CMF"}); err != nil {
		t.Fatalf("AddNoun root: %v", err)
	}
	if err := r.AddNoun(Noun{ID: "CORNER", Level: "CMF", Parent: "main.fcm"}); err != nil {
		t.Fatalf("AddNoun child: %v", err)
	}
	if err := r.AddNoun(Noun{ID: "TOT", Level: "CMF", Parent: "CORNER"}); err != nil {
		t.Fatalf("AddNoun grandchild: %v", err)
	}

	if got := r.Children("main.fcm"); len(got) != 1 || got[0] != "CORNER" {
		t.Fatalf("Children(main.fcm) = %v", got)
	}
	if got := r.Descendants("main.fcm"); len(got) != 3 {
		t.Fatalf("Descendants = %v, want 3 nouns", got)
	}
	if got := r.Roots("CMF"); len(got) != 1 || got[0] != "main.fcm" {
		t.Fatalf("Roots = %v", got)
	}

	// Removing an interior noun must fail; removing the leaf then the
	// now-leaf interior noun must succeed.
	if err := r.RemoveNoun("CORNER"); err == nil {
		t.Fatal("removed noun with children")
	}
	if err := r.RemoveNoun("TOT"); err != nil {
		t.Fatalf("RemoveNoun leaf: %v", err)
	}
	if err := r.RemoveNoun("CORNER"); err != nil {
		t.Fatalf("RemoveNoun after child gone: %v", err)
	}
	if got := r.Children("main.fcm"); len(got) != 0 {
		t.Fatalf("Children after removal = %v", got)
	}
	if err := r.RemoveNoun("CORNER"); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestRegistryAddNounValidation(t *testing.T) {
	r := newCMFRegistry(t)
	if err := r.AddNoun(Noun{ID: "A", Level: "NoSuchLevel"}); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := r.AddNoun(Noun{ID: "", Level: "CMF"}); err == nil {
		t.Fatal("empty noun ID accepted")
	}
	if err := r.AddNoun(Noun{ID: "A", Level: "CMF", Parent: "ghost"}); err == nil {
		t.Fatal("unknown parent accepted")
	}
	must(t, r.AddNoun(Noun{ID: "base_fn", Level: "Base"}))
	if err := r.AddNoun(Noun{ID: "A", Level: "CMF", Parent: "base_fn"}); err == nil {
		t.Fatal("cross-level parent accepted")
	}
	must(t, r.AddNoun(Noun{ID: "A", Level: "CMF"}))
	if err := r.AddNoun(Noun{ID: "A", Level: "CMF"}); err == nil {
		t.Fatal("duplicate noun accepted")
	}
}

func TestRegistryAddVerbValidation(t *testing.T) {
	r := newCMFRegistry(t)
	must(t, r.AddVerb(Verb{ID: "Sum", Level: "CMF", Units: "ops"}))
	if err := r.AddVerb(Verb{ID: "Sum", Level: "CMF"}); err == nil {
		t.Fatal("duplicate verb accepted")
	}
	if err := r.AddVerb(Verb{ID: "Spin", Level: "Nowhere"}); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := r.AddVerb(Verb{ID: "", Level: "CMF"}); err == nil {
		t.Fatal("empty verb ID accepted")
	}
}

func TestRegistryValidateSentence(t *testing.T) {
	r := newCMFRegistry(t)
	must(t, r.AddNoun(Noun{ID: "A", Level: "CMF"}))
	must(t, r.AddNoun(Noun{ID: "send_fn", Level: "Base"}))
	must(t, r.AddVerb(Verb{ID: "Sum", Level: "CMF"}))

	if err := r.ValidateSentence(NewSentence("Sum", "A")); err != nil {
		t.Fatalf("valid sentence rejected: %v", err)
	}
	if err := r.ValidateSentence(NewSentence("Sum", "send_fn")); err == nil {
		t.Fatal("cross-level sentence accepted")
	}
	if err := r.ValidateSentence(NewSentence("Sum", "ghost")); err == nil {
		t.Fatal("unknown noun accepted")
	}
	if err := r.ValidateSentence(NewSentence("Ghost", "A")); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

func TestRegistrySentenceLevel(t *testing.T) {
	r := newCMFRegistry(t)
	must(t, r.AddVerb(Verb{ID: "Sum", Level: "CMF"}))
	lvl, err := r.SentenceLevel(NewSentence("Sum", "whatever"))
	if err != nil || lvl != "CMF" {
		t.Fatalf("SentenceLevel = %q, %v", lvl, err)
	}
	if _, err := r.SentenceLevel(NewSentence("Nope")); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

func TestRegistryLevelsSortedByRank(t *testing.T) {
	r := newCMFRegistry(t)
	levels := r.Levels()
	if len(levels) != 3 {
		t.Fatalf("Levels() returned %d levels", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i-1].Rank >= levels[i].Rank {
			t.Fatalf("Levels() not sorted: %v", levels)
		}
	}
}

func TestRegistryPerLevelQueriesSorted(t *testing.T) {
	r := newCMFRegistry(t)
	for _, id := range []NounID{"zeta", "alpha", "mid"} {
		must(t, r.AddNoun(Noun{ID: id, Level: "CMF"}))
	}
	for _, id := range []VerbID{"Shift", "Execute", "Reduce"} {
		must(t, r.AddVerb(Verb{ID: id, Level: "CMF"}))
	}
	nouns := r.NounsAtLevel("CMF")
	if len(nouns) != 3 || nouns[0].ID != "alpha" || nouns[2].ID != "zeta" {
		t.Fatalf("NounsAtLevel = %v", nouns)
	}
	verbs := r.VerbsAtLevel("CMF")
	if len(verbs) != 3 || verbs[0].ID != "Execute" || verbs[2].ID != "Shift" {
		t.Fatalf("VerbsAtLevel = %v", verbs)
	}
	if n := r.NounsAtLevel("Base"); len(n) != 0 {
		t.Fatalf("NounsAtLevel(Base) = %v, want empty", n)
	}
}

func TestRegistryCounts(t *testing.T) {
	r := newCMFRegistry(t)
	for i := 0; i < 10; i++ {
		must(t, r.AddNoun(Noun{ID: NounID(fmt.Sprintf("n%d", i)), Level: "CMF"}))
	}
	must(t, r.AddVerb(Verb{ID: "V", Level: "Base"}))
	if r.NounCount() != 10 || r.VerbCount() != 1 {
		t.Fatalf("counts = %d nouns, %d verbs", r.NounCount(), r.VerbCount())
	}
}

func TestRegistryLookupMisses(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Level("x"); ok {
		t.Error("Level hit on empty registry")
	}
	if _, ok := r.Noun("x"); ok {
		t.Error("Noun hit on empty registry")
	}
	if _, ok := r.Verb("x"); ok {
		t.Error("Verb hit on empty registry")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
