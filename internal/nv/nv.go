// Package nv implements the Noun-Verb (NV) model for parallel program
// performance explanation from Irvin & Miller, "Mechanisms for Mapping
// High-Level Parallel Performance Data" (ICPP 1996).
//
// In the NV model, nouns are any program elements for which performance
// measurements can be made (programs, subroutines, loops, arrays,
// statements, processors, messages, ...) and verbs are any potential
// actions taken by or performed on a noun (execution, assignment,
// reduction, I/O, ...). An instance of a program construct described by a
// verb is a sentence: a verb, a set of participating nouns, and a cost.
// The collection of nouns and verbs of a particular software or hardware
// layer defines a level of abstraction.
//
// This package holds the vocabulary: levels, nouns, verbs, sentences and
// costs, plus a Registry that validates and indexes them. Relations
// between levels live in package mapping; run-time activity lives in
// package sas.
package nv

import (
	"fmt"
	"strings"
)

// LevelID identifies a level of abstraction, e.g. "CMF", "CMRTS", "Base".
type LevelID string

// Canonical level IDs and ranks for the reproduction's stack, from most
// abstract (the CM Fortran source) down to the hardware topology. These
// are the single source of truth for level naming; enumerate a session's
// actual levels with Session.Levels() rather than matching these
// strings ad hoc.
const (
	LevelIDCMF      LevelID = "CMF"     // CM Fortran source constructs
	LevelIDCMRTS    LevelID = "CMRTS"   // CM run-time system routines
	LevelIDBase     LevelID = "Base"    // functions of the executable image
	LevelIDMachine  LevelID = "Machine" // partition nodes
	LevelIDHardware LevelID = "HW"      // hardware topology (nodes/sockets/cores, links)
)

// The canonical rank of each level: larger is more abstract. Ranks must
// be unique within a registry; the hardware topology sits at the bottom.
const (
	RankCMF      = 2
	RankCMRTS    = 1
	RankBase     = 0
	RankMachine  = -1
	RankHardware = -2
)

// Level describes one level of abstraction. Levels are ordered by Rank:
// a larger Rank is more abstract (closer to the programmer), a smaller
// Rank is closer to the hardware. Mapping "upward" means toward larger
// ranks.
type Level struct {
	ID          LevelID
	Name        string
	Description string
	Rank        int
}

// NounID uniquely identifies a noun within a Registry.
type NounID string

// Noun is a program element for which performance measurements can be
// made. Nouns form per-level hierarchies through Parent (the basis of the
// Paradyn where axis): for example array TOT is a child of function
// CORNER, which is a child of module bow.fcm.
type Noun struct {
	ID          NounID
	Name        string
	Level       LevelID
	Description string
	// Parent is the enclosing noun in the same level's resource
	// hierarchy, or empty for a hierarchy root.
	Parent NounID
}

// VerbID uniquely identifies a verb within a Registry.
type VerbID string

// Verb is a potential action taken by or performed on a noun. Units
// documents the measurement unit of costs for sentences built from this
// verb (e.g. "% CPU", "operations", "seconds").
type Verb struct {
	ID          VerbID
	Name        string
	Level       LevelID
	Description string
	Units       string
}

// Sentence is an instance of a program construct described by a verb: the
// verb plus the set of participating nouns. The noun set is kept in
// canonical (sorted, deduplicated) order so sentences compare and hash
// consistently. A Sentence deliberately carries no cost: costs are
// measured for executions of sentences (see Cost and package sas).
//
// The unexported fields cache the sentence's interned identity (see
// intern.go); they are filled by NewSentence and Interned and are zero on
// a sentence built by hand or decoded from a checkpoint — such sentences
// re-intern lazily the first time a SAS touches them.
type Sentence struct {
	Verb  VerbID
	Nouns []NounID

	vh     VerbHandle
	nhs    []NounHandle
	handle SentenceHandle
	ckey   string
	// canon points to the interner's stored copy (self-referential on the
	// stored copy itself); value copies inherit it, so resolving a copy
	// back to its canonical pointer is one nil-check.
	canon *Sentence
	// skey is the active-set sharding key: the first noun handle, or the
	// verb handle for noun-less sentences.
	skey uint32
}

// keySep separates key components; it cannot occur in IDs we mint.
const keySep = '\x1f'

// NewSentence builds a canonical sentence from a verb and participating
// nouns. Duplicate nouns are removed and the noun set is sorted. The
// result is interned: repeated construction of the same sentence returns
// the stored canonical copy without allocating.
func NewSentence(verb VerbID, nouns ...NounID) Sentence {
	var arr [8]NounID
	set := arr[:0]
	if len(nouns) > len(arr) {
		set = make([]NounID, 0, len(nouns))
	}
	for _, n := range nouns {
		pos, dup := len(set), false
		for i, x := range set {
			if x == n {
				dup = true
				break
			}
			if x > n {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		set = append(set, "")
		copy(set[pos+1:], set[pos:])
		set[pos] = n
	}
	return DefaultInterner.Sentence(Sentence{Verb: verb, Nouns: set})
}

// Key returns a canonical string key for use in maps. Two sentences have
// equal keys exactly when they are Equal. Interned sentences return their
// cached key without allocating.
func (s Sentence) Key() string {
	if s.ckey != "" {
		return s.ckey
	}
	return string(appendKey(nil, s.Verb, s.Nouns))
}

// Handle returns the interned sentence handle (0 if not interned).
func (s Sentence) Handle() SentenceHandle { return s.handle }

// VerbHandle returns the interned verb handle (0 if not interned).
func (s Sentence) VerbHandle() VerbHandle { return s.vh }

// NounHandles returns the interned noun handles, aligned with Nouns
// (nil if not interned). The caller must not modify the slice.
func (s Sentence) NounHandles() []NounHandle { return s.nhs }

// Equal reports whether s and o denote the same sentence.
func (s Sentence) Equal(o Sentence) bool {
	if s.Verb != o.Verb || len(s.Nouns) != len(o.Nouns) {
		return false
	}
	for i := range s.Nouns {
		if s.Nouns[i] != o.Nouns[i] {
			return false
		}
	}
	return true
}

// Contains reports whether noun n participates in the sentence.
func (s Sentence) Contains(n NounID) bool {
	for _, x := range s.Nouns {
		if x == n {
			return true
		}
	}
	return false
}

// String renders the sentence in the paper's notation, e.g. "{A Sum}".
func (s Sentence) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range s.Nouns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(n))
	}
	if len(s.Nouns) > 0 {
		b.WriteByte(' ')
	}
	b.WriteString(string(s.Verb))
	b.WriteByte('}')
	return b.String()
}

// CostKind classifies what resource a cost measures.
type CostKind int

// The cost kinds used throughout the reproduction. The paper names time,
// memory and channel bandwidth as example resources; counts and CPU
// percentage appear in its metric tables (Figure 9, Figure 2).
const (
	CostTime    CostKind = iota // virtual nanoseconds
	CostCount                   // dimensionless event count
	CostBytes                   // memory or channel payload bytes
	CostPercent                 // percentage, e.g. "% CPU"
)

// String returns the unit suffix for the kind.
func (k CostKind) String() string {
	switch k {
	case CostTime:
		return "ns"
	case CostCount:
		return "ops"
	case CostBytes:
		return "bytes"
	case CostPercent:
		return "%"
	default:
		return fmt.Sprintf("CostKind(%d)", int(k))
	}
}

// Cost is a measured resource consumption for executions of a sentence.
type Cost struct {
	Kind  CostKind
	Value float64
}

// Add returns the sum of two costs of the same kind.
func (c Cost) Add(o Cost) (Cost, error) {
	if c.Kind != o.Kind {
		return Cost{}, fmt.Errorf("nv: cannot add %v cost to %v cost", o.Kind, c.Kind)
	}
	return Cost{Kind: c.Kind, Value: c.Value + o.Value}, nil
}

// Scale returns the cost multiplied by f (used by the split assignment
// policy in package mapping).
func (c Cost) Scale(f float64) Cost { return Cost{Kind: c.Kind, Value: c.Value * f} }

// String renders the cost with its unit, e.g. "42 ops" or "1.25e+06 ns".
func (c Cost) String() string { return fmt.Sprintf("%g %s", c.Value, c.Kind) }
