package nv

import (
	"fmt"
	"sort"
)

// Registry validates and indexes the NV vocabulary of one measured
// application: its levels of abstraction and the nouns and verbs defined
// at each level. A Registry is populated from static mapping information
// (package pif) before execution and extended with dynamic definitions
// (e.g. dynamically allocated parallel arrays) while the application runs.
//
// Registry is not safe for concurrent mutation; the tool serialises
// definition traffic through its data manager. Read methods may be called
// concurrently with each other.
type Registry struct {
	levels map[LevelID]Level
	nouns  map[NounID]Noun
	verbs  map[VerbID]Verb
	// children indexes the per-level resource hierarchies.
	children map[NounID][]NounID
	// roots lists hierarchy roots per level.
	roots map[LevelID][]NounID
	// interner assigns small-int handles to the vocabulary as it is
	// defined, so sentence matching downstream compares ints.
	interner *Interner
}

// NewRegistry returns an empty registry. Its vocabulary is interned into
// the process-wide DefaultInterner so handles agree across registries,
// SAS replicas and checkpoints.
func NewRegistry() *Registry {
	return &Registry{
		levels:   make(map[LevelID]Level),
		nouns:    make(map[NounID]Noun),
		verbs:    make(map[VerbID]Verb),
		children: make(map[NounID][]NounID),
		roots:    make(map[LevelID][]NounID),
		interner: DefaultInterner,
	}
}

// Interner returns the intern table this registry feeds.
func (r *Registry) Interner() *Interner { return r.interner }

// AddLevel defines a level of abstraction. Levels must be unique by ID
// and by rank: ranks order levels for upward/downward mapping, so two
// levels sharing a rank would make mapping direction ambiguous.
func (r *Registry) AddLevel(l Level) error {
	if l.ID == "" {
		return fmt.Errorf("nv: level must have an ID")
	}
	if _, dup := r.levels[l.ID]; dup {
		return fmt.Errorf("nv: duplicate level %q", l.ID)
	}
	for _, other := range r.levels {
		if other.Rank == l.Rank {
			return fmt.Errorf("nv: level %q and %q share rank %d", other.ID, l.ID, l.Rank)
		}
	}
	r.levels[l.ID] = l
	return nil
}

// AddNoun defines a noun. Its level must already exist, its ID must be
// fresh, and if it names a parent the parent must exist at the same
// level (resource hierarchies do not span levels).
func (r *Registry) AddNoun(n Noun) error {
	if n.ID == "" {
		return fmt.Errorf("nv: noun must have an ID")
	}
	if _, dup := r.nouns[n.ID]; dup {
		return fmt.Errorf("nv: duplicate noun %q", n.ID)
	}
	if _, ok := r.levels[n.Level]; !ok {
		return fmt.Errorf("nv: noun %q references unknown level %q", n.ID, n.Level)
	}
	if n.Parent != "" {
		p, ok := r.nouns[n.Parent]
		if !ok {
			return fmt.Errorf("nv: noun %q references unknown parent %q", n.ID, n.Parent)
		}
		if p.Level != n.Level {
			return fmt.Errorf("nv: noun %q (level %q) cannot have parent %q at level %q",
				n.ID, n.Level, n.Parent, p.Level)
		}
	}
	r.nouns[n.ID] = n
	r.interner.Noun(n.ID)
	if n.Parent != "" {
		r.children[n.Parent] = append(r.children[n.Parent], n.ID)
	} else {
		r.roots[n.Level] = append(r.roots[n.Level], n.ID)
	}
	return nil
}

// RemoveNoun deletes a leaf noun, e.g. when a dynamically allocated array
// is deallocated. Removing a noun with children is an error: the where
// axis must stay consistent.
func (r *Registry) RemoveNoun(id NounID) error {
	n, ok := r.nouns[id]
	if !ok {
		return fmt.Errorf("nv: cannot remove unknown noun %q", id)
	}
	if len(r.children[id]) > 0 {
		return fmt.Errorf("nv: cannot remove noun %q: it has %d children", id, len(r.children[id]))
	}
	delete(r.nouns, id)
	delete(r.children, id)
	if n.Parent != "" {
		r.children[n.Parent] = removeID(r.children[n.Parent], id)
	} else {
		r.roots[n.Level] = removeID(r.roots[n.Level], id)
	}
	return nil
}

func removeID(s []NounID, id NounID) []NounID {
	for i, x := range s {
		if x == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AddVerb defines a verb at an existing level.
func (r *Registry) AddVerb(v Verb) error {
	if v.ID == "" {
		return fmt.Errorf("nv: verb must have an ID")
	}
	if _, dup := r.verbs[v.ID]; dup {
		return fmt.Errorf("nv: duplicate verb %q", v.ID)
	}
	if _, ok := r.levels[v.Level]; !ok {
		return fmt.Errorf("nv: verb %q references unknown level %q", v.ID, v.Level)
	}
	r.verbs[v.ID] = v
	r.interner.Verb(v.ID)
	return nil
}

// Level returns the level with the given ID.
func (r *Registry) Level(id LevelID) (Level, bool) {
	l, ok := r.levels[id]
	return l, ok
}

// Noun returns the noun with the given ID.
func (r *Registry) Noun(id NounID) (Noun, bool) {
	n, ok := r.nouns[id]
	return n, ok
}

// Verb returns the verb with the given ID.
func (r *Registry) Verb(id VerbID) (Verb, bool) {
	v, ok := r.verbs[id]
	return v, ok
}

// Levels returns all levels ordered from least abstract (lowest rank) to
// most abstract.
func (r *Registry) Levels() []Level {
	out := make([]Level, 0, len(r.levels))
	for _, l := range r.levels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// NounsAtLevel returns all nouns of one level, sorted by ID.
func (r *Registry) NounsAtLevel(level LevelID) []Noun {
	var out []Noun
	for _, n := range r.nouns {
		if n.Level == level {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VerbsAtLevel returns all verbs of one level, sorted by ID.
func (r *Registry) VerbsAtLevel(level LevelID) []Verb {
	var out []Verb
	for _, v := range r.verbs {
		if v.Level == level {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Roots returns the hierarchy roots for one level, sorted by ID.
func (r *Registry) Roots(level LevelID) []NounID {
	out := append([]NounID(nil), r.roots[level]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the direct children of a noun, sorted by ID.
func (r *Registry) Children(id NounID) []NounID {
	out := append([]NounID(nil), r.children[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns id and every noun below it in the hierarchy.
func (r *Registry) Descendants(id NounID) []NounID {
	var out []NounID
	var walk func(NounID)
	walk = func(n NounID) {
		out = append(out, n)
		for _, c := range r.Children(n) {
			walk(c)
		}
	}
	walk(id)
	return out
}

// ValidateSentence checks that the sentence's verb and nouns are defined
// and that every noun shares the verb's level of abstraction. A sentence
// is an instance of a construct at one level; cross-level relations are
// expressed by mappings, never inside one sentence.
func (r *Registry) ValidateSentence(s Sentence) error {
	v, ok := r.verbs[s.Verb]
	if !ok {
		return fmt.Errorf("nv: sentence %v uses unknown verb %q", s, s.Verb)
	}
	for _, id := range s.Nouns {
		n, ok := r.nouns[id]
		if !ok {
			return fmt.Errorf("nv: sentence %v uses unknown noun %q", s, id)
		}
		if n.Level != v.Level {
			return fmt.Errorf("nv: sentence %v mixes noun %q (level %q) with verb %q (level %q)",
				s, id, n.Level, s.Verb, v.Level)
		}
	}
	return nil
}

// SentenceLevel returns the level of abstraction a sentence belongs to
// (the level of its verb).
func (r *Registry) SentenceLevel(s Sentence) (LevelID, error) {
	v, ok := r.verbs[s.Verb]
	if !ok {
		return "", fmt.Errorf("nv: unknown verb %q", s.Verb)
	}
	return v.Level, nil
}

// NounCount returns the number of defined nouns (used by tests and by the
// tool's status display).
func (r *Registry) NounCount() int { return len(r.nouns) }

// VerbCount returns the number of defined verbs.
func (r *Registry) VerbCount() int { return len(r.verbs) }
