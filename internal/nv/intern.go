package nv

import (
	"sync"
	"sync/atomic"
)

// Interning gives every noun, verb and canonical sentence a small integer
// handle so the hot paths of package sas can compare ints instead of
// strings. The paper's SAS is consulted on every activation notification
// and every measured event, so the cost of identifying a sentence is paid
// millions of times per run; a handle comparison is one word.
//
// Handles are process-wide (one table, shared by every Registry and SAS)
// and are never reclaimed: the vocabulary of a measured program is small
// and bounded, and stable handles are what make cross-SAS forwarding and
// checkpoint restore cheap. Handle 0 always means "not interned".

// NounHandle is the interned identity of a NounID. 0 means uninterned.
type NounHandle uint32

// VerbHandle is the interned identity of a VerbID. 0 means uninterned.
type VerbHandle uint32

// SentenceHandle is the interned identity of a canonical sentence key.
// 0 means uninterned.
type SentenceHandle uint32

// Interner owns the handle tables. The zero value is not usable; call
// NewInterner. All methods are safe for concurrent use; lookups on the
// hot path take a read lock only.
type Interner struct {
	mu        sync.RWMutex
	nouns     map[NounID]NounHandle
	nounIDs   []NounID
	verbs     map[VerbID]VerbHandle
	verbIDs   []VerbID
	sentences map[string]SentenceHandle
	// byHandle maps handle-1 to the canonical stored sentence. It is
	// copied on append and published atomically so handle lookups — the
	// hottest operation in the process — are a single load with no lock.
	// The pointed-to sentences are immutable.
	byHandle atomic.Pointer[[]*Sentence]
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{
		nouns:     make(map[NounID]NounHandle),
		verbs:     make(map[VerbID]VerbHandle),
		sentences: make(map[string]SentenceHandle),
	}
}

// DefaultInterner is the process-wide table. Registries intern their
// vocabulary into it as definitions arrive, and package sas interns every
// sentence it touches through it.
var DefaultInterner = NewInterner()

// Noun interns a noun ID, returning its stable handle.
func (in *Interner) Noun(id NounID) NounHandle {
	in.mu.RLock()
	h, ok := in.nouns[id]
	in.mu.RUnlock()
	if ok {
		return h
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nounLocked(id)
}

func (in *Interner) nounLocked(id NounID) NounHandle {
	if h, ok := in.nouns[id]; ok {
		return h
	}
	in.nounIDs = append(in.nounIDs, id)
	h := NounHandle(len(in.nounIDs))
	in.nouns[id] = h
	return h
}

// Verb interns a verb ID, returning its stable handle.
func (in *Interner) Verb(id VerbID) VerbHandle {
	in.mu.RLock()
	h, ok := in.verbs[id]
	in.mu.RUnlock()
	if ok {
		return h
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.verbLocked(id)
}

func (in *Interner) verbLocked(id VerbID) VerbHandle {
	if h, ok := in.verbs[id]; ok {
		return h
	}
	in.verbIDs = append(in.verbIDs, id)
	h := VerbHandle(len(in.verbIDs))
	in.verbs[id] = h
	return h
}

// NounID returns the ID interned under h.
func (in *Interner) NounID(h NounHandle) (NounID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if h == 0 || int(h) > len(in.nounIDs) {
		return "", false
	}
	return in.nounIDs[h-1], true
}

// VerbID returns the ID interned under h.
func (in *Interner) VerbID(h VerbHandle) (VerbID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if h == 0 || int(h) > len(in.verbIDs) {
		return "", false
	}
	return in.verbIDs[h-1], true
}

// InternStats is an intern-table size snapshot — the growth ledger the
// observability plane exports. Process-wide tables accumulate across
// sessions, so these values depend on process history.
type InternStats struct {
	Nouns     int
	Verbs     int
	Sentences int
}

// Stats counts the table's interned vocabulary.
func (in *Interner) Stats() InternStats {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return InternStats{
		Nouns:     len(in.nouns),
		Verbs:     len(in.verbs),
		Sentences: len(in.sentences),
	}
}

// appendKey builds the canonical map key of a sentence into b. It is the
// append form of Sentence.Key, shared so interning can key a lookup off a
// stack buffer without allocating.
func appendKey(b []byte, verb VerbID, nouns []NounID) []byte {
	b = append(b, verb...)
	for _, n := range nouns {
		b = append(b, keySep)
		b = append(b, n...)
	}
	return b
}

// canonical returns the stored sentence for a handle. Lock-free: the
// byHandle table is published atomically and its entries are immutable.
func (in *Interner) canonical(h SentenceHandle) *Sentence {
	return (*in.byHandle.Load())[h-1]
}

// SentencePtr interns *s (if needed) and returns the canonical stored
// sentence. The pointer is stable for the process lifetime and the
// pointed-to sentence must not be modified. This is the hot-path form:
// an already-interned sentence resolves with one atomic load and no
// copying.
func (in *Interner) SentencePtr(s *Sentence) *Sentence {
	if s.canon != nil {
		return s.canon
	}
	if s.handle != 0 {
		return in.canonical(s.handle)
	}
	return in.internSlow(s)
}

func (in *Interner) internSlow(s *Sentence) *Sentence {
	var arr [96]byte
	key := appendKey(arr[:0], s.Verb, s.Nouns)
	in.mu.RLock()
	h, ok := in.sentences[string(key)]
	in.mu.RUnlock()
	if ok {
		return in.canonical(h)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if h, ok := in.sentences[string(key)]; ok {
		return in.canonical(h)
	}
	cs := &Sentence{Verb: s.Verb, Nouns: append([]NounID(nil), s.Nouns...)}
	cs.vh = in.verbLocked(cs.Verb)
	if len(cs.Nouns) > 0 {
		cs.nhs = make([]NounHandle, len(cs.Nouns))
		for i, n := range cs.Nouns {
			cs.nhs[i] = in.nounLocked(n)
		}
	}
	cs.ckey = string(key)
	cs.canon = cs
	if len(cs.nhs) > 0 {
		cs.skey = uint32(cs.nhs[0])
	} else {
		cs.skey = uint32(cs.vh)
	}
	var old []*Sentence
	if p := in.byHandle.Load(); p != nil {
		old = *p
	}
	cs.handle = SentenceHandle(len(old) + 1)
	grown := make([]*Sentence, len(old)+1)
	copy(grown, old)
	grown[len(old)] = cs
	in.byHandle.Store(&grown)
	in.sentences[cs.ckey] = cs.handle
	return cs
}

// Sentence interns s, returning the canonical stored copy with all
// handle fields populated. The noun list is keyed exactly as given —
// sentences built through NewSentence are already canonical, and
// interning must preserve the identity semantics of Key() for any
// caller-built sentence. Interning an already-interned sentence is free.
func (in *Interner) Sentence(s Sentence) Sentence {
	if s.handle != 0 {
		return s
	}
	return *in.internSlow(&s)
}

// LookupPtr returns the canonical stored sentence without interning on a
// miss. A sentence that was never interned cannot be active in any SAS,
// which lets membership tests fail fast without growing the table.
func (in *Interner) LookupPtr(s *Sentence) (*Sentence, bool) {
	if s.handle != 0 {
		return in.canonical(s.handle), true
	}
	var arr [96]byte
	key := appendKey(arr[:0], s.Verb, s.Nouns)
	in.mu.RLock()
	h, ok := in.sentences[string(key)]
	in.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return in.canonical(h), true
}

// Lookup is LookupPtr by value; on a miss it returns s unchanged.
func (in *Interner) Lookup(s Sentence) (Sentence, bool) {
	p, ok := in.LookupPtr(&s)
	if !ok {
		return s, false
	}
	return *p, true
}

// HandleOf, VerbHandleOf and NounHandlesOf read a sentence's cached
// interned identity through a pointer, avoiding the receiver copy the
// value-method accessors would make on the hot path. The slice returned
// by NounHandlesOf must not be modified.
func HandleOf(s *Sentence) SentenceHandle    { return s.handle }
func VerbHandleOf(s *Sentence) VerbHandle    { return s.vh }
func NounHandlesOf(s *Sentence) []NounHandle { return s.nhs }

// ShardKeyOf returns the sharding key of an interned sentence: its first
// noun handle, or its verb handle when it has no nouns.
func ShardKeyOf(s *Sentence) uint32 { return s.skey }

// HasNoun reports whether interned sentence s carries noun handle h.
// Sentences name at most a handful of nouns, so a linear scan of the
// cached handle slice beats any index; the loop is small enough to
// inline into the columnar sweeps that are its only hot callers.
func HasNoun(s *Sentence, h NounHandle) bool {
	for _, have := range s.nhs {
		if have == h {
			return true
		}
	}
	return false
}

// Interned interns s in the default table. See Interner.Sentence.
func Interned(s Sentence) Sentence { return DefaultInterner.Sentence(s) }

// InternedPtr is Interner.SentencePtr on the default table.
func InternedPtr(s *Sentence) *Sentence { return DefaultInterner.SentencePtr(s) }

// LookupInterned is Interner.Lookup on the default table.
func LookupInterned(s Sentence) (Sentence, bool) { return DefaultInterner.Lookup(s) }

// LookupInternedPtr is Interner.LookupPtr on the default table.
func LookupInternedPtr(s *Sentence) (*Sentence, bool) { return DefaultInterner.LookupPtr(s) }
