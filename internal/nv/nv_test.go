package nv

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSentenceCanonicalises(t *testing.T) {
	s := NewSentence("Sum", "B", "A", "B", "A")
	if got, want := len(s.Nouns), 2; got != want {
		t.Fatalf("NewSentence kept %d nouns, want %d (%v)", got, want, s.Nouns)
	}
	if s.Nouns[0] != "A" || s.Nouns[1] != "B" {
		t.Fatalf("NewSentence order = %v, want [A B]", s.Nouns)
	}
}

func TestSentenceEqualIgnoresConstructionOrder(t *testing.T) {
	a := NewSentence("Sum", "X", "Y", "Z")
	b := NewSentence("Sum", "Z", "Y", "X")
	if !a.Equal(b) {
		t.Fatalf("sentences %v and %v should be equal", a, b)
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestSentenceEqualDistinguishesVerbAndNouns(t *testing.T) {
	base := NewSentence("Sum", "A")
	cases := []Sentence{
		NewSentence("Max", "A"),
		NewSentence("Sum", "B"),
		NewSentence("Sum", "A", "B"),
		NewSentence("Sum"),
	}
	for _, c := range cases {
		if base.Equal(c) {
			t.Errorf("%v should not equal %v", base, c)
		}
		if base.Key() == c.Key() {
			t.Errorf("key collision between %v and %v", base, c)
		}
	}
}

func TestSentenceContains(t *testing.T) {
	s := NewSentence("Send", "P1", "Msg7")
	if !s.Contains("P1") || !s.Contains("Msg7") {
		t.Fatalf("Contains misses a participating noun in %v", s)
	}
	if s.Contains("P2") {
		t.Fatalf("Contains reports absent noun in %v", s)
	}
}

func TestSentenceStringNotation(t *testing.T) {
	if got, want := NewSentence("Sum", "A").String(), "{A Sum}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := NewSentence("Send", "P", "A").String(), "{A,P Send}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := NewSentence("Idle").String(), "{Idle}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: NewSentence is idempotent — rebuilding from a canonical
// sentence's own nouns yields an equal sentence.
func TestNewSentenceIdempotentProperty(t *testing.T) {
	f := func(verb string, nouns []string) bool {
		ids := make([]NounID, len(nouns))
		for i, n := range nouns {
			ids[i] = NounID(n)
		}
		s := NewSentence(VerbID(verb), ids...)
		again := NewSentence(s.Verb, s.Nouns...)
		return s.Equal(again) && s.Key() == again.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over (verb, noun-set) up to canonical order.
func TestSentenceKeyInjectiveProperty(t *testing.T) {
	f := func(v1, v2 string, n1, n2 []string) bool {
		toIDs := func(ss []string) []NounID {
			ids := make([]NounID, len(ss))
			for i, s := range ss {
				ids[i] = NounID(strings.ReplaceAll(s, "\x1f", "_"))
			}
			return ids
		}
		a := NewSentence(VerbID(strings.ReplaceAll(v1, "\x1f", "_")), toIDs(n1)...)
		b := NewSentence(VerbID(strings.ReplaceAll(v2, "\x1f", "_")), toIDs(n2)...)
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: noun permutation never changes a sentence's identity.
func TestSentencePermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nouns []string) bool {
		ids := make([]NounID, len(nouns))
		for i, n := range nouns {
			ids[i] = NounID(n)
		}
		a := NewSentence("V", ids...)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		b := NewSentence("V", ids...)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Kind: CostCount, Value: 3}
	b := Cost{Kind: CostCount, Value: 4}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.Value != 7 || sum.Kind != CostCount {
		t.Fatalf("Add = %v, want 7 ops", sum)
	}
}

func TestCostAddRejectsKindMismatch(t *testing.T) {
	a := Cost{Kind: CostCount, Value: 3}
	b := Cost{Kind: CostTime, Value: 4}
	if _, err := a.Add(b); err == nil {
		t.Fatal("Add across kinds should fail")
	}
}

func TestCostScale(t *testing.T) {
	c := Cost{Kind: CostTime, Value: 10}
	if got := c.Scale(0.25); got.Value != 2.5 || got.Kind != CostTime {
		t.Fatalf("Scale = %v", got)
	}
}

func TestCostKindString(t *testing.T) {
	for kind, want := range map[CostKind]string{
		CostTime: "ns", CostCount: "ops", CostBytes: "bytes", CostPercent: "%",
	} {
		if got := kind.String(); got != want {
			t.Errorf("CostKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
	if got := CostKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind should include numeric value, got %q", got)
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Kind: CostCount, Value: 42}
	if got := c.String(); got != "42 ops" {
		t.Errorf("Cost.String() = %q", got)
	}
}

var sinkKey string

func BenchmarkSentenceKey(b *testing.B) {
	s := NewSentence("Send", "node3", "arrayA", "msg")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkKey = s.Key()
	}
}

func BenchmarkNewSentence(b *testing.B) {
	nouns := []NounID{"d", "c", "b", "a", "b", "c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewSentence("V", nouns...)
	}
}

// Guard against accidental reuse of reflect-based equality in hot paths:
// Equal must agree with reflect.DeepEqual on canonical sentences.
func TestSentenceEqualMatchesDeepEqual(t *testing.T) {
	f := func(v string, n1, n2 []string) bool {
		toIDs := func(ss []string) []NounID {
			ids := make([]NounID, len(ss))
			for i, s := range ss {
				ids[i] = NounID(s)
			}
			return ids
		}
		a := NewSentence(VerbID(v), toIDs(n1)...)
		b := NewSentence(VerbID(v), toIDs(n2)...)
		return a.Equal(b) == reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
