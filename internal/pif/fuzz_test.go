package pif

import (
	"strings"
	"testing"
)

// FuzzParsePIF feeds arbitrary text to the PIF reader. Malformed files
// must produce errors, never panics, and accepted files must survive a
// write/re-parse round trip.
func FuzzParsePIF(f *testing.F) {
	seeds := []string{
		"LEVEL\nname = Base\nrank = 0\n",
		"LEVEL\nname = CM Fortran\nrank = 2\n\nNOUN\nname = line7\nabstraction = CM Fortran\n",
		"VERB\nname = Executes\nabstraction = CM Fortran\ndescription = units are \"% CPU\"\n",
		"MAPPING\nsource = {f(), CPU Utilization}\ndestination = {line7, Executes}\n",
		"# comment only\n",
		"",
		"LEVEL\n",
		"LEVEL\nname = Base\nname = Base\n",
		"BOGUS\n",
		"LEVEL\nnovalue\n",
		"LEVEL\nname = Base\nrank = x\n",
		"NOUN\nname = \xff\xfe\nabstraction = Base\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		file, err := Parse(strings.NewReader(text))
		if err != nil {
			return
		}
		if file == nil {
			t.Fatal("nil File without error")
		}
	})
}
