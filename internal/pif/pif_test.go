package pif

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// figure2 is the static mapping information of Figure 2 of the paper,
// with LEVEL records added (our extension) so the file is self-contained.
const figure2 = `
LEVEL
name = Base
rank = 0

LEVEL
name = CM Fortran
rank = 2

NOUN
name = line1160
abstraction = CM Fortran
description = line #1160 in source file /usr/src/prog/main.fcm

NOUN
name = line1161
abstraction = CM Fortran
description = line #1161 in source file /usr/src/prog/main.fcm

VERB
name = Executes
abstraction = CM Fortran
description = units are "% CPU"

NOUN
name = cmpe_corr_6_()
abstraction = Base
description = compiler generated function, source code not available

VERB
name = CPU Utilization
abstraction = Base
description = units are "% CPU"

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1160, Executes}

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1161, Executes}
`

func TestParseFigure2(t *testing.T) {
	f, err := Parse(strings.NewReader(figure2))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Levels) != 2 || len(f.Nouns) != 3 || len(f.Verbs) != 2 || len(f.Mappings) != 2 {
		t.Fatalf("parsed %d levels, %d nouns, %d verbs, %d mappings",
			len(f.Levels), len(f.Nouns), len(f.Verbs), len(f.Mappings))
	}
	if f.Nouns[0].Name != "line1160" || f.Nouns[0].Abstraction != "CM Fortran" {
		t.Fatalf("first noun = %+v", f.Nouns[0])
	}
	if f.Nouns[2].Name != "cmpe_corr_6_()" || f.Nouns[2].Abstraction != "Base" {
		t.Fatalf("third noun = %+v", f.Nouns[2])
	}
	m := f.Mappings[0]
	if m.Source.Verb != "CPU Utilization" || len(m.Source.Nouns) != 1 || m.Source.Nouns[0] != "cmpe_corr_6_()" {
		t.Fatalf("mapping source = %+v", m.Source)
	}
	if m.Destination.Verb != "Executes" || m.Destination.Nouns[0] != "line1160" {
		t.Fatalf("mapping destination = %+v", m.Destination)
	}
}

func TestParseComments(t *testing.T) {
	src := "# header comment\nNOUN\nname = A\nabstraction = L\n# trailing comment\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nouns) != 1 {
		t.Fatalf("nouns = %+v", f.Nouns)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown keyword":   "WIDGET\nname = x\n",
		"field before kind": "name = x\n",
		"missing equals":    "NOUN\nname x\n",
		"empty key":         "NOUN\n= x\n",
		"duplicate field":   "NOUN\nname = a\nname = b\nabstraction = L\n",
		"noun no name":      "NOUN\nabstraction = L\n",
		"noun no level":     "NOUN\nname = a\n",
		"verb no name":      "VERB\nabstraction = L\n",
		"level bad rank":    "LEVEL\nname = L\nrank = two\n",
		"level no rank":     "LEVEL\nname = L\n",
		"unknown field":     "NOUN\nname = a\nabstraction = L\ncolor = red\n",
		"mapping no dest":   "MAPPING\nsource = {a, V}\n",
		"unbraced sentence": "MAPPING\nsource = a, V\ndestination = {b, W}\n",
		"empty sentence":    "MAPPING\nsource = {}\ndestination = {b, W}\n",
		"empty element":     "MAPPING\nsource = {a,, V}\ndestination = {b, W}\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		}
	}
}

func TestParseErrorIncludesLine(t *testing.T) {
	_, err := Parse(strings.NewReader("NOUN\nname = a\nabstraction = L\n\nWIDGET\n"))
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 5 {
		t.Fatalf("error line = %d, want 5: %v", pe.Line, pe)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f1, err := Parse(strings.NewReader(figure2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f1); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", f1, f2)
	}
}

// Property: Write/Parse round-trips arbitrary well-formed files.
func TestRoundTripProperty(t *testing.T) {
	clean := func(s string, fallback string) string {
		s = strings.Map(func(r rune) rune {
			if r == '\n' || r == '=' || r == ',' || r == '{' || r == '}' || r == '#' {
				return '_'
			}
			return r
		}, s)
		s = strings.TrimSpace(s)
		if s == "" {
			return fallback
		}
		return s
	}
	f := func(nounNames, verbNames []string, rank int8) bool {
		in := &File{Levels: []LevelRecord{{Name: "L", Rank: int(rank)}}}
		for i, n := range nounNames {
			if i >= 6 {
				break
			}
			in.Nouns = append(in.Nouns, NounRecord{
				Name: clean(n, "n") + string(rune('0'+i)), Abstraction: "L",
			})
		}
		for i, v := range verbNames {
			if i >= 6 {
				break
			}
			in.Verbs = append(in.Verbs, VerbRecord{
				Name: clean(v, "v") + string(rune('0'+i)), Abstraction: "L",
			})
		}
		if len(in.Nouns) > 0 && len(in.Verbs) > 0 {
			in.Mappings = append(in.Mappings, MappingRecord{
				Source:      SentenceRef{Nouns: []string{in.Nouns[0].Name}, Verb: in.Verbs[0].Name},
				Destination: SentenceRef{Verb: in.Verbs[len(in.Verbs)-1].Name, Nouns: []string{in.Nouns[len(in.Nouns)-1].Name}},
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Parse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSentenceRefString(t *testing.T) {
	ref := SentenceRef{Nouns: []string{"cmpe_corr_6_()"}, Verb: "CPU Utilization"}
	if got := ref.String(); got != "{cmpe_corr_6_(), CPU Utilization}" {
		t.Fatalf("String = %q", got)
	}
	bare := SentenceRef{Verb: "Idle"}
	if got := bare.String(); got != "{Idle}" {
		t.Fatalf("bare String = %q", got)
	}
}

func BenchmarkParseFigure2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(figure2)); err != nil {
			b.Fatal(err)
		}
	}
}
