package pif

import (
	"strings"
	"testing"

	"nvmap/internal/mapping"
	"nvmap/internal/nv"
)

func loadString(t *testing.T, src string) *Loaded {
	t.Helper()
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoadFigure2(t *testing.T) {
	l := loadString(t, figure2)

	if got := l.Registry.NounCount(); got != 3 {
		t.Fatalf("NounCount = %d", got)
	}
	if got := l.Registry.VerbCount(); got != 2 {
		t.Fatalf("VerbCount = %d", got)
	}
	if l.Table.Len() != 2 {
		t.Fatalf("Table.Len = %d", l.Table.Len())
	}

	// The compiler-generated function's measurements map one-to-many to
	// the two source lines.
	fnNoun, ok := l.NounID("Base", "cmpe_corr_6_()")
	if !ok {
		t.Fatal("cmpe_corr_6_() not resolvable")
	}
	cpuVerb, ok := l.VerbID("Base", "CPU Utilization")
	if !ok {
		t.Fatal("CPU Utilization not resolvable")
	}
	src := nv.NewSentence(cpuVerb, fnNoun)
	if k := l.Table.KindOf(src); k != mapping.OneToMany {
		t.Fatalf("KindOf(source) = %v, want One-to-Many", k)
	}
	dests := l.Table.Destinations(src)
	if len(dests) != 2 {
		t.Fatalf("Destinations = %v", dests)
	}
}

func TestLoadHierarchy(t *testing.T) {
	l := loadString(t, `
LEVEL
name = CMF
rank = 1

NOUN
name = bow.fcm
abstraction = CMF

NOUN
name = CORNER
abstraction = CMF
parent = bow.fcm

NOUN
name = TOT
abstraction = CMF
parent = CORNER
`)
	root, _ := l.NounID("CMF", "bow.fcm")
	if desc := l.Registry.Descendants(root); len(desc) != 3 {
		t.Fatalf("Descendants = %v", desc)
	}
}

func TestLoadParentMustPrecedeChild(t *testing.T) {
	f, err := Parse(strings.NewReader(`
LEVEL
name = CMF
rank = 1

NOUN
name = child
abstraction = CMF
parent = late
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(f); err == nil {
		t.Fatal("forward parent reference accepted")
	}
}

func TestLoadCrossLevelNameCollision(t *testing.T) {
	// The same noun name at two levels must get distinct IDs.
	l := loadString(t, `
LEVEL
name = A
rank = 1

LEVEL
name = B
rank = 2

NOUN
name = x
abstraction = A

NOUN
name = x
abstraction = B
`)
	idA, okA := l.NounID("A", "x")
	idB, okB := l.NounID("B", "x")
	if !okA || !okB {
		t.Fatal("collided nouns not resolvable")
	}
	if idA == idB {
		t.Fatalf("IDs collide: %q", idA)
	}
	if idA != "x" {
		t.Fatalf("first declaration should keep bare name, got %q", idA)
	}
	if idB != "B:x" {
		t.Fatalf("second declaration should be level-qualified, got %q", idB)
	}
}

func TestLoadDuplicateWithinLevelRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader(`
LEVEL
name = A
rank = 1

NOUN
name = x
abstraction = A

NOUN
name = x
abstraction = A
`))
	if _, err := Load(f); err == nil {
		t.Fatal("duplicate noun within level accepted")
	}
	f2, _ := Parse(strings.NewReader(`
LEVEL
name = A
rank = 1

VERB
name = v
abstraction = A

VERB
name = v
abstraction = A
`))
	if _, err := Load(f2); err == nil {
		t.Fatal("duplicate verb within level accepted")
	}
}

func TestLoadUnknownLevelRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader("NOUN\nname = x\nabstraction = Nowhere\n"))
	if _, err := Load(f); err == nil {
		t.Fatal("noun at undeclared level accepted")
	}
}

func TestLoadMappingResolution(t *testing.T) {
	// A verb name shared across levels resolves by participating nouns.
	l := loadString(t, `
LEVEL
name = A
rank = 1

LEVEL
name = B
rank = 2

NOUN
name = onlyA
abstraction = A

NOUN
name = onlyB
abstraction = B

VERB
name = Act
abstraction = A

VERB
name = Act
abstraction = B

MAPPING
source = {onlyA, Act}
destination = {onlyB, Act}
`)
	if l.Table.Len() != 1 {
		t.Fatalf("Table.Len = %d", l.Table.Len())
	}
	def := l.Table.Defs()[0]
	if def.Source.Verb != "Act" || def.Destination.Verb != "B:Act" {
		t.Fatalf("resolved def = %v", def)
	}
}

func TestLoadAmbiguousSentenceRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader(`
LEVEL
name = A
rank = 1

LEVEL
name = B
rank = 2

VERB
name = Act
abstraction = A

VERB
name = Act
abstraction = B

VERB
name = Other
abstraction = A

MAPPING
source = {Act}
destination = {Other}
`))
	if _, err := Load(f); err == nil {
		t.Fatal("ambiguous noun-less sentence accepted")
	}
}

func TestLoadUnresolvableSentenceRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader(`
LEVEL
name = A
rank = 1

VERB
name = Act
abstraction = A

MAPPING
source = {ghost, Act}
destination = {Act}
`))
	if _, err := Load(f); err == nil {
		t.Fatal("sentence with undeclared noun accepted")
	}
}

func TestResolveSentenceExported(t *testing.T) {
	l := loadString(t, figure2)
	s, err := l.ResolveSentence(SentenceRef{Nouns: []string{"line1160"}, Verb: "Executes"})
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "{line1160 Executes}" {
		t.Fatalf("resolved = %v", s)
	}
	if _, err := l.ResolveSentence(SentenceRef{Verb: "Nope"}); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

func TestApplyIncremental(t *testing.T) {
	l := loadString(t, figure2)
	// Dynamic phase: a new array noun arrives at run time.
	f, err := Parse(strings.NewReader(`
NOUN
name = A
abstraction = CM Fortran
`))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(f); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.NounID("CM Fortran", "A"); !ok {
		t.Fatal("incrementally applied noun not resolvable")
	}
	if l.Registry.NounCount() != 4 {
		t.Fatalf("NounCount = %d", l.Registry.NounCount())
	}
}

func BenchmarkLoadFigure2(b *testing.B) {
	f, err := Parse(strings.NewReader(figure2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Load(f); err != nil {
			b.Fatal(err)
		}
	}
}
