package pif

import (
	"strings"
	"testing"
	"testing/quick"
)

// PIF files arrive from external compilers and environments; arbitrary
// bytes must produce errors, never panics, and a parse-accepted file must
// either load or error cleanly.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		if file, err := Parse(strings.NewReader(junk)); err == nil {
			_, _ = Load(file)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRecordSoupProperty(t *testing.T) {
	vocab := []string{
		"NOUN", "VERB", "MAPPING", "LEVEL",
		"name = x", "abstraction = L", "rank = 1", "parent = y",
		"source = {a, V}", "destination = {b, W}", "units = ops",
		"", "# comment",
	}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		var lines []string
		for _, p := range picks {
			lines = append(lines, vocab[int(p)%len(vocab)])
		}
		if file, err := Parse(strings.NewReader(strings.Join(lines, "\n"))); err == nil {
			_, _ = Load(file)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
