// Package pif implements the Paradyn Information Format described in
// Sections 3 and 5 of the paper: the static mapping information file that
// compilers, programming environments and other external sources emit so a
// performance tool can learn an application's high-level nouns, verbs,
// levels of abstraction and the mappings between them.
//
// The file format follows Figure 2 of the paper: a sequence of records,
// each introduced by a record-type keyword (LEVEL, NOUN, VERB, MAPPING) on
// its own line, followed by "key = value" fields, separated from the next
// record by one or more blank lines. Lines beginning with '#' are
// comments. Sentence fields use the paper's brace notation with the verb
// last: "{cmpe_corr_6_(), CPU Utilization}" denotes the sentence whose
// noun is cmpe_corr_6_() and whose verb is CPU Utilization.
//
// LEVEL records are an extension over the figure (which leaves level
// definition implicit in the "abstraction" fields); they let a PIF file
// declare the rank ordering of its levels of abstraction.
package pif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RecordKind enumerates the record types of Figure 3 (plus LEVEL).
type RecordKind string

// The record keywords accepted in a PIF file.
const (
	KindLevel   RecordKind = "LEVEL"
	KindNoun    RecordKind = "NOUN"
	KindVerb    RecordKind = "VERB"
	KindMapping RecordKind = "MAPPING"
)

// LevelRecord declares a level of abstraction and its rank (larger is
// more abstract).
type LevelRecord struct {
	Name        string
	Rank        int
	Description string
}

// NounRecord declares a noun: its name, level of abstraction, optional
// parent in the level's resource hierarchy, and descriptive information.
type NounRecord struct {
	Name        string
	Abstraction string
	Description string
	Parent      string
}

// VerbRecord declares a verb with its level and measurement units.
type VerbRecord struct {
	Name        string
	Abstraction string
	Description string
	Units       string
}

// SentenceRef names a sentence inside a MAPPING record: participating
// noun names plus a verb name. Resolution against the declared nouns and
// verbs happens at load time (package load in this directory's load.go).
type SentenceRef struct {
	Nouns []string
	Verb  string
}

// String renders the reference in the paper's brace notation.
func (s SentenceRef) String() string {
	parts := append(append([]string{}, s.Nouns...), s.Verb)
	return "{" + strings.Join(parts, ", ") + "}"
}

// MappingRecord declares that performance data collected for the source
// sentence can be presented in relation to the destination sentence.
type MappingRecord struct {
	Source      SentenceRef
	Destination SentenceRef
}

// File is a parsed PIF file.
type File struct {
	Levels   []LevelRecord
	Nouns    []NounRecord
	Verbs    []VerbRecord
	Mappings []MappingRecord
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("pif: line %d: %s", e.Line, e.Msg) }

// Parse reads a PIF file.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var (
		lineNo  int
		kind    RecordKind
		fields  map[string]string
		started int // line the current record started on
	)
	flush := func() error {
		if kind == "" {
			return nil
		}
		if err := f.addRecord(kind, fields, started); err != nil {
			return err
		}
		kind = ""
		fields = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "#"):
			// comment
		case kind == "":
			k := RecordKind(line)
			switch k {
			case KindLevel, KindNoun, KindVerb, KindMapping:
				kind = k
				fields = make(map[string]string)
				started = lineNo
			default:
				return nil, &ParseError{lineNo, fmt.Sprintf("expected record keyword, got %q", line)}
			}
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("expected key = value, got %q", line)}
			}
			key := strings.TrimSpace(line[:eq])
			val := strings.TrimSpace(line[eq+1:])
			if key == "" {
				return nil, &ParseError{lineNo, "empty field key"}
			}
			if _, dup := fields[key]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("duplicate field %q in %s record", key, kind)}
			}
			fields[key] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pif: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) addRecord(kind RecordKind, fields map[string]string, line int) error {
	need := func(key string) (string, error) {
		v, ok := fields[key]
		if !ok || v == "" {
			return "", &ParseError{line, fmt.Sprintf("%s record missing required field %q", kind, key)}
		}
		return v, nil
	}
	known := func(keys ...string) error {
		allowed := make(map[string]bool, len(keys))
		for _, k := range keys {
			allowed[k] = true
		}
		var bad []string
		for k := range fields {
			if !allowed[k] {
				bad = append(bad, k)
			}
		}
		if len(bad) > 0 {
			sort.Strings(bad)
			return &ParseError{line, fmt.Sprintf("%s record has unknown fields %v", kind, bad)}
		}
		return nil
	}

	switch kind {
	case KindLevel:
		if err := known("name", "rank", "description"); err != nil {
			return err
		}
		name, err := need("name")
		if err != nil {
			return err
		}
		rankStr, err := need("rank")
		if err != nil {
			return err
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return &ParseError{line, fmt.Sprintf("LEVEL rank %q is not an integer", rankStr)}
		}
		f.Levels = append(f.Levels, LevelRecord{Name: name, Rank: rank, Description: fields["description"]})

	case KindNoun:
		if err := known("name", "abstraction", "description", "parent"); err != nil {
			return err
		}
		name, err := need("name")
		if err != nil {
			return err
		}
		abs, err := need("abstraction")
		if err != nil {
			return err
		}
		f.Nouns = append(f.Nouns, NounRecord{
			Name: name, Abstraction: abs,
			Description: fields["description"], Parent: fields["parent"],
		})

	case KindVerb:
		if err := known("name", "abstraction", "description", "units"); err != nil {
			return err
		}
		name, err := need("name")
		if err != nil {
			return err
		}
		abs, err := need("abstraction")
		if err != nil {
			return err
		}
		f.Verbs = append(f.Verbs, VerbRecord{
			Name: name, Abstraction: abs,
			Description: fields["description"], Units: fields["units"],
		})

	case KindMapping:
		if err := known("source", "destination"); err != nil {
			return err
		}
		srcStr, err := need("source")
		if err != nil {
			return err
		}
		dstStr, err := need("destination")
		if err != nil {
			return err
		}
		src, err := parseSentenceRef(srcStr, line)
		if err != nil {
			return err
		}
		dst, err := parseSentenceRef(dstStr, line)
		if err != nil {
			return err
		}
		f.Mappings = append(f.Mappings, MappingRecord{Source: src, Destination: dst})
	}
	return nil
}

// parseSentenceRef parses "{noun, noun, ..., verb}". The verb is the last
// comma-separated element; a sentence with no nouns is "{verb}".
func parseSentenceRef(s string, line int) (SentenceRef, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return SentenceRef{}, &ParseError{line, fmt.Sprintf("sentence %q must be brace-delimited", s)}
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	if inner == "" {
		return SentenceRef{}, &ParseError{line, "empty sentence {}"}
	}
	parts := strings.Split(inner, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return SentenceRef{}, &ParseError{line, fmt.Sprintf("sentence %q has an empty element", s)}
		}
	}
	return SentenceRef{Nouns: parts[:len(parts)-1], Verb: parts[len(parts)-1]}, nil
}

// Write emits the file in canonical PIF syntax: levels, then nouns, then
// verbs, then mappings, each as a Figure 2-style record.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	for _, l := range f.Levels {
		fmt.Fprintf(bw, "LEVEL\nname = %s\nrank = %d\n", l.Name, l.Rank)
		if l.Description != "" {
			fmt.Fprintf(bw, "description = %s\n", l.Description)
		}
		fmt.Fprintln(bw)
	}
	for _, n := range f.Nouns {
		fmt.Fprintf(bw, "NOUN\nname = %s\nabstraction = %s\n", n.Name, n.Abstraction)
		if n.Parent != "" {
			fmt.Fprintf(bw, "parent = %s\n", n.Parent)
		}
		if n.Description != "" {
			fmt.Fprintf(bw, "description = %s\n", n.Description)
		}
		fmt.Fprintln(bw)
	}
	for _, v := range f.Verbs {
		fmt.Fprintf(bw, "VERB\nname = %s\nabstraction = %s\n", v.Name, v.Abstraction)
		if v.Units != "" {
			fmt.Fprintf(bw, "units = %s\n", v.Units)
		}
		if v.Description != "" {
			fmt.Fprintf(bw, "description = %s\n", v.Description)
		}
		fmt.Fprintln(bw)
	}
	for _, m := range f.Mappings {
		fmt.Fprintf(bw, "MAPPING\nsource = %s\ndestination = %s\n\n", m.Source, m.Destination)
	}
	return bw.Flush()
}
