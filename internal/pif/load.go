package pif

import (
	"fmt"

	"nvmap/internal/mapping"
	"nvmap/internal/nv"
)

// Loaded is the result of resolving a PIF file against the NV model: a
// populated vocabulary registry and mapping table, plus name-resolution
// indexes so later requests (e.g. dynamic mapping traffic or user focus
// selections) can refer to nouns and verbs by PIF name.
//
// PIF names are unique only within a level of abstraction, while registry
// IDs are global. The loader mints the plain name as the ID when it is
// globally unused and falls back to "level:name" otherwise.
type Loaded struct {
	Registry *nv.Registry
	Table    *mapping.Table

	nounIDs map[levelName]nv.NounID
	verbIDs map[levelName]nv.VerbID
}

type levelName struct {
	level nv.LevelID
	name  string
}

// Load resolves f into a fresh registry and mapping table. It may also be
// used incrementally: LoadInto applies a file on top of existing state,
// which is how dynamic mapping information reuses the static machinery
// (Section 4: dynamic information "includes the same types of information
// as static mapping information").
func Load(f *File) (*Loaded, error) {
	l := &Loaded{
		Registry: nv.NewRegistry(),
		Table:    mapping.NewTable(),
		nounIDs:  make(map[levelName]nv.NounID),
		verbIDs:  make(map[levelName]nv.VerbID),
	}
	if err := l.Apply(f); err != nil {
		return nil, err
	}
	return l, nil
}

// Apply resolves an additional file into the loaded state.
func (l *Loaded) Apply(f *File) error {
	for _, rec := range f.Levels {
		err := l.Registry.AddLevel(nv.Level{
			ID: nv.LevelID(rec.Name), Name: rec.Name,
			Rank: rec.Rank, Description: rec.Description,
		})
		if err != nil {
			return fmt.Errorf("pif: %w", err)
		}
	}
	for _, rec := range f.Nouns {
		if err := l.addNoun(rec); err != nil {
			return err
		}
	}
	for _, rec := range f.Verbs {
		if err := l.addVerb(rec); err != nil {
			return err
		}
	}
	for _, rec := range f.Mappings {
		src, err := l.resolveRef(rec.Source)
		if err != nil {
			return fmt.Errorf("pif: mapping source %v: %w", rec.Source, err)
		}
		dst, err := l.resolveRef(rec.Destination)
		if err != nil {
			return fmt.Errorf("pif: mapping destination %v: %w", rec.Destination, err)
		}
		if err := l.Table.Add(mapping.Def{Source: src, Destination: dst}); err != nil {
			return fmt.Errorf("pif: %w", err)
		}
	}
	return nil
}

func (l *Loaded) addNoun(rec NounRecord) error {
	level := nv.LevelID(rec.Abstraction)
	key := levelName{level, rec.Name}
	if _, dup := l.nounIDs[key]; dup {
		return fmt.Errorf("pif: duplicate noun %q at level %q", rec.Name, rec.Abstraction)
	}
	var parent nv.NounID
	if rec.Parent != "" {
		p, ok := l.nounIDs[levelName{level, rec.Parent}]
		if !ok {
			return fmt.Errorf("pif: noun %q names undeclared parent %q (parents must precede children)", rec.Name, rec.Parent)
		}
		parent = p
	}
	id := l.mintNounID(level, rec.Name)
	err := l.Registry.AddNoun(nv.Noun{
		ID: id, Name: rec.Name, Level: level,
		Description: rec.Description, Parent: parent,
	})
	if err != nil {
		return fmt.Errorf("pif: %w", err)
	}
	l.nounIDs[key] = id
	return nil
}

func (l *Loaded) addVerb(rec VerbRecord) error {
	level := nv.LevelID(rec.Abstraction)
	key := levelName{level, rec.Name}
	if _, dup := l.verbIDs[key]; dup {
		return fmt.Errorf("pif: duplicate verb %q at level %q", rec.Name, rec.Abstraction)
	}
	id := l.mintVerbID(level, rec.Name)
	err := l.Registry.AddVerb(nv.Verb{
		ID: id, Name: rec.Name, Level: level,
		Description: rec.Description, Units: rec.Units,
	})
	if err != nil {
		return fmt.Errorf("pif: %w", err)
	}
	l.verbIDs[key] = id
	return nil
}

// mintNounID prefers the bare name; on a cross-level collision it
// qualifies with the level.
func (l *Loaded) mintNounID(level nv.LevelID, name string) nv.NounID {
	if _, taken := l.Registry.Noun(nv.NounID(name)); !taken {
		return nv.NounID(name)
	}
	return nv.NounID(string(level) + ":" + name)
}

func (l *Loaded) mintVerbID(level nv.LevelID, name string) nv.VerbID {
	if _, taken := l.Registry.Verb(nv.VerbID(name)); !taken {
		return nv.VerbID(name)
	}
	return nv.VerbID(string(level) + ":" + name)
}

// NounID resolves a PIF (level, name) pair to its registry ID.
func (l *Loaded) NounID(level nv.LevelID, name string) (nv.NounID, bool) {
	id, ok := l.nounIDs[levelName{level, name}]
	return id, ok
}

// VerbID resolves a PIF (level, name) pair to its registry ID.
func (l *Loaded) VerbID(level nv.LevelID, name string) (nv.VerbID, bool) {
	id, ok := l.verbIDs[levelName{level, name}]
	return id, ok
}

// resolveRef turns a sentence reference into a canonical sentence. The
// reference carries no explicit level; the verb name determines it. A verb
// name used at several levels is ambiguous unless exactly one candidate
// level also declares every participating noun.
func (l *Loaded) resolveRef(ref SentenceRef) (nv.Sentence, error) {
	var candidates []nv.LevelID
	for _, lvl := range l.Registry.Levels() {
		if _, ok := l.verbIDs[levelName{lvl.ID, ref.Verb}]; !ok {
			continue
		}
		ok := true
		for _, noun := range ref.Nouns {
			if _, found := l.nounIDs[levelName{lvl.ID, noun}]; !found {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, lvl.ID)
		}
	}
	switch len(candidates) {
	case 0:
		return nv.Sentence{}, fmt.Errorf("no level declares verb %q with nouns %v", ref.Verb, ref.Nouns)
	case 1:
		// resolved below
	default:
		return nv.Sentence{}, fmt.Errorf("sentence is ambiguous across levels %v", candidates)
	}
	lvl := candidates[0]
	verbID := l.verbIDs[levelName{lvl, ref.Verb}]
	nounIDs := make([]nv.NounID, len(ref.Nouns))
	for i, n := range ref.Nouns {
		nounIDs[i] = l.nounIDs[levelName{lvl, n}]
	}
	return nv.NewSentence(verbID, nounIDs...), nil
}

// ResolveSentence is the exported form of resolveRef for tool front-ends
// that accept sentences in PIF notation.
func (l *Loaded) ResolveSentence(ref SentenceRef) (nv.Sentence, error) {
	return l.resolveRef(ref)
}
