package cmrts

import (
	"math"
	"testing"
	"testing/quick"

	"nvmap/internal/dyninst"
	"nvmap/internal/machine"
)

func newRuntime(t *testing.T, nodes int) *Runtime {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, err := New(m, inst, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func alloc(t *testing.T, rt *Runtime, name string, shape ...int) *Array {
	t.Helper()
	a, err := rt.Allocate(name, shape)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func fillRamp(t *testing.T, rt *Runtime, a *Array) {
	t.Helper()
	if err := rt.ElementwiseIndexed("ramp", a, 1, func(_, i int) float64 {
		return float64(i)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := machine.New(machine.DefaultConfig(2))
	if _, err := New(nil, dyninst.NewManager(dyninst.CostModel{}, nil), DefaultCosts()); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := New(m, nil, DefaultCosts()); err == nil {
		t.Fatal("nil instrumentation manager accepted")
	}
}

func TestAllocateDistributesBlocks(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "TOT", 10)
	if a.Size() != 10 || a.Rank() != 1 {
		t.Fatalf("size/rank = %d/%d", a.Size(), a.Rank())
	}
	// 10 over 4 nodes: 3,3,2,2.
	wantLens := []int{3, 3, 2, 2}
	subs := a.Subregions()
	for n, want := range wantLens {
		if a.LocalLen(n) != want {
			t.Fatalf("node %d local len = %d, want %d", n, a.LocalLen(n), want)
		}
		if subs[n].Hi-subs[n].Lo != want {
			t.Fatalf("subregion %v length mismatch", subs[n])
		}
	}
	if subs[0].Lo != 0 || subs[3].Hi != 10 {
		t.Fatalf("subregions don't cover: %v", subs)
	}
	if a.HomeNode(0) != 0 || a.HomeNode(9) != 3 || a.HomeNode(5) != 1 {
		t.Fatal("HomeNode wrong")
	}
	if got := subs[2].String(); got != "node2:[6,8)" {
		t.Fatalf("Subregion.String = %q", got)
	}
}

func TestAllocateValidation(t *testing.T) {
	rt := newRuntime(t, 2)
	if _, err := rt.Allocate("bad", nil); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := rt.Allocate("bad", []int{4, 0}); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestAllocateFiresMappingPoint(t *testing.T) {
	rt := newRuntime(t, 2)
	var got []string
	rt.Inst().Insert(dyninst.Mapping(RoutineAlloc), dyninst.Snippet{
		Do: func(ctx dyninst.Context) { got = append([]string(nil), ctx.Args...) },
	})
	a := alloc(t, rt, "A", 8, 8)
	if len(got) != 3 || got[0] != string(a.ID) || got[1] != "A" || got[2] != "8x8" {
		t.Fatalf("mapping point args = %v", got)
	}
	if _, ok := rt.Array(a.ID); !ok {
		t.Fatal("array not registered")
	}
}

func TestFreeLifecycle(t *testing.T) {
	rt := newRuntime(t, 2)
	a := alloc(t, rt, "A", 16)
	if err := rt.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := rt.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	if _, ok := rt.Array(a.ID); ok {
		t.Fatal("freed array still registered")
	}
	if err := rt.Fill(a, 1, "x"); err == nil {
		t.Fatal("use after free accepted")
	}
	if len(rt.Arrays()) != 0 {
		t.Fatal("Arrays lists freed array")
	}
}

func TestFillAndFlat(t *testing.T) {
	rt := newRuntime(t, 3)
	a := alloc(t, rt, "A", 7)
	if err := rt.Fill(a, 2.5, "fill"); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Flat() {
		if v != 2.5 {
			t.Fatalf("element %d = %g", i, v)
		}
	}
	// Fill broadcasts the scalar.
	if rt.Count(RoutineBroadcast) != 1 {
		t.Fatalf("broadcasts = %d", rt.Count(RoutineBroadcast))
	}
}

func TestElementwise(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 100)
	b := alloc(t, rt, "B", 100)
	c := alloc(t, rt, "C", 100)
	fillRamp(t, rt, a)
	if err := rt.Fill(b, 10, "fill"); err != nil {
		t.Fatal(err)
	}
	err := rt.Elementwise("add", c, []*Array{a, b}, 1, func(v []float64) float64 {
		return v[0] + v[1]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Flat() {
		if v != float64(i)+10 {
			t.Fatalf("c[%d] = %g", i, v)
		}
	}
	// Compute advanced every node's clock.
	for n := 0; n < 4; n++ {
		if rt.Machine().Stats(n).ComputeOps == 0 {
			t.Fatalf("node %d did no compute", n)
		}
	}
}

func TestElementwiseValidation(t *testing.T) {
	rt := newRuntime(t, 2)
	a := alloc(t, rt, "A", 10)
	b := alloc(t, rt, "B", 20)
	if err := rt.Elementwise("x", a, []*Array{b}, 1, func(v []float64) float64 { return v[0] }); err == nil {
		t.Fatal("non-conformable accepted")
	}
	if err := rt.Elementwise("x", a, []*Array{nil}, 1, nil); err == nil {
		t.Fatal("nil operand accepted")
	}
}

func TestReduceValues(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 101)
	fillRamp(t, rt, a)

	sum, err := rt.Reduce(a, OpSum, "SUM(A)")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(100 * 101 / 2); sum != want {
		t.Fatalf("SUM = %g, want %g", sum, want)
	}
	max, _ := rt.Reduce(a, OpMax, "MAXVAL(A)")
	if max != 100 {
		t.Fatalf("MAXVAL = %g", max)
	}
	min, _ := rt.Reduce(a, OpMin, "MINVAL(A)")
	if min != 0 {
		t.Fatalf("MINVAL = %g", min)
	}
	if rt.Count(RoutineReduceSum) != 1 || rt.Count(RoutineReduceMax) != 1 || rt.Count(RoutineReduceMin) != 1 {
		t.Fatal("reduce counts wrong")
	}
	// The reduction advanced the CP clock past every node's send.
	if rt.Machine().CPNow() == 0 {
		t.Fatal("CP clock did not advance")
	}
}

func TestReduceOpNames(t *testing.T) {
	if OpSum.String() != "SUM" || OpMax.String() != "MAXVAL" || OpMin.String() != "MINVAL" {
		t.Fatal("op names wrong")
	}
	if OpSum.Routine() != RoutineReduceSum || OpMax.Routine() != RoutineReduceMax || OpMin.Routine() != RoutineReduceMin {
		t.Fatal("op routines wrong")
	}
}

func TestRotate(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 10)
	fillRamp(t, rt, a)
	if err := rt.Rotate(a, 3, "CSHIFT"); err != nil {
		t.Fatal(err)
	}
	flat := a.Flat()
	for i := 0; i < 10; i++ {
		want := float64((i - 3 + 10) % 10)
		if flat[i] != want {
			t.Fatalf("rotated[%d] = %g, want %g", i, flat[i], want)
		}
	}
	if rt.Count(RoutineSend) == 0 {
		t.Fatal("rotation crossed no node boundary?")
	}
	// Negative and oversized offsets.
	if err := rt.Rotate(a, -13, "CSHIFT"); err != nil {
		t.Fatal(err)
	}
	flat = a.Flat()
	if flat[0] != 0 {
		t.Fatalf("after -13 (net -10-3+3=...): flat=%v", flat[:4])
	}
}

func TestShiftEndOff(t *testing.T) {
	rt := newRuntime(t, 2)
	a := alloc(t, rt, "A", 6)
	fillRamp(t, rt, a)
	if err := rt.Shift(a, 2, -1, "EOSHIFT"); err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, 0, 1, 2, 3}
	for i, v := range a.Flat() {
		if v != want[i] {
			t.Fatalf("shifted = %v, want %v", a.Flat(), want)
		}
	}
	if err := rt.Shift(a, -100, 9, "EOSHIFT"); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Flat() {
		if v != 9 {
			t.Fatal("oversized shift should fill everything")
		}
	}
}

func TestTranspose(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "M", 3, 4)
	fillRamp(t, rt, a) // M[r][c] = 4r + c
	if err := rt.Transpose(a, "TRANSPOSE"); err != nil {
		t.Fatal(err)
	}
	if a.Shape[0] != 4 || a.Shape[1] != 3 {
		t.Fatalf("shape after transpose = %v", a.Shape)
	}
	// New M[c][r] should equal old M[r][c] = 4r + c.
	for c := 0; c < 4; c++ {
		for r := 0; r < 3; r++ {
			got := a.At(c*3 + r)
			if got != float64(4*r+c) {
				t.Fatalf("T[%d][%d] = %g, want %d", c, r, got, 4*r+c)
			}
		}
	}
	b := alloc(t, rt, "V", 5)
	if err := rt.Transpose(b, "x"); err == nil {
		t.Fatal("1-D transpose accepted")
	}
}

func TestScan(t *testing.T) {
	rt := newRuntime(t, 3)
	a := alloc(t, rt, "A", 8)
	if err := rt.Fill(a, 1, "fill"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Scan(a, OpSum, "SCAN"); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Flat() {
		if v != float64(i+1) {
			t.Fatalf("scan[%d] = %g, want %d", i, v, i+1)
		}
	}
	// Carry chain: nodes-1 sends.
	if rt.Count(RoutineSend) != 2 {
		t.Fatalf("scan sends = %d, want 2", rt.Count(RoutineSend))
	}
}

func TestScanMax(t *testing.T) {
	rt := newRuntime(t, 2)
	a := alloc(t, rt, "A", 5)
	vals := []float64{3, 1, 4, 1, 5}
	if err := rt.ElementwiseIndexed("init", a, 1, func(_, i int) float64 { return vals[i] }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Scan(a, OpMax, "SCANMAX"); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 4, 4, 5}
	for i, v := range a.Flat() {
		if v != want[i] {
			t.Fatalf("scanmax = %v, want %v", a.Flat(), want)
		}
	}
}

func TestSort(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 64)
	if err := rt.ElementwiseIndexed("init", a, 1, func(_, i int) float64 {
		return float64((i*37)%64) - 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Sort(a, "SORT"); err != nil {
		t.Fatal(err)
	}
	flat := a.Flat()
	for i := 1; i < len(flat); i++ {
		if flat[i-1] > flat[i] {
			t.Fatalf("not sorted at %d: %g > %g", i, flat[i-1], flat[i])
		}
	}
	if rt.Count(RoutineSend) == 0 {
		t.Fatal("sort moved no data between nodes")
	}
}

func TestCleanupAndCounts(t *testing.T) {
	rt := newRuntime(t, 2)
	before := rt.Machine().Now(0)
	rt.Cleanup("reset")
	if rt.Machine().Now(0) == before {
		t.Fatal("cleanup cost nothing")
	}
	if rt.Count(RoutineCleanup) != 1 {
		t.Fatal("cleanup not counted")
	}
}

func TestDispatchBlock(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 32)

	var entryArgs []string
	var argSpans int
	rt.Inst().Insert(dyninst.Entry("cmpe_main_1_"), dyninst.Snippet{
		Do: func(ctx dyninst.Context) {
			entryArgs = append([]string(nil), ctx.Args...)
		},
	})
	rt.Inst().Insert(dyninst.Exit(RoutineArgs), dyninst.Snippet{
		Do: func(ctx dyninst.Context) { argSpans++ },
	})

	ran := false
	err := rt.DispatchBlock("cmpe_main_1_", []ArrayID{a.ID}, func() error {
		ran = true
		return rt.Fill(a, 1, "cmpe_main_1_")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
	if len(entryArgs) != 1 || entryArgs[0] != string(a.ID) {
		t.Fatalf("block entry args = %v", entryArgs)
	}
	if argSpans != 4 {
		t.Fatalf("argument-processing exits = %d, want one per node", argSpans)
	}
	// Node activations: one dispatch per node.
	for n := 0; n < 4; n++ {
		if rt.Machine().Stats(n).Dispatches != 1 {
			t.Fatalf("node %d dispatches = %d", n, rt.Machine().Stats(n).Dispatches)
		}
	}
	// The CP waited for the block to finish.
	if rt.Machine().CPNow().Before(rt.Machine().Now(0)) {
		t.Fatal("CP did not wait for nodes")
	}
}

func TestUninstrumentedRunHasZeroPerturbation(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 256)
	fillRamp(t, rt, a)
	if _, err := rt.Reduce(a, OpSum, "SUM"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rotate(a, 5, "CSHIFT"); err != nil {
		t.Fatal(err)
	}
	if st := rt.Inst().Stats(); st.Perturbation != 0 || st.Fires != 0 {
		t.Fatalf("uninstrumented run perturbed: %+v", st)
	}
}

// Property: rotation never loses elements (the multiset is preserved) and
// composing rotate(k) with rotate(-k) is the identity.
func TestRotateInverseProperty(t *testing.T) {
	f := func(size8 uint8, off int8) bool {
		size := int(size8)%50 + 2
		rt := newRuntime(t, 4)
		a, err := rt.Allocate("A", []int{size})
		if err != nil {
			return false
		}
		if err := rt.ElementwiseIndexed("i", a, 1, func(_, i int) float64 { return float64(i * i) }); err != nil {
			return false
		}
		before := a.Flat()
		if err := rt.Rotate(a, int(off), "r"); err != nil {
			return false
		}
		if err := rt.Rotate(a, -int(off), "r"); err != nil {
			return false
		}
		after := a.Flat()
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SUM equals the arithmetic sum of stored values for any fill
// pattern and node count.
func TestReduceSumProperty(t *testing.T) {
	f := func(vals []float64, nodes8 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip pathological floats
			}
		}
		nodes := int(nodes8)%7 + 1
		rt := newRuntime(t, nodes)
		a, err := rt.Allocate("A", []int{len(vals)})
		if err != nil {
			return false
		}
		if err := rt.ElementwiseIndexed("init", a, 1, func(_, i int) float64 { return vals[i] }); err != nil {
			return false
		}
		got, err := rt.Reduce(a, OpSum, "SUM")
		if err != nil {
			return false
		}
		want := 0.0
		for _, v := range vals {
			want += v
		}
		return math.Abs(got-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose twice is the identity on data and shape.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(r8, c8 uint8) bool {
		r := int(r8)%6 + 1
		c := int(c8)%6 + 1
		rt := newRuntime(t, 4)
		a, err := rt.Allocate("M", []int{r, c})
		if err != nil {
			return false
		}
		if err := rt.ElementwiseIndexed("i", a, 1, func(_, i int) float64 { return float64(3*i + 1) }); err != nil {
			return false
		}
		before := a.Flat()
		if err := rt.Transpose(a, "t"); err != nil {
			return false
		}
		if err := rt.Transpose(a, "t"); err != nil {
			return false
		}
		after := a.Flat()
		if a.Shape[0] != r || a.Shape[1] != c {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReduce(b *testing.B) {
	m, _ := machine.New(machine.DefaultConfig(16))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := New(m, inst, DefaultCosts())
	a, _ := rt.Allocate("A", []int{4096})
	_ = rt.Fill(a, 1, "fill")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Reduce(a, OpSum, "SUM"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotate(b *testing.B) {
	m, _ := machine.New(machine.DefaultConfig(16))
	inst := dyninst.NewManager(dyninst.DefaultCosts(), m.AdvanceNode)
	rt, _ := New(m, inst, DefaultCosts())
	a, _ := rt.Allocate("A", []int{4096})
	_ = rt.Fill(a, 1, "fill")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Rotate(a, 7, "CSHIFT"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDotProduct(t *testing.T) {
	rt := newRuntime(t, 4)
	a := alloc(t, rt, "A", 33)
	b := alloc(t, rt, "B", 33)
	fillRamp(t, rt, a)
	if err := rt.Fill(b, 3, "fill"); err != nil {
		t.Fatal(err)
	}
	got, err := rt.DotProduct(a, b, "dot")
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 * 32 * 33 / 2
	if got != want {
		t.Fatalf("DotProduct = %g, want %g", got, want)
	}
	// Tree combine sent nodes-1 messages.
	if rt.Count(RoutineSend) != 3 {
		t.Fatalf("sends = %d, want 3", rt.Count(RoutineSend))
	}
	c := alloc(t, rt, "C", 7)
	if _, err := rt.DotProduct(a, c, "dot"); err == nil {
		t.Fatal("non-conformable dot product accepted")
	}
}
