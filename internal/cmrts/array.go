package cmrts

import (
	"fmt"
	"strconv"
	"strings"
)

// ArrayID uniquely identifies a parallel array instance for the lifetime
// of a run. IDs are minted by the runtime ("pvar3") the way CMRTS handed
// Paradyn "the proper CMRTS identifier" for each allocated array.
type ArrayID string

// Array is a parallel array distributed across the partition's nodes.
// Arrays are the fundamental source of parallelism in data-parallel CM
// Fortran: they are the only data objects that use memory on the nodes,
// and program performance depends on the efficiency of their computation
// and communication (Section 6.1).
//
// Data is stored row-major, block-distributed as contiguous flat chunks:
// node n holds flat indices [Offsets[n], Offsets[n+1]). Real values are
// carried so reductions and examples produce checkable results.
type Array struct {
	ID    ArrayID
	Name  string
	Shape []int

	// chunks[n] is node n's local section; offsets has len nodes+1.
	chunks  [][]float64
	offsets []int

	freed bool
}

// Size returns the total element count.
func (a *Array) Size() int { return a.offsets[len(a.offsets)-1] }

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Shape) }

// LocalLen returns the number of elements node n holds.
func (a *Array) LocalLen(n int) int { return len(a.chunks[n]) }

// Subregion describes which contiguous flat slice of the array one node
// stores — the data-to-processor mapping the runtime reports to the tool
// when the array is allocated.
type Subregion struct {
	Node int
	Lo   int // inclusive flat index
	Hi   int // exclusive flat index
}

// String renders e.g. "node2:[512,768)".
func (s Subregion) String() string {
	return fmt.Sprintf("node%d:[%d,%d)", s.Node, s.Lo, s.Hi)
}

// Subregions returns the data-to-node mapping.
func (a *Array) Subregions() []Subregion {
	out := make([]Subregion, 0, len(a.chunks))
	for n := range a.chunks {
		out = append(out, Subregion{Node: n, Lo: a.offsets[n], Hi: a.offsets[n+1]})
	}
	return out
}

// HomeNode returns the node owning flat index i.
func (a *Array) HomeNode(i int) int {
	for n := 0; n+1 < len(a.offsets); n++ {
		if i < a.offsets[n+1] {
			return n
		}
	}
	return len(a.chunks) - 1
}

// At reads the element at flat index i (test/debug access; does not cost
// simulated time).
func (a *Array) At(i int) float64 {
	n := a.HomeNode(i)
	return a.chunks[n][i-a.offsets[n]]
}

// setAt writes the element at flat index i.
func (a *Array) setAt(i int, v float64) {
	n := a.HomeNode(i)
	a.chunks[n][i-a.offsets[n]] = v
}

// Flat copies the whole array into one slice (test/debug access).
func (a *Array) Flat() []float64 {
	out := make([]float64, 0, a.Size())
	for _, c := range a.chunks {
		out = append(out, c...)
	}
	return out
}

// shapeString renders "1024x1024".
func shapeString(shape []int) string {
	var b strings.Builder
	for i, d := range shape {
		if i > 0 {
			b.WriteByte('x')
		}
		b.WriteString(strconv.Itoa(d))
	}
	return b.String()
}

// blockOffsets splits size elements into nodes balanced contiguous
// chunks: the first size%nodes chunks get one extra element.
func blockOffsets(size, nodes int) []int {
	offsets := make([]int, nodes+1)
	base := size / nodes
	extra := size % nodes
	pos := 0
	for n := 0; n < nodes; n++ {
		offsets[n] = pos
		pos += base
		if n < extra {
			pos++
		}
	}
	offsets[nodes] = pos
	return offsets
}

// transferMatrix computes, for a data redistribution where the element at
// old flat index i moves to new flat index perm(i), how many elements
// travel from each source node to each destination node. It is the
// common engine behind shifts, transposes and sorts.
func transferMatrix(a *Array, perm func(int) int) [][]int {
	nodes := len(a.chunks)
	m := make([][]int, nodes)
	for i := range m {
		m[i] = make([]int, nodes)
	}
	for src := 0; src < nodes; src++ {
		for i := a.offsets[src]; i < a.offsets[src+1]; i++ {
			dst := a.HomeNode(perm(i))
			m[src][dst]++
		}
	}
	return m
}

// applyPermutation rewrites the array's data so element old[i] lands at
// flat index perm(i). perm must be a bijection on [0, Size).
func applyPermutation(a *Array, perm func(int) int) {
	old := a.Flat()
	for i, v := range old {
		a.setAt(perm(i), v)
	}
}
