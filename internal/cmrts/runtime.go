// Package cmrts simulates the CM Run-Time System of the paper's case
// study (Section 6): the runtime layer between data-parallel CM Fortran
// and the machine. It owns parallel array allocation and distribution,
// dispatches node code blocks from the control processor, and implements
// the communication and computation operations whose verbs populate the
// CMRTS half of Figure 9 — broadcasts, point-to-point transfers,
// reductions, argument processing, cleanups and idle time.
//
// Every runtime routine fires dynamic-instrumentation points (package
// dyninst) at entry and exit on each participating node, and designated
// mapping points where dynamic mapping information becomes known (array
// allocation — Section 4.1's example). The runtime itself carries no
// measurement code: the tool decides what to observe by inserting
// snippets, exactly as the paper prescribes.
package cmrts

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"nvmap/internal/dyninst"
	"nvmap/internal/machine"
	"nvmap/internal/vtime"
)

// Runtime routine names: the "functions" of the simulated executable
// image that instrumentation points attach to.
const (
	RoutineAlloc     = "CMRTS_alloc"
	RoutineFree      = "CMRTS_free"
	RoutineArgs      = "CMRTS_args"     // per-node argument processing
	RoutineDispatch  = "CMRTS_dispatch" // node code block dispatcher (args in Context.Args, block in Context.Tag)
	RoutineCompute   = "CMRTS_compute"
	RoutineReduceSum = "CMRTS_reduce_sum"
	RoutineReduceMax = "CMRTS_reduce_max"
	RoutineReduceMin = "CMRTS_reduce_min"
	RoutineShift     = "CMRTS_shift"
	RoutineRotate    = "CMRTS_rotate"
	RoutineTranspose = "CMRTS_transpose"
	RoutineScan      = "CMRTS_scan"
	RoutineSort      = "CMRTS_sort"
	RoutineBroadcast = "CMRTS_broadcast"
	RoutineSend      = "CMRTS_send"
	RoutineCleanup   = "CMRTS_cleanup"
)

// ReduceOp selects a reduction operator.
type ReduceOp int

// Reduction operators of the CM Fortran intrinsics SUM, MAXVAL, MINVAL.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Routine returns the runtime routine implementing the operator.
func (op ReduceOp) Routine() string {
	switch op {
	case OpSum:
		return RoutineReduceSum
	case OpMax:
		return RoutineReduceMax
	default:
		return RoutineReduceMin
	}
}

// String names the operator like the intrinsic it implements.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "SUM"
	case OpMax:
		return "MAXVAL"
	default:
		return "MINVAL"
	}
}

const elemBytes = 8 // float64 payloads

// Costs extends the machine cost model with runtime-level constants.
type Costs struct {
	// AllocPerElem is the per-element cost of touching freshly allocated
	// node memory.
	AllocPerElem vtime.Duration
	// CleanupCost is the fixed per-node cost of resetting the vector
	// units (Figure 9's "Cleanups").
	CleanupCost vtime.Duration
	// SortFactor scales the local comparison cost of sorting.
	SortFactor int
}

// DefaultCosts returns runtime cost defaults.
func DefaultCosts() Costs {
	return Costs{
		AllocPerElem: 2 * vtime.Nanosecond,
		CleanupCost:  3 * vtime.Microsecond,
		SortFactor:   4,
	}
}

// Runtime is one simulated CMRTS instance bound to a machine and an
// instrumentation manager.
type Runtime struct {
	mach   *machine.Machine
	inst   *dyninst.Manager
	costs  Costs
	arrays map[ArrayID]*Array
	order  []ArrayID // allocation order for deterministic listing
	seq    int

	// counts is ground-truth operation counting (per routine name), used
	// by tests to validate what the tool measures independently.
	counts map[string]int

	// Pre-resolved instrumentation points. The runtime fires points on
	// every operation whether or not anything is attached, so the PointID
	// hash was a fixed per-event tax; resolving once at construction (and
	// memoising span/block points by name) replaces it with an index load.
	sendEntry, sendExit dyninst.PointRef
	argsEntry, argsExit dyninst.PointRef
	dispEntry, dispExit dyninst.PointRef
	allocMap, freeMap   dyninst.PointRef
	spans               map[string]pointPair
	blocks              map[string]*blockPoints
}

// pointPair is a routine's resolved entry/exit point pair.
type pointPair struct {
	entry, exit dyninst.PointRef
}

// blockPoints caches a dispatched block's resolved points and its
// ground-truth counter key (the "dispatch:"+name concatenation is hoisted
// off the per-dispatch path along with the point hashes).
type blockPoints struct {
	pointPair
	countKey string
}

// New builds a runtime on a machine. inst may not be nil: the runtime
// always fires its points (firing an uninstrumented point is free).
func New(m *machine.Machine, inst *dyninst.Manager, costs Costs) (*Runtime, error) {
	if m == nil || inst == nil {
		return nil, fmt.Errorf("cmrts: machine and instrumentation manager are required")
	}
	rt := &Runtime{
		mach:      m,
		inst:      inst,
		costs:     costs,
		arrays:    make(map[ArrayID]*Array),
		counts:    make(map[string]int),
		sendEntry: inst.Resolve(dyninst.Entry(RoutineSend)),
		sendExit:  inst.Resolve(dyninst.Exit(RoutineSend)),
		argsEntry: inst.Resolve(dyninst.Entry(RoutineArgs)),
		argsExit:  inst.Resolve(dyninst.Exit(RoutineArgs)),
		dispEntry: inst.Resolve(dyninst.Entry(RoutineDispatch)),
		dispExit:  inst.Resolve(dyninst.Exit(RoutineDispatch)),
		allocMap:  inst.Resolve(dyninst.Mapping(RoutineAlloc)),
		freeMap:   inst.Resolve(dyninst.Mapping(RoutineFree)),
		spans:     make(map[string]pointPair),
		blocks:    make(map[string]*blockPoints),
	}
	return rt, nil
}

// span memoises the resolved entry/exit pair for a routine name.
func (rt *Runtime) span(routine string) pointPair {
	pr, ok := rt.spans[routine]
	if !ok {
		pr = pointPair{
			entry: rt.inst.Resolve(dyninst.Entry(routine)),
			exit:  rt.inst.Resolve(dyninst.Exit(routine)),
		}
		rt.spans[routine] = pr
	}
	return pr
}

// block memoises the resolved points and counter key for a block name.
func (rt *Runtime) block(name string) *blockPoints {
	bp, ok := rt.blocks[name]
	if !ok {
		bp = &blockPoints{
			pointPair: pointPair{
				entry: rt.inst.Resolve(dyninst.Entry(name)),
				exit:  rt.inst.Resolve(dyninst.Exit(name)),
			},
			countKey: "dispatch:" + name,
		}
		rt.blocks[name] = bp
	}
	return bp
}

// Machine returns the underlying machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.mach }

// Inst returns the instrumentation manager.
func (rt *Runtime) Inst() *dyninst.Manager { return rt.inst }

// Count returns how many times a routine ran (ground truth for tests).
func (rt *Runtime) Count(routine string) int { return rt.counts[routine] }

// Array resolves an array ID.
func (rt *Runtime) Array(id ArrayID) (*Array, bool) {
	a, ok := rt.arrays[id]
	return a, ok
}

// Arrays lists live arrays in allocation order.
func (rt *Runtime) Arrays() []*Array {
	out := make([]*Array, 0, len(rt.order))
	for _, id := range rt.order {
		if a, ok := rt.arrays[id]; ok {
			out = append(out, a)
		}
	}
	return out
}

// nodes is a shorthand.
func (rt *Runtime) nodes() int { return rt.mach.Nodes() }

// parallelNodes runs a node-local loop body on the machine's parallel
// engine. work is the caller's cost hint — total elemental operations
// across the partition; small regions, crash schedules and stall plans
// run the plain sequential loop (see machine.ParallelNodes). The body
// must confine itself to node n's chunk, clock and stats: fire no
// instrumentation points and issue no sends inside it.
func (rt *Runtime) parallelNodes(work int, f func(node int)) {
	rt.mach.ParallelNodes(work, f)
}

// fireSpan wraps per-node entry/exit point firing around f, which must
// advance node clocks itself. Each span is an operation boundary: pending
// fail-stop crashes are enacted before the entry points fire, so a
// crashed node's instrumentation never observes work the node did not
// do. Permanently dead nodes are skipped entirely (their timers were
// wiped by the crash; leaving them un-fired keeps them honest).
func (rt *Runtime) fireSpan(routine, tag string, args []string, f func()) {
	rt.counts[routine]++
	pr := rt.span(routine)
	for n := 0; n < rt.nodes(); n++ {
		if !rt.mach.Engage(n) {
			continue
		}
		pr.entry.Fire(dyninst.Context{
			Node: n, Now: rt.mach.Now(n), Tag: tag, Args: args,
		})
	}
	f()
	for n := 0; n < rt.nodes(); n++ {
		if !rt.mach.Alive(n) {
			continue
		}
		pr.exit.Fire(dyninst.Context{
			Node: n, Now: rt.mach.Now(n), Tag: tag, Args: args,
		})
	}
}

// send performs one instrumented point-to-point transfer. A permanently
// dead sender sends nothing (and fires nothing); a dead receiver is the
// machine's concern — the message is charged to the sender and dropped
// in flight.
func (rt *Runtime) send(from, to, bytes int, tag string) {
	if !rt.mach.Engage(from) {
		return
	}
	rt.counts[RoutineSend]++
	rt.sendEntry.Fire(dyninst.Context{
		Node: from, Now: rt.mach.Now(from), Tag: tag, Bytes: bytes,
	})
	rt.mach.Send(from, to, bytes, tag)
	rt.sendExit.Fire(dyninst.Context{
		Node: from, Now: rt.mach.Now(from), Tag: tag, Bytes: bytes,
	})
}

// Allocate creates a parallel array named name (the source-level
// identifier) with the given shape, block-distributing it across the
// partition. The return point is a designated mapping point: the
// data-to-processor mapping has just been determined, and the tool's
// mapping instrumentation (if inserted) picks up the new noun and its
// subregion mappings from the point's arguments.
func (rt *Runtime) Allocate(name string, shape []int) (*Array, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("cmrts: array %q needs at least one dimension", name)
	}
	size := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("cmrts: array %q has non-positive dimension %d", name, d)
		}
		size *= d
	}
	// The allocation estimate (8 bytes per element across the
	// partition) is governed before any chunk materialises: an
	// over-budget allocation aborts with nothing half-built.
	rt.mach.ChargeAlloc(int64(size) * 8)
	rt.seq++
	id := ArrayID("pvar" + strconv.Itoa(rt.seq))
	offsets := blockOffsets(size, rt.nodes())
	// One contiguous slab backs every node's chunk: block distribution
	// means the windows tile it exactly, and a single allocation (plus
	// better locality for cross-node sweeps) replaces one per node. Full
	// capacity windows keep any later per-node regrowth private.
	slab := make([]float64, size)
	a := &Array{
		ID:      id,
		Name:    name,
		Shape:   append([]int(nil), shape...),
		offsets: offsets,
		chunks:  make([][]float64, rt.nodes()),
	}
	rt.fireSpan(RoutineAlloc, name, []string{string(id), name}, func() {
		rt.parallelNodes(size, func(n int) {
			lo, hi := offsets[n], offsets[n+1]
			a.chunks[n] = slab[lo:hi:hi]
			rt.mach.AdvanceNode(n, rt.costs.AllocPerElem.Scale(hi-lo))
		})
	})
	rt.arrays[id] = a
	rt.order = append(rt.order, id)
	// The mapping point fires on the control processor after the
	// distribution is known.
	rt.allocMap.Fire(dyninst.Context{
		Node: machine.CP, Now: rt.mach.CPNow(), Tag: name,
		Args: []string{string(id), name, shapeString(shape)},
	})
	return a, nil
}

// Free deallocates an array. The mapping point tells the tool the noun is
// gone.
func (rt *Runtime) Free(a *Array) error {
	if a.freed {
		return fmt.Errorf("cmrts: double free of %s (%s)", a.ID, a.Name)
	}
	a.freed = true
	delete(rt.arrays, a.ID)
	rt.counts[RoutineFree]++
	rt.freeMap.Fire(dyninst.Context{
		Node: machine.CP, Now: rt.mach.CPNow(), Tag: a.Name,
		Args: []string{string(a.ID), a.Name},
	})
	return nil
}

// checkLive validates arrays for an operation.
func checkLive(arrays ...*Array) error {
	for _, a := range arrays {
		if a == nil {
			return fmt.Errorf("cmrts: nil array operand")
		}
		if a.freed {
			return fmt.Errorf("cmrts: use of freed array %s (%s)", a.ID, a.Name)
		}
	}
	return nil
}

// conformable checks equal sizes (CM Fortran requires conformable
// operands for elementwise operations).
func conformable(dst *Array, srcs ...*Array) error {
	for _, s := range srcs {
		if s.Size() != dst.Size() {
			return fmt.Errorf("cmrts: arrays %s (%d elems) and %s (%d elems) are not conformable",
				dst.Name, dst.Size(), s.Name, s.Size())
		}
	}
	return nil
}

// Fill sets every element to v: a broadcast of the scalar followed by a
// local fill on each node.
func (rt *Runtime) Fill(a *Array, v float64, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	rt.BroadcastScalar(v, tag)
	rt.fireSpan(RoutineCompute, tag, []string{string(a.ID)}, func() {
		rt.parallelNodes(a.Size(), func(n int) {
			for i := range a.chunks[n] {
				a.chunks[n][i] = v
			}
			rt.mach.Compute(n, len(a.chunks[n]), tag)
		})
	})
	return nil
}

// Elementwise computes dst[i] = fn(srcs[0][i], srcs[1][i], ...) on every
// node's local section. flops scales the per-element cost (a
// multiply-add is ~2). All operands must be conformable and identically
// distributed, which holds for arrays of equal size in this runtime.
// Node sections may run on the machine's worker pool, so fn must be a
// pure function of its arguments (no shared mutable state).
func (rt *Runtime) Elementwise(tag string, dst *Array, srcs []*Array, flops int, fn func(vals []float64) float64) error {
	if err := checkLive(append([]*Array{dst}, srcs...)...); err != nil {
		return err
	}
	if err := conformable(dst, srcs...); err != nil {
		return err
	}
	if flops < 1 {
		flops = 1
	}
	args := []string{string(dst.ID)}
	for _, s := range srcs {
		args = append(args, string(s.ID))
	}
	rt.fireSpan(RoutineCompute, tag, args, func() {
		rt.parallelNodes(dst.Size()*flops, func(n int) {
			// The scratch vector is per node: workers must not share it.
			vals := make([]float64, len(srcs))
			for i := range dst.chunks[n] {
				for k, s := range srcs {
					vals[k] = s.chunks[n][i]
				}
				dst.chunks[n][i] = fn(vals)
			}
			rt.mach.Compute(n, len(dst.chunks[n])*flops, tag)
		})
	})
	return nil
}

// ElementwiseIndexed computes dst[i] = fn(i) over flat indices; used for
// FORALL statements whose right-hand side depends on the index. Like
// Elementwise, fn must be pure: sections may run concurrently.
func (rt *Runtime) ElementwiseIndexed(tag string, dst *Array, flops int, fn func(node, flat int) float64) error {
	if err := checkLive(dst); err != nil {
		return err
	}
	if flops < 1 {
		flops = 1
	}
	rt.fireSpan(RoutineCompute, tag, []string{string(dst.ID)}, func() {
		rt.parallelNodes(dst.Size()*flops, func(n int) {
			base := dst.offsets[n]
			for i := range dst.chunks[n] {
				dst.chunks[n][i] = fn(n, base+i)
			}
			rt.mach.Compute(n, len(dst.chunks[n])*flops, tag)
		})
	})
	return nil
}

// Reduce computes a global reduction of a: each node reduces its local
// section, then partial results combine pairwise over point-to-point
// messages up a binary tree rooted at node 0, which reports to the
// control processor — the exact scenario of the paper's Figure 4/5
// example ("each node reduces its subsections before sending its local
// results to other nodes to compute the global reductions").
func (rt *Runtime) Reduce(a *Array, op ReduceOp, tag string) (float64, error) {
	if err := checkLive(a); err != nil {
		return 0, err
	}
	partial := make([]float64, rt.nodes())
	routine := op.Routine()
	rt.fireSpan(routine, tag, []string{string(a.ID)}, func() {
		// Local phase: each node reduces its own section (slot n of
		// partial), eligible for the worker pool. The combining tree below
		// sends messages, so it stays sequential.
		rt.parallelNodes(a.Size(), func(n int) {
			// A permanently dead node contributes the operator identity:
			// the reduction honestly combines the survivors only (the tool
			// annotates the answer as partial).
			if !rt.mach.Alive(n) {
				partial[n] = identity(op)
				return
			}
			partial[n] = localReduce(a.chunks[n], op)
			rt.mach.Compute(n, len(a.chunks[n]), tag)
		})
		for stride := 1; stride < rt.nodes(); stride *= 2 {
			for lo := 0; lo+stride < rt.nodes(); lo += 2 * stride {
				rt.send(lo+stride, lo, elemBytes, tag)
				partial[lo] = combine(partial[lo], partial[lo+stride], op)
				rt.mach.Compute(lo, 1, tag)
			}
		}
		// Node 0 reports the result to the control processor.
		rt.mach.WaitCPForNodes()
		rt.mach.AdvanceCP(rt.mach.Config().MessageLatency)
	})
	return partial[0], nil
}

func localReduce(vals []float64, op ReduceOp) float64 {
	switch op {
	case OpSum:
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	case OpMax:
		m := math.Inf(-1)
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	default:
		m := math.Inf(1)
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	}
}

func combine(x, y float64, op ReduceOp) float64 {
	switch op {
	case OpSum:
		return x + y
	case OpMax:
		return math.Max(x, y)
	default:
		return math.Min(x, y)
	}
}

// identity returns the operator's neutral element, the contribution of a
// permanently dead node to a degraded reduction.
func identity(op ReduceOp) float64 {
	switch op {
	case OpSum:
		return 0
	case OpMax:
		return math.Inf(-1)
	default:
		return math.Inf(1)
	}
}

// DotProduct computes the global inner product of two conformable
// arrays: each node combines its local sections (two flops per element)
// and the partials sum over the same point-to-point tree as Reduce. At
// the runtime level this is a summation, so it fires the
// CMRTS_reduce_sum points and counts toward the reduction metrics.
func (rt *Runtime) DotProduct(a, b *Array, tag string) (float64, error) {
	if err := checkLive(a, b); err != nil {
		return 0, err
	}
	if err := conformable(a, b); err != nil {
		return 0, err
	}
	partial := make([]float64, rt.nodes())
	rt.fireSpan(RoutineReduceSum, tag, []string{string(a.ID), string(b.ID)}, func() {
		rt.parallelNodes(2*a.Size(), func(n int) {
			if !rt.mach.Alive(n) {
				return
			}
			var s float64
			for i, av := range a.chunks[n] {
				s += av * b.chunks[n][i]
			}
			partial[n] = s
			rt.mach.Compute(n, 2*len(a.chunks[n]), tag)
		})
		for stride := 1; stride < rt.nodes(); stride *= 2 {
			for lo := 0; lo+stride < rt.nodes(); lo += 2 * stride {
				rt.send(lo+stride, lo, elemBytes, tag)
				partial[lo] += partial[lo+stride]
				rt.mach.Compute(lo, 1, tag)
			}
		}
		rt.mach.WaitCPForNodes()
		rt.mach.AdvanceCP(rt.mach.Config().MessageLatency)
	})
	return partial[0], nil
}

// BroadcastScalar sends a scalar from the control processor to all nodes
// (Figure 9's "Broadcasts"). The value itself is immaterial to the cost
// model; the parameter documents intent at call sites.
func (rt *Runtime) BroadcastScalar(_ float64, tag string) {
	rt.fireSpan(RoutineBroadcast, tag, nil, func() {
		rt.mach.Broadcast(elemBytes, tag)
	})
}

// redistribute moves data according to perm (a bijection on flat
// indices), issuing the point-to-point transfers the movement implies and
// then rewriting the stored values.
func (rt *Runtime) redistribute(a *Array, perm func(int) int, tag string) {
	m := transferMatrix(a, perm)
	for src := 0; src < rt.nodes(); src++ {
		for dst := 0; dst < rt.nodes(); dst++ {
			if src == dst || m[src][dst] == 0 {
				continue
			}
			rt.send(src, dst, m[src][dst]*elemBytes, tag)
		}
	}
	applyPermutation(a, perm)
}

// Rotate circularly shifts the flattened array by offset (CM Fortran
// CSHIFT). Elements that cross chunk boundaries travel as point-to-point
// messages between neighbouring nodes.
func (rt *Runtime) Rotate(a *Array, offset int, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	size := a.Size()
	if size == 0 {
		return nil
	}
	off := ((offset % size) + size) % size
	rt.fireSpan(RoutineRotate, tag, []string{string(a.ID)}, func() {
		rt.redistribute(a, func(i int) int { return (i + off) % size }, tag)
		rt.parallelNodes(size, func(n int) {
			rt.mach.Compute(n, len(a.chunks[n]), tag)
		})
	})
	return nil
}

// Shift shifts the flattened array by offset, filling vacated positions
// with fill (CM Fortran EOSHIFT).
func (rt *Runtime) Shift(a *Array, offset int, fill float64, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	size := a.Size()
	if size == 0 {
		return nil
	}
	rt.fireSpan(RoutineShift, tag, []string{string(a.ID)}, func() {
		// Count cross-node movement of surviving elements.
		counts := make([][]int, rt.nodes())
		for i := range counts {
			counts[i] = make([]int, rt.nodes())
		}
		old := a.Flat()
		next := make([]float64, size)
		for i := range next {
			next[i] = fill
		}
		for i := 0; i < size; i++ {
			j := i + offset
			if j < 0 || j >= size {
				continue
			}
			next[j] = old[i]
			src, dst := a.HomeNode(i), a.HomeNode(j)
			if src != dst {
				counts[src][dst]++
			}
		}
		for src := 0; src < rt.nodes(); src++ {
			for dst := 0; dst < rt.nodes(); dst++ {
				if counts[src][dst] > 0 {
					rt.send(src, dst, counts[src][dst]*elemBytes, tag)
				}
			}
		}
		for i, v := range next {
			a.setAt(i, v)
		}
		rt.parallelNodes(size, func(n int) {
			rt.mach.Compute(n, len(a.chunks[n]), tag)
		})
	})
	return nil
}

// Transpose transposes a 2-D array in place (shape becomes reversed).
// The movement is an all-to-all pattern of point-to-point transfers.
func (rt *Runtime) Transpose(a *Array, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	if a.Rank() != 2 {
		return fmt.Errorf("cmrts: TRANSPOSE needs a 2-D array, %s is %d-D", a.Name, a.Rank())
	}
	rows, cols := a.Shape[0], a.Shape[1]
	rt.fireSpan(RoutineTranspose, tag, []string{string(a.ID)}, func() {
		perm := func(i int) int {
			r, c := i/cols, i%cols
			return c*rows + r
		}
		rt.redistribute(a, perm, tag)
		rt.parallelNodes(rows*cols, func(n int) {
			rt.mach.Compute(n, len(a.chunks[n]), tag)
		})
	})
	a.Shape[0], a.Shape[1] = cols, rows
	return nil
}

// Scan computes an inclusive prefix reduction (CM Fortran SCAN /
// CMSSL-style): local prefix on each node, a carry chain of small
// messages between neighbouring nodes, then a local adjustment pass.
func (rt *Runtime) Scan(a *Array, op ReduceOp, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	rt.fireSpan(RoutineScan, tag, []string{string(a.ID)}, func() {
		carry := 0.0
		haveCarry := false
		for n := 0; n < rt.nodes(); n++ {
			c := a.chunks[n]
			for i := range c {
				if i > 0 {
					c[i] = combine(c[i-1], c[i], op)
				}
			}
			rt.mach.Compute(n, 2*len(c), tag)
			if haveCarry {
				for i := range c {
					c[i] = combine(carry, c[i], op)
				}
			}
			if len(c) > 0 {
				carry = c[len(c)-1]
				haveCarry = true
			}
			if n+1 < rt.nodes() {
				rt.send(n, n+1, elemBytes, tag)
			}
		}
	})
	return nil
}

// Sort sorts the flattened array ascending. The data movement models a
// sample-sort: local sort compute on each node, then the all-to-all
// exchange implied by where each element ranks globally.
func (rt *Runtime) Sort(a *Array, tag string) error {
	if err := checkLive(a); err != nil {
		return err
	}
	rt.fireSpan(RoutineSort, tag, []string{string(a.ID)}, func() {
		old := a.Flat()
		idx := make([]int, len(old))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return old[idx[x]] < old[idx[y]] })
		rank := make([]int, len(old))
		for r, i := range idx {
			rank[i] = r
		}
		rt.parallelNodes(len(old)*rt.costs.SortFactor, func(n int) {
			local := len(a.chunks[n])
			cost := local * rt.costs.SortFactor * log2ceil(local)
			rt.mach.Compute(n, cost, tag)
		})
		rt.redistribute(a, func(i int) int { return rank[i] }, tag)
	})
	return nil
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// Cleanup resets the node vector units (Figure 9's "Cleanups").
func (rt *Runtime) Cleanup(tag string) {
	rt.fireSpan(RoutineCleanup, tag, nil, func() {
		for n := 0; n < rt.nodes(); n++ {
			rt.mach.AdvanceNode(n, rt.costs.CleanupCost)
		}
	})
}

// DispatchBlock runs a node code block: the control processor activates
// the block on every node (paying dispatch latency and per-node argument
// processing), the block body executes runtime operations, and the
// control processor waits for completion.
//
// The block's entry point fires with the argument array IDs in
// Context.Args — "the CMRTS node code block dispatcher notifies the SAS
// of array activation/deactivation by sending the input arguments for
// each node code block to the SAS" (Section 6.1). The tool implements
// that notification as an inserted snippet; the runtime only delivers the
// arguments.
func (rt *Runtime) DispatchBlock(name string, args []ArrayID, body func() error) error {
	argStrings := make([]string, len(args))
	argBytes := 16
	for i, id := range args {
		argStrings[i] = string(id)
		argBytes += 8
	}
	bp := rt.block(name)
	rt.counts[bp.countKey]++
	rt.mach.Dispatch(name, argBytes)

	// Argument processing spans: the machine just charged PerByte*argBytes
	// to each node at the end of its dispatch wait.
	argCost := rt.mach.Config().PerByte.Scale(argBytes)
	for n := 0; n < rt.nodes(); n++ {
		if !rt.mach.Engage(n) {
			continue
		}
		end := rt.mach.Now(n)
		rt.argsEntry.Fire(dyninst.Context{
			Node: n, Now: end.Add(-argCost), Tag: name, Bytes: argBytes, Args: argStrings,
		})
		rt.argsExit.Fire(dyninst.Context{
			Node: n, Now: end, Tag: name, Bytes: argBytes, Args: argStrings,
		})
	}

	// The dispatcher point brackets the block body on every node; the
	// tool's array/statement gating instruments this single point pair
	// instead of every generated block.
	for n := 0; n < rt.nodes(); n++ {
		if !rt.mach.Alive(n) {
			continue
		}
		ctx := dyninst.Context{Node: n, Now: rt.mach.Now(n), Tag: name, Args: argStrings}
		rt.dispEntry.Fire(ctx)
		bp.entry.Fire(ctx)
	}
	err := body()
	for n := 0; n < rt.nodes(); n++ {
		if !rt.mach.Alive(n) {
			continue
		}
		ctx := dyninst.Context{Node: n, Now: rt.mach.Now(n), Tag: name, Args: argStrings}
		bp.exit.Fire(ctx)
		rt.dispExit.Fire(ctx)
	}
	rt.mach.WaitCPForNodes()
	return err
}
