package sas

import (
	"sort"

	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file adds fail-stop recovery support to the SAS: a snapshotable
// state (the per-node partition a checkpoint captures), an operation
// journal (the post-checkpoint records a supervisor replays after a
// reboot), and an in-place Reset (the wipe a crash inflicts). Entries
// held on behalf of ReliableLinks are deliberately outside this state:
// the links' own retransmit/resync machinery (reliable.go) reconstructs
// them, exactly as it does after message loss.

// RecordKind classifies one journaled SAS operation.
type RecordKind uint8

// The journaled operation kinds.
const (
	RecActivate RecordKind = iota
	RecDeactivate
	RecEvent
	RecSpan
)

// Record is one journaled SAS operation, sufficient to replay it. From
// is the span start for RecSpan records; Value and Dur carry the
// RecordEvent value and RecordSpan duration respectively.
type Record struct {
	Kind     RecordKind
	Sentence nv.Sentence
	At       vtime.Time
	From     vtime.Time
	Value    float64
	Dur      vtime.Duration
}

// SetRecorder installs a journal hook invoked for every local (and
// plain-remote) Activate, Deactivate, RecordEvent and RecordSpan — the
// operations Replay can reproduce. The hook runs with the journal lock
// held and must not call back into the SAS. Events arriving over a
// ReliableLink are not journaled: the link retransmits them itself. A
// nil fn removes the hook.
func (s *SAS) SetRecorder(fn func(Record)) {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.record = fn
}

// journaling reports whether hot-path operations should build and emit
// journal records; callers gate Record construction on it so the nil-hook
// case costs one comparison. Callers hold structMu (either mode), which
// is what makes the record/replaying reads safe.
func (s *SAS) journaling() bool {
	return s.record != nil && s.replaying == 0
}

// journal hands one operation to the recorder hook; jmu serialises hook
// invocations from concurrent hot-path ops.
func (s *SAS) journal(r Record) {
	s.jmu.Lock()
	s.record(r)
	s.jmu.Unlock()
}

// Replay re-applies one journaled operation. During replay the journal
// hook is suppressed (no re-journaling) and export rules do not fire —
// the other nodes already saw the original operation; replay only
// rebuilds this SAS's state.
func (s *SAS) Replay(r Record) {
	s.structMu.Lock()
	s.replaying++
	s.structMu.Unlock()
	switch r.Kind {
	case RecActivate:
		s.Activate(r.Sentence, r.At)
	case RecDeactivate:
		_ = s.Deactivate(r.Sentence, r.At)
	case RecEvent:
		s.RecordEvent(r.Sentence, r.At, r.Value)
	case RecSpan:
		s.RecordSpan(r.Sentence, r.From, r.At, r.Dur)
	}
	s.structMu.Lock()
	s.replaying--
	s.structMu.Unlock()
}

// QuestionSnap is the measurement state of one question inside a State.
type QuestionSnap struct {
	ID            QuestionID
	Count         float64
	EventTime     vtime.Duration
	SatisfiedTime vtime.Duration
	Satisfied     bool
	Since         vtime.Time
}

// State is a snapshot of a SAS partition: the locally held active set
// and every question's accumulated results. It is plain data (no maps,
// no pointers) so a checkpoint store can serialise it.
type State struct {
	Node      int
	Active    []ActiveSentence
	Questions []QuestionSnap
	Stats     Stats
}

// ExportState captures the SAS's recoverable state: locally activated
// sentences (link-held entries are excluded — their links resync them)
// and per-question results, both in deterministic order.
func (s *SAS) ExportState() State {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	st := State{Node: s.node, Stats: s.statsSnapshot()}
	for i := range s.shards {
		sh := &s.shards[i]
		for j, sn := range sh.sents {
			if sh.origin[j] != nil {
				continue
			}
			st.Active = append(st.Active, ActiveSentence{Sentence: *sn, Since: sh.since[j], Depth: int(sh.depth[j])})
		}
	}
	sort.Slice(st.Active, func(i, j int) bool {
		return st.Active[i].Sentence.Key() < st.Active[j].Sentence.Key()
	})
	// qstates is indexed by QuestionID, so slice order is id order.
	for _, q := range s.qstates {
		if q == nil {
			continue
		}
		st.Questions = append(st.Questions, QuestionSnap{
			ID:            q.id,
			Count:         q.count,
			EventTime:     q.evTime,
			SatisfiedTime: q.satTime,
			Satisfied:     q.satisfied,
			Since:         q.since,
		})
	}
	return st
}

// clearShards empties the active set in place. Callers hold structMu in
// write mode (the shard locks themselves must not be copied or replaced).
func (s *SAS) clearShards() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.byH = nil
		sh.notif = 0
		sh.stored = 0
		sh.compact = 0
	}
	// Fresh slab windows drop every old row (and its sentence pointers)
	// in one move while restoring the carved-column invariant.
	s.carveShardColumns()
}

// recountQuestions re-derives every question's per-term match counts from
// the current active set, after a wholesale replacement of the entries.
// Called with structMu in write mode; gate flags are not touched (the
// caller restores them from its snapshot).
func (s *SAS) recountQuestions() {
	for _, st := range s.qstates {
		if st == nil {
			continue
		}
		for i := range st.counts {
			st.counts[i] = 0
		}
		// One batch column sweep per term per shard.
		for i := range s.shards {
			sh := &s.shards[i]
			for j := range st.all {
				st.counts[j] += sh.countMatches(&st.all[j])
			}
		}
	}
}

// RestoreState overwrites the SAS's active set and question results from
// a snapshot. Questions must already be registered (Reset re-registers
// them); snapshots of questions the SAS no longer knows are dropped.
// Watch callbacks fire with each question's restored gate state so
// externally mirrored flags resynchronise.
func (s *SAS) RestoreState(st State) {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.clearShards()
	for i := range st.Active {
		a := &st.Active[i]
		sn := nv.InternedPtr(&a.Sentence)
		s.shardOf(sn).insert(sn, a.Since, int32(a.Depth), nil)
	}
	s.recountQuestions()
	for _, qs := range st.Questions {
		q := s.qstate(qs.ID)
		if q == nil {
			continue
		}
		q.count = qs.Count
		q.evTime = qs.EventTime
		q.satTime = qs.SatisfiedTime
		q.satisfied = qs.Satisfied
		q.since = qs.Since
		if q.watch != nil {
			q.watch(q.satisfied, qs.Since)
		}
	}
	s.stats.restore(st.Stats)
}

// Reset wipes the SAS in place — the fail-stop rebirth. The active set,
// questions, results, statistics and receiver-side link sequencing state
// all vanish; export rules and the journal hook survive (they model
// wiring the supervisor re-establishes on reboot, and keeping them in
// place keeps every *SAS pointer held by links and instrumentation
// valid). Incoming ReliableLink traffic sees a fresh receiver and
// converges via its gap/resync protocol.
func (s *SAS) Reset() {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.clearShards()
	s.qstates = nil
	s.nq = 0
	s.byVerb = nil
	s.byNoun = nil
	s.wildcardQ = nil
	s.nextID = 0
	s.stats.restore(Stats{})
	s.links = nil
}

// ResetNode wipes a node's SAS in place and re-registers every question
// previously asked through AddQuestionAll, in the original order — so
// QuestionIDs handed out before the crash stay valid (they are assigned
// sequentially from zero). Questions added directly on the node SAS,
// bypassing the registry, are not remembered. Returns the node's SAS.
func (r *Registry) ResetNode(node int) *SAS {
	r.mu.Lock()
	s := r.nodes[node]
	asked := append([]Question(nil), r.asked...)
	r.mu.Unlock()
	if s == nil {
		return r.Node(node)
	}
	s.Reset()
	for _, q := range asked {
		_, _ = s.AddQuestion(q)
	}
	return s
}

// FromNode returns the exporting node of the link.
func (l *ReliableLink) FromNode() int { return l.from.node }

// ToNode returns the receiving node of the link.
func (l *ReliableLink) ToNode() int { return l.to.node }
