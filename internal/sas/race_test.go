package sas

import (
	"fmt"
	"sync"
	"testing"

	"nvmap/internal/vtime"
)

// TestConcurrentStatsReaders pins the contract behind the shard
// counters' atomics: each SAS is notified from a single goroutine (the
// session's driving goroutine), but Stats, TotalStats, Size, Index and
// ShardSizes may be read concurrently from other goroutines — an HTTP
// metrics handler, the registry's pull collectors — without torn reads.
// Run under -race this fails if any counter access is non-atomic.
func TestConcurrentStatsReaders(t *testing.T) {
	const nodes, rounds = 4, 300
	r := NewRegistry(Options{Workers: nodes})
	for n := 0; n < nodes; n++ {
		r.Node(n)
	}
	if _, err := r.AddQuestionAll(Q("busy", T("Busy", Any))); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Concurrent readers: the observability plane's view of the registry.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.TotalStats()
				for n := 0; n < nodes; n++ {
					s := r.Node(n)
					_ = s.Stats()
					_ = s.Size()
					_ = s.Index()
					_ = s.ShardSizes()
				}
			}
		}()
	}
	// One writer per SAS: the single-goroutine-per-node notification
	// discipline the session guarantees.
	var writers sync.WaitGroup
	for n := 0; n < nodes; n++ {
		writers.Add(1)
		go func(n int) {
			defer writers.Done()
			s := r.Node(n)
			for i := 0; i < rounds; i++ {
				sn := sent("Busy", fmt.Sprintf("n%d_%d", n, i%7))
				at := vtime.Time(i * 10)
				s.Activate(sn, at)
				s.RecordEvent(sn, at+1, 1)
				if err := s.Deactivate(sn, at+2); err != nil {
					t.Error(err)
				}
			}
		}(n)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := r.TotalStats()
	wantNotifs := nodes * rounds * 2 // one activate + one deactivate each
	if st.Notifications != wantNotifs {
		t.Errorf("Notifications = %d, want %d", st.Notifications, wantNotifs)
	}
	if st.Events != nodes*rounds {
		t.Errorf("Events = %d, want %d", st.Events, nodes*rounds)
	}
}
