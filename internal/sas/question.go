package sas

import (
	"fmt"
	"strings"

	"nvmap/internal/nv"
)

// Any is the wildcard that may stand for a verb or a noun in a question
// term, written "?" in the paper's Figure 6 ("{? Sum}, {Processor_P
// Send}": cost of sends by P while anything is being summed).
const Any = "?"

// Term is one component of a performance question: a sentence pattern.
// A term matches an active sentence when the verbs agree (or the term's
// verb is the wildcard) and every non-wildcard noun of the term
// participates in the sentence. Wildcard nouns impose no constraint; they
// exist so patterns read like the paper's ("{? Sum}").
type Term struct {
	Verb  nv.VerbID
	Nouns []nv.NounID
}

// T is a convenience constructor mirroring the paper's "{A Sum}" notation
// with the verb first for Go readability: T("Sum", "A").
func T(verb nv.VerbID, nouns ...nv.NounID) Term {
	return Term{Verb: verb, Nouns: nouns}
}

// Matches reports whether the term's pattern matches sentence s.
func (t Term) Matches(s nv.Sentence) bool {
	if t.Verb != Any && t.Verb != s.Verb {
		return false
	}
	for _, n := range t.Nouns {
		if n == Any {
			continue
		}
		if !s.Contains(n) {
			return false
		}
	}
	return true
}

// String renders the term in the paper's notation.
func (t Term) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for _, n := range t.Nouns {
		b.WriteString(string(n))
		b.WriteByte(' ')
	}
	if len(t.Nouns) == 0 {
		b.WriteString("? ")
	}
	b.WriteString(string(t.Verb))
	b.WriteByte('}')
	return b.String()
}

// ExprOp is the operator of one node of an extended question expression.
// Section 4.2.2 proposes extending performance questions with boolean
// disjunction and negation "incurring only the added cost of evaluating
// more complex expressions"; Expr implements that extension.
type ExprOp int

// Expression operators.
const (
	OpTerm ExprOp = iota // leaf: a sentence pattern
	OpAnd
	OpOr
	OpNot
)

// Expr is a boolean expression over sentence patterns.
type Expr struct {
	Op   ExprOp
	Term Term    // valid when Op == OpTerm
	Kids []*Expr // valid for OpAnd (>=1), OpOr (>=1), OpNot (exactly 1)
}

// Leaf returns a pattern leaf.
func Leaf(t Term) *Expr { return &Expr{Op: OpTerm, Term: t} }

// And returns the conjunction of kids.
func And(kids ...*Expr) *Expr { return &Expr{Op: OpAnd, Kids: kids} }

// Or returns the disjunction of kids.
func Or(kids ...*Expr) *Expr { return &Expr{Op: OpOr, Kids: kids} }

// Not negates its child.
func Not(kid *Expr) *Expr { return &Expr{Op: OpNot, Kids: []*Expr{kid}} }

// validate checks arity.
func (e *Expr) validate() error {
	switch e.Op {
	case OpTerm:
		if len(e.Kids) != 0 {
			return fmt.Errorf("sas: term leaf must have no children")
		}
	case OpAnd, OpOr:
		if len(e.Kids) == 0 {
			return fmt.Errorf("sas: AND/OR needs at least one child")
		}
	case OpNot:
		if len(e.Kids) != 1 {
			return fmt.Errorf("sas: NOT needs exactly one child")
		}
	default:
		return fmt.Errorf("sas: unknown expression op %d", int(e.Op))
	}
	for _, k := range e.Kids {
		if err := k.validate(); err != nil {
			return err
		}
	}
	return nil
}

// terms appends every pattern leaf of the expression to out.
func (e *Expr) terms(out []Term) []Term {
	if e.Op == OpTerm {
		return append(out, e.Term)
	}
	for _, k := range e.Kids {
		out = k.terms(out)
	}
	return out
}

// String renders the expression with explicit parentheses.
func (e *Expr) String() string {
	switch e.Op {
	case OpTerm:
		return e.Term.String()
	case OpNot:
		return "!" + e.Kids[0].String()
	case OpAnd, OpOr:
		sep := " & "
		if e.Op == OpOr {
			sep = " | "
		}
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	default:
		return fmt.Sprintf("Expr(%d)", int(e.Op))
	}
}

// Question is a performance question: a vector of sentence patterns
// (Figure 6). The meaning is that performance measurements should be made
// only when all of the question's patterns are satisfied by concurrently
// active sentences.
//
// Two extensions from the paper's discussion are supported:
//
//   - Expr replaces the conjunction with an arbitrary boolean expression
//     (Section 4.2.2's disjunction/negation extension). When Expr is
//     non-nil, Terms must be empty.
//
//   - Ordered addresses limitation 3 of Section 4.2.4 ("sentences are not
//     ordered in performance questions"): when set, the final term is the
//     *measured* pattern and earlier terms must refer to sentences that
//     became active no later than each subsequent one, distinguishing
//     "messages sent during summation of A" from "summations of A during
//     message sends".
type Question struct {
	Label   string
	Terms   []Term
	Expr    *Expr
	Ordered bool
}

// Q builds an unordered conjunction question.
func Q(label string, terms ...Term) Question {
	return Question{Label: label, Terms: terms}
}

// validate checks structural invariants.
func (q Question) validate() error {
	if q.Expr != nil {
		if len(q.Terms) != 0 {
			return fmt.Errorf("sas: question %q has both Terms and Expr", q.Label)
		}
		if q.Ordered {
			return fmt.Errorf("sas: question %q: ordered evaluation requires a term vector, not an expression", q.Label)
		}
		return q.Expr.validate()
	}
	if len(q.Terms) == 0 {
		return fmt.Errorf("sas: question %q has no terms", q.Label)
	}
	return nil
}

// allTerms returns every pattern the question mentions (for indexing and
// relevance filtering).
func (q Question) allTerms() []Term {
	if q.Expr != nil {
		return q.Expr.terms(nil)
	}
	return q.Terms
}

// trigger returns the pattern that identifies the measured sentence: the
// last term for ordered questions, nil (meaning "any term") otherwise.
func (q Question) trigger() *Term {
	if q.Ordered && len(q.Terms) > 0 {
		return &q.Terms[len(q.Terms)-1]
	}
	return nil
}

// String renders the question as the paper prints them: "{A Sum},
// {Processor_P Send}".
func (q Question) String() string {
	if q.Expr != nil {
		return q.Expr.String()
	}
	parts := make([]string, len(q.Terms))
	for i, t := range q.Terms {
		parts[i] = t.String()
	}
	s := strings.Join(parts, ", ")
	if q.Ordered {
		s += " [ordered]"
	}
	return s
}
