package sas

import (
	"fmt"
	"sort"
	"sync"

	"nvmap/internal/fault"
	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file adds loss tolerance to the cross-node export path of
// Section 4.2.3. The paper assumes the forwarding of sentences between
// SASes is reliable; on a real machine the channel may drop, duplicate
// or reorder events, and a lost deactivation would leave a remote
// sentence active forever — every later question evaluation on the
// receiving node would then be wrong (the Figure 7 flavour of error:
// the SAS's view of "what is happening now" diverges from reality).
//
// A ReliableLink restores convergence with three mechanisms:
//
//   - per-sender sequence numbers stamped on every exported event, so
//     the receiver can detect duplicates and gaps;
//   - an unacked buffer on the sender with retransmission (Flush models
//     the retransmit timer in virtual time);
//   - snapshot resync: when retransmission is not enough (or a gap grows
//     past a threshold), the receiver discards its view of the link and
//     reconstructs it from the sender's current matching active set.
//
// Acknowledgements travel over the in-process control plane and are
// assumed reliable; only the exported data events traverse the lossy
// transport. This mirrors the paper's single-channel architecture in
// which control traffic is far sparser than data traffic.

// gapResyncThreshold is how many out-of-order events a receiver buffers
// on one link before concluding retransmission has failed and pulling a
// snapshot instead.
const gapResyncThreshold = 4

// maxFlushAttempts bounds the retransmit rounds of Flush before it
// falls back to a snapshot resync.
const maxFlushAttempts = 8

// LinkStats counts reliability-protocol traffic on one link.
type LinkStats struct {
	// Sent counts first transmissions of exported events.
	Sent int
	// Acked is the highest cumulatively acknowledged sequence number.
	Acked uint64
	// Retransmits counts events re-sent by Flush/Retransmit.
	Retransmits int
	// Resyncs counts snapshot reconciliations.
	Resyncs int
	// DuplicatesDropped counts events the receiver discarded as already
	// applied.
	DuplicatesDropped int
	// Gaps counts events that arrived ahead of a missing predecessor.
	Gaps int
}

// ReliableLink is a sequencing Transport wrapper for one export rule.
// It stamps events with per-sender sequence numbers, keeps them until
// acknowledged, and can retransmit or snapshot-resync. Create one with
// ExportReliable.
type ReliableLink struct {
	from    *SAS
	to      *SAS
	pattern Term
	inner   Transport
	// autoResync lets the receiver trigger a snapshot resync when a gap
	// grows past gapResyncThreshold.
	autoResync bool

	mu      sync.Mutex
	nextSeq uint64
	unacked []Event
	stats   LinkStats
}

// ExportReliable arranges for activation changes matching pattern to be
// forwarded to the SAS `to` over a ReliableLink wrapping the inner
// transport (SyncTransport if nil — useful for tests that interpose a
// LossyTransport). With resync enabled the receiver may pull a snapshot
// from this SAS when it detects a persistent gap.
func (s *SAS) ExportReliable(pattern Term, to *SAS, inner Transport, resync bool) (*ReliableLink, error) {
	if to == nil {
		return nil, fmt.Errorf("sas: export needs a destination SAS")
	}
	if to == s {
		return nil, fmt.Errorf("sas: cannot export to self")
	}
	if inner == nil {
		inner = SyncTransport{}
	}
	l := &ReliableLink{from: s, to: to, pattern: pattern, inner: inner, autoResync: resync}
	s.structMu.Lock()
	s.exports = append(s.exports, exportRule{pattern: pattern, to: to, transport: l})
	s.structMu.Unlock()
	return l, nil
}

// Send implements Transport: stamp, buffer, forward. The sequence
// number is assigned under the link lock, which is released before the
// inner transport runs — the inner transport may call into the
// destination SAS, which may ack back into this link.
func (l *ReliableLink) Send(ev Event, to *SAS) {
	l.mu.Lock()
	l.nextSeq++
	ev.Seq = l.nextSeq
	ev.via = l
	l.unacked = append(l.unacked, ev)
	l.stats.Sent++
	l.mu.Unlock()
	l.inner.Send(ev, to)
}

// ack records a cumulative acknowledgement: every event with sequence
// number <= seq has been applied by the receiver.
func (l *ReliableLink) ack(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.stats.Acked {
		l.stats.Acked = seq
	}
	i := 0
	for i < len(l.unacked) && l.unacked[i].Seq <= seq {
		i++
	}
	l.unacked = l.unacked[i:]
}

func (l *ReliableLink) noteDuplicate() {
	l.mu.Lock()
	l.stats.DuplicatesDropped++
	l.mu.Unlock()
}

func (l *ReliableLink) noteGap() {
	l.mu.Lock()
	l.stats.Gaps++
	l.mu.Unlock()
}

// Unacked returns how many exported events await acknowledgement.
func (l *ReliableLink) Unacked() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.unacked)
}

// Stats returns a copy of the link's protocol counters.
func (l *ReliableLink) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Retransmit re-sends every unacknowledged event, in order, through the
// inner transport. One round; the transport may lose them again.
func (l *ReliableLink) Retransmit() {
	l.mu.Lock()
	batch := append([]Event(nil), l.unacked...)
	l.stats.Retransmits += len(batch)
	l.mu.Unlock()
	for _, ev := range batch {
		l.inner.Send(ev, l.to)
	}
	if f, ok := l.inner.(flusher); ok {
		f.Flush()
	}
}

// Flush models the sender's retransmit timer firing in virtual time: it
// retransmits until the unacked buffer drains, and if maxFlushAttempts
// rounds are not enough (pathological loss) it falls back to a snapshot
// resync so the receiver converges regardless.
func (l *ReliableLink) Flush(at vtime.Time) {
	for attempt := 0; attempt < maxFlushAttempts; attempt++ {
		l.mu.Lock()
		n := len(l.unacked)
		l.mu.Unlock()
		if n == 0 {
			return
		}
		l.Retransmit()
	}
	l.mu.Lock()
	n := len(l.unacked)
	l.mu.Unlock()
	if n != 0 {
		l.Resync(at)
	}
}

// Resync reconstructs the receiver's view of this link from the
// sender's current active set: the receiver drops every entry it holds
// on behalf of this link that the sender no longer has active, adopts
// the ones it is missing, and fast-forwards its expected sequence
// number past everything sent so far. Stale retransmissions arriving
// afterwards are discarded as duplicates.
func (l *ReliableLink) Resync(at vtime.Time) {
	snap := l.from.SnapshotMatching(l.pattern)
	l.mu.Lock()
	l.stats.Resyncs++
	l.unacked = nil
	seq := l.nextSeq
	l.mu.Unlock()
	l.to.resyncFromLink(l, seq, snap, at)
}

// flusher is implemented by transports that buffer events (the
// reordering LossyTransport); Flush releases anything held.
type flusher interface{ Flush() }

// LossyTransport perturbs exported events per an injected fault plan:
// drop, duplicate, or one-slot adjacent reorder. A nil injector makes
// it a transparent passthrough. Inner defaults to SyncTransport.
type LossyTransport struct {
	Inner Transport
	Inj   *fault.Injector

	mu   sync.Mutex
	held *heldEvent
}

type heldEvent struct {
	ev Event
	to *SAS
}

func (t *LossyTransport) inner() Transport {
	if t.Inner == nil {
		return SyncTransport{}
	}
	return t.Inner
}

// Send applies the injector's verdict for this event. Reordered events
// are held in a one-slot buffer and delivered just after the next event
// (an adjacent swap); Flush releases a held event at a quiet point.
func (t *LossyTransport) Send(ev Event, to *SAS) {
	out := t.Inj.SAS()
	if out.Drop {
		return
	}
	t.mu.Lock()
	if h := t.held; h != nil {
		t.held = nil
		t.mu.Unlock()
		t.deliver(ev, to, out.Duplicate)
		t.deliver(h.ev, h.to, false)
		return
	}
	if out.Reorder {
		t.held = &heldEvent{ev: ev, to: to}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.deliver(ev, to, out.Duplicate)
}

func (t *LossyTransport) deliver(ev Event, to *SAS, dup bool) {
	t.inner().Send(ev, to)
	if dup {
		t.inner().Send(ev, to)
	}
}

// Flush delivers a held (reordered) event, if any.
func (t *LossyTransport) Flush() {
	t.mu.Lock()
	h := t.held
	t.held = nil
	t.mu.Unlock()
	if h != nil {
		t.inner().Send(h.ev, h.to)
	}
}

// linkState is the receiver side of one ReliableLink: the next expected
// sequence number and a buffer of events that arrived ahead of a gap.
type linkState struct {
	expect  uint64
	pending map[uint64]Event
}

// linkStateLocked returns (creating on first use) the receiver-side state
// for a link. Called with structMu in write mode.
func (s *SAS) linkStateLocked(l *ReliableLink) *linkState {
	if s.links == nil {
		s.links = make(map[*ReliableLink]*linkState)
	}
	ls, ok := s.links[l]
	if !ok {
		ls = &linkState{expect: 1, pending: make(map[uint64]Event)}
		s.links[l] = ls
	}
	return ls
}

// applyReliable is the receiver's half of the protocol: discard
// duplicates, apply in-order events (plus any buffered successors they
// unblock), buffer out-of-order events, and acknowledge cumulatively.
// A gap past gapResyncThreshold triggers a snapshot resync when the
// link allows it.
func (s *SAS) applyReliable(ev Event) {
	l := ev.via
	s.structMu.Lock()
	ls := s.linkStateLocked(l)
	switch {
	case ev.Seq < ls.expect:
		s.structMu.Unlock()
		l.noteDuplicate()
		return
	case ev.Seq > ls.expect:
		_, have := ls.pending[ev.Seq]
		ls.pending[ev.Seq] = ev
		overflow := s.links != nil && l.autoResync && len(ls.pending) >= gapResyncThreshold
		s.structMu.Unlock()
		if have {
			l.noteDuplicate()
		} else {
			l.noteGap()
		}
		if overflow {
			l.Resync(ev.At)
		}
		return
	}
	var apply []Event
	apply = append(apply, ev)
	ls.expect++
	for {
		nxt, ok := ls.pending[ls.expect]
		if !ok {
			break
		}
		delete(ls.pending, ls.expect)
		apply = append(apply, nxt)
		ls.expect++
	}
	ackTo := ls.expect - 1
	s.structMu.Unlock()
	for _, e := range apply {
		s.applyReliableEvent(l, e)
	}
	l.ack(ackTo)
}

// applyReliableEvent applies one in-order exported event idempotently.
// Unlike local Activate, a repeated remote activation does not deepen
// the entry (remote sentences have no nesting: the sender's SAS already
// collapsed nesting to a single exported activation), and a remote
// deactivation only removes an entry this link created — replays after
// a resync are therefore harmless.
func (s *SAS) applyReliableEvent(l *ReliableLink, ev Event) {
	sn := nv.InternedPtr(&ev.Sentence)
	s.structMu.Lock()
	var pending []pendingSend
	sh := s.shardOf(sn)
	i := sh.find(nv.HandleOf(sn))
	switch {
	case ev.Active && i < 0:
		s.stats.notifStored.Add(notifInc | 1)
		sh.insert(sn, ev.At, 1, l)
		s.notifyQuestions(sn, ev.At, +1)
		pending = s.collectExports(sn, ev.At, true)
	case !ev.Active && i >= 0 && sh.origin[i] == l:
		s.stats.notifStored.Add(notifInc | 1)
		sh.removeAt(i)
		s.notifyQuestions(sn, ev.At, -1)
		pending = s.collectExports(sn, ev.At, false)
	default:
		// Idempotent no-op: re-activation of a live entry, or
		// deactivation of an entry we do not hold for this link.
		s.stats.notifStored.Add(notifInc)
		s.stats.ignored.Add(1)
	}
	s.structMu.Unlock()
	dispatch(pending)
}

// resyncFromLink reconciles this SAS's entries for link l against the
// sender's snapshot and fast-forwards the expected sequence number to
// lastSeq+1. Entries are applied in sorted key order so a resync is
// deterministic.
func (s *SAS) resyncFromLink(l *ReliableLink, lastSeq uint64, snap []ActiveSentence, at vtime.Time) {
	s.structMu.Lock()
	ls := s.linkStateLocked(l)
	ls.expect = lastSeq + 1
	ls.pending = make(map[uint64]Event)

	want := make(map[string]ActiveSentence, len(snap))
	for _, a := range snap {
		want[a.Sentence.Key()] = a
	}
	var drop []*nv.Sentence
	for i := range s.shards {
		sh := &s.shards[i]
		for j, sn := range sh.sents {
			if sh.origin[j] == l {
				if _, ok := want[sn.Key()]; !ok {
					drop = append(drop, sn)
				}
			}
		}
	}
	var adopt []string
	for key, a := range want {
		p := nv.InternedPtr(&a.Sentence)
		if s.shardOf(p).find(nv.HandleOf(p)) < 0 {
			adopt = append(adopt, key)
		}
	}
	sort.Slice(drop, func(i, j int) bool { return drop[i].Key() < drop[j].Key() })
	sort.Strings(adopt)

	var pending []pendingSend
	for _, sn := range drop {
		s.stats.notifStored.Add(1)
		// Re-find by handle: earlier drops may have swap-moved the row.
		sh := s.shardOf(sn)
		sh.removeAt(sh.find(nv.HandleOf(sn)))
		s.notifyQuestions(sn, at, -1)
		pending = append(pending, s.collectExports(sn, at, false)...)
	}
	for _, key := range adopt {
		a := want[key]
		sn := nv.InternedPtr(&a.Sentence)
		s.stats.notifStored.Add(1)
		s.shardOf(sn).insert(sn, a.Since, 1, l)
		s.notifyQuestions(sn, at, +1)
		pending = append(pending, s.collectExports(sn, at, true)...)
	}
	s.structMu.Unlock()
	dispatch(pending)
}

// SnapshotMatching returns the active sentences matching pattern,
// sorted like Snapshot. This is the sender's contribution to a
// snapshot resync.
func (s *SAS) SnapshotMatching(pattern Term) []ActiveSentence {
	s.structMu.Lock()
	var out []ActiveSentence
	for i := range s.shards {
		sh := &s.shards[i]
		for j, sn := range sh.sents {
			if pattern.Matches(*sn) {
				out = append(out, ActiveSentence{Sentence: *sn, Since: sh.since[j], Depth: int(sh.depth[j])})
			}
		}
	}
	s.structMu.Unlock()
	sortSnapshot(out)
	return out
}
