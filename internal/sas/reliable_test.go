package sas

import (
	"testing"

	"nvmap/internal/fault"
	"nvmap/internal/vtime"
)

// playQueries drives the Section 4.2.3 client/server scenario: the
// client runs a series of queries, the server performs disk reads while
// each is active, and two server-side questions count reads for query7
// and for any query. flush, when non-nil, is called after every client
// activation change — it models the sender's retransmit timer firing
// before the server's next dependent measurement.
func playQueries(t *testing.T, client, server *SAS, flush func(vtime.Time)) (q7, anyQ float64) {
	t.Helper()
	if flush == nil {
		flush = func(vtime.Time) {}
	}
	id7, err := server.AddQuestion(Q("reads for query7", T("QueryActive", "query7"), T("DiskRead", Any)))
	if err != nil {
		t.Fatal(err)
	}
	idAny, err := server.AddQuestion(Q("reads for any query", T("QueryActive", Any), T("DiskRead", Any)))
	if err != nil {
		t.Fatal(err)
	}
	now := vtime.Time(0)
	tick := func() vtime.Time { now += 10; return now }
	for _, qr := range []struct {
		name  string
		reads int
	}{
		{"query7", 5},
		{"query3", 3},
		{"query9", 2},
		{"query7", 4},
	} {
		client.Activate(sent("QueryActive", qr.name), tick())
		flush(now)
		for i := 0; i < qr.reads; i++ {
			server.RecordEvent(sent("DiskRead", "disk0"), tick(), 1)
		}
		if err := client.Deactivate(sent("QueryActive", qr.name), tick()); err != nil {
			t.Fatal(err)
		}
		flush(now)
		// A read between queries must not be charged.
		server.RecordEvent(sent("DiskRead", "disk0"), tick(), 1)
	}
	r7, err := server.Result(id7, now)
	if err != nil {
		t.Fatal(err)
	}
	rAny, err := server.Result(idAny, now)
	if err != nil {
		t.Fatal(err)
	}
	return r7.Count, rAny.Count
}

// The lossless answers the scenario must always converge to.
const (
	wantQ7  = 5 + 4
	wantAny = 5 + 3 + 2 + 4
)

// A ReliableLink over a perfect transport behaves exactly like a plain
// export, and every event ends up acknowledged.
func TestReliableLinkLossless(t *testing.T) {
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	link, err := client.ExportReliable(T("QueryActive", Any), server, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	q7, anyQ := playQueries(t, client, server, nil)
	if q7 != wantQ7 || anyQ != wantAny {
		t.Fatalf("counts = %g, %g; want %d, %d", q7, anyQ, wantQ7, wantAny)
	}
	st := link.Stats()
	if st.Sent != 8 || st.Acked != 8 || link.Unacked() != 0 {
		t.Fatalf("link stats %+v, unacked %d", st, link.Unacked())
	}
	if st.Retransmits != 0 || st.Resyncs != 0 || st.Gaps != 0 || st.DuplicatesDropped != 0 {
		t.Fatalf("recovery machinery engaged on a perfect link: %+v", st)
	}
}

// The acceptance property of the whole protocol: under heavy loss,
// duplication and reordering, a reliable link whose retransmit timer
// fires between operations converges to exactly the lossless answers.
func TestLossyConvergesToLossless(t *testing.T) {
	// Lossless baseline over a plain export.
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	if err := client.Export(T("QueryActive", Any), server, nil); err != nil {
		t.Fatal(err)
	}
	baseQ7, baseAny := playQueries(t, client, server, nil)
	if baseQ7 != wantQ7 || baseAny != wantAny {
		t.Fatalf("baseline counts = %g, %g", baseQ7, baseAny)
	}

	inj := fault.NewInjector(&fault.Plan{Seed: 1234, SAS: fault.SASFaults{
		DropProb: 0.4, DupProb: 0.2, ReorderProb: 0.2, Resync: true,
	}})
	r2 := NewRegistry(Options{})
	client2, server2 := r2.Node(0), r2.Node(1)
	lossy := &LossyTransport{Inj: inj}
	link, err := client2.ExportReliable(T("QueryActive", Any), server2, lossy, true)
	if err != nil {
		t.Fatal(err)
	}
	q7, anyQ := playQueries(t, client2, server2, link.Flush)
	if q7 != baseQ7 || anyQ != baseAny {
		t.Fatalf("lossy counts = %g, %g; lossless baseline %g, %g (link %+v, report %+v)",
			q7, anyQ, baseQ7, baseAny, link.Stats(), inj.Report())
	}
	rep := inj.Report()
	if rep.SASDropped == 0 {
		t.Fatalf("loss never happened — test proves nothing: %+v", rep)
	}
	if link.Stats().Retransmits == 0 {
		t.Fatalf("no retransmissions under 40%% loss: %+v", link.Stats())
	}
}

// Duplicated events are detected by sequence number and discarded.
func TestDuplicateSuppression(t *testing.T) {
	inj := fault.NewInjector(&fault.Plan{Seed: 5, SAS: fault.SASFaults{DupProb: 1}})
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	link, err := client.ExportReliable(T("QueryActive", Any), server, &LossyTransport{Inj: inj}, false)
	if err != nil {
		t.Fatal(err)
	}
	q7, anyQ := playQueries(t, client, server, nil)
	if q7 != wantQ7 || anyQ != wantAny {
		t.Fatalf("counts = %g, %g under duplication", q7, anyQ)
	}
	if st := link.Stats(); st.DuplicatesDropped != st.Sent {
		t.Fatalf("every event was duplicated once, want %d dups dropped: %+v", st.Sent, st)
	}
}

// An adjacent swap (deactivate overtakes the next activate, or
// vice versa) is buffered by sequence number and applied in order, so
// the server never acts on a stale view.
func TestReorderBuffered(t *testing.T) {
	inj := fault.NewInjector(&fault.Plan{Seed: 3, SAS: fault.SASFaults{ReorderProb: 1}})
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	lossy := &LossyTransport{Inj: inj}
	link, err := client.ExportReliable(T("QueryActive", Any), server, lossy, false)
	if err != nil {
		t.Fatal(err)
	}
	// With ReorderProb=1 the first event is held; the second is
	// delivered first, then the held one — an adjacent swap on the wire.
	client.Activate(sent("QueryActive", "query7"), 10)
	if err := client.Deactivate(sent("QueryActive", "query7"), 20); err != nil {
		t.Fatal(err)
	}
	lossy.Flush()
	if server.Active(sent("QueryActive", "query7")) {
		t.Fatal("server left with a stale activation after reorder")
	}
	if st := link.Stats(); st.Gaps == 0 {
		t.Fatalf("reorder produced no gap detection: %+v", st)
	}
	if link.Unacked() != 0 {
		t.Fatalf("unacked %d after in-order apply", link.Unacked())
	}
}

// dropGate is a test transport with a switchable black hole.
type dropGate struct {
	drop bool
}

func (g *dropGate) Send(ev Event, to *SAS) {
	if !g.drop {
		to.ApplyRemote(ev)
	}
}

// When a gap grows past the threshold the receiver gives up on
// retransmission and pulls a snapshot of the sender's matching active
// set; the views converge and stale retransmits are ignored.
func TestGapTriggersResync(t *testing.T) {
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	gate := &dropGate{}
	link, err := client.ExportReliable(T("QueryActive", Any), server, gate, true)
	if err != nil {
		t.Fatal(err)
	}
	// Lose an activate/deactivate pair plus two more activates: four
	// events the server never sees.
	gate.drop = true
	client.Activate(sent("QueryActive", "query1"), 10)
	_ = client.Deactivate(sent("QueryActive", "query1"), 20)
	client.Activate(sent("QueryActive", "query2"), 30)
	client.Activate(sent("QueryActive", "query3"), 40)
	gate.drop = false
	// Four more arrive out of order (seq 5..8 with 1..4 missing): the
	// pending buffer hits the threshold and triggers a snapshot resync.
	client.Activate(sent("QueryActive", "query4"), 50)
	client.Activate(sent("QueryActive", "query5"), 60)
	_ = client.Deactivate(sent("QueryActive", "query5"), 70)
	client.Activate(sent("QueryActive", "query6"), 80)

	st := link.Stats()
	if st.Resyncs == 0 {
		t.Fatalf("gap never triggered a resync: %+v", st)
	}
	for _, want := range []struct {
		q      string
		active bool
	}{
		{"query1", false}, {"query2", true}, {"query3", true},
		{"query4", true}, {"query5", false}, {"query6", true},
	} {
		if got := server.Active(sent("QueryActive", want.q)); got != want.active {
			t.Fatalf("after resync %s active=%v, want %v (link %+v)", want.q, got, want.active, st)
		}
	}
	// Traffic after the resync flows normally again.
	_ = client.Deactivate(sent("QueryActive", "query6"), 90)
	if server.Active(sent("QueryActive", "query6")) {
		t.Fatal("post-resync deactivation lost")
	}
}

// If retransmission cannot drain the unacked buffer (a dead wire),
// Flush falls back to a snapshot resync so the receiver still
// converges.
func TestFlushFallsBackToResync(t *testing.T) {
	r := NewRegistry(Options{})
	client, server := r.Node(0), r.Node(1)
	gate := &dropGate{drop: true}
	link, err := client.ExportReliable(T("QueryActive", Any), server, gate, true)
	if err != nil {
		t.Fatal(err)
	}
	client.Activate(sent("QueryActive", "query7"), 10)
	if link.Unacked() != 1 {
		t.Fatalf("unacked = %d", link.Unacked())
	}
	link.Flush(20)
	if st := link.Stats(); st.Resyncs != 1 {
		t.Fatalf("flush on a dead wire did not resync: %+v", st)
	}
	if !server.Active(sent("QueryActive", "query7")) {
		t.Fatal("snapshot resync did not deliver the activation")
	}
	if link.Unacked() != 0 {
		t.Fatalf("unacked = %d after resync", link.Unacked())
	}
}

// A resync must only touch entries owned by its own link: local
// sentences and entries from other links survive.
func TestResyncScopedToLink(t *testing.T) {
	r := NewRegistry(Options{})
	a, b, server := r.Node(0), r.Node(1), r.Node(2)
	gateA := &dropGate{}
	linkA, err := a.ExportReliable(T("QueryActive", Any), server, gateA, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExportReliable(T("QueryActive", Any), server, nil, true); err != nil {
		t.Fatal(err)
	}
	// Server's own local sentence and one from link B.
	server.Activate(sent("ServerBusy", "s"), 5)
	b.Activate(sent("QueryActive", "fromB"), 6)
	// Link A loses an activation, then resyncs.
	gateA.drop = true
	a.Activate(sent("QueryActive", "fromA"), 10)
	gateA.drop = false
	linkA.Resync(20)
	for _, q := range []string{"fromA", "fromB"} {
		if !server.Active(sent("QueryActive", q)) {
			t.Fatalf("%s lost", q)
		}
	}
	if !server.Active(sent("ServerBusy", "s")) {
		t.Fatal("local sentence lost to a link resync")
	}
	// A deactivates; the next resync must remove only fromA.
	gateA.drop = true
	_ = a.Deactivate(sent("QueryActive", "fromA"), 30)
	gateA.drop = false
	linkA.Resync(40)
	if server.Active(sent("QueryActive", "fromA")) {
		t.Fatal("stale fromA survived resync")
	}
	if !server.Active(sent("QueryActive", "fromB")) || !server.Active(sent("ServerBusy", "s")) {
		t.Fatal("resync of link A touched foreign entries")
	}
}
