package sas

import "testing"

// FuzzParseQuestion exercises the performance-question parser (the
// paper's "{A Sums}, {Processor_1 Sends}" notation) with arbitrary
// text. Bad input must come back as an error, never a panic, and
// accepted questions must be well-formed.
func FuzzParseQuestion(f *testing.F) {
	seeds := []string{
		"{A Sums}, {Processor_1 Sends}",
		"{? Sums}, {Processor_1 Sends} [ordered]",
		"{A Sums}",
		"{A P Send}, {B Q Recv}, {C R Ack}",
		"{QueryActive query7}, {DiskRead ?}",
		"",
		"{}",
		"{A Sums",
		"A Sums}",
		"{A Sums},",
		"{A Sums} {B Recvs}",
		"[ordered]",
		"{A Sums}, [ordered]",
		"{\x00 \xff}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := ParseQuestion("fuzz", text)
		if err != nil {
			return
		}
		if len(q.Terms) == 0 {
			t.Fatalf("accepted question %q has no terms", text)
		}
		for _, term := range q.Terms {
			if term.Verb == "" {
				t.Fatalf("accepted question %q has a term with no verb", text)
			}
		}
	})
}
