package sas

import (
	"testing"
	"testing/quick"

	"nvmap/internal/nv"
)

func TestParseTerm(t *testing.T) {
	term, err := ParseTerm("{A Sums}")
	if err != nil {
		t.Fatal(err)
	}
	if term.Verb != "Sums" || len(term.Nouns) != 1 || term.Nouns[0] != "A" {
		t.Fatalf("term = %+v", term)
	}
	wild, err := ParseTerm("{? Sums}")
	if err != nil {
		t.Fatal(err)
	}
	if wild.Nouns[0] != Any {
		t.Fatalf("wildcard noun = %+v", wild)
	}
	multi, err := ParseTerm("{A P Send}")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Nouns) != 2 || multi.Verb != "Send" {
		t.Fatalf("multi = %+v", multi)
	}
	bare, err := ParseTerm("{Idle}")
	if err != nil {
		t.Fatal(err)
	}
	if bare.Verb != "Idle" || len(bare.Nouns) != 0 {
		t.Fatalf("bare = %+v", bare)
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, bad := range []string{"", "A Sums", "{}", "{ }", "{A Sums", "A Sums}"} {
		if _, err := ParseTerm(bad); err == nil {
			t.Errorf("ParseTerm(%q) accepted", bad)
		}
	}
}

func TestParseQuestion(t *testing.T) {
	q, err := ParseQuestion("", "{A Sums}, {Processor_1 Sends}")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 || q.Ordered {
		t.Fatalf("q = %+v", q)
	}
	if q.Label != "{A Sums}, {Processor_1 Sends}" {
		t.Fatalf("label = %q", q.Label)
	}

	oq, err := ParseQuestion("lbl", "{A Sums}, {? Sends} [ordered]")
	if err != nil {
		t.Fatal(err)
	}
	if !oq.Ordered || oq.Label != "lbl" {
		t.Fatalf("oq = %+v", oq)
	}
}

func TestParseQuestionErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "{A Sums}, junk", "nope", "{A Sums} {B Sums}"} {
		if _, err := ParseQuestion("", bad); err == nil {
			t.Errorf("ParseQuestion(%q) accepted", bad)
		}
	}
}

// Property: a question's String() renders back to an equivalent question
// through ParseQuestion (for plain conjunctions).
func TestParseQuestionRoundTripProperty(t *testing.T) {
	names := []string{"A", "B", "Processor_1", "?"}
	verbs := []string{"Sums", "Sends", "Executes"}
	f := func(n1, n2, v1, v2, ord uint8) bool {
		q := Question{
			Label: "p",
			Terms: []Term{
				T(nvVerb(verbs[v1%3]), nvNoun(names[n1%4])),
				T(nvVerb(verbs[v2%3]), nvNoun(names[n2%4])),
			},
			Ordered: ord%2 == 0,
		}
		back, err := ParseQuestion("p", q.String())
		if err != nil {
			return false
		}
		if back.Ordered != q.Ordered || len(back.Terms) != len(q.Terms) {
			return false
		}
		for i := range q.Terms {
			if back.Terms[i].Verb != q.Terms[i].Verb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParsedQuestionWorks(t *testing.T) {
	s := New(Options{})
	q, err := ParseQuestion("", "{A Sums}, {? Sends}")
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AddQuestion(q)
	if err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Sums", "A"), 10)
	if hits := s.RecordEvent(sent("Sends", "P"), 20, 1); hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
	res, _ := s.Result(id, 30)
	if res.Count != 1 {
		t.Fatalf("Count = %g", res.Count)
	}
}

func nvVerb(s string) nv.VerbID { return nv.VerbID(s) }
func nvNoun(s string) nv.NounID { return nv.NounID(s) }

// Arbitrary question text must error, never panic.
func TestParseQuestionNeverPanicsProperty(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = ParseQuestion("x", junk)
		_, _ = ParseTerm(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
