package sas

import (
	"strings"
	"sync"
	"testing"

	"nvmap/internal/vtime"
)

// TestAggregateResultEmptyRegistry: aggregating over no nodes (or an id
// map covering none of them) is a zero result, not an error.
func TestAggregateResultEmptyRegistry(t *testing.T) {
	r := NewRegistry(Options{})
	agg, err := r.AggregateResult(map[int]QuestionID{0: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 0 || agg.EventTime != 0 || agg.SatisfiedTime != 0 || agg.Satisfied {
		t.Fatalf("empty aggregate = %+v", agg)
	}
	if st := r.TotalStats(); st != (Stats{}) {
		t.Fatalf("empty TotalStats = %+v", st)
	}
}

// TestAggregateResultSkipsUncoveredNodes: nodes absent from the id map
// simply do not contribute (the question was registered before those
// nodes materialised).
func TestAggregateResultSkipsUncoveredNodes(t *testing.T) {
	r := NewRegistry(Options{Workers: 4})
	// 12 nodes clears registryFanOut, so this exercises the pool path.
	for n := 0; n < 12; n++ {
		r.Node(n)
	}
	ids, err := r.AddQuestionAll(Q("q", T("Busy", Any)))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 12; n++ {
		s := r.Node(n)
		s.Activate(sent("Busy", "x"), 0)
		if err := s.Deactivate(sent("Busy", "x"), 10); err != nil {
			t.Fatal(err)
		}
	}
	// Drop half the nodes from the map: only the covered half counts.
	for n := 0; n < 12; n += 2 {
		delete(ids, n)
	}
	agg, err := r.AggregateResult(ids, 100)
	if err != nil {
		t.Fatal(err)
	}
	if agg.SatisfiedTime != 6*10 {
		t.Fatalf("SatisfiedTime = %v, want 60", agg.SatisfiedTime)
	}
}

// TestAggregateResultReportsFirstErrorInNodeOrder: when several nodes
// fail, the reported error is the lowest node's, under any worker
// count — part of the determinism contract.
func TestAggregateResultReportsFirstErrorInNodeOrder(t *testing.T) {
	r := NewRegistry(Options{Workers: 8})
	for n := 0; n < 12; n++ {
		r.Node(n)
	}
	ids, err := r.AddQuestionAll(Q("q", T("Busy", Any)))
	if err != nil {
		t.Fatal(err)
	}
	ids[3] = 97 // bogus: distinct values so the error identifies the node
	ids[7] = 98
	for i := 0; i < 50; i++ { // many rounds: any ordering race would show
		_, err := r.AggregateResult(ids, 100)
		if err == nil {
			t.Fatal("bogus question ids aggregated without error")
		}
		if !strings.Contains(err.Error(), "97") {
			t.Fatalf("error %q is not node 3's (want unknown question 97)", err)
		}
	}
}

// TestApplyRemoteAllBroadcasts: the broadcast form reaches every SAS
// except the exporter's own.
func TestApplyRemoteAllBroadcasts(t *testing.T) {
	r := NewRegistry(Options{Workers: 4})
	for n := 0; n < 12; n++ {
		r.Node(n)
	}
	sn := sent("QueryActive", "q7")
	r.ApplyRemoteAll(Event{Sentence: sn, Active: true, At: 5, FromNode: 2})
	for n := 0; n < 12; n++ {
		active := r.Node(n).Active(sn)
		if n == 2 && active {
			t.Fatal("event echoed back to the exporting node")
		}
		if n != 2 && !active {
			t.Fatalf("node %d missed the broadcast", n)
		}
	}
	r.ApplyRemoteAll(Event{Sentence: sn, Active: false, At: 9, FromNode: 2})
	for n := 0; n < 12; n++ {
		if r.Node(n).Active(sn) {
			t.Fatalf("node %d missed the deactivation", n)
		}
	}
}

// TestCrossNodeExportUnderConcurrentAppliers: many client SASes export
// into one server SAS from separate goroutines — the transport layer of
// a parallel machine does exactly this. The server must end consistent:
// every sentence deactivated, question results accounting every client.
func TestCrossNodeExportUnderConcurrentAppliers(t *testing.T) {
	server := New(Options{Node: 99})
	qid, err := server.AddQuestion(Q("any query", T("QueryActive", Any)))
	if err != nil {
		t.Fatal(err)
	}
	const clients, rounds = 8, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		client := New(Options{Node: c})
		if err := client.Export(T("QueryActive", Any), server, nil); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(client *SAS, c int) {
			defer wg.Done()
			sn := sent("QueryActive", "q"+string(rune('a'+c)))
			for i := 0; i < rounds; i++ {
				at := vtime.Time(i * 10)
				client.Activate(sn, at)
				_ = client.Deactivate(sn, at+5)
			}
		}(client, c)
	}
	wg.Wait()
	if server.Size() != 0 {
		t.Fatalf("server active set not drained: %d sentences", server.Size())
	}
	res, err := server.Result(qid, vtime.Time(rounds*10))
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedTime == 0 {
		t.Fatal("server accounted no query activity")
	}
}

// TestRegistryWorkersEquivalence drives identical notification streams
// through a sequential and a pooled registry and demands identical
// aggregates — the registry-level slice of the engine's determinism
// contract (the machine-level slice lives in internal/machine).
func TestRegistryWorkersEquivalence(t *testing.T) {
	build := func(workers int) (*Registry, map[int]QuestionID, map[int]QuestionID) {
		r := NewRegistry(Options{Filter: true, Workers: workers})
		const nodes = 16
		for n := 0; n < nodes; n++ {
			r.Node(n)
		}
		busy, err := r.AddQuestionAll(Q("busy", T("Busy", Any)))
		if err != nil {
			t.Fatal(err)
		}
		sends, err := r.AddQuestionAll(Q("sends while busy", T("Busy", Any), T("Send", Any)))
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < nodes; n++ {
			s := r.Node(n)
			for i := 0; i <= n; i++ {
				at := vtime.Time(100*i + 7*n)
				s.Activate(sent("Busy", "b"), at)
				s.RecordEvent(sent("Send", "p"), at+vtime.Time(i%3), 1)
				if err := s.Deactivate(sent("Busy", "b"), at+vtime.Time(10+i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r, busy, sends
	}
	seqR, seqBusy, seqSends := build(1)
	parR, parBusy, parSends := build(8)
	const now = vtime.Time(1 << 20)
	for name, pair := range map[string][2]map[int]QuestionID{
		"busy":  {seqBusy, parBusy},
		"sends": {seqSends, parSends},
	} {
		seqAgg, err := seqR.AggregateResult(pair[0], now)
		if err != nil {
			t.Fatal(err)
		}
		parAgg, err := parR.AggregateResult(pair[1], now)
		if err != nil {
			t.Fatal(err)
		}
		if seqAgg.Count != parAgg.Count || seqAgg.EventTime != parAgg.EventTime ||
			seqAgg.SatisfiedTime != parAgg.SatisfiedTime || seqAgg.Satisfied != parAgg.Satisfied {
			t.Fatalf("%s: workers=1 %+v, workers=8 %+v", name, seqAgg, parAgg)
		}
	}
	if s, p := seqR.TotalStats(), parR.TotalStats(); s != p {
		t.Fatalf("TotalStats: workers=1 %+v, workers=8 %+v", s, p)
	}
}
