// Package sas implements the Set of Active Sentences from Section 4.2 of
// the paper: a run-time data structure that records the current execution
// state of every level of abstraction, the way a procedure call stack
// keeps track of active functions — except that the SAS may record *any*
// active sentence, regardless of whether it could be discovered by
// examining the call stack.
//
// Whenever a sentence at any level of abstraction becomes active, the
// monitoring code notifies the SAS; when it becomes inactive it is
// removed. Any two sentences contained in the SAS concurrently are
// considered to dynamically map to one another. Performance questions
// (vectors of sentence patterns, Figure 6) are registered with the SAS and
// measurements are made only while all patterns of a question are
// satisfied by concurrently active sentences.
//
// The package also implements the discussion items around the core
// structure: relevance filtering (ignore notifications no question could
// ever use), per-node replication with cross-node sentence forwarding for
// distributed memory (Section 4.2.3), and shadow contexts, our remedy for
// the asynchronous-activation limitation of Section 4.2.4 / Figure 7.
//
// # Hot-path structure
//
// The SAS sits on the paper's critical path — it is consulted on every
// activation notification and every measured event — so its internals are
// organised around interned identities (package nv hands every noun, verb
// and sentence a small-int handle) rather than strings:
//
//   - The active set is sharded by the sentence's first noun handle, each
//     shard a handle-keyed map plus an iteration slice, so concurrent
//     notification traffic on a shared SAS does not serialise on one lock.
//   - Questions are indexed by the handles their patterns mention: a
//     concrete-verb term posts the question under its verb handle, a
//     wildcard-verb term with a concrete noun posts it under that noun
//     handle, and only fully wildcarded terms land in the scan-always
//     list. A notification or event consults the union of the posting
//     lists for its own handles — candidates, not the whole table.
//   - Pattern terms are compiled once at registration into handle form,
//     and each question keeps a per-term count of matching active
//     entries, maintained incrementally at every insert/remove. Gate
//     evaluation is then a handful of integer reads — the active set is
//     never scanned on the hot path. (Ordered questions, which need
//     activation instants, still scan.)
//
// Locking is two-tier. structMu is held in read mode by the hot
// operations, which then synchronise among themselves with the per-shard
// locks and per-question locks; structural operations (question
// registration, export wiring, restore/reset/replay, shadow and
// reliable-link application) hold structMu in write mode and own the
// whole structure. Lock order: structMu, then a question lock, then shard
// locks; no path holds a shard lock while acquiring a question lock.
package sas

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"nvmap/internal/nv"
	"nvmap/internal/obs"
	"nvmap/internal/vtime"
)

// QuestionID identifies a registered question within one SAS.
type QuestionID int

// ActiveSentence is one entry of a SAS snapshot.
type ActiveSentence struct {
	Sentence nv.Sentence
	// Since is the activation instant of the current (outermost) nesting.
	Since vtime.Time
	// Depth counts nested activations (a recursive construct may activate
	// the same sentence again before deactivating it).
	Depth int
}

// Stats counts notification traffic, for the Section 4.2.4 limitation-2
// analysis: activity notifications that are ignored by the SAS still cost
// their delivery, and relevance filtering determines how many are stored.
// CandidatesScanned and MatchesEvaluated expose the work the question
// index saves: candidates are the question states a measured event
// consulted (the brute-force design scanned every question), and matches
// are individual pattern-versus-sentence tests.
type Stats struct {
	Notifications int // activation+deactivation notifications received
	Ignored       int // dropped by the relevance filter
	Stored        int // applied to the active set
	Evaluations   int // question re-evaluations triggered
	Events        int // RecordEvent/RecordSpan calls
	// CandidatesScanned counts question states consulted for measured
	// events; MatchesEvaluated counts term-pattern match tests. Both are
	// observability counters, omitted from checkpoints when zero.
	CandidatesScanned int `json:",omitempty"`
	MatchesEvaluated  int `json:",omitempty"`
}

// statCounters is the internal, contention-free form of Stats. The two
// counters bumped on every notification — Notifications and Stored — are
// packed into one word (high and low 32 bits) so the common stored path
// pays a single atomic add; the packing caps them at 2^32, far beyond the
// traffic of any run these observability counters describe.
type statCounters struct {
	notifStored atomic.Int64 // Notifications<<32 | Stored
	ignored     atomic.Int64
	evaluations atomic.Int64
	events      atomic.Int64
	candidates  atomic.Int64
	matches     atomic.Int64
}

// notifInc adds one notification to the packed counter; or it with 1 to
// also count the operation as stored.
const notifInc = int64(1) << 32

func (c *statCounters) snapshot() Stats {
	ns := c.notifStored.Load()
	return Stats{
		Notifications:     int(ns >> 32),
		Ignored:           int(c.ignored.Load()),
		Stored:            int(ns & 0xffffffff),
		Evaluations:       int(c.evaluations.Load()),
		Events:            int(c.events.Load()),
		CandidatesScanned: int(c.candidates.Load()),
		MatchesEvaluated:  int(c.matches.Load()),
	}
}

func (c *statCounters) restore(st Stats) {
	c.notifStored.Store(int64(st.Notifications)<<32 | int64(st.Stored)&0xffffffff)
	c.ignored.Store(int64(st.Ignored))
	c.evaluations.Store(int64(st.Evaluations))
	c.events.Store(int64(st.Events))
	c.candidates.Store(int64(st.CandidatesScanned))
	c.matches.Store(int64(st.MatchesEvaluated))
}

// Result is the measurement state of one question.
type Result struct {
	Question Question
	// Count accumulates RecordEvent values charged to the question.
	Count float64
	// EventTime accumulates RecordSpan durations charged to the question.
	EventTime vtime.Duration
	// SatisfiedTime accumulates virtual time during which the question
	// was satisfied (the gate-timer reading).
	SatisfiedTime vtime.Duration
	// Satisfied is the current gate state.
	Satisfied bool
}

// cterm is a question term compiled to interned handles. Matching a
// sentence is then a handful of integer compares.
type cterm struct {
	anyVerb bool
	vh      nv.VerbHandle
	// nouns holds the handles of the term's non-wildcard nouns; every one
	// must participate in a matching sentence.
	nouns []nv.NounHandle
}

func compileTerm(t Term) cterm {
	ct := cterm{}
	if t.Verb == Any {
		ct.anyVerb = true
	} else {
		ct.vh = nv.DefaultInterner.Verb(t.Verb)
	}
	for _, n := range t.Nouns {
		if n == Any {
			continue
		}
		ct.nouns = append(ct.nouns, nv.DefaultInterner.Noun(n))
	}
	return ct
}

func (ct *cterm) matches(sn *nv.Sentence) bool {
	if !ct.anyVerb && ct.vh != nv.VerbHandleOf(sn) {
		return false
	}
	nhs := nv.NounHandlesOf(sn)
outer:
	for _, want := range ct.nouns {
		for _, have := range nhs {
			if have == want {
				continue outer
			}
		}
		return false
	}
	return true
}

// cexpr mirrors Expr; leaf indexes the question's compiled pattern list
// (and its per-term match count).
type cexpr struct {
	op   ExprOp
	leaf int
	kids []*cexpr
}

// compileExpr assigns leaf indexes in the same depth-first order
// Expr.terms uses, so leaves line up with questionState.all.
func compileExpr(e *Expr, next *int) *cexpr {
	ce := &cexpr{op: e.Op}
	if e.Op == OpTerm {
		ce.leaf = *next
		*next++
		return ce
	}
	for _, k := range e.Kids {
		ce.kids = append(ce.kids, compileExpr(k, next))
	}
	return ce
}

type questionState struct {
	id QuestionID
	q  Question

	// Compiled matching state; immutable after registration.
	all  []cterm // every pattern leaf, in allTerms order
	expr *cexpr
	trig *cterm // compiled measured term of an ordered question

	// mu guards everything below. It nests inside structMu; evalOrdered
	// may acquire shard read locks while holding it, so no path may hold
	// a shard lock while taking a question lock.
	mu sync.Mutex
	// counts[i] is the number of active entries matching all[i],
	// maintained incrementally on every insert/remove transition. The
	// gate of an unordered question (or expression) is computed from
	// these counts alone.
	counts    []int32
	satisfied bool
	since     vtime.Time // when satisfied last became true
	satTime   vtime.Duration
	count     float64
	evTime    vtime.Duration
	watch     func(bool, vtime.Time)
}

func newQuestionState(id QuestionID, q Question) *questionState {
	st := &questionState{id: id, q: q}
	for _, t := range q.allTerms() {
		st.all = append(st.all, compileTerm(t))
	}
	st.counts = make([]int32, len(st.all))
	if q.Expr != nil {
		next := 0
		st.expr = compileExpr(q.Expr, &next)
	} else if q.trigger() != nil {
		st.trig = &st.all[len(st.all)-1]
	}
	return st
}

type entry struct {
	sentence *nv.Sentence // canonical interned sentence, immutable
	since    vtime.Time
	depth    int
	// origin is the ReliableLink that created this entry, nil for local
	// activations. A reliable deactivation or resync only touches the
	// entries its own link created.
	origin *ReliableLink
	// slot is the entry's index in its shard's iteration list.
	slot int
	// nextFree chains removed entries on the shard's freelist so the
	// activate/deactivate cycle does not allocate.
	nextFree *entry
}

// numShards is the active-set shard count: enough to spread notification
// traffic from concurrent monitors without making whole-set iteration
// (snapshots, ordered questions) pay for dozens of locks.
const numShards = 8

// smallShard is the list length at which a shard builds its handle map;
// below it, linear scan of the iteration list beats map hashing.
const smallShard = 8

type shard struct {
	mu   sync.RWMutex
	byH  map[nv.SentenceHandle]*entry // nil until the list outgrows smallShard
	list []*entry
	free *entry // freelist of removed entries
	// notif and stored count the notifications applied through this
	// shard. They are atomics so statsSnapshot can sum them under
	// structMu in read mode, concurrently with the shard critical
	// sections that bump them: before the observability plane, snapshots
	// ran under structMu write (which excluded every bumper), but metric
	// collectors and the debug handler now read Stats() while
	// notifications flow, and a plain int64 read would tear.
	notif  atomic.Int64
	stored atomic.Int64
	_      [8]byte // pad to a cache line against false sharing
}

// lookup returns the live entry for an interned sentence handle, or nil.
// The shard lock (or structMu write) is held.
func (sh *shard) lookup(h nv.SentenceHandle) *entry {
	if sh.byH != nil {
		return sh.byH[h]
	}
	for _, e := range sh.list {
		if nv.HandleOf(e.sentence) == h {
			return e
		}
	}
	return nil
}

// insert adds an entry for sn, reusing a freelist entry when one is
// available; the shard lock (or structMu write) is held. Every entry
// field is (re)assigned — freelist entries carry stale values.
func (sh *shard) insert(sn *nv.Sentence, since vtime.Time, depth int, origin *ReliableLink) *entry {
	e := sh.free
	if e != nil {
		sh.free = e.nextFree
		e.nextFree = nil
	} else {
		e = &entry{}
	}
	e.sentence, e.since, e.depth, e.origin = sn, since, depth, origin
	e.slot = len(sh.list)
	sh.list = append(sh.list, e)
	if sh.byH != nil {
		sh.byH[nv.HandleOf(sn)] = e
	} else if len(sh.list) > smallShard {
		sh.byH = make(map[nv.SentenceHandle]*entry, 2*smallShard)
		for _, x := range sh.list {
			sh.byH[nv.HandleOf(x.sentence)] = x
		}
	}
	return e
}

// remove deletes an entry by swap-remove and pushes it on the freelist;
// same locking as insert. The entry's sentence field is left in place
// (callers may still read it until the next insert reuses the entry).
func (sh *shard) remove(e *entry) {
	last := len(sh.list) - 1
	moved := sh.list[last]
	sh.list[e.slot] = moved
	moved.slot = e.slot
	sh.list[last] = nil
	sh.list = sh.list[:last]
	if sh.byH != nil {
		delete(sh.byH, nv.HandleOf(e.sentence))
	}
	e.nextFree = sh.free
	sh.free = e
}

// SAS is one Set of Active Sentences. On a distributed-memory system each
// node holds its own SAS (see Registry); on shared memory a single SAS may
// be shared by several goroutines — all methods are safe for concurrent
// use, at the synchronisation cost the paper warns about.
type SAS struct {
	node   int
	filter bool

	// structMu is the two-tier structure lock; see the package comment.
	structMu sync.RWMutex

	shards [numShards]shard

	// byVerb, byNoun and wildcardQ are the question posting lists; each is
	// kept in ascending QuestionID order. Guarded by structMu.
	byVerb    map[nv.VerbHandle][]QuestionID
	byNoun    map[nv.NounHandle][]QuestionID
	wildcardQ []QuestionID
	questions map[QuestionID]*questionState
	nextID    QuestionID

	stats statCounters

	// remotes receive activation events this SAS exports (Section 4.2.3).
	exports []exportRule
	// links holds receiver-side state (expected sequence number, gap
	// buffer) for each ReliableLink delivering into this SAS. Guarded by
	// structMu in write mode.
	links map[*ReliableLink]*linkState

	// record, when set, journals replayable operations (state.go); jmu
	// serialises hook invocations. replaying suppresses journaling and
	// export fan-out during Replay; it is written under structMu write
	// and read under either mode.
	jmu       sync.Mutex
	record    func(Record)
	replaying int

	// obsT, when non-nil, records spans for the notification and
	// measurement hot paths (see Options.Obs).
	obsT *obs.Tracer
}

// Options configures a SAS.
type Options struct {
	// Node is a diagnostic label: which node of the parallel machine this
	// SAS serves.
	Node int
	// Filter enables relevance filtering: activation notifications whose
	// sentence cannot match any registered question pattern are ignored
	// (not stored). The notification cost is still counted in Stats, as
	// in the paper's limitation discussion.
	Filter bool
	// Workers bounds the worker pool a Registry uses to fan out per-node
	// aggregation and remote-event application across its SASes: 0
	// selects GOMAXPROCS, 1 keeps every registry operation on the caller
	// goroutine. Individual SASes ignore it. Like the machine's engine,
	// the worker count never changes any result.
	Workers int
	// Obs attaches the observability plane: Activate, Deactivate,
	// RecordEvent and RecordSpan record spans on its tracer. Span
	// recording assumes the notifying operations run on one goroutine
	// (the session's driving goroutine, where all monitoring code
	// lives); registries wired into a concurrent export mesh should
	// leave it nil or run with Workers 1. Nil disables recording.
	Obs *obs.Plane
}

// New returns an empty SAS.
func New(opts Options) *SAS {
	return &SAS{
		node:      opts.Node,
		filter:    opts.Filter,
		byVerb:    make(map[nv.VerbHandle][]QuestionID),
		byNoun:    make(map[nv.NounHandle][]QuestionID),
		questions: make(map[QuestionID]*questionState),
		obsT:      opts.Obs.Trace(),
	}
}

// Node returns the node label.
func (s *SAS) Node() int { return s.node }

// shardOf picks the entry shard for a sentence: the first noun handle,
// falling back to the verb handle for noun-less sentences (precomputed
// at intern time as the shard key).
func (s *SAS) shardOf(sn *nv.Sentence) *shard {
	return &s.shards[nv.ShardKeyOf(sn)%numShards]
}

// lookupEntry returns the live entry for an interned sentence, or nil.
// Callers hold either the shard's lock or structMu in write mode.
func (s *SAS) lookupEntry(sn *nv.Sentence) *entry {
	return s.shardOf(sn).lookup(nv.HandleOf(sn))
}

// AddQuestion registers a performance question and returns its handle.
// In the paper's usage the asking of performance questions is deferred
// until run time; adding and removing questions while sentences are active
// is fully supported — a newly added question starts unsatisfied and is
// immediately evaluated against the current active set.
func (s *SAS) AddQuestion(q Question) (QuestionID, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	s.structMu.Lock()
	defer s.structMu.Unlock()
	id := s.nextID
	s.nextID++
	st := newQuestionState(id, q)
	s.questions[id] = st
	s.indexQuestion(st)
	// Seed the per-term match counts and evaluate against the current
	// active set, so a question asked mid-execution picks up
	// already-active sentences.
	tested := 0
	for i := range s.shards {
		for _, e := range s.shards[i].list {
			for j := range st.all {
				tested++
				if st.all[j].matches(e.sentence) {
					st.counts[j]++
				}
			}
		}
	}
	s.stats.matches.Add(int64(tested))
	s.recomputeGate(st, s.lastKnownTime())
	return id, nil
}

// indexQuestion posts a question under every handle its patterns name:
// concrete verbs under byVerb, wildcard-verb patterns under their first
// concrete noun, and fully wildcarded patterns in the scan-always list.
// Each posting list receives the question at most once, in ascending
// registration order.
func (s *SAS) indexQuestion(st *questionState) {
	var seenV []nv.VerbHandle
	var seenN []nv.NounHandle
	wild := false
	for i := range st.all {
		ct := &st.all[i]
		switch {
		case !ct.anyVerb:
			if !slices.Contains(seenV, ct.vh) {
				seenV = append(seenV, ct.vh)
				s.byVerb[ct.vh] = append(s.byVerb[ct.vh], st.id)
			}
		case st.expr == nil && len(ct.nouns) > 0:
			// Noun narrowing is sound only because term-vector delivery
			// is guarded by an "event matches some term" (or trigger)
			// precondition: an event that matches an Any-verb term
			// necessarily carries the term's nouns, so the byNoun posting
			// covers every event that can be charged. Expression gates
			// have no such precondition — a satisfied expression is
			// charged by any event it is consulted for — so an Any-verb
			// term must keep the question globally visible, exactly as
			// the original single verb index did.
			if !slices.Contains(seenN, ct.nouns[0]) {
				seenN = append(seenN, ct.nouns[0])
				s.byNoun[ct.nouns[0]] = append(s.byNoun[ct.nouns[0]], st.id)
			}
		default:
			if !wild {
				wild = true
				s.wildcardQ = append(s.wildcardQ, st.id)
			}
		}
	}
}

// RemoveQuestion deletes a question; its accumulated results are lost.
func (s *SAS) RemoveQuestion(id QuestionID) error {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	if _, ok := s.questions[id]; !ok {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	delete(s.questions, id)
	for v, ids := range s.byVerb {
		s.byVerb[v] = removeQID(ids, id)
		if len(s.byVerb[v]) == 0 {
			delete(s.byVerb, v)
		}
	}
	for n, ids := range s.byNoun {
		s.byNoun[n] = removeQID(ids, id)
		if len(s.byNoun[n]) == 0 {
			delete(s.byNoun, n)
		}
	}
	s.wildcardQ = removeQID(s.wildcardQ, id)
	return nil
}

func removeQID(ids []QuestionID, id QuestionID) []QuestionID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Watch attaches a callback fired whenever the question's satisfied state
// flips. This implements the boolean-variable protocol of Section 6.1:
// the SAS module sets a flag to true whenever the requested array is
// active, and dynamically inserted instrumentation checks the flag before
// measuring. The callback runs with SAS locks held; it must not call
// back into the SAS.
func (s *SAS) Watch(id QuestionID, fn func(satisfied bool, at vtime.Time)) error {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	st, ok := s.questions[id]
	if !ok {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	st.watch = fn
	return nil
}

// eachCandidate visits, in ascending QuestionID order without duplicates,
// every question whose patterns could match sn: the merge of the byVerb
// list for sn's verb, the byNoun lists for each of sn's nouns, and the
// wildcard list. The index is complete — a pattern matching sn is posted
// under sn's verb, one of sn's nouns, or the wildcard list — so skipping
// non-candidates never skips a potential match. Callers hold structMu
// (either mode).
func (s *SAS) eachCandidate(sn *nv.Sentence, fn func(*questionState)) {
	if len(s.questions) == 0 {
		return
	}
	var lb [10][]QuestionID
	lists := lb[:0]
	if l := s.byVerb[nv.VerbHandleOf(sn)]; len(l) > 0 {
		lists = append(lists, l)
	}
	if len(s.byNoun) > 0 {
		for _, nh := range nv.NounHandlesOf(sn) {
			if l := s.byNoun[nh]; len(l) > 0 {
				lists = append(lists, l)
			}
		}
	}
	if len(s.wildcardQ) > 0 {
		lists = append(lists, s.wildcardQ)
	}
	if len(lists) == 0 {
		return
	}
	if len(lists) == 1 {
		for _, id := range lists[0] {
			if st := s.questions[id]; st != nil {
				fn(st)
			}
		}
		return
	}
	var idx [10]int
	last := QuestionID(-1)
	for {
		best := -1
		var bestID QuestionID
		for i := range lists {
			for idx[i] < len(lists[i]) && lists[i][idx[i]] == last {
				idx[i]++
			}
			if idx[i] < len(lists[i]) {
				if id := lists[i][idx[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		if best < 0 {
			return
		}
		idx[best]++
		last = bestID
		if st := s.questions[bestID]; st != nil {
			fn(st)
		}
	}
}

// relevant reports whether any registered question pattern could match
// sn. Only indexed candidates are consulted; completeness of the index
// makes the answer equal to a scan of every question.
func (s *SAS) relevant(sn *nv.Sentence) bool {
	rel := false
	s.eachCandidate(sn, func(st *questionState) {
		if rel {
			return
		}
		for i := range st.all {
			if st.all[i].matches(sn) {
				rel = true
				return
			}
		}
	})
	return rel
}

// Activate notifies the SAS that sentence sn became active at instant at.
// Nested activation of an already-active sentence increases its depth.
func (s *SAS) Activate(sn nv.Sentence, at vtime.Time) {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASActivate, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	var pending []pendingSend
	if s.journaling() {
		s.journal(Record{Kind: RecActivate, Sentence: *p, At: at})
	}
	switch {
	case s.filter && !s.relevant(p):
		s.stats.notifStored.Add(notifInc)
		s.stats.ignored.Add(1)
	default:
		sh := s.shardOf(p)
		sh.mu.Lock()
		sh.notif.Add(1)
		sh.stored.Add(1)
		if e := sh.lookup(nv.HandleOf(p)); e != nil {
			e.depth++
			sh.mu.Unlock()
		} else {
			sh.insert(p, at, 1, nil)
			sh.mu.Unlock()
			s.notifyQuestions(p, at, +1)
			pending = s.collectExports(p, at, true)
		}
	}
	s.structMu.RUnlock()
	dispatch(pending)
}

// Deactivate notifies the SAS that sentence sn became inactive at instant
// at. Deactivating a sentence that is not active is an error — balanced
// notification is an invariant the monitoring code must maintain.
func (s *SAS) Deactivate(sn nv.Sentence, at vtime.Time) error {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASDeactivate, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	var pending []pendingSend
	if s.journaling() {
		s.journal(Record{Kind: RecDeactivate, Sentence: *p, At: at})
	}
	sh := s.shardOf(p)
	sh.mu.Lock()
	e := sh.lookup(nv.HandleOf(p))
	if e == nil {
		sh.mu.Unlock()
		s.stats.notifStored.Add(notifInc)
		filtered := s.filter && !s.relevant(p)
		if filtered {
			// A filtered sentence was never stored; its deactivation is
			// likewise ignored.
			s.stats.ignored.Add(1)
		}
		s.structMu.RUnlock()
		if filtered {
			return nil
		}
		return fmt.Errorf("sas: deactivate of inactive sentence %v", sn)
	}
	sh.notif.Add(1)
	sh.stored.Add(1)
	e.depth--
	if e.depth == 0 {
		sh.remove(e)
		sh.mu.Unlock()
		s.notifyQuestions(p, at, -1)
		pending = s.collectExports(p, at, false)
	} else {
		sh.mu.Unlock()
	}
	s.structMu.RUnlock()
	dispatch(pending)
	return nil
}

// notifyQuestions folds one insert (delta +1) or remove (delta -1)
// transition into every candidate question: the per-term match counts
// are adjusted and the gate recomputed, all without touching the active
// set. Called with structMu held (either mode) and no shard locks.
func (s *SAS) notifyQuestions(sn *nv.Sentence, at vtime.Time, delta int32) {
	s.eachCandidate(sn, func(st *questionState) {
		s.applyTransition(st, sn, delta, at)
	})
}

// applyTransition updates one candidate's match counts for a transition
// of sn and recomputes its gate.
func (s *SAS) applyTransition(st *questionState, sn *nv.Sentence, delta int32, at vtime.Time) {
	s.stats.evaluations.Add(1)
	s.stats.matches.Add(int64(len(st.all)))
	st.mu.Lock()
	for i := range st.all {
		if st.all[i].matches(sn) {
			st.counts[i] += delta
		}
	}
	s.updateGateLocked(st, at)
	st.mu.Unlock()
}

// recomputeGate re-derives a question's gate from its current counts
// (after registration or a restore).
func (s *SAS) recomputeGate(st *questionState, at vtime.Time) {
	s.stats.evaluations.Add(1)
	st.mu.Lock()
	s.updateGateLocked(st, at)
	st.mu.Unlock()
}

func (s *SAS) updateGateLocked(st *questionState, at vtime.Time) {
	now := s.gate(st, nil)
	if now == st.satisfied {
		return
	}
	st.satisfied = now
	if now {
		st.since = at
	} else {
		st.satTime += at.Sub(st.since)
	}
	if st.watch != nil {
		st.watch(now, at)
	}
}

// evalCtx carries a measured event through gate evaluation: the event
// sentence is treated as active, and match tests are tallied (added to
// Stats once per operation, not per test).
type evalCtx struct {
	extra   *nv.Sentence
	matches int64
}

func (c *evalCtx) matchExtra(ct *cterm) bool {
	c.matches++
	return ct.matches(c.extra)
}

// gate computes a question's satisfied state from its match counts; a
// non-nil ctx additionally treats the event sentence as active. The
// question lock is held. Ordered questions scan the active set (they
// need activation instants), everything else is count reads.
func (s *SAS) gate(st *questionState, c *evalCtx) bool {
	if st.expr != nil {
		return s.gateExpr(st, st.expr, c)
	}
	if st.q.Ordered {
		return s.evalOrdered(st, c)
	}
	for i := range st.all {
		if st.counts[i] > 0 {
			continue
		}
		if c != nil && c.matchExtra(&st.all[i]) {
			continue
		}
		return false
	}
	return true
}

func (s *SAS) gateExpr(st *questionState, e *cexpr, c *evalCtx) bool {
	switch e.op {
	case OpTerm:
		if st.counts[e.leaf] > 0 {
			return true
		}
		return c != nil && c.matchExtra(&st.all[e.leaf])
	case OpAnd:
		for _, k := range e.kids {
			if !s.gateExpr(st, k, c) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.kids {
			if s.gateExpr(st, k, c) {
				return true
			}
		}
		return false
	case OpNot:
		return !s.gateExpr(st, e.kids[0], c)
	default:
		return false
	}
}

// evalOrdered checks the ordered reading: each term must be matched by an
// active sentence whose activation time is no earlier than the match of
// the preceding term — the nesting discipline of a call stack. The extra
// (trigger) sentence, when present, is only eligible for the final term
// and is considered activated "now" (no earlier than everything else).
// Shards are read-locked one at a time; the caller holds no shard locks.
func (s *SAS) evalOrdered(st *questionState, c *evalCtx) bool {
	prev := vtime.Time(-1 << 62)
	for i := range st.all {
		ct := &st.all[i]
		last := i == len(st.all)-1
		best := vtime.Time(-1)
		found := false
		for j := range s.shards {
			sh := &s.shards[j]
			sh.mu.RLock()
			for _, e := range sh.list {
				if c != nil {
					c.matches++
				}
				if !ct.matches(e.sentence) || e.since.Before(prev) {
					continue
				}
				if !found || e.since.Before(best) {
					best = e.since
					found = true
				}
			}
			sh.mu.RUnlock()
		}
		if !found && last && c != nil && c.matchExtra(ct) {
			// The trigger fires after every stored activation.
			return true
		}
		if !found {
			return false
		}
		prev = best
	}
	return true
}

// fires decides whether a measured event for the context's sentence
// satisfies question st. For unordered questions the event sentence must
// match some term and the whole question must hold with the event treated
// as active. For ordered questions the event must match the final
// (measured) term and the earlier terms must be satisfied in activation
// order. The question lock is held.
func (s *SAS) fires(st *questionState, c *evalCtx) bool {
	if st.trig != nil {
		if !c.matchExtra(st.trig) {
			return false
		}
		return s.gate(st, c)
	}
	if st.expr == nil {
		matchesSome := false
		for i := range st.all {
			if c.matchExtra(&st.all[i]) {
				matchesSome = true
				break
			}
		}
		if !matchesSome {
			return false
		}
	}
	return s.gate(st, c)
}

// RecordEvent charges an instantaneous measured event — the execution of
// low-level sentence sn at instant at — to every question the event
// satisfies, adding value to each question's counter. It returns the
// number of questions charged.
//
// This is the paper's central measurement act: "when a low-level sentence
// is to be measured, monitoring code queries the SAS to determine what
// sentences are currently active and thereby relates low-level sentences
// to active sentences at higher levels."
func (s *SAS) RecordEvent(sn nv.Sentence, at vtime.Time, value float64) int {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASMatch, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	if s.journaling() {
		s.journal(Record{Kind: RecEvent, Sentence: *p, At: at, Value: value})
	}
	s.stats.events.Add(1)
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.count += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	s.structMu.RUnlock()
	return hits
}

// RecordSpan charges a measured duration — low-level sentence sn active
// over [from, to) — to every question the event satisfies, adding the
// span to each question's event-time accumulator.
func (s *SAS) RecordSpan(sn nv.Sentence, from, to vtime.Time, value vtime.Duration) int {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASMatch, p.Key(), s.node, from)
		defer s.obsT.End(ref, to)
	}
	s.structMu.RLock()
	if s.journaling() {
		s.journal(Record{Kind: RecSpan, Sentence: *p, At: to, From: from, Dur: value})
	}
	s.stats.events.Add(1)
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.evTime += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	s.structMu.RUnlock()
	return hits
}

// Satisfied reports the current gate state of a question.
func (s *SAS) Satisfied(id QuestionID) bool {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st, ok := s.questions[id]
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.satisfied
}

// Result returns the measurement state of a question as of instant now
// (a currently-satisfied gate timer includes the open interval up to now).
func (s *SAS) Result(id QuestionID, now vtime.Time) (Result, error) {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st, ok := s.questions[id]
	if !ok {
		return Result{}, fmt.Errorf("sas: unknown question %d", id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	r := Result{
		Question:      st.q,
		Count:         st.count,
		EventTime:     st.evTime,
		SatisfiedTime: st.satTime,
		Satisfied:     st.satisfied,
	}
	if st.satisfied && now.After(st.since) {
		r.SatisfiedTime += now.Sub(st.since)
	}
	return r, nil
}

// Snapshot returns the active sentences sorted by activation time then
// key — the Figure 5 view of the SAS. It takes structMu in write mode:
// owning the structure outright is cheaper than read-locking every shard,
// and snapshots are rare next to notifications.
func (s *SAS) Snapshot() []ActiveSentence {
	s.structMu.Lock()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].list)
	}
	out := make([]ActiveSentence, 0, n)
	for i := range s.shards {
		for _, e := range s.shards[i].list {
			out = append(out, ActiveSentence{Sentence: *e.sentence, Since: e.since, Depth: e.depth})
		}
	}
	s.structMu.Unlock()
	sortSnapshot(out)
	return out
}

func sortSnapshot(out []ActiveSentence) {
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i].Since < out[i-1].Since ||
			(out[i].Since == out[i-1].Since && out[i].Sentence.Key() < out[i-1].Sentence.Key()) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(out, func(a, b ActiveSentence) int {
		if a.Since != b.Since {
			if a.Since < b.Since {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Sentence.Key(), b.Sentence.Key())
	})
}

// Active reports whether sn is currently active.
func (s *SAS) Active(sn nv.Sentence) bool {
	p, known := nv.LookupInternedPtr(&sn)
	if !known {
		// Entries are always interned; a sentence the intern table has
		// never seen cannot be active.
		return false
	}
	s.structMu.RLock()
	sh := s.shardOf(p)
	sh.mu.RLock()
	ok := sh.lookup(nv.HandleOf(p)) != nil
	sh.mu.RUnlock()
	s.structMu.RUnlock()
	return ok
}

// Size returns the number of distinct active sentences.
func (s *SAS) Size() int {
	s.structMu.Lock()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].list)
	}
	s.structMu.Unlock()
	return n
}

// Stats returns a copy of the notification statistics. It takes structMu
// only in read mode: every merged counter is atomic, so snapshots run
// concurrently with notification traffic without tearing.
func (s *SAS) Stats() Stats {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	return s.statsSnapshot()
}

// statsSnapshot merges the atomic counters with the shard-local ones.
// Called with structMu held in either mode.
func (s *SAS) statsSnapshot() Stats {
	st := s.stats.snapshot()
	for i := range s.shards {
		st.Notifications += int(s.shards[i].notif.Load())
		st.Stored += int(s.shards[i].stored.Load())
	}
	return st
}

// IndexStats describes the question index: how many questions are
// registered and how the posting lists distribute them. Exposed for the
// observability plane's metrics.
type IndexStats struct {
	Questions        int
	VerbPostings     int
	NounPostings     int
	WildcardPostings int
}

// Index returns the current question-index statistics.
func (s *SAS) Index() IndexStats {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st := IndexStats{Questions: len(s.questions), WildcardPostings: len(s.wildcardQ)}
	for _, ids := range s.byVerb {
		st.VerbPostings += len(ids)
	}
	for _, ids := range s.byNoun {
		st.NounPostings += len(ids)
	}
	return st
}

// ShardSizes returns the number of active sentences held by each shard —
// the occupancy distribution behind shard contention.
func (s *SAS) ShardSizes() [numShards]int {
	var out [numShards]int
	s.structMu.RLock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = len(sh.list)
		sh.mu.RUnlock()
	}
	s.structMu.RUnlock()
	return out
}

// lastKnownTime returns a best-effort "now" for evaluating a question
// added mid-run: the latest activation time seen. Called with structMu in
// write mode.
func (s *SAS) lastKnownTime() vtime.Time {
	var t vtime.Time
	for i := range s.shards {
		for _, e := range s.shards[i].list {
			if e.since.After(t) {
				t = e.since
			}
		}
	}
	return t
}

// FormatSnapshot renders the snapshot the way Figure 5 prints it, one
// active sentence per line prefixed with its level of abstraction, e.g.
//
//	HPF:  line #1 executes
//	Base: Processor sends a message
//
// Levels and display names come from the registry; sentences whose verb
// is unknown to the registry are printed with a "?" level.
func FormatSnapshot(snap []ActiveSentence, reg *nv.Registry) string {
	var b []byte
	for _, a := range snap {
		level := "?"
		if v, ok := reg.Verb(a.Sentence.Verb); ok {
			level = string(v.Level)
		}
		b = append(b, fmt.Sprintf("%-6s %v\n", level+":", a.Sentence)...)
	}
	return string(b)
}
