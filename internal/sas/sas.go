// Package sas implements the Set of Active Sentences from Section 4.2 of
// the paper: a run-time data structure that records the current execution
// state of every level of abstraction, the way a procedure call stack
// keeps track of active functions — except that the SAS may record *any*
// active sentence, regardless of whether it could be discovered by
// examining the call stack.
//
// Whenever a sentence at any level of abstraction becomes active, the
// monitoring code notifies the SAS; when it becomes inactive it is
// removed. Any two sentences contained in the SAS concurrently are
// considered to dynamically map to one another. Performance questions
// (vectors of sentence patterns, Figure 6) are registered with the SAS and
// measurements are made only while all patterns of a question are
// satisfied by concurrently active sentences.
//
// The package also implements the discussion items around the core
// structure: relevance filtering (ignore notifications no question could
// ever use), per-node replication with cross-node sentence forwarding for
// distributed memory (Section 4.2.3), and shadow contexts, our remedy for
// the asynchronous-activation limitation of Section 4.2.4 / Figure 7.
//
// # Hot-path structure
//
// The SAS sits on the paper's critical path — it is consulted on every
// activation notification and every measured event — so its internals are
// organised around interned identities (package nv hands every noun, verb
// and sentence a small-int handle) and columnar storage:
//
//   - The active set is sharded by the sentence's first noun handle. Each
//     shard is struct-of-arrays: parallel dense columns (sentence handle,
//     verb handle, canonical sentence pointer, activation instant, depth,
//     origin link) indexed by row. Insert appends a row to every column;
//     remove swap-moves the last row into the hole — no per-entry heap
//     objects, no freelist, and the columns keep their capacity across
//     activate/deactivate cycles, so the steady state allocates nothing.
//   - Whole-set work (seeding a new question's match counts, recounting
//     after a restore, ordered-question evaluation) is a batch sweep per
//     question term: a tight pass over the verb-handle column rejects
//     non-matching rows on one integer compare each, and only verb hits
//     pay the noun subset test. The sweep touches memory linearly in
//     column order instead of pointer-chasing entries.
//   - Questions live in a slice indexed by QuestionID, and the posting
//     lists are slices indexed by verb/noun handle — candidate discovery
//     is array indexing, never map hashing. A concrete-verb term posts
//     the question under its verb handle, a wildcard-verb term with a
//     concrete noun posts it under that noun handle, and only fully
//     wildcarded terms land in the scan-always list.
//   - Pattern terms are compiled once into handle form (shared across all
//     nodes of a Registry — the interner is process-wide, so compiled
//     terms are node-independent), and each question keeps a per-term
//     count of matching active rows, maintained incrementally at every
//     insert/remove. Gate evaluation is then a handful of integer reads.
//
// Locking is two-tier. structMu is held in read mode by the hot
// operations, which then synchronise among themselves with the per-shard
// locks and per-question locks; structural operations (question
// registration, export wiring, restore/reset/replay, shadow and
// reliable-link application) hold structMu in write mode and own the
// whole structure. Lock order: structMu, then a question lock, then shard
// locks; no path holds a shard lock while acquiring a question lock.
package sas

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"nvmap/internal/nv"
	"nvmap/internal/obs"
	"nvmap/internal/vtime"
)

// QuestionID identifies a registered question within one SAS.
type QuestionID int

// ActiveSentence is one entry of a SAS snapshot.
type ActiveSentence struct {
	Sentence nv.Sentence
	// Since is the activation instant of the current (outermost) nesting.
	Since vtime.Time
	// Depth counts nested activations (a recursive construct may activate
	// the same sentence again before deactivating it).
	Depth int
}

// Stats counts notification traffic, for the Section 4.2.4 limitation-2
// analysis: activity notifications that are ignored by the SAS still cost
// their delivery, and relevance filtering determines how many are stored.
// CandidatesScanned and MatchesEvaluated expose the work the question
// index saves: candidates are the question states a measured event
// consulted (the brute-force design scanned every question), and matches
// are individual pattern-versus-sentence tests.
type Stats struct {
	Notifications int // activation+deactivation notifications received
	Ignored       int // dropped by the relevance filter
	Stored        int // applied to the active set
	Evaluations   int // question re-evaluations triggered
	Events        int // RecordEvent/RecordSpan calls
	// CandidatesScanned counts question states consulted for measured
	// events; MatchesEvaluated counts term-pattern match tests. Both are
	// observability counters, omitted from checkpoints when zero. They
	// count the tests the *semantic model* performs, not the physically
	// executed compares — the columnar sweep's verb-column fast reject
	// must not change checkpointed statistics.
	CandidatesScanned int `json:",omitempty"`
	MatchesEvaluated  int `json:",omitempty"`
}

// statCounters is the internal, contention-free form of Stats. The two
// counters bumped on every notification — Notifications and Stored — are
// packed into one word (high and low 32 bits) so paths outside the shard
// critical sections pay a single atomic add; the packing caps them at
// 2^32, far beyond the traffic of any run these observability counters
// describe. (The shard-local notif/stored counters are plain ints under
// the shard lock — see shard.)
type statCounters struct {
	notifStored atomic.Int64 // Notifications<<32 | Stored
	ignored     atomic.Int64
	evaluations atomic.Int64
	events      atomic.Int64
	candidates  atomic.Int64
	matches     atomic.Int64
}

// notifInc adds one notification to the packed counter; or it with 1 to
// also count the operation as stored.
const notifInc = int64(1) << 32

func (c *statCounters) snapshot() Stats {
	ns := c.notifStored.Load()
	return Stats{
		Notifications:     int(ns >> 32),
		Ignored:           int(c.ignored.Load()),
		Stored:            int(ns & 0xffffffff),
		Evaluations:       int(c.evaluations.Load()),
		Events:            int(c.events.Load()),
		CandidatesScanned: int(c.candidates.Load()),
		MatchesEvaluated:  int(c.matches.Load()),
	}
}

func (c *statCounters) restore(st Stats) {
	c.notifStored.Store(int64(st.Notifications)<<32 | int64(st.Stored)&0xffffffff)
	c.ignored.Store(int64(st.Ignored))
	c.evaluations.Store(int64(st.Evaluations))
	c.events.Store(int64(st.Events))
	c.candidates.Store(int64(st.CandidatesScanned))
	c.matches.Store(int64(st.MatchesEvaluated))
}

// Result is the measurement state of one question.
type Result struct {
	Question Question
	// Count accumulates RecordEvent values charged to the question.
	Count float64
	// EventTime accumulates RecordSpan durations charged to the question.
	EventTime vtime.Duration
	// SatisfiedTime accumulates virtual time during which the question
	// was satisfied (the gate-timer reading).
	SatisfiedTime vtime.Duration
	// Satisfied is the current gate state.
	Satisfied bool
}

// cterm is a question term compiled to interned handles. Matching a
// sentence is then a handful of integer compares.
type cterm struct {
	anyVerb bool
	vh      nv.VerbHandle
	// nouns holds the handles of the term's non-wildcard nouns; every one
	// must participate in a matching sentence.
	nouns []nv.NounHandle
}

func compileTerm(t Term) cterm {
	ct := cterm{}
	if t.Verb == Any {
		ct.anyVerb = true
	} else {
		ct.vh = nv.DefaultInterner.Verb(t.Verb)
	}
	for _, n := range t.Nouns {
		if n == Any {
			continue
		}
		ct.nouns = append(ct.nouns, nv.DefaultInterner.Noun(n))
	}
	return ct
}

func (ct *cterm) matches(sn *nv.Sentence) bool {
	if !ct.anyVerb && ct.vh != nv.VerbHandleOf(sn) {
		return false
	}
	return ct.nounsMatch(sn)
}

// nounsMatch is the noun-subset half of matches: every compiled noun
// handle must appear among the sentence's noun handles. Batch sweeps call
// it only on verb-column hits.
func (ct *cterm) nounsMatch(sn *nv.Sentence) bool {
	for _, want := range ct.nouns {
		if !nv.HasNoun(sn, want) {
			return false
		}
	}
	return true
}

// cexpr mirrors Expr; leaf indexes the question's compiled pattern list
// (and its per-term match count).
type cexpr struct {
	op   ExprOp
	leaf int
	kids []*cexpr
}

// compileExpr assigns leaf indexes in the same depth-first order
// Expr.terms uses, so leaves line up with questionState.all.
func compileExpr(e *Expr, next *int) *cexpr {
	ce := &cexpr{op: e.Op}
	if e.Op == OpTerm {
		ce.leaf = *next
		*next++
		return ce
	}
	for _, k := range e.Kids {
		ce.kids = append(ce.kids, compileExpr(k, next))
	}
	return ce
}

// compiledQuestion is a question's matching state compiled to handle
// form. It is immutable after compilation and node-independent (handles
// come from the process-wide interner), so a Registry compiles each
// question once and shares the result across every node's SAS instead of
// recompiling per node.
type compiledQuestion struct {
	all  []cterm // every pattern leaf, in allTerms order
	expr *cexpr
	trig bool // the final term is an ordered question's measured trigger
}

func compileQuestion(q Question) *compiledQuestion {
	cq := &compiledQuestion{}
	for _, t := range q.allTerms() {
		cq.all = append(cq.all, compileTerm(t))
	}
	if q.Expr != nil {
		next := 0
		cq.expr = compileExpr(q.Expr, &next)
	} else if q.trigger() != nil {
		cq.trig = true
	}
	return cq
}

type questionState struct {
	id QuestionID
	q  Question

	// Compiled matching state; immutable after registration and possibly
	// shared with the same question registered on other nodes.
	all  []cterm // every pattern leaf, in allTerms order
	expr *cexpr
	trig *cterm // compiled measured term of an ordered question

	// mu guards everything below. It nests inside structMu; evalOrdered
	// may acquire shard read locks while holding it, so no path may hold
	// a shard lock while taking a question lock.
	mu sync.Mutex
	// counts[i] is the number of active rows matching all[i], maintained
	// incrementally on every insert/remove transition. The gate of an
	// unordered question (or expression) is computed from these counts
	// alone.
	counts []int32
	// countsBuf backs counts for questions of up to four terms (nearly
	// all of them), folding the counts allocation into the state's own.
	countsBuf [4]int32
	satisfied bool
	since     vtime.Time // when satisfied last became true
	satTime   vtime.Duration
	count     float64
	evTime    vtime.Duration
	watch     func(bool, vtime.Time)
}

func newQuestionState(id QuestionID, q Question, cq *compiledQuestion) *questionState {
	if cq == nil {
		cq = compileQuestion(q)
	}
	st := &questionState{id: id, q: q, all: cq.all, expr: cq.expr}
	if n := len(st.all); n <= len(st.countsBuf) {
		st.counts = st.countsBuf[:n:n]
	} else {
		st.counts = make([]int32, n)
	}
	if cq.trig {
		st.trig = &st.all[len(st.all)-1]
	}
	return st
}

// numShards is the active-set shard count: enough to spread notification
// traffic from concurrent monitors without making whole-set iteration
// (snapshots, ordered questions) pay for dozens of locks.
const numShards = 8

// smallShard is the row count at which a shard builds its handle map;
// below it, linear scan of the handle column beats map hashing.
const smallShard = 8

// shard is one struct-of-arrays column group of the active set. The
// columns are parallel — row i of every column describes the same active
// sentence — and dense: insert appends to each column, remove swap-moves
// the last row into the hole (a "compaction", counted for the
// observability plane). The columns never shrink their capacity, so a
// warmed shard's activate/deactivate cycle allocates nothing.
type shard struct {
	mu sync.RWMutex

	// The columns. handles and verbs are the sweep columns — pure uint32
	// lanes a batch pass reads linearly; sents resolves a row to its
	// canonical sentence (for noun tests and snapshots); since/depth/
	// origin carry the row's activation state.
	handles []nv.SentenceHandle
	verbs   []nv.VerbHandle
	sents   []*nv.Sentence
	since   []vtime.Time
	depth   []int32
	origin  []*ReliableLink

	// byH maps a sentence handle to its row index; nil until the shard
	// outgrows smallShard. Swap-removes keep it in step.
	byH map[nv.SentenceHandle]int32

	// notif and stored count the notifications applied through this
	// shard; compact counts swap-remove backfills. All are plain ints
	// mutated under mu in write mode and read under mu in read mode
	// (statsSnapshot) — cheaper than the atomic adds they replace, which
	// cost two LOCK-prefixed instructions on every notification.
	notif   int64
	stored  int64
	compact int64
}

// rows returns the shard's active row count. The shard lock (or structMu
// write) is held.
func (sh *shard) rows() int { return len(sh.handles) }

// find returns the row index of an interned sentence handle, or -1.
// The shard lock (or structMu write) is held.
func (sh *shard) find(h nv.SentenceHandle) int {
	if sh.byH != nil {
		if i, ok := sh.byH[h]; ok {
			return int(i)
		}
		return -1
	}
	for i, x := range sh.handles {
		if x == h {
			return i
		}
	}
	return -1
}

// insert appends a row for sn to every column and returns its index; the
// shard lock (or structMu write) is held.
func (sh *shard) insert(sn *nv.Sentence, since vtime.Time, depth int32, origin *ReliableLink) int {
	i := len(sh.handles)
	h := nv.HandleOf(sn)
	sh.handles = append(sh.handles, h)
	sh.verbs = append(sh.verbs, nv.VerbHandleOf(sn))
	sh.sents = append(sh.sents, sn)
	sh.since = append(sh.since, since)
	sh.depth = append(sh.depth, depth)
	sh.origin = append(sh.origin, origin)
	if sh.byH != nil {
		sh.byH[h] = int32(i)
	} else if len(sh.handles) > smallShard {
		sh.byH = make(map[nv.SentenceHandle]int32, 2*smallShard)
		for j, x := range sh.handles {
			sh.byH[x] = int32(j)
		}
	}
	return i
}

// removeAt deletes row i by swap-moving the last row into the hole; same
// locking as insert. Pointer column slots of the vacated row are nilled
// so the collector does not see dead sentences through retained capacity.
func (sh *shard) removeAt(i int) {
	h := sh.handles[i]
	last := len(sh.handles) - 1
	if i != last {
		sh.handles[i] = sh.handles[last]
		sh.verbs[i] = sh.verbs[last]
		sh.sents[i] = sh.sents[last]
		sh.since[i] = sh.since[last]
		sh.depth[i] = sh.depth[last]
		sh.origin[i] = sh.origin[last]
		if sh.byH != nil {
			sh.byH[sh.handles[i]] = int32(i)
		}
		sh.compact++
	}
	sh.handles = sh.handles[:last]
	sh.verbs = sh.verbs[:last]
	sh.sents[last] = nil
	sh.sents = sh.sents[:last]
	sh.since = sh.since[:last]
	sh.depth = sh.depth[:last]
	sh.origin[last] = nil
	sh.origin = sh.origin[:last]
	if sh.byH != nil {
		delete(sh.byH, h)
	}
}

// countMatches batch-sweeps the shard for rows matching ct and returns
// how many match. A concrete-verb term scans the dense verb column —
// one integer compare per row — and only verb hits pay the noun subset
// test; a wildcard-verb term tests nouns on every row. Same locking as
// find.
func (sh *shard) countMatches(ct *cterm) int32 {
	var n int32
	if !ct.anyVerb {
		for i, vh := range sh.verbs {
			if vh == ct.vh && ct.nounsMatch(sh.sents[i]) {
				n++
			}
		}
		return n
	}
	for _, sn := range sh.sents {
		if ct.nounsMatch(sn) {
			n++
		}
	}
	return n
}

// SAS is one Set of Active Sentences. On a distributed-memory system each
// node holds its own SAS (see Registry); on shared memory a single SAS may
// be shared by several goroutines — all methods are safe for concurrent
// use, at the synchronisation cost the paper warns about.
type SAS struct {
	node   int
	filter bool

	// structMu is the two-tier structure lock; see the package comment.
	structMu sync.RWMutex

	shards [numShards]shard
	// colBuf backs the initial shard column windows; see
	// carveShardColumns.
	colBuf columnBuf

	// byVerb and byNoun are the question posting lists, indexed directly
	// by verb/noun handle (handles are small dense ints, so a slice
	// replaces the map — candidate discovery is a bounds check and a
	// load). wildcardQ is the scan-always list. Every posting list is
	// kept in ascending QuestionID order. Guarded by structMu.
	byVerb    [][]QuestionID
	byNoun    [][]QuestionID
	wildcardQ []QuestionID
	// qstates is indexed by QuestionID (ids are assigned sequentially;
	// removed questions leave nil holes); nq counts live questions.
	qstates []*questionState
	nq      int
	nextID  QuestionID

	stats statCounters

	// remotes receive activation events this SAS exports (Section 4.2.3).
	exports []exportRule
	// links holds receiver-side state (expected sequence number, gap
	// buffer) for each ReliableLink delivering into this SAS. Guarded by
	// structMu in write mode.
	links map[*ReliableLink]*linkState

	// record, when set, journals replayable operations (state.go); jmu
	// serialises hook invocations. replaying suppresses journaling and
	// export fan-out during Replay; it is written under structMu write
	// and read under either mode.
	jmu       sync.Mutex
	record    func(Record)
	replaying int

	// obsT, when non-nil, records spans for the notification and
	// measurement hot paths (see Options.Obs).
	obsT *obs.Tracer
}

// Options configures a SAS.
type Options struct {
	// Node is a diagnostic label: which node of the parallel machine this
	// SAS serves.
	Node int
	// Filter enables relevance filtering: activation notifications whose
	// sentence cannot match any registered question pattern are ignored
	// (not stored). The notification cost is still counted in Stats, as
	// in the paper's limitation discussion.
	Filter bool
	// Workers bounds the worker pool a Registry uses to fan out per-node
	// aggregation and remote-event application across its SASes: 0
	// selects GOMAXPROCS, 1 keeps every registry operation on the caller
	// goroutine. Individual SASes ignore it. Like the machine's engine,
	// the worker count never changes any result.
	Workers int
	// Obs attaches the observability plane: Activate, Deactivate,
	// RecordEvent and RecordSpan record spans on its tracer. Span
	// recording assumes the notifying operations run on one goroutine
	// (the session's driving goroutine, where all monitoring code
	// lives); registries wired into a concurrent export mesh should
	// leave it nil or run with Workers 1. Nil disables recording.
	Obs *obs.Plane
}

// New returns an empty SAS.
func New(opts Options) *SAS {
	s := &SAS{
		node:   opts.Node,
		filter: opts.Filter,
		obsT:   opts.Obs.Trace(),
	}
	s.carveShardColumns()
	return s
}

// initRows is the starting per-shard column capacity carved at
// construction. Kept below smallShard: most shards hold a row or two,
// and the slabs are zeroed on every SAS construction, so over-carving
// is a real startup cost; a shard that outgrows its window just
// reallocates with ordinary append growth.
const initRows = 4

// columnBuf is the embedded backing store for the initial shard column
// windows: one array per column type, part of the SAS allocation itself,
// so constructing or resetting a SAS carves all its columns without
// touching the allocator.
type columnBuf struct {
	handles [numShards * initRows]nv.SentenceHandle
	verbs   [numShards * initRows]nv.VerbHandle
	sents   [numShards * initRows]*nv.Sentence
	since   [numShards * initRows]vtime.Time
	depth   [numShards * initRows]int32
	origin  [numShards * initRows]*ReliableLink
}

// carveShardColumns seeds every shard's columns with a capacity-initRows
// window carved from the SAS's embedded column buffer. The buffer is
// zeroed first, which both drops any old rows' sentence and link
// pointers and restores the windows after a reset. Windows are carved
// with full capacity ([lo:lo:hi]), so a shard that outgrows its window
// reallocates its columns onto the heap with ordinary append growth and
// never writes into a sibling's window.
func (s *SAS) carveShardColumns() {
	b := &s.colBuf
	*b = columnBuf{}
	for i := range s.shards {
		sh := &s.shards[i]
		lo, hi := i*initRows, (i+1)*initRows
		sh.handles = b.handles[lo:lo:hi]
		sh.verbs = b.verbs[lo:lo:hi]
		sh.sents = b.sents[lo:lo:hi]
		sh.since = b.since[lo:lo:hi]
		sh.depth = b.depth[lo:lo:hi]
		sh.origin = b.origin[lo:lo:hi]
	}
}

// Node returns the node label.
func (s *SAS) Node() int { return s.node }

// shardOf picks the row shard for a sentence: the first noun handle,
// falling back to the verb handle for noun-less sentences (precomputed
// at intern time as the shard key).
func (s *SAS) shardOf(sn *nv.Sentence) *shard {
	return &s.shards[nv.ShardKeyOf(sn)%numShards]
}

// qstate returns the state of a registered question, or nil.
// Callers hold structMu (either mode).
func (s *SAS) qstate(id QuestionID) *questionState {
	if id >= 0 && int(id) < len(s.qstates) {
		return s.qstates[id]
	}
	return nil
}

// AddQuestion registers a performance question and returns its handle.
// In the paper's usage the asking of performance questions is deferred
// until run time; adding and removing questions while sentences are active
// is fully supported — a newly added question starts unsatisfied and is
// immediately evaluated against the current active set.
func (s *SAS) AddQuestion(q Question) (QuestionID, error) {
	return s.addQuestion(q, nil)
}

// addQuestion registers q, reusing a pre-compiled matching state when the
// caller (a Registry fanning one question out to every node) provides
// one.
func (s *SAS) addQuestion(q Question, cq *compiledQuestion) (QuestionID, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	s.structMu.Lock()
	defer s.structMu.Unlock()
	id := s.nextID
	s.nextID++
	st := newQuestionState(id, q, cq)
	if int(id) >= len(s.qstates) {
		// Grow with slack in one shot; trailing slots are the same nil
		// holes a removed question leaves, which every reader skips.
		n := 2 * (int(id) + 1)
		if n < 8 {
			n = 8
		}
		ns := make([]*questionState, n)
		copy(ns, s.qstates)
		s.qstates = ns
	}
	s.qstates[id] = st
	s.nq++
	s.indexQuestion(st)
	// Seed the per-term match counts from the current active set — one
	// batch column sweep per term — so a question asked mid-execution
	// picks up already-active sentences. MatchesEvaluated counts the
	// model-level rows×terms tests regardless of how many compares the
	// verb-column reject skipped.
	rows := 0
	for i := range s.shards {
		sh := &s.shards[i]
		rows += sh.rows()
		for j := range st.all {
			st.counts[j] += sh.countMatches(&st.all[j])
		}
	}
	s.stats.matches.Add(int64(rows) * int64(len(st.all)))
	s.recomputeGate(st, s.lastKnownTime())
	return id, nil
}

// postVerb appends id to the posting list of verb handle vh, growing the
// handle-indexed table on demand.
func (s *SAS) postVerb(vh nv.VerbHandle, id QuestionID) {
	s.byVerb = growIndex(s.byVerb, int(vh))
	s.byVerb[vh] = append(s.byVerb[vh], id)
}

// postNoun appends id to the posting list of noun handle nh.
func (s *SAS) postNoun(nh nv.NounHandle, id QuestionID) {
	s.byNoun = growIndex(s.byNoun, int(nh))
	s.byNoun[nh] = append(s.byNoun[nh], id)
}

// growIndex extends a handle-indexed posting table so index i is
// addressable, doubling to amortise: one allocation instead of the
// append-one-nil-at-a-time ladder it replaces.
func growIndex(t [][]QuestionID, i int) [][]QuestionID {
	if i < len(t) {
		return t
	}
	n := i + 1
	if n < 2*len(t) {
		n = 2 * len(t)
	}
	// Handles are small dense interner indices; starting at 16 covers a
	// typical vocabulary in one shot instead of a 1-2-4-8 regrow ladder.
	if n < 16 {
		n = 16
	}
	nt := make([][]QuestionID, n)
	copy(nt, t)
	return nt
}

// indexQuestion posts a question under every handle its patterns name:
// concrete verbs under byVerb, wildcard-verb patterns under their first
// concrete noun, and fully wildcarded patterns in the scan-always list.
// Each posting list receives the question at most once, in ascending
// registration order.
func (s *SAS) indexQuestion(st *questionState) {
	// Stack-backed dedup scratch: term counts are tiny, so the common
	// case costs no heap allocation (append spills only past 8 handles).
	var seenVBuf [8]nv.VerbHandle
	var seenNBuf [8]nv.NounHandle
	seenV := seenVBuf[:0]
	seenN := seenNBuf[:0]
	wild := false
	for i := range st.all {
		ct := &st.all[i]
		switch {
		case !ct.anyVerb:
			if !slices.Contains(seenV, ct.vh) {
				seenV = append(seenV, ct.vh)
				s.postVerb(ct.vh, st.id)
			}
		case st.expr == nil && len(ct.nouns) > 0:
			// Noun narrowing is sound only because term-vector delivery
			// is guarded by an "event matches some term" (or trigger)
			// precondition: an event that matches an Any-verb term
			// necessarily carries the term's nouns, so the byNoun posting
			// covers every event that can be charged. Expression gates
			// have no such precondition — a satisfied expression is
			// charged by any event it is consulted for — so an Any-verb
			// term must keep the question globally visible, exactly as
			// the original single verb index did.
			if !slices.Contains(seenN, ct.nouns[0]) {
				seenN = append(seenN, ct.nouns[0])
				s.postNoun(ct.nouns[0], st.id)
			}
		default:
			if !wild {
				wild = true
				s.wildcardQ = append(s.wildcardQ, st.id)
			}
		}
	}
}

// RemoveQuestion deletes a question; its accumulated results are lost.
func (s *SAS) RemoveQuestion(id QuestionID) error {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	if s.qstate(id) == nil {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	s.qstates[id] = nil
	s.nq--
	for v := range s.byVerb {
		s.byVerb[v] = removeQID(s.byVerb[v], id)
	}
	for n := range s.byNoun {
		s.byNoun[n] = removeQID(s.byNoun[n], id)
	}
	s.wildcardQ = removeQID(s.wildcardQ, id)
	return nil
}

func removeQID(ids []QuestionID, id QuestionID) []QuestionID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Watch attaches a callback fired whenever the question's satisfied state
// flips. This implements the boolean-variable protocol of Section 6.1:
// the SAS module sets a flag to true whenever the requested array is
// active, and dynamically inserted instrumentation checks the flag before
// measuring. The callback runs with SAS locks held; it must not call
// back into the SAS.
func (s *SAS) Watch(id QuestionID, fn func(satisfied bool, at vtime.Time)) error {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	st := s.qstate(id)
	if st == nil {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	st.watch = fn
	return nil
}

// eachCandidate visits, in ascending QuestionID order without duplicates,
// every question whose patterns could match sn: the merge of the byVerb
// list for sn's verb, the byNoun lists for each of sn's nouns, and the
// wildcard list. The index is complete — a pattern matching sn is posted
// under sn's verb, one of sn's nouns, or the wildcard list — so skipping
// non-candidates never skips a potential match. Callers hold structMu
// (either mode).
func (s *SAS) eachCandidate(sn *nv.Sentence, fn func(*questionState)) {
	if s.nq == 0 {
		return
	}
	var lb [10][]QuestionID
	lists := lb[:0]
	if vh := nv.VerbHandleOf(sn); int(vh) < len(s.byVerb) {
		if l := s.byVerb[vh]; len(l) > 0 {
			lists = append(lists, l)
		}
	}
	if len(s.byNoun) > 0 {
		for _, nh := range nv.NounHandlesOf(sn) {
			if int(nh) >= len(s.byNoun) {
				continue
			}
			if l := s.byNoun[nh]; len(l) > 0 {
				lists = append(lists, l)
			}
		}
	}
	if len(s.wildcardQ) > 0 {
		lists = append(lists, s.wildcardQ)
	}
	if len(lists) == 0 {
		return
	}
	if len(lists) == 1 {
		for _, id := range lists[0] {
			if st := s.qstate(id); st != nil {
				fn(st)
			}
		}
		return
	}
	var idx [10]int
	last := QuestionID(-1)
	for {
		best := -1
		var bestID QuestionID
		for i := range lists {
			for idx[i] < len(lists[i]) && lists[i][idx[i]] == last {
				idx[i]++
			}
			if idx[i] < len(lists[i]) {
				if id := lists[i][idx[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		if best < 0 {
			return
		}
		idx[best]++
		last = bestID
		if st := s.qstate(bestID); st != nil {
			fn(st)
		}
	}
}

// relevant reports whether any registered question pattern could match
// sn. Only indexed candidates are consulted; completeness of the index
// makes the answer equal to a scan of every question.
func (s *SAS) relevant(sn *nv.Sentence) bool {
	rel := false
	s.eachCandidate(sn, func(st *questionState) {
		if rel {
			return
		}
		for i := range st.all {
			if st.all[i].matches(sn) {
				rel = true
				return
			}
		}
	})
	return rel
}

// Activate notifies the SAS that sentence sn became active at instant at.
// Nested activation of an already-active sentence increases its depth.
func (s *SAS) Activate(sn nv.Sentence, at vtime.Time) {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASActivate, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	var pending []pendingSend
	if s.journaling() {
		s.journal(Record{Kind: RecActivate, Sentence: *p, At: at})
	}
	switch {
	case s.filter && !s.relevant(p):
		s.stats.notifStored.Add(notifInc)
		s.stats.ignored.Add(1)
	default:
		sh := s.shardOf(p)
		sh.mu.Lock()
		sh.notif++
		sh.stored++
		if i := sh.find(nv.HandleOf(p)); i >= 0 {
			sh.depth[i]++
			sh.mu.Unlock()
		} else {
			sh.insert(p, at, 1, nil)
			sh.mu.Unlock()
			s.notifyQuestions(p, at, +1)
			pending = s.collectExports(p, at, true)
		}
	}
	s.structMu.RUnlock()
	dispatch(pending)
}

// Deactivate notifies the SAS that sentence sn became inactive at instant
// at. Deactivating a sentence that is not active is an error — balanced
// notification is an invariant the monitoring code must maintain.
func (s *SAS) Deactivate(sn nv.Sentence, at vtime.Time) error {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASDeactivate, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	var pending []pendingSend
	if s.journaling() {
		s.journal(Record{Kind: RecDeactivate, Sentence: *p, At: at})
	}
	sh := s.shardOf(p)
	sh.mu.Lock()
	i := sh.find(nv.HandleOf(p))
	if i < 0 {
		sh.mu.Unlock()
		s.stats.notifStored.Add(notifInc)
		filtered := s.filter && !s.relevant(p)
		if filtered {
			// A filtered sentence was never stored; its deactivation is
			// likewise ignored.
			s.stats.ignored.Add(1)
		}
		s.structMu.RUnlock()
		if filtered {
			return nil
		}
		return fmt.Errorf("sas: deactivate of inactive sentence %v", sn)
	}
	sh.notif++
	sh.stored++
	sh.depth[i]--
	if sh.depth[i] == 0 {
		sh.removeAt(i)
		sh.mu.Unlock()
		s.notifyQuestions(p, at, -1)
		pending = s.collectExports(p, at, false)
	} else {
		sh.mu.Unlock()
	}
	s.structMu.RUnlock()
	dispatch(pending)
	return nil
}

// notifyQuestions folds one insert (delta +1) or remove (delta -1)
// transition into every candidate question: the per-term match counts
// are adjusted and the gate recomputed, all without touching the active
// set. Called with structMu held (either mode) and no shard locks.
func (s *SAS) notifyQuestions(sn *nv.Sentence, at vtime.Time, delta int32) {
	s.eachCandidate(sn, func(st *questionState) {
		s.applyTransition(st, sn, delta, at)
	})
}

// applyTransition updates one candidate's match counts for a transition
// of sn and recomputes its gate.
func (s *SAS) applyTransition(st *questionState, sn *nv.Sentence, delta int32, at vtime.Time) {
	s.stats.evaluations.Add(1)
	s.stats.matches.Add(int64(len(st.all)))
	st.mu.Lock()
	for i := range st.all {
		if st.all[i].matches(sn) {
			st.counts[i] += delta
		}
	}
	s.updateGateLocked(st, at)
	st.mu.Unlock()
}

// recomputeGate re-derives a question's gate from its current counts
// (after registration or a restore).
func (s *SAS) recomputeGate(st *questionState, at vtime.Time) {
	s.stats.evaluations.Add(1)
	st.mu.Lock()
	s.updateGateLocked(st, at)
	st.mu.Unlock()
}

func (s *SAS) updateGateLocked(st *questionState, at vtime.Time) {
	now := s.gate(st, nil)
	if now == st.satisfied {
		return
	}
	st.satisfied = now
	if now {
		st.since = at
	} else {
		st.satTime += at.Sub(st.since)
	}
	if st.watch != nil {
		st.watch(now, at)
	}
}

// evalCtx carries a measured event through gate evaluation: the event
// sentence is treated as active, and match tests are tallied (added to
// Stats once per operation, not per test).
type evalCtx struct {
	extra   *nv.Sentence
	matches int64
}

func (c *evalCtx) matchExtra(ct *cterm) bool {
	c.matches++
	return ct.matches(c.extra)
}

// gate computes a question's satisfied state from its match counts; a
// non-nil ctx additionally treats the event sentence as active. The
// question lock is held. Ordered questions scan the active set (they
// need activation instants), everything else is count reads.
func (s *SAS) gate(st *questionState, c *evalCtx) bool {
	if st.expr != nil {
		return s.gateExpr(st, st.expr, c)
	}
	if st.q.Ordered {
		return s.evalOrdered(st, c)
	}
	for i := range st.all {
		if st.counts[i] > 0 {
			continue
		}
		if c != nil && c.matchExtra(&st.all[i]) {
			continue
		}
		return false
	}
	return true
}

func (s *SAS) gateExpr(st *questionState, e *cexpr, c *evalCtx) bool {
	switch e.op {
	case OpTerm:
		if st.counts[e.leaf] > 0 {
			return true
		}
		return c != nil && c.matchExtra(&st.all[e.leaf])
	case OpAnd:
		for _, k := range e.kids {
			if !s.gateExpr(st, k, c) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.kids {
			if s.gateExpr(st, k, c) {
				return true
			}
		}
		return false
	case OpNot:
		return !s.gateExpr(st, e.kids[0], c)
	default:
		return false
	}
}

// evalOrdered checks the ordered reading: each term must be matched by an
// active sentence whose activation time is no earlier than the match of
// the preceding term — the nesting discipline of a call stack. The extra
// (trigger) sentence, when present, is only eligible for the final term
// and is considered activated "now" (no earlier than everything else).
//
// Each term is one batch column sweep per shard: the verb column rejects
// rows on an integer compare, and only verb hits pay the noun test and
// the since comparison. c.matches still counts every row visited — the
// model-level test count — so statistics do not depend on the sweep's
// short-circuiting. Shards are read-locked one at a time; the caller
// holds no shard locks.
func (s *SAS) evalOrdered(st *questionState, c *evalCtx) bool {
	prev := vtime.Time(-1 << 62)
	for i := range st.all {
		ct := &st.all[i]
		last := i == len(st.all)-1
		best := vtime.Time(-1)
		found := false
		for j := range s.shards {
			sh := &s.shards[j]
			sh.mu.RLock()
			if c != nil {
				c.matches += int64(sh.rows())
			}
			if !ct.anyVerb {
				for k, vh := range sh.verbs {
					if vh != ct.vh || !ct.nounsMatch(sh.sents[k]) || sh.since[k].Before(prev) {
						continue
					}
					if !found || sh.since[k].Before(best) {
						best = sh.since[k]
						found = true
					}
				}
			} else {
				for k, sn := range sh.sents {
					if !ct.nounsMatch(sn) || sh.since[k].Before(prev) {
						continue
					}
					if !found || sh.since[k].Before(best) {
						best = sh.since[k]
						found = true
					}
				}
			}
			sh.mu.RUnlock()
		}
		if !found && last && c != nil && c.matchExtra(ct) {
			// The trigger fires after every stored activation.
			return true
		}
		if !found {
			return false
		}
		prev = best
	}
	return true
}

// fires decides whether a measured event for the context's sentence
// satisfies question st. For unordered questions the event sentence must
// match some term and the whole question must hold with the event treated
// as active. For ordered questions the event must match the final
// (measured) term and the earlier terms must be satisfied in activation
// order. The question lock is held.
func (s *SAS) fires(st *questionState, c *evalCtx) bool {
	if st.trig != nil {
		if !c.matchExtra(st.trig) {
			return false
		}
		return s.gate(st, c)
	}
	if st.expr == nil {
		matchesSome := false
		for i := range st.all {
			if c.matchExtra(&st.all[i]) {
				matchesSome = true
				break
			}
		}
		if !matchesSome {
			return false
		}
	}
	return s.gate(st, c)
}

// RecordEvent charges an instantaneous measured event — the execution of
// low-level sentence sn at instant at — to every question the event
// satisfies, adding value to each question's counter. It returns the
// number of questions charged.
//
// This is the paper's central measurement act: "when a low-level sentence
// is to be measured, monitoring code queries the SAS to determine what
// sentences are currently active and thereby relates low-level sentences
// to active sentences at higher levels."
func (s *SAS) RecordEvent(sn nv.Sentence, at vtime.Time, value float64) int {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASMatch, p.Key(), s.node, at)
		defer s.obsT.End(ref, at)
	}
	s.structMu.RLock()
	if s.journaling() {
		s.journal(Record{Kind: RecEvent, Sentence: *p, At: at, Value: value})
	}
	s.stats.events.Add(1)
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.count += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	s.structMu.RUnlock()
	return hits
}

// RecordSpan charges a measured duration — low-level sentence sn active
// over [from, to) — to every question the event satisfies, adding the
// span to each question's event-time accumulator.
func (s *SAS) RecordSpan(sn nv.Sentence, from, to vtime.Time, value vtime.Duration) int {
	p := nv.InternedPtr(&sn)
	if s.obsT != nil {
		ref := s.obsT.Begin(obs.StageSASMatch, p.Key(), s.node, from)
		defer s.obsT.End(ref, to)
	}
	s.structMu.RLock()
	if s.journaling() {
		s.journal(Record{Kind: RecSpan, Sentence: *p, At: to, From: from, Dur: value})
	}
	s.stats.events.Add(1)
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.evTime += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	s.structMu.RUnlock()
	return hits
}

// Satisfied reports the current gate state of a question.
func (s *SAS) Satisfied(id QuestionID) bool {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st := s.qstate(id)
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.satisfied
}

// Result returns the measurement state of a question as of instant now
// (a currently-satisfied gate timer includes the open interval up to now).
func (s *SAS) Result(id QuestionID, now vtime.Time) (Result, error) {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st := s.qstate(id)
	if st == nil {
		return Result{}, fmt.Errorf("sas: unknown question %d", id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	r := Result{
		Question:      st.q,
		Count:         st.count,
		EventTime:     st.evTime,
		SatisfiedTime: st.satTime,
		Satisfied:     st.satisfied,
	}
	if st.satisfied && now.After(st.since) {
		r.SatisfiedTime += now.Sub(st.since)
	}
	return r, nil
}

// Snapshot returns the active sentences sorted by activation time then
// key — the Figure 5 view of the SAS. It takes structMu in write mode:
// owning the structure outright is cheaper than read-locking every shard,
// and snapshots are rare next to notifications.
func (s *SAS) Snapshot() []ActiveSentence {
	s.structMu.Lock()
	n := 0
	for i := range s.shards {
		n += s.shards[i].rows()
	}
	out := make([]ActiveSentence, 0, n)
	for i := range s.shards {
		sh := &s.shards[i]
		for j := range sh.sents {
			out = append(out, ActiveSentence{Sentence: *sh.sents[j], Since: sh.since[j], Depth: int(sh.depth[j])})
		}
	}
	s.structMu.Unlock()
	sortSnapshot(out)
	return out
}

func sortSnapshot(out []ActiveSentence) {
	sorted := true
	for i := 1; i < len(out); i++ {
		if out[i].Since < out[i-1].Since ||
			(out[i].Since == out[i-1].Since && out[i].Sentence.Key() < out[i-1].Sentence.Key()) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(out, func(a, b ActiveSentence) int {
		if a.Since != b.Since {
			if a.Since < b.Since {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Sentence.Key(), b.Sentence.Key())
	})
}

// Active reports whether sn is currently active.
func (s *SAS) Active(sn nv.Sentence) bool {
	p, known := nv.LookupInternedPtr(&sn)
	if !known {
		// Entries are always interned; a sentence the intern table has
		// never seen cannot be active.
		return false
	}
	s.structMu.RLock()
	sh := s.shardOf(p)
	sh.mu.RLock()
	ok := sh.find(nv.HandleOf(p)) >= 0
	sh.mu.RUnlock()
	s.structMu.RUnlock()
	return ok
}

// Size returns the number of distinct active sentences.
func (s *SAS) Size() int {
	s.structMu.Lock()
	n := 0
	for i := range s.shards {
		n += s.shards[i].rows()
	}
	s.structMu.Unlock()
	return n
}

// Stats returns a copy of the notification statistics. It takes structMu
// only in read mode, then each shard's lock in read mode — the shard
// counters are plain ints bumped inside the shard critical sections, so
// the read lock is what keeps the snapshot from tearing.
func (s *SAS) Stats() Stats {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	return s.statsSnapshot()
}

// statsSnapshot merges the atomic counters with the shard-local ones.
// Called with structMu held in either mode.
func (s *SAS) statsSnapshot() Stats {
	st := s.stats.snapshot()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Notifications += int(sh.notif)
		st.Stored += int(sh.stored)
		sh.mu.RUnlock()
	}
	return st
}

// IndexStats describes the question index: how many questions are
// registered and how the posting lists distribute them. Exposed for the
// observability plane's metrics.
type IndexStats struct {
	Questions        int
	VerbPostings     int
	NounPostings     int
	WildcardPostings int
}

// Index returns the current question-index statistics.
func (s *SAS) Index() IndexStats {
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	st := IndexStats{Questions: s.nq, WildcardPostings: len(s.wildcardQ)}
	for _, ids := range s.byVerb {
		st.VerbPostings += len(ids)
	}
	for _, ids := range s.byNoun {
		st.NounPostings += len(ids)
	}
	return st
}

// ShardSizes returns the number of active sentences held by each shard —
// the occupancy distribution behind shard contention.
func (s *SAS) ShardSizes() [numShards]int {
	var out [numShards]int
	s.structMu.RLock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = sh.rows()
		sh.mu.RUnlock()
	}
	s.structMu.RUnlock()
	return out
}

// ColumnStats describes the columnar active set of one SAS: total live
// rows, total column capacity (rows the shards can hold without
// growing), and the cumulative count of swap-remove compactions. Exposed
// for the observability plane's nvmap_sas_column_* metrics.
type ColumnStats struct {
	Rows        int
	Capacity    int
	Compactions int64
}

// Columns returns the current columnar-storage statistics.
func (s *SAS) Columns() ColumnStats {
	var out ColumnStats
	s.structMu.RLock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out.Rows += len(sh.handles)
		out.Capacity += cap(sh.handles)
		out.Compactions += sh.compact
		sh.mu.RUnlock()
	}
	s.structMu.RUnlock()
	return out
}

// lastKnownTime returns a best-effort "now" for evaluating a question
// added mid-run: the latest activation time seen. Called with structMu in
// write mode.
func (s *SAS) lastKnownTime() vtime.Time {
	var t vtime.Time
	for i := range s.shards {
		sh := &s.shards[i]
		for _, since := range sh.since {
			if since.After(t) {
				t = since
			}
		}
	}
	return t
}

// FormatSnapshot renders the snapshot the way Figure 5 prints it, one
// active sentence per line prefixed with its level of abstraction, e.g.
//
//	HPF:  line #1 executes
//	Base: Processor sends a message
//
// Levels and display names come from the registry; sentences whose verb
// is unknown to the registry are printed with a "?" level.
func FormatSnapshot(snap []ActiveSentence, reg *nv.Registry) string {
	var b []byte
	for _, a := range snap {
		level := "?"
		if v, ok := reg.Verb(a.Sentence.Verb); ok {
			level = string(v.Level)
		}
		b = append(b, fmt.Sprintf("%-6s %v\n", level+":", a.Sentence)...)
	}
	return string(b)
}
