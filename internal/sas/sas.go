// Package sas implements the Set of Active Sentences from Section 4.2 of
// the paper: a run-time data structure that records the current execution
// state of every level of abstraction, the way a procedure call stack
// keeps track of active functions — except that the SAS may record *any*
// active sentence, regardless of whether it could be discovered by
// examining the call stack.
//
// Whenever a sentence at any level of abstraction becomes active, the
// monitoring code notifies the SAS; when it becomes inactive it is
// removed. Any two sentences contained in the SAS concurrently are
// considered to dynamically map to one another. Performance questions
// (vectors of sentence patterns, Figure 6) are registered with the SAS and
// measurements are made only while all patterns of a question are
// satisfied by concurrently active sentences.
//
// The package also implements the discussion items around the core
// structure: relevance filtering (ignore notifications no question could
// ever use), per-node replication with cross-node sentence forwarding for
// distributed memory (Section 4.2.3), and shadow contexts, our remedy for
// the asynchronous-activation limitation of Section 4.2.4 / Figure 7.
package sas

import (
	"fmt"
	"sort"
	"sync"

	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// QuestionID identifies a registered question within one SAS.
type QuestionID int

// ActiveSentence is one entry of a SAS snapshot.
type ActiveSentence struct {
	Sentence nv.Sentence
	// Since is the activation instant of the current (outermost) nesting.
	Since vtime.Time
	// Depth counts nested activations (a recursive construct may activate
	// the same sentence again before deactivating it).
	Depth int
}

// Stats counts notification traffic, for the Section 4.2.4 limitation-2
// analysis: activity notifications that are ignored by the SAS still cost
// their delivery, and relevance filtering determines how many are stored.
type Stats struct {
	Notifications int // activation+deactivation notifications received
	Ignored       int // dropped by the relevance filter
	Stored        int // applied to the active set
	Evaluations   int // question re-evaluations triggered
	Events        int // RecordEvent/RecordSpan calls
}

// Result is the measurement state of one question.
type Result struct {
	Question Question
	// Count accumulates RecordEvent values charged to the question.
	Count float64
	// EventTime accumulates RecordSpan durations charged to the question.
	EventTime vtime.Duration
	// SatisfiedTime accumulates virtual time during which the question
	// was satisfied (the gate-timer reading).
	SatisfiedTime vtime.Duration
	// Satisfied is the current gate state.
	Satisfied bool
}

type questionState struct {
	id        QuestionID
	q         Question
	satisfied bool
	since     vtime.Time // when satisfied last became true
	satTime   vtime.Duration
	count     float64
	evTime    vtime.Duration
	watch     func(bool, vtime.Time)
}

type entry struct {
	sentence nv.Sentence
	since    vtime.Time
	depth    int
	// origin is the ReliableLink that created this entry, nil for local
	// activations. A reliable deactivation or resync only touches the
	// entries its own link created.
	origin *ReliableLink
}

// SAS is one Set of Active Sentences. On a distributed-memory system each
// node holds its own SAS (see Registry); on shared memory a single SAS may
// be shared by several goroutines — all methods are safe for concurrent
// use, at the synchronisation cost the paper warns about.
type SAS struct {
	mu sync.Mutex

	node   int
	filter bool

	active map[string]*entry
	// byVerb indexes question IDs by the verbs their terms mention;
	// wildcardQ holds questions with wildcard-verb terms.
	byVerb    map[nv.VerbID][]QuestionID
	wildcardQ []QuestionID
	questions map[QuestionID]*questionState
	nextID    QuestionID

	stats Stats

	// remotes receive activation events this SAS exports (Section 4.2.3).
	exports []exportRule
	// links holds receiver-side state (expected sequence number, gap
	// buffer) for each ReliableLink delivering into this SAS.
	links map[*ReliableLink]*linkState

	// record, when set, journals replayable operations (state.go);
	// replaying suppresses journaling and export fan-out during Replay.
	record    func(Record)
	replaying int
}

// Options configures a SAS.
type Options struct {
	// Node is a diagnostic label: which node of the parallel machine this
	// SAS serves.
	Node int
	// Filter enables relevance filtering: activation notifications whose
	// sentence cannot match any registered question pattern are ignored
	// (not stored). The notification cost is still counted in Stats, as
	// in the paper's limitation discussion.
	Filter bool
}

// New returns an empty SAS.
func New(opts Options) *SAS {
	return &SAS{
		node:      opts.Node,
		filter:    opts.Filter,
		active:    make(map[string]*entry),
		byVerb:    make(map[nv.VerbID][]QuestionID),
		questions: make(map[QuestionID]*questionState),
	}
}

// Node returns the node label.
func (s *SAS) Node() int { return s.node }

// AddQuestion registers a performance question and returns its handle.
// In the paper's usage the asking of performance questions is deferred
// until run time; adding and removing questions while sentences are active
// is fully supported — a newly added question starts unsatisfied and is
// immediately evaluated against the current active set.
func (s *SAS) AddQuestion(q Question) (QuestionID, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	st := &questionState{id: id, q: q}
	s.questions[id] = st
	s.indexQuestion(st)
	// Evaluate against the current active set so a question asked
	// mid-execution picks up already-active sentences.
	s.reevaluateLocked(st, s.lastKnownTimeLocked())
	return id, nil
}

func (s *SAS) indexQuestion(st *questionState) {
	seen := map[nv.VerbID]bool{}
	for _, t := range st.q.allTerms() {
		if t.Verb == Any {
			s.wildcardQ = append(s.wildcardQ, st.id)
			continue
		}
		if !seen[t.Verb] {
			seen[t.Verb] = true
			s.byVerb[t.Verb] = append(s.byVerb[t.Verb], st.id)
		}
	}
}

// RemoveQuestion deletes a question; its accumulated results are lost.
func (s *SAS) RemoveQuestion(id QuestionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.questions[id]; !ok {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	delete(s.questions, id)
	for v, ids := range s.byVerb {
		s.byVerb[v] = removeQID(ids, id)
		if len(s.byVerb[v]) == 0 {
			delete(s.byVerb, v)
		}
	}
	s.wildcardQ = removeQID(s.wildcardQ, id)
	return nil
}

func removeQID(ids []QuestionID, id QuestionID) []QuestionID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Watch attaches a callback fired whenever the question's satisfied state
// flips. This implements the boolean-variable protocol of Section 6.1:
// the SAS module sets a flag to true whenever the requested array is
// active, and dynamically inserted instrumentation checks the flag before
// measuring. The callback runs with the SAS lock held; it must not call
// back into the SAS.
func (s *SAS) Watch(id QuestionID, fn func(satisfied bool, at vtime.Time)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.questions[id]
	if !ok {
		return fmt.Errorf("sas: unknown question %d", id)
	}
	st.watch = fn
	return nil
}

// relevant reports whether any registered question pattern could match sn.
func (s *SAS) relevantLocked(sn nv.Sentence) bool {
	for _, st := range s.questions {
		for _, t := range st.q.allTerms() {
			if t.Matches(sn) {
				return true
			}
		}
	}
	return false
}

// Activate notifies the SAS that sentence sn became active at instant at.
// Nested activation of an already-active sentence increases its depth.
func (s *SAS) Activate(sn nv.Sentence, at vtime.Time) {
	s.mu.Lock()
	var pending []pendingSend
	s.journalLocked(Record{Kind: RecActivate, Sentence: sn, At: at})
	s.stats.Notifications++
	switch {
	case s.filter && !s.relevantLocked(sn):
		s.stats.Ignored++
	default:
		s.stats.Stored++
		key := sn.Key()
		if e, ok := s.active[key]; ok {
			e.depth++
		} else {
			s.active[key] = &entry{sentence: sn, since: at, depth: 1}
			s.notifyQuestionsLocked(sn, at)
			pending = s.collectExportsLocked(sn, at)
		}
	}
	s.mu.Unlock()
	dispatch(pending)
}

// Deactivate notifies the SAS that sentence sn became inactive at instant
// at. Deactivating a sentence that is not active is an error — balanced
// notification is an invariant the monitoring code must maintain.
func (s *SAS) Deactivate(sn nv.Sentence, at vtime.Time) error {
	s.mu.Lock()
	var pending []pendingSend
	s.journalLocked(Record{Kind: RecDeactivate, Sentence: sn, At: at})
	s.stats.Notifications++
	key := sn.Key()
	e, ok := s.active[key]
	if !ok {
		filtered := s.filter && !s.relevantLocked(sn)
		if filtered {
			// A filtered sentence was never stored; its deactivation is
			// likewise ignored.
			s.stats.Ignored++
		}
		s.mu.Unlock()
		if filtered {
			return nil
		}
		return fmt.Errorf("sas: deactivate of inactive sentence %v", sn)
	}
	s.stats.Stored++
	e.depth--
	if e.depth == 0 {
		delete(s.active, key)
		s.notifyQuestionsLocked(sn, at)
		pending = s.collectExportsLocked(sn, at)
	}
	s.mu.Unlock()
	dispatch(pending)
	return nil
}

// notifyQuestionsLocked re-evaluates every question that mentions the
// sentence's verb (or a wildcard verb).
func (s *SAS) notifyQuestionsLocked(sn nv.Sentence, at vtime.Time) {
	for _, id := range s.byVerb[sn.Verb] {
		if st, ok := s.questions[id]; ok {
			s.reevaluateLocked(st, at)
		}
	}
	for _, id := range s.wildcardQ {
		if st, ok := s.questions[id]; ok {
			s.reevaluateLocked(st, at)
		}
	}
}

func (s *SAS) reevaluateLocked(st *questionState, at vtime.Time) {
	s.stats.Evaluations++
	now := s.evalLocked(st.q, nv.Sentence{}, false)
	if now == st.satisfied {
		return
	}
	st.satisfied = now
	if now {
		st.since = at
	} else {
		st.satTime += at.Sub(st.since)
	}
	if st.watch != nil {
		st.watch(now, at)
	}
}

// evalLocked evaluates a question against the active set. If extra is
// non-zero (hasExtra), it is treated as active in addition to the stored
// set — this lets RecordEvent measure a low-level sentence that is
// instantaneous and never explicitly activated.
func (s *SAS) evalLocked(q Question, extra nv.Sentence, hasExtra bool) bool {
	match := func(t Term) bool {
		if hasExtra && t.Matches(extra) {
			return true
		}
		for _, e := range s.active {
			if t.Matches(e.sentence) {
				return true
			}
		}
		return false
	}
	if q.Expr != nil {
		return s.evalExpr(q.Expr, match)
	}
	if q.Ordered {
		return s.evalOrderedLocked(q, extra, hasExtra)
	}
	for _, t := range q.Terms {
		if !match(t) {
			return false
		}
	}
	return true
}

func (s *SAS) evalExpr(e *Expr, match func(Term) bool) bool {
	switch e.Op {
	case OpTerm:
		return match(e.Term)
	case OpAnd:
		for _, k := range e.Kids {
			if !s.evalExpr(k, match) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if s.evalExpr(k, match) {
				return true
			}
		}
		return false
	case OpNot:
		return !s.evalExpr(e.Kids[0], match)
	default:
		return false
	}
}

// evalOrderedLocked checks the ordered reading: each term must be matched
// by an active sentence whose activation time is no earlier than the
// match of the preceding term — the nesting discipline of a call stack.
// The extra (trigger) sentence, when present, is only eligible for the
// final term and is considered activated "now" (no earlier than
// everything else).
func (s *SAS) evalOrderedLocked(q Question, extra nv.Sentence, hasExtra bool) bool {
	prev := vtime.Time(-1 << 62)
	for i, t := range q.Terms {
		last := i == len(q.Terms)-1
		best := vtime.Time(-1)
		found := false
		for _, e := range s.active {
			if !t.Matches(e.sentence) || e.since.Before(prev) {
				continue
			}
			if !found || e.since.Before(best) {
				best = e.since
				found = true
			}
		}
		if !found && last && hasExtra && t.Matches(extra) {
			// The trigger fires after every stored activation.
			return true
		}
		if !found {
			return false
		}
		prev = best
	}
	return true
}

// RecordEvent charges an instantaneous measured event — the execution of
// low-level sentence sn at instant at — to every question the event
// satisfies, adding value to each question's counter. It returns the
// number of questions charged.
//
// This is the paper's central measurement act: "when a low-level sentence
// is to be measured, monitoring code queries the SAS to determine what
// sentences are currently active and thereby relates low-level sentences
// to active sentences at higher levels."
func (s *SAS) RecordEvent(sn nv.Sentence, at vtime.Time, value float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(Record{Kind: RecEvent, Sentence: sn, At: at, Value: value})
	s.stats.Events++
	hits := 0
	for _, st := range s.candidatesLocked(sn) {
		if s.questionFiresLocked(st, sn) {
			st.count += value
			hits++
		}
	}
	return hits
}

// RecordSpan charges a measured duration — low-level sentence sn active
// over [from, to) — to every question the event satisfies, adding the
// span to each question's event-time accumulator.
func (s *SAS) RecordSpan(sn nv.Sentence, from, to vtime.Time, value vtime.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalLocked(Record{Kind: RecSpan, Sentence: sn, At: to, From: from, Dur: value})
	s.stats.Events++
	hits := 0
	for _, st := range s.candidatesLocked(sn) {
		if s.questionFiresLocked(st, sn) {
			st.evTime += value
			hits++
		}
	}
	return hits
}

// candidatesLocked returns the questions whose patterns mention sn's verb
// or a wildcard, in registration order (deterministic).
func (s *SAS) candidatesLocked(sn nv.Sentence) []*questionState {
	ids := append(append([]QuestionID(nil), s.byVerb[sn.Verb]...), s.wildcardQ...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*questionState, 0, len(ids))
	var last QuestionID = -1
	for _, id := range ids {
		if id == last {
			continue
		}
		last = id
		if st, ok := s.questions[id]; ok {
			out = append(out, st)
		}
	}
	return out
}

// questionFiresLocked decides whether a measured event for sn satisfies
// question st. For unordered questions the event sentence must match some
// term and the whole question must hold with the event treated as active.
// For ordered questions the event must match the final (measured) term
// and the earlier terms must be satisfied in activation order.
func (s *SAS) questionFiresLocked(st *questionState, sn nv.Sentence) bool {
	if trig := st.q.trigger(); trig != nil {
		if !trig.Matches(sn) {
			return false
		}
		return s.evalLocked(st.q, sn, true)
	}
	if st.q.Expr == nil {
		matchesSome := false
		for _, t := range st.q.Terms {
			if t.Matches(sn) {
				matchesSome = true
				break
			}
		}
		if !matchesSome {
			return false
		}
	}
	return s.evalLocked(st.q, sn, true)
}

// Satisfied reports the current gate state of a question.
func (s *SAS) Satisfied(id QuestionID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.questions[id]
	return ok && st.satisfied
}

// Result returns the measurement state of a question as of instant now
// (a currently-satisfied gate timer includes the open interval up to now).
func (s *SAS) Result(id QuestionID, now vtime.Time) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.questions[id]
	if !ok {
		return Result{}, fmt.Errorf("sas: unknown question %d", id)
	}
	r := Result{
		Question:      st.q,
		Count:         st.count,
		EventTime:     st.evTime,
		SatisfiedTime: st.satTime,
		Satisfied:     st.satisfied,
	}
	if st.satisfied && now.After(st.since) {
		r.SatisfiedTime += now.Sub(st.since)
	}
	return r, nil
}

// Snapshot returns the active sentences sorted by activation time then
// key — the Figure 5 view of the SAS.
func (s *SAS) Snapshot() []ActiveSentence {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ActiveSentence, 0, len(s.active))
	for _, e := range s.active {
		out = append(out, ActiveSentence{Sentence: e.sentence, Since: e.since, Depth: e.depth})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Since != out[j].Since {
			return out[i].Since < out[j].Since
		}
		return out[i].Sentence.Key() < out[j].Sentence.Key()
	})
	return out
}

// Active reports whether sn is currently active.
func (s *SAS) Active(sn nv.Sentence) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.active[sn.Key()]
	return ok
}

// Size returns the number of distinct active sentences.
func (s *SAS) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// Stats returns a copy of the notification statistics.
func (s *SAS) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// lastKnownTimeLocked returns a best-effort "now" for evaluating a
// question added mid-run: the latest activation time seen.
func (s *SAS) lastKnownTimeLocked() vtime.Time {
	var t vtime.Time
	for _, e := range s.active {
		if e.since.After(t) {
			t = e.since
		}
	}
	return t
}

// FormatSnapshot renders the snapshot the way Figure 5 prints it, one
// active sentence per line prefixed with its level of abstraction, e.g.
//
//	HPF:  line #1 executes
//	Base: Processor sends a message
//
// Levels and display names come from the registry; sentences whose verb
// is unknown to the registry are printed with a "?" level.
func FormatSnapshot(snap []ActiveSentence, reg *nv.Registry) string {
	var b []byte
	for _, a := range snap {
		level := "?"
		if v, ok := reg.Verb(a.Sentence.Verb); ok {
			level = string(v.Level)
		}
		b = append(b, fmt.Sprintf("%-6s %v\n", level+":", a.Sentence)...)
	}
	return string(b)
}
