package sas

import (
	"testing"

	"nvmap/internal/vtime"
)

func TestRegistryCreatesPerNodeSASes(t *testing.T) {
	r := NewRegistry(Options{Filter: true})
	s0 := r.Node(0)
	s1 := r.Node(1)
	if s0 == s1 {
		t.Fatal("nodes share a SAS")
	}
	if r.Node(0) != s0 {
		t.Fatal("Node not idempotent")
	}
	if s1.Node() != 1 {
		t.Fatalf("node label = %d", s1.Node())
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0].Node() != 0 || nodes[1].Node() != 1 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

// Figure 6's questions "can be answered without sharing any information
// between nodes": register per-node, aggregate at the tool.
func TestAddQuestionAllAndAggregate(t *testing.T) {
	r := NewRegistry(Options{})
	for n := 0; n < 4; n++ {
		r.Node(n)
	}
	ids, err := r.AddQuestionAll(Q("sends during sumA", T("Sum", "A"), T("Send", Any)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	// Each node sums A locally and sends a different number of messages.
	for n := 0; n < 4; n++ {
		s := r.Node(n)
		s.Activate(sent("Sum", "A"), 0)
		for i := 0; i <= n; i++ {
			s.RecordEvent(sent("Send", "p"), vtime.Time(10+i), 1)
		}
		if err := s.Deactivate(sent("Sum", "A"), 100); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := r.AggregateResult(ids, 200)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 1+2+3+4 {
		t.Fatalf("aggregate Count = %g, want 10", agg.Count)
	}
	// The Send term only ever occurs as instantaneous events, so the
	// conjunction gate never opens and satisfied-time stays zero.
	if agg.SatisfiedTime != 0 {
		t.Fatalf("aggregate SatisfiedTime = %v, want 0", agg.SatisfiedTime)
	}

	sumIDs, err := r.AddQuestionAll(Q("sum active", T("Sum", "A")))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		s := r.Node(n)
		s.Activate(sent("Sum", "A"), 1000)
		if err := s.Deactivate(sent("Sum", "A"), 1100); err != nil {
			t.Fatal(err)
		}
	}
	sumAgg, err := r.AggregateResult(sumIDs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if sumAgg.SatisfiedTime != 4*100 {
		t.Fatalf("gate SatisfiedTime = %v, want 400", sumAgg.SatisfiedTime)
	}
	st := r.TotalStats()
	if st.Notifications != 16 || st.Events != 10 {
		t.Fatalf("TotalStats = %+v", st)
	}
}

// Section 4.2.3's client/server example: "the client's SAS would need to
// send one sentence (client query is active) to the server's SAS whenever
// that sentence became active or inactive."
func TestCrossNodeExport(t *testing.T) {
	r := NewRegistry(Options{})
	client := r.Node(0)
	server := r.Node(1)

	// The server-side question: server reads from disk while client query
	// #7 is active.
	qid, err := server.AddQuestion(Q("reads for query7", T("QueryActive", "query7"), T("DiskRead", Any)))
	if err != nil {
		t.Fatal(err)
	}
	// Client exports query-activity sentences to the server.
	if err := client.Export(T("QueryActive", Any), server, SyncTransport{}); err != nil {
		t.Fatal(err)
	}

	// Server reads before the query: not charged.
	if hits := server.RecordEvent(sent("DiskRead", "disk0"), 5, 1); hits != 0 {
		t.Fatal("read before query charged")
	}

	client.Activate(sent("QueryActive", "query7"), 10)
	if !server.Active(sent("QueryActive", "query7")) {
		t.Fatal("exported activation did not reach server SAS")
	}
	if hits := server.RecordEvent(sent("DiskRead", "disk0"), 20, 1); hits != 1 {
		t.Fatal("read during query not charged")
	}
	if err := client.Deactivate(sent("QueryActive", "query7"), 30); err != nil {
		t.Fatal(err)
	}
	if server.Active(sent("QueryActive", "query7")) {
		t.Fatal("exported deactivation did not reach server SAS")
	}
	if hits := server.RecordEvent(sent("DiskRead", "disk0"), 40, 1); hits != 0 {
		t.Fatal("read after query charged")
	}

	res, _ := server.Result(qid, 100)
	if res.Count != 1 {
		t.Fatalf("Count = %g", res.Count)
	}
	// A different query on the client is exported but matches nothing.
	client.Activate(sent("QueryActive", "query9"), 50)
	if hits := server.RecordEvent(sent("DiskRead", "disk0"), 60, 1); hits != 0 {
		t.Fatal("wrong query charged")
	}
}

func TestExportValidation(t *testing.T) {
	s := New(Options{})
	if err := s.Export(T("V"), nil, nil); err == nil {
		t.Fatal("nil destination accepted")
	}
	if err := s.Export(T("V"), s, nil); err == nil {
		t.Fatal("self export accepted")
	}
}

func TestExportOnlyMatchingSentences(t *testing.T) {
	a := New(Options{Node: 0})
	b := New(Options{Node: 1})
	if err := a.Export(T("QueryActive", Any), b, nil); err != nil {
		t.Fatal(err)
	}
	a.Activate(sent("Compute", "x"), 1) // does not match the export rule
	if b.Size() != 0 {
		t.Fatal("non-matching sentence exported")
	}
	a.Activate(sent("QueryActive", "q"), 2)
	if b.Size() != 1 {
		t.Fatal("matching sentence not exported")
	}
}

func TestApplyRemoteUnknownDeactivationIgnored(t *testing.T) {
	s := New(Options{})
	// Remote deactivation for a sentence never seen must not error or
	// panic: remote traffic is advisory.
	s.ApplyRemote(Event{Sentence: sent("QueryActive", "q"), Active: false, At: 5})
	if s.Size() != 0 {
		t.Fatal("ghost remote deactivation changed state")
	}
}

func TestMutualExportNoDeadlock(t *testing.T) {
	a := New(Options{Node: 0})
	b := New(Options{Node: 1})
	if err := a.Export(T("Ping", Any), b, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Export(T("Pong", Any), a, nil); err != nil {
		t.Fatal(err)
	}
	// With exports dispatched outside the lock this must not deadlock.
	a.Activate(sent("Ping", "x"), 1)
	b.Activate(sent("Pong", "y"), 2)
	if !b.Active(sent("Ping", "x")) || !a.Active(sent("Pong", "y")) {
		t.Fatal("mutual export lost events")
	}
}

// The Figure 7 scenario: without shadows the kernel's disk write cannot
// be attributed to func(); with a shadow context it can.
func TestShadowContextFixesFigure7(t *testing.T) {
	s := New(Options{})
	qid, err := s.AddQuestion(Q("disk writes for func",
		T("Executes", "func"), T("DiskWrite", Any)))
	if err != nil {
		t.Fatal(err)
	}

	// func() runs, calls write(), returns. The kernel writes later.
	s.Activate(sent("Executes", "func"), 100)
	sh := s.Capture(110) // handoff point: the write() system call
	if err := s.Deactivate(sent("Executes", "func"), 120); err != nil {
		t.Fatal(err)
	}

	// Plain measurement at the later disk write misses the attribution —
	// the paper's limitation.
	if hits := s.RecordEvent(sent("DiskWrite", "disk0"), 500, 1); hits != 0 {
		t.Fatal("plain SAS should not attribute the asynchronous write")
	}
	// Shadow measurement recovers it.
	if hits := s.RecordEventInContext(sh, sent("DiskWrite", "disk0"), 500, 1); hits != 1 {
		t.Fatal("shadow context did not attribute the asynchronous write")
	}
	res, _ := s.Result(qid, 600)
	if res.Count != 1 {
		t.Fatalf("Count = %g", res.Count)
	}
}

func TestShadowCaptureWithPatterns(t *testing.T) {
	s := New(Options{})
	s.Activate(sent("Executes", "func"), 10)
	s.Activate(sent("Noise", "n"), 11)
	sh := s.Capture(12, T("Executes", Any))
	if len(sh.Entries) != 1 || !sh.Entries[0].Sentence.Equal(sent("Executes", "func")) {
		t.Fatalf("filtered capture = %+v", sh.Entries)
	}
	all := s.Capture(12)
	if len(all.Entries) != 2 {
		t.Fatalf("unfiltered capture = %+v", all.Entries)
	}
}

func TestShadowDoesNotLeakIntoActiveSet(t *testing.T) {
	s := New(Options{})
	s.Activate(sent("Executes", "func"), 10)
	sh := s.Capture(11)
	if err := s.Deactivate(sent("Executes", "func"), 12); err != nil {
		t.Fatal(err)
	}
	_, _ = s.AddQuestion(Q("q", T("Executes", "func"), T("DiskWrite", Any)))
	s.RecordEventInContext(sh, sent("DiskWrite", "d"), 20, 1)
	if s.Size() != 0 {
		t.Fatalf("shadow leaked: Size = %d", s.Size())
	}
	if s.Active(sent("Executes", "func")) {
		t.Fatal("shadow sentence remained active")
	}
}

func TestShadowSpan(t *testing.T) {
	s := New(Options{})
	qid, _ := s.AddQuestion(Q("write time for func",
		T("Executes", "func"), T("DiskWrite", Any)))
	s.Activate(sent("Executes", "func"), 10)
	sh := s.Capture(11)
	if err := s.Deactivate(sent("Executes", "func"), 12); err != nil {
		t.Fatal(err)
	}
	if hits := s.RecordSpanInContext(sh, sent("DiskWrite", "d"), 100, 140, 40); hits != 1 {
		t.Fatal("shadow span not charged")
	}
	res, _ := s.Result(qid, 200)
	if res.EventTime != 40 {
		t.Fatalf("EventTime = %v", res.EventTime)
	}
}

func TestShadowWithAlreadyActiveSentence(t *testing.T) {
	// If the captured sentence is active again at measurement time, the
	// shadow must not deactivate it afterwards.
	s := New(Options{})
	_, _ = s.AddQuestion(Q("q", T("Executes", "func"), T("DiskWrite", Any)))
	s.Activate(sent("Executes", "func"), 10)
	sh := s.Capture(11)
	// Still active — record in context, then verify liveness.
	if hits := s.RecordEventInContext(sh, sent("DiskWrite", "d"), 20, 1); hits != 1 {
		t.Fatal("not charged")
	}
	if !s.Active(sent("Executes", "func")) {
		t.Fatal("shadow restore removed a genuinely active sentence")
	}
}

func BenchmarkExport(b *testing.B) {
	a := New(Options{Node: 0})
	srv := New(Options{Node: 1})
	_ = a.Export(T("QueryActive", Any), srv, nil)
	_, _ = srv.AddQuestion(Q("q", T("QueryActive", "q"), T("DiskRead", Any)))
	sn := sent("QueryActive", "q")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := vtime.Time(i * 2)
		a.Activate(sn, at)
		_ = a.Deactivate(sn, at+1)
	}
}
