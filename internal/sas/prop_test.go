package sas

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file proves the hot-path machinery — the question index, the
// per-term incremental match counts and the sharded active set — against
// a brute-force reference model: a plain list of active sentences scanned
// in full for every evaluation, with gates computed straight from the
// Question definition. Random operation streams (fixed seeds) must make
// the two agree on every satisfied flag, every event charge, and the
// accumulated timers.

// refActive is one reference-model active entry.
type refActive struct {
	sn    nv.Sentence
	since vtime.Time
	depth int
}

// refModel is the brute-force SAS: no interning, no index, no counts.
type refModel struct {
	active []refActive
	qs     []Question
	sat    []bool
	since  []vtime.Time
	satT   []vtime.Duration
	count  []float64
	evT    []vtime.Duration
}

func newRefModel(qs []Question) *refModel {
	m := &refModel{
		qs:    qs,
		sat:   make([]bool, len(qs)),
		since: make([]vtime.Time, len(qs)),
		satT:  make([]vtime.Duration, len(qs)),
		count: make([]float64, len(qs)),
		evT:   make([]vtime.Duration, len(qs)),
	}
	// Mirror AddQuestion's initial gate evaluation at time zero.
	for i := range qs {
		if m.gate(qs[i], nil) {
			m.sat[i] = true
			m.since[i] = 0
		}
	}
	return m
}

func (m *refModel) find(sn nv.Sentence) int {
	for i := range m.active {
		if m.active[i].sn.Equal(sn) {
			return i
		}
	}
	return -1
}

func (m *refModel) activate(sn nv.Sentence, at vtime.Time) {
	if i := m.find(sn); i >= 0 {
		m.active[i].depth++
		return
	}
	m.active = append(m.active, refActive{sn: sn, since: at, depth: 1})
	m.regate(at)
}

func (m *refModel) deactivate(sn nv.Sentence, at vtime.Time) {
	i := m.find(sn)
	if i < 0 {
		return
	}
	m.active[i].depth--
	if m.active[i].depth > 0 {
		return
	}
	m.active = append(m.active[:i], m.active[i+1:]...)
	m.regate(at)
}

// regate recomputes every gate after a membership change, accumulating
// the satisfied timers exactly as updateGateLocked does.
func (m *refModel) regate(at vtime.Time) {
	for i := range m.qs {
		now := m.gate(m.qs[i], nil)
		if now == m.sat[i] {
			continue
		}
		m.sat[i] = now
		if now {
			m.since[i] = at
		} else {
			m.satT[i] += at.Sub(m.since[i])
		}
	}
}

// termHolds reports whether t matches an active sentence or the extra
// (event) sentence.
func (m *refModel) termHolds(t Term, extra *nv.Sentence) bool {
	for i := range m.active {
		if t.Matches(m.active[i].sn) {
			return true
		}
	}
	return extra != nil && t.Matches(*extra)
}

func (m *refModel) gate(q Question, extra *nv.Sentence) bool {
	if q.Expr != nil {
		return m.gateExpr(q.Expr, extra)
	}
	if q.Ordered {
		return m.gateOrdered(q, extra)
	}
	for _, t := range q.Terms {
		if !m.termHolds(t, extra) {
			return false
		}
	}
	return true
}

func (m *refModel) gateExpr(e *Expr, extra *nv.Sentence) bool {
	switch e.Op {
	case OpTerm:
		return m.termHolds(e.Term, extra)
	case OpAnd:
		for _, k := range e.Kids {
			if !m.gateExpr(k, extra) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if m.gateExpr(k, extra) {
				return true
			}
		}
		return false
	default: // OpNot
		return !m.gateExpr(e.Kids[0], extra)
	}
}

// gateOrdered is the reference ordered evaluation: each term must match
// an activation no earlier than the previous term's earliest eligible
// activation, with the extra (trigger) sentence eligible only for the
// final term and ordered after everything stored.
func (m *refModel) gateOrdered(q Question, extra *nv.Sentence) bool {
	prev := vtime.Time(-1 << 62)
	for i, t := range q.Terms {
		last := i == len(q.Terms)-1
		best, found := vtime.Time(-1), false
		for _, a := range m.active {
			if !t.Matches(a.sn) || a.since.Before(prev) {
				continue
			}
			if !found || a.since.Before(best) {
				best, found = a.since, true
			}
		}
		if !found {
			return last && extra != nil && t.Matches(*extra)
		}
		prev = best
	}
	return true
}

// refCandidate mirrors the index's posting rule: a question is consulted
// for a measured event only if one of its terms posts it under the
// event's verb, under one of the event's nouns (term-vector questions
// only), or on the wildcard list. Only consulted questions can be
// charged — the behaviour of the original verb-only index, preserved
// here. For term-vector questions this is implied by the "event matches
// some term" precondition in fires; for expression questions it is a
// real restriction (a satisfied expression is charged only by events
// naming one of its verbs, or by any event if it has a wildcard-verb
// term).
func refCandidate(q Question, sn nv.Sentence) bool {
	for _, t := range q.allTerms() {
		if t.Verb != Any {
			if t.Verb == sn.Verb {
				return true
			}
			continue
		}
		var first nv.NounID
		for _, n := range t.Nouns {
			if n != Any {
				first = n
				break
			}
		}
		if q.Expr != nil || first == "" {
			// Wildcard-list posting: consulted for every event.
			return true
		}
		if sn.Contains(first) {
			return true
		}
	}
	return false
}

func (m *refModel) fires(q Question, extra nv.Sentence) bool {
	if !refCandidate(q, extra) {
		return false
	}
	if q.Ordered && len(q.Terms) > 0 {
		if !q.Terms[len(q.Terms)-1].Matches(extra) {
			return false
		}
		return m.gate(q, &extra)
	}
	if q.Expr == nil {
		some := false
		for _, t := range q.Terms {
			if t.Matches(extra) {
				some = true
				break
			}
		}
		if !some {
			return false
		}
	}
	return m.gate(q, &extra)
}

func (m *refModel) event(sn nv.Sentence, value float64) int {
	hits := 0
	for i := range m.qs {
		if m.fires(m.qs[i], sn) {
			m.count[i] += value
			hits++
		}
	}
	return hits
}

func (m *refModel) span(sn nv.Sentence, value vtime.Duration) int {
	hits := 0
	for i := range m.qs {
		if m.fires(m.qs[i], sn) {
			m.evT[i] += value
			hits++
		}
	}
	return hits
}

// randTerm draws a pattern over the test vocabulary, with wildcards.
func randTerm(rng *rand.Rand, verbs []string, nouns []string) Term {
	v := Any
	if rng.Intn(4) != 0 {
		v = verbs[rng.Intn(len(verbs))]
	}
	var ns []nv.NounID
	for i, picks := 0, rng.Intn(3); i < picks; i++ {
		if rng.Intn(5) == 0 {
			ns = append(ns, Any)
		} else {
			ns = append(ns, nv.NounID(nouns[rng.Intn(len(nouns))]))
		}
	}
	return Term{Verb: nv.VerbID(v), Nouns: ns}
}

func randQuestion(rng *rand.Rand, i int, verbs, nouns []string) Question {
	label := fmt.Sprintf("q%d", i)
	switch rng.Intn(6) {
	case 0: // ordered vector
		n := 2 + rng.Intn(2)
		ts := make([]Term, n)
		for j := range ts {
			ts[j] = randTerm(rng, verbs, nouns)
		}
		return Question{Label: label, Terms: ts, Ordered: true}
	case 1: // boolean expression with OR and NOT
		e := Or(
			Leaf(randTerm(rng, verbs, nouns)),
			And(Leaf(randTerm(rng, verbs, nouns)), Not(Leaf(randTerm(rng, verbs, nouns)))),
		)
		return Question{Label: label, Expr: e}
	default: // plain conjunction
		n := 1 + rng.Intn(3)
		ts := make([]Term, n)
		for j := range ts {
			ts[j] = randTerm(rng, verbs, nouns)
		}
		return Question{Label: label, Terms: ts}
	}
}

func randSentence(rng *rand.Rand, verbs, nouns []string) nv.Sentence {
	picks := rng.Intn(3)
	ns := make([]nv.NounID, picks)
	for i := range ns {
		ns[i] = nv.NounID(nouns[rng.Intn(len(nouns))])
	}
	return nv.NewSentence(nv.VerbID(verbs[rng.Intn(len(verbs))]), ns...)
}

// TestIndexedEquivalentToBruteForce drives random operation streams
// through a real SAS and the reference model and demands identical
// satisfied flags after every operation, identical hit counts for every
// measured event, and identical counters and timers at the end.
func TestIndexedEquivalentToBruteForce(t *testing.T) {
	verbs := []string{"Sum", "Send", "Exec", "Idle"}
	nouns := []string{"A", "B", "C", "D", "E"}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := New(Options{Filter: seed%2 == 0})

			nq := 6 + rng.Intn(6)
			qs := make([]Question, nq)
			ids := make([]QuestionID, nq)
			for i := range qs {
				qs[i] = randQuestion(rng, i, verbs, nouns)
				id, err := s.AddQuestion(qs[i])
				if err != nil {
					t.Fatalf("AddQuestion(%v): %v", qs[i], err)
				}
				ids[i] = id
			}
			ref := newRefModel(qs)

			at := vtime.Time(0)
			for op := 0; op < 400; op++ {
				at += vtime.Time(1 + rng.Intn(5))
				sn := randSentence(rng, verbs, nouns)
				switch rng.Intn(4) {
				case 0, 1:
					s.Activate(sn, at)
					ref.activate(sn, at)
				case 2:
					// May legitimately fail on an inactive sentence; the
					// reference ignores those the same way.
					_ = s.Deactivate(sn, at)
					ref.deactivate(sn, at)
				case 3:
					if rng.Intn(2) == 0 {
						got := s.RecordEvent(sn, at, 1)
						want := ref.event(sn, 1)
						if got != want {
							t.Fatalf("op %d: RecordEvent(%v) charged %d questions, reference charged %d", op, sn, got, want)
						}
					} else {
						got := s.RecordSpan(sn, at-1, at, 3)
						want := ref.span(sn, 3)
						if got != want {
							t.Fatalf("op %d: RecordSpan(%v) charged %d questions, reference charged %d", op, sn, got, want)
						}
					}
				}
				for i, id := range ids {
					if got, want := s.Satisfied(id), ref.sat[i]; got != want {
						t.Fatalf("op %d at %d: question %q satisfied = %v, reference = %v\nactive: %v",
							op, at, qs[i].Label, got, want, ref.active)
					}
				}
			}

			end := at + 10
			for i, id := range ids {
				res, err := s.Result(id, end)
				if err != nil {
					t.Fatal(err)
				}
				wantSat := ref.satT[i]
				if ref.sat[i] {
					wantSat += end.Sub(ref.since[i])
				}
				if res.Count != ref.count[i] {
					t.Errorf("question %q: Count = %g, reference %g", qs[i].Label, res.Count, ref.count[i])
				}
				if res.EventTime != ref.evT[i] {
					t.Errorf("question %q: EventTime = %v, reference %v", qs[i].Label, res.EventTime, ref.evT[i])
				}
				if res.SatisfiedTime != wantSat {
					t.Errorf("question %q: SatisfiedTime = %v, reference %v", qs[i].Label, res.SatisfiedTime, wantSat)
				}
			}
		})
	}
}

// sortedSnapshot renders the reference active set in Snapshot()'s
// contract order: ascending Since, sentence key as tiebreak.
func (m *refModel) sortedSnapshot() []ActiveSentence {
	out := make([]ActiveSentence, len(m.active))
	for i, a := range m.active {
		out[i] = ActiveSentence{Sentence: a.sn, Since: a.since, Depth: a.depth}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Since != out[j].Since {
			return out[i].Since < out[j].Since
		}
		return out[i].Sentence.Key() < out[j].Sentence.Key()
	})
	return out
}

// mustMatchSnapshot demands element-for-element equality between a SAS
// snapshot and the reference order — membership alone is not enough.
func mustMatchSnapshot(t *testing.T, tag string, got, want []ActiveSentence) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: snapshot has %d entries, reference %d", tag, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !g.Sentence.Equal(w.Sentence) || g.Since != w.Since || g.Depth != w.Depth {
			t.Fatalf("%s: entry %d = {%v since %v depth %d}, reference {%v since %v depth %d}",
				tag, i, g.Sentence, g.Since, g.Depth, w.Sentence, w.Since, w.Depth)
		}
	}
}

// TestSnapshotOrderingEquivalentToBruteForce pins the answer-ordering
// contract: Snapshot() returns entries sorted by (Since, sentence key)
// regardless of shard layout, swap-remove compaction history or column
// growth. The reference model sorts its flat list by the same rule and
// the two sequences must agree element for element, not merely as sets.
func TestSnapshotOrderingEquivalentToBruteForce(t *testing.T) {
	verbs := []string{"Sum", "Send", "Exec", "Idle"}
	nouns := []string{"A", "B", "C", "D", "E", "F"}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 97))
			s := New(Options{})
			ref := newRefModel(nil)
			at := vtime.Time(0)
			for op := 0; op < 500; op++ {
				at += vtime.Time(1 + rng.Intn(3))
				sn := randSentence(rng, verbs, nouns)
				if rng.Intn(3) == 0 {
					_ = s.Deactivate(sn, at)
					ref.deactivate(sn, at)
				} else {
					s.Activate(sn, at)
					ref.activate(sn, at)
				}
				if op%25 == 0 || op == 499 {
					mustMatchSnapshot(t, fmt.Sprintf("op %d", op), s.Snapshot(), ref.sortedSnapshot())
				}
			}
		})
	}
}

// TestColumnsEquivalentToBruteForce pins the columnar bookkeeping
// against the reference under random churn: Columns().Rows always
// equals the brute-force active count, capacity never drops below the
// rows it holds, the per-shard sizes sum to the same total, and the
// compaction counter never exceeds the deactivations that could have
// caused a swap-remove.
func TestColumnsEquivalentToBruteForce(t *testing.T) {
	verbs := []string{"Sum", "Send", "Exec"}
	nouns := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(11))
	s := New(Options{})
	ref := newRefModel(nil)
	at := vtime.Time(0)
	removals := int64(0)
	for op := 0; op < 800; op++ {
		at += vtime.Time(1 + rng.Intn(3))
		sn := randSentence(rng, verbs, nouns)
		if rng.Intn(3) == 0 {
			before := len(ref.active)
			_ = s.Deactivate(sn, at)
			ref.deactivate(sn, at)
			if len(ref.active) < before {
				removals++
			}
		} else {
			s.Activate(sn, at)
			ref.activate(sn, at)
		}
		cs := s.Columns()
		if cs.Rows != len(ref.active) {
			t.Fatalf("op %d: Columns().Rows = %d, reference %d", op, cs.Rows, len(ref.active))
		}
		if cs.Capacity < cs.Rows {
			t.Fatalf("op %d: Columns().Capacity = %d < Rows %d", op, cs.Capacity, cs.Rows)
		}
		sum := 0
		for _, sz := range s.ShardSizes() {
			sum += sz
		}
		if sum != cs.Rows {
			t.Fatalf("op %d: ShardSizes sum = %d, Columns().Rows = %d", op, sum, cs.Rows)
		}
		if cs.Compactions > removals {
			t.Fatalf("op %d: %d compactions recorded for only %d removals", op, cs.Compactions, removals)
		}
	}
}

// TestRestoreEquivalentToBruteForce drives churn, checkpoints the SAS,
// diverges it with further churn, then restores — exercising the
// clearShards path that re-carves the embedded column slab. The
// restored snapshot must equal the reference model frozen at the
// checkpoint, and every question's Result at the checkpoint instant
// must round-trip exactly.
func TestRestoreEquivalentToBruteForce(t *testing.T) {
	verbs := []string{"Sum", "Send", "Exec", "Idle"}
	nouns := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(7))
	s := New(Options{})

	nq := 5
	qs := make([]Question, nq)
	ids := make([]QuestionID, nq)
	for i := range qs {
		qs[i] = randQuestion(rng, i, verbs, nouns)
		id, err := s.AddQuestion(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	ref := newRefModel(qs)

	churn := func(ops int, mirror bool, at vtime.Time) vtime.Time {
		for op := 0; op < ops; op++ {
			at += vtime.Time(1 + rng.Intn(3))
			sn := randSentence(rng, verbs, nouns)
			switch rng.Intn(4) {
			case 0, 1:
				s.Activate(sn, at)
				if mirror {
					ref.activate(sn, at)
				}
			case 2:
				_ = s.Deactivate(sn, at)
				if mirror {
					ref.deactivate(sn, at)
				}
			default:
				_ = s.RecordEvent(sn, at, 1)
				if mirror {
					ref.event(sn, 1)
				}
			}
		}
		return at
	}

	saveAt := churn(300, true, 0)
	saved := s.ExportState()
	frozen := ref.sortedSnapshot()
	before := make([]Result, nq)
	for i, id := range ids {
		res, err := s.Result(id, saveAt)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = res
	}

	// Diverge the live SAS well past the checkpoint, then restore.
	churn(300, false, saveAt)
	s.RestoreState(saved)

	mustMatchSnapshot(t, "after restore", s.Snapshot(), frozen)
	if got, want := s.Columns().Rows, len(frozen); got != want {
		t.Fatalf("after restore: Columns().Rows = %d, reference %d", got, want)
	}
	for i, id := range ids {
		if got, want := s.Satisfied(id), ref.sat[i]; got != want {
			t.Fatalf("after restore: question %q satisfied = %v, reference %v", qs[i].Label, got, want)
		}
		res, err := s.Result(id, saveAt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != before[i].Count || res.EventTime != before[i].EventTime ||
			res.SatisfiedTime != before[i].SatisfiedTime || res.Satisfied != before[i].Satisfied {
			t.Fatalf("after restore: question %q Result = %+v, before checkpoint %+v", qs[i].Label, res, before[i])
		}
	}
}

// TestSnapshotEquivalentToBruteForce checks that the sharded set reports
// the same membership and nesting as the reference under random churn.
func TestSnapshotEquivalentToBruteForce(t *testing.T) {
	verbs := []string{"Sum", "Send", "Exec"}
	nouns := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(42))
	s := New(Options{})
	ref := newRefModel(nil)

	at := vtime.Time(0)
	for op := 0; op < 600; op++ {
		at += vtime.Time(1 + rng.Intn(3))
		sn := randSentence(rng, verbs, nouns)
		if rng.Intn(3) == 0 {
			_ = s.Deactivate(sn, at)
			ref.deactivate(sn, at)
		} else {
			s.Activate(sn, at)
			ref.activate(sn, at)
		}
		if s.Size() != len(ref.active) {
			t.Fatalf("op %d: Size = %d, reference %d", op, s.Size(), len(ref.active))
		}
	}
	snap := s.Snapshot()
	if len(snap) != len(ref.active) {
		t.Fatalf("Snapshot has %d entries, reference %d", len(snap), len(ref.active))
	}
	for _, a := range snap {
		i := ref.find(a.Sentence)
		if i < 0 {
			t.Fatalf("snapshot entry %v not in reference", a.Sentence)
		}
		if a.Since != ref.active[i].since || a.Depth != ref.active[i].depth {
			t.Fatalf("entry %v: since/depth = %v/%d, reference %v/%d",
				a.Sentence, a.Since, a.Depth, ref.active[i].since, ref.active[i].depth)
		}
	}
}
