package sas

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

func sent(verb string, nouns ...string) nv.Sentence {
	ids := make([]nv.NounID, len(nouns))
	for i, n := range nouns {
		ids[i] = nv.NounID(n)
	}
	return nv.NewSentence(nv.VerbID(verb), ids...)
}

func TestActivateDeactivateBasics(t *testing.T) {
	s := New(Options{})
	a := sent("Sum", "A")
	if s.Active(a) {
		t.Fatal("fresh SAS reports active sentence")
	}
	s.Activate(a, 10)
	if !s.Active(a) || s.Size() != 1 {
		t.Fatal("activation not recorded")
	}
	if err := s.Deactivate(a, 20); err != nil {
		t.Fatal(err)
	}
	if s.Active(a) || s.Size() != 0 {
		t.Fatal("deactivation not applied")
	}
	if err := s.Deactivate(a, 30); err == nil {
		t.Fatal("unbalanced deactivate accepted")
	}
}

func TestNestedActivation(t *testing.T) {
	s := New(Options{})
	a := sent("Execute", "RECURSE")
	s.Activate(a, 1)
	s.Activate(a, 2)
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Depth != 2 || snap[0].Since != 1 {
		t.Fatalf("nested snapshot = %+v", snap)
	}
	if err := s.Deactivate(a, 3); err != nil {
		t.Fatal(err)
	}
	if !s.Active(a) {
		t.Fatal("inner deactivate removed outer activation")
	}
	if err := s.Deactivate(a, 4); err != nil {
		t.Fatal(err)
	}
	if s.Active(a) {
		t.Fatal("sentence still active after balanced deactivates")
	}
}

// Figure 5: the SAS when a message is sent during SUM(A) — three active
// sentences, two at the HPF level and one at the base level.
func TestFigure5Snapshot(t *testing.T) {
	s := New(Options{})
	s.Activate(sent("Executes", "line1"), 100)
	s.Activate(sent("Sums", "A"), 110)
	s.Activate(sent("SendsMessage", "Processor0"), 120)

	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size = %d, want 3", len(snap))
	}
	// Snapshot is ordered by activation time.
	if !snap[0].Sentence.Equal(sent("Executes", "line1")) ||
		!snap[1].Sentence.Equal(sent("Sums", "A")) ||
		!snap[2].Sentence.Equal(sent("SendsMessage", "Processor0")) {
		t.Fatalf("snapshot order wrong: %v", snap)
	}

	reg := nv.NewRegistry()
	for _, l := range []nv.Level{{ID: "HPF", Rank: 1}, {ID: "Base", Rank: 0}} {
		if err := reg.AddLevel(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []nv.Verb{
		{ID: "Executes", Level: "HPF"}, {ID: "Sums", Level: "HPF"},
		{ID: "SendsMessage", Level: "Base"},
	} {
		if err := reg.AddVerb(v); err != nil {
			t.Fatal(err)
		}
	}
	text := FormatSnapshot(snap, reg)
	want := []string{"HPF:", "{line1 Executes}", "{A Sums}", "Base:", "{Processor0 SendsMessage}"}
	for _, w := range want {
		if !strings.Contains(text, w) {
			t.Errorf("FormatSnapshot missing %q:\n%s", w, text)
		}
	}
}

// Figure 6, row 1: {A Sum} — cost of summations of A.
func TestQuestionSingleTerm(t *testing.T) {
	s := New(Options{})
	id, err := s.AddQuestion(Q("sumA", T("Sum", "A")))
	if err != nil {
		t.Fatal(err)
	}
	if s.Satisfied(id) {
		t.Fatal("satisfied before any activation")
	}
	s.Activate(sent("Sum", "A"), 100)
	if !s.Satisfied(id) {
		t.Fatal("not satisfied while {A Sum} active")
	}
	if err := s.Deactivate(sent("Sum", "A"), 250); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result(id, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedTime != 150 {
		t.Fatalf("SatisfiedTime = %v, want 150", res.SatisfiedTime)
	}
	if res.Satisfied {
		t.Fatal("still satisfied after deactivation")
	}
}

// Figure 6, row 3: {A Sum}, {Processor_P Send} — cost of sends by P while
// A is being summed.
func TestQuestionConjunction(t *testing.T) {
	s := New(Options{})
	id, err := s.AddQuestion(Q("sendsDuringSumA", T("Sum", "A"), T("Send", "P")))
	if err != nil {
		t.Fatal(err)
	}

	// Send while not summing: not charged.
	if hits := s.RecordEvent(sent("Send", "P"), 10, 1); hits != 0 {
		t.Fatalf("send outside summation charged %d questions", hits)
	}

	s.Activate(sent("Sum", "A"), 100)
	if hits := s.RecordEvent(sent("Send", "P"), 110, 1); hits != 1 {
		t.Fatalf("send during summation charged %d questions, want 1", hits)
	}
	if hits := s.RecordEvent(sent("Send", "P"), 120, 1); hits != 1 {
		t.Fatal("second send not charged")
	}
	// A send by another processor does not match.
	if hits := s.RecordEvent(sent("Send", "Q"), 130, 1); hits != 0 {
		t.Fatalf("send by wrong processor charged %d", hits)
	}
	if err := s.Deactivate(sent("Sum", "A"), 200); err != nil {
		t.Fatal(err)
	}
	if hits := s.RecordEvent(sent("Send", "P"), 210, 1); hits != 0 {
		t.Fatal("send after summation charged")
	}

	res, _ := s.Result(id, 300)
	if res.Count != 2 {
		t.Fatalf("Count = %g, want 2", res.Count)
	}
}

// Figure 6, row 4: {? Sum}, {Processor_P Send} — cost of sends by P while
// anything is being summed.
func TestQuestionWildcardNoun(t *testing.T) {
	s := New(Options{})
	id, err := s.AddQuestion(Q("sendsDuringAnySum", T("Sum", Any), T("Send", "P")))
	if err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Sum", "B"), 100) // not A — wildcard still matches
	if hits := s.RecordEvent(sent("Send", "P"), 110, 1); hits != 1 {
		t.Fatalf("wildcard sum question charged %d, want 1", hits)
	}
	res, _ := s.Result(id, 200)
	if res.Count != 1 {
		t.Fatalf("Count = %g", res.Count)
	}
}

func TestQuestionWildcardVerb(t *testing.T) {
	s := New(Options{})
	id, err := s.AddQuestion(Q("anythingOnA", T(Any, "A")))
	if err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Shift", "A"), 10)
	if !s.Satisfied(id) {
		t.Fatal("wildcard verb did not match")
	}
}

func TestRecordSpan(t *testing.T) {
	s := New(Options{})
	id, _ := s.AddQuestion(Q("sendTimeDuringSumA", T("Sum", "A"), T("Send", Any)))
	s.Activate(sent("Sum", "A"), 0)
	if hits := s.RecordSpan(sent("Send", "P"), 10, 35, 25); hits != 1 {
		t.Fatalf("span hits = %d", hits)
	}
	res, _ := s.Result(id, 100)
	if res.EventTime != 25 {
		t.Fatalf("EventTime = %v, want 25", res.EventTime)
	}
}

func TestQuestionAddedMidRunSeesActiveSet(t *testing.T) {
	s := New(Options{})
	s.Activate(sent("Sum", "A"), 50)
	id, err := s.AddQuestion(Q("late", T("Sum", "A")))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Satisfied(id) {
		t.Fatal("late question did not see active sentence")
	}
}

func TestRemoveQuestion(t *testing.T) {
	s := New(Options{})
	id, _ := s.AddQuestion(Q("q", T("Sum", "A")))
	if err := s.RemoveQuestion(id); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveQuestion(id); err == nil {
		t.Fatal("double removal accepted")
	}
	if _, err := s.Result(id, 0); err == nil {
		t.Fatal("result for removed question")
	}
	// Activation after removal must not panic or charge anything.
	s.Activate(sent("Sum", "A"), 10)
	if hits := s.RecordEvent(sent("Sum", "A"), 11, 1); hits != 0 {
		t.Fatal("removed question charged")
	}
}

func TestQuestionValidation(t *testing.T) {
	s := New(Options{})
	if _, err := s.AddQuestion(Q("empty")); err == nil {
		t.Fatal("empty question accepted")
	}
	if _, err := s.AddQuestion(Question{Label: "both", Terms: []Term{T("V")}, Expr: Leaf(T("V"))}); err == nil {
		t.Fatal("question with Terms and Expr accepted")
	}
	if _, err := s.AddQuestion(Question{Label: "ordExpr", Expr: Leaf(T("V")), Ordered: true}); err == nil {
		t.Fatal("ordered expression question accepted")
	}
	if _, err := s.AddQuestion(Question{Label: "badNot", Expr: &Expr{Op: OpNot}}); err == nil {
		t.Fatal("malformed NOT accepted")
	}
	if _, err := s.AddQuestion(Question{Label: "badAnd", Expr: &Expr{Op: OpAnd}}); err == nil {
		t.Fatal("childless AND accepted")
	}
	if _, err := s.AddQuestion(Question{Label: "badOp", Expr: &Expr{Op: ExprOp(42)}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// Section 4.2.2 extension: disjunction and negation.
func TestExpressionQuestions(t *testing.T) {
	s := New(Options{})
	// Sends while (A or B) is being summed, but NOT during cleanup.
	q := Question{
		Label: "expr",
		Expr: And(
			Or(Leaf(T("Sum", "A")), Leaf(T("Sum", "B"))),
			Not(Leaf(T("Cleanup"))),
			Leaf(T("Send", Any)),
		),
	}
	id, err := s.AddQuestion(q)
	if err != nil {
		t.Fatal(err)
	}

	s.Activate(sent("Sum", "B"), 10)
	if hits := s.RecordEvent(sent("Send", "P"), 15, 1); hits != 1 {
		t.Fatalf("OR branch failed: %d hits", hits)
	}
	s.Activate(sent("Cleanup"), 20)
	if hits := s.RecordEvent(sent("Send", "P"), 25, 1); hits != 0 {
		t.Fatalf("NOT branch failed: %d hits", hits)
	}
	if err := s.Deactivate(sent("Cleanup"), 30); err != nil {
		t.Fatal(err)
	}
	if hits := s.RecordEvent(sent("Send", "P"), 35, 1); hits != 1 {
		t.Fatal("cleanup deactivation did not restore")
	}
	res, _ := s.Result(id, 100)
	if res.Count != 2 {
		t.Fatalf("Count = %g, want 2", res.Count)
	}
}

// Section 4.2.4, limitation 3: ordered questions distinguish "messages
// sent during summation of A" from "summations of A during message sends".
func TestOrderedQuestions(t *testing.T) {
	s := New(Options{})
	// Ordered: {A Sum} then {Send ?} — the send is the measured event.
	sendsDuringSum, err := s.AddQuestion(Question{
		Label:   "sends during sum",
		Terms:   []Term{T("Sum", "A"), T("Send", Any)},
		Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ordered the other way: {Send ?} then {A Sum} — the sum activation
	// would have to begin while a send is active.
	sumsDuringSend, err := s.AddQuestion(Question{
		Label:   "sums during send",
		Terms:   []Term{T("Send", Any), T("Sum", "A")},
		Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scenario: sum starts, then a send event fires inside it.
	s.Activate(sent("Sum", "A"), 100)
	if hits := s.RecordEvent(sent("Send", "P"), 110, 1); hits != 1 {
		t.Fatalf("send inside sum charged %d questions, want only the first", hits)
	}
	r1, _ := s.Result(sendsDuringSum, 200)
	r2, _ := s.Result(sumsDuringSend, 200)
	if r1.Count != 1 || r2.Count != 0 {
		t.Fatalf("ordered counts = %g, %g; want 1, 0", r1.Count, r2.Count)
	}

	// Scenario: send is a long operation active when a sum event occurs.
	s2 := New(Options{})
	id2, _ := s2.AddQuestion(Question{
		Label:   "sums during send",
		Terms:   []Term{T("Send", Any), T("Sum", "A")},
		Ordered: true,
	})
	s2.Activate(sent("Send", "P"), 100)
	if hits := s2.RecordEvent(sent("Sum", "A"), 110, 1); hits != 1 {
		t.Fatalf("sum inside send charged %d", hits)
	}
	r, _ := s2.Result(id2, 200)
	if r.Count != 1 {
		t.Fatalf("Count = %g", r.Count)
	}
}

func TestOrderedGateUsesActivationTimes(t *testing.T) {
	s := New(Options{})
	id, _ := s.AddQuestion(Question{
		Label:   "nested",
		Terms:   []Term{T("Outer"), T("Inner")},
		Ordered: true,
	})
	// Inner became active before Outer: the ordered question is not
	// satisfied even though both are active.
	s.Activate(sent("Inner"), 10)
	s.Activate(sent("Outer"), 20)
	if s.Satisfied(id) {
		t.Fatal("ordered question satisfied despite inverted activation order")
	}
	// Re-activate Inner inside Outer.
	if err := s.Deactivate(sent("Inner"), 30); err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Inner"), 40)
	if !s.Satisfied(id) {
		t.Fatal("ordered question not satisfied with correct nesting")
	}
}

// Section 4.2.4, limitation 2: notifications ignored by the SAS still
// cost; relevance filtering reduces stored entries.
func TestRelevanceFiltering(t *testing.T) {
	s := New(Options{Filter: true})
	if _, err := s.AddQuestion(Q("onlyA", T("Sum", "A"))); err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Sum", "A"), 10)
	s.Activate(sent("Max", "B"), 20) // irrelevant: filtered
	s.Activate(sent("Sum", "B"), 30) // verb matches but noun doesn't: filtered

	if s.Size() != 1 {
		t.Fatalf("Size = %d, want 1 (only {A Sum} stored)", s.Size())
	}
	if err := s.Deactivate(sent("Max", "B"), 40); err != nil {
		t.Fatalf("deactivate of filtered sentence errored: %v", err)
	}
	st := s.Stats()
	if st.Notifications != 4 {
		t.Fatalf("Notifications = %d, want 4", st.Notifications)
	}
	if st.Ignored != 3 {
		t.Fatalf("Ignored = %d, want 3", st.Ignored)
	}
	if st.Stored != 1 {
		t.Fatalf("Stored = %d, want 1", st.Stored)
	}
}

func TestUnfilteredKeepsEverything(t *testing.T) {
	s := New(Options{})
	if _, err := s.AddQuestion(Q("onlyA", T("Sum", "A"))); err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Max", "B"), 10)
	if s.Size() != 1 {
		t.Fatal("unfiltered SAS dropped a sentence")
	}
	if st := s.Stats(); st.Ignored != 0 {
		t.Fatalf("Ignored = %d", st.Ignored)
	}
}

// Section 6.1's boolean-flag protocol.
func TestWatch(t *testing.T) {
	s := New(Options{})
	id, _ := s.AddQuestion(Q("arrayActive", T(Any, "TOT")))
	var flag bool
	var flips int
	if err := s.Watch(id, func(sat bool, at vtime.Time) {
		flag = sat
		flips++
	}); err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Compute", "TOT"), 10)
	if !flag {
		t.Fatal("flag not raised on activation")
	}
	if err := s.Deactivate(sent("Compute", "TOT"), 20); err != nil {
		t.Fatal(err)
	}
	if flag {
		t.Fatal("flag not lowered on deactivation")
	}
	if flips != 2 {
		t.Fatalf("flips = %d, want 2", flips)
	}
	if err := s.Watch(QuestionID(99), nil); err == nil {
		t.Fatal("watch on unknown question accepted")
	}
}

// Property: balanced activate/deactivate always leaves the SAS empty and
// never errors, regardless of interleaving.
func TestBalancedNotificationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New(Options{})
		depth := map[string]int{}
		var at vtime.Time
		for _, op := range ops {
			at++
			verb := string(rune('A' + op%4))
			sn := sent(verb, "x")
			if op%2 == 0 {
				s.Activate(sn, at)
				depth[sn.Key()]++
			} else if depth[sn.Key()] > 0 {
				if err := s.Deactivate(sn, at); err != nil {
					return false
				}
				depth[sn.Key()]--
			}
		}
		// Drain whatever is still active via the snapshot.
		for _, a := range s.Snapshot() {
			for i := 0; i < a.Depth; i++ {
				at++
				if err := s.Deactivate(a.Sentence, at); err != nil {
					return false
				}
			}
		}
		return s.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: satisfied-time of a single-term question equals the summed
// active intervals of the matching sentence.
func TestSatisfiedTimeProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		s := New(Options{})
		id, err := s.AddQuestion(Q("q", T("Sum", "A")))
		if err != nil {
			return false
		}
		var at vtime.Time
		var want vtime.Duration
		active := false
		var since vtime.Time
		for _, g := range gaps {
			at = at.Add(vtime.Duration(g) + 1)
			if !active {
				s.Activate(sent("Sum", "A"), at)
				since = at
				active = true
			} else {
				if err := s.Deactivate(sent("Sum", "A"), at); err != nil {
					return false
				}
				want += at.Sub(since)
				active = false
			}
		}
		if active {
			at = at.Add(5)
			if err := s.Deactivate(sent("Sum", "A"), at); err != nil {
				return false
			}
			want += at.Sub(since)
		}
		res, err := s.Result(id, at)
		if err != nil {
			return false
		}
		return res.SatisfiedTime == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSharedSAS(t *testing.T) {
	// Section 4.2.3 notes shared-memory systems may share one SAS at a
	// synchronisation cost; correctness under contention matters.
	s := New(Options{})
	id, _ := s.AddQuestion(Q("q", T("Work", Any), T("Tick", Any)))
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := sent("Work", string(rune('a'+w)))
			for i := 0; i < iters; i++ {
				at := vtime.Time(w*1_000_000 + i*10)
				s.Activate(me, at)
				s.RecordEvent(sent("Tick", "t"), at+1, 1)
				if err := s.Deactivate(me, at+2); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Size() != 0 {
		t.Fatalf("Size = %d after balanced concurrent use", s.Size())
	}
	res, _ := s.Result(id, 0)
	if res.Count != workers*iters {
		t.Fatalf("Count = %g, want %d", res.Count, workers*iters)
	}
}

func TestTermAndQuestionStrings(t *testing.T) {
	if got := T("Sum", "A").String(); got != "{A Sum}" {
		t.Errorf("Term.String = %q", got)
	}
	if got := T("Send").String(); got != "{? Send}" {
		t.Errorf("bare Term.String = %q", got)
	}
	q := Q("x", T("Sum", "A"), T("Send", "P"))
	if got := q.String(); got != "{A Sum}, {P Send}" {
		t.Errorf("Question.String = %q", got)
	}
	oq := Question{Terms: []Term{T("Sum", "A")}, Ordered: true}
	if !strings.Contains(oq.String(), "[ordered]") {
		t.Errorf("ordered marker missing: %q", oq.String())
	}
	e := And(Or(Leaf(T("Sum", "A")), Leaf(T("Sum", "B"))), Not(Leaf(T("Cleanup"))))
	want := "(({A Sum} | {B Sum}) & !{? Cleanup})"
	if got := e.String(); got != want {
		t.Errorf("Expr.String = %q, want %q", got, want)
	}
}

func BenchmarkActivateDeactivate(b *testing.B) {
	s := New(Options{})
	_, _ = s.AddQuestion(Q("q", T("Sum", "A"), T("Send", Any)))
	sn := sent("Sum", "A")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := vtime.Time(i * 2)
		s.Activate(sn, at)
		_ = s.Deactivate(sn, at+1)
	}
}

func BenchmarkRecordEvent(b *testing.B) {
	s := New(Options{})
	_, _ = s.AddQuestion(Q("q", T("Sum", "A"), T("Send", Any)))
	s.Activate(sent("Sum", "A"), 0)
	ev := sent("Send", "P")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordEvent(ev, vtime.Time(i), 1)
	}
}

func BenchmarkActivateIgnoredNotification(b *testing.B) {
	// The limitation-2 cost: notifications about B when only A matters.
	for _, filter := range []bool{false, true} {
		name := "unfiltered"
		if filter {
			name = "filtered"
		}
		b.Run(name, func(b *testing.B) {
			s := New(Options{Filter: filter})
			_, _ = s.AddQuestion(Q("onlyA", T("Sum", "A")))
			sn := sent("Max", "B")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				at := vtime.Time(i * 2)
				s.Activate(sn, at)
				_ = s.Deactivate(sn, at+1)
			}
		})
	}
}
