package sas

import "testing"

// The journal hook sees every local operation; Replay reproduces them
// without re-journaling, so a recovered SAS converges to the original.
func TestJournalAndReplayConverge(t *testing.T) {
	src := New(Options{})
	var journal []Record
	src.SetRecorder(func(r Record) { journal = append(journal, r) })
	qid, err := src.AddQuestion(Q("sends during sum", T("Sum", "A"), T("Send", Any)))
	if err != nil {
		t.Fatal(err)
	}

	sum, send := sent("Sum", "A"), sent("Send", "P")
	src.Activate(sum, 10)
	src.Activate(send, 20)
	src.RecordEvent(send, 25, 3)
	src.RecordSpan(send, 25, 30, 5)
	if err := src.Deactivate(send, 30); err != nil {
		t.Fatal(err)
	}
	if len(journal) != 5 {
		t.Fatalf("journaled %d records, want 5", len(journal))
	}

	// A fresh SAS with the same question, fed only the journal.
	dst := New(Options{})
	qid2, err := dst.AddQuestion(Q("sends during sum", T("Sum", "A"), T("Send", Any)))
	if err != nil {
		t.Fatal(err)
	}
	if qid2 != qid {
		t.Fatalf("question IDs diverged: %v vs %v", qid2, qid)
	}
	var reJournal []Record
	dst.SetRecorder(func(r Record) { reJournal = append(reJournal, r) })
	for _, r := range journal {
		dst.Replay(r)
	}
	if len(reJournal) != 0 {
		t.Fatalf("replay re-journaled %d records", len(reJournal))
	}

	a, err := src.Result(qid, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Result(qid2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count || a.EventTime != b.EventTime || a.SatisfiedTime != b.SatisfiedTime || a.Satisfied != b.Satisfied {
		t.Fatalf("replayed result diverged: %+v vs %+v", b, a)
	}
	if !dst.Active(sum) || dst.Active(send) {
		t.Fatal("replayed active set wrong")
	}
}

// ExportState/RestoreState round-trip the measurement state of a
// partition: active set, question results, statistics.
func TestExportRestoreStateRoundtrip(t *testing.T) {
	s := New(Options{Node: 3})
	qid, err := s.AddQuestion(Q("q", T("Sum", "A")))
	if err != nil {
		t.Fatal(err)
	}
	s.Activate(sent("Sum", "A"), 10)
	s.RecordEvent(sent("Sum", "A"), 15, 2)
	st := s.ExportState()
	if st.Node != 3 || len(st.Active) != 1 || len(st.Questions) != 1 {
		t.Fatalf("exported %+v", st)
	}

	// Wipe and restore: Reset keeps nothing, so re-add the question first
	// (RestoreState only fills questions the SAS knows).
	s.Reset()
	if s.Size() != 0 {
		t.Fatal("reset left active sentences")
	}
	if _, err := s.AddQuestion(Q("q", T("Sum", "A"))); err != nil {
		t.Fatal(err)
	}
	s.RestoreState(st)
	if !s.Active(sent("Sum", "A")) {
		t.Fatal("restore lost the active set")
	}
	r, err := s.Result(qid, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 2 || !r.Satisfied {
		t.Fatalf("restored result %+v", r)
	}
	// A snapshot mentioning an unknown question is dropped, not applied.
	st.Questions[0].ID = 99
	s.RestoreState(st)
}

// Registry.ResetNode wipes in place and re-registers every question
// asked through AddQuestionAll in the original order, so QuestionIDs
// held by the tool stay valid across a crash.
func TestRegistryResetNodeKeepsQuestionIDs(t *testing.T) {
	r := NewRegistry(Options{})
	// Materialise two nodes.
	r.Node(0)
	r.Node(1)
	ids1, err := r.AddQuestionAll(Q("first", T("Sum", "A")))
	if err != nil {
		t.Fatal(err)
	}
	ids2, err := r.AddQuestionAll(Q("second", T("Send", Any)))
	if err != nil {
		t.Fatal(err)
	}

	n0 := r.Node(0)
	n0.Activate(sent("Sum", "A"), 5)
	n0.RecordEvent(sent("Sum", "A"), 6, 1)
	reborn := r.ResetNode(0)
	if reborn != n0 {
		t.Fatal("ResetNode returned a different SAS — held pointers broke")
	}
	if n0.Size() != 0 {
		t.Fatal("reset node kept active sentences")
	}
	res, err := n0.Result(ids2[0], 10)
	if err != nil {
		t.Fatalf("question ID %v invalid after reset: %v", ids2[0], err)
	}
	if res.Count != 0 {
		t.Fatalf("reborn node kept results: %+v", res)
	}
	if _, err := n0.Result(ids1[0], 10); err != nil {
		t.Fatal(err)
	}
	// The untouched node is unaffected.
	if _, err := r.Node(1).Result(ids1[1], 10); err != nil {
		t.Fatal(err)
	}
	// Resetting a node that was never materialised just creates it.
	if r.ResetNode(7) == nil {
		t.Fatal("ResetNode(7) returned nil")
	}
}
