package sas

import (
	"fmt"
	"strings"

	"nvmap/internal/nv"
)

// ParseTerm parses one sentence pattern in the paper's notation: nouns
// followed by the verb inside braces, whitespace-separated, with "?" as
// the wildcard — e.g. "{A Sums}", "{? Sums}", "{Processor_1 Sends}",
// "{A P Send}".
func ParseTerm(text string) (Term, error) {
	t := strings.TrimSpace(text)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return Term{}, fmt.Errorf("sas: pattern %q must be brace-delimited", text)
	}
	fields := strings.Fields(t[1 : len(t)-1])
	if len(fields) == 0 {
		return Term{}, fmt.Errorf("sas: empty pattern %q", text)
	}
	verb := fields[len(fields)-1]
	nouns := make([]nv.NounID, 0, len(fields)-1)
	for _, f := range fields[:len(fields)-1] {
		nouns = append(nouns, nv.NounID(f))
	}
	return Term{Verb: nv.VerbID(verb), Nouns: nouns}, nil
}

// ParseQuestion parses a performance question as a comma-separated vector
// of patterns, optionally suffixed with "[ordered]":
//
//	{A Sums}, {Processor_1 Sends}
//	{? Sums}, {Processor_1 Sends} [ordered]
func ParseQuestion(label, text string) (Question, error) {
	t := strings.TrimSpace(text)
	ordered := false
	if strings.HasSuffix(t, "[ordered]") {
		ordered = true
		t = strings.TrimSpace(strings.TrimSuffix(t, "[ordered]"))
	}
	if t == "" {
		return Question{}, fmt.Errorf("sas: empty question")
	}
	var terms []Term
	for len(t) > 0 {
		if len(terms) > 0 {
			if !strings.HasPrefix(t, ",") {
				return Question{}, fmt.Errorf("sas: expected ',' between patterns near %q", t)
			}
			t = strings.TrimSpace(t[1:])
		}
		end := strings.IndexByte(t, '}')
		if !strings.HasPrefix(t, "{") || end < 0 {
			return Question{}, fmt.Errorf("sas: malformed question near %q", t)
		}
		term, err := ParseTerm(t[:end+1])
		if err != nil {
			return Question{}, err
		}
		terms = append(terms, term)
		t = strings.TrimSpace(t[end+1:])
	}
	if label == "" {
		label = text
	}
	q := Question{Label: label, Terms: terms, Ordered: ordered}
	if err := q.validate(); err != nil {
		return Question{}, err
	}
	return q, nil
}
