package sas

import (
	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file implements shadow contexts, our remedy for the first
// limitation of Section 4.2.4: "the SAS approach does not handle
// asynchronous activation of sentences." In the paper's Figure 7 a user
// process calls write() and the kernel performs the disk write later, when
// the function-execution sentence has already left the SAS, so kernel disk
// writes on behalf of func() "could not be measured with the help of the
// SAS alone."
//
// A shadow context closes the gap: at the handoff point (the write()
// system call) the requester captures the currently active sentences; the
// asynchronous worker later measures its low-level sentences *in* that
// captured context, so questions spanning both sides fire as if the
// high-level sentences were still active. This is precisely the mechanism
// the paper's client/server forwarding (Section 4.2.3) uses across space,
// applied across time.

// Shadow is a captured activation context.
type Shadow struct {
	// Entries are the sentences (with their activation instants) that
	// were active at capture time.
	Entries []ActiveSentence
	// CapturedAt records the handoff instant.
	CapturedAt vtime.Time
}

// Capture snapshots the sentences active now. If patterns are given, only
// sentences matching at least one pattern are captured — the same
// size-reduction idea as relevance filtering, since asynchronous work may
// outlive many irrelevant activations.
func (s *SAS) Capture(at vtime.Time, patterns ...Term) Shadow {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := Shadow{CapturedAt: at}
	for _, e := range s.active {
		if len(patterns) > 0 {
			keep := false
			for _, p := range patterns {
				if p.Matches(e.sentence) {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		sh.Entries = append(sh.Entries, ActiveSentence{Sentence: e.sentence, Since: e.since, Depth: e.depth})
	}
	return sh
}

// installShadowLocked temporarily adds the shadow's sentences to the
// active set (those not already present) and returns a restore function.
// Question gate state is deliberately not re-evaluated: shadows affect
// only the measurement being recorded, not satisfied-time accounting.
func (s *SAS) installShadowLocked(sh Shadow) func() {
	var added []string
	for _, e := range sh.Entries {
		key := e.Sentence.Key()
		if _, ok := s.active[key]; ok {
			continue
		}
		s.active[key] = &entry{sentence: e.Sentence, since: e.Since, depth: 1}
		added = append(added, key)
	}
	return func() {
		for _, key := range added {
			delete(s.active, key)
		}
	}
}

// RecordEventInContext is RecordEvent evaluated as if the shadow's
// sentences were still active. It returns the number of questions
// charged.
func (s *SAS) RecordEventInContext(sh Shadow, sn nv.Sentence, at vtime.Time, value float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	restore := s.installShadowLocked(sh)
	defer restore()
	hits := 0
	for _, st := range s.candidatesLocked(sn) {
		if s.questionFiresLocked(st, sn) {
			st.count += value
			hits++
		}
	}
	return hits
}

// RecordSpanInContext is RecordSpan evaluated as if the shadow's
// sentences were still active.
func (s *SAS) RecordSpanInContext(sh Shadow, sn nv.Sentence, from, to vtime.Time, value vtime.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	restore := s.installShadowLocked(sh)
	defer restore()
	hits := 0
	for _, st := range s.candidatesLocked(sn) {
		if s.questionFiresLocked(st, sn) {
			st.evTime += value
			hits++
		}
	}
	return hits
}
