package sas

import (
	"nvmap/internal/nv"
	"nvmap/internal/vtime"
)

// This file implements shadow contexts, our remedy for the first
// limitation of Section 4.2.4: "the SAS approach does not handle
// asynchronous activation of sentences." In the paper's Figure 7 a user
// process calls write() and the kernel performs the disk write later, when
// the function-execution sentence has already left the SAS, so kernel disk
// writes on behalf of func() "could not be measured with the help of the
// SAS alone."
//
// A shadow context closes the gap: at the handoff point (the write()
// system call) the requester captures the currently active sentences; the
// asynchronous worker later measures its low-level sentences *in* that
// captured context, so questions spanning both sides fire as if the
// high-level sentences were still active. This is precisely the mechanism
// the paper's client/server forwarding (Section 4.2.3) uses across space,
// applied across time.

// Shadow is a captured activation context.
type Shadow struct {
	// Entries are the sentences (with their activation instants) that
	// were active at capture time.
	Entries []ActiveSentence
	// CapturedAt records the handoff instant.
	CapturedAt vtime.Time
}

// Capture snapshots the sentences active now. If patterns are given, only
// sentences matching at least one pattern are captured — the same
// size-reduction idea as relevance filtering, since asynchronous work may
// outlive many irrelevant activations.
func (s *SAS) Capture(at vtime.Time, patterns ...Term) Shadow {
	s.structMu.Lock()
	defer s.structMu.Unlock()
	sh := Shadow{CapturedAt: at}
	for i := range s.shards {
		shd := &s.shards[i]
		for j, sn := range shd.sents {
			if len(patterns) > 0 {
				keep := false
				for _, p := range patterns {
					if p.Matches(*sn) {
						keep = true
						break
					}
				}
				if !keep {
					continue
				}
			}
			sh.Entries = append(sh.Entries, ActiveSentence{Sentence: *sn, Since: shd.since[j], Depth: int(shd.depth[j])})
		}
	}
	return sh
}

// adjustCounts folds a shadow insert/remove of sn into the candidate
// questions' match counts without recomputing gates: shadows affect only
// the measurement being recorded, never satisfied-time accounting.
// Called with structMu in write mode.
func (s *SAS) adjustCounts(sn *nv.Sentence, delta int32) {
	s.eachCandidate(sn, func(st *questionState) {
		st.mu.Lock()
		for i := range st.all {
			if st.all[i].matches(sn) {
				st.counts[i] += delta
			}
		}
		st.mu.Unlock()
	})
}

// installShadow temporarily adds the shadow's sentences to the active set
// (those not already present) and returns a restore function. Question
// gate state is deliberately not re-evaluated: the match counts are
// adjusted so event evaluation sees the shadow sentences, but satisfied
// flags and timers are untouched. Called with structMu in write mode (a
// shadowed measurement owns the structure).
func (s *SAS) installShadow(sh Shadow) func() {
	var added []*nv.Sentence
	for i := range sh.Entries {
		a := &sh.Entries[i]
		sn := nv.InternedPtr(&a.Sentence)
		shd := s.shardOf(sn)
		if shd.find(nv.HandleOf(sn)) >= 0 {
			continue
		}
		shd.insert(sn, a.Since, 1, nil)
		s.adjustCounts(sn, +1)
		added = append(added, sn)
	}
	return func() {
		// Row indexes are unstable across swap-removes, so each shadow
		// row is re-found by handle at restore time.
		for _, sn := range added {
			shd := s.shardOf(sn)
			shd.removeAt(shd.find(nv.HandleOf(sn)))
			s.adjustCounts(sn, -1)
		}
	}
}

// RecordEventInContext is RecordEvent evaluated as if the shadow's
// sentences were still active. It returns the number of questions
// charged.
func (s *SAS) RecordEventInContext(sh Shadow, sn nv.Sentence, at vtime.Time, value float64) int {
	p := nv.InternedPtr(&sn)
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.stats.events.Add(1)
	restore := s.installShadow(sh)
	defer restore()
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.count += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	return hits
}

// RecordSpanInContext is RecordSpan evaluated as if the shadow's
// sentences were still active.
func (s *SAS) RecordSpanInContext(sh Shadow, sn nv.Sentence, from, to vtime.Time, value vtime.Duration) int {
	p := nv.InternedPtr(&sn)
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.stats.events.Add(1)
	restore := s.installShadow(sh)
	defer restore()
	c := evalCtx{extra: p}
	hits := 0
	scanned := int64(0)
	s.eachCandidate(p, func(st *questionState) {
		scanned++
		st.mu.Lock()
		if s.fires(st, &c) {
			st.evTime += value
			hits++
		}
		st.mu.Unlock()
	})
	s.stats.candidates.Add(scanned)
	s.stats.matches.Add(c.matches)
	return hits
}
