package sas

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"nvmap/internal/arena"
	"nvmap/internal/nv"
	"nvmap/internal/par"
	"nvmap/internal/vtime"
)

// This file implements Section 4.2.3 of the paper: running the SAS on
// distributed-memory machines. The SAS is duplicated on each node, just as
// application code is duplicated for SPMD programs; each SAS operates
// independently as long as performance questions do not need information
// from several SASes. When a question does span nodes (the paper's
// client/server example: "server reads from disk, client query is
// active"), the node owning a remote sentence exports its activations to
// the node that evaluates the question.

// Event is one activation-state change exported between SASes.
type Event struct {
	Sentence nv.Sentence
	Active   bool
	At       vtime.Time
	// FromNode is the exporting SAS's node label.
	FromNode int
	// Seq is the per-link sequence number stamped by a ReliableLink
	// (zero on plain exports).
	Seq uint64
	// via identifies the ReliableLink that stamped the event; the
	// receiver uses it to find the matching sequencing state.
	via *ReliableLink
}

// Transport carries exported events between SASes. Implementations decide
// delivery semantics: the test transport delivers synchronously, while the
// machine-integrated transport routes events through the simulated
// network, adding latency like any other message.
type Transport interface {
	Send(ev Event, to *SAS)
}

// SyncTransport delivers exported events immediately (shared-memory
// semantics).
type SyncTransport struct{}

// Send applies the event to the destination SAS at once.
func (SyncTransport) Send(ev Event, to *SAS) { to.ApplyRemote(ev) }

type exportRule struct {
	pattern   Term
	to        *SAS
	transport Transport
}

// Export arranges for activation changes of sentences matching pattern to
// be forwarded to the SAS `to` via the transport. In the paper's example
// the client's SAS "would need to send one sentence (i.e., client query
// is active) to the server's SAS whenever that sentence became active or
// inactive" — pattern selects those sentences.
func (s *SAS) Export(pattern Term, to *SAS, transport Transport) error {
	if to == nil {
		return fmt.Errorf("sas: export needs a destination SAS")
	}
	if to == s {
		return fmt.Errorf("sas: cannot export to self")
	}
	if transport == nil {
		transport = SyncTransport{}
	}
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.exports = append(s.exports, exportRule{pattern: pattern, to: to, transport: transport})
	return nil
}

// pendingSend is an export decided under the lock but dispatched after it
// is released, so a synchronous transport may safely call into the
// destination SAS (including a destination that exports back to us).
type pendingSend struct {
	rule exportRule
	ev   Event
}

// collectExports matches an activation change against the export rules;
// active is the sentence's membership after the change (exports fire only
// on transitions, so the caller knows it). Called with structMu held in
// either mode.
func (s *SAS) collectExports(sn *nv.Sentence, at vtime.Time, active bool) []pendingSend {
	if len(s.exports) == 0 || s.replaying > 0 {
		return nil
	}
	var out []pendingSend
	for _, r := range s.exports {
		if r.pattern.Matches(*sn) {
			out = append(out, pendingSend{rule: r, ev: Event{Sentence: *sn, Active: active, At: at, FromNode: s.node}})
		}
	}
	return out
}

func dispatch(pending []pendingSend) {
	for _, p := range pending {
		p.rule.transport.Send(p.ev, p.rule.to)
	}
}

// ApplyRemote applies an exported event from another SAS. Remote
// sentences participate in question evaluation exactly like local ones;
// the paper's model makes no distinction once the sentence has been
// communicated.
func (s *SAS) ApplyRemote(ev Event) {
	if ev.via != nil {
		// Sequenced event from a ReliableLink: dedup, reorder, ack.
		s.applyReliable(ev)
		return
	}
	if ev.Active {
		s.Activate(ev.Sentence, ev.At)
		return
	}
	// A remote deactivation for a sentence we never stored (e.g. the
	// question was added after the activation) is dropped silently: remote
	// traffic is advisory.
	_ = s.Deactivate(ev.Sentence, ev.At)
}

// Registry holds the per-node SASes of one parallel program, mirroring the
// SPMD duplication of application code.
type Registry struct {
	mu    sync.Mutex
	nodes map[int]*SAS
	// sorted is the SASes in node-id order. It is rebuilt — a fresh
	// slice, never mutated in place — each time a node materialises, so
	// a reader that grabbed it under mu may keep using it lock-free.
	sorted []*SAS
	// dense is a lock-free lookup table indexed by node id, rebuilt
	// alongside sorted while the ids stay small and non-negative (the
	// SPMD common case of nodes 0..N-1). Node() hits it without taking
	// mu — monitoring snippets resolve their SAS once per notification,
	// so the mutex was pure overhead on the hot path.
	dense atomic.Pointer[[]*SAS]
	opts  Options
	// asked remembers every question registered through AddQuestionAll,
	// in order, so ResetNode can re-register them after a crash with the
	// same sequentially assigned QuestionIDs.
	asked []Question
	// pool fans per-node reads (Result, Stats, ApplyRemote) out across
	// the SASes; it materialises on the first fan-out that clears
	// registryFanOut (see Options.Workers).
	pool *par.Pool

	// aggMu guards the aggregation scratch arenas below: per-call rows
	// (results, errors, presence flags, stats) are carved from the
	// arenas and reclaimed wholesale when the aggregation returns, so
	// the periodic answer-collection cycle allocates nothing after
	// warm-up.
	aggMu    sync.Mutex
	resRows  arena.Arena[Result]
	errRows  arena.Arena[error]
	hasRows  arena.Arena[bool]
	statRows arena.Arena[Stats]
}

// registryFanOut is the minimum node count for registry operations to
// engage the worker pool; below it the fan-out costs more than the
// per-node work. Scheduling only — results are identical either way.
const registryFanOut = 8

// fanOut runs f(i) for every SAS of the snapshot, on the pool when the
// partition is big enough. f must confine its writes to slot i and to
// nodes[i]'s own state; distinct SASes lock independently, so per-node
// reads and remote applications on different SASes never contend.
func (r *Registry) fanOut(nodes []*SAS, f func(i int)) {
	if len(nodes) < registryFanOut {
		for i := range nodes {
			f(i)
		}
		return
	}
	r.mu.Lock()
	if r.pool == nil {
		r.pool = par.New(r.opts.Workers)
	}
	p := r.pool
	r.mu.Unlock()
	p.Do(len(nodes), f)
}

// NewRegistry returns a registry that creates per-node SASes with the
// given base options (the Node field is overridden per node).
func NewRegistry(opts Options) *Registry {
	return &Registry{nodes: make(map[int]*SAS), opts: opts}
}

// denseLimit bounds the dense lookup table: a registry with node ids
// past it (or negative) serves lookups from the map instead.
const denseLimit = 4096

// Node returns (creating on first use) the SAS for a node.
func (r *Registry) Node(node int) *SAS {
	if d := r.dense.Load(); d != nil && node >= 0 && node < len(*d) {
		if s := (*d)[node]; s != nil {
			return s
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.nodes[node]
	if !ok {
		o := r.opts
		o.Node = node
		s = New(o)
		r.nodes[node] = s
		// Rebuild the sorted snapshot rather than inserting in place:
		// readers hold the old slice lock-free.
		out := make([]*SAS, 0, len(r.nodes))
		for _, x := range r.nodes {
			out = append(out, x)
		}
		slices.SortFunc(out, func(a, b *SAS) int { return a.node - b.node })
		r.sorted = out
		r.rebuildDenseLocked()
	}
	return s
}

// rebuildDenseLocked refreshes the lock-free node lookup table from the
// sorted snapshot. Registries with negative or very large node ids keep
// a nil table and fall back to the map.
func (r *Registry) rebuildDenseLocked() {
	maxNode := -1
	for _, s := range r.sorted {
		if s.node < 0 || s.node >= denseLimit {
			r.dense.Store(nil)
			return
		}
		if s.node > maxNode {
			maxNode = s.node
		}
	}
	d := make([]*SAS, maxNode+1)
	for _, s := range r.sorted {
		d[s.node] = s
	}
	r.dense.Store(&d)
}

// Nodes returns all materialised SASes sorted by node id. The slice is
// a shared immutable snapshot — callers must not modify it.
func (r *Registry) Nodes() []*SAS {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sorted
}

// AddQuestionAll registers the same question on every materialised SAS
// and returns the per-node IDs keyed by node. This supports the common
// SPMD pattern where all of Figure 6's questions "can be answered without
// sharing any information between nodes": each node accumulates its local
// share and the tool aggregates.
func (r *Registry) AddQuestionAll(q Question) (map[int]QuestionID, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.asked = append(r.asked, q)
	r.mu.Unlock()
	ids := make(map[int]QuestionID)
	// Compile once: handles come from the process-wide interner, so the
	// compiled matching state is node-independent and every SAS shares
	// it instead of recompiling the pattern vector per node.
	cq := compileQuestion(q)
	for _, s := range r.Nodes() {
		id, err := s.addQuestion(q, cq)
		if err != nil {
			return nil, err
		}
		ids[s.node] = id
	}
	return ids, nil
}

// AggregateResult sums the per-node results of a question registered via
// AddQuestionAll. On large partitions the per-node evaluations run on
// the registry's worker pool; the fold itself always walks nodes in id
// order, so the aggregate — and which node's error is reported when
// several fail — is identical under any Workers setting.
func (r *Registry) AggregateResult(ids map[int]QuestionID, now vtime.Time) (Result, error) {
	nodes := r.Nodes()
	r.aggMu.Lock()
	defer func() {
		r.resRows.Reset()
		r.errRows.Reset()
		r.hasRows.Reset()
		r.aggMu.Unlock()
	}()
	res := r.resRows.Alloc(len(nodes))
	errs := r.errRows.Alloc(len(nodes))
	has := r.hasRows.Alloc(len(nodes))
	r.fanOut(nodes, func(i int) {
		id, ok := ids[nodes[i].node]
		if !ok {
			return
		}
		has[i] = true
		res[i], errs[i] = nodes[i].Result(id, now)
	})
	var agg Result
	first := true
	for i := range nodes {
		if !has[i] {
			continue
		}
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if first {
			agg.Question = res[i].Question
			first = false
		}
		agg.Count += res[i].Count
		agg.EventTime += res[i].EventTime
		agg.SatisfiedTime += res[i].SatisfiedTime
		agg.Satisfied = agg.Satisfied || res[i].Satisfied
	}
	return agg, nil
}

// ArenaStats reports the registry's aggregation scratch arenas: the
// deepest combined allocation high water and the combined slab
// capacity, in rows, across the four row types. Exposed for the
// observability plane's arena gauges.
func (r *Registry) ArenaStats() (highWater, capacity int) {
	r.aggMu.Lock()
	defer r.aggMu.Unlock()
	highWater = r.resRows.HighWater() + r.errRows.HighWater() + r.hasRows.HighWater() + r.statRows.HighWater()
	capacity = r.resRows.Cap() + r.errRows.Cap() + r.hasRows.Cap() + r.statRows.Cap()
	return highWater, capacity
}

// TotalStats sums the notification statistics over every node, reading
// the per-node counters on the worker pool for large partitions.
func (r *Registry) TotalStats() Stats {
	nodes := r.Nodes()
	r.aggMu.Lock()
	defer func() {
		r.statRows.Reset()
		r.aggMu.Unlock()
	}()
	sts := r.statRows.Alloc(len(nodes))
	r.fanOut(nodes, func(i int) { sts[i] = nodes[i].Stats() })
	var t Stats
	for _, st := range sts {
		t.Notifications += st.Notifications
		t.Ignored += st.Ignored
		t.Stored += st.Stored
		t.Evaluations += st.Evaluations
		t.Events += st.Events
		t.CandidatesScanned += st.CandidatesScanned
		t.MatchesEvaluated += st.MatchesEvaluated
	}
	return t
}

// ApplyRemoteAll applies one exported activation event to every
// materialised SAS except the exporter's own — the broadcast form of
// cross-node forwarding, for sentences every node's questions may need
// (the paper's duplicated-SAS model makes replication the common case).
// Distinct SASes apply the event under their own locks, so large
// partitions fan out on the worker pool. Each SAS's resulting state
// depends only on its own prior state and the event, so the fan-out is
// deterministic; a destination whose own export rules match the event
// would cascade sends in pool order, so registries wired into an export
// mesh should run with Workers 1.
func (r *Registry) ApplyRemoteAll(ev Event) {
	nodes := r.Nodes()
	r.fanOut(nodes, func(i int) {
		if nodes[i].node == ev.FromNode {
			return
		}
		nodes[i].ApplyRemote(ev)
	})
}
