package budget

import (
	"errors"
	"testing"

	"nvmap/internal/vtime"
)

func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	g.ChargeOp()
	if err := g.Check(1000); err != nil {
		t.Fatalf("nil governor check: %v", err)
	}
	if err := g.ChargeAlloc(1<<40, 0); err != nil {
		t.Fatalf("nil governor alloc: %v", err)
	}
	if got := g.Stats(); got != (Stats{}) {
		t.Fatalf("nil governor stats: %+v", got)
	}
}

func TestMaxOps(t *testing.T) {
	g := New(Limits{MaxOps: 3})
	for i := 0; i < 3; i++ {
		g.ChargeOp()
		if err := g.Check(vtime.Time(i)); err != nil {
			t.Fatalf("check %d under limit: %v", i, err)
		}
	}
	g.ChargeOp()
	err := g.Check(77)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("over-limit check: %v", err)
	}
	var ex *Exceeded
	if !errors.As(err, &ex) {
		t.Fatalf("error is not *Exceeded: %v", err)
	}
	if ex.Resource != "machine operations" || ex.Limit != 3 || ex.Actual != 4 || ex.At != 77 {
		t.Fatalf("exceeded detail: %+v", ex)
	}
}

func TestMaxVirtualTime(t *testing.T) {
	g := New(Limits{MaxVirtualTime: 100 * vtime.Nanosecond})
	if err := g.Check(vtime.Time(0).Add(100 * vtime.Nanosecond)); err != nil {
		t.Fatalf("at the ceiling: %v", err)
	}
	if err := g.Check(vtime.Time(0).Add(101 * vtime.Nanosecond)); !errors.Is(err, ErrExceeded) {
		t.Fatalf("past the ceiling: %v", err)
	}
}

func TestMaxAllocBytes(t *testing.T) {
	g := New(Limits{MaxAllocBytes: 1024})
	if err := g.ChargeAlloc(1024, 5); err != nil {
		t.Fatalf("at the ceiling: %v", err)
	}
	err := g.ChargeAlloc(1, 9)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("past the ceiling: %v", err)
	}
	if st := g.Stats(); st.AllocBytes != 1025 {
		t.Fatalf("alloc total %d, want 1025", st.AllocBytes)
	}
}

// TestBacklogShedsBeforeFailing drives the backlog probe through the
// ladder: pressure escalates the shed level (notifying the hook) and
// only hard-fails once every level is spent.
func TestBacklogShedsBeforeFailing(t *testing.T) {
	backlog := 0
	g := New(Limits{MaxChannelBacklog: 100})
	g.SetProbes(func() int { return backlog }, nil)
	var shedCalls []int
	g.OnShed(func(level int) { shedCalls = append(shedCalls, level) })

	check := func() error { return g.Check(0) } // checks 1, 9, 17, ... probe
	probe := func() error {
		// Advance to the next probing check (checks%8 == 1).
		for i := 0; i < probeEvery; i++ {
			if err := check(); err != nil {
				return err
			}
		}
		return nil
	}

	backlog = 10
	if err := check(); err != nil { // first check probes
		t.Fatalf("low pressure: %v", err)
	}
	if len(shedCalls) != 0 {
		t.Fatalf("shed at low pressure: %v", shedCalls)
	}
	backlog = 80 // >= 75% of 100
	for i := 1; i <= MaxShedLevel; i++ {
		if err := probe(); err != nil {
			t.Fatalf("shed escalation %d: %v", i, err)
		}
	}
	if len(shedCalls) != MaxShedLevel {
		t.Fatalf("shed calls %v, want 1..%d", shedCalls, MaxShedLevel)
	}
	// Still under the hard limit: ladder exhausted but no failure.
	if err := probe(); err != nil {
		t.Fatalf("exhausted ladder under limit: %v", err)
	}
	backlog = 101
	err := probe()
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("over limit with ladder spent: %v", err)
	}
	st := g.Stats()
	if st.ShedLevel != MaxShedLevel || st.Sheds != MaxShedLevel {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxBacklog != 101 {
		t.Fatalf("backlog high-water %d, want 101", st.MaxBacklog)
	}
}

func TestActiveSetFailsWithoutShedding(t *testing.T) {
	active := 0
	g := New(Limits{MaxActiveSentences: 10})
	g.SetProbes(nil, func() int { return active })
	active = 10
	if err := g.Check(0); err != nil {
		t.Fatalf("at the ceiling: %v", err)
	}
	active = 11
	// Next probing check is the 9th.
	var err error
	for i := 0; i < probeEvery && err == nil; i++ {
		err = g.Check(0)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("past the ceiling: %v", err)
	}
	if st := g.Stats(); st.Sheds != 0 {
		t.Fatalf("active-set overflow shed instead of failing: %+v", st)
	}
}
