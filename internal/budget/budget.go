// Package budget is the session's resource governor: hard ceilings on
// what one run may consume — virtual time, machine operations, daemon
// channel backlog, SAS active-set size, allocation bytes — with a
// graceful-degradation ladder that sheds measurement overhead before
// hard-failing. It exists for the multi-tenant direction on the
// roadmap: a service hosting many sessions needs each one bounded, and
// a bounded session needs to degrade (sample less, batch harder) before
// it is killed.
//
// The governor splits its work along the session's concurrency
// boundary. Charging (ChargeOp, ChargeAlloc) is an atomic add and may
// happen on any goroutine, including region workers; the sum is
// order-independent, so the total observed at any check point is
// byte-identical across worker counts. Checking (Check) runs only on
// the session's driving goroutine, at machine operation boundaries
// outside parallel regions — so the instant a budget trips is a
// deterministic function of the program, the fault plan and the limits,
// never of host scheduling.
package budget

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nvmap/internal/vtime"
)

// Limits are the ceilings a governor enforces. A zero field means
// unlimited; the zero Limits value governs nothing.
type Limits struct {
	// MaxVirtualTime caps the session's global virtual clock. The run
	// aborts at the first operation boundary at or past the ceiling.
	MaxVirtualTime vtime.Duration
	// MaxOps caps the total count of machine operations (compute,
	// send, collective) the run may issue.
	MaxOps int64
	// MaxChannelBacklog caps the daemon channel's undrained queue. The
	// backlog is sheddable: before failing, the governor asks the tool
	// to sample less often and drain in larger batches.
	MaxChannelBacklog int
	// MaxActiveSentences caps the summed active-set size across every
	// per-node SAS. Not sheddable — the active set tracks program
	// structure, not measurement frequency — so exceeding it fails at
	// the next probe.
	MaxActiveSentences int
	// MaxAllocBytes caps the estimated bytes of parallel-array payload
	// the program allocates. Allocation is program semantics, so it is
	// never shed: the allocating operation aborts.
	MaxAllocBytes int64
}

// Zero reports whether the limits govern nothing.
func (l Limits) Zero() bool { return l == Limits{} }

// ErrExceeded is the sentinel every budget failure unwraps to:
// errors.Is(err, budget.ErrExceeded) identifies an over-budget abort
// regardless of which ceiling tripped.
var ErrExceeded = errors.New("budget exceeded")

// Exceeded reports one ceiling violation: which resource, the limit,
// the actual value, and the virtual instant of the check that caught
// it. It unwraps to ErrExceeded.
type Exceeded struct {
	Resource string
	Limit    int64
	Actual   int64
	At       vtime.Time
}

func (e *Exceeded) Error() string {
	return fmt.Sprintf("budget exceeded: %s %d > limit %d at %v", e.Resource, e.Actual, e.Limit, e.At)
}

func (e *Exceeded) Unwrap() error { return ErrExceeded }

// MaxShedLevel bounds the degradation ladder. Each level doubles the
// tool's effective sampling interval and its drain batch floor; past
// the last level an over-limit backlog hard-fails.
const MaxShedLevel = 3

// probeEvery is how many driving-goroutine checks pass between the
// expensive probes (channel backlog, SAS active-set size). Operation
// and virtual-time ceilings are checked every time — they are plain
// comparisons — but the probes walk shared structures under their own
// locks, so they are sampled. Deterministic: the check counter advances
// only on the driving goroutine.
const probeEvery = 8

// Stats is the governor's ledger, surfaced in the degradation report.
type Stats struct {
	// Ops and AllocBytes are the charged totals.
	Ops        int64
	AllocBytes int64
	// Checks counts driving-goroutine check points.
	Checks int64
	// MaxBacklog and MaxActiveSet are high-water marks over the sampled
	// probes (zero when the corresponding ceiling is unset).
	MaxBacklog   int
	MaxActiveSet int
	// ShedLevel is the final degradation level; Sheds counts the
	// escalations that reached it.
	ShedLevel int
	Sheds     int
}

// Governor enforces one session's Limits.
type Governor struct {
	lim Limits

	// Charged on any goroutine.
	ops   atomic.Int64
	alloc atomic.Int64

	// Everything below is written under mu. Check holds it for the
	// whole check so exporters reading Stats mid-run see a consistent
	// snapshot.
	mu        sync.Mutex
	checks    int64
	maxBack   int
	maxActive int
	shedLevel int
	sheds     int
	backlog   func() int
	activeSet func() int
	onShed    func(level int)
}

// New builds a governor over the limits.
func New(lim Limits) *Governor { return &Governor{lim: lim} }

// Limits returns the configured ceilings.
func (g *Governor) Limits() Limits { return g.lim }

// SetProbes installs the backlog and active-set probes. Either may be
// nil, disabling that ceiling's enforcement.
func (g *Governor) SetProbes(backlog, activeSet func() int) {
	g.mu.Lock()
	g.backlog, g.activeSet = backlog, activeSet
	g.mu.Unlock()
}

// OnShed installs the degradation hook, called (under the governor's
// lock, on the driving goroutine) each time the shed level escalates.
func (g *Governor) OnShed(fn func(level int)) {
	g.mu.Lock()
	g.onShed = fn
	g.mu.Unlock()
}

// ChargeOp records one machine operation. Any goroutine.
func (g *Governor) ChargeOp() {
	if g == nil {
		return
	}
	g.ops.Add(1)
}

// Ops returns the charged operation total.
func (g *Governor) Ops() int64 {
	if g == nil {
		return 0
	}
	return g.ops.Load()
}

// ChargeAlloc records an allocation estimate and enforces the
// allocation ceiling immediately — allocation cannot be shed or
// deferred to the next boundary, the memory is about to exist.
func (g *Governor) ChargeAlloc(bytes int64, now vtime.Time) error {
	if g == nil {
		return nil
	}
	total := g.alloc.Add(bytes)
	if l := g.lim.MaxAllocBytes; l > 0 && total > l {
		return &Exceeded{Resource: "allocation bytes", Limit: l, Actual: total, At: now}
	}
	return nil
}

// Check enforces every ceiling at a machine operation boundary. It must
// run only on the session's driving goroutine, outside parallel
// regions. A non-nil return is the abort verdict; the caller converts
// it into the session's typed error with the boundary's op/node/instant.
func (g *Governor) Check(now vtime.Time) error {
	if g == nil {
		return nil
	}
	ops := g.ops.Load()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checks++
	if l := g.lim.MaxOps; l > 0 && ops > l {
		return &Exceeded{Resource: "machine operations", Limit: l, Actual: ops, At: now}
	}
	if l := g.lim.MaxVirtualTime; l > 0 && now.Sub(0) > l {
		return &Exceeded{Resource: "virtual time (ns)", Limit: int64(l), Actual: int64(now.Sub(0)), At: now}
	}
	if g.checks%probeEvery != 1 && probeEvery > 1 {
		return nil
	}
	if l := g.lim.MaxChannelBacklog; l > 0 && g.backlog != nil {
		b := g.backlog()
		if b > g.maxBack {
			g.maxBack = b
		}
		switch {
		case b > l && g.shedLevel >= MaxShedLevel:
			return &Exceeded{Resource: "daemon-channel backlog", Limit: int64(l), Actual: int64(b), At: now}
		case 4*b >= 3*l:
			// At 75% pressure (or past the limit with shed headroom
			// left) climb the ladder instead of failing.
			g.escalate()
		}
	}
	if l := g.lim.MaxActiveSentences; l > 0 && g.activeSet != nil {
		a := g.activeSet()
		if a > g.maxActive {
			g.maxActive = a
		}
		if a > l {
			return &Exceeded{Resource: "SAS active sentences", Limit: int64(l), Actual: int64(a), At: now}
		}
	}
	return nil
}

// escalate climbs one shed level and notifies the hook. Caller holds mu.
func (g *Governor) escalate() {
	if g.shedLevel >= MaxShedLevel {
		return
	}
	g.shedLevel++
	g.sheds++
	if g.onShed != nil {
		g.onShed(g.shedLevel)
	}
}

// Stats snapshots the ledger.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Ops:          g.ops.Load(),
		AllocBytes:   g.alloc.Load(),
		Checks:       g.checks,
		MaxBacklog:   g.maxBack,
		MaxActiveSet: g.maxActive,
		ShedLevel:    g.shedLevel,
		Sheds:        g.sheds,
	}
}
