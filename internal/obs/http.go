package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// Handler returns an expvar-style HTTP debug handler over the plane:
//
//	/            index
//	/metrics     Prometheus text snapshot (all metrics, unstable included)
//	/trace       Chrome trace_event JSON of the retained spans
//	/debug/vars  flat JSON object of every metric (expvar convention)
//	/stages      per-stage span/time totals, plain text
//
// The handler is read-only and safe to serve while a session runs; it
// is opt-in (nvprof serve), never started by the library itself. A
// panic while rendering any endpoint is contained to a 500 response —
// the debug plane must never take the process down with it.
func Handler(p *Plane) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "nvmap observability plane\n\n")
		fmt.Fprintf(w, "  /metrics     Prometheus text snapshot\n")
		fmt.Fprintf(w, "  /trace       Chrome trace_event JSON (load in Perfetto)\n")
		fmt.Fprintf(w, "  /debug/vars  expvar-style JSON\n")
		fmt.Fprintf(w, "  /stages      per-stage totals\n\n")
		fmt.Fprintf(w, "spans recorded: %d (retained %d, evicted %d)\n",
			p.Trace().Count(), len(p.Trace().Spans()), p.Trace().Dropped())
	})
	// The exporter endpoints render to memory first: an export error
	// (including a contained exporter panic) becomes a clean 500 instead
	// of a 200 with a truncated body.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var b bytes.Buffer
		if err := WritePrometheus(&b, p.Metrics, true); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(b.Bytes())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		var b bytes.Buffer
		if err := WriteChromeTrace(&b, p.Trace()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b.Bytes())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		samples := p.Metrics.Snapshot(true)
		fmt.Fprintf(w, "{\n")
		for i, s := range samples {
			comma := ","
			if i == len(samples)-1 {
				comma = ""
			}
			if s.Kind == KindHistogram {
				fmt.Fprintf(w, "%s: {\"count\": %d, \"sum\": %s}%s\n",
					strconv.Quote(s.Name), s.Count, formatFloat(s.Sum), comma)
				continue
			}
			fmt.Fprintf(w, "%s: %s%s\n", strconv.Quote(s.Name), formatFloat(s.Value), comma)
		}
		fmt.Fprintf(w, "}\n")
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		totals := p.Trace().Totals()
		type row struct {
			stage Stage
			t     StageTotals
		}
		rows := []row{}
		for i := 0; i < NumStages; i++ {
			if totals[i].Spans > 0 {
				rows = append(rows, row{Stage(i), totals[i]})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].t.Self > rows[j].t.Self })
		fmt.Fprintf(w, "%-22s %-12s %10s %14s %14s\n", "stage", "level", "spans", "vtime", "self-wall")
		for _, r := range rows {
			fmt.Fprintf(w, "%-22s %-12s %10d %14s %14s\n",
				r.stage, r.stage.Level(), r.t.Spans,
				fmtNanos(r.t.VTime), fmtNanos(r.t.Self))
		}
	})
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				// Headers may already be out; best-effort status, and
				// the connection stays up for the next request.
				http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		mux.ServeHTTP(w, req)
	})
}

// fmtNanos renders a nanosecond quantity human-readably.
func fmtNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return strconv.FormatFloat(float64(ns)/1e9, 'f', 3, 64) + "s"
	case ns >= 1e6:
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64) + "ms"
	case ns >= 1e3:
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64) + "µs"
	default:
		return strconv.FormatInt(ns, 10) + "ns"
	}
}
