package obs

import (
	"fmt"
	"sort"
	"strings"

	"nvmap/internal/vtime"
)

// StageCost is one stage's share of the tool's self-cost during a run.
type StageCost struct {
	Stage Stage
	// Spans is how many spans the stage recorded during the run.
	Spans uint64
	// VTime is the stage's summed virtual-time extent.
	VTime vtime.Duration
	// Wall and SelfWall are the stage's inclusive and exclusive
	// wall-clock cost in host nanoseconds. SelfWall values over all
	// stages are disjoint and sum to (at most) RunWall.
	Wall     int64
	SelfWall int64
}

// LevelCost aggregates stage costs per abstraction level.
type LevelCost struct {
	Level    Level
	Spans    uint64
	SelfWall int64
}

// PerturbationReport is the tool's instrumentation-cost accounting for
// one Session.Run: every wall-clock nanosecond of the run, attributed
// to the named pipeline stage that spent it — the paper's §5–§6
// instrumentation-cost discussion applied to the tool itself. Wall
// values are host measurements and vary run to run; the report's
// structure (which stages ran, how many spans, their virtual-time
// totals) is deterministic across worker counts.
type PerturbationReport struct {
	// RunWall is the measured wall-clock duration of Session.Run in
	// host nanoseconds.
	RunWall int64
	// Stages lists every stage that recorded spans during the run, in
	// stage order.
	Stages []StageCost
	// Unattributed is RunWall minus the summed exclusive self-cost of
	// all stages: time the run spent outside any instrumented span
	// (clamped at zero).
	Unattributed int64
}

// BuildPerturbation diffs two stage-totals snapshots taken around a run
// and attributes the measured runWall across them.
func BuildPerturbation(before, after [NumStages]StageTotals, runWall int64) PerturbationReport {
	r := PerturbationReport{RunWall: runWall}
	var attributed int64
	for i := 0; i < NumStages; i++ {
		d := StageTotals{
			Spans: after[i].Spans - before[i].Spans,
			VTime: after[i].VTime - before[i].VTime,
			Wall:  after[i].Wall - before[i].Wall,
			Self:  after[i].Self - before[i].Self,
		}
		if d.Spans == 0 {
			continue
		}
		r.Stages = append(r.Stages, StageCost{
			Stage:    Stage(i),
			Spans:    d.Spans,
			VTime:    vtime.Duration(d.VTime),
			Wall:     d.Wall,
			SelfWall: d.Self,
		})
		attributed += d.Self
	}
	if runWall > attributed {
		r.Unattributed = runWall - attributed
	}
	return r
}

// Attributed returns the fraction of RunWall attributed to named
// stages, in [0, 1]. The acceptance bar is >= 0.95.
func (r PerturbationReport) Attributed() float64 {
	if r.RunWall <= 0 {
		return 1
	}
	return float64(r.RunWall-r.Unattributed) / float64(r.RunWall)
}

// ByLevel folds the stage costs into abstraction levels, largest
// self-cost first (ties broken by level name for determinism).
func (r PerturbationReport) ByLevel() []LevelCost {
	acc := map[Level]*LevelCost{}
	for _, s := range r.Stages {
		lv := s.Stage.Level()
		c := acc[lv]
		if c == nil {
			c = &LevelCost{Level: lv}
			acc[lv] = c
		}
		c.Spans += s.Spans
		c.SelfWall += s.SelfWall
	}
	out := make([]LevelCost, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfWall != out[j].SelfWall {
			return out[i].SelfWall > out[j].SelfWall
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// Structure renders the deterministic part of the report — stage
// sentences, span counts and virtual-time totals, without wall values —
// identical across worker counts for the same workload. Golden tests
// compare this string.
func (r PerturbationReport) Structure() string {
	var b strings.Builder
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-28s spans=%-7d vtime=%s\n", s.Stage.Sentence(), s.Spans, s.VTime)
	}
	return b.String()
}

// String renders the full report as a table: per-stage self-cost with
// percentages of the measured run wall, a per-level summary, and the
// attribution fraction. Wall values are host measurements
// (nondeterministic); use Structure for golden comparison.
func (r PerturbationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perturbation report: run wall %s, %.1f%% attributed\n",
		fmtNanos(r.RunWall), 100*r.Attributed())
	fmt.Fprintf(&b, "  %-28s %8s %14s %14s %7s\n", "stage", "spans", "vtime", "self-wall", "%run")
	for _, s := range r.Stages {
		pct := 0.0
		if r.RunWall > 0 {
			pct = 100 * float64(s.SelfWall) / float64(r.RunWall)
		}
		fmt.Fprintf(&b, "  %-28s %8d %14s %14s %6.2f%%\n",
			s.Stage.Sentence(), s.Spans, s.VTime, fmtNanos(s.SelfWall), pct)
	}
	pct := 0.0
	if r.RunWall > 0 {
		pct = 100 * float64(r.Unattributed) / float64(r.RunWall)
	}
	fmt.Fprintf(&b, "  %-28s %8s %14s %14s %6.2f%%\n", "(unattributed)", "", "", fmtNanos(r.Unattributed), pct)
	fmt.Fprintf(&b, "by level:\n")
	for _, c := range r.ByLevel() {
		lpct := 0.0
		if r.RunWall > 0 {
			lpct = 100 * float64(c.SelfWall) / float64(r.RunWall)
		}
		fmt.Fprintf(&b, "  %-12s %8d spans %14s %6.2f%%\n", c.Level, c.Spans, fmtNanos(c.SelfWall), lpct)
	}
	return b.String()
}
