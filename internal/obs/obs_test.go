package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nvmap/internal/vtime"
)

// stubClock returns a wall clock that advances a fixed step per reading.
func stubClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	ref := tr.Begin(StageCompute, "x", 0, 0)
	tr.End(ref, 10)
	tr.Event(StageSend, "y", 1, 5)
	if tr.Spans() != nil || tr.Count() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	var p *Plane
	if p.Enabled() || p.Trace() != nil {
		t.Fatal("nil plane must be disabled")
	}
}

func TestTracerNestingSelfCost(t *testing.T) {
	tr := NewTracer(0)
	// Each clock reading advances 10ns: outer Begin@10, inner Begin@20,
	// inner End@30 (inner wall 10), outer End@40 (outer wall 30, self 20).
	tr.SetWallClock(stubClock(10))
	outer := tr.Begin(StageExecute, "run", NodeCP, 0)
	inner := tr.Begin(StageSampleRead, "", NodeCP, 100)
	tr.End(inner, 200)
	tr.End(outer, 1000)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Inner closes first, so it records first.
	in, out := spans[0], spans[1]
	if in.Stage != StageSampleRead || out.Stage != StageExecute {
		t.Fatalf("unexpected stage order: %v, %v", in.Stage, out.Stage)
	}
	if in.ID != 2 || out.ID != 1 {
		t.Fatalf("deterministic IDs: inner=%d outer=%d", in.ID, out.ID)
	}
	if in.Wall != 10 || in.Self != 10 {
		t.Fatalf("inner wall/self = %d/%d, want 10/10", in.Wall, in.Self)
	}
	if out.Wall != 30 || out.Self != 20 {
		t.Fatalf("outer wall/self = %d/%d, want 30/20", out.Wall, out.Self)
	}
	if out.Start != 0 || out.End != 1000 || in.Start != 100 || in.End != 200 {
		t.Fatal("virtual intervals wrong")
	}

	tot := tr.Totals()
	if tot[StageExecute].Spans != 1 || tot[StageExecute].Self != 20 {
		t.Fatalf("execute totals %+v", tot[StageExecute])
	}
	if tot[StageSampleRead].VTime != 100 {
		t.Fatalf("sample_read vtime %d", tot[StageSampleRead].VTime)
	}
}

func TestTracerEndClosesAbandonedChildren(t *testing.T) {
	tr := NewTracer(0)
	tr.SetWallClock(stubClock(1))
	outer := tr.Begin(StageExecute, "", NodeCP, 0)
	tr.Begin(StageDaemonSend, "", NodeCP, 5) // no End (panic path)
	tr.End(outer, 50)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (abandoned child closed)", len(spans))
	}
	if spans[0].Stage != StageDaemonSend || spans[0].End != 50 {
		t.Fatalf("abandoned child should close at outer end: %+v", spans[0])
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(StageSend, "", i, vtime.Time(i))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d, want 4", len(spans))
	}
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].ID, spans[3].ID)
	}
	if tr.Dropped() != 6 || tr.Count() != 10 {
		t.Fatalf("dropped=%d count=%d", tr.Dropped(), tr.Count())
	}
	if tr.Totals()[StageSend].Spans != 10 {
		t.Fatal("totals must survive eviction")
	}
}

func TestTracerUnbounded(t *testing.T) {
	tr := NewTracer(-1)
	for i := 0; i < 3*DefaultTraceCapacity/2; i++ {
		tr.Event(StageCompute, "", 0, 0)
	}
	if got := len(tr.Spans()); got != 3*DefaultTraceCapacity/2 {
		t.Fatalf("unbounded tracer retained %d", got)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nvmap_x_total", "x")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("nvmap_x_total", "x") != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("nvmap_depth", "d")
	g.Set(7)
	g.Add(-2)
	g.Max(3) // below current; no-op
	g.Max(11)
	if g.Value() != 11 {
		t.Fatalf("gauge = %d", g.Value())
	}
	h := r.Histogram("nvmap_lat", "l", vtime.Microsecond)
	h.Observe(10, 2)
	h.ObserveSpan(0, 1000, 3)
	cnt, sum := h.snapshot()
	if cnt != 2 || sum != 5 {
		t.Fatalf("hist count/sum = %d/%v", cnt, sum)
	}
	r.Func("nvmap_pull", "p", KindGauge, false, func() float64 { return 42 })
	r.Func("nvmap_shaky", "s", KindGauge, true, func() float64 { return 1 })

	stable := r.Snapshot(false)
	names := []string{}
	for _, s := range stable {
		names = append(names, s.Name)
	}
	want := []string{"nvmap_depth", "nvmap_lat", "nvmap_pull", "nvmap_x_total"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("stable snapshot names %v, want %v", names, want)
	}
	all := r.Snapshot(true)
	if len(all) != 5 {
		t.Fatalf("full snapshot has %d entries", len(all))
	}
	if s, ok := r.Lookup("nvmap_pull"); !ok || s.Value != 42 {
		t.Fatalf("lookup pull: %+v %v", s, ok)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", 0).Observe(0, 1)
	r.Func("d", "", KindGauge, false, func() float64 { return 0 })
	if r.Snapshot(true) != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("nvmap_daemon_sent_total", "Messages offered to the daemon channel.").Add(12)
	r.Gauge("nvmap_sas_active", "Active sentences.").Set(3)
	h := r.Histogram("nvmap_span_vtime", "Per-span virtual time.", vtime.Microsecond)
	h.Observe(100, 1.5)
	var b bytes.Buffer
	if err := WritePrometheus(&b, r, false); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP nvmap_daemon_sent_total Messages offered to the daemon channel.
# TYPE nvmap_daemon_sent_total counter
nvmap_daemon_sent_total 12
# HELP nvmap_sas_active Active sentences.
# TYPE nvmap_sas_active gauge
nvmap_sas_active 3
# HELP nvmap_span_vtime Per-span virtual time.
# TYPE nvmap_span_vtime histogram
nvmap_span_vtime_bucket{le="+Inf"} 1
nvmap_span_vtime_sum 1.5
nvmap_span_vtime_count 1
`
	if got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.SetWallClock(stubClock(1))
	ref := tr.Begin(StageRegion, "elementwise", NodeCP, 1000)
	tr.End(ref, 251000)
	tr.Event(StageSASMatch, "{Block 3 send}", 2, 1500)
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	// 2 thread_name metadata rows (cp, node 2) + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events:\n%s", len(doc.TraceEvents), b.String())
	}
	var x map[string]any
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			x = e
		}
	}
	if x == nil {
		t.Fatal("no complete event")
	}
	if x["ts"].(float64) != 1.0 || x["dur"].(float64) != 250.0 {
		t.Fatalf("virtual microsecond conversion wrong: ts=%v dur=%v", x["ts"], x["dur"])
	}
	if x["name"] != "region elementwise" || x["cat"] != "Machine" {
		t.Fatalf("span naming: %v / %v", x["name"], x["cat"])
	}
}

func TestChromeTraceByteStable(t *testing.T) {
	build := func() string {
		tr := NewTracer(0)
		tr.SetWallClock(stubClock(3)) // wall values must NOT leak into output
		ref := tr.Begin(StageDispatch, "fill", NodeCP, 0)
		tr.Event(StageSend, "", 1, 10)
		tr.End(ref, 500)
		var b bytes.Buffer
		if err := WriteChromeTrace(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build()
	tr2 := NewTracer(0)
	tr2.SetWallClock(stubClock(997)) // wildly different wall costs
	ref := tr2.Begin(StageDispatch, "fill", NodeCP, 0)
	tr2.Event(StageSend, "", 1, 10)
	tr2.End(ref, 500)
	var b2 bytes.Buffer
	if err := WriteChromeTrace(&b2, tr2); err != nil {
		t.Fatal(err)
	}
	if a != b2.String() {
		t.Fatalf("chrome trace depends on wall clock:\n%s\nvs\n%s", a, b2.String())
	}
}

func TestPerturbationReport(t *testing.T) {
	tr := NewTracer(0)
	tr.SetWallClock(stubClock(10))
	before := tr.Totals()
	run := tr.Begin(StageExecute, "program", NodeCP, 0)
	s := tr.Begin(StageSampleRead, "", NodeCP, 100)
	tr.End(s, 300)
	tr.End(run, 1000)
	after := tr.Totals()
	runWall := after[StageExecute].Wall // 30: the run span's inclusive wall

	r := BuildPerturbation(before, after, runWall)
	if len(r.Stages) != 2 {
		t.Fatalf("stages %d, want 2", len(r.Stages))
	}
	if r.Unattributed != 0 {
		t.Fatalf("unattributed %d, want 0 (all wall inside spans)", r.Unattributed)
	}
	if r.Attributed() != 1 {
		t.Fatalf("attributed %v", r.Attributed())
	}
	// With 40ns of slack the attribution drops below 1.
	r2 := BuildPerturbation(before, after, runWall+30)
	if r2.Unattributed != 30 {
		t.Fatalf("unattributed %d, want 30", r2.Unattributed)
	}
	if got := r2.Attributed(); got <= 0.4 || got >= 0.6 {
		t.Fatalf("attributed %v, want 0.5", got)
	}
	levels := r.ByLevel()
	if len(levels) != 2 {
		t.Fatalf("levels %d", len(levels))
	}
	if !strings.Contains(r.Structure(), "{Tool sample_read}") {
		t.Fatalf("structure missing sentence:\n%s", r.Structure())
	}
	if !strings.Contains(r.String(), "attributed") {
		t.Fatal("String() should summarise attribution")
	}
}

func TestStageMetadataExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStages; i++ {
		s := Stage(i)
		if s.String() == "unknown" {
			t.Fatalf("stage %d has no name", i)
		}
		if seen[s.String()] {
			t.Fatalf("duplicate stage name %q", s)
		}
		seen[s.String()] = true
		if s.Level() == "" {
			t.Fatalf("stage %v has no level", s)
		}
		if !strings.HasPrefix(s.Sentence(), "{") {
			t.Fatalf("sentence %q", s.Sentence())
		}
	}
}
