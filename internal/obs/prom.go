package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are exported minimally — a single
// +Inf bucket plus _sum and _count — which every Prometheus parser
// accepts; the _sum is virtual-time mass, deterministic across runs.
//
// When includeUnstable is false, metrics registered as unstable (values
// that vary with worker count or process history) are omitted, making
// the output byte-stable across worker counts.
func WritePrometheus(w io.Writer, r *Registry, includeUnstable bool) (err error) {
	defer exportBarrier("prometheus", &err)
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, s := range r.Snapshot(includeUnstable) {
		// A metric name may carry a label set in Prometheus notation
		// ("nvmap_daemon_sent_total{kind=\"sample\"}"); HELP and TYPE
		// lines use the base name and are emitted once per family (the
		// snapshot is name-sorted, so families are contiguous).
		base := s.Name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base != lastBase {
			if s.Help != "" {
				bw.WriteString("# HELP " + base + " " + s.Help + "\n")
			}
			bw.WriteString("# TYPE " + base + " " + s.Kind.String() + "\n")
			lastBase = base
		}
		if s.Kind == KindHistogram {
			cnt := strconv.FormatUint(s.Count, 10)
			bw.WriteString(s.Name + "_bucket{le=\"+Inf\"} " + cnt + "\n")
			bw.WriteString(s.Name + "_sum " + formatFloat(s.Sum) + "\n")
			bw.WriteString(s.Name + "_count " + cnt + "\n")
			continue
		}
		bw.WriteString(s.Name + " " + formatFloat(s.Value) + "\n")
	}
	return bw.Flush()
}

// formatFloat renders a metric value deterministically: integral values
// without an exponent or decimal point, others in Go's shortest
// round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
