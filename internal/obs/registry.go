package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"nvmap/internal/hist"
	"nvmap/internal/vtime"
)

// Kind classifies a registered metric.
type Kind int

// The metric kinds, matching Prometheus metric types.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. The zero value is
// usable but normally obtained from Registry.Counter. Methods on a nil
// counter are no-ops, so disabled-plane code paths need no branching.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Methods on nil are no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to n if n is larger (a high-water mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// VHist is a virtual-time histogram metric: observations are deposited
// at (or over) virtual instants into an internal/hist folding
// histogram, and exported as count/sum plus the folded series. Methods
// on nil are no-ops.
type VHist struct {
	mu    sync.Mutex
	h     *hist.Histogram
	count uint64
}

// Observe deposits value at virtual instant at.
func (v *VHist) Observe(at vtime.Time, value float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.count++
	_ = v.h.Add(at, value) // monotone virtual time; Add only fails on regression
	v.mu.Unlock()
}

// ObserveSpan spreads value over the virtual interval [from, to).
func (v *VHist) ObserveSpan(from, to vtime.Time, value float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.count++
	_ = v.h.AddSpan(from, to, value)
	v.mu.Unlock()
}

// snapshot returns (count, sum) under the lock.
func (v *VHist) snapshot() (uint64, float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.count, v.h.Total()
}

// Sparkline renders the histogram's populated prefix (for the debug
// handler).
func (v *VHist) Sparkline(width int) string {
	if v == nil {
		return ""
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.h.Sparkline(width)
}

// metricFunc is a pull-model collector: a metric whose value is read
// from component state at snapshot time.
type metricFunc struct {
	kind Kind
	fn   func() float64
}

// entry is one registered metric.
type entry struct {
	name     string
	help     string
	kind     Kind
	unstable bool
	counter  *Counter
	gauge    *Gauge
	vhist    *VHist
	fn       *metricFunc
}

// Registry holds a session's metrics. Registration is cheap and
// idempotent by name (re-registering returns the existing instrument).
// Snapshot produces a deterministic, name-sorted view.
//
// Metrics marked unstable carry values that legitimately differ across
// worker counts or process history (pool sizes, interner growth, region
// counts); exporters exclude them from byte-stable golden output unless
// asked.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	histCap int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter returns the counter registered under name, creating it with
// the given help text on first use. Nil-safe: a nil registry returns a
// nil counter whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.counter
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: KindCounter, counter: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.gauge
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: KindGauge, gauge: g}
	return g
}

// Histogram returns the virtual-time histogram registered under name,
// creating it on first use with binWidth as the initial bin width (0
// selects one virtual millisecond).
func (r *Registry) Histogram(name, help string, binWidth vtime.Duration) *VHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e.vhist
	}
	if binWidth <= 0 {
		binWidth = vtime.Millisecond
	}
	h, err := hist.New(64, binWidth)
	if err != nil {
		panic("obs: histogram construction: " + err.Error())
	}
	v := &VHist{h: h}
	r.entries[name] = &entry{name: name, help: help, kind: KindHistogram, vhist: v}
	return v
}

// Func registers a pull-model collector: fn is called at snapshot time.
// unstable marks metrics whose values differ across worker counts or
// process history; stable exports exclude them. Re-registering a name
// replaces the previous collector (a session re-wiring its components).
func (r *Registry) Func(name, help string, kind Kind, unstable bool, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.entries[name] = &entry{
		name: name, help: help, kind: kind, unstable: unstable,
		fn: &metricFunc{kind: kind, fn: fn},
	}
	r.mu.Unlock()
}

// Sample is one metric's value in a Snapshot.
type Sample struct {
	Name     string
	Help     string
	Kind     Kind
	Unstable bool
	// Value holds the reading for counters, gauges and funcs.
	Value float64
	// Count and Sum hold the reading for histograms.
	Count uint64
	Sum   float64
}

// Snapshot reads every registered metric and returns the samples sorted
// by name. When includeUnstable is false, metrics registered as
// unstable are omitted — this is the byte-stable view the golden tests
// compare across worker counts.
func (r *Registry) Snapshot(includeUnstable bool) []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ents := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		ents = append(ents, e)
	}
	r.mu.Unlock()
	sort.Slice(ents, func(i, j int) bool { return ents[i].name < ents[j].name })
	out := make([]Sample, 0, len(ents))
	for _, e := range ents {
		if e.unstable && !includeUnstable {
			continue
		}
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind, Unstable: e.unstable}
		switch {
		case e.counter != nil:
			s.Value = float64(e.counter.Value())
		case e.gauge != nil:
			s.Value = float64(e.gauge.Value())
		case e.vhist != nil:
			s.Count, s.Sum = e.vhist.snapshot()
		case e.fn != nil:
			s.Value = e.fn.fn()
		}
		out = append(out, s)
	}
	return out
}

// Lookup returns the sample for a single metric (and whether it
// exists) — convenience for tests and shims.
func (r *Registry) Lookup(name string) (Sample, bool) {
	for _, s := range r.Snapshot(true) {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}
