package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExporterContainsPanic: a metric whose reader panics surfaces as an
// error from the exporter, never as a process crash.
func TestExporterContainsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("nvmap_ok_total", "fine").Add(1)
	r.Func("nvmap_bad", "throws on read", KindGauge, false, func() float64 {
		panic("reader boom")
	})
	var b strings.Builder
	err := WritePrometheus(&b, r, true)
	if err == nil || !strings.Contains(err.Error(), "reader boom") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}

// TestHandlerContainsPanic: the same failure over HTTP is a 500, and the
// handler keeps serving healthy endpoints afterwards.
func TestHandlerContainsPanic(t *testing.T) {
	p := New(Options{})
	p.Metrics.Func("nvmap_bad", "throws on read", KindGauge, false, func() float64 {
		panic("reader boom")
	})
	h := Handler(p)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("index after panic: status = %d", rec.Code)
	}
}
