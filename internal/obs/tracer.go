package obs

import (
	"fmt"
	"sync"
	"time"

	"nvmap/internal/vtime"
)

// DefaultTraceCapacity bounds the span ring buffer unless Options say
// otherwise. Old spans are evicted but their stage totals are kept, so
// the perturbation report stays exact no matter how long the run.
const DefaultTraceCapacity = 16384

// StageTotals accumulates per-stage aggregates across every recorded
// span, surviving ring-buffer eviction.
type StageTotals struct {
	// Spans is the number of spans (including instants) recorded.
	Spans uint64
	// VTime is the summed virtual-time extent of the spans.
	VTime int64
	// Wall is the summed inclusive wall-clock cost in host nanoseconds.
	Wall int64
	// Self is the summed exclusive wall-clock cost (inclusive minus
	// nested spans), the quantity the perturbation report attributes.
	Self int64
}

// SpanRef identifies an open span between Begin and End. The zero ref
// is invalid; End ignores it, so a nil-tracer fast path can thread a
// zero ref through without branching twice.
type SpanRef struct {
	depth int // 1-based position on the open-span stack
}

// frame is one open span on the nesting stack.
type frame struct {
	span      Span
	wallStart int64
	childWall int64
}

// Tracer records pipeline spans into a bounded ring buffer and
// accumulates per-stage totals. All recording happens on the session's
// driving goroutine (the same single-threaded order the machine's
// observer stream guarantees), so span IDs and the span sequence are
// byte-stable across worker counts; the mutex exists only so exporters
// and the HTTP handler can read concurrently with a live run.
//
// A nil *Tracer is the disabled state: Begin/End/Event on nil are
// no-ops, making every instrumentation site a single pointer test.
type Tracer struct {
	mu       sync.Mutex
	capacity int // ring capacity; <0 means unbounded
	ring     []Span
	head     int // index of the oldest span when the ring is full
	full     bool
	seq      uint64
	stack    []frame
	totals   [numStages]StageTotals
	dropped  uint64

	wallBase time.Time
	wallFn   func() int64 // stubable wall clock (host ns)
}

// NewTracer builds a tracer. capacity 0 selects DefaultTraceCapacity;
// negative capacity stores every span (package trace uses this for full
// Gantt timelines).
func NewTracer(capacity int) *Tracer {
	if capacity == 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{capacity: capacity, wallBase: time.Now()}
	t.wallFn = func() int64 { return int64(time.Since(t.wallBase)) }
	return t
}

// SetWallClock replaces the host clock (tests use this to make wall
// costs deterministic).
func (t *Tracer) SetWallClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wallFn = fn
	t.mu.Unlock()
}

// WallNow reads the tracer's host clock (the same stubable clock spans
// are costed with), so run-level wall measurements and span self-costs
// share one time base.
func (t *Tracer) WallNow() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wallFn()
}

// Begin opens a span at virtual instant start. Spans nest: a span
// opened while another is on the stack deducts its wall cost from the
// parent's exclusive self time. Begin on a nil tracer returns the zero
// ref, which End ignores.
func (t *Tracer) Begin(stage Stage, name string, node int, start vtime.Time) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	t.seq++
	t.stack = append(t.stack, frame{
		span: Span{
			ID:    t.seq,
			Stage: stage,
			Name:  name,
			Node:  node,
			Start: start,
			End:   start,
		},
		wallStart: t.wallFn(),
	})
	ref := SpanRef{depth: len(t.stack)}
	t.mu.Unlock()
	return ref
}

// End closes the span opened by ref at virtual instant end. Any spans
// opened after ref and still unclosed (a panic path that skipped an
// End) are closed at the same instant first, keeping the stack
// consistent.
func (t *Tracer) End(ref SpanRef, end vtime.Time) {
	if t == nil || ref.depth == 0 {
		return
	}
	t.mu.Lock()
	for len(t.stack) >= ref.depth {
		t.pop(end)
	}
	t.mu.Unlock()
}

// pop closes the top frame at virtual instant end, records the span and
// charges its wall cost to the parent frame. Caller holds mu.
func (t *Tracer) pop(end vtime.Time) {
	f := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	wall := t.wallFn() - f.wallStart
	if wall < 0 {
		wall = 0
	}
	f.span.End = end
	f.span.Wall = wall
	f.span.Self = wall - f.childWall
	if f.span.Self < 0 {
		f.span.Self = 0
	}
	if len(t.stack) > 0 {
		t.stack[len(t.stack)-1].childWall += wall
	}
	t.record(f.span)
}

// Event records an instantaneous span (a point event) at virtual
// instant at. It carries no wall cost.
func (t *Tracer) Event(stage Stage, name string, node int, at vtime.Time) {
	t.Record(stage, name, node, at, at)
}

// Record stores an already-completed span — an interval that happened
// in virtual time without a bracketing Begin/End (machine events
// replayed through observers). It carries no wall cost and does not
// interact with the nesting stack.
func (t *Tracer) Record(stage Stage, name string, node int, start, end vtime.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	t.record(Span{ID: t.seq, Stage: stage, Name: name, Node: node, Start: start, End: end})
	t.mu.Unlock()
}

// record stores a finished span in the ring and folds it into the stage
// totals. Caller holds mu.
func (t *Tracer) record(s Span) {
	tot := &t.totals[s.Stage]
	tot.Spans++
	tot.VTime += int64(s.End.Sub(s.Start))
	tot.Wall += s.Wall
	tot.Self += s.Self
	if t.capacity < 0 {
		t.ring = append(t.ring, s)
		return
	}
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.head] = s
	t.head = (t.head + 1) % t.capacity
	t.full = true
	t.dropped++
}

// OpenSpans renders the currently open span stack, outermost first,
// as "stage name@node" strings. The session's governance layer attaches
// it to abort errors so a cut names the pipeline stages it interrupted.
// Nil tracer returns nil.
func (t *Tracer) OpenSpans() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return nil
	}
	out := make([]string, len(t.stack))
	for i, f := range t.stack {
		s := f.span.Stage.String()
		if f.span.Name != "" {
			s += " " + f.span.Name
		}
		if f.span.Node >= 0 {
			s += fmt.Sprintf("@node%d", f.span.Node)
		}
		out[i] = s
	}
	return out
}

// Spans returns the retained spans in recording order (ascending ID).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.head:]...)
		out = append(out, t.ring[:t.head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Totals returns a copy of the per-stage aggregates.
func (t *Tracer) Totals() [NumStages]StageTotals {
	var out [NumStages]StageTotals
	if t == nil {
		return out
	}
	t.mu.Lock()
	copy(out[:], t.totals[:])
	t.mu.Unlock()
	return out
}

// Count returns the total number of spans ever recorded (retained or
// evicted).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq - uint64(len(t.stack))
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
