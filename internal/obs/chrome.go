package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// exportBarrier converts a panic escaping an exporter into the named
// error. Exporters run against live tracers and registries — possibly
// mid-run, over a snapshot another goroutine is still growing — and a
// rendering bug must surface as an error on the export call, never as a
// process crash. Call in a defer with the caller's named error.
func exportBarrier(what string, err *error) {
	if v := recover(); v != nil {
		*err = fmt.Errorf("obs: %s export panicked: %v", what, v)
	}
}

// WriteChromeTrace emits the tracer's retained spans as Chrome
// trace_event JSON (the "JSON Array Format" with a traceEvents wrapper),
// loadable in Perfetto and chrome://tracing.
//
// Timestamps and durations are VIRTUAL time expressed in microseconds
// (the trace_event unit), with nanosecond precision as fractional
// digits. Wall-clock costs are deliberately excluded: they differ run
// to run, and the exported bytes must be identical across worker
// counts. Rows (tid) are nodes, with the control processor on tid 0.
//
// The JSON is built by hand, field order fixed, so the output is
// byte-stable.
func WriteChromeTrace(w io.Writer, t *Tracer) (err error) {
	defer exportBarrier("chrome trace", &err)
	bw := bufio.NewWriter(w)
	spans := t.Spans()

	// Thread-name metadata rows for every tid present.
	tids := map[int]bool{}
	for _, s := range spans {
		tids[s.Node] = true
	}
	nodes := make([]int, 0, len(tids))
	for n := range tids {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	comma := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, n := range nodes {
		comma()
		name := "node " + strconv.Itoa(n)
		if n == NodeCP {
			name = "cp"
		}
		bw.WriteString("{\"ph\":\"M\",\"pid\":0,\"tid\":" + strconv.Itoa(tid(n)) +
			",\"name\":\"thread_name\",\"args\":{\"name\":" + jsonQuote(name) + "}}")
	}
	for _, s := range spans {
		comma()
		name := s.Stage.String()
		if s.Name != "" {
			name += " " + s.Name
		}
		bw.WriteString("{\"ph\":\"")
		if s.Start == s.End {
			bw.WriteString("i")
		} else {
			bw.WriteString("X")
		}
		bw.WriteString("\",\"pid\":0,\"tid\":" + strconv.Itoa(tid(s.Node)))
		bw.WriteString(",\"ts\":" + micros(int64(s.Start)))
		if s.Start == s.End {
			bw.WriteString(",\"s\":\"t\"")
		} else {
			bw.WriteString(",\"dur\":" + micros(int64(s.End.Sub(s.Start))))
		}
		bw.WriteString(",\"name\":" + jsonQuote(name))
		bw.WriteString(",\"cat\":" + jsonQuote(string(s.Stage.Level())))
		bw.WriteString(",\"args\":{\"id\":" + strconv.FormatUint(s.ID, 10) +
			",\"sentence\":" + jsonQuote(s.Stage.Sentence()) + "}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// jsonQuote encodes a string as a JSON string literal. strconv.Quote is
// not usable here: it emits Go-style \x escapes for the non-printable
// separator bytes inside interned sentence keys, which are invalid JSON.
func jsonQuote(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}

// tid maps a node to its trace row: CP on 0, node n on n+1.
func tid(node int) int {
	if node == NodeCP {
		return 0
	}
	return node + 1
}

// micros renders ns as a microsecond value with exactly three fractional
// digits — fixed-width formatting keeps the bytes deterministic.
func micros(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := strconv.FormatInt(ns/1000, 10) + "." + pad3(ns%1000)
	if neg {
		return "-" + s
	}
	return s
}

func pad3(n int64) string {
	s := strconv.FormatInt(n, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
